//! Property-based tests on the hardware substrates: address packing,
//! page-table translation, DRAM timing monotonicity and cache
//! statistics consistency.

use camdn::cache::{CacheGeometry, Pcaddr, SharedCache};
use camdn::common::config::{CacheConfig, DramConfig};
use camdn::common::types::{PhysAddr, MIB};
use camdn::common::EventQueue;
use camdn::dram::DramModel;
use camdn::npu::CachePageTable;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn pcaddr_pack_unpack_roundtrip(
        slice in 0u32..8,
        set in 0u32..2048,
        way in 0u32..16,
        offset in 0u32..64,
    ) {
        let g = CacheGeometry::new(&CacheConfig::paper_default());
        let p = Pcaddr { slice, set, way, offset };
        prop_assert_eq!(g.unpack(g.pack(p)), p);
    }

    #[test]
    fn page_lines_are_unique(pcpn in 0u32..512) {
        let g = CacheGeometry::new(&CacheConfig::paper_default());
        let mut packed: Vec<u64> = (0..g.lines_per_page())
            .map(|i| g.pack(g.line_in_page(pcpn, i)))
            .collect();
        let before = packed.len();
        packed.sort_unstable();
        packed.dedup();
        prop_assert_eq!(before, packed.len());
    }

    #[test]
    fn cpt_translation_is_consistent(
        mappings in prop::collection::btree_map(0u32..512, 128u32..512, 1..64),
        probe in 0u64..(512 * 32 * 1024),
    ) {
        let mut cpt = CachePageTable::new(512, 32 * 1024);
        // btree_map gives unique vcpns; pcpns may repeat, which the CPT
        // itself permits (exclusivity lives in the NEC/allocator).
        for (&v, &p) in &mappings {
            cpt.map(v, p).unwrap();
        }
        let vcaddr = camdn::common::types::VirtCacheAddr(probe);
        let vcpn = (probe / (32 * 1024)) as u32;
        match cpt.translate(vcaddr) {
            Ok((pcpn, off)) => {
                prop_assert_eq!(Some(&pcpn), mappings.get(&vcpn));
                prop_assert_eq!(off, probe % (32 * 1024));
            }
            Err(_) => prop_assert!(!mappings.contains_key(&vcpn)),
        }
    }

    #[test]
    fn dram_completion_is_monotone_in_time(
        t1 in 0u64..1_000_000,
        dt in 1u64..1_000_000,
        lines in 1u64..256,
        addr in 0u64..(1u64 << 30),
    ) {
        // The same burst issued later never completes earlier.
        let mut a = DramModel::new(DramConfig::paper_default(), 64);
        let mut b = DramModel::new(DramConfig::paper_default(), 64);
        let done1 = a.access_burst(t1, PhysAddr(addr), lines, false, 0);
        let done2 = b.access_burst(t1 + dt, PhysAddr(addr), lines, false, 0);
        prop_assert!(done2 >= done1);
        prop_assert!(done1 > t1);
    }

    #[test]
    fn dram_traffic_is_exact(lines in 0u64..1024, write in any::<bool>()) {
        let mut d = DramModel::new(DramConfig::paper_default(), 64);
        d.access_burst(0, PhysAddr(0), lines, write, 0);
        prop_assert_eq!(d.stats().total_bytes(), lines * 64);
    }

    #[test]
    fn cache_stats_balance(
        ranges in prop::collection::vec((0u64..(4 * MIB), 64u64..65_536, any::<bool>()), 1..20),
    ) {
        let cfg = CacheConfig::paper_default();
        let mut cache = SharedCache::new(&cfg);
        let mut dram = DramModel::new(DramConfig::paper_default(), 64);
        let mask = cache.full_way_mask();
        let mut t = 0;
        for (base, bytes, write) in ranges {
            t += 100_000;
            let out = cache.access_range(t, PhysAddr(base), bytes, write, mask, &mut dram);
            let lines = (base + bytes - 1) / 64 - base / 64 + 1;
            prop_assert_eq!(out.hits + out.misses, lines);
            prop_assert!(out.finish >= t);
        }
        let s = cache.stats();
        prop_assert_eq!(s.fills.get(), s.misses.get(), "every miss fills (RFO)");
        prop_assert!(s.writebacks.get() <= s.misses.get());
    }

    #[test]
    fn event_queue_is_time_ordered(
        events in prop::collection::vec((0u64..1000, 0u32..100), 1..200),
    ) {
        let mut q = EventQueue::new();
        for &(t, p) in &events {
            q.push(t, p);
        }
        let mut last = 0;
        let mut n = 0;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= last);
            last = t;
            n += 1;
        }
        prop_assert_eq!(n, events.len());
    }
}

#[test]
fn nec_and_transparent_paths_share_geometry() {
    // The NEC's first page sits exactly after the general-purpose ways.
    let cfg = CacheConfig::paper_default();
    let g = CacheGeometry::new(&cfg);
    let nec = camdn::cache::Nec::new(&cfg);
    let (way, set) = g.page_location(nec.first_pcpn());
    assert_eq!(way, cfg.ways - cfg.npu_ways);
    assert_eq!(set, 0);
}
