//! Umbrella crate for the CaMDN reproduction.
//!
//! Re-exports the public API of every subsystem so examples, integration
//! tests and downstream users can depend on a single crate, plus the
//! headline simulation types at the top level:
//!
//! ```no_run
//! use camdn::{PolicyKind, Simulation, Workload};
//!
//! let models = camdn::models::zoo::all();
//! let result = Simulation::builder()
//!     .policy(PolicyKind::CamdnFull)
//!     .workload(Workload::closed(models, 2))
//!     .run()
//!     .expect("valid configuration");
//! println!("{}: {:.2} ms", result.policy, result.summary.avg_latency_ms);
//! ```
//!
//! Grid experiments (policies × SoCs × cache sizes × workloads ×
//! seeds) run through the sweep subsystem:
//!
//! ```no_run
//! use camdn::{PolicyKind, Sweep, Workload};
//!
//! let grid = Sweep::grid()
//!     .policies(PolicyKind::ALL)
//!     .workload("zoo", Workload::closed(camdn::models::zoo::all(), 2))
//!     .seeds([1, 2, 3])
//!     .run()
//!     .expect("valid grid");
//! assert_eq!(grid.cells.len(), 15);
//! ```
//!
//! See the crate-level docs of each member for details:
//! [`camdn_core`] (the co-design), [`camdn_runtime`] (multi-tenant
//! engine, policies and scenarios), [`camdn_sweep`] (parallel grid
//! sweeps), [`camdn_trace`] (trace-driven serving replay),
//! [`camdn_mapper`], [`camdn_models`], [`camdn_cache`],
//! [`camdn_dram`], [`camdn_npu`], [`camdn_analysis`] and
//! [`camdn_common`].

#![warn(missing_docs)]
#![deny(deprecated)]

/// Compiles and runs the README's code examples as doctests, so the
/// documented snippets (Quickstart, Sweeps, Results pipeline) cannot
/// drift from the real API.
#[doc = include_str!("../../../README.md")]
#[cfg(doctest)]
pub struct ReadmeDoctests;

pub use camdn_analysis as analysis;
pub use camdn_cache as cache;
pub use camdn_common as common;
pub use camdn_core as core;
pub use camdn_dram as dram;
pub use camdn_mapper as mapper;
pub use camdn_models as models;
pub use camdn_npu as npu;
pub use camdn_runtime as runtime;
pub use camdn_sweep as sweep;
pub use camdn_trace as trace;

pub use camdn_mapper::{PlanCache, PlanCacheStats};
#[allow(deprecated)]
pub use camdn_runtime::RunResult;
pub use camdn_runtime::{
    qos_metrics, register_policy, ArrivalProcess, BudgetKind, DetailLevel, EngineError, FaultEvent,
    FaultGenConfig, FaultKind, FaultPlan, LatencyTail, Policy, PolicyKind, PolicyRegistry,
    QosMetrics, RunDetail, RunOutput, RunSummary, Simulation, SimulationBuilder, TaskSummary,
    Workload, LATENCY_HIST_BUCKETS, LATENCY_HIST_EDGES,
};
pub use camdn_sweep::{
    bursty_ramp, CellCoord, CellOutcome, CellSink, JsonlSink, MemorySink, MetricStats,
    SeedAggregate, SeedStats, Sweep, SweepBuilder, SweepCell, SweepInfo, SweepResult,
};
