//! Property tests for the generic component-clock scheduler core
//! (`camdn_runtime::sched`): seeded random component sets with random
//! clock dividers and random mid-run DVFS (divider-change) events must
//!
//! * never deadlock — every finite component set runs to completion
//!   well inside a generous tick budget;
//! * keep master time monotonic across the delivered schedule;
//! * never deliver a stale heap entry — each planned local tick of
//!   each component fires exactly once, in strictly increasing local
//!   order, even when a peer retunes the component's clock while a
//!   tick is pending;
//! * fire same-cycle events in the documented deterministic order
//!   (FIFO by scheduling sequence; cold-start ties in registration
//!   order), so the same configuration always produces the identical
//!   schedule.
//!
//! Failures are seeded and shrinkable: a violated property re-runs the
//! generator on progressively smaller cases (fewer components, fewer
//! ticks) until the smallest still-failing one is found, then panics
//! printing that case's full fired-tick schedule.

use camdn::common::types::Cycle;
use camdn::common::SimRng;
use camdn::runtime::sched::{Component, ComponentSet, FiredTick, TickCtx};

/// One randomly generated component: a finite list of local ticks to
/// execute, and DVFS retunes to request at given tick indices.
#[derive(Debug, Clone)]
struct Script {
    divider: Cycle,
    /// Strictly increasing local ticks this component executes.
    locals: Vec<Cycle>,
    /// `(tick_index, target_component, new_divider)` retunes.
    retunes: Vec<(usize, usize, Cycle)>,
}

/// The component driving one [`Script`].
struct Scripted {
    script: Script,
    fired: usize,
}

impl Component for Scripted {
    fn next_tick(&mut self, from: Cycle) -> Option<Cycle> {
        // Planned locals strictly increase, so the driver's
        // clamp-to-`from` never actually moves a tick; the delivered
        // locals are exactly the planned ones.
        let _ = from;
        self.script.locals.get(self.fired).copied()
    }
    fn tick(&mut self, _now: Cycle, _local: Cycle, ctx: &mut TickCtx) {
        let idx = self.fired;
        self.fired += 1;
        for &(at, target, div) in &self.script.retunes {
            if at == idx {
                ctx.set_divider(target, div);
            }
        }
    }
}

/// Draws a random case: `n` components with dividers in 1..=8, up to
/// `max_ticks` local ticks each, and a sprinkling of DVFS retunes
/// aimed at random (valid) components.
fn draw_case(rng: &mut SimRng, n: usize, max_ticks: usize) -> Vec<Script> {
    (0..n)
        .map(|_| {
            let divider = rng.next_range(1, 9);
            let count = rng.next_below(max_ticks as u64 + 1) as usize;
            let mut locals = Vec::with_capacity(count);
            let mut l = 0u64;
            for _ in 0..count {
                l += rng.next_below(5); // gaps of 0..5 → repeated-edge pressure
                locals.push(l);
                l += 1;
            }
            let n_retunes = rng.next_below(3) as usize;
            let retunes = (0..n_retunes)
                .filter(|_| count > 0)
                .map(|_| {
                    (
                        rng.next_below(count as u64) as usize,
                        rng.next_below(n as u64) as usize,
                        rng.next_range(1, 9),
                    )
                })
                .collect();
            Script {
                divider,
                locals,
                retunes,
            }
        })
        .collect()
}

/// Runs one case to completion, returning the fired-tick schedule.
/// Any driver error (deadlock shows up as `TickBudget`) is a property
/// violation reported through `Err`.
fn run_case(case: &[Script]) -> Result<Vec<FiredTick>, String> {
    let mut set = ComponentSet::new();
    set.record_schedule(true);
    for (i, s) in case.iter().enumerate() {
        set.add(
            format!("c{i}"),
            s.divider,
            Box::new(Scripted {
                script: s.clone(),
                fired: 0,
            }),
        )
        .map_err(|e| format!("add failed: {e}"))?;
    }
    let budget = case.iter().map(|s| s.locals.len() as u64).sum::<u64>() + 8;
    set.run(budget).map_err(|e| format!("run failed: {e}"))?;
    Ok(set.schedule_log().to_vec())
}

/// Checks every property on one case; `Err` names the violation.
fn check_case(case: &[Script]) -> Result<(), String> {
    let log = run_case(case)?;

    // Completion: every planned tick delivered exactly once (a stale
    // heap entry delivered would double a tick; one filtered but never
    // rescheduled would lose it).
    let planned: u64 = case.iter().map(|s| s.locals.len() as u64).sum();
    if log.len() as u64 != planned {
        return Err(format!("delivered {} ticks, planned {planned}", log.len()));
    }

    // Monotone master time across the whole schedule.
    for w in log.windows(2) {
        if w[1].at < w[0].at {
            return Err(format!("time ran backwards: {} then {}", w[0], w[1]));
        }
    }

    // Per component: exactly the planned locals, in order (a stale
    // delivery would duplicate one; a dropped remap would lose one;
    // reordering would break the strict increase).
    for (i, s) in case.iter().enumerate() {
        let seen: Vec<Cycle> = log
            .iter()
            .filter(|t| t.comp == i)
            .map(|t| t.local)
            .collect();
        if seen != s.locals {
            return Err(format!(
                "component {i}: delivered locals {seen:?} != planned {:?}",
                s.locals
            ));
        }
    }

    // Cold-start tie-break: the leading run of cycle-0 ticks fires in
    // registration order (components are primed in registration order
    // and FIFO breaks the tie). A retune *at* cycle 0 legitimately
    // re-enqueues its victim behind later registrations, so the check
    // applies to retune-free cases only; retuned cases are still held
    // to exact replay determinism below.
    if case.iter().all(|s| s.retunes.is_empty()) {
        let cold: Vec<usize> = log
            .iter()
            .take_while(|t| t.at == 0)
            .map(|t| t.comp)
            .collect();
        let mut sorted = cold.clone();
        sorted.sort_unstable();
        if cold != sorted {
            return Err(format!(
                "cold same-cycle ticks out of registration order: {cold:?}"
            ));
        }
    }

    // Determinism: the identical configuration replays the identical
    // schedule, tick for tick.
    let replay = run_case(case)?;
    if replay != log {
        return Err("replay diverged from the first run".into());
    }
    Ok(())
}

/// Shrinks a failing case: repeatedly try dropping components and
/// halving tick lists; keep any variant that still fails. Returns the
/// smallest failing case and its violation.
fn shrink(mut case: Vec<Script>, mut err: String) -> (Vec<Script>, String) {
    loop {
        let mut shrunk = false;
        // Try dropping one component at a time.
        for i in 0..case.len() {
            let mut cand = case.clone();
            cand.remove(i);
            // Dropping can invalidate retune targets; clamp them away.
            let len = cand.len();
            for s in &mut cand {
                s.retunes.retain(|&(_, t, _)| t < len);
            }
            if let Err(e) = check_case(&cand) {
                case = cand;
                err = e;
                shrunk = true;
                break;
            }
        }
        if shrunk {
            continue;
        }
        // Try halving each component's tick list.
        for i in 0..case.len() {
            if case[i].locals.len() < 2 {
                continue;
            }
            let mut cand = case.clone();
            let keep = cand[i].locals.len() / 2;
            cand[i].locals.truncate(keep);
            cand[i].retunes.retain(|&(at, _, _)| at < keep);
            if let Err(e) = check_case(&cand) {
                case = cand;
                err = e;
                shrunk = true;
                break;
            }
        }
        if !shrunk {
            return (case, err);
        }
    }
}

/// Runs `check_case` over many seeded random cases; on failure,
/// shrinks and panics with the smallest case's schedule printed.
fn property_sweep(base_seed: u64, cases: usize, max_comps: usize, max_ticks: usize) {
    for case_idx in 0..cases {
        let seed = base_seed.wrapping_add(case_idx as u64);
        let mut rng = SimRng::new(seed);
        let n = rng.next_range(1, max_comps as u64 + 1) as usize;
        let case = draw_case(&mut rng, n, max_ticks);
        if let Err(err) = check_case(&case) {
            let (small, small_err) = shrink(case, err);
            let schedule = match run_case(&small) {
                Ok(log) => log
                    .iter()
                    .map(|t| format!("  {t}"))
                    .collect::<Vec<_>>()
                    .join("\n"),
                Err(e) => format!("  (run failed: {e})"),
            };
            panic!(
                "scheduler property violated (seed {seed}, shrunk to {} components):\n\
                 {small_err}\ncase: {small:#?}\nschedule:\n{schedule}",
                small.len()
            );
        }
    }
}

#[test]
fn random_sets_with_dvfs_never_deadlock_and_stay_deterministic() {
    property_sweep(0x5C4ED, 60, 6, 24);
}

#[test]
fn dense_same_cycle_collisions_stay_ordered() {
    // Divider-1 components with zero gaps maximize same-cycle ties.
    for seed in 0..20u64 {
        let mut rng = SimRng::new(0x71E ^ seed);
        let n = rng.next_range(2, 6) as usize;
        let case: Vec<Script> = (0..n)
            .map(|_| Script {
                divider: 1,
                locals: (0..rng.next_below(16)).collect(),
                retunes: vec![],
            })
            .collect();
        if let Err(err) = check_case(&case) {
            panic!("tie-break property violated (seed {seed}): {err}");
        }
    }
}

#[test]
fn heavy_retune_crossfire_loses_no_ticks() {
    // Every component retunes every other component on every tick —
    // maximal stale-entry pressure on the heap.
    let n = 4;
    let case: Vec<Script> = (0..n)
        .map(|i| Script {
            divider: 1 + (i as Cycle % 3),
            locals: (0..12).map(|k| k * 2).collect(),
            retunes: (0..12)
                .map(|k| (k, (i + 1) % n, 1 + ((k as Cycle + i as Cycle) % 8)))
                .collect(),
        })
        .collect();
    if let Err(err) = check_case(&case) {
        panic!("retune crossfire violated a property: {err}");
    }
}
