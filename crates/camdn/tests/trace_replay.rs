//! Integration tests of the trace subsystem end to end: generated
//! traces must replay deterministically (bit-identical windowed
//! metrics run-to-run and through the file format), the windowed
//! streaming path must hold only one window in memory across a
//! million-arrival trace, and a killed-and-resumed replay log must
//! equal an uninterrupted one bit for bit.

use camdn::trace::{
    windows, JsonlReplaySink, ReplayAggregate, ReplayConfig, ReplayDriver, ReplaySink, SlaClass,
    TraceGen, TraceGenConfig, TraceReader, TraceRecord, TraceWriter, WindowMetrics,
};
use camdn::PolicyKind;

fn unique_path(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "camdn-trace-{name}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    p
}

/// A sink that keeps every window in memory for comparisons.
#[derive(Default)]
struct Collect(Vec<WindowMetrics>);

impl ReplaySink for Collect {
    fn on_window(&mut self, w: &WindowMetrics) {
        self.0.push(w.clone());
    }
}

fn test_trace() -> TraceGenConfig {
    TraceGenConfig {
        rate_per_s: 400.0,
        horizon_s: 0.1,
        ..TraceGenConfig::default()
    }
}

fn replay_cfg() -> ReplayConfig {
    ReplayConfig::new(PolicyKind::CamdnFull, 20_000)
}

fn replay_collect(cfg: &ReplayConfig) -> Vec<WindowMetrics> {
    let records = TraceGen::new(test_trace()).expect("gen config").map(Ok);
    let mut driver = ReplayDriver::new(cfg.clone()).expect("replay config");
    let mut sink = Collect::default();
    driver.replay(records, &mut sink).expect("replay");
    sink.0
}

#[test]
fn replaying_the_same_trace_twice_is_bit_identical() {
    let a = replay_collect(&replay_cfg());
    let b = replay_collect(&replay_cfg());
    assert!(!a.is_empty(), "the test trace must produce windows");
    assert_eq!(a, b, "same seeded trace must give identical metrics");
    // The windows carry real analytics, not zeroed placeholders.
    assert!(a.iter().any(|w| w.tail.total() > 0));
    assert!(a.iter().any(|w| !w.queue_depth.is_empty()));
    assert!(a.iter().any(|w| !w.tenants.is_empty()));
}

#[test]
fn replay_through_the_file_format_matches_in_memory_replay() {
    let path = unique_path("roundtrip.ndjson");
    let file = std::fs::File::create(&path).expect("create trace");
    let mut writer = TraceWriter::new(std::io::BufWriter::new(file)).expect("header");
    for rec in TraceGen::new(test_trace()).expect("gen config") {
        writer.write(&rec).expect("record");
    }
    writer.finish().expect("flush");

    let direct = replay_collect(&replay_cfg());
    let mut driver = ReplayDriver::new(replay_cfg()).expect("replay config");
    let mut sink = Collect::default();
    driver
        .replay(TraceReader::open(&path).expect("reopen"), &mut sink)
        .expect("replay from file");
    std::fs::remove_file(&path).ok();
    assert_eq!(sink.0, direct, "file roundtrip must not change metrics");
}

#[test]
fn windowing_streams_a_million_arrivals_one_window_at_a_time() {
    // 10 arrivals/window over 1M arrivals: the adapter must never
    // buffer more than one window's records, so peak memory is the
    // densest window — not the trace.
    let window_us = 1_000u64;
    let total = 1_000_000u64;
    let records = (0..total).map(|i| {
        Ok(TraceRecord {
            ts_us: i * 100,
            tenant: format!("t{:03}", i % 8),
            model: "MB".to_string(),
            class: SlaClass::Medium,
        })
    });
    let mut seen = 0u64;
    let mut max_window_len = 0usize;
    let mut last_index = None;
    for w in windows(records, window_us) {
        let w = w.expect("synthetic trace is well-formed");
        seen += w.records.len() as u64;
        max_window_len = max_window_len.max(w.records.len());
        assert!(last_index < Some(w.index), "windows must arrive in order");
        last_index = Some(w.index);
    }
    assert_eq!(seen, total, "every arrival must land in exactly one window");
    assert_eq!(
        max_window_len, 10,
        "one window buffers exactly its own arrivals"
    );
}

#[test]
fn killed_replay_log_resumes_to_an_identical_log() {
    let cfg = replay_cfg();
    let gen_records = || TraceGen::new(test_trace()).expect("gen config").map(Ok);

    // Uninterrupted reference replay.
    let clean_path = unique_path("clean.jsonl");
    let mut driver = ReplayDriver::new(cfg.clone()).expect("replay config");
    let mut sink = JsonlReplaySink::create(&clean_path, &cfg).expect("create log");
    driver.replay(gen_records(), &mut sink).expect("replay");
    sink.finish().expect("close log");

    // "Kill" a second replay by truncating its log mid-line after the
    // first few windows.
    let killed_path = unique_path("killed.jsonl");
    let mut driver = ReplayDriver::new(cfg.clone()).expect("replay config");
    let mut sink = JsonlReplaySink::create(&killed_path, &cfg).expect("create log");
    driver.replay(gen_records(), &mut sink).expect("replay");
    sink.finish().expect("close log");
    let full = std::fs::read_to_string(&killed_path).expect("read log");
    let lines: Vec<&str> = full.lines().collect();
    assert!(lines.len() > 3, "need enough windows to interrupt");
    let keep = 1 + (lines.len() - 1) / 2; // header + half the windows
    let mut truncated: String = lines[..keep].iter().map(|l| format!("{l}\n")).collect();
    let torn = &lines[keep][..lines[keep].len() / 2]; // half a line
    truncated.push_str(torn);
    std::fs::write(&killed_path, truncated).expect("simulate kill");

    // Resume: the torn line is dropped, recorded windows are skipped,
    // the rest re-run, and the final log equals the clean one.
    let mut driver = ReplayDriver::new(cfg.clone()).expect("replay config");
    let mut sink = JsonlReplaySink::resume(&killed_path, &cfg).expect("resume log");
    let skipped = sink.recorded().len() as u64;
    assert_eq!(skipped, keep as u64 - 1, "intact windows must be kept");
    let totals = driver.replay(gen_records(), &mut sink).expect("replay");
    assert_eq!(totals.windows_skipped, skipped);
    assert!(totals.windows_run > 0, "the torn tail must re-run");
    sink.finish().expect("close log");

    let clean = camdn::trace::read_window_log(&clean_path, &cfg).expect("read clean");
    let resumed = camdn::trace::read_window_log(&killed_path, &cfg).expect("read resumed");
    assert_eq!(resumed, clean, "resumed log must equal the clean log");

    // A log written under one config must not resume under another.
    let mut other = cfg.clone();
    other.policy = PolicyKind::SharedBaseline;
    assert!(JsonlReplaySink::resume(&killed_path, &other).is_err());

    std::fs::remove_file(&clean_path).ok();
    std::fs::remove_file(&killed_path).ok();
}

#[test]
fn aggregate_matches_the_sum_of_windows() {
    let cfg = replay_cfg();
    let windows = replay_collect(&cfg);
    let records = TraceGen::new(test_trace()).expect("gen config").map(Ok);
    let mut driver = ReplayDriver::new(cfg).expect("replay config");
    let mut agg = ReplayAggregate::new();
    driver.replay(records, &mut agg).expect("replay");

    assert_eq!(agg.windows, windows.len() as u64);
    assert_eq!(
        agg.arrivals,
        windows.iter().map(|w| w.arrivals).sum::<u64>()
    );
    assert_eq!(agg.sla_met, windows.iter().map(|w| w.sla_met).sum::<u64>());
    assert_eq!(
        agg.tail.total(),
        windows.iter().map(|w| w.tail.total()).sum::<u64>()
    );
    let worst = windows.iter().map(|w| w.sla_rate()).fold(1.0f64, f64::min);
    assert_eq!(agg.worst_window_sla, worst);
}
