//! Tests of the public simulation API: builder determinism, custom
//! policy registration, workload scenarios and backward compatibility
//! of the deprecated shims.

use camdn::models::zoo;
use camdn::runtime::{
    register_policy, EngineError, Policy, PolicyCapabilities, PolicyRegistry, Selection,
};
use camdn::{PolicyKind, Simulation, Workload};
use camdn_common::types::Cycle;
use camdn_mapper::Mct;

/// A sixth, test-only policy: transparent cache, no scheduling at all —
/// implemented and registered entirely outside `camdn-runtime`.
struct NoOpPolicy;

impl Policy for NoOpPolicy {
    fn label(&self) -> &str {
        "NoOp(custom)"
    }

    fn capabilities(&self) -> PolicyCapabilities {
        PolicyCapabilities::default()
    }

    fn select_candidate(
        &mut self,
        _now: Cycle,
        _task: u32,
        _mct: &Mct,
        _lbm_active: bool,
        _idle_pages: u32,
    ) -> Selection {
        Selection::Transparent
    }
}

#[test]
fn same_seed_is_deterministic_for_every_builtin_policy() {
    let models = vec![zoo::mobilenet_v2(), zoo::efficientnet_b0()];
    for policy in PolicyKind::ALL {
        let run = || {
            Simulation::builder()
                .policy(policy)
                .workload(Workload::closed(models.clone(), 2))
                .seed(42)
                .run()
                .expect("deterministic run")
        };
        assert_eq!(run(), run(), "{policy:?} must be seed-deterministic");
    }
}

#[test]
fn different_seeds_change_the_schedule() {
    let models: Vec<_> = (0..4).map(|_| zoo::efficientnet_b0()).collect();
    let run = |seed| {
        Simulation::builder()
            .policy(PolicyKind::SharedBaseline)
            .workload(Workload::closed(models.clone(), 2))
            .seed(seed)
            .run()
            .expect("run")
    };
    assert_ne!(
        run(1).summary.makespan_ms,
        run(2).summary.makespan_ms,
        "dispatch jitter must depend on the seed"
    );
}

#[test]
fn custom_policy_registers_and_simulates() {
    register_policy("noop-test", || Box::new(NoOpPolicy));
    assert!(camdn::runtime::registered_policies().contains(&"noop-test".to_string()));

    let models = vec![zoo::mobilenet_v2(), zoo::efficientnet_b0()];
    let custom = Simulation::builder()
        .policy_named("noop-test")
        .workload(Workload::closed(models.clone(), 2))
        .run()
        .expect("custom policy run");
    assert_eq!(custom.policy, "NoOp(custom)");
    assert!(custom.tasks().iter().all(|t| t.inferences == 1));

    // With identical capabilities and selections, the custom no-op
    // matches the built-in baseline cycle for cycle.
    let baseline = Simulation::builder()
        .policy(PolicyKind::SharedBaseline)
        .workload(Workload::closed(models, 2))
        .run()
        .expect("baseline run");
    assert_eq!(custom.detail, baseline.detail);
    assert_eq!(custom.summary, baseline.summary);
}

#[test]
fn policy_instance_bypasses_the_registry() {
    let r = Simulation::builder()
        .policy_instance(Box::new(NoOpPolicy))
        .workload(Workload::closed(vec![zoo::mobilenet_v2()], 1))
        .warmup_rounds(0)
        .run()
        .expect("instance run");
    assert_eq!(r.policy, "NoOp(custom)");
    assert_eq!(r.tasks()[0].inferences, 1);
}

#[test]
fn local_registries_are_isolated() {
    let mut reg = PolicyRegistry::with_builtins();
    reg.register("local-only", || Box::new(NoOpPolicy));
    assert!(reg.contains("local-only"));
    assert!(!camdn::runtime::registered_policies().contains(&"local-only".to_string()));
}

#[test]
fn empty_workload_is_a_typed_error() {
    let err = Simulation::builder()
        .policy(PolicyKind::CamdnFull)
        .workload(Workload::closed(vec![], 2))
        .build()
        .err();
    assert_eq!(err, Some(EngineError::EmptyWorkload));
}

#[test]
fn open_loop_scenarios_run_every_builtin() {
    let models = vec![zoo::mobilenet_v2(), zoo::efficientnet_b0()];
    for policy in PolicyKind::ALL {
        let r = Simulation::builder()
            .policy(policy)
            .workload(Workload::poisson(models.clone(), 0.05, 60.0))
            .warmup_rounds(0)
            .run()
            .expect("poisson run");
        assert!(
            r.tasks().iter().any(|t| t.inferences > 0),
            "{policy:?} open loop must complete arrivals"
        );
    }
}

#[allow(deprecated)]
fn shim_run(policy: PolicyKind, models: &[camdn::models::Model]) -> camdn::RunResult {
    use camdn::runtime::{simulate, EngineConfig};
    simulate(EngineConfig::speedup(policy), models)
}

#[test]
#[allow(deprecated)]
fn deprecated_shims_agree_with_the_builder() {
    // The EngineConfig/simulate shims and the builder drive the same
    // engine: identical knobs must give identical results, so existing
    // callers can migrate without re-baselining experiments.
    let models = vec![zoo::mobilenet_v2(), zoo::gnmt()];
    for policy in [PolicyKind::SharedBaseline, PolicyKind::CamdnFull] {
        let old = shim_run(policy, &models);
        let new = Simulation::builder()
            .policy(policy)
            .workload(Workload::closed(models.clone(), 3))
            .seed(0xCA3D41)
            .warmup_rounds(1)
            .epoch_cycles(200_000)
            .run()
            .expect("builder run")
            .legacy_result()
            .expect("default detail retains the per-task table");
        assert_eq!(old, new, "{policy:?} shim and builder must agree");
    }
}
