//! Integration tests of the streaming result pipeline at the sweep
//! layer: the JSONL cell log must reproduce the in-memory grid
//! cell-for-cell, a killed-and-resumed grid must equal a cold run
//! bit-for-bit, and the `SeedAggregate` sink must fold the seeds axis
//! into the same statistics a hand computation gives.

use camdn::{
    CellSink, DetailLevel, PolicyKind, SeedAggregate, Sweep, SweepBuilder, SweepResult, Workload,
};
use camdn_models::zoo;

fn unique_path(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "camdn-streaming-{name}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    p
}

fn small_grid() -> SweepBuilder {
    Sweep::grid()
        .policies([PolicyKind::SharedBaseline, PolicyKind::CamdnFull])
        .workload("mb", Workload::closed(vec![zoo::mobilenet_v2()], 2))
        .seeds([1, 2, 3])
}

fn assert_same_cells(a: &SweepResult, b: &SweepResult) {
    assert_eq!(a.axes, b.axes);
    assert_eq!(a.cells.len(), b.cells.len());
    for (x, y) in a.cells.iter().zip(&b.cells) {
        assert_eq!(x.coord, y.coord);
        assert_eq!(x.outcome, y.outcome, "cell {:?} diverged", x.coord);
    }
}

#[test]
fn streamed_grid_equals_in_memory_grid_cell_for_cell() {
    let path = unique_path("streamed");
    let streamed = small_grid().run_streamed(&path).expect("streamed grid");
    let in_memory = small_grid().run().expect("in-memory grid");
    assert_same_cells(&streamed, &in_memory);
    assert_eq!(streamed.cells_resumed, 0);

    // The log itself carries a header + one line per cell, and feeding
    // it back through resume re-runs nothing.
    let text = std::fs::read_to_string(&path).expect("log exists");
    assert_eq!(text.lines().count(), 1 + streamed.cells.len());
    let header = text.lines().next().unwrap();
    assert!(header.contains("camdn-sweep-cells/3"));
    assert!(
        header.contains("\"channels\": [\"default\"]"),
        "header names the channel axis: {header}"
    );
    assert!(
        header.contains("\"hist_edges\": [65536,"),
        "header names the latency bucket edges: {header}"
    );
    // Every ok cell line serializes the latency tail.
    for line in text.lines().skip(1) {
        assert!(line.contains("\"lat_counts\": ["), "cell line: {line}");
        assert!(line.contains("\"p99_ms\": "), "cell line: {line}");
    }
    let resumed = small_grid().resume(&path).expect("resume full log");
    assert_eq!(
        resumed.cells_resumed,
        resumed.cells.len(),
        "a complete log re-runs nothing"
    );
    assert_same_cells(&resumed, &in_memory);
    std::fs::remove_file(&path).ok();
}

#[test]
fn killed_grid_resumes_to_a_bit_for_bit_cold_run() {
    // Simulate a mid-flight kill: stream the grid, then truncate the
    // log to its header + first two cell lines + one *torn* line (a
    // partial write the kill interrupted).
    let path = unique_path("resume");
    let cold = small_grid().run_streamed(&path).expect("cold grid");
    let text = std::fs::read_to_string(&path).expect("log");
    let lines: Vec<&str> = text.lines().collect();
    let keep = 3; // header + 2 cells
    let torn = &lines[keep][..lines[keep].len() / 2];
    let truncated = format!("{}\n{}", lines[..keep].join("\n"), torn);
    std::fs::write(&path, truncated).expect("truncate log");

    let resumed = small_grid().resume(&path).expect("resumed grid");
    assert_eq!(
        resumed.cells_resumed, 2,
        "exactly the two recorded cells are skipped"
    );
    assert_same_cells(&resumed, &cold);
    // Bit-for-bit includes the latency tail: resumed-from-log cells
    // reproduce their recorded bucket counts exactly.
    for cell in &resumed.cells {
        let tail = cell.outcome.as_ref().unwrap().summary.latency_tail;
        assert!(tail.total() > 0, "every cell measured inferences");
        assert!(tail.p99_ms() > 0.0);
    }

    // After the resume the log is complete again: resuming once more
    // runs nothing and still matches.
    let resumed_again = small_grid().resume(&path).expect("second resume");
    assert_eq!(resumed_again.cells_resumed, resumed_again.cells.len());
    assert_same_cells(&resumed_again, &cold);
    std::fs::remove_file(&path).ok();
}

#[test]
fn resume_accepts_a_v1_log_with_empty_tails_and_upgrades_it() {
    // Reconstruct, byte for byte, the log the retired
    // `camdn-sweep-cells/1` writer produced for this grid's first two
    // cells (no channel axis, no latency-tail fields), and resume from
    // it: the recorded coordinates must be served from the log — with
    // an *empty* tail, since v1 never recorded one — while everything
    // else runs fresh, and the rewritten log must be upgraded to /3.
    let path = unique_path("v1log");
    let cold = small_grid().run().expect("cold grid");
    let v1_header = "{\"schema\": \"camdn-sweep-cells/1\", \
                     \"policies\": [\"Baseline\", \"CaMDN(Full)\"], \"socs\": [\"paper\"], \
                     \"caches\": [\"default\"], \"workloads\": [\"mb\"], \"qos\": [\"closed\"], \
                     \"lookaheads\": [\"default\"], \"seeds\": [1, 2, 3]}";
    let mut log = String::from(v1_header);
    for cell in &cold.cells[..2] {
        let r = cell.outcome.as_ref().unwrap();
        let m = &r.summary;
        let c = &cell.coord;
        log.push_str(&format!(
            "\n{{\"policy\": {}, \"soc\": {}, \"cache\": {}, \"workload\": {}, \"qos\": {}, \
             \"lookahead\": {}, \"seed\": {}, \"wall_s\": 0.5, \"ok\": true, \
             \"label\": \"{}\", \"tasks\": {}, \"inferences\": {}, \"cache_hit_rate\": {}, \
             \"avg_latency_ms\": {}, \"mem_mb_per_model\": {}, \"makespan_ms\": {}, \
             \"sla_rate\": {}, \"multicast_saved_mb\": {}}}",
            c.policy,
            c.soc,
            c.cache,
            c.workload,
            c.qos,
            c.lookahead,
            c.seed,
            r.policy,
            m.tasks,
            m.inferences,
            m.cache_hit_rate,
            m.avg_latency_ms,
            m.mem_mb_per_model,
            m.makespan_ms,
            m.sla_rate,
            m.multicast_saved_mb,
        ));
    }
    log.push('\n');
    std::fs::write(&path, log).expect("write v1 log");

    let resumed = small_grid().resume(&path).expect("v1 log accepted");
    assert_eq!(resumed.cells_resumed, 2, "both v1 cells are served");
    for (i, (x, y)) in cold.cells.iter().zip(&resumed.cells).enumerate() {
        let (a, b) = (x.outcome.as_ref().unwrap(), y.outcome.as_ref().unwrap());
        assert_eq!(a.policy, b.policy);
        // Scalar aggregates round-trip bit-for-bit even from v1...
        assert_eq!(a.summary.avg_latency_ms, b.summary.avg_latency_ms);
        assert_eq!(a.summary.makespan_ms, b.summary.makespan_ms);
        assert_eq!(a.summary.inferences, b.summary.inferences);
        if i < 2 {
            // ...but v1 never recorded a tail: the resumed cells carry
            // an empty one (documented compatibility trade-off).
            assert_eq!(b.summary.latency_tail.total(), 0);
        } else {
            // Fresh cells measured their tails as usual.
            assert_eq!(a.summary.latency_tail, b.summary.latency_tail);
            assert!(b.summary.latency_tail.total() > 0);
        }
    }
    // The resume rewrote the log in the current schema.
    let text = std::fs::read_to_string(&path).expect("rewritten log");
    assert!(text.lines().next().unwrap().contains("camdn-sweep-cells/3"));
    std::fs::remove_file(&path).ok();
}

#[test]
fn resume_rejects_a_v1_log_when_the_grid_has_a_channel_axis() {
    // A v1 grid could not express a channel axis, so its coordinates
    // are ambiguous against one: the log must be rejected as a
    // different grid, not silently merged at channel 0.
    let path = unique_path("v1chan");
    let v1_header = "{\"schema\": \"camdn-sweep-cells/1\", \
                     \"policies\": [\"Baseline\"], \"socs\": [\"paper\"], \
                     \"caches\": [\"default\"], \"workloads\": [\"mb\"], \"qos\": [\"closed\"], \
                     \"lookaheads\": [\"default\"], \"seeds\": [1]}";
    std::fs::write(&path, format!("{v1_header}\n")).expect("write v1 header");
    let err = Sweep::grid()
        .workload("mb", Workload::closed(vec![zoo::mobilenet_v2()], 2))
        .seeds([1])
        .channel_counts([2, 4])
        .resume(&path)
        .expect_err("channel-axis grid must reject a v1 log");
    assert!(err.to_string().contains("different grid"), "{err}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn resume_rejects_a_log_from_a_different_grid() {
    let path = unique_path("mismatch");
    small_grid().run_streamed(&path).expect("grid");
    // Same file, different axes: one more seed.
    let err = small_grid()
        .seeds([4])
        .resume(&path)
        .expect_err("axes mismatch must fail");
    assert!(
        err.to_string().contains("different grid"),
        "unexpected error: {err}"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn detailed_cells_stream_summaries_and_resume_summary_only() {
    // Streaming records summaries; a resumed cell is summary-only even
    // when the live grid carries detail. The summaries still match.
    let path = unique_path("detail");
    let cold = small_grid()
        .detail(DetailLevel::Tasks)
        .run_streamed(&path)
        .expect("detailed grid");
    let resumed = small_grid()
        .detail(DetailLevel::Tasks)
        .resume(&path)
        .expect("resumed grid");
    for (x, y) in cold.cells.iter().zip(&resumed.cells) {
        let (a, b) = (x.outcome.as_ref().unwrap(), y.outcome.as_ref().unwrap());
        assert_eq!(a.summary, b.summary);
        assert_eq!(a.policy, b.policy);
        assert!(a.detail.is_some(), "live cell keeps its detail");
        assert!(b.detail.is_none(), "resumed cell is summary-only");
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn seed_aggregate_sink_matches_in_memory_statistics() {
    // Drive the grid into the SeedAggregate sink without buffering,
    // and compare to folding the buffered result; both must agree with
    // a hand computation over the per-seed summaries.
    let mut sink = SeedAggregate::new();
    let info = small_grid().run_with_sink(&mut sink).expect("sink run");
    assert_eq!(info.cells_total, 6);
    assert_eq!(info.cells_run, 6);
    let streamed_stats = sink.stats();

    let buffered = small_grid().run().expect("in-memory grid");
    let buffered_stats = buffered.seed_stats();
    assert_eq!(streamed_stats.len(), 2, "one group per policy");
    assert_eq!(buffered_stats.len(), 2);

    for (s, b) in streamed_stats.iter().zip(&buffered_stats) {
        assert_eq!(s.coord, b.coord);
        assert_eq!(s.n, 3, "three seeds per group");
        assert_eq!(s.errors, 0);
        assert_eq!(s.avg_latency_ms, b.avg_latency_ms);
        assert_eq!(s.makespan_ms, b.makespan_ms);
    }

    // Hand computation for the baseline group (cells 0..3).
    let lats: Vec<f64> = buffered.cells[..3]
        .iter()
        .map(|c| c.outcome.as_ref().unwrap().summary.avg_latency_ms)
        .collect();
    let mean = lats.iter().sum::<f64>() / 3.0;
    let var = lats.iter().map(|l| (l - mean).powi(2)).sum::<f64>() / 2.0;
    let g = &buffered_stats[0];
    assert!((g.avg_latency_ms.mean - mean).abs() < 1e-9);
    assert!((g.avg_latency_ms.stddev - var.sqrt()).abs() < 1e-9);
    let expect_ci = camdn::common::stats::t95(2) * var.sqrt() / 3.0_f64.sqrt();
    assert!((g.avg_latency_ms.ci95 - expect_ci).abs() < 1e-9);
}

/// A sink that only counts, standing in for any custom consumer.
struct Counting(usize);

impl CellSink for Counting {
    fn on_cell(&mut self, _coord: camdn::CellCoord, outcome: camdn::CellOutcome) {
        assert!(outcome.outcome.is_ok());
        self.0 += 1;
    }
}

#[test]
fn custom_sinks_see_every_cell_without_buffering() {
    let mut sink = Counting(0);
    let info = small_grid().run_with_sink(&mut sink).expect("sink run");
    assert_eq!(sink.0, 6);
    assert!(info.plan_cache.is_some(), "shared plan cache still applies");
    assert!(info.threads >= 1);
}
