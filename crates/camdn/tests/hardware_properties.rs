//! Randomized tests on the hardware substrates: address packing,
//! page-table translation, DRAM timing monotonicity and cache
//! statistics consistency. Driven by the repo's deterministic
//! [`SimRng`] (the build runs offline, so the usual property-testing
//! crates are unavailable).

use camdn::cache::{CacheGeometry, Nec, Pcaddr, SharedCache};
use camdn::common::config::{CacheConfig, DramConfig};
use camdn::common::types::{PhysAddr, VirtCacheAddr, MIB};
use camdn::common::{EventQueue, SimRng};
use camdn::dram::DramModel;
use camdn::npu::CachePageTable;
use std::collections::BTreeMap;

#[test]
fn pcaddr_pack_unpack_roundtrip() {
    let g = CacheGeometry::new(&CacheConfig::paper_default());
    let mut rng = SimRng::new(0x1);
    for _ in 0..128 {
        let p = Pcaddr {
            slice: rng.next_below(8) as u32,
            set: rng.next_below(2048) as u32,
            way: rng.next_below(16) as u32,
            offset: rng.next_below(64) as u32,
        };
        assert_eq!(g.unpack(g.pack(p)), p);
    }
}

#[test]
fn page_lines_are_unique() {
    let g = CacheGeometry::new(&CacheConfig::paper_default());
    let mut rng = SimRng::new(0x2);
    for _ in 0..128 {
        let pcpn = rng.next_below(512) as u32;
        let mut packed: Vec<u64> = (0..g.lines_per_page())
            .map(|i| g.pack(g.line_in_page(pcpn, i)))
            .collect();
        let before = packed.len();
        packed.sort_unstable();
        packed.dedup();
        assert_eq!(before, packed.len(), "pcpn={pcpn}");
    }
}

#[test]
fn cpt_translation_is_consistent() {
    let mut rng = SimRng::new(0x3);
    for _ in 0..128 {
        // Unique vcpns; pcpns may repeat, which the CPT itself permits
        // (exclusivity lives in the NEC/allocator).
        let mut mappings: BTreeMap<u32, u32> = BTreeMap::new();
        for _ in 0..rng.next_range(1, 63) {
            mappings.insert(rng.next_below(512) as u32, rng.next_range(128, 511) as u32);
        }
        let probe = rng.next_below(512 * 32 * 1024);
        let mut cpt = CachePageTable::new(512, 32 * 1024);
        for (&v, &p) in &mappings {
            cpt.map(v, p).unwrap();
        }
        let vcaddr = VirtCacheAddr(probe);
        let vcpn = (probe / (32 * 1024)) as u32;
        match cpt.translate(vcaddr) {
            Ok((pcpn, off)) => {
                assert_eq!(Some(&pcpn), mappings.get(&vcpn));
                assert_eq!(off, probe % (32 * 1024));
            }
            Err(_) => assert!(!mappings.contains_key(&vcpn)),
        }
    }
}

#[test]
fn dram_completion_is_monotone_in_time() {
    // The same burst issued later never completes earlier.
    let mut rng = SimRng::new(0x4);
    for _ in 0..128 {
        let t1 = rng.next_below(1_000_000);
        let dt = rng.next_range(1, 999_999);
        let lines = rng.next_range(1, 255);
        let addr = rng.next_below(1 << 30);
        let mut a = DramModel::new(DramConfig::paper_default(), 64);
        let mut b = DramModel::new(DramConfig::paper_default(), 64);
        let done1 = a.access_burst(t1, PhysAddr(addr), lines, false, 0);
        let done2 = b.access_burst(t1 + dt, PhysAddr(addr), lines, false, 0);
        assert!(done2 >= done1, "t1={t1} dt={dt} lines={lines}");
        assert!(done1 > t1);
    }
}

#[test]
fn dram_traffic_is_exact() {
    let mut rng = SimRng::new(0x5);
    for _ in 0..128 {
        let lines = rng.next_below(1024);
        let write = rng.next_below(2) == 1;
        let mut d = DramModel::new(DramConfig::paper_default(), 64);
        d.access_burst(0, PhysAddr(0), lines, write, 0);
        assert_eq!(d.stats().total_bytes(), lines * 64);
    }
}

#[test]
fn cache_stats_balance() {
    let mut rng = SimRng::new(0x6);
    for _ in 0..32 {
        let cfg = CacheConfig::paper_default();
        let mut cache = SharedCache::new(&cfg);
        let mut dram = DramModel::new(DramConfig::paper_default(), 64);
        let mask = cache.full_way_mask();
        let mut t = 0;
        for _ in 0..rng.next_range(1, 19) {
            let base = rng.next_below(4 * MIB);
            let bytes = rng.next_range(64, 65_535);
            let write = rng.next_below(2) == 1;
            t += 100_000;
            let out = cache.access_range(t, PhysAddr(base), bytes, write, mask, &mut dram);
            let lines = (base + bytes - 1) / 64 - base / 64 + 1;
            assert_eq!(out.hits + out.misses, lines);
            assert!(out.finish >= t);
        }
        let s = cache.stats();
        assert_eq!(s.fills.get(), s.misses.get(), "every miss fills (RFO)");
        assert!(s.writebacks.get() <= s.misses.get());
    }
}

#[test]
fn event_queue_is_time_ordered() {
    let mut rng = SimRng::new(0x7);
    for _ in 0..64 {
        let events: Vec<(u64, u32)> = (0..rng.next_range(1, 199))
            .map(|_| (rng.next_below(1000), rng.next_below(100) as u32))
            .collect();
        let mut q = EventQueue::new();
        for &(t, p) in &events {
            q.push(t, p);
        }
        let mut last = 0;
        let mut n = 0;
        while let Some((t, _)) = q.pop() {
            assert!(t >= last);
            last = t;
            n += 1;
        }
        assert_eq!(n, events.len());
    }
}

#[test]
fn nec_and_transparent_paths_share_geometry() {
    // The NEC's first page sits exactly after the general-purpose ways.
    let cfg = CacheConfig::paper_default();
    let g = CacheGeometry::new(&cfg);
    let nec = Nec::new(&cfg);
    let (way, set) = g.page_location(nec.first_pcpn());
    assert_eq!(way, cfg.ways - cfg.npu_ways);
    assert_eq!(set, 0);
}
