//! Integration tests of the parallel sweep subsystem: every grid cell
//! must be bit-for-bit the result of running that configuration alone
//! through `Simulation::builder()` — with and without the shared
//! mapping-plan cache — in input order, regardless of thread count, and
//! a broken cell must surface as its own error without disturbing its
//! neighbors.

use camdn::common::types::MIB;
use camdn::runtime::{Policy, PolicyCapabilities, Selection};
use camdn::sweep::run_cells;
use camdn::{DetailLevel, EngineError, PolicyKind, RunOutput, Simulation, Sweep, Workload};
use camdn_models::zoo;

fn small() -> Vec<camdn_models::Model> {
    vec![zoo::mobilenet_v2()]
}

fn pair() -> Vec<camdn_models::Model> {
    vec![zoo::mobilenet_v2(), zoo::efficientnet_b0()]
}

/// Serial ground truth for one (policy, cache-bytes, workload) cell.
fn serial(policy: PolicyKind, cache: u64, models: Vec<camdn_models::Model>) -> RunOutput {
    Simulation::builder()
        .policy(policy)
        .soc(camdn::common::SocConfig::paper_default().with_cache_bytes(cache))
        .workload(Workload::closed(models, 2))
        .run()
        .expect("serial cell")
}

#[test]
fn grid_cells_match_serial_runs_bit_for_bit() {
    let policies = [PolicyKind::SharedBaseline, PolicyKind::CamdnFull];
    let caches = [8 * MIB, 16 * MIB];
    let workloads = [("mb", small()), ("mb+eb", pair())];

    // The same grid, with and without the shared mapping-plan cache.
    for shared_cache in [true, false] {
        let grid = Sweep::grid()
            .policies(policies)
            .cache_bytes(caches)
            .workloads(
                workloads
                    .iter()
                    .map(|(l, m)| (l.to_string(), Workload::closed(m.clone(), 2))),
            )
            .shared_plan_cache(shared_cache)
            .detail(DetailLevel::Tasks)
            .run()
            .expect("grid");
        assert_eq!(grid.cells.len(), 8);
        assert_eq!(grid.ok_count(), 8);
        assert_eq!(grid.plan_cache.is_some(), shared_cache);
        for cell in &grid.cells {
            let c = &cell.coord;
            let expect = serial(
                policies[c.policy],
                caches[c.cache],
                workloads[c.workload].1.clone(),
            );
            assert_eq!(
                *cell.outcome.as_ref().unwrap(),
                expect,
                "cell {:?} (shared_cache={shared_cache}) diverged from its serial run",
                c
            );
        }
    }
}

#[test]
fn order_is_preserved_under_thread_oversubscription() {
    // Many more workers than cores, duplicate seeds scattered through
    // the axis: results must land at their own indices, not the order
    // workers finish in.
    let seeds: Vec<u64> = vec![7, 1, 7, 3, 1, 7, 9, 3, 1, 7, 5, 2];
    let grid = Sweep::grid()
        .policy(PolicyKind::SharedBaseline)
        .workload("mb", Workload::closed(small(), 2))
        .seeds(seeds.clone())
        .threads(8)
        .detail(DetailLevel::Tasks)
        .run()
        .expect("seed grid");
    assert_eq!(grid.cells.len(), seeds.len());
    for (i, cell) in grid.cells.iter().enumerate() {
        assert_eq!(cell.coord.seed, i, "cell {i} not at its own index");
        assert_eq!(grid.index_of(&cell.coord), i);
        let expect = Simulation::builder()
            .policy(PolicyKind::SharedBaseline)
            .seed(seeds[i])
            .workload(Workload::closed(small(), 2))
            .run()
            .unwrap();
        assert_eq!(
            *cell.outcome.as_ref().unwrap(),
            expect,
            "seed {} at index {i} mis-attributed",
            seeds[i]
        );
    }
}

#[test]
fn error_cells_do_not_disturb_their_neighbors() {
    // The middle workload is empty: its cells must carry EmptyWorkload
    // while every neighbor still matches its serial run.
    let grid = Sweep::grid()
        .policies([PolicyKind::SharedBaseline, PolicyKind::CamdnFull])
        .workload("good", Workload::closed(small(), 2))
        .workload("empty", Workload::closed(vec![], 2))
        .workload("also-good", Workload::closed(pair(), 2))
        .detail(DetailLevel::Tasks)
        .run()
        .expect("grid with a broken cell");
    assert_eq!(grid.cells.len(), 6);
    assert_eq!(grid.ok_count(), 4);
    for cell in &grid.cells {
        let c = &cell.coord;
        if c.workload == 1 {
            assert_eq!(
                cell.outcome.as_ref().err(),
                Some(&EngineError::EmptyWorkload)
            );
            continue;
        }
        let models = if c.workload == 0 { small() } else { pair() };
        let expect = Simulation::builder()
            .policy([PolicyKind::SharedBaseline, PolicyKind::CamdnFull][c.policy])
            .workload(Workload::closed(models, 2))
            .run()
            .unwrap();
        assert_eq!(*cell.outcome.as_ref().unwrap(), expect);
    }
    assert_eq!(grid.errors().count(), 2);
}

/// A policy that panics on its first scheduling decision — stands in
/// for any internal invariant failure inside one cell.
struct Exploding;

impl Policy for Exploding {
    fn label(&self) -> &str {
        "Exploding"
    }
    fn capabilities(&self) -> PolicyCapabilities {
        PolicyCapabilities::default()
    }
    fn select_candidate(
        &mut self,
        _now: camdn::common::types::Cycle,
        _task: u32,
        _mct: &camdn::mapper::Mct,
        _lbm_active: bool,
        _idle_pages: u32,
    ) -> Selection {
        panic!("policy exploded mid-run");
    }
}

#[test]
fn a_panicking_cell_is_caught_as_a_structured_error() {
    let ok = || {
        Simulation::builder()
            .policy(PolicyKind::SharedBaseline)
            .workload(Workload::closed(small(), 2))
    };
    let boom = Simulation::builder()
        .policy_instance(Box::new(Exploding))
        .workload(Workload::closed(small(), 2));
    let runs = run_cells(vec![ok(), boom, ok()], Some(2));
    assert_eq!(runs.len(), 3);
    match &runs[1].outcome {
        Err(EngineError::Panicked { detail }) => {
            assert!(detail.contains("policy exploded"), "{detail}")
        }
        other => panic!("expected Panicked, got {other:?}"),
    }
    let expect = ok().run().unwrap();
    for i in [0, 2] {
        assert_eq!(
            *runs[i].outcome.as_ref().unwrap(),
            expect,
            "neighbor {i} disturbed by the panicking cell"
        );
    }
}

#[test]
fn shared_plan_cache_maps_each_model_once_per_grid() {
    // One worker: concurrent cold cells may legitimately both miss the
    // same key (lock-brief lookups), so exact counts need serial order.
    let grid = Sweep::grid()
        .policies(PolicyKind::ALL)
        .workload("pair", Workload::closed(pair(), 2))
        .threads(1)
        .run()
        .expect("grid");
    assert_eq!(grid.ok_count(), 5);
    let stats = grid.plan_cache.expect("shared cache is the default");
    assert_eq!(
        stats.model_misses, 2,
        "two distinct models must be mapped exactly once each"
    );
    assert_eq!(
        stats.model_hits,
        5 * 2 - 2,
        "every other cell lookup must be a hit"
    );
}
