//! Cross-crate invariants of the co-design: page exclusivity, CPT
//! consistency and mapping/plan agreement, including randomized checks
//! driven by the repo's deterministic [`SimRng`] (the build runs
//! offline, so the usual property-testing crates are unavailable).

use camdn::cache::Nec;
use camdn::common::config::{CacheConfig, NpuConfig};
use camdn::common::SimRng;
use camdn::core::{install_region, teardown_region, PageAllocator};
use camdn::mapper::{
    lower, map_layer_lwm, map_model, LowerMode, MapperConfig, PlanSizes, TensorKind,
};
use camdn::models::{zoo, Layer, LoopNest, OpKind};
use camdn::npu::NpuCore;

fn plan_sizes(l: &Layer) -> PlanSizes {
    PlanSizes {
        weight: l.weight_operand_bytes(),
        input: l.input_bytes(),
        output: l.output_bytes(),
        bias: l
            .static_weight_bytes()
            .saturating_sub(l.nest.weight_bytes()),
    }
}

#[test]
fn plans_agree_with_candidates_across_the_zoo() {
    // For every layer of every model and every LWM candidate, the
    // unrolled plan's DRAM traffic equals the candidate's model.
    let cfg = MapperConfig::paper_default();
    for model in zoo::all() {
        let mapping = map_model(&model, &cfg);
        for (mct, layer) in mapping.mcts.iter().zip(&model.layers) {
            let sizes = plan_sizes(layer);
            for cand in &mct.lwm {
                let plan = lower(cand, sizes, LowerMode::Camdn);
                assert_eq!(
                    plan.dram_bytes(),
                    cand.dram_bytes,
                    "{}/{} LWM pneed={}",
                    model.name,
                    layer.name,
                    cand.pneed
                );
            }
            if let Some(lbm) = &mct.lbm {
                let plan = lower(lbm, sizes, LowerMode::Camdn);
                assert_eq!(
                    plan.dram_bytes(),
                    lbm.dram_bytes,
                    "{}/{} LBM",
                    model.name,
                    layer.name
                );
            }
        }
    }
}

#[test]
fn lbm_never_moves_more_than_lwm_zero() {
    // LBM pins intermediates; it must never exceed the zero-cache LWM's
    // DRAM traffic for the same layer.
    let cfg = MapperConfig::paper_default();
    for model in zoo::all() {
        let mapping = map_model(&model, &cfg);
        for mct in &mapping.mcts {
            if let Some(lbm) = &mct.lbm {
                assert!(
                    lbm.dram_bytes <= mct.lwm[0].dram_bytes,
                    "{} layer {}",
                    model.name,
                    mct.layer_idx
                );
            }
        }
    }
}

#[test]
fn region_lifecycle_is_leak_free_across_many_layers() {
    let cache = CacheConfig::paper_default();
    let mut nec = Nec::new(&cache);
    let mut alloc = PageAllocator::new(nec.first_pcpn(), nec.npu_pages());
    let mut npu = NpuCore::new(0, NpuConfig::paper_default(), 512, cache.page_bytes);
    let cfg = MapperConfig::paper_default();
    let model = zoo::vit_base16();
    let total = alloc.total_pages();
    for (i, layer) in model.layers.iter().enumerate().take(40) {
        let cand = map_layer_lwm(layer, &cfg, 2 << 20);
        if cand.pneed == 0 {
            continue;
        }
        let grant = install_region(0, &cand, &mut alloc, &mut nec, &mut npu)
            .unwrap_or_else(|e| panic!("layer {i}: {e}"));
        assert_eq!(nec.claimed_pages(), cand.pneed);
        teardown_region(&grant, &mut alloc, &mut nec, &mut npu).unwrap();
        assert_eq!(alloc.idle_pages(), total, "leak after layer {i}");
        assert_eq!(npu.cpt().mapped_count(), 0);
    }
}

#[test]
fn solver_traffic_at_least_lower_bound() {
    // Randomized conv shapes: the solver may never report less DRAM
    // traffic than the cold-miss lower bound, and cached bytes stay
    // within the budget.
    let mut rng = SimRng::new(0xC0DE_0001);
    let kernels = [1u64, 3, 5, 7];
    for _ in 0..64 {
        let oc = rng.next_range(1, 511);
        let ohw = rng.next_range(1, 63);
        let ic = rng.next_range(1, 511);
        let k = *rng.choose(&kernels);
        let cu_kib = rng.next_below(4096);
        let layer = Layer::new("p", OpKind::Conv, LoopNest::conv(oc, ohw, ohw, ic, k, 1));
        let sizes = camdn::mapper::TensorSizes::of(&layer);
        let sol = camdn::mapper::solve(&layer, &NpuConfig::paper_default(), cu_kib << 10);
        assert!(
            sol.dram_bytes >= sizes.lower_bound(),
            "oc={oc} ohw={ohw} ic={ic} k={k} cu={cu_kib}KiB"
        );
        // Cached bytes never exceed the budget.
        assert!(sol.cached_weight + sol.cached_input <= (cu_kib << 10).max(1));
    }
}

#[test]
fn more_cache_budget_never_increases_traffic() {
    let mut rng = SimRng::new(0xC0DE_0002);
    let npu = NpuConfig::paper_default();
    for _ in 0..64 {
        let oc = rng.next_range(32, 1023);
        let m = rng.next_range(16, 255);
        let ic = rng.next_range(64, 2047);
        let layer = Layer::new("fc", OpKind::Linear, LoopNest::matmul(m, ic, oc));
        let mut last = u64::MAX;
        for cu in [0u64, 256 << 10, 1 << 20, 4 << 20] {
            let sol = camdn::mapper::solve(&layer, &npu, cu);
            assert!(
                sol.dram_bytes <= last,
                "oc={oc} m={m} ic={ic} cu={cu}: {} > {last}",
                sol.dram_bytes
            );
            last = sol.dram_bytes;
        }
    }
}

#[test]
fn allocator_exclusivity_under_random_ops() {
    // Random acquire/release interleavings over four tasks: no page is
    // ever owned twice and held + idle always equals the total.
    let mut rng = SimRng::new(0xC0DE_0003);
    for _ in 0..64 {
        let mut alloc = PageAllocator::new(128, 96);
        let mut held: Vec<Vec<u32>> = vec![Vec::new(); 4];
        let n_ops = rng.next_range(1, 59);
        for _ in 0..n_ops {
            let task = rng.next_below(4) as usize;
            let n = rng.next_range(1, 19) as u32;
            if held[task].is_empty() {
                if let Ok(pages) = alloc.acquire(task as u32, n) {
                    held[task] = pages;
                }
            } else {
                let pages = std::mem::take(&mut held[task]);
                alloc.release(task as u32, &pages).unwrap();
            }
            // Invariant: no page owned twice.
            let mut all: Vec<u32> = held.iter().flatten().copied().collect();
            let before = all.len();
            all.sort_unstable();
            all.dedup();
            assert_eq!(before, all.len());
            // Conservation: held + idle == total.
            let held_count: u32 = held.iter().map(|h| h.len() as u32).sum();
            assert_eq!(held_count + alloc.idle_pages(), 96);
        }
    }
}

#[test]
fn plan_output_bytes_complete() {
    // Every plan writes exactly the layer's output bytes, over random
    // conv shapes.
    let mut rng = SimRng::new(0xC0DE_0004);
    let cfg = MapperConfig::paper_default();
    for _ in 0..64 {
        let oc = rng.next_range(8, 255);
        let ohw = rng.next_range(2, 31);
        let ic = rng.next_range(8, 255);
        let layer = Layer::new("c", OpKind::Conv, LoopNest::conv(oc, ohw, ohw, ic, 3, 1));
        let cand = map_layer_lwm(&layer, &cfg, 1 << 20);
        let plan = lower(&cand, plan_sizes(&layer), LowerMode::Camdn);
        let out: u64 = plan
            .phases
            .iter()
            .flat_map(|p| &p.transfers)
            .filter(|t| t.tensor == TensorKind::Output)
            .map(|t| t.bytes)
            .sum();
        assert_eq!(out, layer.output_bytes(), "oc={oc} ohw={ohw} ic={ic}");
    }
}
