//! End-to-end integration tests spanning every crate: model zoo →
//! mapper → co-design → multi-tenant engine, through the builder API.

use camdn::common::types::MIB;
use camdn::common::SocConfig;
use camdn::models::zoo;
use camdn::{PolicyKind, RunOutput, Simulation, Workload};

fn quick(policy: PolicyKind, models: Vec<camdn::models::Model>) -> RunOutput {
    Simulation::builder()
        .policy(policy)
        .workload(Workload::closed(models, 2))
        .run()
        .expect("quick run")
}

#[test]
fn every_policy_completes_a_mixed_workload() {
    let models = vec![zoo::mobilenet_v2(), zoo::gnmt(), zoo::efficientnet_b0()];
    for policy in PolicyKind::ALL {
        let r = quick(policy, models.clone());
        assert_eq!(r.tasks().len(), 3, "{policy:?}");
        assert_eq!(r.summary.tasks, 3, "{policy:?}");
        for t in r.tasks() {
            assert_eq!(t.inferences, 1, "{policy:?}/{}", t.abbr);
            assert!(t.mean_latency_ms > 0.0);
        }
    }
}

#[test]
fn camdn_full_reduces_traffic_on_the_zoo_mix() {
    // The headline claim of the paper at small scale: the full co-design
    // moves less DRAM data than the transparent baseline.
    let models = zoo::all();
    let base = quick(PolicyKind::Aurora, models.clone());
    let full = quick(PolicyKind::CamdnFull, models);
    assert!(
        full.summary.mem_mb_per_model < base.summary.mem_mb_per_model,
        "CaMDN {:.1} MB !< baseline {:.1} MB",
        full.summary.mem_mb_per_model,
        base.summary.mem_mb_per_model
    );
    assert!(
        full.summary.avg_latency_ms < base.summary.avg_latency_ms,
        "CaMDN {:.2} ms !< baseline {:.2} ms",
        full.summary.avg_latency_ms,
        base.summary.avg_latency_ms
    );
}

#[test]
fn camdn_full_beats_hw_only_on_intermediate_heavy_mix() {
    // Dynamic allocation (Algorithm 1) enables LBM that the static
    // split cannot: the MB/EF-heavy mix shows the gap (Fig. 7).
    let models = vec![
        zoo::mobilenet_v2(),
        zoo::efficientnet_b0(),
        zoo::mobilenet_v2(),
        zoo::efficientnet_b0(),
        zoo::resnet50(),
        zoo::resnet50(),
    ];
    let hw = quick(PolicyKind::CamdnHwOnly, models.clone());
    let full = quick(PolicyKind::CamdnFull, models);
    assert!(
        full.summary.mem_mb_per_model < hw.summary.mem_mb_per_model,
        "Full {:.1} MB !< HW-only {:.1} MB",
        full.summary.mem_mb_per_model,
        hw.summary.mem_mb_per_model
    );
}

#[test]
fn contention_degrades_the_baseline_not_camdn() {
    let lone = quick(PolicyKind::SharedBaseline, vec![zoo::efficientnet_b0()]);
    let crowd_models: Vec<_> = (0..8).map(|_| zoo::efficientnet_b0()).collect();
    let crowd = quick(PolicyKind::SharedBaseline, crowd_models.clone());
    let ratio_base = crowd.tasks()[0].mean_latency_ms / lone.tasks()[0].mean_latency_ms;

    let lone_c = quick(PolicyKind::CamdnFull, vec![zoo::efficientnet_b0()]);
    let crowd_c = quick(PolicyKind::CamdnFull, crowd_models);
    let ratio_camdn = crowd_c.tasks()[0].mean_latency_ms / lone_c.tasks()[0].mean_latency_ms;

    assert!(
        ratio_base > ratio_camdn,
        "baseline degradation {ratio_base:.2}x should exceed CaMDN {ratio_camdn:.2}x"
    );
}

#[test]
fn scaling_cache_helps_the_baseline() {
    // Fig. 2: a bigger transparent cache absorbs more contention.
    let models: Vec<_> = zoo::all().into_iter().take(6).collect();
    let run = |bytes: u64| {
        Simulation::builder()
            .policy(PolicyKind::SharedBaseline)
            .soc(SocConfig::paper_default().with_cache_bytes(bytes))
            .workload(Workload::closed(models.clone(), 2))
            .run()
            .expect("scaling run")
    };
    let small = run(4 * MIB);
    let big = run(64 * MIB);
    assert!(
        big.summary.cache_hit_rate > small.summary.cache_hit_rate,
        "hit rate {:.3} @64MB !> {:.3} @4MB",
        big.summary.cache_hit_rate,
        small.summary.cache_hit_rate
    );
    assert!(big.summary.mem_mb_per_model < small.summary.mem_mb_per_model);
}

#[test]
fn qos_levels_order_sla_rates() {
    // Looser deadlines can only help the SLA rate.
    let models: Vec<_> = zoo::all().into_iter().take(4).collect();
    let mut rates = Vec::new();
    for scale in [0.8, 1.0, 1.2] {
        let r = Simulation::builder()
            .policy(PolicyKind::CamdnFull)
            .qos_scale(scale)
            .workload(Workload::closed(models.clone(), 2))
            .run()
            .expect("qos run");
        let sla: f64 = r.tasks().iter().map(|t| t.sla_rate).sum::<f64>() / r.tasks().len() as f64;
        rates.push(sla);
    }
    assert!(
        rates[0] <= rates[1] + 1e-9 && rates[1] <= rates[2] + 1e-9,
        "{rates:?}"
    );
}

#[test]
fn deterministic_across_runs_per_policy() {
    let models = vec![zoo::mobilenet_v2(), zoo::wav2vec2_base()];
    for policy in [PolicyKind::SharedBaseline, PolicyKind::CamdnFull] {
        let a = quick(policy, models.clone());
        let b = quick(policy, models.clone());
        assert_eq!(a, b, "{policy:?} must be deterministic");
    }
}
