//! Acceptance tests of the split result pipeline: the deprecated
//! `RunResult` shim must be bit-for-bit assembled from the
//! `RunSummary` + `RunDetail` pair for every built-in policy across
//! closed-loop, Poisson, bursty and QoS workloads, and the summary
//! must be identical at every `DetailLevel`.

use camdn::models::zoo;
use camdn::{DetailLevel, PolicyKind, Simulation, SimulationBuilder, Workload};

fn scenarios() -> Vec<(&'static str, Workload)> {
    let models = vec![zoo::mobilenet_v2(), zoo::efficientnet_b0()];
    vec![
        ("closed", Workload::closed(models.clone(), 2)),
        ("poisson", Workload::poisson(models.clone(), 0.05, 60.0)),
        ("bursty", Workload::bursty(models, 2, 2, 10.0)),
    ]
}

fn builder(policy: PolicyKind, workload: &Workload, qos: bool) -> SimulationBuilder {
    let mut b = Simulation::builder()
        .policy(policy)
        .workload(workload.clone())
        .warmup_rounds(0);
    if qos {
        b = b.qos_scale(1.0);
    }
    b
}

#[test]
#[allow(deprecated)]
fn legacy_shim_is_bit_for_bit_across_policies_and_workloads() {
    // RunOutput::legacy_result must reproduce exactly what the
    // pre-split aggregate returned: same policy label, same per-task
    // table, same scalars — across all 5 policies × 4 scenario kinds.
    for policy in PolicyKind::ALL {
        for qos in [false, true] {
            for (name, workload) in scenarios() {
                let out = builder(policy, &workload, qos).run().expect("run");
                let legacy = out.legacy_result().expect("default detail keeps tasks");
                assert_eq!(legacy.policy, out.policy, "{policy:?}/{name}/qos={qos}");
                assert_eq!(
                    legacy.tasks,
                    out.detail.as_ref().unwrap().tasks,
                    "{policy:?}/{name}/qos={qos}"
                );
                assert_eq!(legacy.cache_hit_rate, out.summary.cache_hit_rate);
                assert_eq!(legacy.avg_latency_ms, out.summary.avg_latency_ms);
                assert_eq!(legacy.mem_mb_per_model, out.summary.mem_mb_per_model);
                assert_eq!(legacy.makespan_ms, out.summary.makespan_ms);
                assert_eq!(legacy.multicast_saved_mb, out.summary.multicast_saved_mb);
            }
        }
    }
}

#[test]
fn summary_is_identical_at_every_detail_level() {
    // A summary-only run must be bit-for-bit the `summary` of a
    // detailed run: detail selection only changes what is retained,
    // never what is computed.
    for policy in PolicyKind::ALL {
        for (name, workload) in scenarios() {
            let levels = [DetailLevel::Summary, DetailLevel::Tasks, DetailLevel::Full];
            let runs: Vec<_> = levels
                .iter()
                .map(|&level| {
                    builder(policy, &workload, false)
                        .detail(level)
                        .run()
                        .expect("run")
                })
                .collect();
            assert_eq!(
                runs[0].summary, runs[1].summary,
                "{policy:?}/{name}: Summary vs Tasks"
            );
            assert_eq!(
                runs[1].summary, runs[2].summary,
                "{policy:?}/{name}: Tasks vs Full"
            );
            assert!(runs[0].detail.is_none(), "Summary retains no detail");
            let tasks_detail = runs[1].detail.as_ref().expect("Tasks retains the table");
            assert!(
                tasks_detail.latency_hist.is_none(),
                "histogram is Full-only"
            );
            let full_detail = runs[2].detail.as_ref().expect("Full retains the table");
            assert_eq!(tasks_detail.tasks, full_detail.tasks);
            let hist = full_detail.latency_hist.as_ref().expect("Full histogram");
            let measured: usize = runs[2].tasks().iter().map(|t| t.inferences).sum();
            assert_eq!(
                hist.total() as usize,
                measured,
                "{policy:?}/{name}: every measured inference lands in the histogram"
            );
            assert_eq!(runs[2].summary.inferences, measured);
        }
    }
}

#[test]
fn summary_sla_rate_is_inference_weighted() {
    let models = vec![zoo::mobilenet_v2(), zoo::efficientnet_b0()];
    let r = Simulation::builder()
        .policy(PolicyKind::CamdnFull)
        .workload(Workload::closed(models, 3))
        .qos_scale(0.8)
        .run()
        .expect("qos run");
    let num: f64 = r
        .tasks()
        .iter()
        .map(|t| t.sla_rate * t.inferences as f64)
        .sum();
    let den: f64 = r.tasks().iter().map(|t| t.inferences as f64).sum();
    assert!((r.summary.sla_rate - num / den).abs() < 1e-12);
}

#[test]
fn qos_metrics_runs_off_the_detail_tasks() {
    // The metrics helper consumes the per-task table of the split
    // pipeline and reports mismatched calibration as a typed error.
    let models = vec![zoo::mobilenet_v2(), zoo::mobilenet_v2()];
    let r = Simulation::builder()
        .policy(PolicyKind::Aurora)
        .workload(Workload::closed(models, 2))
        .qos_scale(1.0)
        .run()
        .expect("qos run");
    let iso = vec![1.0; r.tasks().len()];
    let m = camdn::runtime::qos_metrics(r.tasks(), &iso).expect("matched lengths");
    assert!(m.stp > 0.0 && m.stp <= r.tasks().len() as f64 + 1e-9);
    assert!(camdn::runtime::qos_metrics(r.tasks(), &[]).is_err());
}
