//! Whole-engine differential tests: the batched memory-system fast
//! paths (closed-form DRAM bursts, two-pass cache ranges, analytic
//! multicast replicas) must reproduce the per-line reference model
//! **exactly** — identical `RunOutput` aggregates, for every built-in
//! policy, across closed-loop, open-loop and QoS workloads.
//!
//! `RunOutput` derives `PartialEq` over every field (the scalar
//! summary plus, at the default detail level, per-task latencies and
//! DRAM traffic), so one equality assert covers the full observable
//! surface of a run.

use camdn::models::zoo;
use camdn::{PolicyKind, RunOutput, Simulation, SimulationBuilder, Workload};

fn diff(build: impl Fn() -> SimulationBuilder) -> (RunOutput, RunOutput) {
    let fast = build().reference_model(false).run().expect("batched run");
    let refm = build().reference_model(true).run().expect("reference run");
    (fast, refm)
}

#[test]
fn all_policies_match_reference_on_closed_multi_tenant() {
    let models = vec![
        zoo::mobilenet_v2(),
        zoo::efficientnet_b0(),
        zoo::resnet50(),
        zoo::gnmt(),
    ];
    for kind in PolicyKind::ALL {
        let (fast, refm) = diff(|| {
            Simulation::builder()
                .policy(kind)
                .workload(Workload::closed(models.clone(), 2))
        });
        assert_eq!(fast, refm, "{kind:?} diverged on the closed workload");
    }
}

#[test]
fn all_policies_match_reference_in_qos_mode() {
    // QoS mode exercises bandwidth throttling (per-transfer gates into
    // the DRAM model) and multi-NPU groups (multicast fetch paths).
    let models = vec![zoo::mobilenet_v2(), zoo::bert_base(), zoo::mobilenet_v2()];
    for kind in PolicyKind::ALL {
        let (fast, refm) = diff(|| {
            Simulation::builder()
                .policy(kind)
                .workload(Workload::closed(models.clone(), 2))
                .qos_scale(0.8)
        });
        assert_eq!(fast, refm, "{kind:?} diverged in QoS mode");
    }
}

#[test]
fn open_loop_poisson_matches_reference() {
    let models = vec![zoo::mobilenet_v2(), zoo::efficientnet_b0()];
    for kind in [PolicyKind::SharedBaseline, PolicyKind::CamdnFull] {
        let (fast, refm) = diff(|| {
            Simulation::builder()
                .policy(kind)
                .workload(Workload::poisson(models.clone(), 0.05, 60.0))
                .warmup_rounds(0)
        });
        assert_eq!(fast, refm, "{kind:?} diverged on the Poisson workload");
    }
}

#[test]
fn bursty_arrivals_match_reference() {
    let models: Vec<_> = (0..4).map(|_| zoo::mobilenet_v2()).collect();
    let (fast, refm) = diff(|| {
        Simulation::builder()
            .policy(PolicyKind::Moca)
            .workload(Workload::bursty(models.clone(), 2, 3, 10.0))
            .qos_scale(1.0)
            .warmup_rounds(0)
    });
    assert_eq!(fast, refm, "MoCA diverged on the bursty workload");
}

#[test]
fn large_tensor_stream_matches_reference() {
    // The heavy end of the zoo: multi-MB weight tensors streamed under
    // contention, far beyond the MSHR window — the regime the
    // closed-form fast paths were built for.
    let models = vec![
        zoo::gnmt(),
        zoo::bert_base(),
        zoo::resnet50(),
        zoo::gnmt(),
        zoo::bert_base(),
        zoo::resnet50(),
    ];
    for kind in [PolicyKind::SharedBaseline, PolicyKind::CamdnFull] {
        let (fast, refm) = diff(|| {
            Simulation::builder()
                .policy(kind)
                .workload(Workload::closed(models.clone(), 2))
        });
        assert_eq!(fast, refm, "{kind:?} diverged on the large-tensor workload");
    }
}

#[test]
fn seed_sweep_matches_reference() {
    // Different seeds shuffle NPU assignment and arrival draws into
    // different interleavings of the shared memory system.
    let models = vec![zoo::mobilenet_v2(), zoo::efficientnet_b0()];
    for seed in [1u64, 42, 0xDEAD, 0xCA3D41] {
        let (fast, refm) = diff(|| {
            Simulation::builder()
                .policy(PolicyKind::CamdnFull)
                .workload(Workload::closed(models.clone(), 2))
                .seed(seed)
        });
        assert_eq!(fast, refm, "seed {seed} diverged");
    }
}
