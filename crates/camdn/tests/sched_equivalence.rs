//! Cross-engine differential tests: the component-clock scheduler loop
//! (the default) must reproduce the retained legacy monolithic advance
//! loop (`SimulationBuilder::legacy_scheduler`) **exactly** — identical
//! `RunOutput` aggregates — across all five built-in policies, every
//! workload kind (closed, Poisson, bursty, QoS, traced), fault and
//! fault-free plans, every detail level, and `BudgetExceeded` partials.
//!
//! `RunOutput` derives `PartialEq` over every field (the scalar
//! summary plus, at the default detail level and above, per-task
//! latencies, DRAM traffic and queue-depth samples), so one equality
//! assert covers the full observable surface of a run. The suite is
//! the gate on the scheduler refactor: any drift between the two
//! loops — event order, epoch drift, RNG consumption, fault timing —
//! lands here as a bit-for-bit mismatch.

use camdn::models::zoo;
use camdn::{
    DetailLevel, EngineError, FaultEvent, FaultGenConfig, FaultKind, FaultPlan, PolicyKind,
    RunOutput, Simulation, SimulationBuilder, Workload,
};

/// Runs `build` through both advance loops and returns
/// `(scheduled, legacy)`.
fn diff(build: impl Fn() -> SimulationBuilder) -> (RunOutput, RunOutput) {
    let sched = build()
        .legacy_scheduler(false)
        .run()
        .expect("component run");
    let legacy = build().legacy_scheduler(true).run().expect("legacy run");
    (sched, legacy)
}

/// A mid-run fault plan touching every fault kind the engine knows:
/// an NPU outage-and-repair, a DRAM brownout, a fractional channel
/// degrade, and a DVFS throttle that later recovers (the throttle is
/// the clock-divider path the refactor moved onto the NPU clock
/// component).
fn mixed_fault_plan() -> FaultPlan {
    FaultPlan::new(vec![
        FaultEvent {
            at: 200_000,
            kind: FaultKind::ClockThrottle { factor: 0.6 },
        },
        FaultEvent {
            at: 400_000,
            kind: FaultKind::NpuDown(1),
        },
        FaultEvent {
            at: 600_000,
            kind: FaultKind::DramChannelDown(0),
        },
        FaultEvent {
            at: 900_000,
            kind: FaultKind::DramDegrade {
                channel: 1,
                factor: 0.5,
            },
        },
        FaultEvent {
            at: 1_400_000,
            kind: FaultKind::NpuUp(1),
        },
        FaultEvent {
            at: 1_800_000,
            kind: FaultKind::DramChannelUp(0),
        },
        FaultEvent {
            at: 2_200_000,
            kind: FaultKind::ClockThrottle { factor: 1.0 },
        },
    ])
    .expect("plan is time-ordered")
}

#[test]
fn all_policies_match_legacy_on_closed_multi_tenant() {
    let models = vec![
        zoo::mobilenet_v2(),
        zoo::efficientnet_b0(),
        zoo::resnet50(),
        zoo::gnmt(),
    ];
    for kind in PolicyKind::ALL {
        let (sched, legacy) = diff(|| {
            Simulation::builder()
                .policy(kind)
                .workload(Workload::closed(models.clone(), 2))
        });
        assert_eq!(sched, legacy, "{kind:?} diverged on the closed workload");
    }
}

#[test]
fn all_policies_match_legacy_in_qos_mode() {
    // QoS mode exercises the epoch component hardest: every epoch tick
    // redistributes bandwidth shares and NPU quotas, so an epoch
    // boundary firing one event early or late diverges immediately.
    let models = vec![zoo::mobilenet_v2(), zoo::bert_base(), zoo::mobilenet_v2()];
    for kind in PolicyKind::ALL {
        let (sched, legacy) = diff(|| {
            Simulation::builder()
                .policy(kind)
                .workload(Workload::closed(models.clone(), 2))
                .qos_scale(0.8)
        });
        assert_eq!(sched, legacy, "{kind:?} diverged in QoS mode");
    }
}

#[test]
fn open_loop_poisson_matches_legacy_at_every_detail_level() {
    let models = vec![zoo::mobilenet_v2(), zoo::efficientnet_b0()];
    for kind in [PolicyKind::SharedBaseline, PolicyKind::CamdnFull] {
        for detail in [DetailLevel::Summary, DetailLevel::Tasks, DetailLevel::Full] {
            let (sched, legacy) = diff(|| {
                Simulation::builder()
                    .policy(kind)
                    .workload(Workload::poisson(models.clone(), 0.05, 60.0))
                    .warmup_rounds(0)
                    .detail(detail)
            });
            assert_eq!(
                sched, legacy,
                "{kind:?} diverged on the Poisson workload at {detail:?}"
            );
        }
    }
}

#[test]
fn bursty_arrivals_with_queue_sampling_match_legacy() {
    // The sampler component must drain exactly the boundaries the
    // legacy loop's inline while-loop drained, in the same order.
    let models: Vec<_> = (0..4).map(|_| zoo::mobilenet_v2()).collect();
    for kind in [PolicyKind::Moca, PolicyKind::Aurora] {
        let (sched, legacy) = diff(|| {
            Simulation::builder()
                .policy(kind)
                .workload(Workload::bursty(models.clone(), 2, 3, 10.0))
                .qos_scale(1.0)
                .warmup_rounds(0)
                .sample_queue_depth(50_000)
        });
        assert_eq!(sched, legacy, "{kind:?} diverged on the bursty workload");
    }
}

#[test]
fn traced_arrivals_match_legacy() {
    let models = vec![zoo::mobilenet_v2(), zoo::efficientnet_b0()];
    // Deliberately collide arrivals on the same cycle: the FIFO
    // tie-break (task order) must match between the loops.
    let schedules = vec![vec![0, 500_000, 500_000], vec![0, 500_000]];
    for kind in PolicyKind::ALL {
        let (sched, legacy) = diff(|| {
            Simulation::builder()
                .policy(kind)
                .workload(Workload::traced(models.clone(), schedules.clone()))
                .warmup_rounds(0)
        });
        assert_eq!(sched, legacy, "{kind:?} diverged on the traced workload");
    }
}

#[test]
fn mid_run_faults_match_legacy_for_all_policies() {
    // Faults stress every component at once: the fault component's
    // cursor, the NPU clock's DVFS retune, and the requeue/retry
    // machinery whose back-off events interleave with arrivals.
    let models = vec![zoo::mobilenet_v2(), zoo::resnet50(), zoo::mobilenet_v2()];
    for kind in PolicyKind::ALL {
        let (sched, legacy) = diff(|| {
            Simulation::builder()
                .policy(kind)
                .workload(Workload::closed(models.clone(), 3))
                .fault_plan(mixed_fault_plan())
        });
        assert_eq!(
            sched, legacy,
            "{kind:?} diverged under the mixed fault plan"
        );
    }
}

#[test]
fn generated_chaos_schedules_match_legacy() {
    // Seeded MTBF/MTTR fault processes: denser, less hand-picked
    // schedules than the mixed plan, across several seeds.
    let models = vec![zoo::mobilenet_v2(), zoo::efficientnet_b0()];
    for seed in [3u64, 17, 0xFA11] {
        let plan = FaultPlan::generate(&FaultGenConfig {
            seed,
            horizon: 3_000_000,
            npu_cores: 4,
            dram_channels: 2,
            npu_mtbf_cycles: 800_000.0,
            npu_mttr_cycles: 200_000.0,
            dram_mtbf_cycles: 1_000_000.0,
            dram_mttr_cycles: 150_000.0,
            dram_degrade_factor: 0.3,
            throttle_mtbf_cycles: 700_000.0,
            throttle_mttr_cycles: 250_000.0,
            throttle_factor: 0.5,
        })
        .expect("generated plan is valid");
        let (sched, legacy) = diff(|| {
            Simulation::builder()
                .policy(PolicyKind::CamdnFull)
                .workload(Workload::closed(models.clone(), 3))
                .fault_plan(plan.clone())
        });
        assert_eq!(sched, legacy, "chaos seed {seed} diverged");
    }
}

#[test]
fn budget_exceeded_partials_match_legacy() {
    // A run stopped mid-flight by the cycle budget must stop at the
    // same event and surface an identical partial in both loops.
    let models = vec![zoo::gnmt(), zoo::bert_base(), zoo::resnet50()];
    let mk = |legacy: bool| {
        Simulation::builder()
            .policy(PolicyKind::SharedBaseline)
            .workload(Workload::closed(models.clone(), 2))
            .max_sim_cycles(1_500_000)
            .legacy_scheduler(legacy)
            .run()
    };
    let sched = mk(false);
    let old = mk(true);
    match (sched, old) {
        (
            Err(EngineError::BudgetExceeded {
                at_cycle: a1,
                partial: p1,
                ..
            }),
            Err(EngineError::BudgetExceeded {
                at_cycle: a2,
                partial: p2,
                ..
            }),
        ) => {
            assert_eq!(a1, a2, "the budget must trip at the same event");
            assert_eq!(p1, p2, "partials diverged");
        }
        other => panic!("expected BudgetExceeded from both loops, got {other:?}"),
    }
    // A fault plan racing the budget: partial aggregation after a
    // mid-run DVFS retune and an NPU kill.
    let mk = |legacy: bool| {
        Simulation::builder()
            .policy(PolicyKind::CamdnFull)
            .workload(Workload::closed(models.clone(), 3))
            .fault_plan(mixed_fault_plan())
            .max_sim_cycles(1_000_000)
            .legacy_scheduler(legacy)
            .run()
    };
    match (mk(false), mk(true)) {
        (
            Err(EngineError::BudgetExceeded { partial: p1, .. }),
            Err(EngineError::BudgetExceeded { partial: p2, .. }),
        ) => {
            assert_eq!(p1, p2, "faulted partials diverged");
        }
        other => panic!("expected BudgetExceeded from both loops, got {other:?}"),
    }
}

#[test]
fn seed_sweep_matches_legacy() {
    // Different seeds shuffle NPU assignment and arrival draws into
    // different event interleavings; RNG consumption order is part of
    // the equivalence contract (the dispatch shuffle draws in pop
    // order).
    let models = vec![zoo::mobilenet_v2(), zoo::efficientnet_b0()];
    for seed in [1u64, 42, 0xDEAD, 0xCA3D41] {
        let (sched, legacy) = diff(|| {
            Simulation::builder()
                .policy(PolicyKind::CamdnFull)
                .workload(Workload::closed(models.clone(), 2))
                .seed(seed)
        });
        assert_eq!(sched, legacy, "seed {seed} diverged");
    }
}

#[test]
fn scheduler_choice_is_orthogonal_to_memory_model() {
    // The two differential axes compose: legacy loop + reference
    // memory model still equals the default batched component loop.
    let models = vec![zoo::mobilenet_v2(), zoo::resnet50()];
    let base = Simulation::builder()
        .policy(PolicyKind::CamdnFull)
        .workload(Workload::closed(models.clone(), 2))
        .run()
        .expect("default run");
    let cross = Simulation::builder()
        .policy(PolicyKind::CamdnFull)
        .workload(Workload::closed(models, 2))
        .legacy_scheduler(true)
        .reference_model(true)
        .run()
        .expect("legacy+reference run");
    assert_eq!(base, cross, "legacy loop × reference model diverged");
}
