//! End-to-end tests of the tail-latency pipeline: the compact
//! `LatencyTail` carried by every `RunSummary` must agree exactly with
//! the opt-in `DetailLevel::Full` histogram, behave as a pooled sample
//! set under the sweep layer's seed folding, and order its percentile
//! estimates the way percentiles must order. (The estimator's error
//! bound against exact sorted samples is property-tested where it
//! lives, in `camdn-common::stats`.)

use camdn::models::zoo;
use camdn::{DetailLevel, LatencyTail, PolicyKind, Simulation, Sweep, Workload};

const QS: [f64; 6] = [0.0, 0.5, 0.9, 0.95, 0.99, 0.999];

#[test]
fn summary_tail_matches_the_full_histogram_exactly() {
    // The tail is the Full histogram in compact clothing: same bucket
    // ladder, same counts, same quantile estimates — but available at
    // every detail level.
    let scenarios = [
        (
            PolicyKind::SharedBaseline,
            Workload::closed(vec![zoo::mobilenet_v2(), zoo::efficientnet_b0()], 3),
        ),
        (
            PolicyKind::CamdnFull,
            Workload::bursty(vec![zoo::mobilenet_v2(), zoo::gnmt()], 2, 3, 15.0),
        ),
    ];
    for (policy, workload) in scenarios {
        let run = Simulation::builder()
            .policy(policy)
            .workload(workload)
            .detail(DetailLevel::Full)
            .run()
            .expect("full run");
        let tail = run.summary.latency_tail;
        let hist = run
            .detail
            .as_ref()
            .and_then(|d| d.latency_hist.as_ref())
            .expect("Full keeps the histogram");
        assert_eq!(hist.counts(), &tail.counts()[..], "{policy:?}: counts");
        assert_eq!(hist.total(), tail.total(), "{policy:?}: totals");
        assert_eq!(hist.min(), tail.min_cycles(), "{policy:?}: min");
        assert_eq!(hist.max(), tail.max_cycles(), "{policy:?}: max");
        for q in QS {
            assert_eq!(
                tail.quantile_cycles(q),
                hist.quantile(q),
                "{policy:?}: quantile {q}"
            );
        }
        // Percentile estimates are monotone in q and bracketed by the
        // recorded extremes.
        let mut prev = 0;
        for q in QS {
            let v = tail.quantile_cycles(q).expect("non-empty");
            assert!(v >= prev, "{policy:?}: quantiles must be monotone");
            prev = v;
        }
        assert!(tail.quantile_cycles(1.0) == tail.max_cycles());
        assert!(tail.quantile_cycles(0.0).unwrap() >= tail.min_cycles().unwrap());
    }
}

#[test]
fn seed_folded_tail_is_the_merge_of_the_cell_tails() {
    // SeedAggregate pools per-seed tails by histogram merge: the
    // group's tail must equal folding each cell's tail by hand, so
    // per-coordinate percentiles rank the pooled samples.
    let grid = Sweep::grid()
        .policies([PolicyKind::SharedBaseline, PolicyKind::CamdnFull])
        .workload(
            "mb",
            Workload::closed(vec![zoo::mobilenet_v2(), zoo::efficientnet_b0()], 2),
        )
        .seeds([1, 2, 3])
        .run()
        .expect("grid");
    let stats = grid.seed_stats();
    assert_eq!(stats.len(), 2, "one group per policy");
    for s in &stats {
        let mut expect = LatencyTail::new();
        let mut samples = 0u64;
        for cell in &grid.cells {
            if cell.coord.policy != s.coord.policy {
                continue;
            }
            let tail = cell.outcome.as_ref().unwrap().summary.latency_tail;
            expect.merge(&tail);
            samples += tail.total();
        }
        assert_eq!(s.latency_tail, expect, "pooled tail is the exact merge");
        assert_eq!(s.latency_tail.total(), samples);
        assert!(samples > 0, "every seed measured inferences");
        assert!(s.latency_tail.p99_ms() >= s.latency_tail.p50_ms());
    }
}

#[test]
fn tail_percentiles_never_understate_the_mean_regime() {
    // Sanity anchor on real data: p50 of a closed-loop run sits at or
    // above the fastest inference and at or below the slowest, and the
    // conservative p99 estimate is never below the p50.
    let run = Simulation::builder()
        .policy(PolicyKind::CamdnFull)
        .workload(Workload::closed(vec![zoo::mobilenet_v2()], 4))
        .run()
        .expect("run");
    let tail = run.summary.latency_tail;
    assert_eq!(tail.total(), run.summary.inferences as u64);
    let min = tail.min_cycles().unwrap();
    let max = tail.max_cycles().unwrap();
    let p50 = tail.quantile_cycles(0.5).unwrap();
    let p99 = tail.quantile_cycles(0.99).unwrap();
    assert!(
        min <= p50 && p50 <= p99 && p99 <= max,
        "estimates must be ordered and clamped to the recorded extremes: \
         min {min}, p50 {p50}, p99 {p99}, max {max}"
    );
}
