//! Acceptance tests of the fault-injection layer: chaos knobs left at
//! their inert settings must not move a single bit of any result
//! across every policy and workload shape, replays under an active
//! `FaultPlan` must stay deterministic, and a replay log killed in
//! the middle of a fault window must resume to the uninterrupted log
//! bit for bit.

use std::time::Duration;

use camdn::models::zoo;
use camdn::trace::{
    JsonlReplaySink, ReplayConfig, ReplayDriver, ReplaySink, TraceGen, TraceGenConfig,
    WindowMetrics,
};
use camdn::{
    FaultEvent, FaultKind, FaultPlan, PolicyKind, Simulation, SimulationBuilder, Workload,
};

fn unique_path(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "camdn-chaos-{name}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    p
}

fn scenarios() -> Vec<(&'static str, Workload, bool)> {
    let models = vec![zoo::mobilenet_v2(), zoo::efficientnet_b0()];
    let schedules = vec![vec![0, 2_000_000, 4_000_000], vec![1_000_000, 3_000_000]];
    vec![
        ("closed", Workload::closed(models.clone(), 2), false),
        (
            "poisson",
            Workload::poisson(models.clone(), 0.05, 60.0),
            false,
        ),
        (
            "bursty",
            Workload::bursty(models.clone(), 2, 2, 10.0),
            false,
        ),
        ("qos", Workload::closed(models.clone(), 2), true),
        ("traced", Workload::traced(models, schedules), false),
    ]
}

fn builder(policy: PolicyKind, workload: &Workload, qos: bool) -> SimulationBuilder {
    let mut b = Simulation::builder()
        .policy(policy)
        .workload(workload.clone())
        .warmup_rounds(0);
    if qos {
        b = b.qos_scale(1.0);
    }
    b
}

#[test]
fn inert_chaos_knobs_never_move_a_bit_for_any_policy_or_workload() {
    // The whole fault layer is opt-in: an empty plan and unreachable
    // budgets must leave summary AND detail bit-for-bit identical to a
    // build that never mentions them — across all 5 policies × 5
    // workload shapes.
    for policy in PolicyKind::ALL {
        for (name, workload, qos) in scenarios() {
            let plain = builder(policy, &workload, qos).run().expect("plain run");
            let knobbed = builder(policy, &workload, qos)
                .fault_plan(FaultPlan::default())
                .max_sim_cycles(u64::MAX)
                .max_wall(Duration::from_secs(3600))
                .run()
                .expect("knobbed run");
            assert_eq!(
                plain.summary, knobbed.summary,
                "{policy:?}/{name}: inert knobs drifted the summary"
            );
            assert_eq!(
                plain.detail, knobbed.detail,
                "{policy:?}/{name}: inert knobs drifted the detail"
            );
            assert_eq!(plain.summary.shed_requests, 0);
            assert_eq!(plain.summary.retried_inferences, 0);
            assert_eq!(plain.summary.dropped_inferences, 0);
        }
    }
}

/// A sink that keeps every window in memory for comparisons.
#[derive(Default)]
struct Collect(Vec<WindowMetrics>);

impl ReplaySink for Collect {
    fn on_window(&mut self, w: &WindowMetrics) {
        self.0.push(w.clone());
    }
}

fn test_trace() -> TraceGenConfig {
    TraceGenConfig {
        rate_per_s: 400.0,
        horizon_s: 0.1,
        ..TraceGenConfig::default()
    }
}

/// A schedule that spans several 20 ms replay windows: an NPU failure
/// bridging the window-1/window-2 boundary and a throttle episode in
/// windows 3-4 (absolute trace cycles, 1000 per µs).
fn test_plan() -> FaultPlan {
    FaultPlan::new(vec![
        FaultEvent {
            at: 30_000_000,
            kind: FaultKind::NpuDown(0),
        },
        FaultEvent {
            at: 55_000_000,
            kind: FaultKind::NpuUp(0),
        },
        FaultEvent {
            at: 65_000_000,
            kind: FaultKind::ClockThrottle { factor: 0.6 },
        },
        FaultEvent {
            at: 85_000_000,
            kind: FaultKind::ClockThrottle { factor: 1.0 },
        },
    ])
    .expect("valid plan")
}

fn chaos_cfg() -> ReplayConfig {
    let mut cfg = ReplayConfig::new(PolicyKind::CamdnFull, 20_000);
    cfg.fault_plan = Some(test_plan());
    cfg.max_cycles_per_window = Some(640_000_000);
    cfg.admission_control = true;
    cfg
}

fn replay_collect(cfg: &ReplayConfig) -> Vec<WindowMetrics> {
    let records = TraceGen::new(test_trace()).expect("gen config").map(Ok);
    let mut driver = ReplayDriver::new(cfg.clone()).expect("replay config");
    let mut sink = Collect::default();
    driver.replay(records, &mut sink).expect("replay");
    sink.0
}

#[test]
fn faulted_replay_is_deterministic_and_faults_actually_bite() {
    let a = replay_collect(&chaos_cfg());
    let b = replay_collect(&chaos_cfg());
    assert!(!a.is_empty(), "the test trace must produce windows");
    assert_eq!(a, b, "same trace + same plan must give identical metrics");

    let clean_cfg = ReplayConfig::new(PolicyKind::CamdnFull, 20_000);
    let clean = replay_collect(&clean_cfg);
    assert_ne!(a, clean, "the fault schedule must change the metrics");
    // Arrival accounting is untouched by faults: every request still
    // lands in its window, served, shed or dropped.
    assert_eq!(
        a.iter().map(|w| w.arrivals).sum::<u64>(),
        clean.iter().map(|w| w.arrivals).sum::<u64>(),
    );
}

#[test]
fn killed_replay_log_resumes_mid_fault_window_bit_for_bit() {
    let cfg = chaos_cfg();
    let gen_records = || TraceGen::new(test_trace()).expect("gen config").map(Ok);

    // Uninterrupted reference replay under the fault plan.
    let clean_path = unique_path("clean.jsonl");
    let mut driver = ReplayDriver::new(cfg.clone()).expect("replay config");
    let mut sink = JsonlReplaySink::create(&clean_path, &cfg).expect("create log");
    driver.replay(gen_records(), &mut sink).expect("replay");
    sink.finish().expect("close log");

    // "Kill" a second replay by tearing its log mid-line inside the
    // fault span: keep the header plus the first two windows, so the
    // torn window (index 2) sits between NpuDown and NpuUp.
    let killed_path = unique_path("killed.jsonl");
    let mut driver = ReplayDriver::new(cfg.clone()).expect("replay config");
    let mut sink = JsonlReplaySink::create(&killed_path, &cfg).expect("create log");
    driver.replay(gen_records(), &mut sink).expect("replay");
    sink.finish().expect("close log");
    let full = std::fs::read_to_string(&killed_path).expect("read log");
    let lines: Vec<&str> = full.lines().collect();
    assert!(lines.len() > 4, "need enough windows to interrupt mid-plan");
    let keep = 3; // header + windows 0 and 1
    let mut truncated: String = lines[..keep].iter().map(|l| format!("{l}\n")).collect();
    truncated.push_str(&lines[keep][..lines[keep].len() / 2]);
    std::fs::write(&killed_path, truncated).expect("simulate kill");

    // Resume under the same plan: recorded windows skip, the faulted
    // tail re-runs, and the final log equals the clean one.
    let mut driver = ReplayDriver::new(cfg.clone()).expect("replay config");
    let mut sink = JsonlReplaySink::resume(&killed_path, &cfg).expect("resume log");
    assert_eq!(sink.recorded().len(), keep - 1, "intact windows kept");
    let totals = driver.replay(gen_records(), &mut sink).expect("replay");
    assert!(totals.windows_run > 0, "the faulted tail must re-run");
    sink.finish().expect("close log");

    let clean = camdn::trace::read_window_log(&clean_path, &cfg).expect("read clean");
    let resumed = camdn::trace::read_window_log(&killed_path, &cfg).expect("read resumed");
    assert_eq!(resumed, clean, "resumed log must equal the clean log");

    // The header fingerprints the fault schedule: a log written under
    // one plan must not resume under another (or under none).
    let mut other = cfg.clone();
    other.fault_plan = None;
    assert!(JsonlReplaySink::resume(&killed_path, &other).is_err());

    std::fs::remove_file(&clean_path).ok();
    std::fs::remove_file(&killed_path).ok();
}
