//! Multi-tenant SoC tour: 16 tenants (the full Table I zoo twice) under
//! every system configuration, printing the headline metrics each
//! policy achieves.
//!
//! ```text
//! cargo run --release --example multi_tenant_soc
//! ```

use camdn::models::zoo;
use camdn::runtime::{PolicyKind, Simulation, Workload};

fn main() {
    // Two instances of each Table I model: one per NPU core.
    let mut tenants = Vec::new();
    for _ in 0..2 {
        tenants.extend(zoo::all());
    }

    println!("16 co-located DNNs, Table II SoC, closed loop\n");
    println!(
        "{:16} {:>9} {:>12} {:>14} {:>12}",
        "policy", "hit rate", "avg latency", "DRAM/model", "mcast saved"
    );
    for policy in PolicyKind::ALL {
        let r = Simulation::builder()
            .policy(policy)
            .workload(Workload::closed(tenants.clone(), 2))
            .run()
            .expect("valid configuration");
        println!(
            "{:16} {:>8.1}% {:>9.2} ms {:>11.1} MB {:>9.1} MB",
            r.policy,
            100.0 * r.summary.cache_hit_rate,
            r.summary.avg_latency_ms,
            r.summary.mem_mb_per_model,
            r.summary.multicast_saved_mb
        );
    }
}
