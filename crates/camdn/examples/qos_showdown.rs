//! QoS showdown: MoCA vs AuRORA vs CaMDN under tight latency targets
//! (the Fig. 9 setting at QoS-M), reporting SLA satisfaction, system
//! throughput and fairness.
//!
//! ```text
//! cargo run --release --example qos_showdown
//! ```

use camdn::models::zoo;
use camdn::runtime::{qos_metrics, PolicyKind, Simulation, Workload};

fn main() {
    let tenants = zoo::all(); // one task per Table I model, 16 NPUs

    // Isolated runs calibrate normalized progress.
    let iso: Vec<f64> = tenants
        .iter()
        .map(|m| {
            Simulation::builder()
                .policy(PolicyKind::SharedBaseline)
                .workload(Workload::closed(vec![m.clone()], 2))
                .run()
                .expect("isolated run")
                .tasks()[0]
                .mean_latency_ms
        })
        .collect();

    println!("8 tenants, QoS-M deadlines (1.0x Table I targets)\n");
    println!(
        "{:16} {:>10} {:>8} {:>10}",
        "policy", "SLA rate", "STP", "fairness"
    );
    for policy in [PolicyKind::Moca, PolicyKind::Aurora, PolicyKind::CamdnFull] {
        let r = Simulation::builder()
            .policy(policy)
            .qos_scale(1.0)
            .workload(Workload::closed(tenants.clone(), 3))
            .run()
            .expect("qos run");
        let q = qos_metrics(r.tasks(), &iso).expect("one isolated latency per task");
        println!(
            "{:16} {:>9.1}% {:>8.2} {:>10.2}",
            r.policy,
            100.0 * q.sla_rate,
            q.stp,
            q.fairness
        );
    }
}
