//! Mapping explorer: dump the mapping candidate table (MCT) of selected
//! layers — the Fig. 6 artifact — showing how candidates trade cache
//! pages for DRAM traffic, plus the LBM alternative.
//!
//! ```text
//! cargo run --release --example mapping_explorer [model-abbr]
//! ```

use camdn::mapper::{map_model, CandidateKind, MapperConfig};
use camdn::models::zoo;

fn main() {
    let abbr = std::env::args().nth(1).unwrap_or_else(|| "VT".into());
    let model = zoo::by_abbr(&abbr).unwrap_or_else(|| {
        eprintln!("unknown model '{abbr}', using ViT");
        zoo::vit_base16()
    });
    let cfg = MapperConfig::paper_default();
    let mapping = map_model(&model, &cfg);

    println!(
        "{}: {} layers, {} LBM blocks\n",
        model.name,
        model.num_layers(),
        mapping.mcts.iter().map(|m| m.block.id).max().unwrap_or(0) + 1
    );
    // Show the most interesting layers: the largest MCTs.
    let mut order: Vec<usize> = (0..mapping.mcts.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(mapping.mcts[i].lwm.len()));
    for &i in order.iter().take(4) {
        let mct = &mapping.mcts[i];
        let layer = &model.layers[mct.layer_idx];
        println!(
            "layer {:3} {:24} ({}, block {} {})",
            mct.layer_idx,
            layer.name,
            layer.op.label(),
            mct.block.id,
            if mct.block.is_head { "head" } else { "member" },
        );
        println!("    kind      pages   DRAM bytes   order        tiles (oc x sp)");
        for c in &mct.lwm {
            let cu = match c.kind {
                CandidateKind::Lwm { cu_bytes } => format!("LWM {:>5} KiB", cu_bytes / 1024),
                CandidateKind::Lbm => "LBM".into(),
            };
            println!(
                "    {:14} {:>4} {:>12} {:>10?} {:>6} x {}",
                cu, c.pneed, c.dram_bytes, c.order, c.tiling.n_oc, c.tiling.n_sp
            );
        }
        if let Some(lbm) = &mct.lbm {
            println!(
                "    {:14} {:>4} {:>12}   (intermediates pinned in cache)",
                "LBM", lbm.pneed, lbm.dram_bytes
            );
        }
        println!();
    }
}
