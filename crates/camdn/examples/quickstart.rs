//! Quickstart: simulate two co-located DNNs with and without CaMDN.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use camdn::models::zoo;
use camdn::runtime::{PolicyKind, Simulation, Workload};

fn main() {
    let tenants = vec![zoo::mobilenet_v2(), zoo::resnet50()];

    println!("Two co-located DNNs on the Table II SoC (16 MiB shared cache)\n");
    for policy in [PolicyKind::SharedBaseline, PolicyKind::CamdnFull] {
        let result = Simulation::builder()
            .policy(policy)
            .workload(Workload::closed(tenants.clone(), 3))
            .run()
            .expect("valid configuration");
        println!("{}:", result.policy);
        let s = &result.summary;
        println!("  cache hit rate     {:.1}%", 100.0 * s.cache_hit_rate);
        println!("  avg model latency  {:.2} ms", s.avg_latency_ms);
        println!("  DRAM per inference {:.1} MB", s.mem_mb_per_model);
        for t in result.tasks() {
            println!(
                "    {:3}  {:.2} ms, {:.1} MB DRAM",
                t.abbr, t.mean_latency_ms, t.mean_dram_mb
            );
        }
        println!();
    }
}
