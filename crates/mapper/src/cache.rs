//! Shared, thread-safe mapping-plan cache.
//!
//! Grid sweeps (policies × SoCs × workloads × seeds) rebuild an engine
//! per cell, and every engine re-maps each distinct model from scratch
//! even though the mapping is a pure function of `(model, MapperConfig)`
//! — an O(models × cells) pile of redundant solver work. A [`PlanCache`]
//! shared across cells (see `SimulationBuilder::plan_cache` in
//! `camdn-runtime`, wired up automatically by `camdn-sweep`) does each
//! of those solves exactly once:
//!
//! * **model level** — whole [`ModelMapping`]s keyed by the model's
//!   structural content plus every mapper knob, handed out as
//!   [`Arc`]s;
//! * **layer level** — solved LWM candidate ladders keyed by
//!   `(layer, NpuConfig, CU ladder, page size, estimate bandwidth)`,
//!   which also dedupes repeated identical layers *within* one model
//!   (transformer encoder stacks hit this even on a cold model).
//!
//! Lookups are lock-brief: nothing holds a mutex while the solver runs,
//! so concurrent misses on the same key may both compute, but the value
//! is a deterministic function of the key and the first insert wins —
//! results are bit-identical with and without the cache.

use crate::candidate::MappingCandidate;
use crate::layer_mapper::{lwm_ladder, map_model_with, MapperConfig, ModelMapping};
use camdn_common::config::NpuConfig;
use camdn_models::{Layer, Model};
// camdn-lint: allow(nondet-iter, reason = "keyed memo; entries are only get/insert by key, never iterated, and the keys are not Ord")
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Every [`MapperConfig`] knob, in hashable form (`f64` by bits).
#[derive(Clone, PartialEq, Eq, Hash)]
struct ConfigKey {
    npu: NpuConfig,
    line_bytes: u64,
    page_bytes: u64,
    cu_levels: Vec<u64>,
    lbm_max_block_pages: u32,
    lbm_max_block_len: usize,
    est_bw_bits: u64,
}

impl ConfigKey {
    fn of(cfg: &MapperConfig) -> Self {
        ConfigKey {
            npu: cfg.npu,
            line_bytes: cfg.line_bytes,
            page_bytes: cfg.page_bytes,
            cu_levels: cfg.cu_levels.clone(),
            lbm_max_block_pages: cfg.lbm_max_block_pages,
            lbm_max_block_len: cfg.lbm_max_block_len,
            est_bw_bits: cfg.est_bw_bytes_per_cycle.to_bits(),
        }
    }
}

/// Structural model key: name alone is not trusted (two models may
/// share a name but differ in layers), so the layer chain is part of
/// the key.
#[derive(Clone, PartialEq, Eq, Hash)]
struct ModelKey {
    name: String,
    layers: Vec<Layer>,
    cfg: ConfigKey,
}

/// One LWM ladder solve: the subset of [`MapperConfig`] that
/// [`map_layer_lwm`](crate::map_layer_lwm) actually reads, plus the
/// solve-relevant layer fields. The layer *name* is deliberately
/// excluded — it never reaches the solver, and keying on it would stop
/// structurally identical layers (transformer encoder stacks) from
/// sharing one solve.
#[derive(Clone, PartialEq, Eq, Hash)]
struct LadderKey {
    op: camdn_models::OpKind,
    nest: camdn_models::LoopNest,
    weight_class: camdn_models::WeightClass,
    io_override: Option<(u64, u64)>,
    npu: NpuConfig,
    page_bytes: u64,
    cu_levels: Vec<u64>,
    est_bw_bits: u64,
}

/// Hit/miss counters of a [`PlanCache`], snapshotted by
/// [`PlanCache::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PlanCacheStats {
    /// Whole-model mappings served from the cache.
    pub model_hits: u64,
    /// Whole-model mappings that had to be computed.
    pub model_misses: u64,
    /// Per-layer LWM ladder solves served from the cache.
    pub layer_hits: u64,
    /// Per-layer LWM ladder solves that had to run the solver.
    pub layer_misses: u64,
}

/// Thread-safe memo of mapping results, shared across simulations.
///
/// ```
/// use camdn_mapper::{MapperConfig, PlanCache};
/// use camdn_models::zoo;
///
/// let cache = PlanCache::new();
/// let cfg = MapperConfig::paper_default();
/// let a = cache.map_model(&zoo::mobilenet_v2(), &cfg);
/// let b = cache.map_model(&zoo::mobilenet_v2(), &cfg);
/// assert!(std::sync::Arc::ptr_eq(&a, &b), "second lookup is a hit");
/// assert_eq!(cache.stats().model_hits, 1);
/// ```
#[derive(Default)]
pub struct PlanCache {
    // camdn-lint: allow(nondet-iter, reason = "keyed memo; entries are only get/insert by key, never iterated, and the keys are not Ord")
    models: Mutex<HashMap<ModelKey, Arc<ModelMapping>>>,
    // camdn-lint: allow(nondet-iter, reason = "keyed memo; entries are only get/insert by key, never iterated, and the keys are not Ord")
    ladders: Mutex<HashMap<LadderKey, Arc<Vec<MappingCandidate>>>>,
    model_hits: AtomicU64,
    model_misses: AtomicU64,
    layer_hits: AtomicU64,
    layer_misses: AtomicU64,
}

impl PlanCache {
    /// Empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Maps `model` under `cfg`, serving repeated lookups from the
    /// memo. Equivalent to [`map_model`](crate::map_model) — results
    /// are bit-identical — but each distinct `(model, config)` pair is
    /// solved once per cache, and distinct models still share solved
    /// layer ladders.
    pub fn map_model(&self, model: &Model, cfg: &MapperConfig) -> Arc<ModelMapping> {
        let key = ModelKey {
            name: model.name.clone(),
            layers: model.layers.clone(),
            cfg: ConfigKey::of(cfg),
        };
        // camdn-lint: allow(panic-in-lib, reason = "Mutex poisoning only follows a panic on another thread; propagating it would mask that panic")
        if let Some(hit) = self.models.lock().expect("plan cache lock").get(&key) {
            self.model_hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(hit);
        }
        self.model_misses.fetch_add(1, Ordering::Relaxed);
        let mapping = Arc::new(map_model_with(model, cfg, &mut |layer, cfg| {
            self.ladder(layer, cfg)
        }));
        // camdn-lint: allow(panic-in-lib, reason = "Mutex poisoning only follows a panic on another thread; propagating it would mask that panic")
        let mut models = self.models.lock().expect("plan cache lock");
        // A concurrent miss may have inserted first; keep that value so
        // every holder shares one Arc.
        Arc::clone(models.entry(key).or_insert(mapping))
    }

    /// Cached LWM ladder for one layer (cloned out of the shared entry).
    fn ladder(&self, layer: &Layer, cfg: &MapperConfig) -> Vec<MappingCandidate> {
        let key = LadderKey {
            op: layer.op,
            nest: layer.nest,
            weight_class: layer.weight_class,
            io_override: layer.io_override,
            npu: cfg.npu,
            page_bytes: cfg.page_bytes,
            cu_levels: cfg.cu_levels.clone(),
            est_bw_bits: cfg.est_bw_bytes_per_cycle.to_bits(),
        };
        // camdn-lint: allow(panic-in-lib, reason = "Mutex poisoning only follows a panic on another thread; propagating it would mask that panic")
        if let Some(hit) = self.ladders.lock().expect("plan cache lock").get(&key) {
            self.layer_hits.fetch_add(1, Ordering::Relaxed);
            return hit.as_ref().clone();
        }
        self.layer_misses.fetch_add(1, Ordering::Relaxed);
        let solved = Arc::new(lwm_ladder(layer, cfg));
        // camdn-lint: allow(panic-in-lib, reason = "Mutex poisoning only follows a panic on another thread; propagating it would mask that panic")
        let mut ladders = self.ladders.lock().expect("plan cache lock");
        ladders.entry(key).or_insert(solved).as_ref().clone()
    }

    /// Snapshot of the hit/miss counters.
    pub fn stats(&self) -> PlanCacheStats {
        PlanCacheStats {
            model_hits: self.model_hits.load(Ordering::Relaxed),
            model_misses: self.model_misses.load(Ordering::Relaxed),
            layer_hits: self.layer_hits.load(Ordering::Relaxed),
            layer_misses: self.layer_misses.load(Ordering::Relaxed),
        }
    }

    /// Number of whole-model mappings held.
    pub fn models_cached(&self) -> usize {
        // camdn-lint: allow(panic-in-lib, reason = "Mutex poisoning only follows a panic on another thread; propagating it would mask that panic")
        self.models.lock().expect("plan cache lock").len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::map_model;
    use camdn_models::zoo;

    #[test]
    fn cached_mapping_is_bit_identical() {
        let cfg = MapperConfig::paper_default();
        let cache = PlanCache::new();
        for m in zoo::all() {
            assert_eq!(
                *cache.map_model(&m, &cfg),
                map_model(&m, &cfg),
                "{} diverged through the cache",
                m.name
            );
        }
    }

    #[test]
    fn model_hits_share_one_arc() {
        let cfg = MapperConfig::paper_default();
        let cache = PlanCache::new();
        let a = cache.map_model(&zoo::resnet50(), &cfg);
        let b = cache.map_model(&zoo::resnet50(), &cfg);
        assert!(Arc::ptr_eq(&a, &b));
        let s = cache.stats();
        assert_eq!((s.model_hits, s.model_misses), (1, 1));
    }

    #[test]
    fn distinct_configs_do_not_alias() {
        let cache = PlanCache::new();
        let base = MapperConfig::paper_default();
        let mut small_pages = base.clone();
        small_pages.page_bytes = 16 * 1024;
        let a = cache.map_model(&zoo::mobilenet_v2(), &base);
        let b = cache.map_model(&zoo::mobilenet_v2(), &small_pages);
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(*b, map_model(&zoo::mobilenet_v2(), &small_pages));
        assert_eq!(cache.stats().model_misses, 2);
    }

    #[test]
    fn same_name_different_layers_do_not_alias() {
        let cfg = MapperConfig::paper_default();
        let cache = PlanCache::new();
        let a = zoo::mobilenet_v2();
        let mut b = zoo::mobilenet_v2();
        b.layers.truncate(b.layers.len() / 2);
        let ma = cache.map_model(&a, &cfg);
        let mb = cache.map_model(&b, &cfg);
        assert_ne!(ma.mcts.len(), mb.mcts.len(), "must not alias by name");
    }

    #[test]
    fn repeated_layers_hit_the_ladder_memo() {
        // Transformers repeat identical encoder layers: even a cold
        // model must hit the layer-level memo.
        let cfg = MapperConfig::paper_default();
        let cache = PlanCache::new();
        cache.map_model(&zoo::bert_base(), &cfg);
        let s = cache.stats();
        assert!(
            s.layer_hits > 0,
            "BERT's repeated encoder layers should hit ({s:?})"
        );
    }
}
