//! The heuristic-solver-hybrid layer mapper (Section III-C1).
//!
//! Mapping one layer means choosing scratchpad tile factors, a
//! cache-level loop order and a cache-residency split, minimizing DRAM
//! traffic under a cache-usage limitation. CaMDN does this in three
//! steps, reproduced here:
//!
//! 1. **Heuristic rules** shrink the space: tile sizes come from a small
//!    grid aligned to the PE array (cache-line/compute utilization
//!    rules), the reduction loop always completes inside the scratchpad
//!    (no partial-sum spills), and only the two canonical loop
//!    permutations survive ([`LoopOrder::OcOuter`] streams weights once;
//!    [`LoopOrder::SpatialOuter`] streams inputs once).
//! 2. The remaining choices form **disjoint problem subspaces** (one per
//!    loop order), each a small integer program: pick `t_oc`, `t_sp` and
//!    cached bytes to minimize DRAM traffic subject to the scratchpad
//!    capacity and the cache-usage limit.
//! 3. An exact **solver** (bounded exhaustive search with a
//!    lower-bound early exit) finds the minimum of each subspace; the
//!    best subspace wins.

use crate::candidate::{LoopOrder, Tiling};
use camdn_common::config::NpuConfig;
use camdn_models::{Layer, WeightClass};

/// Outcome of solving one layer under one cache-usage limit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Solution {
    /// Winning loop order.
    pub order: LoopOrder,
    /// Winning tile factors.
    pub tiling: Tiling,
    /// Modelled DRAM traffic in bytes.
    pub dram_bytes: u64,
    /// Bytes of the weight operand held in cache.
    pub cached_weight: u64,
    /// Bytes of the input held in cache.
    pub cached_input: u64,
}

/// Byte sizes of the four tensors of a layer, with the weight operand
/// classified.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TensorSizes {
    /// Weight operand bytes moved per execution.
    pub weight: u64,
    /// Input activation bytes.
    pub input: u64,
    /// Output activation bytes.
    pub output: u64,
    /// Bias bytes.
    pub bias: u64,
}

impl TensorSizes {
    /// Extracts the sizes from a layer.
    pub fn of(layer: &Layer) -> Self {
        TensorSizes {
            weight: layer.weight_operand_bytes(),
            input: layer.input_bytes(),
            output: layer.output_bytes(),
            bias: match layer.weight_class {
                WeightClass::Static => layer.nest.bias_bytes(),
                _ => 0,
            },
        }
    }

    /// Absolute lower bound on DRAM traffic: every byte moved once.
    pub fn lower_bound(&self) -> u64 {
        self.weight + self.input + self.output + self.bias
    }
}

/// Scratchpad footprint of a `(t_oc, t_sp)` tile for this layer, in
/// bytes: weight tile + input tile + 32-bit accumulator tile.
pub fn tile_footprint(layer: &Layer, t_oc: u64, t_sp: u64) -> u64 {
    let n = &layer.nest;
    let bpe = n.bytes_per_elem;
    let w_tile = t_oc * n.reduction() * bpe;
    // Input pixels per output: dense layers stream `ic` values per output
    // with spatial reuse (`stride^2` scaling); grouped/depth-wise layers
    // additionally scale with the channels in the tile.
    let group_span = t_oc.min(n.groups);
    let in_tile = t_sp * n.ic * group_span * n.stride * n.stride * bpe;
    let out_tile = t_oc * t_sp * 4; // 32-bit accumulators
    w_tile + in_tile + out_tile
}

/// Heuristic tile grids: `t_oc` aligned to the PE columns, `t_sp` on a
/// power-of-two grid, both clipped to the layer bounds.
pub fn tile_grids(layer: &Layer, npu: &NpuConfig) -> (Vec<u64>, Vec<u64>) {
    let oc = layer.nest.oc;
    let sp = layer.nest.spatial();
    let step = u64::from(npu.pe_cols);
    // Sub-array tile sizes cover layers whose reduction dimension is so
    // large that even one PE-column stripe of weights overflows the
    // scratchpad (e.g. transformer fc2 with K = 3072).
    let mut t_ocs: Vec<u64> = [1u64, 2, 4, 8, 16]
        .iter()
        .copied()
        .filter(|&v| v < step && v < oc)
        .collect();
    t_ocs.extend((1..=oc.div_ceil(step)).map(|k| (k * step).min(oc)));
    t_ocs.dedup();
    if t_ocs.len() > 64 {
        // Thin out huge channel counts: keep a log-spaced subset.
        let mut kept = Vec::with_capacity(64);
        let mut idx = 0usize;
        while idx < t_ocs.len() {
            kept.push(t_ocs[idx]);
            idx = (idx + 1).max(idx * 5 / 4);
        }
        if let (Some(&last_kept), Some(&last_oc)) = (kept.last(), t_ocs.last()) {
            if last_kept != last_oc {
                kept.push(last_oc);
            }
        }
        t_ocs = kept;
    }
    let mut t_sps = vec![];
    let mut v = 1u64;
    while v < sp {
        t_sps.push(v);
        v *= 2;
    }
    t_sps.push(sp);
    (t_ocs, t_sps)
}

/// Traffic of one `(order, tiling)` point under cache budget `cu_bytes`,
/// together with the cache split chosen. The budget is spent entirely on
/// the tensor that the order re-sweeps (anything else is moved exactly
/// once and gains nothing from caching).
pub fn traffic_of(
    sizes: &TensorSizes,
    order: LoopOrder,
    tiling: &Tiling,
    cu_bytes: u64,
) -> (u64, u64, u64) {
    match order {
        LoopOrder::OcOuter => {
            let cached_input = sizes.input.min(cu_bytes);
            let resweeps = tiling.n_oc.saturating_sub(1);
            let t = sizes.lower_bound() + resweeps * (sizes.input - cached_input);
            (t, 0, cached_input)
        }
        LoopOrder::SpatialOuter => {
            let cached_weight = sizes.weight.min(cu_bytes);
            let resweeps = tiling.n_sp.saturating_sub(1);
            let t = sizes.lower_bound() + resweeps * (sizes.weight - cached_weight);
            (t, cached_weight, 0)
        }
    }
}

/// Solves one layer under a cache-usage limit, returning the minimum
/// DRAM-traffic mapping over both subspaces.
///
/// The search is exact over the heuristic grid; it exits early when a
/// point reaches the information-theoretic lower bound (every tensor
/// moved exactly once).
pub fn solve(layer: &Layer, npu: &NpuConfig, cu_bytes: u64) -> Solution {
    let sizes = TensorSizes::of(layer);
    let budget = npu.scratchpad_bytes / 2; // double buffering
    let (t_ocs, mut t_sps) = tile_grids(layer, npu);
    let oc = layer.nest.oc;
    let sp = layer.nest.spatial();
    let lower = sizes.lower_bound();

    // Recurrent layers carry a sequential dependence across timesteps:
    // the whole gate matrix must be swept once per step (heuristic rule
    // from the dependence structure). This is the long-distance weight
    // reuse Fig. 3 attributes to GNMT.
    let orders: &[LoopOrder] = if layer.op == camdn_models::OpKind::Lstm {
        t_sps = vec![1];
        &[LoopOrder::SpatialOuter]
    } else {
        &[LoopOrder::OcOuter, LoopOrder::SpatialOuter]
    };

    let mut best: Option<Solution> = None;
    'outer: for &t_oc in &t_ocs {
        for &t_sp in &t_sps {
            if tile_footprint(layer, t_oc, t_sp) > budget {
                continue;
            }
            let tiling = Tiling::new(t_oc, t_sp, oc, sp);
            for &order in orders {
                let (traffic, cw, ci) = traffic_of(&sizes, order, &tiling, cu_bytes);
                // Lexicographic objective: DRAM traffic, then cache
                // footprint, then iteration count (fewer, larger tiles
                // waste less pipeline fill/drain).
                let key = (traffic, cw + ci, tiling.n_oc * tiling.n_sp);
                let better = match &best {
                    None => true,
                    Some(b) => {
                        key < (
                            b.dram_bytes,
                            b.cached_weight + b.cached_input,
                            b.tiling.n_oc * b.tiling.n_sp,
                        )
                    }
                };
                if better {
                    best = Some(Solution {
                        order,
                        tiling,
                        dram_bytes: traffic,
                        cached_weight: cw,
                        cached_input: ci,
                    });
                    if traffic == lower && cw + ci == 0 && tiling.n_oc * tiling.n_sp == 1 {
                        break 'outer; // cannot improve further
                    }
                }
            }
        }
    }
    best.unwrap_or_else(|| {
        // Degenerate fallback: the minimal tile always fits a 256 KiB
        // scratchpad for every layer in the zoo; this path guards
        // pathological configurations (e.g. unit tests with tiny pads).
        let tiling = Tiling::new(1, 1, oc.max(1), sp.max(1));
        let (traffic, cw, ci) = traffic_of(&sizes, LoopOrder::OcOuter, &tiling, cu_bytes);
        Solution {
            order: LoopOrder::OcOuter,
            tiling,
            dram_bytes: traffic,
            cached_weight: cw,
            cached_input: ci,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use camdn_models::{LoopNest, OpKind};

    fn npu() -> NpuConfig {
        NpuConfig::paper_default()
    }

    fn conv_layer() -> Layer {
        // ResNet s3 conv2-like: 3x3, 128ch, 28x28, ic 128.
        Layer::new("c", OpKind::Conv, LoopNest::conv(128, 28, 28, 128, 3, 1))
    }

    fn big_linear() -> Layer {
        // ViT fc1: weights 2.25 MiB dominate; input tiny.
        Layer::new("fc1", OpKind::Linear, LoopNest::matmul(197, 768, 3072))
    }

    #[test]
    fn tile_footprint_monotone() {
        let l = conv_layer();
        assert!(tile_footprint(&l, 64, 128) > tile_footprint(&l, 32, 128));
        assert!(tile_footprint(&l, 32, 256) > tile_footprint(&l, 32, 128));
    }

    #[test]
    fn solution_respects_scratchpad() {
        let l = conv_layer();
        let s = solve(&l, &npu(), 0);
        assert!(tile_footprint(&l, s.tiling.t_oc, s.tiling.t_sp) <= npu().scratchpad_bytes / 2);
    }

    #[test]
    fn zero_budget_never_caches() {
        let s = solve(&big_linear(), &npu(), 0);
        assert_eq!(s.cached_weight + s.cached_input, 0);
    }

    #[test]
    fn more_cache_never_hurts() {
        let l = big_linear();
        let mut last = u64::MAX;
        for cu in [0u64, 256 << 10, 512 << 10, 1 << 20, 4 << 20] {
            let s = solve(&l, &npu(), cu);
            assert!(s.dram_bytes <= last, "traffic rose with bigger cache");
            last = s.dram_bytes;
        }
    }

    #[test]
    fn traffic_never_below_lower_bound() {
        for l in [conv_layer(), big_linear()] {
            let sizes = TensorSizes::of(&l);
            let s = solve(&l, &npu(), 4 << 20);
            assert!(s.dram_bytes >= sizes.lower_bound());
        }
    }

    #[test]
    fn lstm_resweeps_weights_every_timestep() {
        // The recurrence forces one full gate-matrix sweep per timestep:
        // 32 steps re-read the 8 MiB weights unless they are cached.
        let l = Layer::new("gate", OpKind::Lstm, LoopNest::matmul(32, 2048, 4096));
        let sizes = TensorSizes::of(&l);
        let uncached = solve(&l, &npu(), 0);
        assert_eq!(uncached.order, LoopOrder::SpatialOuter);
        assert_eq!(uncached.tiling.n_sp, 32);
        assert_eq!(uncached.dram_bytes, sizes.lower_bound() + 31 * sizes.weight);
        // A big-enough cache budget recovers the lower bound.
        let cached = solve(&l, &npu(), 8 << 20);
        assert_eq!(cached.cached_weight, sizes.weight);
        assert_eq!(cached.dram_bytes, sizes.lower_bound());
    }

    #[test]
    fn weight_caching_wins_when_input_is_large() {
        // Weights 288 KiB re-swept vs a 6.3 MiB input: with a 512 KiB
        // budget only the weights fit, so SpatialOuter + cached weights
        // is the only way to cut the re-sweep traffic.
        let l = Layer::new("pp", OpKind::Conv, LoopNest::conv(64, 248, 216, 512, 3, 1));
        let s0 = solve(&l, &npu(), 0);
        let s = solve(&l, &npu(), 512 << 10);
        assert!(s.dram_bytes <= s0.dram_bytes);
        if s.tiling.n_sp > 1 && s.order == LoopOrder::SpatialOuter {
            assert!(s.cached_weight > 0);
        }
    }

    #[test]
    fn eltwise_layer_is_stream_only() {
        let l = Layer::unweighted(
            "add",
            OpKind::Eltwise,
            LoopNest {
                batch: 1,
                oc: 256,
                oh: 56,
                ow: 56,
                ic: 2,
                kh: 1,
                kw: 1,
                stride: 1,
                groups: 1,
                bytes_per_elem: 1,
            },
        );
        let sizes = TensorSizes::of(&l);
        assert_eq!(sizes.weight, 0);
        let s = solve(&l, &npu(), 1 << 20);
        assert_eq!(s.dram_bytes, sizes.lower_bound());
    }

    #[test]
    fn grids_cover_layer_bounds() {
        let l = conv_layer();
        let (t_ocs, t_sps) = tile_grids(&l, &npu());
        assert_eq!(*t_ocs.last().unwrap(), l.nest.oc);
        assert_eq!(*t_sps.last().unwrap(), l.nest.spatial());
    }
}
