//! Mapping candidates and the mapping candidate table (MCT).
//!
//! An MCT (Fig. 6 of the paper) stores, for one layer, one layer-wise
//! mapping (LWM) candidate per cache-usage level plus one layer-block
//! mapping (LBM) candidate, each in a compact format: a *loop table*
//! (order + tile factors) and a *cache map* (how tensors are placed in
//! the model's virtual cache address space). Unrolled NPU instructions
//! are generated only at dispatch time (see [`crate::plan`]).

use camdn_common::types::{Cycle, VirtCacheAddr};
use serde::{Deserialize, Serialize};

/// The tensors of a layer, as addressed by the cache map.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TensorKind {
    /// Weight operand (static parameters, or an activation for attention
    /// matmuls).
    Weight,
    /// Input activation.
    Input,
    /// Output activation.
    Output,
    /// Bias vector.
    Bias,
}

/// Loop order at the cache level (the two canonical permutations the
/// heuristic rules retain).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LoopOrder {
    /// Output-channel tiles outermost: weights are streamed exactly once,
    /// inputs are re-swept once per output-channel tile.
    OcOuter,
    /// Spatial tiles outermost: inputs are streamed exactly once, weights
    /// are re-swept once per spatial tile.
    SpatialOuter,
}

/// Scratchpad-level tile factors and derived iteration counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Tiling {
    /// Output channels per scratchpad tile.
    pub t_oc: u64,
    /// Output spatial elements (`B·OH·OW`) per scratchpad tile.
    pub t_sp: u64,
    /// Number of output-channel tiles.
    pub n_oc: u64,
    /// Number of spatial tiles.
    pub n_sp: u64,
}

impl Tiling {
    /// Builds a tiling for a layer with `oc` output channels and `sp`
    /// spatial outputs.
    pub fn new(t_oc: u64, t_sp: u64, oc: u64, sp: u64) -> Self {
        Tiling {
            t_oc,
            t_sp,
            n_oc: oc.div_ceil(t_oc.max(1)),
            n_sp: sp.div_ceil(t_sp.max(1)),
        }
    }
}

/// One row of the cache map: where (and whether) a tensor lives in the
/// model's virtual cache address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheMapEntry {
    /// Which tensor.
    pub tensor: TensorKind,
    /// Start of its region in vcaddr space (0 when nothing is cached).
    pub vcaddr: VirtCacheAddr,
    /// Bytes of the tensor held in cache (0 = fully streamed).
    pub cached_bytes: u64,
    /// True if the non-cached portion bypasses the shared cache.
    pub bypass: bool,
    /// True if the cached portion is re-read (reuse) rather than written
    /// once.
    pub reuse: bool,
}

/// Distinguishes LWM candidates (one per cache-usage level) from the LBM
/// candidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CandidateKind {
    /// Layer-wise mapping targeting a cache-usage level in bytes.
    Lwm {
        /// The cache-usage limitation this candidate was solved under.
        cu_bytes: u64,
    },
    /// Layer-block mapping: inter-layer intermediates pinned in cache.
    Lbm,
}

/// A complete mapping candidate for one layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MappingCandidate {
    /// LWM level or LBM.
    pub kind: CandidateKind,
    /// Cache-level loop order.
    pub order: LoopOrder,
    /// Scratchpad tile factors.
    pub tiling: Tiling,
    /// Tensor placement in vcaddr space.
    pub cache_map: Vec<CacheMapEntry>,
    /// Shared-cache pages this candidate needs.
    pub pneed: u32,
    /// Modelled DRAM traffic (bytes) for one execution of the layer.
    pub dram_bytes: u64,
    /// Modelled compute cycles.
    pub compute_cycles: Cycle,
    /// Profiling-style latency estimate (`T_est` in Algorithm 1).
    pub est_cycles: Cycle,
}

impl MappingCandidate {
    /// Bytes held in cache across all tensors.
    pub fn total_cached_bytes(&self) -> u64 {
        self.cache_map.iter().map(|e| e.cached_bytes).sum()
    }

    /// Cache-map entry for a tensor, if present.
    pub fn entry(&self, tensor: TensorKind) -> Option<&CacheMapEntry> {
        self.cache_map.iter().find(|e| e.tensor == tensor)
    }
}

/// Layer-block membership of a layer (for LBM, Section III-C2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockInfo {
    /// Block index within the model.
    pub id: u32,
    /// True for the first layer of its block.
    pub is_head: bool,
    /// Number of layers in the block.
    pub len: u32,
    /// Estimated execution cycles of the whole block (`T_est` for the
    /// head-layer look-ahead in Algorithm 1, line 11).
    pub block_est_cycles: u64,
    /// Peak pages the block needs while LBM is active.
    pub peak_pages: u32,
}

/// The mapping candidate table of one layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mct {
    /// Index of the layer in the model.
    pub layer_idx: usize,
    /// LWM candidates in ascending `pneed` order (index 0 always exists
    /// and needs zero pages, so a task can always make progress).
    pub lwm: Vec<MappingCandidate>,
    /// The LBM candidate, when the layer belongs to a block.
    pub lbm: Option<MappingCandidate>,
    /// Block membership.
    pub block: BlockInfo,
}

impl Mct {
    /// The largest LWM candidate whose `pneed` does not exceed
    /// `avail_pages` (Algorithm 1, lines 18-21).
    pub fn best_lwm_within(&self, avail_pages: u32) -> &MappingCandidate {
        let mut best = &self.lwm[0];
        for c in &self.lwm {
            if c.pneed > best.pneed && c.pneed <= avail_pages {
                best = c;
            }
        }
        best
    }

    /// The largest LWM candidate strictly cheaper (in pages) than
    /// `pages`, used to degrade on allocation timeout.
    pub fn next_cheaper_lwm(&self, pages: u32) -> &MappingCandidate {
        let mut best = &self.lwm[0];
        for c in &self.lwm {
            if c.pneed < pages && c.pneed > best.pneed {
                best = c;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(pneed: u32) -> MappingCandidate {
        MappingCandidate {
            kind: CandidateKind::Lwm {
                cu_bytes: u64::from(pneed) * 32 * 1024,
            },
            order: LoopOrder::OcOuter,
            tiling: Tiling::new(32, 64, 256, 4096),
            cache_map: vec![],
            pneed,
            dram_bytes: 1000 / u64::from(pneed + 1),
            compute_cycles: 100,
            est_cycles: 200,
        }
    }

    fn mct() -> Mct {
        Mct {
            layer_idx: 0,
            lwm: vec![cand(0), cand(8), cand(16), cand(64)],
            lbm: None,
            block: BlockInfo {
                id: 0,
                is_head: true,
                len: 1,
                block_est_cycles: 100,
                peak_pages: 0,
            },
        }
    }

    #[test]
    fn tiling_counts() {
        let t = Tiling::new(32, 100, 100, 450);
        assert_eq!(t.n_oc, 4);
        assert_eq!(t.n_sp, 5);
    }

    #[test]
    fn best_within_picks_largest_fitting() {
        let m = mct();
        assert_eq!(m.best_lwm_within(0).pneed, 0);
        assert_eq!(m.best_lwm_within(10).pneed, 8);
        assert_eq!(m.best_lwm_within(16).pneed, 16);
        assert_eq!(m.best_lwm_within(1000).pneed, 64);
    }

    #[test]
    fn degrade_picks_next_cheaper() {
        let m = mct();
        assert_eq!(m.next_cheaper_lwm(64).pneed, 16);
        assert_eq!(m.next_cheaper_lwm(16).pneed, 8);
        assert_eq!(m.next_cheaper_lwm(8).pneed, 0);
        assert_eq!(m.next_cheaper_lwm(0).pneed, 0);
    }

    #[test]
    fn cached_bytes_sum() {
        let mut c = cand(4);
        c.cache_map = vec![
            CacheMapEntry {
                tensor: TensorKind::Input,
                vcaddr: VirtCacheAddr(0),
                cached_bytes: 1000,
                bypass: false,
                reuse: true,
            },
            CacheMapEntry {
                tensor: TensorKind::Weight,
                vcaddr: VirtCacheAddr(0),
                cached_bytes: 0,
                bypass: true,
                reuse: false,
            },
        ];
        assert_eq!(c.total_cached_bytes(), 1000);
        assert!(c.entry(TensorKind::Weight).unwrap().bypass);
        assert!(c.entry(TensorKind::Bias).is_none());
    }
}
