//! Cache-aware DNN mapping (Section III-C of the CaMDN paper).
//!
//! The offline half of CaMDN's scheduling: for every layer of a model,
//! generate multiple mapping candidates that target different
//! cache-usage levels, so the online allocator can adapt to whatever
//! cache capacity happens to be available. The pieces:
//!
//! * [`solver`] — the heuristic-solver-hybrid layer mapper;
//! * [`candidate`] — mapping candidates and the mapping candidate table
//!   (MCT) format;
//! * [`layer_mapper`] — model-level mapping: LWM ladders, LBM block
//!   segmentation, [`layer_mapper::map_model`];
//! * [`plan`] — dispatch-time unrolling of a candidate into tile phases;
//! * [`cache`] — a shared, thread-safe [`PlanCache`] memoizing mapping
//!   results across simulations (grid sweeps map each model once).
//!
//! # Example
//!
//! ```
//! use camdn_mapper::{map_model, MapperConfig};
//! use camdn_models::zoo;
//!
//! let mapping = map_model(&zoo::mobilenet_v2(), &MapperConfig::paper_default());
//! // Every layer has a zero-page fallback candidate plus richer ones.
//! assert!(mapping.mcts.iter().all(|m| m.lwm[0].pneed == 0));
//! assert!(mapping.peak_pages() > 0);
//! ```

#![warn(missing_docs)]
#![deny(deprecated)]

pub mod cache;
pub mod candidate;
pub mod layer_mapper;
pub mod plan;
pub mod solver;

pub use cache::{PlanCache, PlanCacheStats};
pub use candidate::{
    BlockInfo, CacheMapEntry, CandidateKind, LoopOrder, MappingCandidate, Mct, TensorKind, Tiling,
};
pub use layer_mapper::{lwm_ladder, map_layer_lwm, map_model, MapperConfig, ModelMapping};
pub use plan::{lower, LayerPlan, LowerMode, Phase, PlanSizes, Route, Transfer};
pub use solver::{solve, Solution, TensorSizes};
