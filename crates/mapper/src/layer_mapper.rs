//! Offline model mapping: building the mapping candidate tables.
//!
//! For every layer the mapper emits one LWM candidate per cache-usage
//! level in [`MapperConfig::cu_levels`] (Section III-C1) plus one LBM
//! candidate when the layer belongs to a multi-layer block
//! (Section III-C2). The result — one [`Mct`] per layer — is the "model
//! mapping file" of Fig. 6.

use crate::candidate::{
    BlockInfo, CacheMapEntry, CandidateKind, LoopOrder, MappingCandidate, Mct, TensorKind,
};
use crate::solver::{self, TensorSizes};
use camdn_common::config::NpuConfig;
use camdn_common::types::{Cycle, VirtCacheAddr, KIB, MIB};
use camdn_models::{Layer, Model, WeightClass};
use camdn_npu::compute::ComputeSpec;
use serde::{Deserialize, Serialize};

/// Configuration of the offline mapper.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MapperConfig {
    /// NPU hardware configuration (scratchpad size, PE array).
    pub npu: NpuConfig,
    /// Cache line size in bytes.
    pub line_bytes: u64,
    /// Cache page size in bytes (32 KiB in the paper).
    pub page_bytes: u64,
    /// Cache-usage levels for LWM candidates (Fig. 6: `[0KB, 256KB,
    /// 512KB, ...]`).
    pub cu_levels: Vec<u64>,
    /// Cap on pages a layer block may pin (prevents one model from
    /// occupying too much cache for too long, Section III-C2).
    pub lbm_max_block_pages: u32,
    /// Cap on layers per block.
    pub lbm_max_block_len: usize,
    /// Bandwidth share assumed by the profiling-style latency estimate
    /// (`T_est`), bytes per cycle.
    pub est_bw_bytes_per_cycle: f64,
}

impl MapperConfig {
    /// Mapper configuration matching Table II and the paper's CU ladder.
    pub fn paper_default() -> Self {
        MapperConfig {
            npu: NpuConfig::paper_default(),
            line_bytes: 64,
            page_bytes: 32 * KIB,
            cu_levels: vec![0, 256 * KIB, 512 * KIB, MIB, 2 * MIB, 4 * MIB, 8 * MIB],
            lbm_max_block_pages: 96, // 3 MiB of the 12 MiB subspace
            lbm_max_block_len: 8,
            est_bw_bytes_per_cycle: 25.6, // 1/4 of peak: a busy SoC share
        }
    }
}

impl Default for MapperConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// The mapping output for one model: its MCTs plus the cache-unaware
/// baseline mapping used by the comparison systems.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelMapping {
    /// Name of the mapped model.
    pub model_name: String,
    /// One MCT per layer.
    pub mcts: Vec<Mct>,
    /// Cache-unaware candidate per layer (baseline systems route all its
    /// traffic through the transparent shared cache).
    pub baseline: Vec<MappingCandidate>,
}

impl ModelMapping {
    /// Total estimated cycles across layers assuming the zero-page
    /// candidates (worst case).
    pub fn worst_case_cycles(&self) -> Cycle {
        self.mcts.iter().map(|m| m.lwm[0].est_cycles).sum()
    }

    /// Largest `pneed` over all candidates (peak page demand).
    pub fn peak_pages(&self) -> u32 {
        self.mcts
            .iter()
            .flat_map(|m| {
                m.lwm
                    .iter()
                    .map(|c| c.pneed)
                    .chain(m.lbm.iter().map(|c| c.pneed))
            })
            .max()
            .unwrap_or(0)
    }
}

fn pages(bytes: u64, page_bytes: u64) -> u32 {
    bytes.div_ceil(page_bytes) as u32
}

fn compute_spec(layer: &Layer) -> ComputeSpec {
    ComputeSpec {
        macs: layer.nest.macs(),
        reduction: layer.nest.reduction(),
        out_channels: layer.nest.oc,
        spatial: layer.nest.spatial(),
    }
}

fn estimate_cycles(cfg: &MapperConfig, compute: Cycle, dram_bytes: u64) -> Cycle {
    let mem = (dram_bytes as f64 / cfg.est_bw_bytes_per_cycle).ceil() as Cycle;
    compute.max(mem)
}

/// Builds the cache map rows for an LWM solution.
fn lwm_cache_map(
    sizes: &TensorSizes,
    cached_weight: u64,
    cached_input: u64,
    page_bytes: u64,
) -> (Vec<CacheMapEntry>, u32) {
    let mut vc = 0u64;
    let mut entries = Vec::with_capacity(4);
    let mut place = |tensor, cached: u64, reuse: bool| {
        let e = CacheMapEntry {
            tensor,
            vcaddr: VirtCacheAddr(vc),
            cached_bytes: cached,
            bypass: true,
            reuse,
        };
        vc += cached.div_ceil(page_bytes) * page_bytes;
        entries.push(e);
    };
    place(TensorKind::Input, cached_input, cached_input > 0);
    place(TensorKind::Weight, cached_weight, cached_weight > 0);
    place(TensorKind::Output, 0, false);
    let _ = sizes;
    place(TensorKind::Bias, 0, false);
    (entries, pages(vc, page_bytes))
}

/// Maps one layer at one cache-usage level (one LWM candidate).
pub fn map_layer_lwm(layer: &Layer, cfg: &MapperConfig, cu_bytes: u64) -> MappingCandidate {
    let sol = solver::solve(layer, &cfg.npu, cu_bytes);
    let sizes = TensorSizes::of(layer);
    let (cache_map, pneed) =
        lwm_cache_map(&sizes, sol.cached_weight, sol.cached_input, cfg.page_bytes);
    let spec = compute_spec(layer);
    let tiles = sol.tiling.n_oc * sol.tiling.n_sp;
    let compute_cycles = spec.layer_cycles(tiles, &cfg.npu);
    MappingCandidate {
        kind: CandidateKind::Lwm { cu_bytes },
        order: sol.order,
        tiling: sol.tiling,
        cache_map,
        pneed,
        dram_bytes: sol.dram_bytes,
        compute_cycles,
        est_cycles: estimate_cycles(cfg, compute_cycles, sol.dram_bytes),
    }
}

/// Position of a layer within its block (derived during segmentation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BlockPos {
    Head,
    Interior,
    Tail,
    /// Head and tail at once (block of length 1 — no LBM benefit).
    Solo,
}

/// Maps one layer as part of an LBM block.
///
/// Interior/tail layers read their input from the cache region written
/// by the previous layer; head layers stream it from DRAM (optionally
/// caching it under the smallest non-zero CU level so the head's own
/// re-sweeps don't regress below its LWM quality). Outputs of
/// head/interior layers stay in cache; the tail writes to DRAM. Weights
/// are always streamed with bypass (the block's pages are reserved for
/// intermediates — "zero memory space" for them, Section III-C2).
fn map_layer_lbm(layer: &Layer, cfg: &MapperConfig, pos: BlockPos, peak: u32) -> MappingCandidate {
    let sizes = TensorSizes::of(layer);
    let input_from_cache = matches!(pos, BlockPos::Interior | BlockPos::Tail);
    let output_to_cache = matches!(pos, BlockPos::Head | BlockPos::Interior);
    let head_cu = if input_from_cache {
        0
    } else {
        cfg.cu_levels.iter().copied().find(|&c| c > 0).unwrap_or(0)
    };
    let mut sol = solver::solve(layer, &cfg.npu, head_cu);
    if sol.cached_weight > 0 {
        // The block's pages are reserved for intermediates; heads may
        // cache their input but never weights.
        sol = solver::solve(layer, &cfg.npu, 0);
    }

    // DRAM traffic: start from the solved candidate and remove the
    // tensor streams that LBM keeps on-chip. When the input lives in
    // cache, re-sweeps are free, so the effective traffic is just the
    // once-through streams that remain.
    let mut dram = sizes.weight + sizes.bias;
    if !input_from_cache {
        // Head layer pays the solver's input strategy (re-sweeps minus
        // whatever it cached).
        dram += sol.dram_bytes - sizes.weight - sizes.bias - sizes.output;
    }
    if !output_to_cache {
        dram += sizes.output;
    }

    let mut vc = 0u64;
    let mut entries = Vec::with_capacity(4);
    let in_cached = if input_from_cache {
        sizes.input
    } else {
        sol.cached_input
    };
    entries.push(CacheMapEntry {
        tensor: TensorKind::Input,
        vcaddr: VirtCacheAddr(vc),
        cached_bytes: in_cached,
        // `bypass == false` marks a preloaded intermediate (written by
        // the previous layer of the block); head inputs fill from DRAM.
        bypass: !input_from_cache,
        reuse: in_cached > 0,
    });
    vc += in_cached.div_ceil(cfg.page_bytes) * cfg.page_bytes;
    let out_cached = if output_to_cache { sizes.output } else { 0 };
    entries.push(CacheMapEntry {
        tensor: TensorKind::Output,
        vcaddr: VirtCacheAddr(vc),
        cached_bytes: out_cached,
        bypass: !output_to_cache,
        reuse: false,
    });
    entries.push(CacheMapEntry {
        tensor: TensorKind::Weight,
        vcaddr: VirtCacheAddr(0),
        cached_bytes: 0,
        bypass: true,
        reuse: false,
    });
    entries.push(CacheMapEntry {
        tensor: TensorKind::Bias,
        vcaddr: VirtCacheAddr(0),
        cached_bytes: 0,
        bypass: true,
        reuse: false,
    });

    // Pages: the head reserves the whole block's peak plus its own
    // cached-input pages; members draw from the head's reservation.
    let pneed = if matches!(pos, BlockPos::Head) {
        peak + pages(sol.cached_input, cfg.page_bytes)
    } else {
        0
    };

    let spec = compute_spec(layer);
    let tiles = sol.tiling.n_oc * sol.tiling.n_sp;
    let compute_cycles = spec.layer_cycles(tiles, &cfg.npu);
    MappingCandidate {
        kind: CandidateKind::Lbm,
        order: if input_from_cache {
            // Input re-sweeps are free from cache: OcOuter streams the
            // weights exactly once.
            LoopOrder::OcOuter
        } else {
            sol.order
        },
        tiling: sol.tiling,
        cache_map: entries,
        pneed,
        dram_bytes: dram,
        compute_cycles,
        est_cycles: estimate_cycles(cfg, compute_cycles, dram),
    }
}

/// Greedy block segmentation for LBM: a block grows while every
/// interior intermediate fits the page cap and the block stays short
/// enough. Layers whose intermediates are too large form solo blocks.
fn segment_blocks(model: &Model, cfg: &MapperConfig) -> Vec<Vec<usize>> {
    let page = cfg.page_bytes;
    let cap = u64::from(cfg.lbm_max_block_pages) * page;
    let mut blocks: Vec<Vec<usize>> = Vec::new();
    let mut cur: Vec<usize> = Vec::new();
    for (i, layer) in model.layers.iter().enumerate() {
        let out_bytes = layer.output_bytes();
        let is_last = i + 1 == model.layers.len();
        // Peak pages while this layer runs inside the block: its input
        // intermediate (if any) plus its output intermediate.
        let in_bytes = if cur.is_empty() {
            0
        } else {
            model.layers[i - 1].output_bytes()
        };
        let peak_here = pages(in_bytes, page) + pages(out_bytes, page);
        let fits = u64::from(peak_here) * page <= cap && cur.len() < cfg.lbm_max_block_len;
        // Activation-operand matmuls consume an extra earlier tensor that
        // the chain abstraction does not pin; exclude them from blocks.
        let chainable = layer.weight_class != WeightClass::Activation;
        if fits && chainable {
            cur.push(i);
        } else {
            if !cur.is_empty() {
                blocks.push(std::mem::take(&mut cur));
            }
            cur.push(i);
        }
        if is_last && !cur.is_empty() {
            blocks.push(std::mem::take(&mut cur));
        }
    }
    blocks
}

/// Builds the deduped, dominance-pruned LWM candidate ladder for one
/// layer: one candidate per distinct `pneed`, ascending in pages and
/// strictly descending in DRAM traffic.
pub fn lwm_ladder(layer: &Layer, cfg: &MapperConfig) -> Vec<MappingCandidate> {
    let mut lwm: Vec<MappingCandidate> = Vec::new();
    for &cu in &cfg.cu_levels {
        let cand = map_layer_lwm(layer, cfg, cu);
        match lwm.iter_mut().find(|c| c.pneed == cand.pneed) {
            Some(existing) => {
                if cand.dram_bytes < existing.dram_bytes {
                    *existing = cand;
                }
            }
            None => lwm.push(cand),
        }
    }
    lwm.sort_by_key(|c| c.pneed);
    // Drop dominated candidates (more pages, no less traffic).
    let mut pruned: Vec<MappingCandidate> = Vec::new();
    for c in lwm {
        if pruned
            .last()
            .map(|p: &MappingCandidate| c.dram_bytes < p.dram_bytes)
            .unwrap_or(true)
        {
            pruned.push(c);
        }
    }
    pruned
}

/// Maps a whole model: MCTs for every layer plus the cache-unaware
/// baseline mapping.
pub fn map_model(model: &Model, cfg: &MapperConfig) -> ModelMapping {
    map_model_with(model, cfg, &mut lwm_ladder)
}

/// [`map_model`] with an injectable LWM-ladder source, so a
/// [`PlanCache`](crate::PlanCache) can serve repeated `(layer, NPU
/// config, CU ladder)` solves from its shared memo instead of
/// re-running the solver.
pub(crate) fn map_model_with(
    model: &Model,
    cfg: &MapperConfig,
    ladder: &mut dyn FnMut(&Layer, &MapperConfig) -> Vec<MappingCandidate>,
) -> ModelMapping {
    let blocks = segment_blocks(model, cfg);
    let mut mcts: Vec<Mct> = Vec::with_capacity(model.layers.len());
    let mut baseline = Vec::with_capacity(model.layers.len());

    for (block_id, block) in blocks.iter().enumerate() {
        // Peak pages over the block: for each member, input-intermediate
        // pages + output-intermediate pages.
        let mut peak = 0u32;
        for (j, &li) in block.iter().enumerate() {
            let inb = if j == 0 {
                0
            } else {
                model.layers[li - 1].output_bytes()
            };
            let outb = if j + 1 == block.len() {
                0
            } else {
                model.layers[li].output_bytes()
            };
            peak = peak.max(pages(inb, cfg.page_bytes) + pages(outb, cfg.page_bytes));
        }

        // First pass: build candidates and the block's estimated cycles.
        let mut block_cands: Vec<(usize, Vec<MappingCandidate>, Option<MappingCandidate>)> =
            Vec::new();
        let mut block_est: u64 = 0;
        for (j, &li) in block.iter().enumerate() {
            let layer = &model.layers[li];
            // LWM candidates, deduped by pneed, ascending.
            let lwm = ladder(layer, cfg);

            let pos = match (block.len(), j) {
                (1, _) => BlockPos::Solo,
                (_, 0) => BlockPos::Head,
                (n, j) if j + 1 == n => BlockPos::Tail,
                _ => BlockPos::Interior,
            };
            let lbm = if block.len() > 1 {
                Some(map_layer_lbm(layer, cfg, pos, peak))
            } else {
                None
            };
            if j == 0 {
                // The head may add pages for its own cached input.
                if let Some(l) = &lbm {
                    peak = peak.max(l.pneed);
                }
            }
            block_est += lbm
                .as_ref()
                .map(|c| c.est_cycles)
                .unwrap_or(lwm[0].est_cycles);
            block_cands.push((li, lwm, lbm));
        }

        // Second pass: assemble MCTs with block info.
        for (j, (li, lwm, lbm)) in block_cands.into_iter().enumerate() {
            baseline.push(lwm[0].clone());
            mcts.push(Mct {
                layer_idx: li,
                lwm,
                lbm,
                block: BlockInfo {
                    id: block_id as u32,
                    is_head: j == 0,
                    len: block.len() as u32,
                    block_est_cycles: block_est,
                    peak_pages: peak,
                },
            });
        }
    }
    mcts.sort_by_key(|m| m.layer_idx);
    ModelMapping {
        model_name: model.name.clone(),
        mcts,
        baseline,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use camdn_models::zoo;

    fn cfg() -> MapperConfig {
        MapperConfig::paper_default()
    }

    #[test]
    fn every_layer_has_zero_page_candidate() {
        let m = zoo::mobilenet_v2();
        let mapping = map_model(&m, &cfg());
        assert_eq!(mapping.mcts.len(), m.layers.len());
        for mct in &mapping.mcts {
            assert_eq!(mct.lwm[0].pneed, 0, "layer {} lacks CU=0", mct.layer_idx);
        }
    }

    #[test]
    fn candidates_ascend_in_pages_descend_in_traffic() {
        let m = zoo::resnet50();
        let mapping = map_model(&m, &cfg());
        for mct in &mapping.mcts {
            for w in mct.lwm.windows(2) {
                assert!(w[0].pneed < w[1].pneed);
                assert!(w[0].dram_bytes > w[1].dram_bytes);
            }
        }
    }

    #[test]
    fn pneed_within_cu_level() {
        let m = zoo::vit_base16();
        let mapping = map_model(&m, &cfg());
        for mct in &mapping.mcts {
            for c in &mct.lwm {
                if let CandidateKind::Lwm { cu_bytes } = c.kind {
                    assert!(
                        u64::from(c.pneed) * cfg().page_bytes <= cu_bytes.max(1),
                        "candidate exceeds its CU level"
                    );
                }
            }
        }
    }

    #[test]
    fn lbm_blocks_respect_caps() {
        let m = zoo::mobilenet_v2();
        let c = cfg();
        let mapping = map_model(&m, &c);
        for mct in &mapping.mcts {
            assert!(mct.block.len <= c.lbm_max_block_len as u32);
            assert!(mct.block.peak_pages <= c.lbm_max_block_pages);
            if let Some(lbm) = &mct.lbm {
                if mct.block.is_head {
                    assert_eq!(lbm.pneed, mct.block.peak_pages);
                } else {
                    assert_eq!(lbm.pneed, 0);
                }
            }
        }
    }

    #[test]
    fn lbm_reduces_traffic_on_intermediate_heavy_models() {
        // MobileNet: interior LBM layers skip both input and output DRAM
        // streams.
        let m = zoo::mobilenet_v2();
        let mapping = map_model(&m, &cfg());
        let mut saved = 0i64;
        for mct in &mapping.mcts {
            if let Some(lbm) = &mct.lbm {
                saved += mct.lwm[0].dram_bytes as i64 - lbm.dram_bytes as i64;
            }
        }
        assert!(saved > 0, "LBM should save DRAM traffic on MobileNet");
    }

    #[test]
    fn attention_matmuls_are_excluded_from_blocks() {
        let m = zoo::bert_base();
        let mapping = map_model(&m, &cfg());
        for (mct, layer) in mapping.mcts.iter().zip(&m.layers) {
            if layer.weight_class == WeightClass::Activation {
                assert!(
                    mct.block.len == 1 || mct.block.is_head,
                    "activation matmul {} must start its own block",
                    layer.name
                );
            }
        }
    }

    #[test]
    fn baseline_has_one_candidate_per_layer() {
        let m = zoo::gnmt();
        let mapping = map_model(&m, &cfg());
        assert_eq!(mapping.baseline.len(), m.layers.len());
        for b in &mapping.baseline {
            assert_eq!(b.pneed, 0, "baseline is cache-unaware");
        }
    }

    #[test]
    fn est_cycles_cover_both_bounds() {
        let m = zoo::resnet50();
        let mapping = map_model(&m, &cfg());
        for mct in &mapping.mcts {
            for c in &mct.lwm {
                assert!(c.est_cycles >= c.compute_cycles);
                let mem = (c.dram_bytes as f64 / cfg().est_bw_bytes_per_cycle) as u64;
                assert!(c.est_cycles >= mem.saturating_sub(1));
            }
        }
    }
}
