//! Lowering mapping candidates to executable phase plans ("generate &
//! send NPU instructions" in Fig. 6).
//!
//! MCTs store candidates compactly; only when the online allocator picks
//! a candidate is it unrolled into a [`LayerPlan`]: a sequence of
//! double-buffered tile phases, each with its memory transfers and
//! compute work. The same plan structure serves both worlds:
//!
//! * [`LowerMode::Transparent`] routes every transfer through the
//!   hardware-managed shared cache (the baseline systems);
//! * [`LowerMode::Camdn`] routes transfers according to the candidate's
//!   cache map — explicit fills/reads of the model-exclusive region and
//!   bypasses for non-reusable streams.

use crate::candidate::{LoopOrder, MappingCandidate, TensorKind};
use camdn_common::types::Cycle;
use serde::{Deserialize, Serialize};

/// How a transfer reaches memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Route {
    /// Through the transparent shared cache (baseline path).
    Transparent,
    /// DRAM → model-exclusive cache region (NEC fill).
    Fill,
    /// Model-exclusive cache region → NPU (NEC read; multicast-eligible).
    CacheRead,
    /// NPU → model-exclusive cache region (NEC write).
    CacheWrite,
    /// Cache region → DRAM (NEC writeback).
    Writeback,
    /// DRAM → NPU without caching (NEC bypass-read).
    BypassRead,
    /// NPU → DRAM without caching (NEC bypass-write).
    BypassWrite,
}

impl Route {
    /// True if this route moves data over the DRAM bus.
    pub fn touches_dram(&self) -> bool {
        matches!(
            self,
            Route::Transparent
                | Route::Fill
                | Route::Writeback
                | Route::BypassRead
                | Route::BypassWrite
        )
    }
}

/// One memory transfer of a phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Transfer {
    /// Which tensor the bytes belong to.
    pub tensor: TensorKind,
    /// Byte offset within the tensor.
    pub offset: u64,
    /// Transfer size in bytes.
    pub bytes: u64,
    /// True for writes (NPU → memory direction).
    pub write: bool,
    /// Routing decision.
    pub route: Route,
}

/// One double-buffered tile phase: its transfers plus its compute work.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Phase {
    /// Memory operations issued at phase start.
    pub transfers: Vec<Transfer>,
    /// PE-array busy cycles of this phase.
    pub compute_cycles: Cycle,
}

/// The unrolled execution plan of one layer under one candidate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerPlan {
    /// Tile phases in execution order.
    pub phases: Vec<Phase>,
}

impl LayerPlan {
    /// Total bytes this plan moves over the DRAM bus (model check).
    pub fn dram_bytes(&self) -> u64 {
        self.phases
            .iter()
            .flat_map(|p| &p.transfers)
            .filter(|t| t.route.touches_dram())
            .map(|t| t.bytes)
            .sum()
    }

    /// Total compute cycles over all phases.
    pub fn compute_cycles(&self) -> Cycle {
        self.phases.iter().map(|p| p.compute_cycles).sum()
    }
}

/// Target world for lowering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LowerMode {
    /// Baseline: hardware-managed shared cache.
    Transparent,
    /// CaMDN: NPU-controlled regions, bypass and fills per the cache map.
    Camdn,
}

/// Tensor byte sizes needed to unroll a plan (taken from the layer).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlanSizes {
    /// Weight operand bytes.
    pub weight: u64,
    /// Input bytes.
    pub input: u64,
    /// Output bytes.
    pub output: u64,
    /// Bias bytes.
    pub bias: u64,
}

/// Upper bound on unrolled phases; beyond this, outer iterations are
/// merged (keeps plans small for extremely tiled layers).
pub const MAX_PHASES: u64 = 256;

/// Splits `[0, total)` into `n` contiguous chunks; returns chunk `i` as
/// `(offset, len)`. Chunks differ by at most one rounding unit.
fn chunk(total: u64, n: u64, i: u64) -> (u64, u64) {
    let start = total * i / n;
    let end = total * (i + 1) / n;
    (start, end - start)
}

/// Unrolls `candidate` into a phase plan.
///
/// The phase structure mirrors the cache-level loop: one phase per outer
/// iteration (`n_oc` phases for [`LoopOrder::OcOuter`], `n_sp` for
/// [`LoopOrder::SpatialOuter`]), with the re-swept tensor re-transferred
/// every phase and the stationary tensors moved in per-phase chunks.
pub fn lower(candidate: &MappingCandidate, sizes: PlanSizes, mode: LowerMode) -> LayerPlan {
    let (n_outer_raw, resweep_tensor) = match candidate.order {
        LoopOrder::OcOuter => (candidate.tiling.n_oc, TensorKind::Input),
        LoopOrder::SpatialOuter => (candidate.tiling.n_sp, TensorKind::Weight),
    };
    let n_outer = n_outer_raw.clamp(1, MAX_PHASES);
    let compute_per_phase = candidate.compute_cycles / n_outer;
    let cached = |t: TensorKind| candidate.entry(t).map(|e| e.cached_bytes).unwrap_or(0);
    let in_cached = cached(TensorKind::Input);
    let w_cached = cached(TensorKind::Weight);
    let out_cached = cached(TensorKind::Output);

    let mut phases = Vec::with_capacity(n_outer as usize);
    for j in 0..n_outer {
        let mut transfers = Vec::with_capacity(6);
        let mut push = |tensor, offset, bytes: u64, write, route| {
            if bytes > 0 {
                transfers.push(Transfer {
                    tensor,
                    offset,
                    bytes,
                    write,
                    route,
                });
            }
        };

        // Bias rides along with the first phase.
        if j == 0 && sizes.bias > 0 {
            let route = match mode {
                LowerMode::Transparent => Route::Transparent,
                LowerMode::Camdn => Route::BypassRead,
            };
            push(TensorKind::Bias, 0, sizes.bias, false, route);
        }

        // The re-swept tensor: transferred in full every phase.
        let (rs_total, rs_cached) = match resweep_tensor {
            TensorKind::Input => (sizes.input, in_cached),
            _ => (sizes.weight, w_cached),
        };
        // Under LBM, a cached *input* marked non-bypass was written into
        // the region by the previous layer of the block — it is already
        // resident, so even the first sweep is a cache read, never a
        // DRAM fill. (Block-head inputs have `bypass == true` and still
        // fill from DRAM.)
        let preloaded = matches!(candidate.kind, crate::candidate::CandidateKind::Lbm)
            && resweep_tensor == TensorKind::Input
            && candidate
                .entry(TensorKind::Input)
                .map(|e| !e.bypass)
                .unwrap_or(false);
        match mode {
            LowerMode::Transparent => {
                push(resweep_tensor, 0, rs_total, false, Route::Transparent);
            }
            LowerMode::Camdn => {
                if rs_cached > 0 {
                    // First sweep fills the region; later sweeps hit it.
                    let route = if j == 0 && !preloaded {
                        Route::Fill
                    } else {
                        Route::CacheRead
                    };
                    push(resweep_tensor, 0, rs_cached, false, route);
                }
                let streamed = rs_total - rs_cached;
                if streamed > 0 {
                    push(
                        resweep_tensor,
                        rs_cached,
                        streamed,
                        false,
                        Route::BypassRead,
                    );
                }
            }
        }

        // The stationary tensor: chunk j only.
        let stationary = match resweep_tensor {
            TensorKind::Input => TensorKind::Weight,
            _ => TensorKind::Input,
        };
        let (st_total, st_cached) = match stationary {
            TensorKind::Weight => (sizes.weight, w_cached),
            _ => (sizes.input, in_cached),
        };
        let (off, len) = chunk(st_total, n_outer, j);
        match mode {
            LowerMode::Transparent => push(stationary, off, len, false, Route::Transparent),
            LowerMode::Camdn => {
                if st_cached > 0 {
                    // LBM: the stationary input lives in the cache region.
                    let cached_len = len.min(st_cached.saturating_sub(off));
                    push(stationary, off, cached_len, false, Route::CacheRead);
                    if len > cached_len {
                        push(
                            stationary,
                            off + cached_len,
                            len - cached_len,
                            false,
                            Route::BypassRead,
                        );
                    }
                } else {
                    push(stationary, off, len, false, Route::BypassRead);
                }
            }
        }

        // Output: chunk j, written once.
        let (o_off, o_len) = chunk(sizes.output, n_outer, j);
        match mode {
            LowerMode::Transparent => {
                push(TensorKind::Output, o_off, o_len, true, Route::Transparent)
            }
            LowerMode::Camdn => {
                if out_cached > 0 {
                    push(TensorKind::Output, o_off, o_len, true, Route::CacheWrite);
                } else {
                    push(TensorKind::Output, o_off, o_len, true, Route::BypassWrite);
                }
            }
        }

        phases.push(Phase {
            transfers,
            compute_cycles: compute_per_phase,
        });
    }
    LayerPlan { phases }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer_mapper::{map_layer_lwm, MapperConfig};
    use camdn_models::{Layer, LoopNest, OpKind};

    fn layer() -> Layer {
        Layer::new("c", OpKind::Conv, LoopNest::conv(256, 14, 14, 256, 3, 1))
    }

    fn sizes(l: &Layer) -> PlanSizes {
        PlanSizes {
            weight: l.weight_operand_bytes(),
            input: l.input_bytes(),
            output: l.output_bytes(),
            bias: l.nest.bias_bytes(),
        }
    }

    #[test]
    fn transparent_plan_traffic_includes_resweeps() {
        let l = layer();
        let cfg = MapperConfig::paper_default();
        let cand = map_layer_lwm(&l, &cfg, 0);
        let plan = lower(&cand, sizes(&l), LowerMode::Transparent);
        // Transparent lowering re-reads the re-swept tensor every phase;
        // the amount seen by the cache equals the candidate's modelled
        // zero-cache DRAM traffic.
        assert_eq!(plan.dram_bytes(), cand.dram_bytes);
    }

    #[test]
    fn camdn_plan_matches_candidate_traffic() {
        let l = layer();
        let cfg = MapperConfig::paper_default();
        for cu in [0u64, 512 << 10, 2 << 20] {
            let cand = map_layer_lwm(&l, &cfg, cu);
            let plan = lower(&cand, sizes(&l), LowerMode::Camdn);
            assert_eq!(
                plan.dram_bytes(),
                cand.dram_bytes,
                "DRAM bytes mismatch at CU={cu}"
            );
        }
    }

    #[test]
    fn cached_resweep_fills_once_then_reads() {
        let l = layer();
        let cfg = MapperConfig::paper_default();
        let cand = map_layer_lwm(&l, &cfg, 4 << 20);
        if cand.total_cached_bytes() == 0 {
            return; // nothing cached for this shape; covered elsewhere
        }
        let plan = lower(&cand, sizes(&l), LowerMode::Camdn);
        let fills: u64 = plan
            .phases
            .iter()
            .flat_map(|p| &p.transfers)
            .filter(|t| t.route == Route::Fill)
            .map(|t| t.bytes)
            .sum();
        assert_eq!(fills, cand.total_cached_bytes());
    }

    #[test]
    fn compute_is_spread_over_phases() {
        let l = layer();
        let cfg = MapperConfig::paper_default();
        let cand = map_layer_lwm(&l, &cfg, 0);
        let plan = lower(&cand, sizes(&l), LowerMode::Camdn);
        let total = plan.compute_cycles();
        assert!(total <= cand.compute_cycles);
        assert!(total >= cand.compute_cycles * 9 / 10);
    }

    #[test]
    fn chunks_partition_exactly() {
        let mut covered = 0u64;
        for i in 0..7 {
            let (off, len) = chunk(1000, 7, i);
            assert_eq!(off, covered);
            covered += len;
        }
        assert_eq!(covered, 1000);
    }

    #[test]
    fn lbm_plans_match_candidate_traffic() {
        use crate::layer_mapper::map_model;
        let model = camdn_models::zoo::mobilenet_v2();
        let cfg = MapperConfig::paper_default();
        let mapping = map_model(&model, &cfg);
        let mut checked = 0;
        for (mct, layer) in mapping.mcts.iter().zip(&model.layers) {
            if let Some(lbm) = &mct.lbm {
                let s = PlanSizes {
                    weight: layer.weight_operand_bytes(),
                    input: layer.input_bytes(),
                    output: layer.output_bytes(),
                    bias: layer.static_weight_bytes().min(layer.nest.bias_bytes()),
                };
                let plan = lower(lbm, s, LowerMode::Camdn);
                assert_eq!(
                    plan.dram_bytes(),
                    lbm.dram_bytes,
                    "LBM traffic mismatch on layer {}",
                    layer.name
                );
                checked += 1;
            }
        }
        assert!(checked > 10, "MobileNet should have many LBM layers");
    }

    #[test]
    fn outputs_are_written_once() {
        let l = layer();
        let cfg = MapperConfig::paper_default();
        let cand = map_layer_lwm(&l, &cfg, 1 << 20);
        let plan = lower(&cand, sizes(&l), LowerMode::Camdn);
        let out_bytes: u64 = plan
            .phases
            .iter()
            .flat_map(|p| &p.transfers)
            .filter(|t| t.tensor == TensorKind::Output)
            .map(|t| t.bytes)
            .sum();
        assert_eq!(out_bytes, l.nest.output_bytes());
    }
}
