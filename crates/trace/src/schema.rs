//! The `camdn-trace/1` NDJSON request-trace format: records, typed
//! errors, and a streaming reader/writer pair.
//!
//! A trace file is newline-delimited JSON. The first line is a header
//! naming the schema; every following line is one request:
//!
//! ```text
//! {"schema": "camdn-trace/1"}
//! {"ts_us": 0, "tenant": "t000", "model": "MB", "class": "H"}
//! {"ts_us": 412, "tenant": "t003", "model": "RS", "class": "M"}
//! ```
//!
//! Timestamps are microseconds since trace start and must be
//! non-decreasing (ties are fine — two requests can land in the same
//! microsecond). The reader is a plain [`Iterator`] over any
//! [`BufRead`], so a trace is validated and consumed line by line —
//! a billion-arrival file never materializes in memory. Every way a
//! record can be malformed (unknown schema version, negative / NaN /
//! fractional timestamps, timestamps running backwards, missing
//! fields) is a [`TraceError`] variant, never a panic.

use camdn_sweep::jsonl::{esc, field, parse_flat_object, JsonVal};
use std::io::{BufRead, Write};
use std::path::Path;

/// Schema identifier of the trace header line.
pub const TRACE_SCHEMA: &str = "camdn-trace/1";

/// SLA class of a request: which deadline scale over the model's
/// Table I QoS target the request is held to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SlaClass {
    /// Tight deadline (QoS-H, 0.8 × target).
    High,
    /// Nominal deadline (QoS-M, 1.0 × target).
    Medium,
    /// Relaxed deadline (QoS-L, 1.2 × target).
    Low,
}

impl SlaClass {
    /// All classes, tightest first.
    pub const ALL: [SlaClass; 3] = [SlaClass::High, SlaClass::Medium, SlaClass::Low];

    /// The deadline scale over the model's QoS target (paper
    /// Section IV-A: 0.8 / 1.0 / 1.2).
    pub fn qos_scale(&self) -> f64 {
        match self {
            SlaClass::High => 0.8,
            SlaClass::Medium => 1.0,
            SlaClass::Low => 1.2,
        }
    }

    /// The single-letter trace encoding (`"H"` / `"M"` / `"L"`).
    pub fn letter(&self) -> &'static str {
        match self {
            SlaClass::High => "H",
            SlaClass::Medium => "M",
            SlaClass::Low => "L",
        }
    }

    /// Parses the trace encoding back.
    pub fn from_letter(s: &str) -> Option<SlaClass> {
        match s {
            "H" => Some(SlaClass::High),
            "M" => Some(SlaClass::Medium),
            "L" => Some(SlaClass::Low),
            _ => None,
        }
    }
}

/// One request of a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// Arrival time in microseconds since trace start.
    pub ts_us: u64,
    /// Tenant identifier (free-form, e.g. `"t003"`).
    pub tenant: String,
    /// Model requested, by Table I abbreviation (`"MB"`) or full name.
    pub model: String,
    /// SLA class the request is held to.
    pub class: SlaClass,
}

/// Everything that can go wrong reading, writing or replaying a trace.
///
/// `#[non_exhaustive]`: match with a wildcard arm so new failure modes
/// stay additive.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TraceError {
    /// An underlying I/O operation failed.
    Io {
        /// What failed, including the path.
        detail: String,
    },
    /// The first line is missing or is not a trace header.
    BadHeader {
        /// What was found instead.
        detail: String,
    },
    /// The header names a schema version this build does not read.
    UnknownSchema {
        /// The schema string found in the header.
        found: String,
    },
    /// A record line is structurally broken (torn JSON, missing or
    /// mistyped fields, unknown SLA class).
    Malformed {
        /// 1-based line number in the file (line 1 is the header).
        line: u64,
        /// What is wrong with it.
        detail: String,
    },
    /// A record's timestamp is not a valid microsecond count
    /// (negative, NaN/inf, or fractional).
    BadTimestamp {
        /// 1-based line number in the file.
        line: u64,
        /// Why the timestamp was rejected.
        detail: String,
    },
    /// A record's timestamp runs backwards relative to its
    /// predecessor (timestamps must be non-decreasing).
    NonMonotonic {
        /// 1-based line number of the offending record.
        line: u64,
        /// The predecessor's timestamp.
        prev_us: u64,
        /// The offending timestamp.
        ts_us: u64,
    },
    /// A replayed record names a model the zoo does not know.
    UnknownModel {
        /// 1-based line number of the record (0 for generated traces).
        line: u64,
        /// The unknown model string.
        model: String,
    },
    /// A configuration value is out of range or inconsistent.
    InvalidConfig(String),
    /// The engine failed while replaying a window.
    Engine {
        /// Index of the window whose run failed.
        window: u64,
        /// The engine's error, rendered.
        detail: String,
    },
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Io { detail } => write!(f, "trace I/O error: {detail}"),
            TraceError::BadHeader { detail } => {
                write!(f, "not a trace file: {detail}")
            }
            TraceError::UnknownSchema { found } => write!(
                f,
                "unsupported trace schema {found:?} (this build reads {TRACE_SCHEMA:?})"
            ),
            TraceError::Malformed { line, detail } => {
                write!(f, "malformed trace record at line {line}: {detail}")
            }
            TraceError::BadTimestamp { line, detail } => {
                write!(f, "bad timestamp at line {line}: {detail}")
            }
            TraceError::NonMonotonic {
                line,
                prev_us,
                ts_us,
            } => write!(
                f,
                "non-monotonic timestamp at line {line}: {ts_us} µs after {prev_us} µs"
            ),
            TraceError::UnknownModel { line, model } => {
                write!(f, "unknown model {model:?} at line {line}")
            }
            TraceError::InvalidConfig(msg) => write!(f, "invalid trace config: {msg}"),
            TraceError::Engine { window, detail } => {
                write!(f, "engine error replaying window {window}: {detail}")
            }
        }
    }
}

impl std::error::Error for TraceError {}

/// The header line of a trace file (no trailing newline).
pub fn header_line() -> String {
    format!("{{\"schema\": \"{TRACE_SCHEMA}\"}}")
}

/// One record as its NDJSON line (no trailing newline).
pub fn record_line(rec: &TraceRecord) -> String {
    format!(
        "{{\"ts_us\": {}, \"tenant\": \"{}\", \"model\": \"{}\", \"class\": \"{}\"}}",
        rec.ts_us,
        esc(&rec.tenant),
        esc(&rec.model),
        rec.class.letter(),
    )
}

// ------------------------------------------------------------------
// Writer
// ------------------------------------------------------------------

/// Streaming trace writer: header first, then one validated record
/// per [`TraceWriter::write`] call.
///
/// The writer enforces the same invariants the reader checks, so a
/// written trace always reads back clean: timestamps must be
/// non-decreasing and tenant/model must be non-empty.
#[derive(Debug)]
pub struct TraceWriter<W: Write> {
    w: W,
    last_us: Option<u64>,
    records: u64,
}

impl TraceWriter<std::io::BufWriter<std::fs::File>> {
    /// Creates (truncates) a trace file at `path` and writes the
    /// header.
    pub fn create(path: impl AsRef<Path>) -> Result<Self, TraceError> {
        let path = path.as_ref();
        let file = std::fs::File::create(path).map_err(|e| TraceError::Io {
            detail: format!("creating {}: {e}", path.display()),
        })?;
        TraceWriter::new(std::io::BufWriter::new(file))
    }
}

impl<W: Write> TraceWriter<W> {
    /// Wraps any writer and emits the header line.
    pub fn new(mut w: W) -> Result<Self, TraceError> {
        writeln!(w, "{}", header_line()).map_err(|e| TraceError::Io {
            detail: format!("writing trace header: {e}"),
        })?;
        Ok(TraceWriter {
            w,
            last_us: None,
            records: 0,
        })
    }

    /// Appends one record, enforcing monotonicity and non-empty ids.
    pub fn write(&mut self, rec: &TraceRecord) -> Result<(), TraceError> {
        let line = self.records + 2; // header is line 1
        if let Some(prev) = self.last_us {
            if rec.ts_us < prev {
                return Err(TraceError::NonMonotonic {
                    line,
                    prev_us: prev,
                    ts_us: rec.ts_us,
                });
            }
        }
        if rec.tenant.is_empty() || rec.model.is_empty() {
            return Err(TraceError::Malformed {
                line,
                detail: "tenant and model must be non-empty".into(),
            });
        }
        writeln!(self.w, "{}", record_line(rec)).map_err(|e| TraceError::Io {
            detail: format!("writing trace record: {e}"),
        })?;
        self.last_us = Some(rec.ts_us);
        self.records += 1;
        Ok(())
    }

    /// Records written so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Flushes and returns the underlying writer.
    pub fn finish(mut self) -> Result<W, TraceError> {
        self.w.flush().map_err(|e| TraceError::Io {
            detail: format!("flushing trace: {e}"),
        })?;
        Ok(self.w)
    }
}

// ------------------------------------------------------------------
// Reader
// ------------------------------------------------------------------

/// Streaming trace reader: validates the header on construction, then
/// yields one `Result<TraceRecord, TraceError>` per line.
///
/// The iterator fuses on the first error — a broken trace yields its
/// error once and then ends, so `collect::<Result<Vec<_>, _>>()`
/// behaves as expected.
#[derive(Debug)]
pub struct TraceReader<R: BufRead> {
    r: R,
    line: u64,
    last_us: Option<u64>,
    failed: bool,
}

impl TraceReader<std::io::BufReader<std::fs::File>> {
    /// Opens a trace file and validates its header.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, TraceError> {
        let path = path.as_ref();
        let file = std::fs::File::open(path).map_err(|e| TraceError::Io {
            detail: format!("opening {}: {e}", path.display()),
        })?;
        TraceReader::new(std::io::BufReader::new(file))
    }
}

impl<R: BufRead> TraceReader<R> {
    /// Wraps any buffered reader and validates the header line.
    pub fn new(mut r: R) -> Result<Self, TraceError> {
        let mut header = String::new();
        r.read_line(&mut header).map_err(|e| TraceError::Io {
            detail: format!("reading trace header: {e}"),
        })?;
        let fields = parse_flat_object(&header).ok_or_else(|| TraceError::BadHeader {
            detail: format!("first line is not a JSON object: {:?}", header.trim()),
        })?;
        let schema = field(&fields, "schema")
            .and_then(JsonVal::as_str)
            .ok_or_else(|| TraceError::BadHeader {
                detail: "header has no \"schema\" field".into(),
            })?;
        if schema != TRACE_SCHEMA {
            return Err(TraceError::UnknownSchema {
                found: schema.to_string(),
            });
        }
        Ok(TraceReader {
            r,
            line: 1,
            last_us: None,
            failed: false,
        })
    }
}

/// Parses and validates the timestamp token of one record.
fn parse_ts(fields: &[(String, JsonVal)], line: u64) -> Result<u64, TraceError> {
    let tok = match field(fields, "ts_us") {
        Some(JsonVal::Num(s)) => s,
        Some(_) => {
            return Err(TraceError::BadTimestamp {
                line,
                detail: "\"ts_us\" is not a number".into(),
            })
        }
        None => {
            return Err(TraceError::Malformed {
                line,
                detail: "missing \"ts_us\"".into(),
            })
        }
    };
    if let Ok(us) = tok.parse::<u64>() {
        return Ok(us);
    }
    // Not a u64: classify the rejection precisely.
    let detail = match tok.parse::<f64>() {
        Ok(v) if v.is_nan() => "NaN is not a timestamp".to_string(),
        Ok(v) if v.is_infinite() => "infinite timestamp".to_string(),
        Ok(v) if v < 0.0 => format!("negative timestamp {tok}"),
        Ok(_) => format!("timestamp {tok} is not an integral µs count"),
        Err(_) => format!("timestamp {tok:?} is not a number"),
    };
    Err(TraceError::BadTimestamp { line, detail })
}

/// Parses one record line (shared by the reader and tests).
fn parse_record(text: &str, line: u64) -> Result<TraceRecord, TraceError> {
    let fields = parse_flat_object(text).ok_or_else(|| TraceError::Malformed {
        line,
        detail: "not a flat JSON object (torn line?)".into(),
    })?;
    let ts_us = parse_ts(&fields, line)?;
    let need_str = |key: &str| -> Result<String, TraceError> {
        field(&fields, key)
            .and_then(JsonVal::as_str)
            .filter(|s| !s.is_empty())
            .map(str::to_string)
            .ok_or_else(|| TraceError::Malformed {
                line,
                detail: format!("missing or empty \"{key}\""),
            })
    };
    let tenant = need_str("tenant")?;
    let model = need_str("model")?;
    let class_s = need_str("class")?;
    let class = SlaClass::from_letter(&class_s).ok_or_else(|| TraceError::Malformed {
        line,
        detail: format!("unknown SLA class {class_s:?} (expected H/M/L)"),
    })?;
    Ok(TraceRecord {
        ts_us,
        tenant,
        model,
        class,
    })
}

impl<R: BufRead> Iterator for TraceReader<R> {
    type Item = Result<TraceRecord, TraceError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        let mut text = String::new();
        loop {
            text.clear();
            match self.r.read_line(&mut text) {
                Ok(0) => return None,
                Ok(_) => {}
                Err(e) => {
                    self.failed = true;
                    return Some(Err(TraceError::Io {
                        detail: format!("reading trace line {}: {e}", self.line + 1),
                    }));
                }
            }
            self.line += 1;
            if !text.trim().is_empty() {
                break;
            }
        }
        let rec = match parse_record(&text, self.line) {
            Ok(rec) => rec,
            Err(e) => {
                self.failed = true;
                return Some(Err(e));
            }
        };
        if let Some(prev) = self.last_us {
            if rec.ts_us < prev {
                self.failed = true;
                return Some(Err(TraceError::NonMonotonic {
                    line: self.line,
                    prev_us: prev,
                    ts_us: rec.ts_us,
                }));
            }
        }
        self.last_us = Some(rec.ts_us);
        Some(Ok(rec))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read_all(text: &str) -> Result<Vec<TraceRecord>, TraceError> {
        TraceReader::new(text.as_bytes())?.collect()
    }

    fn rec(ts_us: u64) -> TraceRecord {
        TraceRecord {
            ts_us,
            tenant: "t0".into(),
            model: "MB".into(),
            class: SlaClass::Medium,
        }
    }

    #[test]
    fn roundtrips_records_bit_for_bit() {
        let records = vec![
            rec(0),
            TraceRecord {
                ts_us: 5,
                tenant: "weird \"tenant\"\n".into(),
                model: "ResNet50".into(),
                class: SlaClass::High,
            },
            rec(5), // ties are legal
            rec(1_000_000),
        ];
        let mut w = TraceWriter::new(Vec::new()).unwrap();
        for r in &records {
            w.write(r).unwrap();
        }
        let bytes = w.finish().unwrap();
        let back: Vec<TraceRecord> = TraceReader::new(bytes.as_slice())
            .unwrap()
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(back, records);
    }

    #[test]
    fn header_is_required_and_versioned() {
        assert!(matches!(read_all(""), Err(TraceError::BadHeader { .. })));
        assert!(matches!(
            TraceReader::new("not json\n".as_bytes()).err(),
            Some(TraceError::BadHeader { .. })
        ));
        assert_eq!(
            TraceReader::new("{\"schema\": \"camdn-trace/9\"}\n".as_bytes()).err(),
            Some(TraceError::UnknownSchema {
                found: "camdn-trace/9".into()
            })
        );
    }

    #[test]
    fn non_monotonic_timestamps_are_rejected_with_context() {
        let text = format!(
            "{}\n{}\n{}\n",
            header_line(),
            record_line(&rec(100)),
            record_line(&rec(99)),
        );
        assert_eq!(
            read_all(&text),
            Err(TraceError::NonMonotonic {
                line: 3,
                prev_us: 100,
                ts_us: 99
            })
        );
        // The writer refuses to produce such a trace in the first place.
        let mut w = TraceWriter::new(Vec::new()).unwrap();
        w.write(&rec(100)).unwrap();
        assert!(matches!(
            w.write(&rec(99)),
            Err(TraceError::NonMonotonic { line: 3, .. })
        ));
    }

    #[test]
    fn bad_timestamps_are_typed_not_panics() {
        let line = |ts: &str| {
            format!(
                "{}\n{{\"ts_us\": {ts}, \"tenant\": \"t0\", \"model\": \"MB\", \"class\": \"M\"}}\n",
                header_line()
            )
        };
        for (ts, needle) in [
            ("-5", "negative"),
            ("NaN", "NaN"),
            ("inf", "infinite"),
            ("1.5", "integral"),
            ("\"soon\"", "not a number"),
        ] {
            match read_all(&line(ts)) {
                Err(TraceError::BadTimestamp { line: 2, detail }) => {
                    assert!(detail.contains(needle), "{ts}: {detail}")
                }
                other => panic!("{ts}: expected BadTimestamp, got {other:?}"),
            }
        }
    }

    #[test]
    fn malformed_records_are_typed_not_panics() {
        let with_body = |body: &str| format!("{}\n{body}\n", header_line());
        // Torn line (kill mid-write).
        assert!(matches!(
            read_all(&with_body("{\"ts_us\": 3, \"tena")),
            Err(TraceError::Malformed { line: 2, .. })
        ));
        // Missing fields.
        assert!(matches!(
            read_all(&with_body("{\"ts_us\": 3}")),
            Err(TraceError::Malformed { line: 2, .. })
        ));
        // Unknown SLA class.
        match read_all(&with_body(
            "{\"ts_us\": 3, \"tenant\": \"t0\", \"model\": \"MB\", \"class\": \"X\"}",
        )) {
            Err(TraceError::Malformed { line: 2, detail }) => {
                assert!(detail.contains("SLA class"), "{detail}")
            }
            other => panic!("expected Malformed, got {other:?}"),
        }
        // The iterator fuses after the error.
        let text = with_body("{\"ts_us\": 3}") + &record_line(&rec(4));
        let mut reader = TraceReader::new(text.as_bytes()).unwrap();
        assert!(reader.next().unwrap().is_err());
        assert!(reader.next().is_none());
    }

    #[test]
    fn sla_classes_roundtrip() {
        for c in SlaClass::ALL {
            assert_eq!(SlaClass::from_letter(c.letter()), Some(c));
        }
        assert_eq!(SlaClass::from_letter("X"), None);
        assert_eq!(SlaClass::High.qos_scale(), 0.8);
        assert_eq!(SlaClass::Medium.qos_scale(), 1.0);
        assert_eq!(SlaClass::Low.qos_scale(), 1.2);
    }
}
