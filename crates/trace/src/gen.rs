//! Heavy-tailed synthetic trace generators.
//!
//! Real serving traffic is not Poisson: model popularity follows a
//! Zipf law (a few hot models take most requests), request rates swing
//! diurnally, and inter-arrival gaps are heavy-tailed (bursts far
//! larger than an exponential would ever produce). [`TraceGen`]
//! composes the three — Zipf popularity over the model roster, a
//! sinusoidal diurnal rate curve, and Pareto inter-arrival gaps — into
//! an infinite-stream iterator of [`TraceRecord`]s, seeded through
//! [`SimRng`] so the same [`TraceGenConfig`] always produces the same
//! trace, byte for byte.

use crate::schema::{SlaClass, TraceError, TraceRecord, TraceWriter};
use camdn_common::SimRng;
use std::io::Write;

/// Configuration of a synthetic trace: who asks for what, how often,
/// and how bursty it gets.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceGenConfig {
    /// RNG seed; the trace is a pure function of this config.
    pub seed: u64,
    /// Number of tenants (`t000`, `t001`, …), drawn uniformly.
    pub tenants: u32,
    /// Model roster by Table I abbreviation, most popular first
    /// (rank 1 of the Zipf law).
    pub models: Vec<String>,
    /// Zipf exponent `s`: model at rank `r` is requested with weight
    /// `1/r^s`. 0 = uniform; ~1 = classic web-like skew.
    pub zipf_s: f64,
    /// Mean request rate in requests per second (before diurnal
    /// modulation).
    pub rate_per_s: f64,
    /// Pareto shape `α` of the inter-arrival gaps (must be > 1 so the
    /// mean exists; smaller = heavier tail / burstier).
    pub pareto_alpha: f64,
    /// Diurnal swing: instantaneous rate is
    /// `rate_per_s × (1 + amplitude·sin(2πt/period))`. 0 = flat;
    /// must stay below 1 so the rate never reaches zero.
    pub diurnal_amplitude: f64,
    /// Period of the diurnal curve in seconds (a scaled-down "day").
    pub diurnal_period_s: f64,
    /// Relative weights of the H/M/L SLA classes.
    pub class_weights: [f64; 3],
    /// Trace length in seconds.
    pub horizon_s: f64,
}

impl Default for TraceGenConfig {
    /// A small but fully heavy-tailed default: 8 tenants over the
    /// Table I roster, Zipf s = 1, 2000 req/s over a 1 s horizon with
    /// a 1 s diurnal period at ±50% swing, Pareto α = 2.5.
    fn default() -> Self {
        TraceGenConfig {
            seed: 0xCA3D41,
            tenants: 8,
            models: ["RS", "MB", "EF", "VT", "BE", "GN", "WV", "PP"]
                .map(String::from)
                .to_vec(),
            zipf_s: 1.0,
            rate_per_s: 2000.0,
            pareto_alpha: 2.5,
            diurnal_amplitude: 0.5,
            diurnal_period_s: 1.0,
            class_weights: [0.25, 0.5, 0.25],
            horizon_s: 1.0,
        }
    }
}

impl TraceGenConfig {
    /// Checks every knob, returning [`TraceError::InvalidConfig`] with
    /// the first offending field.
    pub fn validate(&self) -> Result<(), TraceError> {
        let bad = |msg: String| Err(TraceError::InvalidConfig(msg));
        if self.tenants == 0 {
            return bad("tenants must be positive".into());
        }
        if self.models.is_empty() {
            return bad("the model roster is empty".into());
        }
        if self.models.iter().any(String::is_empty) {
            return bad("model names must be non-empty".into());
        }
        if !(self.zipf_s.is_finite() && self.zipf_s >= 0.0) {
            return bad(format!(
                "zipf_s must be finite and >= 0, got {}",
                self.zipf_s
            ));
        }
        if !(self.rate_per_s.is_finite() && self.rate_per_s > 0.0) {
            return bad(format!(
                "rate_per_s must be positive, got {}",
                self.rate_per_s
            ));
        }
        if !(self.pareto_alpha.is_finite() && self.pareto_alpha > 1.0) {
            return bad(format!(
                "pareto_alpha must be > 1 (finite mean), got {}",
                self.pareto_alpha
            ));
        }
        if !(self.diurnal_amplitude.is_finite() && (0.0..1.0).contains(&self.diurnal_amplitude)) {
            return bad(format!(
                "diurnal_amplitude must be in [0, 1), got {}",
                self.diurnal_amplitude
            ));
        }
        if !(self.diurnal_period_s.is_finite() && self.diurnal_period_s > 0.0) {
            return bad(format!(
                "diurnal_period_s must be positive, got {}",
                self.diurnal_period_s
            ));
        }
        if self
            .class_weights
            .iter()
            .any(|w| !w.is_finite() || *w < 0.0)
            || self.class_weights.iter().sum::<f64>() <= 0.0
        {
            return bad("class_weights must be non-negative with a positive sum".into());
        }
        if !(self.horizon_s.is_finite() && self.horizon_s > 0.0) {
            return bad(format!(
                "horizon_s must be positive, got {}",
                self.horizon_s
            ));
        }
        Ok(())
    }
}

/// Seeded iterator of trace records; see the module docs for the
/// stochastic model.
#[derive(Debug)]
pub struct TraceGen {
    cfg: TraceGenConfig,
    rng: SimRng,
    /// Continuous arrival clock in µs.
    t_us: f64,
    /// Cumulative Zipf distribution over model ranks.
    model_cdf: Vec<f64>,
    /// Cumulative distribution over SLA classes.
    class_cdf: [f64; 3],
}

impl TraceGen {
    /// Validates the config and builds the generator.
    pub fn new(cfg: TraceGenConfig) -> Result<Self, TraceError> {
        cfg.validate()?;
        let mut model_cdf: Vec<f64> = Vec::with_capacity(cfg.models.len());
        let mut acc = 0.0;
        for rank in 1..=cfg.models.len() {
            acc += 1.0 / (rank as f64).powf(cfg.zipf_s);
            model_cdf.push(acc);
        }
        for w in &mut model_cdf {
            *w /= acc;
        }
        let total: f64 = cfg.class_weights.iter().sum();
        let mut class_cdf = [0.0; 3];
        let mut acc = 0.0;
        for (slot, w) in class_cdf.iter_mut().zip(cfg.class_weights) {
            acc += w / total;
            *slot = acc;
        }
        let rng = SimRng::new(cfg.seed);
        Ok(TraceGen {
            cfg,
            rng,
            t_us: 0.0,
            model_cdf,
            class_cdf,
        })
    }

    /// The generator's configuration.
    pub fn config(&self) -> &TraceGenConfig {
        &self.cfg
    }

    /// One Pareto(α) inter-arrival gap in µs, scaled so the mean gap
    /// matches the diurnally modulated rate at time `t_us`.
    fn draw_gap_us(&mut self) -> f64 {
        let cfg = &self.cfg;
        let mean_gap_us = 1e6 / cfg.rate_per_s;
        // Pareto(x_m, α) has mean α·x_m/(α−1); pick x_m so the mean is
        // the target gap.
        let x_m = mean_gap_us * (cfg.pareto_alpha - 1.0) / cfg.pareto_alpha;
        // Inverse-CDF sample over u ∈ (0, 1]: x = x_m · u^(−1/α).
        let u = 1.0 - self.rng.next_f64();
        let gap = x_m * u.powf(-1.0 / cfg.pareto_alpha);
        // The diurnal curve scales the instantaneous rate, so it
        // divides the gap.
        let phase = 2.0 * std::f64::consts::PI * (self.t_us / 1e6) / cfg.diurnal_period_s;
        let modulation = 1.0 + cfg.diurnal_amplitude * phase.sin();
        gap / modulation
    }
}

impl Iterator for TraceGen {
    type Item = TraceRecord;

    fn next(&mut self) -> Option<TraceRecord> {
        self.t_us += self.draw_gap_us();
        if self.t_us >= self.cfg.horizon_s * 1e6 {
            return None;
        }
        let ts_us = self.t_us as u64;
        let tenant = format!("t{:03}", self.rng.next_below(self.cfg.tenants as u64));
        let u = self.rng.next_f64();
        let rank = self.model_cdf.partition_point(|&c| c <= u);
        let model = self.cfg.models[rank.min(self.cfg.models.len() - 1)].clone();
        let u = self.rng.next_f64();
        let class_idx = self.class_cdf.partition_point(|&c| c <= u);
        let class = SlaClass::ALL[class_idx.min(2)];
        Some(TraceRecord {
            ts_us,
            tenant,
            model,
            class,
        })
    }
}

/// Generates a full trace into any writer (header + every record),
/// returning the record count. The output is a pure function of the
/// config.
pub fn generate_into<W: Write>(cfg: TraceGenConfig, w: W) -> Result<u64, TraceError> {
    let generator = TraceGen::new(cfg)?;
    let mut writer = TraceWriter::new(w)?;
    for rec in generator {
        writer.write(&rec)?;
    }
    let n = writer.records();
    writer.finish()?;
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(cfg: &TraceGenConfig) -> Vec<TraceRecord> {
        TraceGen::new(cfg.clone()).unwrap().collect()
    }

    #[test]
    fn generation_is_deterministic_and_monotonic() {
        let cfg = TraceGenConfig::default();
        let a = quick(&cfg);
        let b = quick(&cfg);
        assert_eq!(a, b, "same seed, same trace");
        assert!(a.len() > 500, "≈2000 expected, got {}", a.len());
        assert!(a.windows(2).all(|w| w[0].ts_us <= w[1].ts_us));
        let c = quick(&TraceGenConfig {
            seed: 7,
            ..cfg.clone()
        });
        assert_ne!(a, c, "different seed, different trace");
    }

    #[test]
    fn invalid_configs_are_typed_errors() {
        let base = TraceGenConfig::default();
        let cases: Vec<(TraceGenConfig, &str)> = vec![
            (
                TraceGenConfig {
                    tenants: 0,
                    ..base.clone()
                },
                "tenants",
            ),
            (
                TraceGenConfig {
                    models: vec![],
                    ..base.clone()
                },
                "roster",
            ),
            (
                TraceGenConfig {
                    pareto_alpha: 1.0,
                    ..base.clone()
                },
                "pareto_alpha",
            ),
            (
                TraceGenConfig {
                    diurnal_amplitude: 1.0,
                    ..base.clone()
                },
                "amplitude",
            ),
            (
                TraceGenConfig {
                    rate_per_s: f64::NAN,
                    ..base.clone()
                },
                "rate_per_s",
            ),
            (
                TraceGenConfig {
                    horizon_s: 0.0,
                    ..base.clone()
                },
                "horizon",
            ),
        ];
        for (cfg, needle) in cases {
            match TraceGen::new(cfg) {
                Err(TraceError::InvalidConfig(msg)) => {
                    assert!(msg.contains(needle), "{needle}: {msg}")
                }
                other => panic!("{needle}: expected InvalidConfig, got {other:?}"),
            }
        }
    }

    /// Rank-frequency least-squares slope in log-log space should come
    /// out near −s.
    #[test]
    fn zipf_rank_frequency_slope_matches_exponent() {
        let cfg = TraceGenConfig {
            zipf_s: 1.0,
            rate_per_s: 50_000.0,
            diurnal_amplitude: 0.0,
            horizon_s: 1.0,
            ..TraceGenConfig::default()
        };
        let mut counts = vec![0u64; cfg.models.len()];
        let ranks: Vec<String> = cfg.models.clone();
        for rec in TraceGen::new(cfg).unwrap() {
            let rank = ranks.iter().position(|m| *m == rec.model).unwrap();
            counts[rank] += 1;
        }
        assert!(counts.iter().all(|&c| c > 0), "{counts:?}");
        // Least-squares fit of ln(count) over ln(rank).
        let pts: Vec<(f64, f64)> = counts
            .iter()
            .enumerate()
            .map(|(i, &c)| (((i + 1) as f64).ln(), (c as f64).ln()))
            .collect();
        let n = pts.len() as f64;
        let (sx, sy): (f64, f64) = pts.iter().fold((0.0, 0.0), |a, p| (a.0 + p.0, a.1 + p.1));
        let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
        let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
        let slope = (n * sxy - sx * sy) / (n * sxx - sx * sx);
        assert!(
            (slope + 1.0).abs() < 0.25,
            "rank-frequency slope {slope:.3}, expected ≈ −1"
        );
    }

    /// The Hill estimator over the largest inter-arrival gaps should
    /// recover the Pareto tail index.
    #[test]
    fn pareto_tail_index_matches_alpha() {
        let alpha = 2.5;
        let cfg = TraceGenConfig {
            pareto_alpha: alpha,
            rate_per_s: 50_000.0,
            diurnal_amplitude: 0.0, // flat rate: gaps are pure Pareto
            horizon_s: 1.0,
            ..TraceGenConfig::default()
        };
        // Work from the continuous clock, not the µs-rounded ts.
        let mut generator = TraceGen::new(cfg).unwrap();
        let mut gaps: Vec<f64> = Vec::new();
        let mut prev = 0.0;
        while generator.next().is_some() {
            gaps.push(generator.t_us - prev);
            prev = generator.t_us;
        }
        assert!(gaps.len() > 10_000);
        gaps.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let k = gaps.len() / 50; // top 2% order statistics
        let xk = gaps[k];
        let hill: f64 = (0..k).map(|i| (gaps[i] / xk).ln()).sum::<f64>() / k as f64;
        let alpha_hat = 1.0 / hill;
        assert!(
            (alpha_hat - alpha).abs() < 0.5,
            "Hill tail index {alpha_hat:.2}, expected ≈ {alpha}"
        );
    }

    /// Folding arrivals by the configured period must reproduce the
    /// sinusoidal rate profile: correlation with sin(2πφ) near 1, and
    /// a clear peak/trough ratio.
    #[test]
    fn diurnal_rate_follows_the_configured_period() {
        let cfg = TraceGenConfig {
            diurnal_amplitude: 0.8,
            diurnal_period_s: 0.25, // 4 full periods in the horizon
            rate_per_s: 40_000.0,
            horizon_s: 1.0,
            ..TraceGenConfig::default()
        };
        let period_us = cfg.diurnal_period_s * 1e6;
        const BINS: usize = 16;
        let mut phase_counts = [0u64; BINS];
        for rec in TraceGen::new(cfg.clone()).unwrap() {
            let phase = (rec.ts_us as f64 % period_us) / period_us;
            phase_counts[((phase * BINS as f64) as usize).min(BINS - 1)] += 1;
        }
        let mean = phase_counts.iter().sum::<u64>() as f64 / BINS as f64;
        // Pearson correlation of the phase profile with sin(2πφ).
        let mut num = 0.0;
        let mut dc = 0.0;
        let mut ds = 0.0;
        for (i, &c) in phase_counts.iter().enumerate() {
            let phi = (i as f64 + 0.5) / BINS as f64;
            let s = (2.0 * std::f64::consts::PI * phi).sin();
            num += (c as f64 - mean) * s;
            dc += (c as f64 - mean).powi(2);
            ds += s * s;
        }
        let corr = num / (dc.sqrt() * ds.sqrt());
        assert!(
            corr > 0.9,
            "phase profile should track sin, correlation {corr:.3} ({phase_counts:?})"
        );
        let peak = *phase_counts.iter().max().unwrap() as f64;
        let trough = *phase_counts.iter().min().unwrap() as f64;
        // (1+A)/(1−A) = 9 at A = 0.8; leave sampling slack.
        assert!(
            peak / trough > 3.0,
            "peak/trough {peak}/{trough} too flat for amplitude 0.8"
        );
    }

    #[test]
    fn generate_into_writes_a_readable_trace() {
        let cfg = TraceGenConfig {
            rate_per_s: 500.0,
            ..TraceGenConfig::default()
        };
        let mut buf = Vec::new();
        let n = generate_into(cfg, &mut buf).unwrap();
        let records: Vec<TraceRecord> = crate::TraceReader::new(buf.as_slice())
            .unwrap()
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(records.len() as u64, n);
        assert!(n > 100);
    }
}
