//! Trace-driven serving replay for the CaMDN simulator.
//!
//! The crates below this one answer "how fast is one run?"; this crate
//! answers "how does a policy hold up under hours of realistic,
//! bursty, multi-tenant traffic?" It has three layers:
//!
//! - [`schema`] — a versioned NDJSON trace format (`camdn-trace/1`)
//!   with a streaming [`TraceWriter`]/[`TraceReader`] pair that
//!   validates every record and rejects malformed input with typed
//!   [`TraceError`]s instead of panics.
//! - [`gen`] — seeded heavy-tailed trace generators: Zipf model
//!   popularity, Pareto inter-arrivals and a diurnal rate curve, all
//!   driven by the workspace's deterministic `SimRng`.
//! - [`replay`] — a bounded-memory [`ReplayDriver`] that streams a
//!   trace through the engine one analysis window at a time, emitting
//!   per-window SLO analytics ([`WindowMetrics`]: latency tails,
//!   per-tenant SLO burn rates, queue-depth timelines) into pluggable
//!   [`ReplaySink`]s, including a kill/resume JSONL log.
//!
//! Everything is deterministic: the same seed produces the same trace,
//! and replaying the same trace twice produces bit-identical windowed
//! metrics.
//!
//! # Example
//!
//! Generate a one-second heavy-tailed trace and replay it through the
//! full CaMDN policy in 100 ms windows:
//!
//! ```
//! use camdn_trace::{
//!     ReplayAggregate, ReplayConfig, ReplayDriver, TraceGen, TraceGenConfig,
//! };
//! use camdn_runtime::PolicyKind;
//!
//! let gen_cfg = TraceGenConfig {
//!     rate_per_s: 300.0,
//!     ..TraceGenConfig::default()
//! };
//! let records = TraceGen::new(gen_cfg).unwrap().map(Ok);
//!
//! let mut driver =
//!     ReplayDriver::new(ReplayConfig::new(PolicyKind::CamdnFull, 100_000)).unwrap();
//! let mut agg = ReplayAggregate::new();
//! let totals = driver.replay(records, &mut agg).unwrap();
//!
//! assert_eq!(totals.arrivals, agg.arrivals);
//! assert!(agg.sla_rate() >= 0.0 && agg.sla_rate() <= 1.0);
//! ```

#![warn(missing_docs)]
#![deny(deprecated)]

pub mod gen;
pub mod replay;
pub mod schema;

pub use gen::{generate_into, TraceGen, TraceGenConfig};
pub use replay::{
    read_window_log, windows, JsonlReplaySink, ReplayAggregate, ReplayConfig, ReplayDriver,
    ReplaySink, ReplayTotals, TenantBurn, TraceWindow, WindowMetrics, Windows, REPLAY_SCHEMA,
};
pub use schema::{
    header_line, record_line, SlaClass, TraceError, TraceReader, TraceRecord, TraceWriter,
    TRACE_SCHEMA,
};
