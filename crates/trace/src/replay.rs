//! Bounded-memory windowed replay of a trace through the engine.
//!
//! The replay driver chops an arbitrarily long trace into fixed
//! [`TraceWindow`]s (window index = `ts_us / window_us`) and runs each
//! window as one deterministic engine run: every distinct
//! `(tenant, model, SLA class)` group in the window becomes one task
//! with its arrival cycles passed verbatim via
//! [`Workload::traced`], and per-class deadlines come from cloning the
//! model with its QoS target scaled by the class factor. Only the
//! current window's records are ever buffered — a billion-arrival
//! trace streams through in the memory of its densest window — and
//! each finished window's [`WindowMetrics`] (latency tail, per-tenant
//! SLO burn, queue-depth timeline) is flushed to a [`ReplaySink`]
//! before the next window starts.
//!
//! Window runs are independent and seeded `seed ^ window_index`, so
//! replaying the same trace twice — or resuming after a kill via
//! [`JsonlReplaySink`] — produces bit-identical metrics.

use crate::schema::{SlaClass, TraceError, TraceRecord};
use camdn_common::config::SocConfig;
use camdn_common::types::Cycle;
use camdn_mapper::{MapperConfig, PlanCache};
use camdn_models::{zoo, Model};
use camdn_runtime::{
    DetailLevel, EngineError, FaultPlan, LatencyTail, PolicyKind, QueueSample, Simulation,
    LATENCY_HIST_BUCKETS,
};
use camdn_runtime::{RunOutput, Workload};
use camdn_sweep::jsonl::{esc, field, jnum, parse_flat_object, JsonVal};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Cycles per trace microsecond (the engine clock runs at 1 GHz).
const CYCLES_PER_US: u64 = 1000;

/// One fixed-length slice of a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceWindow {
    /// Window index (`ts_us / window_us`).
    pub index: u64,
    /// Absolute start of the window in µs.
    pub start_us: u64,
    /// The window's records, in arrival order.
    pub records: Vec<TraceRecord>,
}

/// Streaming adapter that groups a record stream into
/// [`TraceWindow`]s, buffering exactly one window at a time.
///
/// Empty windows (no arrivals) are skipped, so indices in the output
/// may have gaps. Errors from the underlying stream are passed through
/// and fuse the iterator; records running backwards across windows are
/// reported as [`TraceError::NonMonotonic`].
#[derive(Debug)]
pub struct Windows<I> {
    inner: I,
    window_us: u64,
    pending: Option<TraceRecord>,
    last_us: Option<u64>,
    failed: bool,
}

/// Groups `records` into windows of `window_us` microseconds.
///
/// # Panics
///
/// Panics when `window_us` is zero ([`ReplayConfig::validate`] rejects
/// that earlier on the driver path).
pub fn windows<I>(records: I, window_us: u64) -> Windows<I::IntoIter>
where
    I: IntoIterator<Item = Result<TraceRecord, TraceError>>,
{
    assert!(window_us > 0, "window_us must be positive");
    Windows {
        inner: records.into_iter(),
        window_us,
        pending: None,
        last_us: None,
        failed: false,
    }
}

impl<I: Iterator<Item = Result<TraceRecord, TraceError>>> Iterator for Windows<I> {
    type Item = Result<TraceWindow, TraceError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        let mut records: Vec<TraceRecord> = Vec::new();
        let mut index = None;
        loop {
            let rec = match self.pending.take() {
                Some(rec) => rec,
                None => match self.inner.next() {
                    Some(Ok(rec)) => rec,
                    Some(Err(e)) => {
                        self.failed = true;
                        return Some(Err(e));
                    }
                    None => {
                        return index.map(|index| {
                            Ok(TraceWindow {
                                index,
                                start_us: index * self.window_us,
                                records: std::mem::take(&mut records),
                            })
                        });
                    }
                },
            };
            if let Some(prev) = self.last_us {
                if rec.ts_us < prev {
                    self.failed = true;
                    return Some(Err(TraceError::NonMonotonic {
                        line: 0,
                        prev_us: prev,
                        ts_us: rec.ts_us,
                    }));
                }
            }
            self.last_us = Some(rec.ts_us);
            let rec_index = rec.ts_us / self.window_us;
            match index {
                None => {
                    index = Some(rec_index);
                    records.push(rec);
                }
                Some(cur) if rec_index == cur => records.push(rec),
                Some(cur) => {
                    self.pending = Some(rec);
                    return Some(Ok(TraceWindow {
                        index: cur,
                        start_us: cur * self.window_us,
                        records,
                    }));
                }
            }
        }
    }
}

// ------------------------------------------------------------------
// Replay configuration
// ------------------------------------------------------------------

/// How a trace is replayed: which policy serves it, the analysis
/// window, and the engine knobs shared by every window run.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayConfig {
    /// Policy serving the trace.
    pub policy: PolicyKind,
    /// Analysis window length in µs; each window is one engine run.
    pub window_us: u64,
    /// Base seed; window `i` runs with `seed ^ i`.
    pub seed: u64,
    /// Queue-depth samples per window (0 = no queue timeline).
    pub queue_samples_per_window: u32,
    /// SoC parameters for every window run.
    pub soc: SocConfig,
    /// Offline mapper settings for every window run.
    pub mapper: MapperConfig,
    /// Fault schedule in *absolute trace cycles* (µs × 1000): each
    /// window runs the slice overlapping its span, with faults still
    /// active at the window boundary re-materialized at its start
    /// (see [`FaultPlan::slice`]). `None` leaves every window
    /// bit-for-bit identical to a fault-free replay.
    pub fault_plan: Option<FaultPlan>,
    /// Simulated-cycle budget per window run: a window exceeding it
    /// reports the partial metrics it reached, flagged
    /// [`WindowMetrics::truncated`], instead of running unbounded in
    /// deep overload. `None` = no budget.
    pub max_cycles_per_window: Option<Cycle>,
    /// Deadline-aware admission control in every window run: arrivals
    /// whose queue-predicted completion already misses the QoS
    /// deadline are shed (counted in [`WindowMetrics::shed`]) instead
    /// of queued. Default off.
    pub admission_control: bool,
}

impl ReplayConfig {
    /// A replay of `policy` with `window_us`-µs windows on the Table II
    /// SoC: seed `0xCA3D41`, 8 queue samples per window.
    pub fn new(policy: PolicyKind, window_us: u64) -> Self {
        ReplayConfig {
            policy,
            window_us,
            seed: 0xCA3D41,
            queue_samples_per_window: 8,
            soc: SocConfig::paper_default(),
            mapper: MapperConfig::paper_default(),
            fault_plan: None,
            max_cycles_per_window: None,
            admission_control: false,
        }
    }

    /// Checks the window geometry.
    pub fn validate(&self) -> Result<(), TraceError> {
        if self.window_us == 0 {
            return Err(TraceError::InvalidConfig(
                "window_us must be positive".into(),
            ));
        }
        if self.max_cycles_per_window == Some(0) {
            return Err(TraceError::InvalidConfig(
                "max_cycles_per_window must be positive (use None for unbounded)".into(),
            ));
        }
        if self.queue_samples_per_window as u64 > self.window_us * CYCLES_PER_US {
            return Err(TraceError::InvalidConfig(format!(
                "{} queue samples do not fit a {} µs window",
                self.queue_samples_per_window, self.window_us
            )));
        }
        Ok(())
    }

    /// The queue sampling interval in cycles, when sampling is on.
    fn queue_interval_cycles(&self) -> Option<Cycle> {
        (self.queue_samples_per_window > 0)
            .then(|| (self.window_us * CYCLES_PER_US) / self.queue_samples_per_window as u64)
    }
}

// ------------------------------------------------------------------
// Windowed metrics
// ------------------------------------------------------------------

/// Per-tenant SLO accounting of one window, in exact integer counts so
/// metrics survive a write→read→resume cycle bit-for-bit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantBurn {
    /// Tenant identifier from the trace.
    pub tenant: String,
    /// Requests that met their deadline.
    pub met: u64,
    /// Requests measured.
    pub total: u64,
}

impl TenantBurn {
    /// Fraction of the tenant's requests that *violated* their SLO in
    /// this window (the burn rate of an SLO error budget). 0.0 when
    /// nothing was measured.
    pub fn burn_rate(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            1.0 - self.met as f64 / self.total as f64
        }
    }
}

/// Everything one replayed window reports.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowMetrics {
    /// Window index in the trace.
    pub index: u64,
    /// Absolute window start in µs.
    pub start_us: u64,
    /// Arrivals replayed in this window.
    pub arrivals: u64,
    /// Deadline-met count over all arrivals.
    pub sla_met: u64,
    /// Requests measured (equals `arrivals`).
    pub sla_total: u64,
    /// Wall-clock span of the window's engine run, ms.
    pub makespan_ms: f64,
    /// Latency tail over the window's inferences.
    pub tail: LatencyTail,
    /// Per-tenant SLO accounting, sorted by tenant id.
    pub tenants: Vec<TenantBurn>,
    /// Queue-depth timeline at the configured per-window interval
    /// (window-relative cycles; empty when sampling is off).
    pub queue_depth: Vec<QueueSample>,
    /// Arrivals shed by admission control in this window (always 0
    /// unless [`ReplayConfig::admission_control`] is on).
    pub shed: u64,
    /// True when the window hit
    /// [`ReplayConfig::max_cycles_per_window`] and reports partial
    /// metrics.
    pub truncated: bool,
}

impl WindowMetrics {
    /// The window's SLA satisfaction rate (1.0 when empty).
    pub fn sla_rate(&self) -> f64 {
        if self.sla_total == 0 {
            1.0
        } else {
            self.sla_met as f64 / self.sla_total as f64
        }
    }

    /// Peak outstanding depth in the window's queue timeline.
    pub fn max_queue_depth(&self) -> u32 {
        self.queue_depth
            .iter()
            .map(|s| s.outstanding)
            .max()
            .unwrap_or(0)
    }
}

// ------------------------------------------------------------------
// Sinks
// ------------------------------------------------------------------

/// Receives each window's metrics the moment its run finishes — the
/// replay-side mirror of the sweep crate's `CellSink`.
pub trait ReplaySink {
    /// True when this window is already recorded (resume support): the
    /// driver skips its engine run entirely.
    fn is_recorded(&self, index: u64) -> bool {
        let _ = index;
        false
    }

    /// Called once per replayed window, in window order.
    fn on_window(&mut self, w: &WindowMetrics);
}

/// In-memory accumulator over a whole replay: merged latency tail,
/// exact SLO counts, per-tenant burn and peak queue depth — O(tenants)
/// memory no matter how long the trace is.
#[derive(Debug, Default)]
pub struct ReplayAggregate {
    /// Windows folded in.
    pub windows: u64,
    /// Arrivals folded in.
    pub arrivals: u64,
    /// Deadline-met count over all windows.
    pub sla_met: u64,
    /// Requests measured over all windows.
    pub sla_total: u64,
    /// Latency tail pooled over all windows by histogram merge.
    pub tail: LatencyTail,
    /// Per-tenant (met, total) counts.
    pub tenants: BTreeMap<String, (u64, u64)>,
    /// Largest queue depth seen in any window.
    pub max_queue_depth: u32,
    /// Smallest per-window SLA rate (the worst window).
    pub worst_window_sla: f64,
    /// Arrivals shed by admission control over all windows.
    pub shed: u64,
    /// Windows that hit their per-window cycle budget.
    pub truncated_windows: u64,
}

impl ReplayAggregate {
    /// A fresh, empty aggregate.
    pub fn new() -> Self {
        ReplayAggregate {
            tail: LatencyTail::new(),
            worst_window_sla: 1.0,
            ..Default::default()
        }
    }

    /// Overall SLA satisfaction rate (1.0 when nothing was measured).
    pub fn sla_rate(&self) -> f64 {
        if self.sla_total == 0 {
            1.0
        } else {
            self.sla_met as f64 / self.sla_total as f64
        }
    }

    /// Per-tenant burn rates, sorted by tenant id.
    pub fn tenant_burns(&self) -> Vec<TenantBurn> {
        self.tenants
            .iter()
            .map(|(tenant, &(met, total))| TenantBurn {
                tenant: tenant.clone(),
                met,
                total,
            })
            .collect()
    }
}

impl ReplaySink for ReplayAggregate {
    fn on_window(&mut self, w: &WindowMetrics) {
        self.windows += 1;
        self.arrivals += w.arrivals;
        self.sla_met += w.sla_met;
        self.sla_total += w.sla_total;
        self.tail.merge(&w.tail);
        for t in &w.tenants {
            let slot = self.tenants.entry(t.tenant.clone()).or_insert((0, 0));
            slot.0 += t.met;
            slot.1 += t.total;
        }
        self.max_queue_depth = self.max_queue_depth.max(w.max_queue_depth());
        self.worst_window_sla = self.worst_window_sla.min(w.sla_rate());
        self.shed += w.shed;
        self.truncated_windows += u64::from(w.truncated);
    }
}

// ------------------------------------------------------------------
// The driver
// ------------------------------------------------------------------

/// Summary of one [`ReplayDriver::replay`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplayTotals {
    /// Windows whose engine runs executed in this call.
    pub windows_run: u64,
    /// Windows skipped because the sink already had them (resume).
    pub windows_skipped: u64,
    /// Arrivals consumed from the stream (including skipped windows).
    pub arrivals: u64,
}

/// Replays record streams through the engine, one window at a time.
///
/// The driver owns a shared [`PlanCache`], so every window (and every
/// policy replayed through the same driver) maps each distinct model
/// once.
pub struct ReplayDriver {
    cfg: ReplayConfig,
    plan_cache: Arc<PlanCache>,
    /// Deadline-scaled model clones, keyed by (model string, class).
    model_cache: BTreeMap<(String, SlaClass), Model>,
}

impl ReplayDriver {
    /// Validates the config and builds a driver.
    pub fn new(cfg: ReplayConfig) -> Result<Self, TraceError> {
        cfg.validate()?;
        Ok(ReplayDriver {
            cfg,
            plan_cache: Arc::new(PlanCache::new()),
            model_cache: BTreeMap::new(),
        })
    }

    /// The driver's configuration.
    pub fn config(&self) -> &ReplayConfig {
        &self.cfg
    }

    /// Switches the policy (e.g. to replay the same trace through all
    /// five systems), keeping the shared plan cache warm.
    pub fn set_policy(&mut self, policy: PolicyKind) {
        self.cfg.policy = policy;
    }

    /// Resolves a trace model string (Table I abbreviation or full
    /// name) into a deadline-scaled clone for `class`.
    fn class_model(&mut self, name: &str, class: SlaClass) -> Result<Model, TraceError> {
        let key = (name.to_string(), class);
        if let Some(m) = self.model_cache.get(&key) {
            return Ok(m.clone());
        }
        let base = zoo::by_abbr(name)
            .or_else(|| zoo::all().into_iter().find(|m| m.name == name))
            .ok_or_else(|| TraceError::UnknownModel {
                line: 0,
                model: name.to_string(),
            })?;
        let mut m = base;
        // The engine's QoS deadline is `qos_scale × model.qos_ms`; the
        // replay runs at qos_scale 1.0 and bakes the class factor into
        // a per-class model clone instead, so one window can mix
        // classes. The suffixed name keeps the clones distinct in the
        // engine's model dedup (the mapper's layer ladder still shares
        // the actual solves).
        m.qos_ms *= class.qos_scale();
        m.name = format!("{}+{}", m.name, class.letter());
        self.model_cache.insert(key, m.clone());
        Ok(m)
    }

    /// Runs one window through the engine and distills its metrics.
    pub fn run_window(&mut self, window: &TraceWindow) -> Result<WindowMetrics, TraceError> {
        // One task per distinct (tenant, model, class): BTreeMap gives
        // a deterministic task order.
        let mut groups: BTreeMap<(String, String, SlaClass), Vec<Cycle>> = BTreeMap::new();
        for rec in &window.records {
            let rel_cycles = (rec.ts_us - window.start_us) * CYCLES_PER_US;
            groups
                .entry((rec.tenant.clone(), rec.model.clone(), rec.class))
                .or_default()
                .push(rel_cycles);
        }
        let mut models = Vec::with_capacity(groups.len());
        let mut schedules = Vec::with_capacity(groups.len());
        let mut tenants_by_task: Vec<String> = Vec::with_capacity(groups.len());
        for ((tenant, model, class), sched) in groups {
            models.push(self.class_model(&model, class)?);
            schedules.push(sched);
            tenants_by_task.push(tenant);
        }
        let mut builder = Simulation::builder()
            .policy(self.cfg.policy)
            .workload(Workload::traced(models, schedules))
            .soc(self.cfg.soc)
            .mapper(self.cfg.mapper.clone())
            .seed(self.cfg.seed ^ window.index)
            .qos_scale(1.0)
            .detail(DetailLevel::Tasks)
            .plan_cache(Arc::clone(&self.plan_cache));
        if let Some(interval) = self.cfg.queue_interval_cycles() {
            builder = builder.sample_queue_depth(interval);
        }
        if let Some(plan) = &self.cfg.fault_plan {
            // The plan speaks absolute trace cycles; each window gets
            // the slice overlapping its span, rebased to window-local
            // cycle 0 with boundary-active faults materialized.
            let start = window.start_us * CYCLES_PER_US;
            let end = (window.start_us + self.cfg.window_us) * CYCLES_PER_US;
            builder = builder.fault_plan(plan.slice(start, end));
        }
        if let Some(max) = self.cfg.max_cycles_per_window {
            builder = builder.max_sim_cycles(max);
        }
        if self.cfg.admission_control {
            builder = builder.admission_control(true);
        }
        match builder.run() {
            Ok(run) => distill(window, &run, &tenants_by_task, false),
            // A window past its cycle budget reports what it reached,
            // flagged truncated, instead of aborting the replay.
            Err(EngineError::BudgetExceeded { partial, .. }) => {
                distill(window, &partial, &tenants_by_task, true)
            }
            Err(e) => Err(TraceError::Engine {
                window: window.index,
                detail: e.to_string(),
            }),
        }
    }

    /// Streams records through windowing, engine runs and the sink.
    ///
    /// Windows the sink reports as already recorded are skipped
    /// without running (kill/resume: see [`JsonlReplaySink::resume`]).
    pub fn replay<I>(
        &mut self,
        records: I,
        sink: &mut dyn ReplaySink,
    ) -> Result<ReplayTotals, TraceError>
    where
        I: IntoIterator<Item = Result<TraceRecord, TraceError>>,
    {
        let mut totals = ReplayTotals {
            windows_run: 0,
            windows_skipped: 0,
            arrivals: 0,
        };
        for window in windows(records, self.cfg.window_us) {
            let window = window?;
            totals.arrivals += window.records.len() as u64;
            if sink.is_recorded(window.index) {
                totals.windows_skipped += 1;
                continue;
            }
            let metrics = self.run_window(&window)?;
            sink.on_window(&metrics);
            totals.windows_run += 1;
        }
        Ok(totals)
    }
}

/// Distills one window's engine output into [`WindowMetrics`], using
/// exact integer SLA counts (`round(sla_rate × inferences)` inverts
/// the engine's mean exactly).
fn distill(
    window: &TraceWindow,
    run: &RunOutput,
    tenants_by_task: &[String],
    truncated: bool,
) -> Result<WindowMetrics, TraceError> {
    // Windows run at DetailLevel::Tasks; a missing detail block is a
    // typed error, not a panic — a budget-truncated partial must not
    // take the whole replay down.
    let detail = run.detail.as_ref().ok_or_else(|| TraceError::Engine {
        window: window.index,
        detail: "window run returned no per-task detail".into(),
    })?;
    let mut per_tenant: BTreeMap<&str, (u64, u64)> = BTreeMap::new();
    let mut sla_met = 0u64;
    let mut sla_total = 0u64;
    for (task, tenant) in detail.tasks.iter().zip(tenants_by_task) {
        let total = task.inferences as u64;
        let met = (task.sla_rate * task.inferences as f64).round() as u64;
        let slot = per_tenant.entry(tenant).or_insert((0, 0));
        slot.0 += met;
        slot.1 += total;
        sla_met += met;
        sla_total += total;
    }
    Ok(WindowMetrics {
        index: window.index,
        start_us: window.start_us,
        arrivals: window.records.len() as u64,
        sla_met,
        sla_total,
        makespan_ms: run.summary.makespan_ms,
        tail: run.summary.latency_tail,
        tenants: per_tenant
            .into_iter()
            .map(|(tenant, (met, total))| TenantBurn {
                tenant: tenant.to_string(),
                met,
                total,
            })
            .collect(),
        queue_depth: detail.queue_depth.clone(),
        shed: run.summary.shed_requests,
        truncated,
    })
}

// ------------------------------------------------------------------
// JSONL window log (kill/resume)
// ------------------------------------------------------------------

/// Schema identifier of the replay window log.
pub const REPLAY_SCHEMA: &str = "camdn-replay-windows/1";

/// Streamed window log with kill/resume semantics, mirroring the sweep
/// crate's `JsonlSink`: a header line fingerprinting the replay
/// config, then one flushed line per window. A killed replay leaves
/// every finished window on disk; [`JsonlReplaySink::resume`] drops a
/// torn trailing line via an atomic rewrite and reports the recorded
/// windows so the driver re-runs only what is missing.
#[derive(Debug)]
pub struct JsonlReplaySink {
    file: std::fs::File,
    path: PathBuf,
    recorded: BTreeSet<u64>,
    error: Option<String>,
}

/// The header line fingerprinting `cfg` (no trailing newline).
///
/// The fault-plan fingerprint and per-window cycle budget are appended
/// *only when set*, so a fault-free, unbudgeted replay writes headers
/// byte-identical to logs from before those knobs existed — old logs
/// keep resuming.
fn replay_header(cfg: &ReplayConfig) -> String {
    let mut extras = String::new();
    if let Some(plan) = &cfg.fault_plan {
        let _ = write!(extras, ", \"fault_fp\": {}", plan.fingerprint());
    }
    if let Some(max) = cfg.max_cycles_per_window {
        let _ = write!(extras, ", \"max_cycles\": {max}");
    }
    if cfg.admission_control {
        extras.push_str(", \"admission\": true");
    }
    format!(
        "{{\"schema\": \"{}\", \"policy\": \"{}\", \"window_us\": {}, \"seed\": {}, \
         \"qsamples\": {}{extras}}}",
        REPLAY_SCHEMA,
        esc(cfg.policy.name()),
        cfg.window_us,
        cfg.seed,
        cfg.queue_samples_per_window,
    )
}

/// One window as its log line (no trailing newline).
fn window_line(w: &WindowMetrics) -> String {
    let counts: Vec<String> = w.tail.counts().iter().map(u64::to_string).collect();
    let ids: Vec<String> = w
        .tenants
        .iter()
        .map(|t| format!("\"{}\"", esc(&t.tenant)))
        .collect();
    let met: Vec<String> = w.tenants.iter().map(|t| t.met.to_string()).collect();
    let total: Vec<String> = w.tenants.iter().map(|t| t.total.to_string()).collect();
    let queue: Vec<String> = w
        .queue_depth
        .iter()
        .map(|s| s.outstanding.to_string())
        .collect();
    format!(
        "{{\"window\": {}, \"start_us\": {}, \"arrivals\": {}, \"sla_met\": {}, \
         \"sla_total\": {}, \"makespan_ms\": {}, \"lat_counts\": [{}], \
         \"lat_min_cycles\": {}, \"lat_max_cycles\": {}, \"tenant_ids\": [{}], \
         \"tenant_met\": [{}], \"tenant_total\": [{}], \"queue\": [{}], \
         \"shed\": {}, \"truncated\": {}}}",
        w.index,
        w.start_us,
        w.arrivals,
        w.sla_met,
        w.sla_total,
        jnum(w.makespan_ms),
        counts.join(", "),
        w.tail.min_cycles().unwrap_or(0),
        w.tail.max_cycles().unwrap_or(0),
        ids.join(", "),
        met.join(", "),
        total.join(", "),
        queue.join(", "),
        w.shed,
        w.truncated,
    )
}

/// Parses one window line back. `None` for torn/malformed lines.
/// `shed` and `truncated` default to 0/false when absent, so window
/// lines written before the fault layer still resume.
fn parse_window_line(line: &str, queue_interval: Option<Cycle>) -> Option<WindowMetrics> {
    let fields = parse_flat_object(line)?;
    let int = |key: &str| field(&fields, key)?.as_u64();
    let arr = |key: &str| match field(&fields, key)? {
        JsonVal::Arr(items) => Some(items.clone()),
        _ => None,
    };
    let raw_counts = arr("lat_counts")?;
    if raw_counts.len() != LATENCY_HIST_BUCKETS {
        return None;
    }
    let mut counts = [0u64; LATENCY_HIST_BUCKETS];
    for (slot, item) in counts.iter_mut().zip(&raw_counts) {
        *slot = item.parse().ok()?;
    }
    let tail = LatencyTail::from_parts(counts, int("lat_min_cycles")?, int("lat_max_cycles")?);
    let ids = arr("tenant_ids")?;
    let met = arr("tenant_met")?;
    let total = arr("tenant_total")?;
    if ids.len() != met.len() || ids.len() != total.len() {
        return None;
    }
    let tenants = ids
        .into_iter()
        .zip(met)
        .zip(total)
        .map(|((tenant, m), t)| {
            Some(TenantBurn {
                tenant,
                met: m.parse().ok()?,
                total: t.parse().ok()?,
            })
        })
        .collect::<Option<Vec<_>>>()?;
    let interval = queue_interval.unwrap_or(0);
    let queue_depth = arr("queue")?
        .into_iter()
        .enumerate()
        .map(|(i, d)| {
            Some(QueueSample {
                cycle: (i as Cycle + 1) * interval,
                outstanding: d.parse().ok()?,
            })
        })
        .collect::<Option<Vec<_>>>()?;
    let makespan_ms = field(&fields, "makespan_ms")?.as_f64()?;
    Some(WindowMetrics {
        index: int("window")?,
        start_us: int("start_us")?,
        arrivals: int("arrivals")?,
        sla_met: int("sla_met")?,
        sla_total: int("sla_total")?,
        makespan_ms,
        tail,
        tenants,
        queue_depth,
        shed: int("shed").unwrap_or(0),
        truncated: field(&fields, "truncated")
            .and_then(JsonVal::as_bool)
            .unwrap_or(false),
    })
}

impl JsonlReplaySink {
    /// Creates (truncates) the log at `path` and writes the config
    /// header.
    pub fn create(path: impl AsRef<Path>, cfg: &ReplayConfig) -> Result<Self, TraceError> {
        let path = path.as_ref().to_path_buf();
        let mut file = std::fs::File::create(&path).map_err(|e| TraceError::Io {
            detail: format!("creating {}: {e}", path.display()),
        })?;
        writeln!(file, "{}", replay_header(cfg)).map_err(|e| TraceError::Io {
            detail: format!("writing {}: {e}", path.display()),
        })?;
        Ok(JsonlReplaySink {
            file,
            path,
            recorded: BTreeSet::new(),
            error: None,
        })
    }

    /// Reopens an interrupted log for `cfg`: validates the header
    /// fingerprint, drops torn lines via an atomic rewrite (scratch
    /// file + rename, so a kill mid-resume loses nothing), and
    /// remembers the recorded windows so
    /// [`ReplaySink::is_recorded`] can skip them.
    pub fn resume(path: impl AsRef<Path>, cfg: &ReplayConfig) -> Result<Self, TraceError> {
        let path = path.as_ref().to_path_buf();
        let recorded = read_window_log(&path, cfg)?;
        let mut tmp = path.clone().into_os_string();
        tmp.push(".rewrite");
        let tmp = PathBuf::from(tmp);
        {
            let mut sink = JsonlReplaySink::create(&tmp, cfg)?;
            for w in &recorded {
                sink.on_window(w);
            }
            if let Some(detail) = sink.error {
                return Err(TraceError::Io { detail });
            }
            sink.file.sync_all().map_err(|e| TraceError::Io {
                detail: format!("syncing {}: {e}", tmp.display()),
            })?;
        }
        std::fs::rename(&tmp, &path).map_err(|e| TraceError::Io {
            detail: format!("renaming {} over {}: {e}", tmp.display(), path.display()),
        })?;
        let file = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .map_err(|e| TraceError::Io {
                detail: format!("reopening {}: {e}", path.display()),
            })?;
        Ok(JsonlReplaySink {
            file,
            path,
            recorded: recorded.iter().map(|w| w.index).collect(),
            error: None,
        })
    }

    /// Window indices already present in the log.
    pub fn recorded(&self) -> &BTreeSet<u64> {
        &self.recorded
    }

    /// Flushes and closes the log, surfacing any write error deferred
    /// during the replay.
    pub fn finish(mut self) -> Result<(), TraceError> {
        if self.error.is_none() {
            if let Err(e) = self.file.flush() {
                self.error = Some(format!("flushing {}: {e}", self.path.display()));
            }
        }
        match self.error {
            None => Ok(()),
            Some(detail) => Err(TraceError::Io { detail }),
        }
    }
}

impl ReplaySink for JsonlReplaySink {
    fn is_recorded(&self, index: u64) -> bool {
        self.recorded.contains(&index)
    }

    fn on_window(&mut self, w: &WindowMetrics) {
        if self.error.is_some() {
            return;
        }
        let mut line = window_line(w);
        line.push('\n');
        // Unbuffered: a kill after this write loses at most the line
        // in flight, which resume drops as torn.
        if let Err(e) = self.file.write_all(line.as_bytes()) {
            self.error = Some(format!("writing {}: {e}", self.path.display()));
        }
        self.recorded.insert(w.index);
    }
}

/// Reads every intact window of a replay log written for `cfg`,
/// validating the header fingerprint (a log from a different replay
/// must not be silently merged), in window order. Torn trailing lines
/// are skipped — resume re-runs them.
pub fn read_window_log(
    path: impl AsRef<Path>,
    cfg: &ReplayConfig,
) -> Result<Vec<WindowMetrics>, TraceError> {
    let path = path.as_ref();
    let text = std::fs::read_to_string(path).map_err(|e| TraceError::Io {
        detail: format!("reading {}: {e}", path.display()),
    })?;
    let mut lines = text.lines();
    let header = lines.next().unwrap_or("").trim();
    if header != replay_header(cfg) {
        return Err(TraceError::InvalidConfig(format!(
            "{} belongs to a different replay (config fingerprint mismatch); \
             delete it or point the replay elsewhere",
            path.display()
        )));
    }
    let mut out: Vec<WindowMetrics> = Vec::new();
    for line in lines {
        if let Some(w) = parse_window_line(line, cfg.queue_interval_cycles()) {
            out.push(w);
        }
    }
    out.sort_by_key(|w| w.index);
    out.dedup_by_key(|w| w.index);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::TraceRecord;

    fn rec(ts_us: u64, tenant: &str, model: &str, class: SlaClass) -> TraceRecord {
        TraceRecord {
            ts_us,
            tenant: tenant.into(),
            model: model.into(),
            class,
        }
    }

    #[test]
    fn windows_group_by_index_and_buffer_one_window() {
        let records = vec![
            rec(0, "t0", "MB", SlaClass::Medium),
            rec(999, "t1", "MB", SlaClass::Medium),
            rec(1_000, "t0", "RS", SlaClass::High),
            // window 2 empty: index gap expected
            rec(3_500, "t1", "RS", SlaClass::Low),
        ];
        let wins: Vec<TraceWindow> = windows(records.into_iter().map(Ok), 1_000)
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(
            wins.iter().map(|w| w.index).collect::<Vec<_>>(),
            vec![0, 1, 3]
        );
        assert_eq!(wins[0].records.len(), 2);
        assert_eq!(wins[1].start_us, 1_000);
        assert_eq!(wins[2].records[0].ts_us, 3_500);
    }

    #[test]
    fn windows_reject_backwards_streams_and_pass_errors_through() {
        let records = vec![
            Ok(rec(5_000, "t0", "MB", SlaClass::Medium)),
            Ok(rec(100, "t0", "MB", SlaClass::Medium)),
        ];
        let mut it = windows(records, 1_000);
        assert!(matches!(
            it.next(),
            Some(Err(TraceError::NonMonotonic { .. }))
        ));
        assert!(it.next().is_none(), "fused after the error");

        let records = vec![Err(TraceError::Malformed {
            line: 2,
            detail: "x".into(),
        })];
        let mut it = windows(records, 1_000);
        assert!(matches!(it.next(), Some(Err(TraceError::Malformed { .. }))));
        assert!(it.next().is_none());
    }

    #[test]
    fn unknown_models_are_typed_errors() {
        let mut driver =
            ReplayDriver::new(ReplayConfig::new(PolicyKind::CamdnFull, 1_000)).unwrap();
        let window = TraceWindow {
            index: 0,
            start_us: 0,
            records: vec![rec(0, "t0", "NOPE", SlaClass::Medium)],
        };
        assert!(matches!(
            driver.run_window(&window),
            Err(TraceError::UnknownModel { .. })
        ));
    }

    #[test]
    fn zero_window_is_rejected() {
        assert!(matches!(
            ReplayDriver::new(ReplayConfig::new(PolicyKind::Aurora, 0)),
            Err(TraceError::InvalidConfig(_))
        ));
    }

    #[test]
    fn window_lines_roundtrip_bit_for_bit() {
        let cfg = ReplayConfig::new(PolicyKind::CamdnFull, 2_000);
        let mut tail = LatencyTail::new();
        tail.record(1 << 20);
        tail.record(1 << 22);
        let w = WindowMetrics {
            index: 7,
            start_us: 14_000,
            arrivals: 2,
            sla_met: 1,
            sla_total: 2,
            makespan_ms: 1.9375,
            tail,
            tenants: vec![
                TenantBurn {
                    tenant: "t000".into(),
                    met: 1,
                    total: 1,
                },
                TenantBurn {
                    tenant: "t0\"01".into(),
                    met: 0,
                    total: 1,
                },
            ],
            queue_depth: vec![
                QueueSample {
                    cycle: cfg.queue_interval_cycles().unwrap(),
                    outstanding: 2,
                },
                QueueSample {
                    cycle: 2 * cfg.queue_interval_cycles().unwrap(),
                    outstanding: 0,
                },
            ],
            shed: 3,
            truncated: true,
        };
        let line = window_line(&w);
        let back = parse_window_line(&line, cfg.queue_interval_cycles()).unwrap();
        assert_eq!(back, w);
        // Torn prefixes of the line never parse.
        for cut in [1, line.len() / 2, line.len() - 1] {
            assert!(parse_window_line(&line[..cut], cfg.queue_interval_cycles()).is_none());
        }
    }

    #[test]
    fn pre_fault_window_lines_parse_with_zeroed_chaos_fields() {
        // A line in the exact format the writer produced before the
        // fault layer (no shed/truncated keys) must still resume.
        let line = "{\"window\": 3, \"start_us\": 6000, \"arrivals\": 1, \"sla_met\": 1, \
                    \"sla_total\": 1, \"makespan_ms\": 1.5, \"lat_counts\": ["
            .to_string()
            + &vec!["0"; LATENCY_HIST_BUCKETS].join(", ")
            + "], \"lat_min_cycles\": 0, \"lat_max_cycles\": 0, \"tenant_ids\": [\"t0\"], \
               \"tenant_met\": [1], \"tenant_total\": [1], \"queue\": []}";
        let w = parse_window_line(&line, None).expect("pre-fault line parses");
        assert_eq!(w.index, 3);
        assert_eq!(w.shed, 0);
        assert!(!w.truncated);
    }

    #[test]
    fn fault_free_headers_predate_the_chaos_knobs_byte_for_byte() {
        // With both knobs unset the header must not mention them, so
        // logs written before the fault layer still pass the
        // fingerprint check on resume.
        let cfg = ReplayConfig::new(PolicyKind::CamdnFull, 2_000);
        let h = replay_header(&cfg);
        assert!(!h.contains("fault_fp") && !h.contains("max_cycles"), "{h}");
        // Setting either knob changes the fingerprint, so a faulted
        // log can never silently resume a fault-free replay.
        let mut faulted = cfg.clone();
        faulted.fault_plan = Some(FaultPlan::default());
        assert_ne!(replay_header(&faulted), h);
        let mut budgeted = cfg;
        budgeted.max_cycles_per_window = Some(1_000_000);
        assert_ne!(replay_header(&budgeted), h);
    }

    #[test]
    fn faulted_windows_slice_the_plan_and_still_distill() {
        use camdn_runtime::{FaultEvent, FaultKind};
        // An NPU outage spanning window 0's middle: the replay must
        // run, report metrics, and differ from the fault-free replay.
        let mut cfg = ReplayConfig::new(PolicyKind::SharedBaseline, 4_000);
        let records = || {
            (0..8)
                .map(|i| Ok(rec(i * 450, "t0", "MB", SlaClass::Medium)))
                .collect::<Vec<_>>()
        };
        let mut clean_agg = ReplayAggregate::new();
        ReplayDriver::new(cfg.clone())
            .unwrap()
            .replay(records(), &mut clean_agg)
            .unwrap();
        cfg.fault_plan = Some(
            FaultPlan::new(vec![
                FaultEvent {
                    at: 100_000,
                    kind: FaultKind::ClockThrottle { factor: 0.5 },
                },
                FaultEvent {
                    at: 3_000_000,
                    kind: FaultKind::ClockThrottle { factor: 1.0 },
                },
            ])
            .unwrap(),
        );
        let mut faulted_agg = ReplayAggregate::new();
        ReplayDriver::new(cfg)
            .unwrap()
            .replay(records(), &mut faulted_agg)
            .unwrap();
        assert_eq!(faulted_agg.arrivals, clean_agg.arrivals);
        assert!(
            faulted_agg.tail.quantile_cycles(0.5) > clean_agg.tail.quantile_cycles(0.5),
            "a half-speed clock must stretch window latencies"
        );
    }
}
