//! Statistics primitives: counters, histograms and summary helpers.
//!
//! These are used by the memory system to report hit rates and traffic,
//! and by the experiment harness to aggregate per-task latencies into the
//! figures of the paper.

use serde::{Deserialize, Serialize};

/// A saturating event counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counter(u64);

impl Counter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Counter(0)
    }

    /// Adds one.
    #[inline]
    pub fn incr(&mut self) {
        self.0 = self.0.saturating_add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 = self.0.saturating_add(n);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0
    }

    /// Resets to zero.
    pub fn reset(&mut self) {
        self.0 = 0;
    }
}

impl std::fmt::Display for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A fixed-bucket histogram over `u64` samples.
///
/// Bucket `i` covers `[edges[i-1], edges[i])`, with an implicit final
/// bucket for values `>= edges.last()`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    edges: Vec<u64>,
    counts: Vec<u64>,
    total: u64,
    sum: u128,
}

impl Histogram {
    /// Creates a histogram with the given ascending bucket edges.
    ///
    /// # Panics
    ///
    /// Panics if `edges` is empty or not strictly ascending.
    pub fn new(edges: &[u64]) -> Self {
        assert!(!edges.is_empty(), "histogram needs at least one edge");
        assert!(
            edges.windows(2).all(|w| w[0] < w[1]),
            "histogram edges must be strictly ascending"
        );
        Histogram {
            edges: edges.to_vec(),
            counts: vec![0; edges.len() + 1],
            total: 0,
            sum: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `n` identical samples (weighted insert).
    pub fn record_n(&mut self, value: u64, n: u64) {
        let idx = self.edges.partition_point(|&e| e <= value);
        self.counts[idx] += n;
        self.total += n;
        self.sum += u128::from(value) * u128::from(n);
    }

    /// Number of samples recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Mean of all samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Fraction of samples in each bucket; sums to 1 for non-empty data.
    pub fn fractions(&self) -> Vec<f64> {
        if self.total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / self.total as f64)
            .collect()
    }

    /// Raw bucket counts (`edges.len() + 1` entries).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Bucket edges.
    pub fn edges(&self) -> &[u64] {
        &self.edges
    }
}

/// Streaming mean/min/max tracker for floating-point samples.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct MeanTracker {
    n: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl MeanTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        MeanTracker {
            n: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records a sample.
    pub fn record(&mut self, v: f64) {
        self.n += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sum / self.n as f64
        }
    }

    /// Smallest sample (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest sample (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Sum of samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }
}

/// Streaming mean/variance accumulator (Welford's algorithm), used by
/// the sweep layer's multi-seed statistics.
///
/// Numerically stable one-pass updates; `stddev` is the *sample*
/// standard deviation (`n - 1` denominator) and [`Welford::ci95`] the
/// half-width of the two-sided 95% Student-t confidence interval of
/// the mean.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Welford::default()
    }

    /// Records one sample.
    pub fn record(&mut self, v: f64) {
        self.n += 1;
        let delta = v - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (v - self.mean);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Sample standard deviation (0.0 with fewer than two samples).
    pub fn stddev(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / (self.n - 1) as f64).sqrt()
        }
    }

    /// Half-width of the 95% confidence interval of the mean,
    /// `t(0.975, n-1) * stddev / sqrt(n)` (0.0 with fewer than two
    /// samples).
    pub fn ci95(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            t95(self.n - 1) * self.stddev() / (self.n as f64).sqrt()
        }
    }
}

/// Two-sided 95% Student-t critical value for `df` degrees of freedom
/// (the classic table for `df <= 30`, 1.96 asymptote beyond).
pub fn t95(df: u64) -> f64 {
    const TABLE: [f64; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
        2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
        2.052, 2.048, 2.045, 2.042,
    ];
    match df {
        0 => f64::INFINITY,
        1..=30 => TABLE[(df - 1) as usize],
        _ => 1.96,
    }
}

/// Geometric mean of a slice of positive values (1.0 for empty input).
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 1.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// Min/max fairness index used by the QoS evaluation (Section IV-A4):
/// the ratio of the slowest to the fastest normalized progress.
pub fn fairness(progresses: &[f64]) -> f64 {
    if progresses.is_empty() {
        return 1.0;
    }
    let min = progresses.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = progresses.iter().cloned().fold(0.0_f64, f64::max);
    if max <= 0.0 {
        0.0
    } else {
        min / max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let mut c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn histogram_bucketing() {
        // Buckets: [0,10), [10,20), [20,inf)
        let mut h = Histogram::new(&[10, 20]);
        h.record(0);
        h.record(9);
        h.record(10);
        h.record(25);
        assert_eq!(h.counts(), &[2, 1, 1]);
        assert_eq!(h.total(), 4);
        let f = h.fractions();
        assert!((f[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn histogram_weighted() {
        let mut h = Histogram::new(&[100]);
        h.record_n(5, 10);
        h.record_n(200, 30);
        assert_eq!(h.counts(), &[10, 30]);
        assert!((h.mean() - (5.0 * 10.0 + 200.0 * 30.0) / 40.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn histogram_rejects_unsorted_edges() {
        let _ = Histogram::new(&[10, 10]);
    }

    #[test]
    fn mean_tracker() {
        let mut m = MeanTracker::new();
        m.record(1.0);
        m.record(3.0);
        assert_eq!(m.count(), 2);
        assert!((m.mean() - 2.0).abs() < 1e-12);
        assert_eq!(m.min(), 1.0);
        assert_eq!(m.max(), 3.0);
    }

    #[test]
    fn welford_matches_two_pass_statistics() {
        // Fixture: {10, 12, 14} -> mean 12, sample stddev 2, and a 95%
        // CI half-width of t(0.975, 2) * 2 / sqrt(3) = 4.303 * 1.1547.
        let mut w = Welford::new();
        for v in [10.0, 12.0, 14.0] {
            w.record(v);
        }
        assert_eq!(w.count(), 3);
        assert!((w.mean() - 12.0).abs() < 1e-12);
        assert!((w.stddev() - 2.0).abs() < 1e-12);
        assert!((w.ci95() - 4.303 * 2.0 / 3.0_f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn welford_degenerate_counts_are_nan_free() {
        let mut w = Welford::new();
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.stddev(), 0.0);
        assert_eq!(w.ci95(), 0.0);
        w.record(7.5);
        assert_eq!(w.mean(), 7.5);
        assert_eq!(w.stddev(), 0.0, "one sample has no spread");
        assert_eq!(w.ci95(), 0.0);
    }

    #[test]
    fn t_table_endpoints() {
        assert_eq!(t95(0), f64::INFINITY);
        assert!((t95(1) - 12.706).abs() < 1e-9);
        assert!((t95(2) - 4.303).abs() < 1e-9);
        assert!((t95(30) - 2.042).abs() < 1e-9);
        assert_eq!(t95(31), 1.96);
        assert_eq!(t95(10_000), 1.96);
    }

    #[test]
    fn geomean_matches_hand_computation() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 1.0);
    }

    #[test]
    fn fairness_min_over_max() {
        assert!((fairness(&[0.5, 1.0]) - 0.5).abs() < 1e-12);
        assert!((fairness(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        assert_eq!(fairness(&[]), 1.0);
    }
}
