//! Statistics primitives: counters, histograms and summary helpers.
//!
//! These are used by the memory system to report hit rates and traffic,
//! and by the experiment harness to aggregate per-task latencies into the
//! figures of the paper.

use serde::{Deserialize, Serialize};

/// A saturating event counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counter(u64);

impl Counter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Counter(0)
    }

    /// Adds one.
    #[inline]
    pub fn incr(&mut self) {
        self.0 = self.0.saturating_add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 = self.0.saturating_add(n);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0
    }

    /// Resets to zero.
    pub fn reset(&mut self) {
        self.0 = 0;
    }
}

impl std::fmt::Display for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A fixed-bucket histogram over `u64` samples.
///
/// Bucket `i` covers `[edges[i-1], edges[i])`, with an implicit final
/// bucket for values `>= edges.last()`.
///
/// Histograms over the *same* edges are mergeable ([`Histogram::merge`])
/// and quantile-queryable ([`Histogram::quantile`]): merging adds the
/// bucket counts (and pools min/max/sum), so percentiles of a merged
/// histogram come from the pooled samples — the right way to fold
/// per-seed tails, as opposed to averaging per-seed percentiles.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    edges: Vec<u64>,
    counts: Vec<u64>,
    total: u64,
    sum: u128,
    /// Smallest recorded sample (`u64::MAX` when empty).
    min: u64,
    /// Largest recorded sample (`0` when empty).
    max: u64,
}

impl Histogram {
    /// Creates a histogram with the given ascending bucket edges.
    ///
    /// # Panics
    ///
    /// Panics if `edges` is empty or not strictly ascending.
    pub fn new(edges: &[u64]) -> Self {
        assert!(!edges.is_empty(), "histogram needs at least one edge");
        assert!(
            edges.windows(2).all(|w| w[0] < w[1]),
            "histogram edges must be strictly ascending"
        );
        Histogram {
            edges: edges.to_vec(),
            counts: vec![0; edges.len() + 1],
            total: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `n` identical samples (weighted insert).
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        let idx = self.edges.partition_point(|&e| e <= value);
        self.counts[idx] += n;
        self.total += n;
        self.sum += u128::from(value) * u128::from(n);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Folds another histogram into this one: bucket counts add, and
    /// min/max/sum pool, so quantiles of the merged histogram are
    /// quantiles of the pooled sample set.
    ///
    /// # Panics
    ///
    /// Panics when the two histograms do not share identical bucket
    /// edges — counts over different buckets cannot be added
    /// meaningfully.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            self.edges, other.edges,
            "merging histograms requires identical bucket edges"
        );
        for (c, o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// An upper-bound estimate of the `q`-quantile of the recorded
    /// samples (`None` when empty); see [`bucket_quantile`] for the
    /// estimator and its documented error bound.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        bucket_quantile(&self.edges, &self.counts, self.max, q)
    }

    /// Smallest recorded sample (`None` when empty).
    pub fn min(&self) -> Option<u64> {
        (self.total > 0).then_some(self.min)
    }

    /// Largest recorded sample (`None` when empty).
    pub fn max(&self) -> Option<u64> {
        (self.total > 0).then_some(self.max)
    }

    /// Number of samples recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Mean of all samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Fraction of samples in each bucket; sums to 1 for non-empty data.
    pub fn fractions(&self) -> Vec<f64> {
        if self.total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / self.total as f64)
            .collect()
    }

    /// Raw bucket counts (`edges.len() + 1` entries).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Bucket edges.
    pub fn edges(&self) -> &[u64] {
        &self.edges
    }
}

/// Upper-bound quantile estimate over bucketed counts — the estimator
/// behind [`Histogram::quantile`] and the runtime's compact latency
/// tail.
///
/// `edges` are the ascending bucket boundaries ([`Histogram`]
/// semantics: bucket `i` covers `[edges[i-1], edges[i])`, the final
/// bucket is `[edges.last(), ∞)`), `counts` has `edges.len() + 1`
/// entries, and `max` is the largest recorded sample (used to clamp
/// the open-ended final bucket). Returns `None` when `counts` is all
/// zero.
///
/// The estimate is the inclusive upper bound of the bucket holding the
/// `⌈q·n⌉`-th smallest sample (clamped to `max`). Two guarantees
/// follow, and the test suite checks both against exact sorted-sample
/// quantiles:
///
/// * **never an under-estimate** — `exact ≤ estimate` (conservative
///   for SLA/tail reporting);
/// * **bin-resolution error** — the estimate lies in the *same bucket*
///   as the exact order statistic, so `estimate − exact` is less than
///   that bucket's width. For geometric (e.g. power-of-two) edges this
///   is a bounded *relative* error: `estimate < 2 × exact` whenever
///   the exact value is at or above the bucket's lower edge ≥ 1.
pub fn bucket_quantile(edges: &[u64], counts: &[u64], max: u64, q: f64) -> Option<u64> {
    debug_assert_eq!(counts.len(), edges.len() + 1);
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return None;
    }
    let q = q.clamp(0.0, 1.0);
    let k = ((q * total as f64).ceil() as u64).clamp(1, total);
    let mut cum = 0u64;
    for (i, &c) in counts.iter().enumerate() {
        cum += c;
        if cum >= k {
            let upper_incl = edges.get(i).map_or(u64::MAX, |&e| e.saturating_sub(1));
            return Some(upper_incl.min(max));
        }
    }
    // Unreachable: cum == total >= k after the loop.
    Some(max)
}

/// Streaming mean/min/max tracker for floating-point samples.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct MeanTracker {
    n: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl MeanTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        MeanTracker {
            n: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records a sample.
    pub fn record(&mut self, v: f64) {
        self.n += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sum / self.n as f64
        }
    }

    /// Smallest sample (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest sample (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Sum of samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }
}

/// Streaming mean/variance accumulator (Welford's algorithm), used by
/// the sweep layer's multi-seed statistics.
///
/// Numerically stable one-pass updates; `stddev` is the *sample*
/// standard deviation (`n - 1` denominator) and [`Welford::ci95`] the
/// half-width of the two-sided 95% Student-t confidence interval of
/// the mean.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Welford::default()
    }

    /// Records one sample.
    pub fn record(&mut self, v: f64) {
        self.n += 1;
        let delta = v - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (v - self.mean);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Sample standard deviation (0.0 with fewer than two samples).
    pub fn stddev(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / (self.n - 1) as f64).sqrt()
        }
    }

    /// Half-width of the 95% confidence interval of the mean,
    /// `t(0.975, n-1) * stddev / sqrt(n)` (0.0 with fewer than two
    /// samples).
    pub fn ci95(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            t95(self.n - 1) * self.stddev() / (self.n as f64).sqrt()
        }
    }
}

/// Two-sided 95% Student-t critical value for `df` degrees of freedom
/// (the classic table for `df <= 30`, 1.96 asymptote beyond).
pub fn t95(df: u64) -> f64 {
    const TABLE: [f64; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
        2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
        2.052, 2.048, 2.045, 2.042,
    ];
    match df {
        0 => f64::INFINITY,
        1..=30 => TABLE[(df - 1) as usize],
        _ => 1.96,
    }
}

/// Geometric mean of a slice of positive values (1.0 for empty input).
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 1.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// Min/max fairness index used by the QoS evaluation (Section IV-A4):
/// the ratio of the slowest to the fastest normalized progress.
pub fn fairness(progresses: &[f64]) -> f64 {
    if progresses.is_empty() {
        return 1.0;
    }
    let min = progresses.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = progresses.iter().cloned().fold(0.0_f64, f64::max);
    if max <= 0.0 {
        0.0
    } else {
        min / max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let mut c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn histogram_bucketing() {
        // Buckets: [0,10), [10,20), [20,inf)
        let mut h = Histogram::new(&[10, 20]);
        h.record(0);
        h.record(9);
        h.record(10);
        h.record(25);
        assert_eq!(h.counts(), &[2, 1, 1]);
        assert_eq!(h.total(), 4);
        let f = h.fractions();
        assert!((f[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn histogram_weighted() {
        let mut h = Histogram::new(&[100]);
        h.record_n(5, 10);
        h.record_n(200, 30);
        assert_eq!(h.counts(), &[10, 30]);
        assert!((h.mean() - (5.0 * 10.0 + 200.0 * 30.0) / 40.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn histogram_rejects_unsorted_edges() {
        let _ = Histogram::new(&[10, 10]);
    }

    #[test]
    fn histogram_tracks_min_and_max() {
        let mut h = Histogram::new(&[10, 20]);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        h.record(15);
        h.record_n(3, 2);
        h.record(40);
        assert_eq!(h.min(), Some(3));
        assert_eq!(h.max(), Some(40));
        // Zero-weight inserts change nothing.
        h.record_n(1000, 0);
        assert_eq!(h.max(), Some(40));
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn histogram_merge_pools_samples() {
        let mut a = Histogram::new(&[10, 20]);
        a.record(5);
        a.record(12);
        let mut b = Histogram::new(&[10, 20]);
        b.record(25);
        b.record_n(1, 3);
        a.merge(&b);
        assert_eq!(a.counts(), &[4, 1, 1]);
        assert_eq!(a.total(), 6);
        assert_eq!(a.min(), Some(1));
        assert_eq!(a.max(), Some(25));
        // The pooled mean covers all six samples (three weight-1 ones).
        let exact = (5.0 + 12.0 + 25.0 + 3.0 * 1.0) / 6.0;
        assert!((a.mean() - exact).abs() < 1e-12);
        // Merging an empty histogram is the identity.
        let before = a.clone();
        a.merge(&Histogram::new(&[10, 20]));
        assert_eq!(a, before);
    }

    #[test]
    #[should_panic(expected = "identical bucket edges")]
    fn histogram_merge_rejects_different_edges() {
        let mut a = Histogram::new(&[10]);
        a.merge(&Histogram::new(&[20]));
    }

    #[test]
    fn quantile_is_empty_safe_and_clamped() {
        let h = Histogram::new(&[10, 20]);
        assert_eq!(h.quantile(0.5), None);
        let mut h = Histogram::new(&[10, 20]);
        h.record(7);
        // One sample: every q maps to it; clamped to the recorded max.
        assert_eq!(h.quantile(0.0), Some(7));
        assert_eq!(h.quantile(0.5), Some(7));
        assert_eq!(h.quantile(1.0), Some(7));
        // Out-of-range q is clamped, not NaN'd.
        assert_eq!(h.quantile(-3.0), Some(7));
        assert_eq!(h.quantile(42.0), Some(7));
    }

    #[test]
    fn quantile_overflow_bucket_uses_the_recorded_max() {
        let mut h = Histogram::new(&[10]);
        h.record(5);
        h.record(1_000_000);
        // The p100 sample sits in the open-ended bucket: the estimate
        // is the recorded max, not u64::MAX.
        assert_eq!(h.quantile(1.0), Some(1_000_000));
        // The p25 sample is in [0, 10): upper bound 9, clamped by max.
        assert_eq!(h.quantile(0.25), Some(9));
    }

    /// Exact q-quantile of a sorted sample set under the same rank
    /// convention the estimator uses (the ⌈q·n⌉-th smallest).
    fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
        let n = sorted.len() as u64;
        let k = ((q * n as f64).ceil() as u64).clamp(1, n);
        sorted[(k - 1) as usize]
    }

    /// Bucket index of a value under Histogram semantics.
    fn bucket_of(edges: &[u64], v: u64) -> usize {
        edges.partition_point(|&e| e <= v)
    }

    #[test]
    fn quantile_matches_exact_sorted_quantiles_within_bin_error() {
        // Property test (hand-rolled, deterministic): random sample
        // sets through random geometric edge ladders; the histogram
        // estimate must never under-state the exact order statistic and
        // must land in the exact value's own bucket (error < bin
        // width). Merged histograms over random splits of the same
        // samples must agree with the unsplit histogram exactly.
        let mut rng = crate::SimRng::new(0xD1CE);
        for trial in 0..200 {
            // Edges: a geometric ladder with a random base and ratio.
            let base = 1 + rng.next_below(100);
            let levels = 3 + rng.next_below(10) as usize;
            let mut edges = Vec::with_capacity(levels);
            let mut e = base;
            for _ in 0..levels {
                edges.push(e);
                e = e.saturating_mul(2);
            }
            // Samples: mixture of uniform, clustered and heavy tail.
            let n = 1 + rng.next_below(300) as usize;
            let mut samples = Vec::with_capacity(n);
            for _ in 0..n {
                let v = match rng.next_below(4) {
                    0 => rng.next_below(base * 2),
                    1 => base * 4 + rng.next_below(base),
                    2 => rng.next_below(*edges.last().unwrap() * 4),
                    _ => rng.next_below(16),
                };
                samples.push(v);
            }
            let mut h = Histogram::new(&edges);
            // Random split into two histograms merged back together —
            // quantiles must come from the pooled samples.
            let mut left = Histogram::new(&edges);
            let mut right = Histogram::new(&edges);
            for &s in &samples {
                h.record(s);
                if rng.next_below(2) == 0 {
                    left.record(s);
                } else {
                    right.record(s);
                }
            }
            left.merge(&right);
            assert_eq!(left, h, "trial {trial}: merge must pool exactly");

            let mut sorted = samples.clone();
            sorted.sort_unstable();
            for &q in &[0.0, 0.1, 0.5, 0.9, 0.95, 0.99, 0.999, 1.0] {
                let exact = exact_quantile(&sorted, q);
                let est = h.quantile(q).expect("non-empty");
                assert!(
                    est >= exact,
                    "trial {trial} q={q}: estimate {est} under-states exact {exact}"
                );
                assert_eq!(
                    bucket_of(&edges, est),
                    bucket_of(&edges, exact),
                    "trial {trial} q={q}: estimate {est} left exact {exact}'s bucket"
                );
            }
        }
    }

    #[test]
    fn mean_tracker() {
        let mut m = MeanTracker::new();
        m.record(1.0);
        m.record(3.0);
        assert_eq!(m.count(), 2);
        assert!((m.mean() - 2.0).abs() < 1e-12);
        assert_eq!(m.min(), 1.0);
        assert_eq!(m.max(), 3.0);
    }

    #[test]
    fn welford_matches_two_pass_statistics() {
        // Fixture: {10, 12, 14} -> mean 12, sample stddev 2, and a 95%
        // CI half-width of t(0.975, 2) * 2 / sqrt(3) = 4.303 * 1.1547.
        let mut w = Welford::new();
        for v in [10.0, 12.0, 14.0] {
            w.record(v);
        }
        assert_eq!(w.count(), 3);
        assert!((w.mean() - 12.0).abs() < 1e-12);
        assert!((w.stddev() - 2.0).abs() < 1e-12);
        assert!((w.ci95() - 4.303 * 2.0 / 3.0_f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn welford_degenerate_counts_are_nan_free() {
        let mut w = Welford::new();
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.stddev(), 0.0);
        assert_eq!(w.ci95(), 0.0);
        w.record(7.5);
        assert_eq!(w.mean(), 7.5);
        assert_eq!(w.stddev(), 0.0, "one sample has no spread");
        assert_eq!(w.ci95(), 0.0);
    }

    #[test]
    fn t_table_endpoints() {
        assert_eq!(t95(0), f64::INFINITY);
        assert!((t95(1) - 12.706).abs() < 1e-9);
        assert!((t95(2) - 4.303).abs() < 1e-9);
        assert!((t95(30) - 2.042).abs() < 1e-9);
        assert_eq!(t95(31), 1.96);
        assert_eq!(t95(10_000), 1.96);
    }

    #[test]
    fn geomean_matches_hand_computation() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 1.0);
    }

    #[test]
    fn fairness_min_over_max() {
        assert!((fairness(&[0.5, 1.0]) - 0.5).abs() < 1e-12);
        assert!((fairness(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        assert_eq!(fairness(&[]), 1.0);
    }
}
