//! A deterministic discrete-event queue.
//!
//! Events are ordered by `(time, sequence)`: ties at the same cycle are
//! broken by insertion order, which keeps multi-tenant simulations fully
//! deterministic regardless of payload type.

use crate::types::Cycle;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A time-ordered event queue with FIFO tie-breaking.
///
/// # Example
///
/// ```
/// use camdn_common::EventQueue;
///
/// let mut q = EventQueue::new();
/// q.push(10, "b");
/// q.push(5, "a");
/// q.push(10, "c");
/// assert_eq!(q.pop(), Some((5, "a")));
/// assert_eq!(q.pop(), Some((10, "b"))); // FIFO among ties
/// assert_eq!(q.pop(), Some((10, "c")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    seq: u64,
}

#[derive(Debug, Clone)]
struct Entry<E> {
    time: Cycle,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time.cmp(&other.time).then(self.seq.cmp(&other.seq))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `payload` at absolute time `time`.
    pub fn push(&mut self, time: Cycle, payload: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Entry { time, seq, payload }));
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(Cycle, E)> {
        self.heap.pop().map(|Reverse(e)| (e.time, e.payload))
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<Cycle> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.push(30, 3);
        q.push(10, 1);
        q.push(20, 2);
        assert_eq!(q.pop(), Some((10, 1)));
        assert_eq!(q.pop(), Some((20, 2)));
        assert_eq!(q.pop(), Some((30, 3)));
    }

    #[test]
    fn fifo_among_equal_times() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(7, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((7, i)));
        }
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(42, ());
        assert_eq!(q.peek_time(), Some(42));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(5, 'a');
        q.push(1, 'b');
        assert_eq!(q.pop(), Some((1, 'b')));
        q.push(3, 'c');
        q.push(2, 'd');
        assert_eq!(q.pop(), Some((2, 'd')));
        assert_eq!(q.pop(), Some((3, 'c')));
        assert_eq!(q.pop(), Some((5, 'a')));
    }
}
