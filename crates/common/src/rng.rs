//! A small, fast, seedable PRNG (xoshiro256** seeded via splitmix64).
//!
//! The simulator must be bit-for-bit reproducible across machines and
//! dependency upgrades, so all stochastic workload decisions (dispatch
//! order, arrival jitter) go through [`SimRng`] rather than an external
//! RNG whose stream might change between crate versions.

/// Deterministic pseudo-random number generator.
///
/// # Example
///
/// ```
/// use camdn_common::SimRng;
///
/// let mut a = SimRng::new(7);
/// let mut b = SimRng::new(7);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { s }
    }

    /// Next raw 64-bit value (xoshiro256**).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below bound must be positive");
        // Lemire's multiply-shift rejection-free approximation is fine for
        // simulation workloads; bias is < 2^-32 for the bounds we use.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[lo, hi]` (inclusive).
    pub fn next_range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        lo + self.next_below(hi - lo + 1)
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// Picks a uniformly random element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if the slice is empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> &'a T {
        assert!(!slice.is_empty(), "choose on empty slice");
        &slice[self.next_below(slice.len() as u64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = SimRng::new(123);
        let mut b = SimRng::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn next_below_in_range() {
        let mut r = SimRng::new(9);
        for _ in 0..10_000 {
            assert!(r.next_below(7) < 7);
        }
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut r = SimRng::new(5);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_below_roughly_uniform() {
        let mut r = SimRng::new(44);
        let mut buckets = [0u32; 8];
        let n = 80_000;
        for _ in 0..n {
            buckets[r.next_below(8) as usize] += 1;
        }
        let expect = n / 8;
        for &b in &buckets {
            assert!((i64::from(b) - i64::from(expect)).abs() < i64::from(expect) / 10);
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::new(3);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
