//! Fundamental scalar types used across the simulator.
//!
//! The simulator runs at a nominal 1 GHz ([`CYCLES_PER_SECOND`]), so one
//! [`Cycle`] equals one nanosecond. Addresses come in two flavours:
//! [`PhysAddr`] for the DRAM/physical address space and [`VirtCacheAddr`]
//! for the per-model virtual cache address space introduced by CaMDN's
//! hardware paging (Section III-B3 of the paper).

use serde::{Deserialize, Serialize};

/// One kibibyte (1024 bytes).
pub const KIB: u64 = 1024;
/// One mebibyte (1024 KiB).
pub const MIB: u64 = 1024 * KIB;

/// Simulated clock cycles. The SoC runs at 1 GHz, so 1 cycle == 1 ns.
pub type Cycle = u64;

/// Clock frequency of the simulated SoC (Table II: 1 GHz).
pub const CYCLES_PER_SECOND: u64 = 1_000_000_000;

/// Converts cycles to milliseconds under the 1 GHz clock.
#[inline]
pub fn cycles_to_ms(cycles: Cycle) -> f64 {
    cycles as f64 / (CYCLES_PER_SECOND as f64 / 1e3)
}

/// Converts milliseconds to cycles under the 1 GHz clock.
#[inline]
pub fn ms_to_cycles(ms: f64) -> Cycle {
    (ms * (CYCLES_PER_SECOND as f64 / 1e3)).round() as Cycle
}

/// A physical (DRAM) byte address.
///
/// Physical addresses index the flat DRAM space. The shared-cache slice,
/// set and DRAM channel/bank are all derived from bit fields of this
/// address, mirroring real SoC address interleaving.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct PhysAddr(pub u64);

impl PhysAddr {
    /// Byte address of the cache line containing this address.
    #[inline]
    pub fn line_base(self, line_bytes: u64) -> PhysAddr {
        PhysAddr(self.0 & !(line_bytes - 1))
    }

    /// Sequential line index (address divided by the line size).
    #[inline]
    pub fn line_index(self, line_bytes: u64) -> u64 {
        self.0 / line_bytes
    }

    /// Returns the address advanced by `bytes`.
    #[inline]
    pub fn offset(self, bytes: u64) -> PhysAddr {
        PhysAddr(self.0 + bytes)
    }
}

impl std::fmt::Display for PhysAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:#012x}", self.0)
    }
}

impl From<u64> for PhysAddr {
    fn from(v: u64) -> Self {
        PhysAddr(v)
    }
}

/// A virtual cache address inside a model-exclusive region.
///
/// `vcaddr` values are produced by the offline mapper and translated at
/// runtime by the per-NPU cache page table (CPT) into physical cache
/// addresses (slice/set/way), as shown in Fig. 5(b) of the paper.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct VirtCacheAddr(pub u64);

impl VirtCacheAddr {
    /// Virtual cache page number for a given page size.
    #[inline]
    pub fn vcpn(self, page_bytes: u64) -> u64 {
        self.0 / page_bytes
    }

    /// Offset within the virtual cache page.
    #[inline]
    pub fn page_offset(self, page_bytes: u64) -> u64 {
        self.0 % page_bytes
    }

    /// Returns the address advanced by `bytes`.
    #[inline]
    pub fn offset(self, bytes: u64) -> VirtCacheAddr {
        VirtCacheAddr(self.0 + bytes)
    }
}

impl std::fmt::Display for VirtCacheAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "vc:{:#010x}", self.0)
    }
}

impl From<u64> for VirtCacheAddr {
    fn from(v: u64) -> Self {
        VirtCacheAddr(v)
    }
}

/// Integer ceiling division.
#[inline]
pub fn ceil_div(a: u64, b: u64) -> u64 {
    debug_assert!(b > 0, "division by zero in ceil_div");
    a.div_ceil(b)
}

/// Rounds `a` up to the next multiple of `b`.
#[inline]
pub fn round_up(a: u64, b: u64) -> u64 {
    ceil_div(a, b) * b
}

/// Formats a byte count with a binary suffix for human-readable reports.
pub fn format_bytes(bytes: u64) -> String {
    if bytes >= MIB {
        format!("{:.2} MiB", bytes as f64 / MIB as f64)
    } else if bytes >= KIB {
        format!("{:.2} KiB", bytes as f64 / KIB as f64)
    } else {
        format!("{bytes} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_base_masks_low_bits() {
        let a = PhysAddr(0x1234_5678);
        assert_eq!(a.line_base(64).0, 0x1234_5640);
        assert_eq!(a.line_index(64), 0x1234_5678 / 64);
    }

    #[test]
    fn vcaddr_page_split() {
        let page = 32 * KIB;
        let a = VirtCacheAddr(3 * page + 17);
        assert_eq!(a.vcpn(page), 3);
        assert_eq!(a.page_offset(page), 17);
    }

    #[test]
    fn cycle_time_conversions_roundtrip() {
        assert_eq!(ms_to_cycles(1.0), 1_000_000);
        assert!((cycles_to_ms(6_700_000) - 6.7).abs() < 1e-9);
    }

    #[test]
    fn ceil_div_and_round_up() {
        assert_eq!(ceil_div(10, 3), 4);
        assert_eq!(ceil_div(9, 3), 3);
        assert_eq!(round_up(10, 8), 16);
        assert_eq!(round_up(16, 8), 16);
    }

    #[test]
    fn format_bytes_suffixes() {
        assert_eq!(format_bytes(12), "12 B");
        assert_eq!(format_bytes(2048), "2.00 KiB");
        assert_eq!(format_bytes(3 * MIB), "3.00 MiB");
    }
}
