//! SoC configuration types.
//!
//! [`SocConfig::paper_default`] reproduces Table II of the paper:
//!
//! | Parameter | Value |
//! |---|---|
//! | PE array (per core) | 32×32 |
//! | Scratchpad (per core) | 256 KiB |
//! | NPU cores | 16 |
//! | Shared cache | 16 MiB, 16 ways (12 NPU ways), 8 slices |
//! | DRAM | 102.4 GB/s, 4 channels |
//! | Frequency | 1 GHz |

use crate::types::{KIB, MIB};
use serde::{Deserialize, Serialize};

/// Configuration of a single NPU core (Gemmini-like).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct NpuConfig {
    /// Rows of the processing-element array.
    pub pe_rows: u32,
    /// Columns of the processing-element array.
    pub pe_cols: u32,
    /// Private scratchpad capacity per core, in bytes.
    pub scratchpad_bytes: u64,
    /// Number of NPU cores on the SoC.
    pub cores: u32,
    /// Peak MACs per cycle per core (`pe_rows * pe_cols` for a systolic array).
    pub macs_per_cycle: u64,
}

impl NpuConfig {
    /// NPU configuration from Table II of the paper.
    pub fn paper_default() -> Self {
        NpuConfig {
            pe_rows: 32,
            pe_cols: 32,
            scratchpad_bytes: 256 * KIB,
            cores: 16,
            macs_per_cycle: 32 * 32,
        }
    }
}

impl Default for NpuConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Configuration of the sliced shared cache.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub total_bytes: u64,
    /// Associativity (total ways).
    pub ways: u32,
    /// Ways reserved for the NPU subspace (way partitioning, Section III-B1).
    pub npu_ways: u32,
    /// Number of address-interleaved slices.
    pub slices: u32,
    /// Cache line size in bytes.
    pub line_bytes: u64,
    /// Cache page size for the NPU subspace (Section III-B3: 32 KiB).
    pub page_bytes: u64,
    /// Hit latency of a slice, in cycles.
    pub hit_latency: u64,
    /// Lines a slice can serve per cycle (bandwidth model).
    pub lines_per_cycle: f64,
}

impl CacheConfig {
    /// Shared-cache configuration from Table II (16 MiB, 16 ways, 12 NPU
    /// ways, 8 slices, 64 B lines, 32 KiB pages).
    pub fn paper_default() -> Self {
        CacheConfig {
            total_bytes: 16 * MIB,
            ways: 16,
            npu_ways: 12,
            slices: 8,
            line_bytes: 64,
            page_bytes: 32 * KIB,
            hit_latency: 30,
            lines_per_cycle: 1.0,
        }
    }

    /// Returns a copy with a different total capacity, keeping the page
    /// count of the NPU subspace consistent (used by the scaling sweeps).
    pub fn with_total_bytes(mut self, total_bytes: u64) -> Self {
        self.total_bytes = total_bytes;
        self
    }

    /// Total number of cache lines.
    pub fn total_lines(&self) -> u64 {
        self.total_bytes / self.line_bytes
    }

    /// Sets (per slice) = lines / slices / ways.
    pub fn sets_per_slice(&self) -> u64 {
        self.total_lines() / u64::from(self.slices) / u64::from(self.ways)
    }

    /// Capacity of the NPU subspace in bytes.
    pub fn npu_subspace_bytes(&self) -> u64 {
        self.total_bytes * u64::from(self.npu_ways) / u64::from(self.ways)
    }

    /// Number of 32 KiB (by default) cache pages in the NPU subspace.
    pub fn npu_pages(&self) -> u64 {
        self.npu_subspace_bytes() / self.page_bytes
    }

    /// Cache lines per page.
    pub fn lines_per_page(&self) -> u64 {
        self.page_bytes / self.line_bytes
    }

    /// Checks the geometric invariants the cache model asserts at
    /// construction, so callers can reject a bad configuration with an
    /// error instead of panicking.
    pub fn validate(&self) -> Result<(), String> {
        if self.line_bytes == 0 || !self.line_bytes.is_power_of_two() {
            return Err("cache line size must be a power of two".into());
        }
        if self.slices == 0 || !self.slices.is_power_of_two() {
            return Err("cache slice count must be a power of two".into());
        }
        if self.ways == 0 || !self.ways.is_power_of_two() {
            return Err("cache way count must be a power of two".into());
        }
        if self.npu_ways > self.ways {
            return Err(format!(
                "npu_ways ({}) cannot exceed total ways ({})",
                self.npu_ways, self.ways
            ));
        }
        if !self
            .total_bytes
            .is_multiple_of(self.line_bytes * u64::from(self.slices) * u64::from(self.ways))
        {
            return Err("cache capacity must divide evenly into slices and ways".into());
        }
        let sets_per_slice = self.sets_per_slice();
        if sets_per_slice == 0 || !sets_per_slice.is_power_of_two() {
            return Err("sets per slice must be a (positive) power of two".into());
        }
        if self.page_bytes == 0 || !self.page_bytes.is_multiple_of(self.line_bytes) {
            return Err("cache page size must be a positive multiple of the line size".into());
        }
        if !self.lines_per_page().is_multiple_of(u64::from(self.slices)) {
            return Err("a cache page must span all slices evenly".into());
        }
        let sets_per_page = self.lines_per_page() / u64::from(self.slices);
        if sets_per_page == 0 || !sets_per_slice.is_multiple_of(sets_per_page) {
            return Err("sets per slice must be a multiple of sets per page".into());
        }
        Ok(())
    }
}

impl Default for CacheConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Configuration of the DRAM subsystem.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DramConfig {
    /// Number of independent channels.
    pub channels: u32,
    /// Banks per channel.
    pub banks_per_channel: u32,
    /// Row-buffer size in bytes.
    pub row_bytes: u64,
    /// Aggregate peak bandwidth in bytes per cycle (at 1 GHz,
    /// 102.4 GB/s == 102.4 B/cycle).
    pub bytes_per_cycle: f64,
    /// Extra latency of a row-buffer miss (precharge + activate), cycles.
    pub row_miss_penalty: u64,
    /// Column-access latency (row hit), cycles.
    pub cas_latency: u64,
}

impl DramConfig {
    /// DRAM configuration from Table II (102.4 GB/s over 4 channels).
    pub fn paper_default() -> Self {
        DramConfig {
            channels: 4,
            banks_per_channel: 16,
            row_bytes: 2 * KIB,
            bytes_per_cycle: 102.4,
            row_miss_penalty: 40,
            cas_latency: 20,
        }
    }

    /// Peak bandwidth of a single channel, bytes per cycle.
    pub fn channel_bytes_per_cycle(&self) -> f64 {
        self.bytes_per_cycle / f64::from(self.channels)
    }

    /// Cycles for one cache line burst on one channel at peak bandwidth.
    pub fn line_burst_cycles(&self, line_bytes: u64) -> u64 {
        (line_bytes as f64 / self.channel_bytes_per_cycle()).ceil() as u64
    }
}

impl Default for DramConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Complete SoC configuration (Table II of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct SocConfig {
    /// NPU core parameters.
    pub npu: NpuConfig,
    /// Shared cache parameters.
    pub cache: CacheConfig,
    /// DRAM parameters.
    pub dram: DramConfig,
}

impl SocConfig {
    /// The exact configuration of Table II.
    pub fn paper_default() -> Self {
        SocConfig {
            npu: NpuConfig::paper_default(),
            cache: CacheConfig::paper_default(),
            dram: DramConfig::paper_default(),
        }
    }

    /// Scaling-experiment variant: same SoC with a different cache size.
    pub fn with_cache_bytes(mut self, total_bytes: u64) -> Self {
        self.cache.total_bytes = total_bytes;
        self
    }

    /// Scaling-experiment variant: same SoC with a different DRAM
    /// channel count, keeping *per-channel* bandwidth constant — the
    /// aggregate `bytes_per_cycle` scales with the channel count, so
    /// doubling the channels doubles peak memory bandwidth (the
    /// physical meaning of adding channels to a design).
    ///
    /// # Panics
    ///
    /// Panics on `channels == 0` — a zero-channel DRAM has no
    /// bandwidth and would otherwise only surface as a
    /// division-by-zero deep inside the memory model.
    pub fn with_dram_channels(mut self, channels: u32) -> Self {
        assert!(channels > 0, "the DRAM needs at least one channel");
        let per_channel = self.dram.channel_bytes_per_cycle();
        self.dram.channels = channels;
        self.dram.bytes_per_cycle = per_channel * f64::from(channels);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_defaults() {
        let c = SocConfig::paper_default();
        assert_eq!(c.npu.pe_rows, 32);
        assert_eq!(c.npu.pe_cols, 32);
        assert_eq!(c.npu.scratchpad_bytes, 256 * KIB);
        assert_eq!(c.npu.cores, 16);
        assert_eq!(c.cache.total_bytes, 16 * MIB);
        assert_eq!(c.cache.ways, 16);
        assert_eq!(c.cache.npu_ways, 12);
        assert_eq!(c.cache.slices, 8);
        assert_eq!(c.dram.channels, 4);
        assert!((c.dram.bytes_per_cycle - 102.4).abs() < 1e-9);
    }

    #[test]
    fn cache_geometry() {
        let c = CacheConfig::paper_default();
        // 16 MiB / 64 B = 256 Ki lines; /8 slices /16 ways = 2048 sets.
        assert_eq!(c.total_lines(), 256 * 1024);
        assert_eq!(c.sets_per_slice(), 2048);
        // NPU subspace: 12/16 of 16 MiB = 12 MiB -> 384 pages of 32 KiB.
        assert_eq!(c.npu_subspace_bytes(), 12 * MIB);
        assert_eq!(c.npu_pages(), 384);
        assert_eq!(c.lines_per_page(), 512);
    }

    #[test]
    fn paper_page_table_bound() {
        // Section III-B3: with a 16 MiB cache and 32 KiB pages the CPT has
        // at most 512 entries.
        let c = CacheConfig::paper_default();
        let max_pages_full_cache = c.total_bytes / c.page_bytes;
        assert_eq!(max_pages_full_cache, 512);
    }

    #[test]
    fn dram_channel_math() {
        let d = DramConfig::paper_default();
        assert!((d.channel_bytes_per_cycle() - 25.6).abs() < 1e-9);
        // One 64 B line needs ceil(64/25.6) = 3 cycles on a channel.
        assert_eq!(d.line_burst_cycles(64), 3);
    }

    #[test]
    fn scaling_variant_keeps_other_fields() {
        let c = SocConfig::paper_default().with_cache_bytes(64 * MIB);
        assert_eq!(c.cache.total_bytes, 64 * MIB);
        assert_eq!(c.cache.ways, 16);
        assert_eq!(c.npu.cores, 16);
    }

    #[test]
    fn channel_variant_scales_aggregate_bandwidth() {
        let c = SocConfig::paper_default().with_dram_channels(8);
        assert_eq!(c.dram.channels, 8);
        // Per-channel bandwidth is held at the Table II 25.6 B/cycle, so
        // the aggregate doubles with the channel count.
        assert!((c.dram.channel_bytes_per_cycle() - 25.6).abs() < 1e-9);
        assert!((c.dram.bytes_per_cycle - 204.8).abs() < 1e-9);
        // Identity at the paper's own channel count.
        let same = SocConfig::paper_default().with_dram_channels(4);
        assert_eq!(same.dram, DramConfig::paper_default());
    }

    #[test]
    #[should_panic(expected = "at least one channel")]
    fn zero_channels_are_rejected_at_configuration_time() {
        let _ = SocConfig::paper_default().with_dram_channels(0);
    }
}
