//! Simulation kernel shared by every CaMDN crate.
//!
//! This crate provides the foundation of the CaMDN simulator:
//!
//! * [`types`] — strongly-typed cycles, addresses and byte sizes;
//! * [`config`] — the SoC configuration of Table II of the paper
//!   ([`SocConfig::paper_default`]);
//! * [`event`] — a deterministic discrete-event queue;
//! * [`rng`] — a seedable, dependency-free PRNG ([`SimRng`]) so every
//!   experiment is exactly reproducible;
//! * [`stats`] — counters, histograms and summary statistics used by the
//!   memory system and the experiment harness.
//!
//! # Example
//!
//! ```
//! use camdn_common::config::SocConfig;
//!
//! let soc = SocConfig::paper_default();
//! assert_eq!(soc.cache.total_bytes, 16 << 20); // 16 MiB shared cache
//! assert_eq!(soc.npu.cores, 16);
//! ```

#![warn(missing_docs)]
#![deny(deprecated)]

pub mod config;
pub mod event;
pub mod rng;
pub mod stats;
pub mod types;

pub use config::{CacheConfig, DramConfig, NpuConfig, SocConfig};
pub use event::EventQueue;
pub use rng::SimRng;
pub use stats::{Counter, Histogram, MeanTracker};
pub use types::{Cycle, PhysAddr, VirtCacheAddr, KIB, MIB};
