//! Criterion wrapper for the Fig. 7 speedup experiment: one
//! eight-tenant run per policy, printing the speedup rows.
//!
//! Full-scale reproduction: `cargo run --release -p camdn-bench --bin
//! fig7_speedup`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use camdn_models::Model;
use camdn_runtime::{PolicyKind, RunOutput, Simulation, Workload};

fn workload() -> Vec<Model> {
    camdn_models::zoo::all()
}

fn run(policy: PolicyKind) -> RunOutput {
    Simulation::builder()
        .policy(policy)
        .workload(Workload::closed(workload(), 2))
        .run()
        .expect("fig7 run")
}

fn bench(c: &mut Criterion) {
    let base = run(PolicyKind::Aurora);
    let full = run(PolicyKind::CamdnFull);
    for (b, f) in base.tasks().iter().zip(full.tasks()) {
        println!(
            "fig7[{}]: speedup {:.2}x (AuRORA {:.2}ms -> CaMDN {:.2}ms)",
            b.abbr,
            b.mean_latency_ms / f.mean_latency_ms.max(1e-9),
            b.mean_latency_ms,
            f.mean_latency_ms
        );
    }
    let mut g = c.benchmark_group("fig7_speedup");
    g.sample_size(10);
    g.bench_function("aurora_8dnn", |b| {
        b.iter(|| black_box(run(black_box(PolicyKind::Aurora))))
    });
    g.bench_function("camdn_full_8dnn", |b| {
        b.iter(|| black_box(run(black_box(PolicyKind::CamdnFull))))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
