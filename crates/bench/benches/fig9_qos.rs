//! Criterion wrapper for the Fig. 9 QoS experiment: one QoS-M run per
//! policy on a four-tenant mix, printing SLA/STP/fairness rows.
//!
//! Full-scale reproduction: `cargo run --release -p camdn-bench --bin
//! fig9_qos`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use camdn_models::Model;
use camdn_runtime::{qos_metrics, PolicyKind, QosMetrics, Simulation, Workload};

fn workload() -> Vec<Model> {
    let zoo = camdn_models::zoo::all();
    vec![
        zoo[0].clone(), // RS
        zoo[1].clone(), // MB
        zoo[4].clone(), // BE
        zoo[6].clone(), // WV
    ]
}

fn isolated() -> Vec<f64> {
    let by_abbr =
        camdn_bench::isolated_latencies(PolicyKind::SharedBaseline).expect("isolated runs");
    workload().iter().map(|m| by_abbr[&m.abbr]).collect()
}

fn run(policy: PolicyKind, iso: &[f64]) -> QosMetrics {
    let r = Simulation::builder()
        .policy(policy)
        .qos_scale(1.0)
        .workload(Workload::closed(workload(), 3))
        .run()
        .expect("fig9 run");
    qos_metrics(r.tasks(), iso).expect("one isolated latency per task")
}

fn bench(c: &mut Criterion) {
    let iso = isolated();
    for p in [PolicyKind::Moca, PolicyKind::Aurora, PolicyKind::CamdnFull] {
        let m = run(p, &iso);
        println!(
            "fig9[QoS-M, {}]: SLA {:.1}% STP {:.2} fairness {:.2}",
            p.label(),
            100.0 * m.sla_rate,
            m.stp,
            m.fairness
        );
    }
    let mut g = c.benchmark_group("fig9_qos");
    g.sample_size(10);
    g.bench_function("camdn_qos_m", |b| {
        b.iter(|| black_box(run(black_box(PolicyKind::CamdnFull), &iso)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
