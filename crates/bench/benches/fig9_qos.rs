//! Criterion wrapper for the Fig. 9 QoS experiment: one QoS-M run per
//! policy on a four-tenant mix, printing SLA/STP/fairness rows.
//!
//! Full-scale reproduction: `cargo run --release -p camdn-bench --bin
//! fig9_qos`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use camdn_models::Model;
use camdn_runtime::{qos_metrics, simulate, EngineConfig, PolicyKind, QosMetrics};

fn workload() -> Vec<Model> {
    let zoo = camdn_models::zoo::all();
    vec![
        zoo[0].clone(), // RS
        zoo[1].clone(), // MB
        zoo[4].clone(), // BE
        zoo[6].clone(), // WV
    ]
}

fn isolated() -> Vec<f64> {
    workload()
        .iter()
        .map(|m| {
            let cfg = EngineConfig {
                rounds_per_task: 2,
                warmup_rounds: 1,
                ..EngineConfig::speedup(PolicyKind::SharedBaseline)
            };
            simulate(cfg, &[m.clone()]).tasks[0].mean_latency_ms
        })
        .collect()
}

fn run(policy: PolicyKind, iso: &[f64]) -> QosMetrics {
    let cfg = EngineConfig {
        rounds_per_task: 3,
        warmup_rounds: 1,
        ..EngineConfig::qos(policy, 1.0)
    };
    let r = simulate(cfg, &workload());
    qos_metrics(&r, iso)
}

fn bench(c: &mut Criterion) {
    let iso = isolated();
    for p in [PolicyKind::Moca, PolicyKind::Aurora, PolicyKind::CamdnFull] {
        let m = run(p, &iso);
        println!(
            "fig9[QoS-M, {}]: SLA {:.1}% STP {:.2} fairness {:.2}",
            p.label(),
            100.0 * m.sla_rate,
            m.stp,
            m.fairness
        );
    }
    let mut g = c.benchmark_group("fig9_qos");
    g.sample_size(10);
    g.bench_function("camdn_qos_m", |b| {
        b.iter(|| black_box(run(black_box(PolicyKind::CamdnFull), &iso)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
