//! Microbenchmarks of the simulator substrates: DRAM burst service,
//! transparent cache range accesses, NEC operations and the layer
//! mapper. These guard the simulator's own performance (experiments
//! walk hundreds of millions of cache lines).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use camdn_cache::{Nec, SharedCache};
use camdn_common::config::{CacheConfig, DramConfig};
use camdn_common::types::PhysAddr;
use camdn_dram::DramModel;
use camdn_mapper::{map_layer_lwm, MapperConfig};
use camdn_models::{Layer, LoopNest, OpKind};

fn bench(c: &mut Criterion) {
    let cache_cfg = CacheConfig::paper_default();

    c.bench_function("dram_burst_64_lines", |b| {
        let mut dram = DramModel::new(DramConfig::paper_default(), 64);
        let mut t = 0u64;
        b.iter(|| {
            t += 1000;
            black_box(dram.access_burst(t, PhysAddr(t * 64), 64, false, 0))
        })
    });

    c.bench_function("cache_range_64kib", |b| {
        let mut cache = SharedCache::new(&cache_cfg);
        let mut dram = DramModel::new(DramConfig::paper_default(), 64);
        let mask = cache.full_way_mask();
        let mut t = 0u64;
        b.iter(|| {
            t += 10_000;
            black_box(cache.access_range(
                t,
                PhysAddr((t * 64) % (1 << 30)),
                64 << 10,
                false,
                mask,
                &mut dram,
            ))
        })
    });

    c.bench_function("nec_fill_one_page", |b| {
        let mut nec = Nec::new(&cache_cfg);
        let mut dram = DramModel::new(DramConfig::paper_default(), 64);
        let p = nec.first_pcpn();
        nec.claim_page(0, p).unwrap();
        let pages = vec![p];
        let mut t = 0u64;
        b.iter(|| {
            t += 10_000;
            black_box(
                nec.fill(t, 0, &pages, PhysAddr(0), 512, &mut dram, 0)
                    .unwrap(),
            )
        })
    });

    c.bench_function("map_layer_resnet_conv", |b| {
        let layer = Layer::new("c", OpKind::Conv, LoopNest::conv(256, 14, 14, 256, 3, 1));
        let cfg = MapperConfig::paper_default();
        b.iter(|| black_box(map_layer_lwm(black_box(&layer), &cfg, 1 << 20)))
    });

    c.bench_function("map_model_mobilenet", |b| {
        let model = camdn_models::zoo::mobilenet_v2();
        let cfg = MapperConfig::paper_default();
        b.iter(|| black_box(camdn_mapper::map_model(black_box(&model), &cfg)))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
