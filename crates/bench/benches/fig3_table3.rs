//! Criterion wrapper for the analytic artifacts: Fig. 3 (reuse
//! statistics) and Table III (area breakdown). Both are deterministic
//! computations; the bench times them and prints the headline rows.
//!
//! Full-scale reproduction: `fig3_reuse` and `table3_area` binaries.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use camdn_analysis::{area_breakdown, profile_zoo, AreaModel};
use camdn_common::config::{CacheConfig, NpuConfig};
use camdn_mapper::MapperConfig;

fn bench(c: &mut Criterion) {
    let rows = profile_zoo(&MapperConfig::paper_default());
    let avg = rows.last().unwrap();
    println!(
        "fig3[Avg]: no-reuse {:.1}% (paper 68.0%), >1MiB distance {:.1}% (paper 61.8%)",
        100.0 * avg.no_reuse_fraction,
        100.0 * avg.far_fraction
    );
    let b = area_breakdown(
        &NpuConfig::paper_default(),
        &CacheConfig::paper_default(),
        &AreaModel::calibrated_45nm(),
    );
    println!(
        "table3: CPT {:.2}% of NPU (paper 0.9%), NEC {:.2}% of slice (paper 0.3%)",
        b.cpt_percent(),
        b.nec_percent()
    );

    let mut g = c.benchmark_group("fig3_table3");
    g.bench_function("reuse_profile_zoo", |b| {
        b.iter(|| black_box(profile_zoo(black_box(&MapperConfig::paper_default()))))
    });
    g.bench_function("area_breakdown", |bch| {
        bch.iter(|| {
            black_box(area_breakdown(
                &NpuConfig::paper_default(),
                &CacheConfig::paper_default(),
                &AreaModel::calibrated_45nm(),
            ))
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
