//! Criterion wrapper for the Fig. 8 scaling experiment: baseline vs
//! CaMDN(Full) at several cache sizes, printing the reduction rows.
//!
//! Full-scale reproduction: `cargo run --release -p camdn-bench --bin
//! fig8_scaling`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use camdn_common::types::MIB;
use camdn_models::Model;
use camdn_runtime::{PolicyKind, Simulation, Workload};

fn workload() -> Vec<Model> {
    let zoo = camdn_models::zoo::all();
    (0..4).map(|i| zoo[i % zoo.len()].clone()).collect()
}

fn run(policy: PolicyKind, cache_mb: u64) -> (f64, f64) {
    let r = Simulation::builder()
        .policy(policy)
        .soc(camdn_common::SocConfig::paper_default().with_cache_bytes(cache_mb * MIB))
        .workload(Workload::closed(workload(), 2))
        .run()
        .expect("fig8 run");
    (r.summary.avg_latency_ms, r.summary.mem_mb_per_model)
}

fn bench(c: &mut Criterion) {
    for &mb in &[8u64, 16, 32] {
        let (bl, bm) = run(PolicyKind::Aurora, mb);
        let (fl, fm) = run(PolicyKind::CamdnFull, mb);
        println!(
            "fig8[{mb}MB]: latency {bl:.2}->{fl:.2}ms ({:+.1}%), mem {bm:.1}->{fm:.1}MB ({:+.1}%)",
            100.0 * (fl / bl - 1.0),
            100.0 * (fm / bm - 1.0)
        );
    }
    let mut g = c.benchmark_group("fig8_scaling");
    g.sample_size(10);
    g.bench_function("camdn_full_4dnn_32mb", |b| {
        b.iter(|| black_box(run(black_box(PolicyKind::CamdnFull), 32)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
