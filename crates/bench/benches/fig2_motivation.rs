//! Criterion wrapper for the Fig. 2 motivation experiment: times one
//! transparent-baseline multi-tenant run at two contention levels and
//! prints the hit-rate/traffic series the figure plots.
//!
//! Full-scale reproduction: `cargo run --release -p camdn-bench --bin
//! fig2_motivation`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use camdn_bench::cycling_workload;
use camdn_common::types::MIB;
use camdn_runtime::{PolicyKind, Simulation, Workload};

fn run(n: usize, cache_mb: u64) -> (f64, f64, f64) {
    let r = Simulation::builder()
        .policy(PolicyKind::SharedBaseline)
        .soc(camdn_common::SocConfig::paper_default().with_cache_bytes(cache_mb * MIB))
        .workload(Workload::closed(cycling_workload(n), 2))
        .run()
        .expect("fig2 run");
    (
        r.summary.cache_hit_rate,
        r.summary.mem_mb_per_model,
        r.summary.avg_latency_ms,
    )
}

fn bench(c: &mut Criterion) {
    // Print the paper-style series once, so `cargo bench` output carries
    // the reproduced rows.
    for &n in &[1usize, 4, 8] {
        let (h, m, l) = run(n, 16);
        println!("fig2[16MB, {n} DNNs]: hit={h:.3} mem={m:.1}MB/model lat={l:.2}ms");
    }
    let mut g = c.benchmark_group("fig2_motivation");
    g.sample_size(10);
    g.bench_function("baseline_4dnn_16mb", |b| {
        b.iter(|| black_box(run(black_box(4), 16)))
    });
    g.bench_function("baseline_8dnn_8mb", |b| {
        b.iter(|| black_box(run(black_box(8), 8)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
