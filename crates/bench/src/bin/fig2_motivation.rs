//! Fig. 2: the motivation experiment — cache hit rate, memory access
//! per model and average latency on a plain shared transparent cache,
//! sweeping the number of co-located DNNs {1, 2, 4, 8, 16, 32} and the
//! cache capacity {4, 8, 16, 32, 64} MiB.
//!
//! Paper result: hit rate drops by 18.9–59.7 %, memory access rises by
//! 32.7–64.1 % and latency by 3.46–5.65× as the DNN count reaches 32.

use camdn_bench::{print_table, quick_mode};
use camdn_common::types::MIB;
use camdn_models::Model;
use camdn_runtime::{PolicyKind, Workload};
use camdn_sweep::Sweep;

fn rotations(n: usize) -> Vec<Vec<Model>> {
    // Every model must participate at every tenant count: rotate the zoo
    // so e.g. N=1 averages eight single-model runs.
    let zoo = camdn_models::zoo::all();
    let rots = (zoo.len() / n).max(1);
    (0..rots)
        .map(|r| {
            (0..n)
                .map(|i| zoo[(r * n + i) % zoo.len()].clone())
                .collect()
        })
        .collect()
}

fn main() {
    let (dnn_counts, cache_mibs): (Vec<usize>, Vec<u64>) = if quick_mode() {
        (vec![1, 4, 16], vec![8, 16])
    } else {
        (vec![1, 2, 4, 8, 16, 32], vec![4, 8, 16, 32, 64])
    };

    // Workload axis: every rotation of every tenant count, remembering
    // which count each axis entry belongs to. The cache axis and the
    // cross-product are the sweep's job.
    let mut workloads = Vec::new();
    let mut wl_count_idx = Vec::new(); // workload-axis index -> dnn_counts index
    for (ni, &n) in dnn_counts.iter().enumerate() {
        for (rot, models) in rotations(n).into_iter().enumerate() {
            workloads.push((format!("{n}dnn/rot{rot}"), Workload::closed(models, 2)));
            wl_count_idx.push(ni);
        }
    }
    let grid = Sweep::grid()
        .policy(PolicyKind::SharedBaseline)
        .cache_bytes(cache_mibs.iter().map(|mb| mb * MIB))
        .workloads(workloads)
        .run()
        .expect("fig2 grid");

    // Average each (cache, #DNN) cell over its rotations.
    let mut cells: Vec<Vec<(f64, f64, f64, u32)>> =
        vec![vec![(0.0, 0.0, 0.0, 0); dnn_counts.len()]; cache_mibs.len()];
    for cell in &grid.cells {
        let r = &cell.outcome.as_ref().expect("fig2 cell").summary;
        let c = &mut cells[cell.coord.cache][wl_count_idx[cell.coord.workload]];
        c.0 += r.cache_hit_rate;
        c.1 += r.mem_mb_per_model;
        c.2 += r.avg_latency_ms;
        c.3 += 1;
    }
    let cell = |ci: usize, ni: usize| {
        let (h, m, l, k) = cells[ci][ni];
        (h / f64::from(k), m / f64::from(k), l / f64::from(k))
    };

    let headers: Vec<String> = std::iter::once("cache".to_string())
        .chain(dnn_counts.iter().map(|n| format!("{n} DNNs")))
        .collect();
    let headers: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();

    let table = |title: &str, f: &dyn Fn(usize, usize) -> String| {
        let rows: Vec<Vec<String>> = cache_mibs
            .iter()
            .enumerate()
            .map(|(ci, mb)| {
                std::iter::once(format!("{mb}MB"))
                    .chain((0..dnn_counts.len()).map(|ni| f(ci, ni)))
                    .collect()
            })
            .collect();
        print_table(title, &headers, &rows);
    };

    table("Fig. 2(a) — cache hit rate", &|ci, ni| {
        format!("{:.3}", cell(ci, ni).0)
    });
    table("Fig. 2(b) — memory access (MB/model)", &|ci, ni| {
        format!("{:.1}", cell(ci, ni).1)
    });
    table("Fig. 2(c) — average latency (ms)", &|ci, ni| {
        format!("{:.1}", cell(ci, ni).2)
    });

    // Headline deltas at the largest tenant count, per the paper's text.
    let last = dnn_counts.len() - 1;
    let mut hit_drop: (f64, f64) = (f64::INFINITY, 0.0);
    let mut mem_rise: (f64, f64) = (f64::INFINITY, 0.0);
    let mut lat_rise: (f64, f64) = (f64::INFINITY, 0.0);
    for ci in 0..cache_mibs.len() {
        let (h1, m1, l1) = cell(ci, 0);
        let (hn, mn, ln) = cell(ci, last);
        let hd = 100.0 * (h1 - hn) / h1.max(1e-9);
        let mr = 100.0 * (mn - m1) / m1.max(1e-9);
        let lr = ln / l1.max(1e-9);
        hit_drop = (hit_drop.0.min(hd), hit_drop.1.max(hd));
        mem_rise = (mem_rise.0.min(mr), mem_rise.1.max(mr));
        lat_rise = (lat_rise.0.min(lr), lat_rise.1.max(lr));
    }
    println!(
        "\nAt {} DNNs: hit rate drops {:.1}%..{:.1}% (paper: 18.9%..59.7% at 32);",
        dnn_counts[last], hit_drop.0, hit_drop.1
    );
    println!(
        "memory access rises {:.1}%..{:.1}% (paper: 32.7%..64.1%);",
        mem_rise.0, mem_rise.1
    );
    println!(
        "average latency rises {:.2}x..{:.2}x (paper: 3.46x..5.65x).",
        lat_rise.0, lat_rise.1
    );
    println!(
        "\n[{} cells in {:.2}s on {} threads, one shared mapping per model]",
        grid.cells.len(),
        grid.wall_s,
        grid.threads
    );
}
