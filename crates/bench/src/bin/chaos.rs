//! Chaos bench: fault intensity × policy over the seeded serving
//! trace.
//!
//! Every policy replays the *same* seeded heavy-tailed trace (Zipf
//! popularity, Pareto inter-arrivals, diurnal rate curve) three times:
//! fault-free, and under a light and a heavy seeded fault schedule
//! (NPU failures, DRAM brownouts, thermal throttling — all generated
//! by [`FaultPlan::generate`] over the trace horizon). Each cell
//! reports SLO burn, admission-shed rate, and post-fault recovery
//! time: the number of windows after p99 first leaves the fault-free
//! band until it returns within 10% of the fault-free p99. Results go
//! to `BENCH_chaos.json` (schema `camdn-bench-chaos/1`).
//!
//! Usage: `cargo run --release -p camdn-bench --bin chaos`
//!
//! * `CAMDN_QUICK=1` — reduced horizon and rate (CI smoke mode).
//! * `CAMDN_BENCH_OUT=<path>` — output path (default `BENCH_chaos.json`).

use camdn_bench::{print_table, quick_mode};
use camdn_runtime::{FaultGenConfig, FaultPlan, PolicyKind};
use camdn_trace::{
    ReplayAggregate, ReplayConfig, ReplayDriver, ReplaySink, TraceGen, TraceGenConfig,
    WindowMetrics,
};

/// Cycles per trace microsecond (the engine clock runs at 1 GHz).
const CYCLES_PER_US: u64 = 1000;

/// Per-window simulated-cycle budget, as a multiple of the window
/// span — bounds windows that a fault pushes into deep overload.
const WINDOW_BUDGET_FACTOR: u64 = 32;

/// A window has recovered when its p99 is back within this factor of
/// the fault-free p99.
const RECOVERY_BAND: f64 = 1.1;

/// One fault regime of the study.
struct Intensity {
    name: &'static str,
    plan: Option<FaultPlan>,
}

/// Builds the three fault regimes over a `horizon`-cycle trace. MTBFs
/// scale with the horizon so quick and full mode see comparable fault
/// counts per run, not per cycle.
fn intensities(horizon: u64) -> Result<Vec<Intensity>, Box<dyn std::error::Error>> {
    let h = horizon as f64;
    let gen = |seed: u64, mtbf: f64, mttr: f64| -> Result<FaultPlan, Box<dyn std::error::Error>> {
        Ok(FaultPlan::generate(&FaultGenConfig {
            seed,
            horizon,
            npu_mtbf_cycles: mtbf,
            npu_mttr_cycles: mttr,
            dram_mtbf_cycles: mtbf,
            dram_mttr_cycles: mttr,
            throttle_mtbf_cycles: mtbf,
            throttle_mttr_cycles: mttr,
            ..FaultGenConfig::default()
        })?)
    };
    Ok(vec![
        Intensity {
            name: "none",
            plan: None,
        },
        Intensity {
            name: "light",
            plan: Some(gen(0xC4A051, h * 2.0, h / 20.0)?),
        },
        Intensity {
            name: "heavy",
            plan: Some(gen(0xC4A052, h / 2.0, h / 8.0)?),
        },
    ])
}

/// Replay sink that keeps the pooled aggregate *and* the per-window
/// p99 series the recovery metric needs.
#[derive(Default)]
struct ChaosSink {
    agg: ReplayAggregate,
    p99s_ms: Vec<f64>,
}

impl ChaosSink {
    fn new() -> Self {
        ChaosSink {
            agg: ReplayAggregate::new(),
            p99s_ms: Vec::new(),
        }
    }
}

impl ReplaySink for ChaosSink {
    fn on_window(&mut self, w: &WindowMetrics) {
        self.agg.on_window(w);
        self.p99s_ms.push(w.tail.p99_ms());
    }
}

/// Windows from the first p99 excursion beyond `RECOVERY_BAND` × the
/// fault-free p99 until the first window back inside the band.
/// `Some(0)` when no window left the band; `None` when the run never
/// recovered within the horizon.
fn recovery_windows(p99s_ms: &[f64], baseline_p99_ms: f64) -> Option<u64> {
    let limit = baseline_p99_ms * RECOVERY_BAND;
    let Some(onset) = p99s_ms.iter().position(|&p| p > limit) else {
        return Some(0);
    };
    p99s_ms[onset..]
        .iter()
        .position(|&p| p <= limit)
        .map(|off| off as u64)
}

struct Cell {
    policy: PolicyKind,
    intensity: &'static str,
    windows: u64,
    truncated_windows: u64,
    arrivals: u64,
    shed: u64,
    sla: f64,
    worst_window_sla: f64,
    p99_ms: f64,
    recovery_windows: Option<u64>,
    wall_s: f64,
}

impl Cell {
    fn shed_rate(&self) -> f64 {
        if self.arrivals == 0 {
            0.0
        } else {
            self.shed as f64 / self.arrivals as f64
        }
    }
}

fn jopt(v: Option<u64>) -> String {
    v.map_or("null".into(), |x| format!("{x}"))
}

fn main() {
    if let Err(e) = run() {
        eprintln!("chaos: {e}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let quick = quick_mode();
    let (rate_per_s, horizon_s, window_us): (f64, f64, u64) = if quick {
        (500.0, 0.1, 25_000)
    } else {
        (1_000.0, 0.5, 50_000)
    };
    let horizon_cycles = (horizon_s * 1e6) as u64 * CYCLES_PER_US;
    let trace_cfg = TraceGenConfig {
        rate_per_s,
        horizon_s,
        ..TraceGenConfig::default()
    };
    let regimes = intensities(horizon_cycles)?;

    let mut cells: Vec<Cell> = Vec::new();
    for regime in &regimes {
        // One driver per regime: the fault plan is a config knob, the
        // policy switches in place so the mapping-plan cache is shared
        // across the whole policy set.
        let mut cfg = ReplayConfig::new(PolicyKind::ALL[0], window_us);
        cfg.fault_plan = regime.plan.clone();
        cfg.max_cycles_per_window = Some(WINDOW_BUDGET_FACTOR * window_us * CYCLES_PER_US);
        cfg.admission_control = true;
        let mut driver = ReplayDriver::new(cfg)?;
        for policy in PolicyKind::ALL {
            driver.set_policy(policy);
            let records = TraceGen::new(trace_cfg.clone())?.map(Ok);
            let mut sink = ChaosSink::new();
            let t0 = std::time::Instant::now();
            driver.replay(records, &mut sink).inspect_err(|_| {
                eprintln!("chaos: regime={} policy={}", regime.name, policy.name());
            })?;
            // Recovery is judged against this policy's own fault-free
            // p99, recorded by the "none" regime (always first).
            let baseline_p99_ms = cells
                .iter()
                .find(|c| c.policy == policy && c.intensity == "none")
                .map_or(sink.agg.tail.p99_ms(), |c| c.p99_ms);
            cells.push(Cell {
                policy,
                intensity: regime.name,
                windows: sink.agg.windows,
                truncated_windows: sink.agg.truncated_windows,
                arrivals: sink.agg.arrivals,
                shed: sink.agg.shed,
                sla: sink.agg.sla_rate(),
                worst_window_sla: sink.agg.worst_window_sla,
                p99_ms: sink.agg.tail.p99_ms(),
                recovery_windows: recovery_windows(&sink.p99s_ms, baseline_p99_ms),
                wall_s: t0.elapsed().as_secs_f64(),
            });
        }
    }

    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|c| {
            vec![
                c.policy.label().to_string(),
                c.intensity.to_string(),
                format!("{:.4}", c.sla),
                format!("{:.4}", 1.0 - c.sla),
                format!("{:.4}", c.shed_rate()),
                format!("{:.3}", c.p99_ms),
                c.recovery_windows.map_or("never".into(), |w| w.to_string()),
                c.truncated_windows.to_string(),
            ]
        })
        .collect();
    print_table(
        "Chaos — SLO burn and recovery under seeded fault schedules",
        &[
            "policy",
            "faults",
            "SLA",
            "SLO burn",
            "shed rate",
            "p99 (ms)",
            "recovery (win)",
            "trunc win",
        ],
        &rows,
    );

    let regimes_json: Vec<String> = regimes
        .iter()
        .map(|r| {
            format!(
                "    {{\"name\": \"{}\", \"fault_fp\": {}, \"events\": {}}}",
                r.name,
                r.plan
                    .as_ref()
                    .map_or("null".into(), |p| p.fingerprint().to_string()),
                r.plan.as_ref().map_or(0, |p| p.events().len()),
            )
        })
        .collect();
    let cells_json: Vec<String> = cells
        .iter()
        .map(|c| {
            format!(
                "    {{\"policy\": \"{}\", \"intensity\": \"{}\", \"windows\": {}, \
                 \"truncated_windows\": {}, \"arrivals\": {}, \"shed\": {}, \
                 \"shed_rate\": {:.6}, \"sla\": {:.6}, \"slo_burn\": {:.6}, \
                 \"worst_window_sla\": {:.6}, \"p99_ms\": {:.6}, \
                 \"recovery_windows\": {}, \"wall_s\": {:.4}}}",
                c.policy.name(),
                c.intensity,
                c.windows,
                c.truncated_windows,
                c.arrivals,
                c.shed,
                c.shed_rate(),
                c.sla,
                1.0 - c.sla,
                c.worst_window_sla,
                c.p99_ms,
                jopt(c.recovery_windows),
                c.wall_s,
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"schema\": \"camdn-bench-chaos/1\",\n  \"quick\": {},\n  \
         \"window_us\": {},\n  \"recovery_band\": {},\n  \
         \"trace\": {{\"seed\": {}, \"tenants\": {}, \"rate_per_s\": {}, \"horizon_s\": {}}},\n  \
         \"regimes\": [\n{}\n  ],\n  \"cells\": [\n{}\n  ]\n}}\n",
        quick,
        window_us,
        RECOVERY_BAND,
        trace_cfg.seed,
        trace_cfg.tenants,
        trace_cfg.rate_per_s,
        trace_cfg.horizon_s,
        regimes_json.join(",\n"),
        cells_json.join(",\n"),
    );
    let out = std::env::var("CAMDN_BENCH_OUT").unwrap_or_else(|_| "BENCH_chaos.json".into());
    std::fs::write(&out, json)?;
    println!("wrote {out}");
    Ok(())
}
