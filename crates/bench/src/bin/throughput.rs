//! Engine throughput harness: simulated-cycles-per-wall-second, batched
//! fast paths vs the per-line reference model, tracked over time via
//! `BENCH_engine.json`.
//!
//! Each scenario runs twice — once through the batched memory-system
//! fast paths (the default) and once with
//! `SimulationBuilder::reference_model` — and the harness asserts the
//! two `RunOutput`s are identical before reporting the speedup, so
//! every benchmark run doubles as a whole-engine differential test.
//! It also asserts that the summary-level latency tail is populated
//! with exactly one sample per measured inference at *every* detail
//! level — the O(bins) tail accounting rides the aggregation step, not
//! the hot loop, and the cycles-per-second figures tracked per commit
//! would expose any regression there.
//!
//! Usage: `cargo run --release -p camdn-bench --bin throughput`
//!
//! * `CAMDN_QUICK=1` — reduced scenario sizes (CI smoke mode).
//! * `CAMDN_BENCH_OUT=<path>` — output path (default `BENCH_engine.json`).

use camdn_bench::{quick_mode, speedup_workload};
use camdn_models::zoo;
use camdn_runtime::{PolicyKind, RunOutput, Simulation, Workload};
use camdn_sweep::run_cells;

struct Scenario {
    name: &'static str,
    policy: PolicyKind,
    workload: Workload,
}

fn scenarios(quick: bool) -> Vec<Scenario> {
    let rounds = if quick { 2 } else { 3 };
    let small: Vec<_> = (0..4).map(|_| zoo::mobilenet_v2()).collect();
    let large = if quick {
        vec![zoo::gnmt(), zoo::bert_base(), zoo::resnet50(), zoo::gnmt()]
    } else {
        // The 16-tenant Section IV-A4 workload on the transparent
        // baseline: every weight tensor streams through the shared
        // cache under full contention — the simulator's hottest regime.
        speedup_workload()
    };
    let open = if quick {
        Workload::poisson(
            vec![zoo::mobilenet_v2(), zoo::efficientnet_b0()],
            0.05,
            50.0,
        )
    } else {
        Workload::poisson(zoo::all(), 0.05, 100.0)
    };
    vec![
        Scenario {
            name: "small_closed",
            policy: PolicyKind::SharedBaseline,
            workload: Workload::closed(small, rounds),
        },
        Scenario {
            // The paper's own system on the heavy end of the zoo: big
            // weight tensors move as NEC bulk DMA (fills, bypasses,
            // multicast), the regime the closed-form burst timing
            // targets.
            name: "large_tensor_multi_tenant",
            policy: PolicyKind::CamdnFull,
            workload: Workload::closed(large.clone(), 2),
        },
        Scenario {
            // Same tenants through the transparent baseline: every line
            // probes the shared tag array, so this one is bounded by the
            // (shared) tag pass rather than the batched memory pass.
            name: "baseline_contention",
            policy: PolicyKind::SharedBaseline,
            workload: Workload::closed(large, 2),
        },
        Scenario {
            name: "open_loop_poisson",
            policy: PolicyKind::CamdnFull,
            workload: open,
        },
    ]
}

/// Runs one scenario through both memory models on the sweep executor
/// (one worker: the wall-clock numbers must not contend), returning
/// `(reference, batched)` with per-cell wall seconds.
fn run_pair(sc: &Scenario) -> ((RunOutput, f64), (RunOutput, f64)) {
    let mk = |reference| {
        Simulation::builder()
            .policy(sc.policy)
            .workload(sc.workload.clone())
            .reference_model(reference)
    };
    // Reference (seed-equivalent per-line path) first, then batched.
    let mut runs = run_cells(vec![mk(true), mk(false)], Some(1));
    let fast = runs.pop().expect("batched cell");
    let reference = runs.pop().expect("reference cell");
    let unwrap = |name: &str, r: camdn_sweep::CellRun| match r.outcome {
        Ok(result) => (result, r.wall_s),
        Err(e) => panic!("{}: {} run failed: {e}", sc.name, name),
    };
    (unwrap("reference", reference), unwrap("batched", fast))
}

fn main() {
    let quick = quick_mode();
    let mut rows = Vec::new();
    for sc in scenarios(quick) {
        let ((r_ref, wall_ref), (r_fast, wall_fast)) = run_pair(&sc);
        let identical = r_ref == r_fast;
        assert!(
            identical,
            "{}: batched result diverged from the reference model",
            sc.name
        );
        // Tail stats cost O(bins) and are filled during aggregation:
        // every measured inference lands in the compact tail, at the
        // default detail level and bit-identically at summary-only.
        let tail = &r_fast.summary.latency_tail;
        assert_eq!(
            tail.total(),
            r_fast.summary.inferences as u64,
            "{}: latency tail must count every measured inference",
            sc.name
        );
        let summary_only = Simulation::builder()
            .policy(sc.policy)
            .workload(sc.workload.clone())
            .detail(camdn_runtime::DetailLevel::Summary)
            .run()
            .expect("summary-only run");
        assert_eq!(
            summary_only.summary, r_fast.summary,
            "{}: summary (incl. tail) must be bit-identical at every detail level",
            sc.name
        );
        let sim_cycles = camdn_common::types::ms_to_cycles(r_fast.summary.makespan_ms);
        let cps_fast = sim_cycles as f64 / wall_fast.max(1e-9);
        let cps_ref = sim_cycles as f64 / wall_ref.max(1e-9);
        let speedup = cps_fast / cps_ref.max(1e-9);
        println!(
            "{:<28} {:>12} sim-cycles  batched {:>10.3e} cyc/s  reference {:>10.3e} cyc/s  speedup {:>5.2}x",
            sc.name, sim_cycles, cps_fast, cps_ref, speedup
        );
        rows.push(format!(
            concat!(
                "    {{\n",
                "      \"name\": \"{}\",\n",
                "      \"policy\": \"{}\",\n",
                "      \"tasks\": {},\n",
                "      \"sim_cycles\": {},\n",
                "      \"wall_s_batched\": {:.6},\n",
                "      \"wall_s_reference\": {:.6},\n",
                "      \"cycles_per_sec_batched\": {:.1},\n",
                "      \"cycles_per_sec_reference\": {:.1},\n",
                "      \"speedup\": {:.3},\n",
                "      \"results_identical\": {}\n",
                "    }}"
            ),
            sc.name,
            sc.policy.name(),
            r_fast.summary.tasks,
            sim_cycles,
            wall_fast,
            wall_ref,
            cps_fast,
            cps_ref,
            speedup,
            identical
        ));
    }
    let json = format!(
        "{{\n  \"schema\": \"camdn-bench-engine/1\",\n  \"quick\": {},\n  \"scenarios\": [\n{}\n  ]\n}}\n",
        quick,
        rows.join(",\n")
    );
    let out = std::env::var("CAMDN_BENCH_OUT").unwrap_or_else(|_| "BENCH_engine.json".into());
    std::fs::write(&out, json).expect("write BENCH_engine.json");
    println!("wrote {out}");
}
