//! Engine throughput harness: simulated-cycles-per-wall-second, batched
//! fast paths vs the per-line reference model, tracked over time via
//! `BENCH_engine.json`.
//!
//! Each scenario runs twice — once through the batched memory-system
//! fast paths (the default) and once with
//! `SimulationBuilder::reference_model` — and the harness asserts the
//! two `RunOutput`s are identical before reporting the speedup, so
//! every benchmark run doubles as a whole-engine differential test.
//! It also asserts that the summary-level latency tail is populated
//! with exactly one sample per measured inference at *every* detail
//! level — the O(bins) tail accounting rides the aggregation step, not
//! the hot loop, and the cycles-per-second figures tracked per commit
//! would expose any regression there.
//!
//! Each scenario also runs a third time through the retained legacy
//! advance loop ([`SimulationBuilder::legacy_scheduler`]): the harness
//! asserts the component-clock scheduler's `RunOutput` is identical
//! and reports `sched_overhead` — the component loop's wall clock over
//! the legacy loop's — so the scheduler refactor's cost is tracked per
//! commit and CI can guard a floor on it.
//!
//! Besides the wall clocks, each scenario row carries a
//! `tag_pass_frac` estimate — the scenario re-run in the cache's
//! tag-pass-only diagnostic mode ([`SimulationBuilder::tag_pass_only`])
//! and its wall clock divided by the batched wall clock — and the
//! `tag_bound_sweep_w*` family re-times the contention workload across
//! ways counts at a fixed 16 MiB footprint, so a tag-pass regression
//! shows up per lane width, not just in aggregate.
//!
//! [`SimulationBuilder::tag_pass_only`]: camdn_runtime::SimulationBuilder::tag_pass_only
//! [`SimulationBuilder::legacy_scheduler`]: camdn_runtime::SimulationBuilder::legacy_scheduler
//!
//! Usage: `cargo run --release -p camdn-bench --bin throughput`
//!
//! * `CAMDN_QUICK=1` — reduced scenario sizes (CI smoke mode).
//! * `CAMDN_BENCH_OUT=<path>` — output path (default `BENCH_engine.json`).

use camdn_bench::{quick_mode, speedup_workload};
use camdn_cache::TAG_LANE_WIDTH;
use camdn_common::config::SocConfig;
use camdn_models::zoo;
use camdn_runtime::{PolicyKind, RunOutput, Simulation, Workload};
use camdn_sweep::run_cells;

struct Scenario {
    name: &'static str,
    policy: PolicyKind,
    workload: Workload,
    soc: SocConfig,
}

/// The Table II SoC with the shared cache re-diced to `ways` ways at
/// the same 16 MiB footprint (sets shrink as ways grow) and the NPU
/// subspace kept at its paper 3/4 share.
fn soc_with_ways(ways: u32) -> SocConfig {
    let mut soc = SocConfig::paper_default();
    soc.cache.ways = ways;
    soc.cache.npu_ways = ways * 3 / 4;
    soc
}

fn scenarios(quick: bool) -> Vec<Scenario> {
    let rounds = if quick { 2 } else { 3 };
    let small: Vec<_> = (0..4).map(|_| zoo::mobilenet_v2()).collect();
    let large = if quick {
        vec![zoo::gnmt(), zoo::bert_base(), zoo::resnet50(), zoo::gnmt()]
    } else {
        // The 16-tenant Section IV-A4 workload on the transparent
        // baseline: every weight tensor streams through the shared
        // cache under full contention — the simulator's hottest regime.
        speedup_workload()
    };
    let open = if quick {
        Workload::poisson(
            vec![zoo::mobilenet_v2(), zoo::efficientnet_b0()],
            0.05,
            50.0,
        )
    } else {
        Workload::poisson(zoo::all(), 0.05, 100.0)
    };
    let mut v = vec![
        Scenario {
            name: "small_closed",
            policy: PolicyKind::SharedBaseline,
            workload: Workload::closed(small, rounds),
            soc: SocConfig::paper_default(),
        },
        Scenario {
            // The paper's own system on the heavy end of the zoo: big
            // weight tensors move as NEC bulk DMA (fills, bypasses,
            // multicast), the regime the closed-form burst timing
            // targets.
            name: "large_tensor_multi_tenant",
            policy: PolicyKind::CamdnFull,
            workload: Workload::closed(large.clone(), 2),
            soc: SocConfig::paper_default(),
        },
        Scenario {
            // Same tenants through the transparent baseline: every line
            // probes the shared tag array, so this one is bounded by the
            // (shared) tag pass rather than the batched memory pass.
            name: "baseline_contention",
            policy: PolicyKind::SharedBaseline,
            workload: Workload::closed(large.clone(), 2),
            soc: SocConfig::paper_default(),
        },
        Scenario {
            name: "open_loop_poisson",
            policy: PolicyKind::CamdnFull,
            workload: open,
            soc: SocConfig::paper_default(),
        },
    ];
    // The tag-bound family: the contention workload re-diced across
    // set × way splits of the same 16 MiB footprint. Each ways count
    // monomorphizes a different tag-compare lane width, so a lane-level
    // regression is visible even when the 16-way headline number holds.
    for (name, ways) in [
        ("tag_bound_sweep_w4", 4u32),
        ("tag_bound_sweep_w8", 8),
        ("tag_bound_sweep_w16", 16),
    ] {
        v.push(Scenario {
            name,
            policy: PolicyKind::SharedBaseline,
            workload: Workload::closed(large.clone(), 2),
            soc: soc_with_ways(ways),
        });
    }
    v
}

/// Runs one scenario through both memory models, the legacy advance
/// loop, and the tag-pass-only diagnostic on the sweep executor (one
/// worker: the wall-clock numbers must not contend), returning
/// `(reference, batched, legacy_sched, tag_only_wall)` with per-cell
/// wall seconds.
type TimedRun = (RunOutput, f64);

fn run_quad(sc: &Scenario) -> (TimedRun, TimedRun, TimedRun, f64) {
    let mk = |reference, legacy, tag_only| {
        Simulation::builder()
            .soc(sc.soc)
            .policy(sc.policy)
            .workload(sc.workload.clone())
            .reference_model(reference)
            .legacy_scheduler(legacy)
            .tag_pass_only(tag_only)
    };
    // Reference (seed-equivalent per-line path) first, then the
    // batched component-clock loop, then the batched legacy loop, then
    // the batched tag pass alone (timings meaningless, wall real).
    let mut runs = run_cells(
        vec![
            mk(true, false, false),
            mk(false, false, false),
            mk(false, true, false),
            mk(false, false, true),
        ],
        Some(1),
    );
    let tag_only = runs.pop().expect("tag-only cell");
    let legacy = runs.pop().expect("legacy-scheduler cell");
    let fast = runs.pop().expect("batched cell");
    let reference = runs.pop().expect("reference cell");
    let unwrap = |name: &str, r: camdn_sweep::CellRun| match r.outcome {
        Ok(result) => (result, r.wall_s),
        Err(e) => panic!("{}: {} run failed: {e}", sc.name, name),
    };
    (
        unwrap("reference", reference),
        unwrap("batched", fast),
        unwrap("legacy-scheduler", legacy),
        unwrap("tag-only", tag_only).1,
    )
}

fn main() {
    let quick = quick_mode();
    let mut rows = Vec::new();
    for sc in scenarios(quick) {
        let ((r_ref, wall_ref), (r_fast, wall_fast), (r_legacy, wall_legacy), wall_tag) =
            run_quad(&sc);
        let identical = r_ref == r_fast && r_legacy == r_fast;
        assert!(
            r_ref == r_fast,
            "{}: batched result diverged from the reference model",
            sc.name
        );
        assert!(
            r_legacy == r_fast,
            "{}: component-clock scheduler diverged from the legacy advance loop",
            sc.name
        );
        // Tail stats cost O(bins) and are filled during aggregation:
        // every measured inference lands in the compact tail, at the
        // default detail level and bit-identically at summary-only.
        let tail = &r_fast.summary.latency_tail;
        assert_eq!(
            tail.total(),
            r_fast.summary.inferences as u64,
            "{}: latency tail must count every measured inference",
            sc.name
        );
        let summary_only = Simulation::builder()
            .soc(sc.soc)
            .policy(sc.policy)
            .workload(sc.workload.clone())
            .detail(camdn_runtime::DetailLevel::Summary)
            .run()
            .expect("summary-only run");
        assert_eq!(
            summary_only.summary, r_fast.summary,
            "{}: summary (incl. tail) must be bit-identical at every detail level",
            sc.name
        );
        let sim_cycles = camdn_common::types::ms_to_cycles(r_fast.summary.makespan_ms);
        let cps_fast = sim_cycles as f64 / wall_fast.max(1e-9);
        let cps_ref = sim_cycles as f64 / wall_ref.max(1e-9);
        let speedup = cps_fast / cps_ref.max(1e-9);
        // The scheduler refactor's cost: component-clock loop wall over
        // the retained legacy loop's, on the same batched memory model.
        // 1.0 is parity; CI guards a coarse ceiling on the tracked
        // scenarios.
        let sched_overhead = wall_fast / wall_legacy.max(1e-9);
        // The tag-only run replays a (behaviorally different) simulation
        // with the memory pass elided, so its wall over the batched wall
        // is an estimate, clamped into [0, 1] against clock noise.
        let tag_pass_frac = (wall_tag / wall_fast.max(1e-9)).clamp(0.0, 1.0);
        let lane_width = (sc.soc.cache.ways as usize).min(TAG_LANE_WIDTH);
        println!(
            "{:<24} {:>12} sim-cycles  batched {:>10.3e} cyc/s  reference {:>10.3e} cyc/s  speedup {:>5.2}x  tag-frac {:.2}  sched-overhead {:.2}",
            sc.name, sim_cycles, cps_fast, cps_ref, speedup, tag_pass_frac, sched_overhead
        );
        rows.push(format!(
            concat!(
                "    {{\n",
                "      \"name\": \"{}\",\n",
                "      \"policy\": \"{}\",\n",
                "      \"tasks\": {},\n",
                "      \"sim_cycles\": {},\n",
                "      \"wall_s_batched\": {:.6},\n",
                "      \"wall_s_reference\": {:.6},\n",
                "      \"wall_s_legacy_sched\": {:.6},\n",
                "      \"sched_overhead\": {:.3},\n",
                "      \"cycles_per_sec_batched\": {:.1},\n",
                "      \"cycles_per_sec_reference\": {:.1},\n",
                "      \"speedup\": {:.3},\n",
                "      \"tag_pass_frac\": {:.3},\n",
                "      \"tag_lane_width\": {},\n",
                "      \"results_identical\": {}\n",
                "    }}"
            ),
            sc.name,
            sc.policy.name(),
            r_fast.summary.tasks,
            sim_cycles,
            wall_fast,
            wall_ref,
            wall_legacy,
            sched_overhead,
            cps_fast,
            cps_ref,
            speedup,
            tag_pass_frac,
            lane_width,
            identical
        ));
    }
    let json = format!(
        "{{\n  \"schema\": \"camdn-bench-engine/1\",\n  \"quick\": {},\n  \"scenarios\": [\n{}\n  ]\n}}\n",
        quick,
        rows.join(",\n")
    );
    let out = std::env::var("CAMDN_BENCH_OUT").unwrap_or_else(|_| "BENCH_engine.json".into());
    std::fs::write(&out, json).expect("write BENCH_engine.json");
    println!("wrote {out}");
}
