//! Ablation studies beyond the paper's figures (DESIGN.md §7):
//!
//! 1. **Look-ahead sensitivity** — Algorithm 1 predicts availability
//!    `0.2 × T_est` ahead; sweep the factor.
//! 2. **Page-size sweep** — the CPT uses 32 KiB pages for a 16 MiB
//!    cache; smaller pages pack regions tighter but need bigger tables.
//! 3. **LBM contribution** — CaMDN(Full) vs the same system with LBM
//!    disabled (static policy semantics), isolating the layer-block
//!    mapping win that Fig. 7 attributes to MB/EF.

use camdn_bench::{cycling_workload, parallel_sims, print_table, quick_mode};
use camdn_common::SocConfig;
use camdn_mapper::MapperConfig;
use camdn_runtime::{PolicyKind, Simulation, Workload};

fn main() {
    let n = if quick_mode() { 4 } else { 8 };

    // --- 1. Look-ahead factor sweep -------------------------------
    let factors = [0.0, 0.1, 0.2, 0.5, 1.0];
    let mut rows = Vec::new();
    for &f in &factors {
        let r = Simulation::builder()
            .policy(PolicyKind::CamdnFull)
            .workload(Workload::closed(cycling_workload(n), 2))
            .lookahead(f)
            .run()
            .expect("lookahead run");
        rows.push(vec![
            format!("{f:.1}"),
            format!("{:.2}", r.avg_latency_ms),
            format!("{:.1}", r.mem_mb_per_model),
            format!("{:.3}", r.cache_hit_rate),
        ]);
    }
    print_table(
        "Ablation 1 — Algorithm 1 look-ahead factor (paper: 0.2)",
        &["factor", "avg latency (ms)", "MB/model", "hit rate"],
        &rows,
    );

    // --- 2. Cache page size sweep ----------------------------------
    let mut rows = Vec::new();
    for &kib in &[8u64, 16, 32, 64, 128] {
        let mut soc = SocConfig::paper_default();
        soc.cache.page_bytes = kib * 1024;
        let mut mapper = MapperConfig::paper_default();
        mapper.page_bytes = kib * 1024;
        let r = Simulation::builder()
            .policy(PolicyKind::CamdnFull)
            .soc(soc)
            .mapper(mapper)
            .workload(Workload::closed(cycling_workload(n), 2))
            .run()
            .expect("page-size run");
        let cpt_entries = soc.cache.total_bytes / soc.cache.page_bytes;
        rows.push(vec![
            format!("{kib} KiB"),
            format!("{:.2}", r.avg_latency_ms),
            format!("{:.1}", r.mem_mb_per_model),
            format!(
                "{} x 3B = {:.1} KiB",
                cpt_entries,
                cpt_entries as f64 * 3.0 / 1024.0
            ),
        ]);
    }
    print_table(
        "Ablation 2 — cache page size (paper: 32 KiB, 1.5 KiB CPT)",
        &["page", "avg latency (ms)", "MB/model", "CPT SRAM"],
        &rows,
    );

    // --- 3. LBM contribution ---------------------------------------
    let runs = vec![
        Simulation::builder()
            .policy(PolicyKind::CamdnHwOnly)
            .workload(Workload::closed(cycling_workload(n), 2)),
        Simulation::builder()
            .policy(PolicyKind::CamdnFull)
            .workload(Workload::closed(cycling_workload(n), 2)),
    ];
    let results = parallel_sims(runs);
    let mut rows = Vec::new();
    for r in &results {
        rows.push(vec![
            r.policy.clone(),
            format!("{:.2}", r.avg_latency_ms),
            format!("{:.1}", r.mem_mb_per_model),
        ]);
    }
    print_table(
        "Ablation 3 — dynamic allocation + LBM (Full) vs static LWM-only (HW-only)",
        &["system", "avg latency (ms)", "MB/model"],
        &rows,
    );
}
