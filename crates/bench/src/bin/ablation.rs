//! Ablation studies beyond the paper's figures (DESIGN.md §7):
//!
//! 1. **Look-ahead sensitivity** — Algorithm 1 predicts availability
//!    `0.2 × T_est` ahead; sweep the factor.
//! 2. **Page-size sweep** — the CPT uses 32 KiB pages for a 16 MiB
//!    cache; smaller pages pack regions tighter but need bigger tables.
//! 3. **LBM contribution** — CaMDN(Full) vs the same system with LBM
//!    disabled (static policy semantics), isolating the layer-block
//!    mapping win that Fig. 7 attributes to MB/EF.
//!
//! All three studies are axes of `Sweep::grid()`: the look-ahead
//! factor, the SoC (paired with its mapper for the page-size study)
//! and the policy.

use camdn_bench::{cycling_workload, print_table, quick_mode};
use camdn_common::SocConfig;
use camdn_mapper::MapperConfig;
use camdn_runtime::{PolicyKind, Workload};
use camdn_sweep::Sweep;

fn main() {
    let n = if quick_mode() { 4 } else { 8 };
    let workload = || Workload::closed(cycling_workload(n), 2);

    // --- 1. Look-ahead factor sweep -------------------------------
    let factors = [0.0, 0.1, 0.2, 0.5, 1.0];
    let grid = Sweep::grid()
        .policy(PolicyKind::CamdnFull)
        .lookaheads(factors)
        .workload("cycling", workload())
        .run()
        .expect("lookahead grid");
    let mut rows = Vec::new();
    for cell in &grid.cells {
        let r = &cell.outcome.as_ref().expect("lookahead run").summary;
        rows.push(vec![
            format!("{:.1}", factors[cell.coord.lookahead]),
            format!("{:.2}", r.avg_latency_ms),
            format!("{:.1}", r.mem_mb_per_model),
            format!("{:.3}", r.cache_hit_rate),
        ]);
    }
    print_table(
        "Ablation 1 — Algorithm 1 look-ahead factor (paper: 0.2)",
        &["factor", "avg latency (ms)", "MB/model", "hit rate"],
        &rows,
    );

    // --- 2. Cache page size sweep ----------------------------------
    // Page size changes the SoC *and* the mapper: the axis pairs them.
    let kibs = [8u64, 16, 32, 64, 128];
    let mut grid = Sweep::grid().policy(PolicyKind::CamdnFull);
    for &kib in &kibs {
        let mut soc = SocConfig::paper_default();
        soc.cache.page_bytes = kib * 1024;
        let mut mapper = MapperConfig::paper_default();
        mapper.page_bytes = kib * 1024;
        grid = grid.soc_with_mapper(format!("{kib}KiB"), soc, mapper);
    }
    let grid = grid
        .workload("cycling", workload())
        .run()
        .expect("page-size grid");
    let mut rows = Vec::new();
    for cell in &grid.cells {
        let r = &cell.outcome.as_ref().expect("page-size run").summary;
        let kib = kibs[cell.coord.soc];
        let cpt_entries = SocConfig::paper_default().cache.total_bytes / (kib * 1024);
        rows.push(vec![
            format!("{kib} KiB"),
            format!("{:.2}", r.avg_latency_ms),
            format!("{:.1}", r.mem_mb_per_model),
            format!(
                "{} x 3B = {:.1} KiB",
                cpt_entries,
                cpt_entries as f64 * 3.0 / 1024.0
            ),
        ]);
    }
    print_table(
        "Ablation 2 — cache page size (paper: 32 KiB, 1.5 KiB CPT)",
        &["page", "avg latency (ms)", "MB/model", "CPT SRAM"],
        &rows,
    );

    // --- 3. LBM contribution ---------------------------------------
    let grid = Sweep::grid()
        .policies([PolicyKind::CamdnHwOnly, PolicyKind::CamdnFull])
        .workload("cycling", workload())
        .run()
        .expect("lbm grid");
    let mut rows = Vec::new();
    for cell in &grid.cells {
        let r = cell.outcome.as_ref().expect("lbm run");
        rows.push(vec![
            r.policy.clone(),
            format!("{:.2}", r.summary.avg_latency_ms),
            format!("{:.1}", r.summary.mem_mb_per_model),
        ]);
    }
    print_table(
        "Ablation 3 — dynamic allocation + LBM (Full) vs static LWM-only (HW-only)",
        &["system", "avg latency (ms)", "MB/model"],
        &rows,
    );
}
