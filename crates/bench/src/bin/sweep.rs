//! Sweep harness: runs a fig8-style grid (policies × cache sizes ×
//! workloads) through `Sweep::grid()` twice — once with the shared
//! mapping-plan cache and once cold — asserts the two grids are
//! bit-for-bit identical, and records both wall times plus per-cell
//! results in `BENCH_sweep.json` (schema `camdn-bench-sweep/1`).
//!
//! Usage: `cargo run --release -p camdn-bench --bin sweep`
//!
//! * `CAMDN_QUICK=1` — reduced grid (CI smoke mode).
//! * `CAMDN_BENCH_OUT=<path>` — output path (default `BENCH_sweep.json`).

use camdn_bench::{cycling_workload, print_table, quick_mode};
use camdn_common::types::MIB;
use camdn_runtime::Workload;
use camdn_sweep::{Sweep, SweepBuilder};

fn grid(cache_mibs: &[u64], dnn_counts: &[usize], shared_cache: bool) -> SweepBuilder {
    Sweep::grid()
        .policies(camdn_bench::speedup_policies())
        .cache_bytes(cache_mibs.iter().map(|mb| mb * MIB))
        .workloads(
            dnn_counts
                .iter()
                .map(|&n| (format!("{n}dnn"), Workload::closed(cycling_workload(n), 2))),
        )
        .shared_plan_cache(shared_cache)
}

fn main() {
    let quick = quick_mode();
    let (cache_mibs, dnn_counts): (Vec<u64>, Vec<usize>) = if quick {
        (vec![8, 16], vec![4, 8])
    } else {
        (vec![4, 8, 16, 32, 64], vec![2, 4, 8, 16])
    };

    // Interleave shared/cold repetitions. Two statistics per mode:
    //
    // * the minimum total wall — the run least disturbed by whatever
    //   else the machine was doing;
    // * the sum of per-cell minimum walls — a *paired* comparison.
    //   Cell results (and therefore engine work) are bit-identical
    //   across modes, so after the per-cell minimum strips scheduler
    //   noise, the remaining difference is exactly the redundant
    //   mapping work the shared plan cache removes.
    let iterations = if quick { 1 } else { 2 };
    let mut shared: Option<camdn_sweep::SweepResult> = None;
    let mut cold: Option<camdn_sweep::SweepResult> = None;
    let mut wall_shared = f64::INFINITY;
    let mut wall_cold = f64::INFINITY;
    let mut cell_min_shared: Vec<f64> = Vec::new();
    let mut cell_min_cold: Vec<f64> = Vec::new();
    let fold_cells = |mins: &mut Vec<f64>, r: &camdn_sweep::SweepResult| {
        mins.resize(r.cells.len(), f64::INFINITY);
        for (m, c) in mins.iter_mut().zip(&r.cells) {
            *m = m.min(c.wall_s);
        }
    };
    for _ in 0..iterations {
        let s = grid(&cache_mibs, &dnn_counts, true)
            .run()
            .expect("shared-cache grid");
        wall_shared = wall_shared.min(s.wall_s);
        fold_cells(&mut cell_min_shared, &s);
        shared.get_or_insert(s);
        let c = grid(&cache_mibs, &dnn_counts, false)
            .run()
            .expect("cold grid");
        wall_cold = wall_cold.min(c.wall_s);
        fold_cells(&mut cell_min_cold, &c);
        cold.get_or_insert(c);
    }
    let (mut shared, cold) = (shared.expect("ran"), cold.expect("ran"));
    let cell_wall_shared: f64 = cell_min_shared.iter().sum();
    let cell_wall_cold: f64 = cell_min_cold.iter().sum();
    // The exported body must agree with the headline comparison: carry
    // the per-mode minima (grid total and per cell), not iteration 1's
    // noisy walls — recomputing the speedup from cells[] must
    // reproduce plan_cache_speedup.
    shared.wall_s = wall_shared;
    for (cell, &m) in shared.cells.iter_mut().zip(&cell_min_shared) {
        cell.wall_s = m;
    }

    // The shared plan cache must be invisible in the results.
    assert_eq!(shared.cells.len(), cold.cells.len());
    let identical = shared
        .cells
        .iter()
        .zip(&cold.cells)
        .all(|(a, b)| a.coord == b.coord && a.outcome == b.outcome);
    assert!(
        identical,
        "shared plan cache changed at least one cell's result"
    );
    assert_eq!(
        shared.ok_count(),
        shared.cells.len(),
        "fig8-style grid must have no error cells"
    );

    let speedup = cell_wall_cold / cell_wall_shared.max(1e-9);
    let stats = shared.plan_cache.expect("shared run keeps cache stats");
    let mut rows = Vec::new();
    for cell in &shared.cells {
        let c = &cell.coord;
        let r = &cell.outcome.as_ref().expect("checked above").summary;
        rows.push(vec![
            shared.axes.policies[c.policy].clone(),
            shared.axes.caches[c.cache].clone(),
            shared.axes.workloads[c.workload].clone(),
            format!("{:.2}", r.avg_latency_ms),
            format!("{:.1}", r.mem_mb_per_model),
            format!("{:.3}", cell.wall_s),
        ]);
    }
    print_table(
        "Sweep — fig8-style grid (shared mapping-plan cache)",
        &[
            "policy",
            "cache",
            "workload",
            "avg lat (ms)",
            "MB/model",
            "wall (s)",
        ],
        &rows,
    );
    println!(
        "\n{} cells on {} threads: total wall {:.2}s with the shared plan cache vs {:.2}s cold;",
        shared.cells.len(),
        shared.threads,
        wall_shared,
        wall_cold,
    );
    println!(
        "paired per-cell walls (min of {iterations}): {cell_wall_shared:.2}s shared vs {cell_wall_cold:.2}s cold = {speedup:.3}x from the plan cache;"
    );
    println!(
        "mapper solved {} model mappings (+{} ladder solves) and served {} model hits / {} ladder hits.",
        stats.model_misses, stats.layer_misses, stats.model_hits, stats.layer_hits
    );

    let json = format!(
        "{{\n  \"schema\": \"camdn-bench-sweep/1\",\n  \"name\": \"fig8_grid\",\n  \"quick\": {},\n  \
         \"comparison\": {{\"iterations\": {}, \"wall_s_shared_cache\": {:.6}, \"wall_s_cold\": {:.6}, \
         \"cell_wall_s_shared_cache\": {:.6}, \"cell_wall_s_cold\": {:.6}, \
         \"plan_cache_speedup\": {:.4}, \"results_identical\": {}}},\n{}\n}}\n",
        quick,
        iterations,
        wall_shared,
        wall_cold,
        cell_wall_shared,
        cell_wall_cold,
        speedup,
        identical,
        shared.json_body(2),
    );
    let out = std::env::var("CAMDN_BENCH_OUT").unwrap_or_else(|_| "BENCH_sweep.json".into());
    std::fs::write(&out, json).expect("write BENCH_sweep.json");
    println!("wrote {out}");
}
