//! Microbenchmark of `SharedCache::access_range` against the per-line
//! reference model across its three regimes: cold streaming (clean
//! victims, one giant miss run), warm re-reads (all hits), and dirty
//! churn (every miss evicts a dirty victim — the worst case for
//! batching, where the event tape degenerates to single-line runs).
//!
//! Usage: `cargo run --release -p camdn-bench --bin range_micro`

use camdn_cache::SharedCache;
use camdn_common::config::{CacheConfig, DramConfig};
use camdn_common::types::PhysAddr;
use camdn_dram::DramModel;
use std::time::Instant;

fn run(name: &str, is_write: bool, tenants: u64, passes: u64) {
    let ccfg = CacheConfig::paper_default();
    for reference in [true, false] {
        let mut c = SharedCache::new(&ccfg);
        let mut d = DramModel::new(DramConfig::paper_default(), 64);
        c.set_reference_model(reference);
        d.set_reference_model(reference);
        let mask = c.full_way_mask();
        let t0 = Instant::now();
        let mut now = 0;
        let mut lines = 0u64;
        for _ in 0..passes {
            for t in 0..tenants {
                let base = PhysAddr(t << 30);
                let out = c.access_range(now, base, 8 << 20, is_write, mask, &mut d);
                now = out.finish;
                lines += out.hits + out.misses;
            }
        }
        let dt = t0.elapsed().as_secs_f64();
        println!(
            "{name:<22} reference={reference}: {lines:>9} lines {dt:.3}s = {:.1} Mlines/s",
            lines as f64 / dt / 1e6
        );
    }
}

fn main() {
    run("cold_stream_16x8MB", false, 16, 3); // read streams, clean victims
    run("warm_hits_1x8MB", false, 1, 24); // fits the cache: hits after pass 1
    run("dirty_churn_16x8MB", true, 16, 3); // write streams, dirty victims
}
