//! Fig. 9: QoS — SLA satisfaction rate, system throughput (STP) and
//! fairness for MoCA, AuRORA and CaMDN at three deadline levels
//! (QoS-H = 0.8×, QoS-M = 1.0×, QoS-L = 1.2× the Table I targets).
//!
//! Paper result: CaMDN improves SLA rate, STP and fairness by 5.9×,
//! 2.5× and 3.0× on average over the baselines.

use camdn_bench::{isolated_latencies, print_table, qos_workload, quick_mode};
use camdn_runtime::{qos_metrics, DetailLevel, PolicyKind, QosMetrics, Workload};
use camdn_sweep::Sweep;

fn main() {
    let workload = qos_workload();
    let levels: Vec<(&str, f64)> = vec![("QoS-H", 0.8), ("QoS-M", 1.0), ("QoS-L", 1.2)];
    let policies = [PolicyKind::Moca, PolicyKind::Aurora, PolicyKind::CamdnFull];
    let rounds = if quick_mode() { 2 } else { 4 };

    // Isolated calibration for normalized progress, keyed by the task
    // abbreviation each run itself reports.
    let iso_map = isolated_latencies(PolicyKind::SharedBaseline).expect("isolated runs");
    let iso: Vec<f64> = workload.iter().map(|m| iso_map[&m.abbr]).collect();

    // One grid: policies × QoS levels, a single 8-tenant workload.
    let grid = Sweep::grid()
        .policies(policies)
        .qos_scales(levels.iter().map(|&(_, s)| s))
        .workload("qos8", Workload::closed(workload, rounds))
        .detail(DetailLevel::Tasks)
        .run()
        .expect("fig9 grid");

    // metrics[level][policy]
    let mut metrics: Vec<Vec<Option<QosMetrics>>> = vec![vec![None; policies.len()]; levels.len()];
    for cell in &grid.cells {
        let r = cell.outcome.as_ref().expect("fig9 cell");
        metrics[cell.coord.qos][cell.coord.policy] =
            Some(qos_metrics(r.tasks(), &iso).expect("one isolated latency per task"));
    }

    let mut rows = Vec::new();
    let mut improvements = [0.0f64; 3]; // SLA, STP, fairness (CaMDN / best baseline)
    for (li, (name, _)) in levels.iter().enumerate() {
        let m: Vec<QosMetrics> = (0..policies.len())
            .map(|pi| metrics[li][pi].expect("fig9 metric"))
            .collect();
        for (pi, p) in policies.iter().enumerate() {
            rows.push(vec![
                name.to_string(),
                p.label().to_string(),
                format!("{:.1}%", 100.0 * m[pi].sla_rate),
                format!("{:.2}", m[pi].stp),
                format!("{:.2}", m[pi].fairness),
            ]);
        }
        let base_sla = m[0].sla_rate.max(m[1].sla_rate).max(1e-3);
        let base_stp = m[0].stp.max(m[1].stp).max(1e-3);
        let base_fair = m[0].fairness.max(m[1].fairness).max(1e-3);
        improvements[0] += m[2].sla_rate / base_sla;
        improvements[1] += m[2].stp / base_stp;
        improvements[2] += m[2].fairness / base_fair;
    }
    print_table(
        "Fig. 9 — QoS comparison (8 tenants, 16 NPUs)",
        &["level", "policy", "SLA rate", "STP", "fairness"],
        &rows,
    );
    let n = levels.len() as f64;
    println!(
        "\nCaMDN vs best baseline, averaged over levels: SLA {:.2}x, STP {:.2}x, fairness {:.2}x",
        improvements[0] / n,
        improvements[1] / n,
        improvements[2] / n
    );
    println!("Paper (vs its baselines): SLA 5.9x, STP 2.5x, fairness 3.0x.");
}
