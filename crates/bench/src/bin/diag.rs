//! Diagnostic run: per-policy traffic breakdown (not a paper figure).

use camdn_bench::speedup_workload;
use camdn_runtime::{PolicyKind, Simulation, Workload};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(16);
    let mut workload = speedup_workload();
    workload.truncate(n);
    for p in [
        PolicyKind::SharedBaseline,
        PolicyKind::Aurora,
        PolicyKind::CamdnHwOnly,
        PolicyKind::CamdnFull,
    ] {
        let r = Simulation::builder()
            .policy(p)
            .workload(Workload::closed(workload.clone(), 2))
            .run()
            .expect("diag run");
        println!(
            "{:16} hit={:.3} avg_lat={:8.2}ms mem/model={:7.1}MB makespan={:8.1}ms mcast={:6.1}MB",
            p.label(),
            r.summary.cache_hit_rate,
            r.summary.avg_latency_ms,
            r.summary.mem_mb_per_model,
            r.summary.makespan_ms,
            r.summary.multicast_saved_mb
        );
        for t in r.tasks() {
            print!(
                "  {}={:.1}ms/{:.0}MB",
                t.abbr, t.mean_latency_ms, t.mean_dram_mb
            );
        }
        println!();
    }
}
