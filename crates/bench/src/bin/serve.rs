//! Serving bench: finds each policy's SLO-preserving maximum
//! sustainable rate on a heavy-tailed trace.
//!
//! For every policy, the bench generates the *same* seeded trace
//! (Zipf model popularity, Pareto inter-arrivals, diurnal rate curve)
//! at a ramp of offered rates, replays each through the windowed
//! replay driver, and reports the knee: the highest offered rate whose
//! overall SLA satisfaction still clears the target. Results go to
//! `BENCH_serve.json` (schema `camdn-bench-serve/1`).
//!
//! Usage: `cargo run --release -p camdn-bench --bin serve`
//!
//! * `CAMDN_QUICK=1` — reduced ramp and horizon (CI smoke mode).
//! * `CAMDN_BENCH_OUT=<path>` — output path (default `BENCH_serve.json`).

use camdn_bench::{print_table, quick_mode};
use camdn_runtime::PolicyKind;
use camdn_trace::{ReplayAggregate, ReplayConfig, ReplayDriver, TraceGen, TraceGenConfig};

/// A policy sustains a rate when at least this fraction of requests
/// meet their class-scaled QoS deadline over the whole trace.
const SLA_TARGET: f64 = 0.9;

/// Simulated-cycle budget per window, as a multiple of the window
/// span. Deep-overload cells used to be skipped with an ad-hoc
/// early-exit once a rate fell below the SLA knee (their queues — and
/// the epoch-rebalance work — grow without bound); the engine's cycle
/// budget now bounds each window instead, so every offered rate
/// terminates deterministically with a partial, `truncated`-flagged
/// summary.
const WINDOW_BUDGET_FACTOR: u64 = 32;

/// Cycles per trace microsecond (the engine clock runs at 1 GHz).
const CYCLES_PER_US: u64 = 1000;

struct Point {
    rate_per_s: f64,
    arrivals: u64,
    windows: u64,
    truncated_windows: u64,
    sla: f64,
    worst_window_sla: f64,
    p99_ms: f64,
    max_queue_depth: u32,
    wall_s: f64,
}

struct PolicyRamp {
    policy: PolicyKind,
    points: Vec<Point>,
    /// Highest offered rate with `sla >= SLA_TARGET`, if any.
    knee_rate_per_s: Option<f64>,
}

fn trace_config(rate_per_s: f64, horizon_s: f64) -> TraceGenConfig {
    TraceGenConfig {
        rate_per_s,
        horizon_s,
        ..TraceGenConfig::default()
    }
}

fn ramp_policy(
    driver: &mut ReplayDriver,
    policy: PolicyKind,
    rates: &[f64],
    horizon_s: f64,
) -> Result<PolicyRamp, camdn_trace::TraceError> {
    driver.set_policy(policy);
    let mut points = Vec::with_capacity(rates.len());
    for &rate in rates {
        let records = TraceGen::new(trace_config(rate, horizon_s))?.map(Ok);
        let mut agg = ReplayAggregate::new();
        let t0 = std::time::Instant::now();
        driver.replay(records, &mut agg)?;
        let sla = agg.sla_rate();
        points.push(Point {
            rate_per_s: rate,
            arrivals: agg.arrivals,
            windows: agg.windows,
            truncated_windows: agg.truncated_windows,
            sla,
            worst_window_sla: agg.worst_window_sla,
            p99_ms: agg.tail.p99_ms(),
            max_queue_depth: agg.max_queue_depth,
            wall_s: t0.elapsed().as_secs_f64(),
        });
    }
    let knee_rate_per_s = points
        .iter()
        .filter(|p| p.sla >= SLA_TARGET)
        .map(|p| p.rate_per_s)
        .fold(None, |acc: Option<f64>, r| {
            Some(acc.map_or(r, |a| a.max(r)))
        });
    Ok(PolicyRamp {
        policy,
        points,
        knee_rate_per_s,
    })
}

fn jopt(v: Option<f64>) -> String {
    v.map_or("null".into(), |x| format!("{x}"))
}

fn main() {
    if let Err(e) = run() {
        eprintln!("serve: {e}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let quick = quick_mode();
    let (rates, horizon_s, window_us): (Vec<f64>, f64, u64) = if quick {
        (vec![125.0, 500.0, 2_000.0], 0.1, 25_000)
    } else {
        (
            vec![125.0, 250.0, 500.0, 1_000.0, 2_000.0, 4_000.0],
            0.5,
            100_000,
        )
    };

    // One driver for the whole ramp: the shared mapping-plan cache
    // makes every policy after the first map each (model, class) pair
    // for free. The per-window cycle budget bounds deep-overload
    // cells; their windows surface as `truncated` partial summaries.
    let mut cfg = ReplayConfig::new(PolicyKind::ALL[0], window_us);
    cfg.max_cycles_per_window = Some(WINDOW_BUDGET_FACTOR * window_us * CYCLES_PER_US);
    let mut driver = ReplayDriver::new(cfg)?;

    let ramps: Vec<PolicyRamp> = PolicyKind::ALL
        .iter()
        .map(|&p| ramp_policy(&mut driver, p, &rates, horizon_s))
        .collect::<Result<_, _>>()?;

    let mut rows = Vec::new();
    for ramp in &ramps {
        for p in &ramp.points {
            rows.push(vec![
                ramp.policy.label().to_string(),
                format!("{:.0}", p.rate_per_s),
                p.arrivals.to_string(),
                format!("{:.4}", p.sla),
                format!("{:.4}", p.worst_window_sla),
                format!("{:.3}", p.p99_ms),
                p.max_queue_depth.to_string(),
                p.truncated_windows.to_string(),
            ]);
        }
    }
    print_table(
        "Serve — SLA vs offered rate (Zipf + Pareto + diurnal trace)",
        &[
            "policy",
            "rate (req/s)",
            "arrivals",
            "SLA",
            "worst window",
            "p99 (ms)",
            "max queue",
            "trunc win",
        ],
        &rows,
    );
    println!("\nSLO-preserving max sustainable rate (SLA >= {SLA_TARGET}):");
    for ramp in &ramps {
        match ramp.knee_rate_per_s {
            Some(r) => println!("  {:<12} {r:.0} req/s", ramp.policy.label()),
            None => println!("  {:<12} below {:.0} req/s", ramp.policy.label(), rates[0]),
        }
    }

    let policies_json: Vec<String> = ramps
        .iter()
        .map(|ramp| {
            let points: Vec<String> = ramp
                .points
                .iter()
                .map(|p| {
                    format!(
                        "        {{\"rate_per_s\": {}, \"arrivals\": {}, \"windows\": {}, \
                         \"truncated_windows\": {}, \
                         \"sla\": {:.6}, \"worst_window_sla\": {:.6}, \"p99_ms\": {:.6}, \
                         \"max_queue_depth\": {}, \"wall_s\": {:.4}}}",
                        p.rate_per_s,
                        p.arrivals,
                        p.windows,
                        p.truncated_windows,
                        p.sla,
                        p.worst_window_sla,
                        p.p99_ms,
                        p.max_queue_depth,
                        p.wall_s,
                    )
                })
                .collect();
            format!(
                "    {{\"policy\": \"{}\", \"knee_rate_per_s\": {}, \"points\": [\n{}\n      ]}}",
                ramp.policy.name(),
                jopt(ramp.knee_rate_per_s),
                points.join(",\n"),
            )
        })
        .collect();
    let base = trace_config(0.0, horizon_s);
    let json = format!(
        "{{\n  \"schema\": \"camdn-bench-serve/1\",\n  \"quick\": {},\n  \
         \"sla_target\": {},\n  \"window_us\": {},\n  \
         \"trace\": {{\"seed\": {}, \"tenants\": {}, \"zipf_s\": {}, \"pareto_alpha\": {}, \
         \"diurnal_amplitude\": {}, \"diurnal_period_s\": {}, \"horizon_s\": {}}},\n  \
         \"policies\": [\n{}\n  ]\n}}\n",
        quick,
        SLA_TARGET,
        window_us,
        base.seed,
        base.tenants,
        base.zipf_s,
        base.pareto_alpha,
        base.diurnal_amplitude,
        base.diurnal_period_s,
        base.horizon_s,
        policies_json.join(",\n"),
    );
    let out = std::env::var("CAMDN_BENCH_OUT").unwrap_or_else(|_| "BENCH_serve.json".into());
    std::fs::write(&out, json)?;
    println!("wrote {out}");
    Ok(())
}
