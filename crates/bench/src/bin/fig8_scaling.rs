//! Fig. 8: scaling — average model latency and memory access for the
//! baseline (AuRORA), CaMDN(HW-only) and CaMDN(Full), sweeping (a) the
//! shared-cache capacity 4→64 MiB at 8 co-located DNNs, and (b) the
//! number of co-located DNNs 1→16 at 16 MiB.
//!
//! Paper result: CaMDN(Full) cuts latency by 34.3–42.3 % and memory
//! access by 16.0–37.7 % across scales, with larger caches helping more.

use camdn_bench::{cycling_workload, print_table, quick_mode, speedup_policies};
use camdn_common::types::MIB;
use camdn_runtime::{RunOutput, Workload};
use camdn_sweep::SweepBuilder;

/// Runs a policies × points grid and prints the two Fig. 8 tables. The
/// point axis is either the cache axis or the workload axis — the
/// caller sets one of them on `grid`; `point` maps a cell coordinate
/// back to its point index.
fn sweep(
    title: &str,
    labels: &[String],
    grid: SweepBuilder,
    point: fn(&camdn_sweep::CellCoord) -> usize,
) {
    let n_policies = speedup_policies().len();
    let grid = grid.policies(speedup_policies()).run().expect("fig8 grid");

    // results[point][policy]
    let mut results: Vec<Vec<Option<&RunOutput>>> = vec![vec![None; n_policies]; labels.len()];
    for cell in &grid.cells {
        results[point(&cell.coord)][cell.coord.policy] =
            Some(cell.outcome.as_ref().expect("fig8 cell"));
    }

    let mut lat_rows = Vec::new();
    let mut mem_rows = Vec::new();
    for (i, label) in labels.iter().enumerate() {
        let (base, hw, full) = (
            results[i][0].expect("aurora cell"),
            results[i][1].expect("hw-only cell"),
            results[i][2].expect("full cell"),
        );
        let (base, hw, full) = (&base.summary, &hw.summary, &full.summary);
        let lat_red = 100.0 * (1.0 - full.avg_latency_ms / base.avg_latency_ms.max(1e-9));
        let mem_red = 100.0 * (1.0 - full.mem_mb_per_model / base.mem_mb_per_model.max(1e-9));
        lat_rows.push(vec![
            label.clone(),
            format!("{:.2}", base.avg_latency_ms),
            format!("{:.2}", hw.avg_latency_ms),
            format!("{:.2}", full.avg_latency_ms),
            format!("-{lat_red:.1}%"),
        ]);
        mem_rows.push(vec![
            label.clone(),
            format!("{:.1}", base.mem_mb_per_model),
            format!("{:.1}", hw.mem_mb_per_model),
            format!("{:.1}", full.mem_mb_per_model),
            format!("-{mem_red:.1}%"),
        ]);
    }
    print_table(
        &format!("{title} — average latency (ms)"),
        &[
            "scale",
            "AuRORA",
            "CaMDN(HW-only)",
            "CaMDN(Full)",
            "reduction",
        ],
        &lat_rows,
    );
    print_table(
        &format!("{title} — memory access (MB/model)"),
        &[
            "scale",
            "AuRORA",
            "CaMDN(HW-only)",
            "CaMDN(Full)",
            "reduction",
        ],
        &mem_rows,
    );
}

fn main() {
    let cache_points: Vec<u64> = if quick_mode() {
        vec![8, 16]
    } else {
        vec![4, 8, 16, 32, 64]
    };
    let dnn_points: Vec<usize> = if quick_mode() {
        vec![4, 8]
    } else {
        vec![1, 2, 4, 8, 16]
    };

    sweep(
        "Fig. 8(a) — cache capacity sweep (8 DNNs)",
        &cache_points
            .iter()
            .map(|mb| format!("{mb}MB"))
            .collect::<Vec<_>>(),
        camdn_sweep::Sweep::grid()
            .cache_bytes(cache_points.iter().map(|mb| mb * MIB))
            .workload("8dnn", Workload::closed(cycling_workload(8), 2)),
        |c| c.cache,
    );
    sweep(
        "Fig. 8(b) — co-located DNN sweep (16 MiB cache)",
        &dnn_points
            .iter()
            .map(|n| format!("{n} DNNs"))
            .collect::<Vec<_>>(),
        camdn_sweep::Sweep::grid()
            .cache_bytes([16 * MIB])
            .workloads(
                dnn_points
                    .iter()
                    .map(|&n| (format!("{n}dnn"), Workload::closed(cycling_workload(n), 2))),
            ),
        |c| c.workload,
    );
    println!("\nPaper: latency -34.3%..-42.3%, memory access -16.0%..-37.7%.");
}
