//! Fig. 8: scaling — average model latency and memory access for the
//! baseline (AuRORA), CaMDN(HW-only) and CaMDN(Full), sweeping (a) the
//! shared-cache capacity 4→64 MiB at 8 co-located DNNs, and (b) the
//! number of co-located DNNs 1→16 at 16 MiB.
//!
//! Paper result: CaMDN(Full) cuts latency by 34.3–42.3 % and memory
//! access by 16.0–37.7 % across scales, with larger caches helping more.

use camdn_bench::{cycling_workload, parallel_sims, print_table, quick_mode, speedup_policies};
use camdn_common::types::MIB;
use camdn_runtime::{PolicyKind, Simulation, Workload};

fn sweep(title: &str, configs: Vec<(String, u64, usize)>) {
    // (label, cache bytes, #DNNs) per point, x 3 policies.
    let mut runs = Vec::new();
    for &(_, cache, n) in &configs {
        for p in speedup_policies() {
            runs.push(
                Simulation::builder()
                    .policy(p)
                    .soc(camdn_common::SocConfig::paper_default().with_cache_bytes(cache))
                    .workload(Workload::closed(cycling_workload(n), 2)),
            );
        }
    }
    let results = parallel_sims(runs);

    let mut lat_rows = Vec::new();
    let mut mem_rows = Vec::new();
    for (i, (label, _, _)) in configs.iter().enumerate() {
        let base = &results[3 * i];
        let hw = &results[3 * i + 1];
        let full = &results[3 * i + 2];
        let lat_red = 100.0 * (1.0 - full.avg_latency_ms / base.avg_latency_ms.max(1e-9));
        let mem_red = 100.0 * (1.0 - full.mem_mb_per_model / base.mem_mb_per_model.max(1e-9));
        lat_rows.push(vec![
            label.clone(),
            format!("{:.2}", base.avg_latency_ms),
            format!("{:.2}", hw.avg_latency_ms),
            format!("{:.2}", full.avg_latency_ms),
            format!("-{lat_red:.1}%"),
        ]);
        mem_rows.push(vec![
            label.clone(),
            format!("{:.1}", base.mem_mb_per_model),
            format!("{:.1}", hw.mem_mb_per_model),
            format!("{:.1}", full.mem_mb_per_model),
            format!("-{mem_red:.1}%"),
        ]);
    }
    print_table(
        &format!("{title} — average latency (ms)"),
        &[
            "scale",
            "AuRORA",
            "CaMDN(HW-only)",
            "CaMDN(Full)",
            "reduction",
        ],
        &lat_rows,
    );
    print_table(
        &format!("{title} — memory access (MB/model)"),
        &[
            "scale",
            "AuRORA",
            "CaMDN(HW-only)",
            "CaMDN(Full)",
            "reduction",
        ],
        &mem_rows,
    );
}

fn main() {
    let cache_points: Vec<u64> = if quick_mode() {
        vec![8, 16]
    } else {
        vec![4, 8, 16, 32, 64]
    };
    let dnn_points: Vec<usize> = if quick_mode() {
        vec![4, 8]
    } else {
        vec![1, 2, 4, 8, 16]
    };

    sweep(
        "Fig. 8(a) — cache capacity sweep (8 DNNs)",
        cache_points
            .iter()
            .map(|&mb| (format!("{mb}MB"), mb * MIB, 8))
            .collect(),
    );
    sweep(
        "Fig. 8(b) — co-located DNN sweep (16 MiB cache)",
        dnn_points
            .iter()
            .map(|&n| (format!("{n} DNNs"), 16 * MIB, n))
            .collect(),
    );
    println!("\nPaper: latency -34.3%..-42.3%, memory access -16.0%..-37.7%.");
    let _ = PolicyKind::CamdnFull;
}
