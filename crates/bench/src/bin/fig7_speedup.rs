//! Fig. 7: model-wise speedup of CaMDN over AuRORA.
//!
//! 16 tenants (two instances of each Table I model) on the Table II SoC,
//! all NPUs busy, closed loop. Paper result: CaMDN(Full) reaches up to
//! 2.56× and 1.88× on average; CaMDN(Full) beats CaMDN(HW-only) by
//! 1.18× on average; memory access drops by 33.4% on average.

use camdn_bench::{
    dram_by_model, latency_by_model, print_table, quick_mode, speedup_policies, speedup_workload,
};
use camdn_runtime::{DetailLevel, Workload};
use camdn_sweep::Sweep;

fn main() {
    let mut workload = speedup_workload();
    let mut rounds = 3;
    if quick_mode() {
        workload.truncate(8);
        rounds = 2;
    }

    let grid = Sweep::grid()
        .policies(speedup_policies())
        .workload("16tenant", Workload::closed(workload, rounds))
        .detail(DetailLevel::Tasks)
        .run()
        .expect("fig7 grid");
    let results: Vec<_> = grid
        .cells
        .iter()
        .map(|c| c.outcome.as_ref().expect("fig7 cell"))
        .collect();
    let (aurora, hw_only, full) = (results[0], results[1], results[2]);

    let base_lat = latency_by_model(aurora.tasks());
    let hw_lat = latency_by_model(hw_only.tasks());
    let full_lat = latency_by_model(full.tasks());
    let base_mem = dram_by_model(aurora.tasks());
    let full_mem = dram_by_model(full.tasks());

    let abbrs: Vec<String> = camdn_models::zoo::all()
        .iter()
        .map(|m| m.abbr.clone())
        .filter(|a| base_lat.contains_key(a))
        .collect();
    let mut rows = Vec::new();
    let mut hw_speedups = Vec::new();
    let mut full_speedups = Vec::new();
    let mut mem_reductions = Vec::new();
    for a in &abbrs {
        let s_hw = base_lat[a] / hw_lat[a];
        let s_full = base_lat[a] / full_lat[a];
        let mem_red = 100.0 * (1.0 - full_mem[a] / base_mem[a].max(1e-9));
        hw_speedups.push(s_hw);
        full_speedups.push(s_full);
        mem_reductions.push(mem_red);
        rows.push(vec![
            a.clone(),
            "1.00".into(),
            format!("{s_hw:.2}"),
            format!("{s_full:.2}"),
            format!("{mem_red:.1}%"),
        ]);
    }
    rows.push(vec![
        "GMean".into(),
        "1.00".into(),
        format!("{:.2}", camdn_bench::geomean(&hw_speedups)),
        format!("{:.2}", camdn_bench::geomean(&full_speedups)),
        format!(
            "{:.1}%",
            mem_reductions.iter().sum::<f64>() / mem_reductions.len() as f64
        ),
    ]);
    print_table(
        "Fig. 7 — model-wise speedup over AuRORA (16 co-located DNNs)",
        &[
            "Model",
            "AuRORA",
            "CaMDN(HW-only)",
            "CaMDN(Full)",
            "MemAccess vs AuRORA",
        ],
        &rows,
    );
    let max_full = full_speedups.iter().cloned().fold(0.0f64, f64::max);
    println!("\nPaper: up to 2.56x, average 1.88x; Full/HW-only ratio 1.18x; mem access -33.4%.");
    println!(
        "Here : up to {:.2}x, geomean {:.2}x; Full/HW-only ratio {:.2}x.",
        max_full,
        camdn_bench::geomean(&full_speedups),
        camdn_bench::geomean(&full_speedups) / camdn_bench::geomean(&hw_speedups)
    );
}
