//! Fig. 3: reuse-count and reuse-distance statistics of the benchmark
//! models on the shared cache (the workload analysis that motivates
//! bypassing and NPU-controlled retention).
//!
//! Paper result: on average 68.0 % of data has no future reuse; 61.8 %
//! of intermediate data has reuse distances above 1 MiB and 47.9 %
//! above 2 MiB.

use camdn_analysis::profile_zoo;
use camdn_bench::print_table;
use camdn_mapper::MapperConfig;

fn main() {
    let rows = profile_zoo(&MapperConfig::paper_default());

    let count_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|p| {
            std::iter::once(p.abbr.clone())
                .chain(
                    p.count_fractions
                        .iter()
                        .map(|f| format!("{:.1}%", 100.0 * f)),
                )
                .collect()
        })
        .collect();
    print_table(
        "Fig. 3(a) — % of data by reuse count",
        &["Model", "1", "2-4", "5-8", ">=9"],
        &count_rows,
    );

    let dist_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|p| {
            std::iter::once(p.abbr.clone())
                .chain(
                    p.distance_fractions
                        .iter()
                        .map(|f| format!("{:.1}%", 100.0 * f)),
                )
                .collect()
        })
        .collect();
    print_table(
        "Fig. 3(b) — % of intermediate data by reuse distance",
        &["Model", "<=1MB", "1-2MB", "2-4MB", ">4MB"],
        &dist_rows,
    );

    let avg = rows.last().expect("profile_zoo appends the Avg row");
    println!(
        "\nAvg no-reuse fraction: {:.1}% (paper: 68.0%)",
        100.0 * avg.no_reuse_fraction
    );
    println!(
        "Avg intermediates beyond 1 MiB: {:.1}% (paper: 61.8%); beyond 2 MiB: {:.1}% (paper: 47.9%)",
        100.0 * avg.far_fraction,
        100.0 * (avg.distance_fractions[2] + avg.distance_fractions[3])
    );
}
