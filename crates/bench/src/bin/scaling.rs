//! Scaling studies on top of the streaming sweep subsystem (the
//! ROADMAP's heavy-traffic item):
//!
//! 1. **Poisson rate ramp** — open-loop traffic at rising request
//!    rates, multiple seeds per cell, folded into mean ± 95% CI by
//!    [`SeedAggregate`]; reports each policy's *knee* (the first rate
//!    whose mean response time exceeds 2× its low-rate latency). The
//!    ramp grid is streamed to a `camdn-sweep-cells/1` JSONL log, so a
//!    killed run resumes via `Sweep::grid()...resume(path)`.
//! 2. **256 co-located tenants** — `cycling_workload(256)` through the
//!    three speedup policies, summary-only cells (memory stays flat no
//!    matter the tenant count).
//! 3. **SoC design space** — NPU count × cache capacity under
//!    CaMDN(Full) vs the shared baseline.
//!
//! Usage: `cargo run --release -p camdn-bench --bin scaling`
//!
//! * `CAMDN_QUICK=1` — reduced grids (CI smoke mode).
//! * `CAMDN_BENCH_OUT=<path>` — JSON output (default `BENCH_scaling.json`).
//! * `CAMDN_SCALING_CELLS=<path>` — rate-ramp cell log
//!   (default `BENCH_scaling_cells.jsonl`).
//! * `CAMDN_SCALING_RESUME=1` — keep an existing cell log and resume
//!   the ramp from it (default: start fresh by deleting the log).

use camdn_bench::{cycling_workload, print_table, quick_mode, speedup_policies};
use camdn_common::types::MIB;
use camdn_common::SocConfig;
use camdn_models::zoo;
use camdn_runtime::Workload;
use camdn_sweep::{SeedStats, Sweep, SweepResult};
use std::fmt::Write as _;

/// Latency multiple over the lowest-rate mean that marks the knee.
const KNEE_FACTOR: f64 = 2.0;

struct RampPoint {
    policy: String,
    rate: f64,
    stats: SeedStats,
}

fn rate_ramp(quick: bool, cells_path: &str) -> (SweepResult, Vec<RampPoint>, Vec<(String, f64)>) {
    let (rates, seeds, horizon_ms): (Vec<f64>, Vec<u64>, f64) = if quick {
        (vec![0.02, 0.08], vec![1, 2], 40.0)
    } else {
        (
            vec![0.01, 0.02, 0.04, 0.08, 0.16],
            vec![1, 2, 3, 4, 5],
            120.0,
        )
    };
    let models = if quick {
        vec![zoo::mobilenet_v2(), zoo::efficientnet_b0()]
    } else {
        zoo::all()
    };
    let grid = Sweep::grid()
        .policies(speedup_policies())
        .workloads(rates.iter().map(|&r| {
            (
                format!("poisson@{r}"),
                Workload::poisson(models.clone(), r, horizon_ms),
            )
        }))
        .seeds(seeds)
        .resume(cells_path)
        .expect("rate-ramp grid");
    assert_eq!(
        grid.ok_count(),
        grid.cells.len(),
        "ramp must have no errors"
    );

    let stats = grid.seed_stats();
    let mut points = Vec::new();
    for s in &stats {
        points.push(RampPoint {
            policy: grid.axes.policies[s.coord.policy].clone(),
            rate: rates[s.coord.workload],
            stats: *s,
        });
    }

    // Knee per policy: the first rate whose mean latency exceeds
    // KNEE_FACTOR x the lowest-rate mean (response time includes
    // queueing, so saturation shows up as a latency blow-up).
    let mut knees = Vec::new();
    for policy in &grid.axes.policies {
        let series: Vec<&RampPoint> = points
            .iter()
            .filter(|p| grid.axes.policies[p.stats.coord.policy] == *policy)
            .collect();
        let base = series
            .iter()
            .find(|p| p.stats.coord.workload == 0)
            .map(|p| p.stats.avg_latency_ms.mean)
            .unwrap_or(0.0);
        let knee = series
            .iter()
            .find(|p| p.stats.avg_latency_ms.mean > KNEE_FACTOR * base)
            .map(|p| p.rate)
            .unwrap_or(f64::INFINITY);
        knees.push((policy.clone(), knee));
    }
    (grid, points, knees)
}

fn tenants_study(quick: bool) -> SweepResult {
    let n = if quick { 32 } else { 256 };
    Sweep::grid()
        .policies(speedup_policies())
        .workload(
            format!("{n}tenant"),
            Workload::closed(cycling_workload(n), 2),
        )
        .run()
        .expect("tenant grid")
}

fn soc_grid(quick: bool) -> SweepResult {
    let (npus, cache_mibs): (Vec<u32>, Vec<u64>) = if quick {
        (vec![4, 16], vec![8, 32])
    } else {
        (vec![2, 4, 8, 16, 32], vec![4, 8, 16, 32, 64])
    };
    let mut grid = Sweep::grid().policies([
        camdn_runtime::PolicyKind::SharedBaseline,
        camdn_runtime::PolicyKind::CamdnFull,
    ]);
    for &cores in &npus {
        let mut soc = SocConfig::paper_default();
        soc.npu.cores = cores;
        grid = grid.soc(format!("{cores}npu"), soc);
    }
    grid.cache_bytes(cache_mibs.iter().map(|mb| mb * MIB))
        .workload("8dnn", Workload::closed(cycling_workload(8), 2))
        .run()
        .expect("soc grid")
}

fn main() {
    let quick = quick_mode();
    let cells_path =
        std::env::var("CAMDN_SCALING_CELLS").unwrap_or_else(|_| "BENCH_scaling_cells.jsonl".into());
    // A fresh invocation starts a fresh ramp; a kill mid-grid leaves
    // the log resumable by re-running the binary with the log intact.
    if std::env::var("CAMDN_SCALING_RESUME").map_or(true, |v| v.trim() == "0") {
        std::fs::remove_file(&cells_path).ok();
    }

    // --- 1. Poisson rate ramp -------------------------------------
    let (ramp, points, knees) = rate_ramp(quick, &cells_path);
    let mut rows = Vec::new();
    for p in &points {
        rows.push(vec![
            p.policy.clone(),
            format!("{}", p.rate),
            format!(
                "{:.2} ± {:.2}",
                p.stats.avg_latency_ms.mean, p.stats.avg_latency_ms.ci95
            ),
            format!("{:.2}", p.stats.avg_latency_ms.stddev),
            format!("{}", p.stats.n),
        ]);
    }
    print_table(
        "Scaling 1 — Poisson rate ramp (mean response ± 95% CI over seeds)",
        &["policy", "req/ms/task", "latency (ms)", "stddev", "seeds"],
        &rows,
    );
    for (policy, knee) in &knees {
        if knee.is_finite() {
            println!("{policy}: knee at {knee} req/ms/task (> {KNEE_FACTOR}x low-rate latency)");
        } else {
            println!("{policy}: no knee inside the swept rates");
        }
    }

    // --- 2. 256 co-located tenants --------------------------------
    let tenants = tenants_study(quick);
    let mut rows = Vec::new();
    for cell in &tenants.cells {
        let r = cell.outcome.as_ref().expect("tenant cell");
        rows.push(vec![
            r.policy.clone(),
            format!("{}", r.summary.tasks),
            format!("{:.2}", r.summary.avg_latency_ms),
            format!("{:.1}", r.summary.mem_mb_per_model),
            format!("{:.3}", r.summary.cache_hit_rate),
            format!("{:.1}", r.summary.makespan_ms),
        ]);
    }
    print_table(
        "Scaling 2 — co-located tenants (summary-only cells)",
        &[
            "policy",
            "tenants",
            "avg lat (ms)",
            "MB/model",
            "hit rate",
            "makespan (ms)",
        ],
        &rows,
    );

    // --- 3. NPU count x cache size --------------------------------
    let soc = soc_grid(quick);
    let mut rows = Vec::new();
    for cell in &soc.cells {
        let r = cell.outcome.as_ref().expect("soc cell");
        rows.push(vec![
            soc.axes.policies[cell.coord.policy].clone(),
            soc.axes.socs[cell.coord.soc].clone(),
            soc.axes.caches[cell.coord.cache].clone(),
            format!("{:.2}", r.summary.avg_latency_ms),
            format!("{:.1}", r.summary.mem_mb_per_model),
        ]);
    }
    print_table(
        "Scaling 3 — SoC design space (NPU count x cache size, 8 DNNs)",
        &["policy", "NPUs", "cache", "avg lat (ms)", "MB/model"],
        &rows,
    );

    // --- BENCH_scaling.json ---------------------------------------
    let mut ramp_json = String::new();
    for (i, p) in points.iter().enumerate() {
        let m = &p.stats.avg_latency_ms;
        let _ = write!(
            ramp_json,
            "{}      {{\"policy\": \"{}\", \"rate_per_ms\": {}, \"seeds\": {}, \
             \"mean_latency_ms\": {:.6}, \"stddev_ms\": {:.6}, \"ci95_ms\": {:.6}, \
             \"mean_mem_mb\": {:.6}}}",
            if i == 0 { "" } else { ",\n" },
            p.policy,
            p.rate,
            p.stats.n,
            m.mean,
            m.stddev,
            m.ci95,
            p.stats.mem_mb_per_model.mean,
        );
    }
    let knees_json: Vec<String> = knees
        .iter()
        .map(|(policy, knee)| {
            format!(
                "{{\"policy\": \"{policy}\", \"knee_rate_per_ms\": {}}}",
                if knee.is_finite() {
                    format!("{knee}")
                } else {
                    "null".into()
                }
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"schema\": \"camdn-bench-scaling/1\",\n  \"quick\": {},\n  \
         \"rate_ramp\": {{\n    \"cells_log\": \"{}\",\n    \"knees\": [{}],\n    \"points\": [\n{}\n    ],\n{}\n  }},\n  \
         \"tenants\": {{\n{}\n  }},\n  \"soc_grid\": {{\n{}\n  }}\n}}\n",
        quick,
        cells_path,
        knees_json.join(", "),
        ramp_json,
        ramp.json_body(4),
        tenants.json_body(4),
        soc.json_body(4),
    );
    let out = std::env::var("CAMDN_BENCH_OUT").unwrap_or_else(|_| "BENCH_scaling.json".into());
    std::fs::write(&out, json).expect("write BENCH_scaling.json");
    println!("\nwrote {out} (+ cell log {cells_path})");
}
