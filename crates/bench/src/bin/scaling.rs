//! Scaling studies on top of the streaming sweep subsystem (the
//! ROADMAP's heavy-traffic item), now with tail-latency analytics:
//!
//! 1. **Poisson rate ramp** — open-loop traffic at rising request
//!    rates, multiple seeds per cell, folded into mean ± 95% CI by
//!    `SeedAggregate`, which also pools the per-seed latency
//!    histograms so p99s come from the pooled samples; reports each
//!    policy's *knee* on both the mean and the p99 (the first rate
//!    whose statistic exceeds 2× its low-rate value). The ramp grid is
//!    streamed to a `camdn-sweep-cells/3` JSONL log, so a killed run
//!    resumes via `Sweep::grid()...resume(path)`.
//! 2. **Bursty ramp to the knee** — `bursty_ramp` workloads of rising
//!    burst length under QoS deadlines; reports each policy's p99 knee
//!    and SLA knee (the first intensity whose SLA satisfaction falls
//!    below 90%) — mean latency hides exactly these spikes.
//! 3. **256 co-located tenants** — `cycling_workload(256)` through the
//!    three speedup policies, summary-only cells (memory stays flat no
//!    matter the tenant count — tail percentiles included).
//! 4. **SoC design space** — NPU count × cache capacity × DRAM channel
//!    count under CaMDN(Full) vs the shared baseline.
//!
//! Usage: `cargo run --release -p camdn-bench --bin scaling`
//!
//! * `CAMDN_QUICK=1` — reduced grids (CI smoke mode).
//! * `CAMDN_BENCH_OUT=<path>` — JSON output (default `BENCH_scaling.json`).
//! * `CAMDN_SCALING_CELLS=<path>` — rate-ramp cell log
//!   (default `BENCH_scaling_cells.jsonl`).
//! * `CAMDN_SCALING_RESUME=1` — keep an existing cell log and resume
//!   the ramp from it (default: start fresh by deleting the log).

use camdn_bench::{cycling_workload, env_flag, print_table, quick_mode, speedup_policies};
use camdn_common::types::MIB;
use camdn_common::SocConfig;
use camdn_models::zoo;
use camdn_runtime::Workload;
use camdn_sweep::{bursty_ramp, SeedStats, Sweep, SweepResult};
use std::fmt::Write as _;

/// Multiple over the lowest-intensity statistic that marks a latency
/// knee (mean or p99).
const KNEE_FACTOR: f64 = 2.0;

/// SLA satisfaction rate below which the bursty ramp calls the knee.
const SLA_KNEE_RATE: f64 = 0.9;

struct RampPoint {
    policy: String,
    /// The ramped intensity: requests/ms/task (Poisson) or burst
    /// length (bursty).
    intensity: f64,
    stats: SeedStats,
}

/// Per-policy knee intensities of one ramp (infinite = no knee inside
/// the swept range).
struct Knees {
    policy: String,
    mean: f64,
    p99: f64,
    sla: f64,
}

/// Extracts per-policy ramp points (seed-folded) and knees from a
/// ramp-shaped grid whose workload axis carries the intensities.
fn fold_ramp(grid: &SweepResult, intensities: &[f64]) -> (Vec<RampPoint>, Vec<Knees>) {
    let stats = grid.seed_stats();
    let mut points = Vec::new();
    let mut empty_tails = 0usize;
    for s in &stats {
        if s.n > 0 && s.latency_tail.total() == 0 {
            empty_tails += 1;
        }
        points.push(RampPoint {
            policy: grid.axes.policies[s.coord.policy].clone(),
            intensity: intensities[s.coord.workload],
            stats: *s,
        });
    }
    if empty_tails > 0 {
        eprintln!(
            "scaling: {empty_tails} ramp point(s) have no latency-tail samples \
             (cells resumed from a pre-tail camdn-sweep-cells/1 log?); their \
             percentiles read 0.0 and take no part in p99 knees — delete the \
             cell log to re-measure"
        );
    }
    // Knee per policy and per statistic: the first intensity whose
    // value exceeds KNEE_FACTOR x the lowest-intensity value (for
    // latencies; response time includes queueing, so saturation shows
    // up as a blow-up), or drops below SLA_KNEE_RATE (for SLA).
    let mut knees = Vec::new();
    for policy in &grid.axes.policies {
        let series: Vec<&RampPoint> = points
            .iter()
            .filter(|p| grid.axes.policies[p.stats.coord.policy] == *policy)
            .collect();
        let knee_of = |metric: &dyn Fn(&RampPoint) -> f64| {
            let base = series
                .iter()
                .find(|p| p.stats.coord.workload == 0)
                .map(|p| metric(p))
                .unwrap_or(0.0);
            // Without a positive baseline the knee criterion is
            // meaningless (e.g. p99s zeroed by cells resumed from a
            // pre-tail v1 log): report "no knee" rather than flagging
            // the first point with any measurement.
            if base.is_nan() || base <= 0.0 {
                return f64::INFINITY;
            }
            series
                .iter()
                .find(|p| metric(p) > KNEE_FACTOR * base)
                .map(|p| p.intensity)
                .unwrap_or(f64::INFINITY)
        };
        knees.push(Knees {
            policy: policy.clone(),
            mean: knee_of(&|p: &RampPoint| p.stats.avg_latency_ms.mean),
            p99: knee_of(&|p: &RampPoint| p.stats.latency_tail.p99_ms()),
            sla: series
                .iter()
                .find(|p| p.stats.sla_rate.mean < SLA_KNEE_RATE)
                .map(|p| p.intensity)
                .unwrap_or(f64::INFINITY),
        });
    }
    (points, knees)
}

fn rate_ramp(quick: bool, cells_path: &str) -> (SweepResult, Vec<RampPoint>, Vec<Knees>) {
    let (rates, seeds, horizon_ms): (Vec<f64>, Vec<u64>, f64) = if quick {
        (vec![0.02, 0.08], vec![1, 2], 40.0)
    } else {
        (
            vec![0.01, 0.02, 0.04, 0.08, 0.16],
            vec![1, 2, 3, 4, 5],
            120.0,
        )
    };
    let models = if quick {
        vec![zoo::mobilenet_v2(), zoo::efficientnet_b0()]
    } else {
        zoo::all()
    };
    let grid = Sweep::grid()
        .policies(speedup_policies())
        .workloads(rates.iter().map(|&r| {
            (
                format!("poisson@{r}"),
                Workload::poisson(models.clone(), r, horizon_ms),
            )
        }))
        .seeds(seeds)
        .resume(cells_path)
        .expect("rate-ramp grid");
    assert_eq!(
        grid.ok_count(),
        grid.cells.len(),
        "ramp must have no errors"
    );
    let (points, knees) = fold_ramp(&grid, &rates);
    (grid, points, knees)
}

fn bursty_knee(quick: bool) -> (SweepResult, Vec<RampPoint>, Vec<Knees>) {
    let (burst_lens, seeds): (Vec<u32>, Vec<u64>) = if quick {
        (vec![1, 4], vec![1, 2])
    } else {
        (vec![1, 2, 4, 8, 16], vec![1, 2, 3])
    };
    let models = if quick {
        vec![zoo::mobilenet_v2(), zoo::efficientnet_b0()]
    } else {
        zoo::all()
    };
    let bursts = if quick { 2 } else { 3 };
    let grid = Sweep::grid()
        .policies(speedup_policies())
        .workloads(bursty_ramp(&models, burst_lens.clone(), bursts, 20.0))
        // QoS-M deadlines: the SLA knee needs deadlines to miss.
        .qos_scales([1.0])
        .seeds(seeds)
        .run()
        .expect("bursty-ramp grid");
    assert_eq!(
        grid.ok_count(),
        grid.cells.len(),
        "bursty ramp must have no errors"
    );
    let intensities: Vec<f64> = burst_lens.iter().map(|&l| f64::from(l)).collect();
    let (points, knees) = fold_ramp(&grid, &intensities);
    (grid, points, knees)
}

fn tenants_study(quick: bool) -> SweepResult {
    let n = if quick { 32 } else { 256 };
    Sweep::grid()
        .policies(speedup_policies())
        .workload(
            format!("{n}tenant"),
            Workload::closed(cycling_workload(n), 2),
        )
        .run()
        .expect("tenant grid")
}

fn soc_grid(quick: bool) -> SweepResult {
    let (npus, cache_mibs, channels): (Vec<u32>, Vec<u64>, Vec<u32>) = if quick {
        (vec![4, 16], vec![8, 32], vec![4, 8])
    } else {
        (vec![2, 4, 8, 16, 32], vec![4, 8, 16, 32], vec![2, 4, 8])
    };
    let mut grid = Sweep::grid().policies([
        camdn_runtime::PolicyKind::SharedBaseline,
        camdn_runtime::PolicyKind::CamdnFull,
    ]);
    for &cores in &npus {
        let mut soc = SocConfig::paper_default();
        soc.npu.cores = cores;
        grid = grid.soc(format!("{cores}npu"), soc);
    }
    grid.cache_bytes(cache_mibs.iter().map(|mb| mb * MIB))
        .channel_counts(channels)
        .workload("8dnn", Workload::closed(cycling_workload(8), 2))
        .run()
        .expect("soc grid")
}

/// Ramp points table: intensity, mean ± CI, pooled p95/p99, SLA.
fn ramp_rows(points: &[RampPoint]) -> Vec<Vec<String>> {
    points
        .iter()
        .map(|p| {
            vec![
                p.policy.clone(),
                format!("{}", p.intensity),
                format!(
                    "{:.2} ± {:.2}",
                    p.stats.avg_latency_ms.mean, p.stats.avg_latency_ms.ci95
                ),
                format!("{:.2}", p.stats.latency_tail.p95_ms()),
                format!("{:.2}", p.stats.latency_tail.p99_ms()),
                format!("{:.3}", p.stats.sla_rate.mean),
                format!("{}", p.stats.n),
            ]
        })
        .collect()
}

const RAMP_HEADERS: [&str; 7] = [
    "policy",
    "intensity",
    "mean latency (ms)",
    "p95 (ms)",
    "p99 (ms)",
    "SLA",
    "seeds",
];

fn print_knees(kind: &str, unit: &str, knees: &[Knees]) {
    for k in knees {
        let show = |v: f64| {
            if v.is_finite() {
                format!("{v} {unit}")
            } else {
                "none in range".into()
            }
        };
        println!(
            "{}: {kind} knees — mean {}, p99 {}, SLA<{SLA_KNEE_RATE} {}",
            k.policy,
            show(k.mean),
            show(k.p99),
            show(k.sla),
        );
    }
}

/// Ramp points + knees as JSON object members (`"points"`, `"knees"`).
fn ramp_json(points: &[RampPoint], knees: &[Knees], intensity_key: &str) -> String {
    let mut body = String::new();
    for (i, p) in points.iter().enumerate() {
        let m = &p.stats.avg_latency_ms;
        let t = &p.stats.latency_tail;
        let _ = write!(
            body,
            "{}      {{\"policy\": \"{}\", \"{intensity_key}\": {}, \"seeds\": {}, \
             \"mean_latency_ms\": {:.6}, \"stddev_ms\": {:.6}, \"ci95_ms\": {:.6}, \
             \"p50_ms\": {:.6}, \"p95_ms\": {:.6}, \"p99_ms\": {:.6}, \"p999_ms\": {:.6}, \
             \"sla_rate\": {:.6}, \"mean_mem_mb\": {:.6}}}",
            if i == 0 { "" } else { ",\n" },
            p.policy,
            p.intensity,
            p.stats.n,
            m.mean,
            m.stddev,
            m.ci95,
            t.p50_ms(),
            t.p95_ms(),
            t.p99_ms(),
            t.p999_ms(),
            p.stats.sla_rate.mean,
            p.stats.mem_mb_per_model.mean,
        );
    }
    let jknee = |v: f64| {
        if v.is_finite() {
            format!("{v}")
        } else {
            "null".into()
        }
    };
    let knees_json: Vec<String> = knees
        .iter()
        .map(|k| {
            format!(
                "{{\"policy\": \"{}\", \"mean_knee\": {}, \"p99_knee\": {}, \"sla_knee\": {}}}",
                k.policy,
                jknee(k.mean),
                jknee(k.p99),
                jknee(k.sla),
            )
        })
        .collect();
    format!(
        "\"knees\": [{}],\n    \"points\": [\n{}\n    ]",
        knees_json.join(", "),
        body
    )
}

fn main() {
    let quick = quick_mode();
    let cells_path =
        std::env::var("CAMDN_SCALING_CELLS").unwrap_or_else(|_| "BENCH_scaling_cells.jsonl".into());
    // A fresh invocation starts a fresh ramp; a kill mid-grid leaves
    // the log resumable by re-running the binary with the log intact.
    if !env_flag("CAMDN_SCALING_RESUME") {
        std::fs::remove_file(&cells_path).ok();
    }

    // --- 1. Poisson rate ramp -------------------------------------
    let (ramp, points, knees) = rate_ramp(quick, &cells_path);
    print_table(
        "Scaling 1 — Poisson rate ramp (mean ± 95% CI; p95/p99 pooled over seeds)",
        &RAMP_HEADERS,
        &ramp_rows(&points),
    );
    print_knees("rate", "req/ms/task", &knees);

    // --- 2. Bursty ramp to the knee -------------------------------
    let (bursty, bursty_points, bursty_knees) = bursty_knee(quick);
    print_table(
        "Scaling 2 — bursty ramp under QoS-M deadlines (burst length ramps)",
        &RAMP_HEADERS,
        &ramp_rows(&bursty_points),
    );
    print_knees("burst-length", "req/burst", &bursty_knees);

    // --- 3. co-located tenants ------------------------------------
    let tenants = tenants_study(quick);
    let mut rows = Vec::new();
    for cell in &tenants.cells {
        let r = cell.outcome.as_ref().expect("tenant cell");
        rows.push(vec![
            r.policy.clone(),
            format!("{}", r.summary.tasks),
            format!("{:.2}", r.summary.avg_latency_ms),
            format!("{:.2}", r.summary.latency_tail.p99_ms()),
            format!("{:.1}", r.summary.mem_mb_per_model),
            format!("{:.3}", r.summary.cache_hit_rate),
            format!("{:.1}", r.summary.makespan_ms),
        ]);
    }
    print_table(
        "Scaling 3 — co-located tenants (summary-only cells, tail included)",
        &[
            "policy",
            "tenants",
            "avg lat (ms)",
            "p99 (ms)",
            "MB/model",
            "hit rate",
            "makespan (ms)",
        ],
        &rows,
    );

    // --- 4. NPU count x cache size x DRAM channels ----------------
    let soc = soc_grid(quick);
    let mut rows = Vec::new();
    for cell in &soc.cells {
        let r = cell.outcome.as_ref().expect("soc cell");
        rows.push(vec![
            soc.axes.policies[cell.coord.policy].clone(),
            soc.axes.socs[cell.coord.soc].clone(),
            soc.axes.caches[cell.coord.cache].clone(),
            soc.axes.channels[cell.coord.channel].clone(),
            format!("{:.2}", r.summary.avg_latency_ms),
            format!("{:.2}", r.summary.latency_tail.p99_ms()),
            format!("{:.1}", r.summary.mem_mb_per_model),
        ]);
    }
    print_table(
        "Scaling 4 — SoC design space (NPU x cache x channels, 8 DNNs)",
        &[
            "policy",
            "NPUs",
            "cache",
            "channels",
            "avg lat (ms)",
            "p99 (ms)",
            "MB/model",
        ],
        &rows,
    );

    // --- BENCH_scaling.json ---------------------------------------
    let json = format!(
        "{{\n  \"schema\": \"camdn-bench-scaling/2\",\n  \"quick\": {},\n  \
         \"rate_ramp\": {{\n    \"cells_log\": \"{}\",\n    {},\n{}\n  }},\n  \
         \"bursty_ramp\": {{\n    \"qos_scale\": 1.0, \"sla_knee_rate\": {},\n    {},\n{}\n  }},\n  \
         \"tenants\": {{\n{}\n  }},\n  \"soc_grid\": {{\n{}\n  }}\n}}\n",
        quick,
        cells_path,
        ramp_json(&points, &knees, "rate_per_ms"),
        ramp.json_body(4),
        SLA_KNEE_RATE,
        ramp_json(&bursty_points, &bursty_knees, "burst_len"),
        bursty.json_body(4),
        tenants.json_body(4),
        soc.json_body(4),
    );
    let out = std::env::var("CAMDN_BENCH_OUT").unwrap_or_else(|_| "BENCH_scaling.json".into());
    std::fs::write(&out, json).expect("write BENCH_scaling.json");
    println!("\nwrote {out} (+ cell log {cells_path})");
}
