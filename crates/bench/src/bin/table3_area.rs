//! Table III: area breakdown of the CaMDN architecture at 45 nm,
//! produced by the calibrated analytical area model (substituting for
//! the paper's Synopsys DC + OpenRAM flow).
//!
//! Paper result: the CPT contributes 0.9 % of an NPU's area, the NEC
//! 0.3 % of a cache slice — the architecture is a negligible add-on.

use camdn_analysis::{area_breakdown, AreaModel};
use camdn_bench::print_table;
use camdn_common::config::{CacheConfig, NpuConfig};

fn main() {
    let b = area_breakdown(
        &NpuConfig::paper_default(),
        &CacheConfig::paper_default(),
        &AreaModel::calibrated_45nm(),
    );

    let fmt = |rows: &[camdn_analysis::AreaRow]| -> Vec<Vec<String>> {
        rows.iter()
            .map(|r| {
                vec![
                    r.component.clone(),
                    format!("{:.0}k", r.area_um2 / 1000.0),
                    format!("{:.1}%", r.percent),
                ]
            })
            .collect()
    };
    print_table(
        "Table III — NPU area breakdown (45 nm)",
        &["Component", "Area(um^2)", "%"],
        &fmt(&b.npu),
    );
    print_table(
        "Table III — cache slice area breakdown (45 nm)",
        &["Component", "Area(um^2)", "%"],
        &fmt(&b.slice),
    );
    println!(
        "\nCPT share of NPU: {:.2}% (paper 0.9%); NEC share of slice: {:.2}% (paper 0.3%)",
        b.cpt_percent(),
        b.nec_percent()
    );
    println!("Paper totals: NPU 7905k um^2, slice 24676k um^2.");
}
