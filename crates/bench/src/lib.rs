//! Experiment harness: shared helpers for regenerating every table and
//! figure of the CaMDN paper.
//!
//! Each `fig*`/`table*` binary in `src/bin/` reproduces one artifact:
//!
//! | Binary | Paper artifact |
//! |---|---|
//! | `fig2_motivation` | Fig. 2: hit rate / memory access / latency vs #DNNs × cache size |
//! | `fig3_reuse` | Fig. 3: reuse counts and reuse distances |
//! | `fig7_speedup` | Fig. 7: model-wise speedup over AuRORA |
//! | `fig8_scaling` | Fig. 8: latency & memory access across scales |
//! | `fig9_qos` | Fig. 9: SLA / STP / fairness at QoS-H/M/L |
//! | `table3_area` | Table III: area breakdown |
//!
//! Set `CAMDN_QUICK=1` to run reduced sweeps (used by CI and the
//! Criterion wrappers).

#![warn(missing_docs)]

use camdn_models::Model;
use camdn_runtime::{PolicyKind, RunResult, Simulation, SimulationBuilder, Workload};
use std::collections::HashMap;

/// True when the `CAMDN_QUICK` environment variable requests reduced
/// sweeps.
pub fn quick_mode() -> bool {
    std::env::var("CAMDN_QUICK")
        .map(|v| v != "0")
        .unwrap_or(false)
}

/// The standard N-tenant workload: cycle the Table I zoo models.
pub fn cycling_workload(n: usize) -> Vec<Model> {
    let zoo = camdn_models::zoo::all();
    (0..n).map(|i| zoo[i % zoo.len()].clone()).collect()
}

/// The 16-tenant speedup workload of Section IV-A4: two instances of
/// each Table I model, one per NPU.
pub fn speedup_workload() -> Vec<Model> {
    let zoo = camdn_models::zoo::all();
    let mut v = Vec::with_capacity(16);
    for m in &zoo {
        v.push(m.clone());
    }
    for m in &zoo {
        v.push(m.clone());
    }
    v
}

/// The 8-tenant QoS workload: one instance of each Table I model on the
/// 16-NPU SoC (AuRORA-style multi-NPU allocation has headroom).
pub fn qos_workload() -> Vec<Model> {
    camdn_models::zoo::all()
}

/// Runs every model alone under `policy` (closed loop, no QoS) and
/// returns its mean isolated latency (ms) keyed by abbreviation. Used
/// for STP/fairness.
pub fn isolated_latencies(policy: PolicyKind) -> HashMap<String, f64> {
    let mut out = HashMap::new();
    for m in camdn_models::zoo::all() {
        let r = Simulation::builder()
            .policy(policy)
            .workload(Workload::closed(vec![m.clone()], 2))
            .run()
            .expect("isolated run");
        out.insert(m.abbr.clone(), r.tasks[0].mean_latency_ms);
    }
    out
}

/// Mean latency per model abbreviation over the tasks of a run.
pub fn latency_by_model(result: &RunResult) -> HashMap<String, f64> {
    let mut sums: HashMap<String, (f64, u32)> = HashMap::new();
    for t in &result.tasks {
        let e = sums.entry(t.abbr.clone()).or_insert((0.0, 0));
        e.0 += t.mean_latency_ms;
        e.1 += 1;
    }
    sums.into_iter()
        .map(|(k, (s, n))| (k, s / f64::from(n)))
        .collect()
}

/// Mean DRAM MB per model abbreviation over the tasks of a run.
pub fn dram_by_model(result: &RunResult) -> HashMap<String, f64> {
    let mut sums: HashMap<String, (f64, u32)> = HashMap::new();
    for t in &result.tasks {
        let e = sums.entry(t.abbr.clone()).or_insert((0.0, 0));
        e.0 += t.mean_dram_mb;
        e.1 += 1;
    }
    sums.into_iter()
        .map(|(k, (s, n))| (k, s / f64::from(n)))
        .collect()
}

/// Builds and runs several simulations in parallel threads (each
/// engine is single-threaded and independent), preserving input order.
///
/// # Panics
///
/// Panics when any builder fails to build or a run reports an
/// [`EngineError`](camdn_runtime::EngineError).
pub fn parallel_sims(builders: Vec<SimulationBuilder>) -> Vec<RunResult> {
    let n = builders.len();
    let jobs: Vec<std::sync::Mutex<Option<SimulationBuilder>>> = builders
        .into_iter()
        .map(|b| std::sync::Mutex::new(Some(b)))
        .collect();
    let slots: Vec<std::sync::Mutex<Option<RunResult>>> =
        (0..n).map(|_| std::sync::Mutex::new(None)).collect();
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4);
    let next = std::sync::atomic::AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..threads.min(n) {
            s.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let b = jobs[i]
                    .lock()
                    .expect("job lock poisoned")
                    .take()
                    .expect("job taken once");
                let r = b.run().expect("simulation failed");
                *slots[i].lock().expect("slot lock poisoned") = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .expect("slot lock poisoned")
                .expect("every slot filled")
        })
        .collect()
}

/// Runs several engine configurations in parallel threads.
#[deprecated(
    since = "0.2.0",
    note = "use `parallel_sims` with `SimulationBuilder`s"
)]
#[allow(deprecated)]
pub fn parallel_runs(configs: Vec<(camdn_runtime::EngineConfig, Vec<Model>)>) -> Vec<RunResult> {
    parallel_sims(
        configs
            .into_iter()
            .map(|(cfg, models)| {
                let mut b = Simulation::builder()
                    .policy(cfg.policy)
                    .soc(cfg.soc)
                    .seed(cfg.seed)
                    .workload(Workload::closed(models, cfg.rounds_per_task))
                    .warmup_rounds(cfg.warmup_rounds)
                    .epoch_cycles(cfg.epoch_cycles)
                    .mapper(cfg.mapper);
                if let Some(scale) = cfg.qos_scale {
                    b = b.qos_scale(scale);
                }
                b
            })
            .collect(),
    )
}

/// Prints a simple aligned table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: Vec<String>| {
        let s: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths.get(i).copied().unwrap_or(8)))
            .collect();
        println!("{}", s.join("  "));
    };
    line(headers.iter().map(|h| h.to_string()).collect());
    for row in rows {
        line(row.clone());
    }
}

/// The geometric-mean helper re-exported for the binaries.
pub fn geomean(values: &[f64]) -> f64 {
    camdn_common::stats::geomean(values)
}

/// Standard policy set of the speedup/scaling experiments.
pub fn speedup_policies() -> [PolicyKind; 3] {
    [
        PolicyKind::Aurora,
        PolicyKind::CamdnHwOnly,
        PolicyKind::CamdnFull,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_have_expected_shapes() {
        assert_eq!(speedup_workload().len(), 16);
        assert_eq!(qos_workload().len(), 8);
    }

    #[test]
    fn parallel_sims_preserve_order() {
        let models = vec![camdn_models::zoo::mobilenet_v2()];
        let mk = |seed| {
            Simulation::builder()
                .policy(PolicyKind::SharedBaseline)
                .seed(seed)
                .warmup_rounds(0)
                .workload(Workload::closed(models.clone(), 1))
        };
        let res = parallel_sims(vec![mk(1), mk(2), mk(1)]);
        assert_eq!(res.len(), 3);
        assert_eq!(res[0], res[2], "same seed must give identical results");
    }
}
