//! Experiment harness: shared helpers for regenerating every table and
//! figure of the CaMDN paper.
//!
//! Each `fig*`/`table*` binary in `src/bin/` reproduces one artifact:
//!
//! | Binary | Paper artifact |
//! |---|---|
//! | `fig2_motivation` | Fig. 2: hit rate / memory access / latency vs #DNNs × cache size |
//! | `fig3_reuse` | Fig. 3: reuse counts and reuse distances |
//! | `fig7_speedup` | Fig. 7: model-wise speedup over AuRORA |
//! | `fig8_scaling` | Fig. 8: latency & memory access across scales |
//! | `fig9_qos` | Fig. 9: SLA / STP / fairness at QoS-H/M/L |
//! | `table3_area` | Table III: area breakdown |
//!
//! Set `CAMDN_QUICK=1` to run reduced sweeps (used by CI and the
//! Criterion wrappers).

#![warn(missing_docs)]

use camdn_models::Model;
use camdn_runtime::{simulate, EngineConfig, PolicyKind, RunResult};
use std::collections::HashMap;

/// True when the `CAMDN_QUICK` environment variable requests reduced
/// sweeps.
pub fn quick_mode() -> bool {
    std::env::var("CAMDN_QUICK").map(|v| v != "0").unwrap_or(false)
}

/// The 16-tenant speedup workload of Section IV-A4: two instances of
/// each Table I model, one per NPU.
pub fn speedup_workload() -> Vec<Model> {
    let zoo = camdn_models::zoo::all();
    let mut v = Vec::with_capacity(16);
    for m in &zoo {
        v.push(m.clone());
    }
    for m in &zoo {
        v.push(m.clone());
    }
    v
}

/// The 8-tenant QoS workload: one instance of each Table I model on the
/// 16-NPU SoC (AuRORA-style multi-NPU allocation has headroom).
pub fn qos_workload() -> Vec<Model> {
    camdn_models::zoo::all()
}

/// Runs every model alone under `policy` and returns its mean isolated
/// latency (ms) keyed by abbreviation. Used for STP/fairness.
pub fn isolated_latencies(base_cfg: &EngineConfig) -> HashMap<String, f64> {
    let mut out = HashMap::new();
    for m in camdn_models::zoo::all() {
        let cfg = EngineConfig {
            rounds_per_task: 2,
            warmup_rounds: 1,
            qos_scale: None,
            ..base_cfg.clone()
        };
        let r = simulate(cfg, &[m.clone()]);
        out.insert(m.abbr.clone(), r.tasks[0].mean_latency_ms);
    }
    out
}

/// Mean latency per model abbreviation over the tasks of a run.
pub fn latency_by_model(result: &RunResult) -> HashMap<String, f64> {
    let mut sums: HashMap<String, (f64, u32)> = HashMap::new();
    for t in &result.tasks {
        let e = sums.entry(t.abbr.clone()).or_insert((0.0, 0));
        e.0 += t.mean_latency_ms;
        e.1 += 1;
    }
    sums.into_iter()
        .map(|(k, (s, n))| (k, s / f64::from(n)))
        .collect()
}

/// Mean DRAM MB per model abbreviation over the tasks of a run.
pub fn dram_by_model(result: &RunResult) -> HashMap<String, f64> {
    let mut sums: HashMap<String, (f64, u32)> = HashMap::new();
    for t in &result.tasks {
        let e = sums.entry(t.abbr.clone()).or_insert((0.0, 0));
        e.0 += t.mean_dram_mb;
        e.1 += 1;
    }
    sums.into_iter()
        .map(|(k, (s, n))| (k, s / f64::from(n)))
        .collect()
}

/// Runs several engine configurations in parallel threads (each engine
/// is single-threaded and independent).
pub fn parallel_runs(configs: Vec<(EngineConfig, Vec<Model>)>) -> Vec<RunResult> {
    let n = configs.len();
    let mut results: Vec<Option<RunResult>> = Vec::with_capacity(n);
    results.resize_with(n, || None);
    let slots: Vec<parking_lot::Mutex<Option<RunResult>>> =
        (0..n).map(|_| parking_lot::Mutex::new(None)).collect();
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4);
    let next = std::sync::atomic::AtomicUsize::new(0);
    crossbeam::scope(|s| {
        for _ in 0..threads.min(n) {
            s.spawn(|_| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let (cfg, models) = &configs[i];
                let r = simulate(cfg.clone(), models);
                *slots[i].lock() = Some(r);
            });
        }
    })
    .expect("worker thread panicked");
    slots
        .into_iter()
        .map(|s| s.into_inner().expect("every slot filled"))
        .collect()
}

/// Prints a simple aligned table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: Vec<String>| {
        let s: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths.get(i).copied().unwrap_or(8)))
            .collect();
        println!("{}", s.join("  "));
    };
    line(headers.iter().map(|h| h.to_string()).collect());
    for row in rows {
        line(row.clone());
    }
}

/// The geometric-mean helper re-exported for the binaries.
pub fn geomean(values: &[f64]) -> f64 {
    camdn_common::stats::geomean(values)
}

/// Standard policy set of the speedup/scaling experiments.
pub fn speedup_policies() -> [PolicyKind; 3] {
    [
        PolicyKind::Aurora,
        PolicyKind::CamdnHwOnly,
        PolicyKind::CamdnFull,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_have_expected_shapes() {
        assert_eq!(speedup_workload().len(), 16);
        assert_eq!(qos_workload().len(), 8);
    }

    #[test]
    fn parallel_runs_preserve_order() {
        let models = vec![camdn_models::zoo::mobilenet_v2()];
        let mk = |seed| EngineConfig {
            seed,
            rounds_per_task: 1,
            warmup_rounds: 0,
            ..EngineConfig::speedup(PolicyKind::SharedBaseline)
        };
        let res = parallel_runs(vec![
            (mk(1), models.clone()),
            (mk(2), models.clone()),
            (mk(1), models.clone()),
        ]);
        assert_eq!(res.len(), 3);
        assert_eq!(res[0], res[2], "same seed must give identical results");
    }
}
