//! Experiment harness: shared helpers for regenerating every table and
//! figure of the CaMDN paper.
//!
//! Each `fig*`/`table*` binary in `src/bin/` reproduces one artifact:
//!
//! | Binary | Paper artifact |
//! |---|---|
//! | `fig2_motivation` | Fig. 2: hit rate / memory access / latency vs #DNNs × cache size |
//! | `fig3_reuse` | Fig. 3: reuse counts and reuse distances |
//! | `fig7_speedup` | Fig. 7: model-wise speedup over AuRORA |
//! | `fig8_scaling` | Fig. 8: latency & memory access across scales |
//! | `fig9_qos` | Fig. 9: SLA / STP / fairness at QoS-H/M/L |
//! | `table3_area` | Table III: area breakdown |
//! | `sweep` | fig8-style grid through `Sweep::grid()` → `BENCH_sweep.json` |
//! | `scaling` | rate ramp / tenant / SoC scaling studies → `BENCH_scaling.json` |
//! | `throughput` | engine throughput, batched vs reference → `BENCH_engine.json` |
//! | `serve` | trace-driven rate ramp → per-policy SLO knee → `BENCH_serve.json` |
//!
//! Set `CAMDN_QUICK=1` to run reduced sweeps (used by CI and the
//! Criterion wrappers); see [`quick_mode`] for the accepted values.
//!
//! Grid-shaped experiments run through the
//! [`camdn_sweep`](../camdn_sweep/index.html) subsystem
//! (`Sweep::grid()`), which fans cells out over a thread pool, shares
//! one mapping-plan cache across the grid, and surfaces per-cell
//! errors without aborting the sweep. The `sweep` binary records a
//! fig8-style grid (with and without the shared cache) in
//! `BENCH_sweep.json`.

#![warn(missing_docs)]
#![deny(deprecated)]

use camdn_models::Model;
use camdn_runtime::{
    EngineError, PolicyKind, Simulation, SimulationBuilder, TaskSummary, Workload,
};
use std::collections::HashMap;

/// True when the `CAMDN_QUICK` environment variable requests reduced
/// sweeps.
///
/// Falsy values (case-insensitive, surrounding whitespace ignored):
/// unset, empty, `0`, `false`, `no`, `off`. Every other value —
/// `1`, `true`, `yes`, `on`, … — enables quick mode. The old parser
/// treated anything but the literal `"0"` as enabled, so
/// `CAMDN_QUICK=false` silently ran *reduced* sweeps.
pub fn quick_mode() -> bool {
    env_flag("CAMDN_QUICK")
}

/// True when the environment variable `name` holds a truthy value.
///
/// The single boolean-flag parse shared by every bench binary
/// (`CAMDN_QUICK`, `CAMDN_SCALING_RESUME`, …),
/// so `FLAG=false` means the same thing everywhere. Falsy
/// (case-insensitive, surrounding whitespace ignored): unset, empty,
/// `0`, `false`, `no`, `off`; everything else is truthy.
pub fn env_flag(name: &str) -> bool {
    std::env::var(name)
        .map(|v| env_flag_truthy(&v))
        .unwrap_or(false)
}

/// Truthy/falsy parse behind [`env_flag`].
fn env_flag_truthy(value: &str) -> bool {
    !matches!(
        value.trim().to_ascii_lowercase().as_str(),
        "" | "0" | "false" | "no" | "off"
    )
}

/// The standard N-tenant workload: cycle the Table I zoo models.
pub fn cycling_workload(n: usize) -> Vec<Model> {
    let zoo = camdn_models::zoo::all();
    (0..n).map(|i| zoo[i % zoo.len()].clone()).collect()
}

/// The 16-tenant speedup workload of Section IV-A4: two instances of
/// each Table I model, one per NPU.
pub fn speedup_workload() -> Vec<Model> {
    let zoo = camdn_models::zoo::all();
    let mut v = Vec::with_capacity(16);
    for m in &zoo {
        v.push(m.clone());
    }
    for m in &zoo {
        v.push(m.clone());
    }
    v
}

/// The 8-tenant QoS workload: one instance of each Table I model on the
/// 16-NPU SoC (AuRORA-style multi-NPU allocation has headroom).
pub fn qos_workload() -> Vec<Model> {
    camdn_models::zoo::all()
}

/// Runs every model alone under `policy` (closed loop, no QoS) and
/// returns its mean isolated latency (ms) keyed by abbreviation. Used
/// for STP/fairness.
///
/// Latencies are keyed by the abbreviation each [`TaskSummary`] itself
/// reports (not by the order models were submitted), so a reordered
/// `RunResult` cannot mis-attribute them; failures propagate as
/// [`EngineError`] instead of panicking.
///
/// [`TaskSummary`]: camdn_runtime::TaskSummary
pub fn isolated_latencies(policy: PolicyKind) -> Result<HashMap<String, f64>, EngineError> {
    let mut out = HashMap::new();
    for m in camdn_models::zoo::all() {
        let r = Simulation::builder()
            .policy(policy)
            .workload(Workload::closed(vec![m], 2))
            .run()?;
        for t in r.tasks() {
            out.insert(t.abbr.clone(), t.mean_latency_ms);
        }
    }
    Ok(out)
}

/// Mean latency per model abbreviation over the per-task summaries of
/// a run (see [`RunOutput::tasks`](camdn_runtime::RunOutput::tasks)).
pub fn latency_by_model(tasks: &[TaskSummary]) -> HashMap<String, f64> {
    let mut sums: HashMap<String, (f64, u32)> = HashMap::new();
    for t in tasks {
        let e = sums.entry(t.abbr.clone()).or_insert((0.0, 0));
        e.0 += t.mean_latency_ms;
        e.1 += 1;
    }
    sums.into_iter()
        .map(|(k, (s, n))| (k, s / f64::from(n)))
        .collect()
}

/// Mean DRAM MB per model abbreviation over the per-task summaries of
/// a run.
pub fn dram_by_model(tasks: &[TaskSummary]) -> HashMap<String, f64> {
    let mut sums: HashMap<String, (f64, u32)> = HashMap::new();
    for t in tasks {
        let e = sums.entry(t.abbr.clone()).or_insert((0.0, 0));
        e.0 += t.mean_dram_mb;
        e.1 += 1;
    }
    sums.into_iter()
        .map(|(k, (s, n))| (k, s / f64::from(n)))
        .collect()
}

/// Builds and runs several simulations in parallel threads (each
/// engine is single-threaded and independent), preserving input order.
///
/// This is a thin shim over [`camdn_sweep::run_cells`]: every cell runs
/// to completion even when another fails (the old implementation
/// panicked inside a scoped worker on the first failing run, aborting
/// the whole sweep and poisoning its slot locks).
///
/// # Panics
///
/// Panics *after the full batch has run* when any cell failed, naming
/// every failed index. Callers that want the per-cell
/// `Result<RunResult, EngineError>` should use
/// [`camdn_sweep::run_cells`] or `camdn_sweep::Sweep::grid()` directly.
#[deprecated(
    since = "0.3.0",
    note = "use `camdn_sweep::Sweep::grid()` or `camdn_sweep::run_cells` for per-cell errors"
)]
#[allow(deprecated)]
pub fn parallel_sims(builders: Vec<SimulationBuilder>) -> Vec<camdn_runtime::RunResult> {
    let runs = camdn_sweep::run_cells(builders, None);
    let failures: Vec<String> = runs
        .iter()
        .enumerate()
        .filter_map(|(i, r)| r.outcome.as_ref().err().map(|e| format!("cell {i}: {e}")))
        .collect();
    assert!(
        failures.is_empty(),
        "parallel_sims: {} of {} cells failed\n{}",
        failures.len(),
        runs.len(),
        failures.join("\n")
    );
    runs.into_iter()
        .map(|r| {
            r.outcome
                // camdn-lint: allow(panic-in-lib, reason = "the assert above established every outcome is Ok")
                .expect("checked above")
                .legacy_result()
                // camdn-lint: allow(panic-in-lib, reason = "this deprecated shim always builds cells with per-task detail")
                .expect("builder cells retain per-task detail by default")
        })
        .collect()
}

/// Runs several engine configurations in parallel threads.
#[deprecated(
    since = "0.2.0",
    note = "use `camdn_sweep::Sweep::grid()` or `camdn_sweep::run_cells` with `SimulationBuilder`s"
)]
#[allow(deprecated)]
pub fn parallel_runs(
    configs: Vec<(camdn_runtime::EngineConfig, Vec<Model>)>,
) -> Vec<camdn_runtime::RunResult> {
    parallel_sims(
        configs
            .into_iter()
            .map(|(cfg, models)| {
                let mut b = Simulation::builder()
                    .policy(cfg.policy)
                    .soc(cfg.soc)
                    .seed(cfg.seed)
                    .workload(Workload::closed(models, cfg.rounds_per_task))
                    .warmup_rounds(cfg.warmup_rounds)
                    .epoch_cycles(cfg.epoch_cycles)
                    .mapper(cfg.mapper);
                if let Some(scale) = cfg.qos_scale {
                    b = b.qos_scale(scale);
                }
                b
            })
            .collect(),
    )
}

/// Prints a simple aligned table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: Vec<String>| {
        let s: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths.get(i).copied().unwrap_or(8)))
            .collect();
        println!("{}", s.join("  "));
    };
    line(headers.iter().map(|h| h.to_string()).collect());
    for row in rows {
        line(row.clone());
    }
}

/// The geometric-mean helper re-exported for the binaries.
pub fn geomean(values: &[f64]) -> f64 {
    camdn_common::stats::geomean(values)
}

/// Standard policy set of the speedup/scaling experiments.
pub fn speedup_policies() -> [PolicyKind; 3] {
    [
        PolicyKind::Aurora,
        PolicyKind::CamdnHwOnly,
        PolicyKind::CamdnFull,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_have_expected_shapes() {
        assert_eq!(speedup_workload().len(), 16);
        assert_eq!(qos_workload().len(), 8);
    }

    #[test]
    #[allow(deprecated)]
    fn parallel_sims_preserve_order() {
        let models = vec![camdn_models::zoo::mobilenet_v2()];
        let mk = |seed| {
            Simulation::builder()
                .policy(PolicyKind::SharedBaseline)
                .seed(seed)
                .warmup_rounds(0)
                .workload(Workload::closed(models.clone(), 1))
        };
        let res = parallel_sims(vec![mk(1), mk(2), mk(1)]);
        assert_eq!(res.len(), 3);
        assert_eq!(res[0], res[2], "same seed must give identical results");
    }

    #[test]
    #[allow(deprecated)]
    #[should_panic(expected = "1 of 2 cells failed")]
    fn parallel_sims_shim_reports_failures_after_the_batch() {
        let ok = Simulation::builder()
            .policy(PolicyKind::SharedBaseline)
            .warmup_rounds(0)
            .workload(Workload::closed(vec![camdn_models::zoo::mobilenet_v2()], 1));
        let bad = Simulation::builder()
            .policy(PolicyKind::SharedBaseline)
            .workload(Workload::closed(vec![], 2));
        parallel_sims(vec![ok, bad]);
    }

    #[test]
    fn quick_mode_flag_parses_truthy_and_falsy() {
        for falsy in ["", "0", "false", "no", "off", "FALSE", " Off ", "No"] {
            assert!(!env_flag_truthy(falsy), "{falsy:?} must be falsy");
        }
        for truthy in ["1", "true", "yes", "on", "2", "quick", "TRUE"] {
            assert!(env_flag_truthy(truthy), "{truthy:?} must be truthy");
        }
    }

    #[test]
    fn isolated_latencies_key_by_task_abbreviation() {
        let iso = isolated_latencies(PolicyKind::SharedBaseline).expect("isolated runs");
        let zoo = camdn_models::zoo::all();
        assert_eq!(iso.len(), zoo.len());
        for m in &zoo {
            assert!(
                iso[&m.abbr] > 0.0,
                "{} must have a positive isolated latency",
                m.abbr
            );
        }
    }
}
