//! DRAM timing model for the CaMDN simulator.
//!
//! The paper evaluates CaMDN on an in-house cycle-accurate simulator built
//! on DRAMsim3. This crate provides the equivalent substrate: a
//! channel/bank/row-buffer model with per-channel queuing, which produces
//! the two quantities the paper's evaluation depends on — **service
//! latency under contention** and **total DRAM traffic**.
//!
//! Requests are issued as bursts of whole cache lines. Addresses are
//! interleaved across channels at line granularity (so sequential streams
//! use the full 102.4 GB/s of Table II), and across banks at row
//! granularity. A request to an open row pays only CAS latency; a row
//! miss pays precharge + activate ([`DramConfig::row_miss_penalty`]).
//!
//! # Batched accounting
//!
//! Timing is defined by a per-line recurrence: each line occupies its
//! channel's data bus for `line / channel_bandwidth` cycles behind the
//! bus's current horizon and its bank's readiness. Evaluating that
//! recurrence literally costs one loop iteration per 64 B line, which
//! made multi-MB DNN transfers the simulator's hottest loop. Because
//! consecutive lines round-robin the channels and share a row until the
//! next row boundary, the recurrence telescopes: within one (row,
//! channel) segment every line after the first starts exactly where the
//! previous one finished, so a whole segment advances the channel
//! horizon by `k × burst` in one step. [`DramModel::access_burst`]
//! walks those segments — O(rows × channels) work instead of O(lines) —
//! and sub-cycle time is kept in **fixed point** (2⁻²⁰ cycles) so the
//! closed form is *bit-identical* to the per-line walk (integer adds
//! associate; float adds do not).
//!
//! The per-line walk is retained as a **reference model**
//! ([`DramModel::set_reference_model`]) and differential tests in this
//! crate and in `camdn` assert the two agree exactly.
//!
//! # Example
//!
//! ```
//! use camdn_common::config::DramConfig;
//! use camdn_common::types::PhysAddr;
//! use camdn_dram::DramModel;
//!
//! let mut dram = DramModel::new(DramConfig::paper_default(), 64);
//! let done = dram.access_burst(0, PhysAddr(0), 16, false, 0);
//! assert!(done > 0);
//! assert_eq!(dram.stats().read_bytes.get(), 16 * 64);
//! ```

#![warn(missing_docs)]
#![deny(deprecated)]

use camdn_common::config::DramConfig;
use camdn_common::stats::Counter;
use camdn_common::types::{Cycle, PhysAddr};
use serde::{Deserialize, Serialize};

/// Sub-cycle fixed-point resolution: 1 cycle == `2^FP_SHIFT` ticks.
const FP_SHIFT: u32 = 20;
/// One cycle in fixed-point ticks.
const FP_ONE: u64 = 1 << FP_SHIFT;

/// A cycle count in fixed-point ticks.
#[inline]
fn fp(c: Cycle) -> u64 {
    c << FP_SHIFT
}

/// Rounds a fixed-point time up to whole cycles.
#[inline]
fn ceil_fp(x: u64) -> Cycle {
    (x + (FP_ONE - 1)) >> FP_SHIFT
}

/// Precomputed divide/modulo by a fixed runtime divisor.
///
/// Address decomposition (line index, row index, channel/bank
/// interleave) runs once per line in the hottest loops of the model;
/// with the paper-default geometry every divisor is a power of two, so
/// the decomposition is a shift/mask. Non-power-of-two configs (they
/// are legal) transparently fall back to real division — results are
/// identical either way, this is pure strength reduction.
#[derive(Debug, Clone, Copy)]
struct FastDiv {
    val: u64,
    shift: u32,
    po2: bool,
}

impl FastDiv {
    fn new(val: u64) -> Self {
        debug_assert!(val > 0, "divisor must be positive");
        FastDiv {
            val,
            shift: val.trailing_zeros(),
            po2: val.is_power_of_two(),
        }
    }

    #[inline]
    fn div(self, x: u64) -> u64 {
        if self.po2 {
            x >> self.shift
        } else {
            x / self.val
        }
    }

    #[inline]
    fn rem(self, x: u64) -> u64 {
        if self.po2 {
            x & (self.val - 1)
        } else {
            x % self.val
        }
    }

    #[inline]
    fn div_ceil(self, x: u64) -> u64 {
        if self.po2 {
            (x + self.val - 1) >> self.shift
        } else {
            x.div_ceil(self.val)
        }
    }
}

/// Aggregate DRAM statistics.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DramStats {
    /// Bytes read from DRAM.
    pub read_bytes: Counter,
    /// Bytes written to DRAM.
    pub write_bytes: Counter,
    /// Line requests that hit an open row.
    pub row_hits: Counter,
    /// Line requests that required activate (+precharge).
    pub row_misses: Counter,
    /// Number of burst requests served.
    pub requests: Counter,
    /// Total cycles spent actively transferring data, summed over channels.
    pub busy_cycles: Counter,
}

impl DramStats {
    /// Total traffic in bytes (reads + writes).
    pub fn total_bytes(&self) -> u64 {
        self.read_bytes.get() + self.write_bytes.get()
    }

    /// Row-buffer hit rate over all line requests.
    pub fn row_hit_rate(&self) -> f64 {
        let total = self.row_hits.get() + self.row_misses.get();
        if total == 0 {
            0.0
        } else {
            self.row_hits.get() as f64 / total as f64
        }
    }
}

/// Sentinel row index for a bank with no activated row (no reachable
/// byte address decomposes to it).
const NO_ROW: u64 = u64::MAX;

#[derive(Debug, Clone, Copy)]
struct Bank {
    /// Open row index, or [`NO_ROW`].
    open_row: u64,
    /// Cycle at which the bank has an activated row and can transfer data.
    ready_at: Cycle,
}

/// A multi-channel DRAM with row-buffer timing and FCFS per-channel queues.
///
/// Contention model: each channel owns a `free_at` horizon. A burst that
/// arrives while the channel is busy is queued behind it (FCFS), which is
/// how co-located DNNs slow each other down on the memory bus. Per-task
/// bandwidth throttling (MoCA-style) is layered on top by the runtime.
#[derive(Debug, Clone)]
pub struct DramModel {
    cfg: DramConfig,
    line_bytes: u64,
    /// Nominal bus occupancy of one line on one channel, fixed-point
    /// ticks.
    burst_fp: u64,
    /// Effective per-channel bus occupancy: `burst_fp / scale` for each
    /// channel's bandwidth scale (all equal to `burst_fp` until a fault
    /// degrades a channel).
    burst_fp_ch: Vec<u64>,
    /// Current per-channel bandwidth scale in `(0, 1]`.
    scale_ch: Vec<f64>,
    /// `ceil` of the nominal per-line bus occupancy (busy-cycle
    /// accounting, kept at nominal pricing even for degraded channels).
    burst_ceil: Cycle,
    /// Fixed-point tick at which each channel's data bus becomes free.
    /// Sub-cycle resolution keeps a 64 B burst at 25.6 B/cycle on exactly
    /// 2.5 cycles instead of a rounded 3 — rounding up would silently
    /// shave 17 % off the peak bandwidth.
    free_at: Vec<u64>,
    /// Bank state, channel-major: `banks[ch * banks_per_channel + bank]`
    /// — one flat allocation, no per-channel `Vec` indirection on the
    /// per-line hot path.
    banks: Vec<Bank>,
    /// Precomputed shift/mask (or division-fallback) decomposers for
    /// the four per-line address divisions.
    line_div: FastDiv,
    row_div: FastDiv,
    ch_div: FastDiv,
    bank_div: FastDiv,
    stats: DramStats,
    reference: bool,
    /// Reused [`LineBatch`] scratch (MSHR ring + gate history) — range
    /// walks allocate nothing per call.
    scratch: BatchScratch,
}

/// Reusable buffers for [`LineBatch`] (returned on drop).
#[derive(Debug, Clone, Default)]
struct BatchScratch {
    ring: Vec<Cycle>,
    hist: Vec<SegDesc>,
    hist_pos: Vec<(u32, u32)>,
    nproc: Vec<u64>,
}

impl DramModel {
    /// Creates a DRAM model for lines of `line_bytes` bytes.
    pub fn new(cfg: DramConfig, line_bytes: u64) -> Self {
        let nch = cfg.channels as usize;
        let nbanks = cfg.banks_per_channel as usize;
        let burst_cycles = line_bytes as f64 / cfg.channel_bytes_per_cycle();
        let burst_fp = (burst_cycles * FP_ONE as f64).round() as u64;
        DramModel {
            cfg,
            line_bytes,
            burst_fp,
            burst_fp_ch: vec![burst_fp; cfg.channels as usize],
            scale_ch: vec![1.0; cfg.channels as usize],
            burst_ceil: ceil_fp(burst_fp),
            free_at: vec![0; nch],
            banks: vec![
                Bank {
                    open_row: NO_ROW,
                    ready_at: 0,
                };
                nch * nbanks
            ],
            line_div: FastDiv::new(line_bytes),
            row_div: FastDiv::new(cfg.row_bytes),
            ch_div: FastDiv::new(u64::from(cfg.channels)),
            bank_div: FastDiv::new(u64::from(cfg.banks_per_channel)),
            stats: DramStats::default(),
            reference: false,
            scratch: BatchScratch::default(),
        }
    }

    /// The configuration this model was built with.
    pub fn config(&self) -> &DramConfig {
        &self.cfg
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }

    /// Resets statistics (leaves bank state intact).
    pub fn reset_stats(&mut self) {
        self.stats = DramStats::default();
    }

    /// Selects the per-line reference walk (`true`) or the closed-form
    /// segment walk (`false`, default) for burst timing. Both produce
    /// bit-identical results; the reference path exists so differential
    /// tests and the throughput harness can prove and measure that.
    pub fn set_reference_model(&mut self, reference: bool) {
        self.reference = reference;
    }

    /// True when the per-line reference walk is selected.
    pub fn reference_model(&self) -> bool {
        self.reference
    }

    /// Channel index for a line address (line-granularity interleaving).
    #[inline]
    pub fn channel_of(&self, addr: PhysAddr) -> usize {
        self.ch_div.rem(self.line_div.div(addr.0)) as usize
    }

    /// Advances the state machine for one line at `byte_addr`, gated to
    /// start no earlier than `earliest`. Returns the line's completion
    /// cycle. Row-buffer statistics are updated here; request/byte/busy
    /// accounting is the caller's (so bursts can batch it).
    #[inline]
    fn line_timing(&mut self, earliest: Cycle, byte_addr: u64) -> Cycle {
        let line = self.line_div.div(byte_addr);
        let ch_idx = self.ch_div.rem(line) as usize;
        let row = self.row_div.div(byte_addr);
        let bank_idx = self.bank_div.rem(row) as usize;
        self.line_timing_at(earliest, ch_idx, bank_idx, row)
    }

    /// [`DramModel::line_timing`] with the address already decomposed —
    /// hot paths that track channel and row incrementally skip the
    /// divides entirely.
    #[inline]
    fn line_timing_at(
        &mut self,
        earliest: Cycle,
        ch_idx: usize,
        bank_idx: usize,
        row: u64,
    ) -> Cycle {
        let bank = &mut self.banks[ch_idx * self.cfg.banks_per_channel as usize + bank_idx];
        if bank.open_row == row {
            self.stats.row_hits.incr();
        } else {
            // Precharge + activate runs on the bank, overlapping with
            // data transfers of other banks on the same channel
            // (bank-level parallelism, as in DRAMsim3's FR-FCFS).
            self.stats.row_misses.incr();
            bank.open_row = row;
            bank.ready_at = earliest.max(bank.ready_at) + self.cfg.row_miss_penalty;
        }
        let data_start = fp(earliest)
            .max(self.free_at[ch_idx])
            .max(fp(bank.ready_at));
        self.free_at[ch_idx] = data_start + self.burst_fp_ch[ch_idx];
        ceil_fp(self.free_at[ch_idx]) + self.cfg.cas_latency
    }

    /// Per-line reference walk over `lines` consecutive lines.
    fn burst_lines_reference(&mut self, earliest: Cycle, addr: PhysAddr, lines: u64) -> Cycle {
        let mut finish = earliest;
        for i in 0..lines {
            finish = finish.max(self.line_timing(earliest, addr.0 + i * self.line_bytes));
        }
        finish
    }

    /// Closed-form segment walk: consecutive lines share a row until the
    /// next row boundary and round-robin the channels, so each (row,
    /// channel) pair collapses to one horizon update. Bit-identical to
    /// [`DramModel::burst_lines_reference`].
    fn burst_lines_batched(&mut self, earliest: Cycle, addr: PhysAddr, lines: u64) -> Cycle {
        let lb = self.line_bytes;
        let nch = u64::from(self.cfg.channels);
        let nbanks = self.cfg.banks_per_channel as usize;
        let e_fp = fp(earliest);
        let first_line = self.line_div.div(addr.0);
        let mut finish = earliest;
        let mut i = 0u64;
        while i < lines {
            let byte = addr.0 + i * lb;
            let row = self.row_div.div(byte);
            let row_end = (row + 1) * self.cfg.row_bytes;
            let seg = self.line_div.div_ceil(row_end - byte).min(lines - i);
            let bank_idx = self.bank_div.rem(row) as usize;
            let c0 = self.ch_div.rem(first_line + i);
            for t in 0..nch.min(seg) {
                // Lines of this segment landing on this channel.
                let k = self.ch_div.div_ceil(seg - t);
                let mut c = c0 + t;
                if c >= nch {
                    c -= nch;
                }
                let ci = c as usize;
                let burst = self.burst_fp_ch[ci];
                let bank = &mut self.banks[ci * nbanks + bank_idx];
                if bank.open_row == row {
                    self.stats.row_hits.add(k);
                } else {
                    self.stats.row_misses.incr();
                    self.stats.row_hits.add(k - 1);
                    bank.open_row = row;
                    bank.ready_at = earliest.max(bank.ready_at) + self.cfg.row_miss_penalty;
                }
                // After the first line, each line starts exactly where
                // the previous one on this channel finished.
                let start = e_fp.max(self.free_at[ci]).max(fp(bank.ready_at));
                self.free_at[ci] = start + k * burst;
                finish = finish.max(ceil_fp(self.free_at[ci]) + self.cfg.cas_latency);
            }
            i += seg;
        }
        finish
    }

    /// Issues a burst of `lines` consecutive cache lines starting at `addr`.
    ///
    /// Returns the completion cycle. `extra_queue_delay` lets the caller
    /// model bandwidth throttling (the burst may not start before
    /// `now + extra_queue_delay`).
    pub fn access_burst(
        &mut self,
        now: Cycle,
        addr: PhysAddr,
        lines: u64,
        is_write: bool,
        extra_queue_delay: Cycle,
    ) -> Cycle {
        if lines == 0 {
            return now;
        }
        self.stats.requests.incr();
        let bytes = lines * self.line_bytes;
        if is_write {
            self.stats.write_bytes.add(bytes);
        } else {
            self.stats.read_bytes.add(bytes);
        }
        self.stats.busy_cycles.add(lines * self.burst_ceil);
        let earliest = now + extra_queue_delay;
        if self.reference {
            self.burst_lines_reference(earliest, addr, lines)
        } else {
            self.burst_lines_batched(earliest, addr, lines)
        }
    }

    /// Opens a batched sequence of MSHR-gated single-line fills and
    /// posted writebacks, all anchored at `now` (see [`LineBatch`]).
    ///
    /// `window` is the caller's MSHR window; `expected_misses` is the
    /// total number of fills the batch will see, which decides up front
    /// whether the window can ever fill (and hence whether completion
    /// times must be ring-buffered at all).
    pub fn line_batch(&mut self, now: Cycle, window: usize, expected_misses: u64) -> LineBatch<'_> {
        let use_ring = expected_misses > window as u64;
        let nch = self.cfg.channels.max(1);
        let per_ch = (window as u64) / u64::from(nch);
        // In a gap-free run of consecutive missing lines, the fill that
        // re-uses MSHR slot `k` gates on the fill `window` lines earlier
        // — the *same channel* when channels divide the window — whose
        // data left the bus at least `(window/channels − 1) × burst`
        // cycles before this line could start. When CAS (+1 cycle of
        // rounding) cannot bridge that gap, the gate provably never
        // delays a transfer and runs collapse to the closed-form segment
        // walk. (The gate still feeds the bank-ready update of
        // row-opening lines, which the walk reproduces from per-channel
        // completion-time descriptors.)
        // Degraded channels only *lengthen* bursts, so the bound must
        // hold for the fastest (minimum-burst) channel to hold for all.
        let min_burst = self
            .burst_fp_ch
            .iter()
            .copied()
            .min()
            .unwrap_or(self.burst_fp);
        let inert_gates = window.is_multiple_of(nch as usize)
            && per_ch >= 1
            && fp(self.cfg.cas_latency) + FP_ONE <= (per_ch - 1) * min_burst;
        let track_hist = use_ring && inert_gates && !self.reference;
        let cap = if track_hist { per_ch as usize + 2 } else { 0 };
        // Reuse the model's scratch buffers: no allocation per range.
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.ring.clear();
        if use_ring {
            scratch.ring.resize(window, 0);
        }
        // History contents are gated by per-run resets of `hist_pos` and
        // `nproc` (in `fill_run`), so stale values never leak.
        if scratch.hist.len() < cap * nch as usize {
            scratch.hist.resize(cap * nch as usize, SegDesc::default());
        }
        let hist_len = if track_hist { nch as usize } else { 0 };
        scratch.hist_pos.clear();
        scratch.hist_pos.resize(hist_len, (0, 0));
        scratch.nproc.clear();
        scratch.nproc.resize(hist_len, 0);
        LineBatch {
            scratch,
            hist_cap: cap,
            run_hist: false,
            per_ch,
            run_start_miss: 0,
            dram: self,
            now,
            window,
            use_ring,
            miss_no: 0,
            slot: 0,
            fill_lines: 0,
            wb_lines: 0,
            finish: now,
        }
    }

    /// Re-prices one channel's bus occupancy at `scale` of its nominal
    /// bandwidth (fault injection: a browned-out or degraded channel).
    /// `1.0` restores nominal pricing exactly, so a round trip through
    /// degrade-and-restore leaves timing bit-identical. Busy-cycle
    /// statistics and [`DramModel::unloaded_line_latency`] stay at
    /// nominal pricing (they are utilization/estimate quantities, not
    /// timing).
    ///
    /// # Panics
    ///
    /// Panics when `channel` is out of range or `scale` is not in
    /// `(0, 1]` — the runtime validates fault plans against the SoC
    /// before the first event fires.
    pub fn set_channel_bandwidth_scale(&mut self, channel: usize, scale: f64) {
        assert!(
            scale.is_finite() && scale > 0.0 && scale <= 1.0,
            "channel bandwidth scale {scale} outside (0, 1]"
        );
        self.scale_ch[channel] = scale;
        self.burst_fp_ch[channel] = if scale == 1.0 {
            self.burst_fp
        } else {
            (self.burst_fp as f64 / scale).round() as u64
        };
    }

    /// Current bandwidth scale of `channel` (1.0 = nominal).
    pub fn channel_bandwidth_scale(&self, channel: usize) -> f64 {
        self.scale_ch[channel]
    }

    /// Latency of a single line access with no queueing (used for
    /// analytical latency estimates in the mapper).
    pub fn unloaded_line_latency(&self) -> Cycle {
        self.cfg.cas_latency + self.burst_ceil
    }

    /// The earliest cycle at which any channel is free (useful to detect
    /// an idle memory system in tests).
    pub fn earliest_free(&self) -> Cycle {
        self.free_at.iter().map(|&f| ceil_fp(f)).min().unwrap_or(0)
    }

    /// Effective bandwidth (bytes/cycle) achieved since the last stats
    /// reset, measured over `elapsed` cycles.
    pub fn achieved_bandwidth(&self, elapsed: Cycle) -> f64 {
        if elapsed == 0 {
            0.0
        } else {
            self.stats.total_bytes() as f64 / elapsed as f64
        }
    }

    /// Order- and content-sensitive digest of the full timing state
    /// (channel horizons, open rows, bank readiness). Lets differential
    /// tests assert that two models evolved identically.
    #[doc(hidden)]
    pub fn state_fingerprint(&self) -> u64 {
        let mut h = 0xcbf29ce484222325u64;
        let mut mix = |v: u64| {
            h ^= v;
            h = h.wrapping_mul(0x100000001b3);
        };
        let nbanks = self.cfg.banks_per_channel as usize;
        for (c, &free) in self.free_at.iter().enumerate() {
            mix(free);
            // `NO_ROW` is the same u64::MAX the pre-flattening digest
            // mapped `None` to, so fingerprints stay comparable.
            for b in &self.banks[c * nbanks..(c + 1) * nbanks] {
                mix(b.open_row);
                mix(b.ready_at);
            }
        }
        h
    }
}

/// Completion times of one channel's lines within one closed-form
/// segment: line `n` (per-channel count) finished at
/// `ceil(d0 + (n − start_n + 1) × burst) + cas`.
#[derive(Debug, Clone, Copy, Default)]
struct SegDesc {
    start_n: u64,
    d0: u64,
}

/// Which source a per-line walk reads its MSHR gates from.
#[derive(Clone, Copy, PartialEq)]
enum GateSrc {
    /// The real MSHR ring (gates that predate the current run).
    Ring,
    /// Per-channel segment descriptors (in-run gates).
    Hist,
}

/// A batched sequence of MSHR-gated demand fills and posted writebacks.
///
/// This reproduces — in closed form where provably equivalent — exactly
/// the DRAM call sequence of a per-line cache range walk: each missing
/// line is a 1-line read burst gated by the MSHR ring (miss `k` may not
/// issue before miss `k − window` completed), and each dirty victim is a
/// 1-line posted write at `now`. Obtain one via [`DramModel::line_batch`],
/// feed it [`LineBatch::fill_run`]/[`LineBatch::writeback`] events in
/// line order, and read [`LineBatch::finish`].
///
/// Within a gap-free run the gate of miss `k` is the completion time of
/// miss `k − window`, which lands on the *same channel* and (when the
/// CAS latency cannot bridge `(window/channels − 1)` bursts) can never
/// delay the transfer — but it still feeds the bank-ready update of
/// row-opening lines, so the closed-form walk keeps per-channel
/// segment-descriptor (`SegDesc`) history to evaluate those gates
/// exactly.
pub struct LineBatch<'a> {
    dram: &'a mut DramModel,
    now: Cycle,
    window: usize,
    /// False when the whole batch fits the window (gates are all `now`).
    use_ring: bool,
    /// MSHR ring + per-channel descriptor history, borrowed from the
    /// model's reusable scratch (returned on drop).
    scratch: BatchScratch,
    hist_cap: usize,
    /// True while the current run is long enough (`> window`) for
    /// in-run gate look-ups — only then is history recorded.
    run_hist: bool,
    /// `window / channels`: per-channel gate look-back in lines.
    per_ch: u64,
    /// `miss_no` at the start of the current run.
    run_start_miss: u64,
    miss_no: u64,
    /// `miss_no % window`, maintained incrementally — the window (144)
    /// is not a power of two, so recomputing it per fill would put a
    /// real division on the single-line-miss hot path.
    slot: usize,
    /// Fill lines seen so far; request/byte/busy statistics are
    /// accumulated here and flushed once on drop instead of as three
    /// read-modify-writes per event.
    fill_lines: u64,
    /// Writeback lines seen so far (flushed with `fill_lines`).
    wb_lines: u64,
    finish: Cycle,
}

impl LineBatch<'_> {
    /// True when in-run gate history is being tracked.
    #[inline]
    fn hist_on(&self) -> bool {
        self.hist_cap != 0
    }

    /// Records that channel `c`'s lines from per-channel count `start_n`
    /// onward start their bus transfers at `d0 + i × burst`.
    #[inline]
    fn hist_push(&mut self, c: usize, start_n: u64, d0: u64) {
        let (head, len) = &mut self.scratch.hist_pos[c];
        self.scratch.hist[c * self.hist_cap + *head as usize] = SegDesc { start_n, d0 };
        *head = (*head + 1) % self.hist_cap as u32;
        *len = (*len + 1).min(self.hist_cap as u32);
    }

    /// Completion time of channel `c`'s line number `n` (per-channel
    /// count within the current run). `n` is guaranteed to be within the
    /// retained history (at most `per_ch` lines back).
    fn hist_done(&self, c: usize, n: u64) -> Cycle {
        let (head, len) = self.scratch.hist_pos[c];
        let base = c * self.hist_cap;
        for i in 1..=len {
            let slot = (head + self.hist_cap as u32 - i) % self.hist_cap as u32;
            let d = self.scratch.hist[base + slot as usize];
            if d.start_n <= n {
                return ceil_fp(d.d0 + (n - d.start_n + 1) * self.dram.burst_fp_ch[c])
                    + self.dram.cfg.cas_latency;
            }
        }
        // camdn-lint: allow(panic-in-lib, reason = "scratch history is sized to the MSHR look-back, so a slot always matches; reaching this is a sizing bug")
        unreachable!("gate history pruned below the MSHR look-back");
    }

    /// Per-line walk: advances `n` missing lines starting `start` lines
    /// after `base`, reading gates from `src` and recording ring/history
    /// state. Exact for arbitrary (even binding) gates.
    fn per_line(&mut self, base: PhysAddr, start: u64, n: u64, src: GateSrc) {
        let w = self.window as u64;
        let lb = self.dram.line_bytes;
        let nch = u64::from(self.dram.cfg.channels) as usize;
        // Consecutive lines advance the MSHR slot and the channel by
        // exactly one each: track both incrementally — no per-line (or
        // even per-call) division.
        let mut slot = self.slot;
        let mut ch = self.dram.ch_div.rem(self.dram.line_div.div(base.0) + start) as usize;
        for i in start..start + n {
            let byte = base.0 + i * lb;
            let gate = if self.miss_no < w {
                self.now
            } else {
                match src {
                    GateSrc::Ring => self.scratch.ring[slot].max(self.now),
                    GateSrc::Hist => self.hist_done(ch, self.scratch.nproc[ch] - self.per_ch),
                }
            };
            let row = self.dram.row_div.div(byte);
            let bank_idx = self.dram.bank_div.rem(row) as usize;
            let done = self.dram.line_timing_at(gate, ch, bank_idx, row);
            if self.use_ring {
                self.scratch.ring[slot] = done;
            }
            if self.run_hist {
                // The transfer started one burst before `free_at`.
                let d0 = self.dram.free_at[ch] - self.dram.burst_fp_ch[ch];
                let n_c = self.scratch.nproc[ch];
                self.hist_push(ch, n_c, d0);
                self.scratch.nproc[ch] += 1;
            }
            self.miss_no += 1;
            self.finish = self.finish.max(done);
            slot += 1;
            if slot == self.window {
                slot = 0;
            }
            ch += 1;
            if ch == nch {
                ch = 0;
            }
        }
        self.slot = slot;
    }

    /// Closed-form walk of `n` in-run lines starting `offset` lines
    /// after `base`: per (row, channel) segment, evaluate the
    /// row-opening gate from history, fold the bank-ready update, and
    /// advance the channel horizon by `k × burst` in one step.
    fn run_mid(&mut self, base: PhysAddr, offset: u64, n: u64) {
        let lb = self.dram.line_bytes;
        let nch = u64::from(self.dram.cfg.channels);
        let row_bytes = self.dram.cfg.row_bytes;
        let nbanks = self.dram.cfg.banks_per_channel as usize;
        let pen = self.dram.cfg.row_miss_penalty;
        let cas = self.dram.cfg.cas_latency;
        let w = self.window as u64;
        let now_fp = fp(self.now);
        let l0 = self.dram.line_div.div(base.0);
        let mut j = offset;
        let end = offset + n;
        while j < end {
            let byte = base.0 + j * lb;
            let row = self.dram.row_div.div(byte);
            let seg = self
                .dram
                .line_div
                .div_ceil((row + 1) * row_bytes - byte)
                .min(end - j);
            let bank_idx = self.dram.bank_div.rem(row) as usize;
            let c0 = self.dram.ch_div.rem(l0 + j);
            for t in 0..nch.min(seg) {
                let k = self.dram.ch_div.div_ceil(seg - t);
                let mut ci = c0 + t;
                if ci >= nch {
                    ci -= nch;
                }
                let c = ci as usize;
                let bi = c * nbanks + bank_idx;
                if self.dram.banks[bi].open_row == row {
                    self.dram.stats.row_hits.add(k);
                } else {
                    self.dram.stats.row_misses.incr();
                    self.dram.stats.row_hits.add(k - 1);
                    // The row-opening line's gate feeds the bank-ready
                    // update even though it never delays the data bus.
                    let m = self.run_start_miss + j + t;
                    let gate = if m < w {
                        self.now
                    } else {
                        self.hist_done(c, self.scratch.nproc[c] - self.per_ch)
                    };
                    let bank = &mut self.dram.banks[bi];
                    bank.open_row = row;
                    bank.ready_at = gate.max(bank.ready_at) + pen;
                }
                let burst = self.dram.burst_fp_ch[c];
                let d0 = now_fp
                    .max(self.dram.free_at[c])
                    .max(fp(self.dram.banks[bi].ready_at));
                self.dram.free_at[c] = d0 + k * burst;
                let done = ceil_fp(self.dram.free_at[c]) + cas;
                self.finish = self.finish.max(done);
                let n_c = self.scratch.nproc[c];
                self.hist_push(c, n_c, d0);
                self.scratch.nproc[c] += k;
            }
            j += seg;
        }
        self.miss_no += n;
        self.slot = ((self.slot as u64 + n) % w) as usize;
    }

    /// Issues a gap-free run of `lines` consecutive missing lines
    /// starting at `base` (line order, immediately after any preceding
    /// events).
    pub fn fill_run(&mut self, base: PhysAddr, lines: u64) {
        if lines == 0 {
            return;
        }
        self.fill_lines += lines;
        let w = self.window as u64;
        if !self.use_ring {
            // The window never fills: every gate is `now`, the whole run
            // is one closed-form segment walk.
            let done = self.dram.burst_lines_batched(self.now, base, lines);
            self.finish = self.finish.max(done);
            self.miss_no += lines;
            self.slot = ((self.slot as u64 + lines) % w) as usize;
            return;
        }
        // In-run gate look-ups (mid/tail) only exist when the run
        // outlives the window; shorter runs walk per line against the
        // real ring, with no history bookkeeping at all.
        self.run_hist = self.hist_on() && lines > w;
        if !self.run_hist {
            self.per_line(base, 0, lines, GateSrc::Ring);
            return;
        }
        // Gates are per-run state: in-run gate look-ups only reach back
        // `window` consecutive-miss lines, never across a gap.
        self.run_start_miss = self.miss_no;
        for p in self.scratch.nproc.iter_mut() {
            *p = 0;
        }
        for p in self.scratch.hist_pos.iter_mut() {
            *p = (0, 0);
        }
        // Head: misses whose gate predates this run (arbitrary, possibly
        // binding ring values — walk them per line against the real
        // ring). Later misses gate within the run, where gates are
        // provably inert on the data path.
        let head = if self.miss_no + lines.min(w) > w {
            lines.min(w)
        } else {
            0
        };
        // Tail: walked per line to re-record the last `window` MSHR
        // completion times, which runs after this one will read.
        let tail = (lines - head).min(w);
        let mid = lines - head - tail;
        if head > 0 {
            self.per_line(base, 0, head, GateSrc::Ring);
        }
        if mid > 0 {
            self.run_mid(base, head, mid);
        }
        if tail > 0 {
            self.per_line(base, head + mid, tail, GateSrc::Hist);
        }
    }

    /// Issues one posted single-line writeback at `now` (dirty victim;
    /// occupies a channel but no MSHR and does not gate completion).
    pub fn writeback(&mut self, addr: PhysAddr) {
        self.wb_lines += 1;
        self.dram.line_timing(self.now, addr.0);
    }

    /// Completion cycle of the latest fill so far (`now` if none).
    pub fn finish(&self) -> Cycle {
        self.finish
    }
}

impl Drop for LineBatch<'_> {
    fn drop(&mut self) {
        // Flush the batched request/byte/busy statistics (identical
        // totals to per-event accounting — Counters saturate, and line
        // counts cannot overflow the sums).
        let s = &mut self.dram.stats;
        s.requests.add(self.fill_lines + self.wb_lines);
        s.read_bytes.add(self.fill_lines * self.dram.line_bytes);
        s.write_bytes.add(self.wb_lines * self.dram.line_bytes);
        s.busy_cycles
            .add((self.fill_lines + self.wb_lines) * self.dram.burst_ceil);
        // Hand the scratch buffers back for the next range walk.
        self.dram.scratch = std::mem::take(&mut self.scratch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use camdn_common::types::KIB;
    use camdn_common::SimRng;

    fn model() -> DramModel {
        DramModel::new(DramConfig::paper_default(), 64)
    }

    #[test]
    fn traffic_accounting() {
        let mut d = model();
        d.access_burst(0, PhysAddr(0), 10, false, 0);
        d.access_burst(0, PhysAddr(4096), 5, true, 0);
        assert_eq!(d.stats().read_bytes.get(), 640);
        assert_eq!(d.stats().write_bytes.get(), 320);
        assert_eq!(d.stats().total_bytes(), 960);
        assert_eq!(d.stats().requests.get(), 2);
    }

    #[test]
    fn row_hits_are_faster_than_misses() {
        let mut d = model();
        // First access opens the row (miss).
        let t1 = d.access_burst(0, PhysAddr(0), 1, false, 0);
        // Second access to the same row on an idle bus: row hit.
        let free = d.earliest_free().max(t1);
        let t2 = d.access_burst(free, PhysAddr(64 * 4), 1, false, 0) - free;
        // A fresh model accessing a different row: row miss.
        let mut d2 = model();
        let t3 = d2.access_burst(0, PhysAddr(0), 1, false, 0);
        assert!(t2 < t3, "row hit {t2} should beat row miss {t3}");
        assert_eq!(d.stats().row_hits.get(), 1);
        assert_eq!(d.stats().row_misses.get(), 1);
    }

    #[test]
    fn sequential_stream_uses_all_channels() {
        let d = model();
        // 64 consecutive lines interleave across 4 channels.
        let mut seen = [false; 4];
        for i in 0..64u64 {
            seen[d.channel_of(PhysAddr(i * 64))] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn contention_serializes_on_a_channel() {
        let mut d = model();
        // Two requesters hammer the same addresses (same channels).
        let a = d.access_burst(0, PhysAddr(0), 32 * 4, false, 0);
        let b = d.access_burst(0, PhysAddr(0), 32 * 4, false, 0);
        assert!(b > a, "second request must queue behind the first");
    }

    const MIB_LINES: u64 = (1024 * KIB) / 64;

    #[test]
    fn big_burst_throughput_close_to_peak() {
        let mut d = model();
        // Stream 1 MiB sequentially from time 0.
        let done = d.access_burst(0, PhysAddr(0), MIB_LINES, false, 0);
        let bw = d.achieved_bandwidth(done);
        // Should reach at least half of the 102.4 B/cycle peak even with
        // row-miss overheads on a fresh bank state.
        assert!(bw > 51.0, "achieved bandwidth {bw:.1} B/cycle too low");
        assert!(bw <= 102.4 + 1e-9);
    }

    #[test]
    fn extra_queue_delay_postpones_start() {
        let mut d1 = model();
        let mut d2 = model();
        let t1 = d1.access_burst(0, PhysAddr(0), 4, false, 0);
        let t2 = d2.access_burst(0, PhysAddr(0), 4, false, 1000);
        assert_eq!(t2, t1 + 1000);
    }

    #[test]
    fn zero_line_burst_is_noop() {
        let mut d = model();
        assert_eq!(d.access_burst(77, PhysAddr(0), 0, false, 0), 77);
        assert_eq!(d.stats().requests.get(), 0);
    }

    #[test]
    fn row_hit_rate_reporting() {
        let mut d = model();
        d.access_burst(0, PhysAddr(0), 32, false, 0);
        let r = d.stats().row_hit_rate();
        assert!(r > 0.0 && r < 1.0, "mixed hits/misses expected, got {r}");
    }

    #[test]
    fn reset_stats_clears_counters_only() {
        let mut d = model();
        d.access_burst(0, PhysAddr(0), 8, false, 0);
        let busy = d.earliest_free();
        d.reset_stats();
        assert_eq!(d.stats().total_bytes(), 0);
        assert_eq!(d.earliest_free(), busy, "bank/bus state must survive");
    }

    // --- differential: closed form vs per-line reference ------------

    fn assert_same(fast: &DramModel, refm: &DramModel, ctx: &str) {
        assert_eq!(
            fast.state_fingerprint(),
            refm.state_fingerprint(),
            "timing state diverged: {ctx}"
        );
        let (f, r) = (fast.stats(), refm.stats());
        assert_eq!(f.read_bytes.get(), r.read_bytes.get(), "{ctx}");
        assert_eq!(f.write_bytes.get(), r.write_bytes.get(), "{ctx}");
        assert_eq!(f.row_hits.get(), r.row_hits.get(), "{ctx}");
        assert_eq!(f.row_misses.get(), r.row_misses.get(), "{ctx}");
        assert_eq!(f.requests.get(), r.requests.get(), "{ctx}");
        assert_eq!(f.busy_cycles.get(), r.busy_cycles.get(), "{ctx}");
    }

    #[test]
    fn batched_burst_matches_reference_exactly() {
        let configs = [
            DramConfig::paper_default(),
            DramConfig {
                channels: 2,
                banks_per_channel: 4,
                row_bytes: 512,
                bytes_per_cycle: 32.0,
                row_miss_penalty: 25,
                cas_latency: 11,
            },
            DramConfig {
                channels: 1,
                banks_per_channel: 2,
                row_bytes: 256,
                bytes_per_cycle: 7.3,
                row_miss_penalty: 3,
                cas_latency: 2,
            },
        ];
        let mut rng = SimRng::new(0xD1FF);
        for (ci, cfg) in configs.iter().enumerate() {
            for line_bytes in [32u64, 64, 128] {
                let mut fast = DramModel::new(*cfg, line_bytes);
                let mut refm = DramModel::new(*cfg, line_bytes);
                refm.set_reference_model(true);
                let mut now = 0;
                for step in 0..200 {
                    // Random bursts: some sequential, some overlapping,
                    // some unaligned, reads and writes, queued or not.
                    let addr = PhysAddr(rng.next_below(1 << 22));
                    let lines = rng.next_below(700);
                    let is_write = rng.next_below(2) == 1;
                    let delay = rng.next_below(3) * 17;
                    now += rng.next_below(500);
                    let a = fast.access_burst(now, addr, lines, is_write, delay);
                    let b = refm.access_burst(now, addr, lines, is_write, delay);
                    assert_eq!(a, b, "finish diverged: cfg {ci}, step {step}");
                    assert_same(&fast, &refm, &format!("cfg {ci}, step {step}"));
                }
            }
        }
    }

    /// Reference emulation of a gated fill/writeback sequence: the exact
    /// per-miss `access_burst` + MSHR-ring loop the shared cache used to
    /// run line by line.
    fn emulate_gated(
        d: &mut DramModel,
        now: Cycle,
        window: usize,
        events: &[(PhysAddr, u64, bool)],
    ) -> Cycle {
        let mut ring = vec![0 as Cycle; window];
        let mut miss_no = 0usize;
        let mut finish = now;
        for &(base, lines, is_wb) in events {
            if is_wb {
                d.access_burst(now, base, 1, true, 0);
                continue;
            }
            for i in 0..lines {
                let addr = PhysAddr(base.0 + i * 64);
                let slot = miss_no % window;
                let gate = if miss_no >= window {
                    ring[slot].max(now)
                } else {
                    now
                };
                let done = d.access_burst(gate, addr, 1, false, 0);
                ring[slot] = done;
                miss_no += 1;
                finish = finish.max(done);
            }
        }
        finish
    }

    #[test]
    fn line_batch_matches_gated_reference_exactly() {
        const W: usize = 144;
        let mut rng = SimRng::new(0xBA7C4);
        for trial in 0..60 {
            // Random event tapes: runs of consecutive misses (some far
            // longer than the window), interleaved writebacks, gaps.
            let mut events: Vec<(PhysAddr, u64, bool)> = Vec::new();
            let mut total = 0u64;
            let n_ev = 1 + rng.next_below(8);
            let mut cursor = rng.next_below(1 << 20) * 64;
            for _ in 0..n_ev {
                if rng.next_below(4) == 0 {
                    events.push((PhysAddr(rng.next_below(1 << 24) * 64), 1, true));
                }
                let lines = 1 + rng.next_below(600);
                events.push((PhysAddr(cursor), lines, false));
                total += lines;
                cursor += lines * 64 + (1 + rng.next_below(40)) * 64; // gap
            }
            let now = rng.next_below(10_000);

            let mut fast = model();
            let mut refm = model();
            // Shared warm state so runs start against non-trivial horizons.
            let warm = PhysAddr(rng.next_below(1 << 18) * 64);
            let warm_lines = rng.next_below(300);
            fast.access_burst(0, warm, warm_lines, false, 0);
            refm.access_burst(0, warm, warm_lines, false, 0);

            let mut batch = fast.line_batch(now, W, total);
            for &(base, lines, is_wb) in &events {
                if is_wb {
                    batch.writeback(base);
                } else {
                    batch.fill_run(base, lines);
                }
            }
            let a = batch.finish();
            drop(batch); // returns the scratch, releasing the borrow
            let b = emulate_gated(&mut refm, now, W, &events);
            assert_eq!(a, b, "finish diverged on trial {trial}");
            assert_same(&fast, &refm, &format!("trial {trial}"));
        }
    }

    #[test]
    fn degraded_channels_match_reference_exactly() {
        // The closed form must stay bit-identical to the per-line walk
        // when channels carry *different* bus occupancies (telescoping
        // is per channel, so per-channel bursts keep it exact).
        let mut rng = SimRng::new(0xDE64);
        let mut fast = model();
        let mut refm = model();
        refm.set_reference_model(true);
        for d in [&mut fast, &mut refm] {
            d.set_channel_bandwidth_scale(1, 0.25);
            d.set_channel_bandwidth_scale(3, 0.05);
        }
        let mut now = 0;
        for step in 0..120 {
            let addr = PhysAddr(rng.next_below(1 << 22));
            let lines = rng.next_below(700);
            let is_write = rng.next_below(2) == 1;
            now += rng.next_below(500);
            let a = fast.access_burst(now, addr, lines, is_write, 0);
            let b = refm.access_burst(now, addr, lines, is_write, 0);
            assert_eq!(a, b, "finish diverged at step {step}");
            assert_same(&fast, &refm, &format!("degraded step {step}"));
        }
    }

    #[test]
    fn degrade_slows_and_restore_is_exact() {
        let mut d = model();
        let healthy = d.clone();
        let t0 = d.clone().access_burst(0, PhysAddr(0), 256, false, 0);
        d.set_channel_bandwidth_scale(0, 0.1);
        let t1 = d.clone().access_burst(0, PhysAddr(0), 256, false, 0);
        assert!(
            t1 > t0,
            "degraded channel must slow the burst: {t1} vs {t0}"
        );
        assert_eq!(d.channel_bandwidth_scale(0), 0.1);
        d.set_channel_bandwidth_scale(0, 1.0);
        assert_eq!(
            d.access_burst(0, PhysAddr(0), 256, false, 0),
            healthy.clone().access_burst(0, PhysAddr(0), 256, false, 0),
            "restoring 1.0 must reprice at exactly nominal"
        );
    }

    #[test]
    fn line_batch_matches_reference_with_degraded_channels() {
        const W: usize = 144;
        let mut fast = model();
        let mut refm = model();
        for d in [&mut fast, &mut refm] {
            d.set_channel_bandwidth_scale(2, 0.25);
        }
        let events = [
            (PhysAddr(0), 500u64, false),
            (PhysAddr(1 << 16), 1, true),
            (PhysAddr(40_000 * 64), 300, false),
        ];
        let mut batch = fast.line_batch(100, W, 800);
        for &(base, lines, is_wb) in &events {
            if is_wb {
                batch.writeback(base);
            } else {
                batch.fill_run(base, lines);
            }
        }
        let a = batch.finish();
        drop(batch);
        let b = emulate_gated(&mut refm, 100, W, &events);
        assert_eq!(a, b);
        assert_same(&fast, &refm, "degraded line batch");
    }

    #[test]
    fn line_batch_gates_throttle_when_window_fills() {
        // A run far longer than the window on a 1-channel model with a
        // CAS large enough that gates really bind: the batch must match
        // the reference even then (per-line fallback).
        let cfg = DramConfig {
            channels: 1,
            banks_per_channel: 2,
            row_bytes: 2048,
            bytes_per_cycle: 64.0,
            row_miss_penalty: 4,
            cas_latency: 500,
        };
        let mut fast = DramModel::new(cfg, 64);
        let mut refm = DramModel::new(cfg, 64);
        let events = [(PhysAddr(0), 400u64, false)];
        let mut batch = fast.line_batch(0, 16, 400);
        batch.fill_run(PhysAddr(0), 400);
        let a = batch.finish();
        drop(batch); // returns the scratch, releasing the borrow
        let b = emulate_gated(&mut refm, 0, 16, &events);
        assert_eq!(a, b);
        assert_same(&fast, &refm, "binding gates");
    }
}
