//! DRAM timing model for the CaMDN simulator.
//!
//! The paper evaluates CaMDN on an in-house cycle-accurate simulator built
//! on DRAMsim3. This crate provides the equivalent substrate: a
//! channel/bank/row-buffer model with per-channel queuing, which produces
//! the two quantities the paper's evaluation depends on — **service
//! latency under contention** and **total DRAM traffic**.
//!
//! Requests are issued as bursts of whole cache lines. Addresses are
//! interleaved across channels at line granularity (so sequential streams
//! use the full 102.4 GB/s of Table II), and across banks at row
//! granularity. A request to an open row pays only CAS latency; a row
//! miss pays precharge + activate ([`DramConfig::row_miss_penalty`]).
//!
//! # Example
//!
//! ```
//! use camdn_common::config::DramConfig;
//! use camdn_common::types::PhysAddr;
//! use camdn_dram::DramModel;
//!
//! let mut dram = DramModel::new(DramConfig::paper_default(), 64);
//! let done = dram.access_burst(0, PhysAddr(0), 16, false, 0);
//! assert!(done > 0);
//! assert_eq!(dram.stats().read_bytes.get(), 16 * 64);
//! ```

#![warn(missing_docs)]

use camdn_common::config::DramConfig;
use camdn_common::stats::Counter;
use camdn_common::types::{Cycle, PhysAddr};
use serde::{Deserialize, Serialize};

/// Aggregate DRAM statistics.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DramStats {
    /// Bytes read from DRAM.
    pub read_bytes: Counter,
    /// Bytes written to DRAM.
    pub write_bytes: Counter,
    /// Line requests that hit an open row.
    pub row_hits: Counter,
    /// Line requests that required activate (+precharge).
    pub row_misses: Counter,
    /// Number of burst requests served.
    pub requests: Counter,
    /// Total cycles spent actively transferring data, summed over channels.
    pub busy_cycles: Counter,
}

impl DramStats {
    /// Total traffic in bytes (reads + writes).
    pub fn total_bytes(&self) -> u64 {
        self.read_bytes.get() + self.write_bytes.get()
    }

    /// Row-buffer hit rate over all line requests.
    pub fn row_hit_rate(&self) -> f64 {
        let total = self.row_hits.get() + self.row_misses.get();
        if total == 0 {
            0.0
        } else {
            self.row_hits.get() as f64 / total as f64
        }
    }
}

#[derive(Debug, Clone)]
struct Bank {
    open_row: Option<u64>,
    /// Cycle at which the bank has an activated row and can transfer data.
    ready_at: Cycle,
}

#[derive(Debug, Clone)]
struct Channel {
    /// The (fractional) cycle at which the channel data bus becomes
    /// free. Tracked in sub-cycle resolution so that a 64 B burst at
    /// 25.6 B/cycle occupies exactly 2.5 cycles instead of a rounded 3 —
    /// rounding up would silently shave 17 % off the peak bandwidth.
    free_at: f64,
    banks: Vec<Bank>,
}

/// A multi-channel DRAM with row-buffer timing and FCFS per-channel queues.
///
/// Contention model: each channel owns a `free_at` horizon. A burst that
/// arrives while the channel is busy is queued behind it (FCFS), which is
/// how co-located DNNs slow each other down on the memory bus. Per-task
/// bandwidth throttling (MoCA-style) is layered on top by the runtime.
#[derive(Debug, Clone)]
pub struct DramModel {
    cfg: DramConfig,
    line_bytes: u64,
    burst_cycles: f64,
    channels: Vec<Channel>,
    stats: DramStats,
}

impl DramModel {
    /// Creates a DRAM model for lines of `line_bytes` bytes.
    pub fn new(cfg: DramConfig, line_bytes: u64) -> Self {
        let channels = (0..cfg.channels)
            .map(|_| Channel {
                free_at: 0.0,
                banks: vec![
                    Bank {
                        open_row: None,
                        ready_at: 0,
                    };
                    cfg.banks_per_channel as usize
                ],
            })
            .collect();
        let burst_cycles = line_bytes as f64 / cfg.channel_bytes_per_cycle();
        DramModel {
            cfg,
            line_bytes,
            burst_cycles,
            channels,
            stats: DramStats::default(),
        }
    }

    /// The configuration this model was built with.
    pub fn config(&self) -> &DramConfig {
        &self.cfg
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }

    /// Resets statistics (leaves bank state intact).
    pub fn reset_stats(&mut self) {
        self.stats = DramStats::default();
    }

    /// Channel index for a line address (line-granularity interleaving).
    #[inline]
    pub fn channel_of(&self, addr: PhysAddr) -> usize {
        (addr.line_index(self.line_bytes) % u64::from(self.cfg.channels)) as usize
    }

    #[inline]
    fn bank_and_row(&self, addr: PhysAddr) -> (usize, u64) {
        let row_index = addr.0 / self.cfg.row_bytes;
        let bank = (row_index % u64::from(self.cfg.banks_per_channel)) as usize;
        (bank, row_index)
    }

    /// Issues a burst of `lines` consecutive cache lines starting at `addr`.
    ///
    /// Returns the completion cycle. `extra_queue_delay` lets the caller
    /// model bandwidth throttling (the burst may not start before
    /// `now + extra_queue_delay`).
    pub fn access_burst(
        &mut self,
        now: Cycle,
        addr: PhysAddr,
        lines: u64,
        is_write: bool,
        extra_queue_delay: Cycle,
    ) -> Cycle {
        if lines == 0 {
            return now;
        }
        self.stats.requests.incr();
        let bytes = lines * self.line_bytes;
        if is_write {
            self.stats.write_bytes.add(bytes);
        } else {
            self.stats.read_bytes.add(bytes);
        }

        let earliest = now + extra_queue_delay;
        let mut finish = earliest;
        for i in 0..lines {
            let line_addr = addr.offset(i * self.line_bytes);
            let ch_idx = self.channel_of(line_addr);
            let (bank_idx, row) = self.bank_and_row(line_addr);
            let burst = self.burst_cycles;
            let cas = self.cfg.cas_latency;
            let miss_pen = self.cfg.row_miss_penalty;

            let ch = &mut self.channels[ch_idx];
            let bank = &mut ch.banks[bank_idx];
            let row_hit = bank.open_row == Some(row);
            if row_hit {
                self.stats.row_hits.incr();
            } else {
                // Precharge + activate runs on the bank, overlapping with
                // data transfers of other banks on the same channel
                // (bank-level parallelism, as in DRAMsim3's FR-FCFS).
                self.stats.row_misses.incr();
                bank.open_row = Some(row);
                bank.ready_at = earliest.max(bank.ready_at) + miss_pen;
            }
            let data_start = (earliest as f64).max(ch.free_at).max(bank.ready_at as f64);
            ch.free_at = data_start + burst;
            self.stats.busy_cycles.add(burst.ceil() as u64);
            finish = finish.max((data_start + burst).ceil() as Cycle + cas);
        }
        finish
    }

    /// Latency of a single line access with no queueing (used for
    /// analytical latency estimates in the mapper).
    pub fn unloaded_line_latency(&self) -> Cycle {
        self.cfg.cas_latency + self.burst_cycles.ceil() as Cycle
    }

    /// The earliest cycle at which any channel is free (useful to detect
    /// an idle memory system in tests).
    pub fn earliest_free(&self) -> Cycle {
        self.channels
            .iter()
            .map(|c| c.free_at.ceil() as Cycle)
            .min()
            .unwrap_or(0)
    }

    /// Effective bandwidth (bytes/cycle) achieved since the last stats
    /// reset, measured over `elapsed` cycles.
    pub fn achieved_bandwidth(&self, elapsed: Cycle) -> f64 {
        if elapsed == 0 {
            0.0
        } else {
            self.stats.total_bytes() as f64 / elapsed as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use camdn_common::types::KIB;

    fn model() -> DramModel {
        DramModel::new(DramConfig::paper_default(), 64)
    }

    #[test]
    fn traffic_accounting() {
        let mut d = model();
        d.access_burst(0, PhysAddr(0), 10, false, 0);
        d.access_burst(0, PhysAddr(4096), 5, true, 0);
        assert_eq!(d.stats().read_bytes.get(), 640);
        assert_eq!(d.stats().write_bytes.get(), 320);
        assert_eq!(d.stats().total_bytes(), 960);
        assert_eq!(d.stats().requests.get(), 2);
    }

    #[test]
    fn row_hits_are_faster_than_misses() {
        let mut d = model();
        // First access opens the row (miss).
        let t1 = d.access_burst(0, PhysAddr(0), 1, false, 0);
        // Second access to the same row on an idle bus: row hit.
        let free = d.earliest_free().max(t1);
        let t2 = d.access_burst(free, PhysAddr(64 * 4), 1, false, 0) - free;
        // A fresh model accessing a different row: row miss.
        let mut d2 = model();
        let t3 = d2.access_burst(0, PhysAddr(0), 1, false, 0);
        assert!(t2 < t3, "row hit {t2} should beat row miss {t3}");
        assert_eq!(d.stats().row_hits.get(), 1);
        assert_eq!(d.stats().row_misses.get(), 1);
    }

    #[test]
    fn sequential_stream_uses_all_channels() {
        let d = model();
        // 64 consecutive lines interleave across 4 channels.
        let mut seen = [false; 4];
        for i in 0..64u64 {
            seen[d.channel_of(PhysAddr(i * 64))] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn contention_serializes_on_a_channel() {
        let mut d = model();
        // Two requesters hammer the same addresses (same channels).
        let a = d.access_burst(0, PhysAddr(0), 32 * 4, false, 0);
        let b = d.access_burst(0, PhysAddr(0), 32 * 4, false, 0);
        assert!(b > a, "second request must queue behind the first");
    }

    const MIB_LINES: u64 = (1024 * KIB) / 64;

    #[test]
    fn big_burst_throughput_close_to_peak() {
        let mut d = model();
        // Stream 1 MiB sequentially from time 0.
        let done = d.access_burst(0, PhysAddr(0), MIB_LINES, false, 0);
        let bw = d.achieved_bandwidth(done);
        // Should reach at least half of the 102.4 B/cycle peak even with
        // row-miss overheads on a fresh bank state.
        assert!(bw > 51.0, "achieved bandwidth {bw:.1} B/cycle too low");
        assert!(bw <= 102.4 + 1e-9);
    }

    #[test]
    fn extra_queue_delay_postpones_start() {
        let mut d1 = model();
        let mut d2 = model();
        let t1 = d1.access_burst(0, PhysAddr(0), 4, false, 0);
        let t2 = d2.access_burst(0, PhysAddr(0), 4, false, 1000);
        assert_eq!(t2, t1 + 1000);
    }

    #[test]
    fn zero_line_burst_is_noop() {
        let mut d = model();
        assert_eq!(d.access_burst(77, PhysAddr(0), 0, false, 0), 77);
        assert_eq!(d.stats().requests.get(), 0);
    }

    #[test]
    fn row_hit_rate_reporting() {
        let mut d = model();
        d.access_burst(0, PhysAddr(0), 32, false, 0);
        let r = d.stats().row_hit_rate();
        assert!(r > 0.0 && r < 1.0, "mixed hits/misses expected, got {r}");
    }

    #[test]
    fn reset_stats_clears_counters_only() {
        let mut d = model();
        d.access_burst(0, PhysAddr(0), 8, false, 0);
        let busy = d.earliest_free();
        d.reset_stats();
        assert_eq!(d.stats().total_bytes(), 0);
        assert_eq!(d.earliest_free(), busy, "bank/bus state must survive");
    }
}
