//! Whole-model description and aggregate statistics.

use crate::layer::{Layer, WeightClass};
use serde::{Deserialize, Serialize};

/// Application domain, per Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Domain {
    /// Computer vision.
    ComputerVision,
    /// Natural language processing.
    Nlp,
    /// Audio processing.
    Audio,
    /// Point-cloud perception.
    PointCloud,
}

/// Model family, the "Type" column of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Family {
    /// Plain convolutional network.
    Conv,
    /// Depth-wise-separable convolutional network.
    DwConv,
    /// Transformer.
    Transformer,
    /// LSTM-based recurrent network.
    Lstm,
}

/// A benchmark DNN: an ordered chain of layers with a QoS target.
///
/// Models are chains: layer `i` consumes the output of layer `i − 1` as
/// its input activation. (Residual adds appear as explicit element-wise
/// layers, which is what the memory system sees.)
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Model {
    /// Full model name, e.g. `"ResNet50"`.
    pub name: String,
    /// Two-letter abbreviation used in the paper's figures, e.g. `"RS"`.
    pub abbr: String,
    /// Application domain.
    pub domain: Domain,
    /// Model family.
    pub family: Family,
    /// QoS latency target in milliseconds (Table I).
    pub qos_ms: f64,
    /// The layer chain.
    pub layers: Vec<Layer>,
}

impl Model {
    /// Total multiply-accumulates over all layers.
    pub fn total_macs(&self) -> u64 {
        self.layers.iter().map(|l| l.nest.macs()).sum()
    }

    /// Total static parameter bytes (weights + biases).
    pub fn total_weight_bytes(&self) -> u64 {
        self.layers.iter().map(|l| l.static_weight_bytes()).sum()
    }

    /// Sum of all inter-layer intermediate tensor sizes (each layer's
    /// output except the last).
    pub fn total_intermediate_bytes(&self) -> u64 {
        self.layers
            .iter()
            .take(self.layers.len().saturating_sub(1))
            .map(|l| l.output_bytes())
            .sum()
    }

    /// Largest single intermediate tensor.
    pub fn max_intermediate_bytes(&self) -> u64 {
        self.layers
            .iter()
            .take(self.layers.len().saturating_sub(1))
            .map(|l| l.output_bytes())
            .max()
            .unwrap_or(0)
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Fraction of traffic-relevant bytes that are intermediates rather
    /// than static weights — the models with the highest ratio (MobileNet,
    /// EfficientNet) benefit most from CaMDN's LBM (Section IV-B1).
    pub fn intermediate_ratio(&self) -> f64 {
        let w = self.total_weight_bytes() as f64;
        let i = self.total_intermediate_bytes() as f64;
        if w + i == 0.0 {
            0.0
        } else {
            i / (w + i)
        }
    }

    /// True if any layer's weight operand is an activation (transformers).
    pub fn has_activation_matmuls(&self) -> bool {
        self.layers
            .iter()
            .any(|l| l.weight_class == WeightClass::Activation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::OpKind;
    use crate::nest::LoopNest;

    fn tiny_model() -> Model {
        Model {
            name: "Tiny".into(),
            abbr: "TY".into(),
            domain: Domain::ComputerVision,
            family: Family::Conv,
            qos_ms: 1.0,
            layers: vec![
                Layer::new("c1", OpKind::Conv, LoopNest::conv(16, 8, 8, 3, 3, 1)),
                Layer::new("c2", OpKind::Conv, LoopNest::conv(32, 8, 8, 16, 3, 1)),
                Layer::new("fc", OpKind::Linear, LoopNest::matmul(1, 32 * 64, 10)),
            ],
        }
    }

    #[test]
    fn aggregates() {
        let m = tiny_model();
        assert_eq!(m.num_layers(), 3);
        assert_eq!(
            m.total_macs(),
            m.layers.iter().map(|l| l.nest.macs()).sum::<u64>()
        );
        // Intermediates: outputs of c1 and c2 only.
        assert_eq!(m.total_intermediate_bytes(), 16 * 64 + 32 * 64);
        assert_eq!(m.max_intermediate_bytes(), 32 * 64);
    }

    #[test]
    fn intermediate_ratio_in_unit_range() {
        let m = tiny_model();
        let r = m.intermediate_ratio();
        assert!(r > 0.0 && r < 1.0);
    }
}
