//! Benchmark DNN model zoo for the CaMDN reproduction (Table I of the
//! paper).
//!
//! Every model is described as a chain of layers on a canonical 7-D loop
//! nest ([`nest::LoopNest`]): the representation the cache-aware mapper
//! tiles and schedules. Only shapes and byte counts are modelled — cache
//! behaviour depends on sizes and reuse structure, not on tensor values.
//!
//! # Example
//!
//! ```
//! use camdn_models::zoo;
//!
//! let resnet = zoo::resnet50();
//! println!(
//!     "{}: {} layers, {:.1} GMACs, {:.1} MB weights",
//!     resnet.name,
//!     resnet.num_layers(),
//!     resnet.total_macs() as f64 / 1e9,
//!     resnet.total_weight_bytes() as f64 / 1e6,
//! );
//! assert_eq!(resnet.abbr, "RS");
//! ```

#![warn(missing_docs)]
#![deny(deprecated)]

pub mod layer;
pub mod model;
pub mod nest;
pub mod zoo;

pub use layer::{Layer, OpKind, WeightClass};
pub use model::{Domain, Family, Model};
pub use nest::LoopNest;
