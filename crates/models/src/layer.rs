//! Layers and their classification.

use crate::nest::LoopNest;
use serde::{Deserialize, Serialize};

/// Operator class of a layer (used for reporting and utilization).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// Dense 2-D convolution.
    Conv,
    /// Depth-wise convolution.
    DwConv,
    /// Fully-connected / projection matmul with static weights.
    Linear,
    /// Activation–activation matmul (attention scores / context).
    MatMul,
    /// Fused multi-head self-attention (QKᵀ softmax + AV in one kernel).
    Attention,
    /// Recurrent LSTM gate GEMM: the weight matrix is re-swept once per
    /// timestep (sequential dependence).
    Lstm,
    /// Pooling (no weights, light compute).
    Pool,
    /// Element-wise op (residual add, activation rescale).
    Eltwise,
}

impl OpKind {
    /// Short lowercase label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            OpKind::Conv => "conv",
            OpKind::DwConv => "dwconv",
            OpKind::Linear => "linear",
            OpKind::MatMul => "matmul",
            OpKind::Attention => "attention",
            OpKind::Lstm => "lstm",
            OpKind::Pool => "pool",
            OpKind::Eltwise => "eltwise",
        }
    }
}

/// Whether the "weight" operand of the nest is a static parameter or a
/// runtime activation (attention matmuls multiply two activations).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WeightClass {
    /// Static model parameter: read-only, shared across inferences (and
    /// across NPUs of a multi-NPU group → multicast candidate).
    Static,
    /// Produced by an earlier layer at runtime: an intermediate tensor.
    Activation,
    /// The layer has no second operand at all (pooling, element-wise).
    None,
}

/// One layer of a model: an operator instance on the canonical nest.
///
/// `Hash`/`Eq` are structural, which is what lets the mapper's
/// [`PlanCache`](../camdn_mapper/struct.PlanCache.html) key solved
/// candidate ladders by layer content.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Layer {
    /// Human-readable name, unique within the model.
    pub name: String,
    /// Operator class.
    pub op: OpKind,
    /// Loop-nest bounds.
    pub nest: LoopNest,
    /// Classification of the weight operand.
    pub weight_class: WeightClass,
    /// Explicit `(input, output)` byte sizes for fused operators whose
    /// memory footprint the nest alone cannot express (attention).
    #[serde(default)]
    pub io_override: Option<(u64, u64)>,
}

impl Layer {
    /// Creates a layer with a static weight operand.
    pub fn new(name: impl Into<String>, op: OpKind, nest: LoopNest) -> Self {
        Layer {
            name: name.into(),
            op,
            nest,
            weight_class: WeightClass::Static,
            io_override: None,
        }
    }

    /// Creates a fused multi-head self-attention layer: reads the packed
    /// Q/K/V activations (`3·seq·d` bytes, or `2·seq·d` for
    /// cross-attention over precomputed K/V), writes the `seq·d`
    /// context. The `seq × seq` score matrices stay in the scratchpad.
    pub fn attention(name: impl Into<String>, seq: u64, d: u64, heads: u64, qkv: u64) -> Self {
        let dh = d / heads;
        Layer {
            name: name.into(),
            op: OpKind::Attention,
            nest: LoopNest {
                batch: heads,
                oc: dh,
                oh: seq,
                ow: 1,
                ic: 2 * seq, // QK^T and AV reductions over the sequence
                kh: 1,
                kw: 1,
                stride: 1,
                groups: 1,
                bytes_per_elem: 1,
            },
            weight_class: WeightClass::None,
            io_override: Some((qkv * seq * d, seq * d)),
        }
    }

    /// Creates an activation–activation matmul layer (no static weights).
    pub fn activation_matmul(name: impl Into<String>, nest: LoopNest) -> Self {
        Layer {
            name: name.into(),
            op: OpKind::MatMul,
            nest,
            weight_class: WeightClass::Activation,
            io_override: None,
        }
    }

    /// Creates a weight-less layer (pooling, element-wise add).
    pub fn unweighted(name: impl Into<String>, op: OpKind, nest: LoopNest) -> Self {
        Layer {
            name: name.into(),
            op,
            nest,
            weight_class: WeightClass::None,
            io_override: None,
        }
    }

    /// Input activation bytes, honoring fused-operator overrides.
    pub fn input_bytes(&self) -> u64 {
        self.io_override
            .map(|(i, _)| i)
            .unwrap_or_else(|| self.nest.input_bytes())
    }

    /// Output activation bytes, honoring fused-operator overrides.
    pub fn output_bytes(&self) -> u64 {
        self.io_override
            .map(|(_, o)| o)
            .unwrap_or_else(|| self.nest.output_bytes())
    }

    /// Static parameter bytes of this layer (0 if the weight operand is
    /// an activation or absent).
    pub fn static_weight_bytes(&self) -> u64 {
        match self.weight_class {
            WeightClass::Static => self.nest.weight_bytes() + self.nest.bias_bytes(),
            WeightClass::Activation | WeightClass::None => 0,
        }
    }

    /// Bytes of the weight *operand* that must be moved per execution,
    /// regardless of class (0 for [`WeightClass::None`]).
    pub fn weight_operand_bytes(&self) -> u64 {
        match self.weight_class {
            WeightClass::Static => self.nest.weight_bytes(),
            WeightClass::Activation => self.nest.weight_bytes() * self.nest.batch,
            WeightClass::None => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_vs_activation_weights() {
        let lin = Layer::new("fc", OpKind::Linear, LoopNest::matmul(128, 768, 768));
        assert!(lin.static_weight_bytes() > 768 * 768);
        let att = Layer::activation_matmul("qk", LoopNest::batched_matmul(12, 128, 64, 128));
        assert_eq!(att.static_weight_bytes(), 0);
        assert_eq!(att.weight_class, WeightClass::Activation);
    }

    #[test]
    fn op_labels() {
        assert_eq!(OpKind::DwConv.label(), "dwconv");
        assert_eq!(OpKind::Lstm.label(), "lstm");
    }
}
