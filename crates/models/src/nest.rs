//! The canonical 7-D loop nest every layer lowers onto.
//!
//! Following the mapping literature the paper builds on (Timeloop, CoSA,
//! dMazeRunner), each layer is described by the bounds of a perfectly
//! nested loop over `(B, OC, OH, OW, IC, KH, KW)`. Dense and depth-wise
//! convolutions use it directly; matrix multiplications (`M×K·K×N`) lower
//! with `OH = M`, `IC = K`, `OC = N`, `KH = KW = OW = 1`; LSTMs lower
//! their fused gate GEMM the same way.

use serde::{Deserialize, Serialize};

/// Loop bounds of one layer on the canonical nest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LoopNest {
    /// Batch (or attention-head) dimension.
    pub batch: u64,
    /// Output channels (N for matmuls).
    pub oc: u64,
    /// Output height (M for matmuls).
    pub oh: u64,
    /// Output width.
    pub ow: u64,
    /// Input channels (K for matmuls). For grouped/depth-wise layers this
    /// is the number of input channels *per group*.
    pub ic: u64,
    /// Kernel height.
    pub kh: u64,
    /// Kernel width.
    pub kw: u64,
    /// Spatial stride.
    pub stride: u64,
    /// Channel groups; depth-wise convolution has `groups == oc`.
    pub groups: u64,
    /// Bytes per element of weights/activations (1 for int8).
    pub bytes_per_elem: u64,
}

impl LoopNest {
    /// A dense convolution nest.
    pub fn conv(oc: u64, oh: u64, ow: u64, ic: u64, k: u64, stride: u64) -> Self {
        LoopNest {
            batch: 1,
            oc,
            oh,
            ow,
            ic,
            kh: k,
            kw: k,
            stride,
            groups: 1,
            bytes_per_elem: 1,
        }
    }

    /// A depth-wise convolution nest (`groups == channels`).
    pub fn dwconv(channels: u64, oh: u64, ow: u64, k: u64, stride: u64) -> Self {
        LoopNest {
            batch: 1,
            oc: channels,
            oh,
            ow,
            ic: 1,
            kh: k,
            kw: k,
            stride,
            groups: channels,
            bytes_per_elem: 1,
        }
    }

    /// A matrix multiplication `M×K · K×N` nest.
    pub fn matmul(m: u64, k: u64, n: u64) -> Self {
        LoopNest {
            batch: 1,
            oc: n,
            oh: m,
            ow: 1,
            ic: k,
            kh: 1,
            kw: 1,
            stride: 1,
            groups: 1,
            bytes_per_elem: 1,
        }
    }

    /// A batched matrix multiplication (e.g. one matmul per attention
    /// head).
    pub fn batched_matmul(batch: u64, m: u64, k: u64, n: u64) -> Self {
        LoopNest {
            batch,
            ..LoopNest::matmul(m, k, n)
        }
    }

    /// Total multiply-accumulates.
    pub fn macs(&self) -> u64 {
        self.batch * self.oc * self.oh * self.ow * self.ic * self.kh * self.kw
    }

    /// Reduction dimension as seen by the PE array (`IC·KH·KW` per group).
    pub fn reduction(&self) -> u64 {
        self.ic * self.kh * self.kw
    }

    /// Input height implied by the output size, stride and kernel.
    pub fn ih(&self) -> u64 {
        if self.oh == 0 {
            return 0;
        }
        (self.oh - 1) * self.stride + self.kh
    }

    /// Input width implied by the output size, stride and kernel.
    pub fn iw(&self) -> u64 {
        if self.ow == 0 {
            return 0;
        }
        (self.ow - 1) * self.stride + self.kw
    }

    /// Total input channels across groups.
    pub fn total_ic(&self) -> u64 {
        self.ic * self.groups
    }

    /// Weight tensor size in bytes.
    pub fn weight_bytes(&self) -> u64 {
        self.oc * self.ic * self.kh * self.kw * self.bytes_per_elem
    }

    /// Input activation size in bytes (per batch element, times batch).
    pub fn input_bytes(&self) -> u64 {
        self.batch * self.total_ic() * self.ih() * self.iw() * self.bytes_per_elem
    }

    /// Output activation size in bytes.
    pub fn output_bytes(&self) -> u64 {
        self.batch * self.oc * self.oh * self.ow * self.bytes_per_elem
    }

    /// Bias size in bytes (one 32-bit accumulator-width value per output
    /// channel).
    pub fn bias_bytes(&self) -> u64 {
        self.oc * 4
    }

    /// Output spatial size (`B·OH·OW`), the number of output vectors.
    pub fn spatial(&self) -> u64 {
        self.batch * self.oh * self.ow
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_shapes() {
        // ResNet conv1: 7x7, 64 channels, stride 2, 112x112 out, 3 in ch.
        let n = LoopNest::conv(64, 112, 112, 3, 7, 2);
        assert_eq!(n.macs(), 64 * 112 * 112 * 3 * 49);
        assert_eq!(n.weight_bytes(), 64 * 3 * 49);
        assert_eq!(n.ih(), 111 * 2 + 7);
        assert_eq!(n.output_bytes(), 64 * 112 * 112);
    }

    #[test]
    fn dwconv_is_grouped() {
        let n = LoopNest::dwconv(128, 28, 28, 3, 1);
        assert_eq!(n.total_ic(), 128);
        assert_eq!(n.reduction(), 9); // only KH*KW reduces per group
        assert_eq!(n.macs(), 128 * 28 * 28 * 9);
        assert_eq!(n.weight_bytes(), 128 * 9);
    }

    #[test]
    fn matmul_lowering() {
        let n = LoopNest::matmul(197, 768, 2304);
        assert_eq!(n.macs(), 197 * 768 * 2304);
        assert_eq!(n.weight_bytes(), 768 * 2304);
        assert_eq!(n.input_bytes(), 197 * 768);
        assert_eq!(n.output_bytes(), 197 * 2304);
    }

    #[test]
    fn batched_matmul_scales_with_heads() {
        let single = LoopNest::matmul(197, 64, 197);
        let multi = LoopNest::batched_matmul(12, 197, 64, 197);
        assert_eq!(multi.macs(), 12 * single.macs());
        assert_eq!(multi.output_bytes(), 12 * single.output_bytes());
        // Weights are per-head in the nest abstraction.
        assert_eq!(multi.weight_bytes(), single.weight_bytes());
    }

    #[test]
    fn zero_spatial_is_safe() {
        let n = LoopNest {
            oh: 0,
            ow: 0,
            ..LoopNest::conv(8, 1, 1, 8, 3, 1)
        };
        assert_eq!(n.ih(), 0);
        assert_eq!(n.iw(), 0);
        assert_eq!(n.macs(), 0);
    }
}
