//! Convolutional benchmark models: ResNet-50, MobileNet-v2,
//! EfficientNet-B0 and PointPillars.
//!
//! All models run batch 1 at int8 precision (the native datatype of the
//! Gemmini-style NPU of Table II). Networks are flattened to layer
//! chains; residual branches appear as explicit element-wise layers and
//! downsample convolutions are placed inline, which preserves total
//! traffic and reuse structure (the quantities the evaluation measures).

use crate::layer::{Layer, OpKind};
use crate::model::{Domain, Family, Model};
use crate::nest::LoopNest;

fn conv(name: String, oc: u64, ohw: u64, ic: u64, k: u64, s: u64) -> Layer {
    Layer::new(name, OpKind::Conv, LoopNest::conv(oc, ohw, ohw, ic, k, s))
}

fn conv_hw(name: String, oc: u64, oh: u64, ow: u64, ic: u64, k: u64, s: u64) -> Layer {
    Layer::new(name, OpKind::Conv, LoopNest::conv(oc, oh, ow, ic, k, s))
}

fn dw(name: String, ch: u64, ohw: u64, k: u64, s: u64) -> Layer {
    Layer::new(name, OpKind::DwConv, LoopNest::dwconv(ch, ohw, ohw, k, s))
}

fn lin(name: String, m: u64, k: u64, n: u64) -> Layer {
    Layer::new(name, OpKind::Linear, LoopNest::matmul(m, k, n))
}

fn pool(name: String, ch: u64, ohw: u64, k: u64, s: u64) -> Layer {
    Layer::unweighted(
        name,
        OpKind::Pool,
        LoopNest {
            ic: 1,
            groups: ch,
            ..LoopNest::dwconv(ch, ohw, ohw, k, s)
        },
    )
}

fn add(name: String, ch: u64, ohw: u64) -> Layer {
    // Element-wise residual add: reads two CxHxW tensors. Grouped per
    // channel with ic = 2 per group, so input_bytes counts both operands
    // across all channels.
    Layer::unweighted(
        name,
        OpKind::Eltwise,
        LoopNest {
            batch: 1,
            oc: ch,
            oh: ohw,
            ow: ohw,
            ic: 2,
            kh: 1,
            kw: 1,
            stride: 1,
            groups: ch,
            bytes_per_elem: 1,
        },
    )
}

/// ResNet-50 \[27\]: the canonical dense-convolution benchmark
/// (Table I: CV / Conv, QoS 6.7 ms).
pub fn resnet50() -> Model {
    let mut layers = vec![
        conv("conv1".into(), 64, 112, 3, 7, 2),
        pool("maxpool".into(), 64, 56, 3, 2),
    ];
    // (mid channels, out channels, blocks, output spatial, first stride)
    let stages: [(u64, u64, u64, u64, u64); 4] = [
        (64, 256, 3, 56, 1),
        (128, 512, 4, 28, 2),
        (256, 1024, 6, 14, 2),
        (512, 2048, 3, 7, 2),
    ];
    let mut in_ch = 64u64;
    for (si, &(mid, out, blocks, sp, first_s)) in stages.iter().enumerate() {
        for b in 0..blocks {
            let s = if b == 0 { first_s } else { 1 };
            let p = format!("s{}b{}", si + 2, b);
            layers.push(conv(format!("{p}_conv1"), mid, sp, in_ch, 1, s));
            layers.push(conv(format!("{p}_conv2"), mid, sp, mid, 3, 1));
            layers.push(conv(format!("{p}_conv3"), out, sp, mid, 1, 1));
            if b == 0 {
                layers.push(conv(format!("{p}_down"), out, sp, in_ch, 1, s));
            }
            layers.push(add(format!("{p}_add"), out, sp));
            in_ch = out;
        }
    }
    layers.push(pool("avgpool".into(), 2048, 1, 7, 1));
    layers.push(lin("fc".into(), 1, 2048, 1000));
    Model {
        name: "ResNet50".into(),
        abbr: "RS".into(),
        domain: Domain::ComputerVision,
        family: Family::Conv,
        qos_ms: 6.7,
        layers,
    }
}

/// MobileNet-v2 \[28\]: inverted residuals with depth-wise convolutions
/// (Table I: CV / DwConv, QoS 2.8 ms). Its large intermediate-to-weight
/// ratio makes it the biggest winner from CaMDN's layer-block mapping.
pub fn mobilenet_v2() -> Model {
    let mut layers = vec![conv("conv0".into(), 32, 112, 3, 3, 2)];
    // (expand t, out channels, repeats, stride) at the given input spatial.
    let cfg: [(u64, u64, u64, u64); 7] = [
        (1, 16, 1, 1),
        (6, 24, 2, 2),
        (6, 32, 3, 2),
        (6, 64, 4, 2),
        (6, 96, 3, 1),
        (6, 160, 3, 2),
        (6, 320, 1, 1),
    ];
    let mut in_ch = 32u64;
    let mut sp = 112u64; // current spatial size
    for (bi, &(t, c_out, n, s_first)) in cfg.iter().enumerate() {
        for r in 0..n {
            let s = if r == 0 { s_first } else { 1 };
            let out_sp = if s == 2 { sp / 2 } else { sp };
            let exp = in_ch * t;
            let p = format!("b{}r{}", bi, r);
            if t > 1 {
                layers.push(conv(format!("{p}_expand"), exp, sp, in_ch, 1, 1));
            }
            layers.push(dw(format!("{p}_dw"), exp, out_sp, 3, s));
            layers.push(conv(format!("{p}_project"), c_out, out_sp, exp, 1, 1));
            if s == 1 && in_ch == c_out {
                layers.push(add(format!("{p}_add"), c_out, out_sp));
            }
            in_ch = c_out;
            sp = out_sp;
        }
    }
    layers.push(conv("head".into(), 1280, 7, 320, 1, 1));
    layers.push(pool("avgpool".into(), 1280, 1, 7, 1));
    layers.push(lin("fc".into(), 1, 1280, 1000));
    Model {
        name: "MobileNet-v2".into(),
        abbr: "MB".into(),
        domain: Domain::ComputerVision,
        family: Family::DwConv,
        qos_ms: 2.8,
        layers,
    }
}

/// EfficientNet-B0 \[29\]: MBConv blocks with squeeze-and-excitation
/// (Table I: CV / DwConv, QoS 2.8 ms).
pub fn efficientnet_b0() -> Model {
    let mut layers = vec![conv("stem".into(), 32, 112, 3, 3, 2)];
    // (expand, out channels, repeats, kernel, stride).
    let cfg: [(u64, u64, u64, u64, u64); 7] = [
        (1, 16, 1, 3, 1),
        (6, 24, 2, 3, 2),
        (6, 40, 2, 5, 2),
        (6, 80, 3, 3, 2),
        (6, 112, 3, 5, 1),
        (6, 192, 4, 5, 2),
        (6, 320, 1, 3, 1),
    ];
    let mut in_ch = 32u64;
    let mut sp = 112u64;
    for (bi, &(t, c_out, n, k, s_first)) in cfg.iter().enumerate() {
        for r in 0..n {
            let s = if r == 0 { s_first } else { 1 };
            let out_sp = if s == 2 { sp / 2 } else { sp };
            let exp = in_ch * t;
            let p = format!("mb{}r{}", bi, r);
            if t > 1 {
                layers.push(conv(format!("{p}_expand"), exp, sp, in_ch, 1, 1));
            }
            layers.push(dw(format!("{p}_dw"), exp, out_sp, k, s));
            // Squeeze-and-excitation: global pool + two tiny FCs.
            let se = (in_ch / 4).max(1);
            layers.push(pool(format!("{p}_sepool"), exp, 1, out_sp, 1));
            layers.push(lin(format!("{p}_sefc1"), 1, exp, se));
            layers.push(lin(format!("{p}_sefc2"), 1, se, exp));
            layers.push(conv(format!("{p}_project"), c_out, out_sp, exp, 1, 1));
            if s == 1 && in_ch == c_out {
                layers.push(add(format!("{p}_add"), c_out, out_sp));
            }
            in_ch = c_out;
            sp = out_sp;
        }
    }
    layers.push(conv("head".into(), 1280, 7, 320, 1, 1));
    layers.push(pool("avgpool".into(), 1280, 1, 7, 1));
    layers.push(lin("fc".into(), 1, 1280, 1000));
    Model {
        name: "EfficientNet-b0".into(),
        abbr: "EF".into(),
        domain: Domain::ComputerVision,
        family: Family::DwConv,
        qos_ms: 2.8,
        layers,
    }
}

/// PointPillars \[34\]: pillar feature net + 2-D CNN backbone + SSD head
/// (Table I: Point cloud / Conv, QoS 100 ms).
pub fn pointpillars() -> Model {
    let mut layers = Vec::new();
    // Pillar feature net: 12k pillars x 32 points, 9 features -> 64.
    layers.push(lin("pfn".into(), 12_000 * 32, 9, 64));
    // Pillar scatter produces a 496x432x64 pseudo-image; modelled as an
    // element-wise pass over the pseudo-image (grouped per channel so
    // the full 64-channel image is moved).
    layers.push(Layer::unweighted(
        "scatter",
        OpKind::Eltwise,
        LoopNest {
            batch: 1,
            oc: 64,
            oh: 496,
            ow: 432,
            ic: 1,
            kh: 1,
            kw: 1,
            stride: 1,
            groups: 64,
            bytes_per_elem: 1,
        },
    ));
    // Backbone block 1: stride-2 then 3x stride-1 at 248x216, 64 ch.
    layers.push(conv_hw("b1c0".into(), 64, 248, 216, 64, 3, 2));
    for i in 1..4 {
        layers.push(conv_hw(format!("b1c{i}"), 64, 248, 216, 64, 3, 1));
    }
    // Block 2: 128 ch at 124x108.
    layers.push(conv_hw("b2c0".into(), 128, 124, 108, 64, 3, 2));
    for i in 1..6 {
        layers.push(conv_hw(format!("b2c{i}"), 128, 124, 108, 128, 3, 1));
    }
    // Block 3: 256 ch at 62x54.
    layers.push(conv_hw("b3c0".into(), 256, 62, 54, 128, 3, 2));
    for i in 1..6 {
        layers.push(conv_hw(format!("b3c{i}"), 256, 62, 54, 256, 3, 1));
    }
    // Upsample heads (deconvs approximated as 1x1 projections at the
    // common 248x216 resolution).
    layers.push(conv_hw("up1".into(), 128, 248, 216, 64, 1, 1));
    layers.push(conv_hw("up2".into(), 128, 248, 216, 128, 1, 1));
    layers.push(conv_hw("up3".into(), 128, 248, 216, 256, 1, 1));
    // Detection heads on the concatenated 384-channel map.
    layers.push(conv_hw("head_cls".into(), 18, 248, 216, 384, 1, 1));
    layers.push(conv_hw("head_box".into(), 42, 248, 216, 384, 1, 1));
    layers.push(conv_hw("head_dir".into(), 12, 248, 216, 384, 1, 1));
    Model {
        name: "PointPillars".into(),
        abbr: "PP".into(),
        domain: Domain::PointCloud,
        family: Family::Conv,
        qos_ms: 100.0,
        layers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resnet50_parameter_count() {
        let m = resnet50();
        // ~25.5 M parameters (int8 bytes), within 10%.
        let w = m.total_weight_bytes() as f64;
        assert!(
            (w - 25.5e6).abs() / 25.5e6 < 0.10,
            "ResNet50 weights {w:.2e} B off from ~25.5 MB"
        );
        assert_eq!(m.qos_ms, 6.7);
    }

    #[test]
    fn resnet50_macs() {
        // ~4.1 GMACs for 224x224, within 15%.
        let m = resnet50();
        let g = m.total_macs() as f64 / 1e9;
        assert!((g - 4.1).abs() / 4.1 < 0.15, "ResNet50 {g:.2} GMACs");
    }

    #[test]
    fn mobilenet_v2_parameter_count() {
        let m = mobilenet_v2();
        let w = m.total_weight_bytes() as f64;
        assert!(
            (w - 3.4e6).abs() / 3.4e6 < 0.15,
            "MobileNet-v2 weights {w:.2e} B off from ~3.4 MB"
        );
    }

    #[test]
    fn mobilenet_is_intermediate_heavy() {
        // Section IV-B1: MB/EF have the largest intermediate proportions.
        let mb = mobilenet_v2();
        let rs = resnet50();
        assert!(mb.intermediate_ratio() > rs.intermediate_ratio());
        assert!(mb.intermediate_ratio() > 0.5);
    }

    #[test]
    fn efficientnet_b0_parameter_count() {
        let m = efficientnet_b0();
        let w = m.total_weight_bytes() as f64;
        // ~5.3 M params in the reference; our SE approximation lands close.
        assert!(
            (w - 5.3e6).abs() / 5.3e6 < 0.25,
            "EfficientNet-b0 weights {w:.2e} B"
        );
    }

    #[test]
    fn pointpillars_is_compute_heavy() {
        let m = pointpillars();
        assert!(m.total_macs() > 30_000_000_000, "PP should exceed 30 GMACs");
        assert_eq!(m.qos_ms, 100.0);
    }

    #[test]
    fn all_cnn_layers_have_positive_dims() {
        for m in [
            resnet50(),
            mobilenet_v2(),
            efficientnet_b0(),
            pointpillars(),
        ] {
            for l in &m.layers {
                assert!(
                    l.nest.oc > 0 && l.nest.oh > 0 && l.nest.ow > 0,
                    "{}",
                    l.name
                );
                assert!(l.nest.macs() > 0, "{} has zero MACs", l.name);
            }
        }
    }
}
