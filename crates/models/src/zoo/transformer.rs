//! Transformer benchmark models: ViT-B/16, BERT-base and Wav2Vec2-base.

use crate::layer::{Layer, OpKind};
use crate::model::{Domain, Family, Model};
use crate::nest::LoopNest;

fn lin(name: String, m: u64, k: u64, n: u64) -> Layer {
    Layer::new(name, OpKind::Linear, LoopNest::matmul(m, k, n))
}

fn add(name: String, m: u64, d: u64) -> Layer {
    // Residual add over two seq x d tensors (grouped per channel so both
    // operands are counted in input_bytes).
    Layer::unweighted(
        name,
        OpKind::Eltwise,
        LoopNest {
            batch: 1,
            oc: d,
            oh: m,
            ow: 1,
            ic: 2,
            kh: 1,
            kw: 1,
            stride: 1,
            groups: d,
            bytes_per_elem: 1,
        },
    )
}

/// Appends one standard pre-norm transformer encoder block: QKV
/// projection, fused multi-head attention (the `seq × seq` score
/// matrices live in the scratchpad, as in flash-style fused kernels),
/// output projection, residual add, and the two-layer MLP with its
/// residual add.
fn encoder_block(layers: &mut Vec<Layer>, prefix: &str, seq: u64, d: u64, heads: u64, ff: u64) {
    layers.push(lin(format!("{prefix}_qkv"), seq, d, 3 * d));
    layers.push(Layer::attention(format!("{prefix}_attn"), seq, d, heads, 3));
    layers.push(lin(format!("{prefix}_proj"), seq, d, d));
    layers.push(add(format!("{prefix}_add1"), seq, d));
    layers.push(lin(format!("{prefix}_fc1"), seq, d, ff));
    layers.push(lin(format!("{prefix}_fc2"), seq, ff, d));
    layers.push(add(format!("{prefix}_add2"), seq, d));
}

/// ViT-Base/16 \[30\] on 224×224 inputs: 196 patch tokens + class token,
/// 12 encoder layers at d=768 (Table I: CV / Trans, QoS 40 ms).
pub fn vit_base16() -> Model {
    let seq = 197u64;
    let d = 768u64;
    let mut layers = vec![Layer::new(
        "patch_embed",
        OpKind::Conv,
        LoopNest::conv(d, 14, 14, 3, 16, 16),
    )];
    for i in 0..12 {
        encoder_block(&mut layers, &format!("l{i}"), seq, d, 12, 4 * d);
    }
    layers.push(lin("head".into(), 1, d, 1000));
    Model {
        name: "ViT-base-16".into(),
        abbr: "VT".into(),
        domain: Domain::ComputerVision,
        family: Family::Transformer,
        qos_ms: 40.0,
        layers,
    }
}

/// BERT-base \[31\] at sequence length 128, 12 encoder layers at d=768
/// (Table I: NLP / Trans, QoS 40 ms). Embedding lookup is excluded
/// (sparse gather, negligible NPU traffic).
pub fn bert_base() -> Model {
    let seq = 128u64;
    let d = 768u64;
    let mut layers = Vec::new();
    for i in 0..12 {
        encoder_block(&mut layers, &format!("l{i}"), seq, d, 12, 4 * d);
    }
    layers.push(lin("pooler".into(), 1, d, d));
    layers.push(lin("classifier".into(), 1, d, 2));
    Model {
        name: "BERT-base".into(),
        abbr: "BE".into(),
        domain: Domain::Nlp,
        family: Family::Transformer,
        qos_ms: 40.0,
        layers,
    }
}

/// Wav2Vec2-base \[33\] on 1 s of 16 kHz audio: a 7-layer 1-D
/// convolutional feature extractor followed by 12 transformer layers at
/// d=768 over 49 frames (Table I: Audio / Trans, QoS 16.7 ms).
pub fn wav2vec2_base() -> Model {
    let mut layers = Vec::new();
    // (out length, in channels, kernel, stride) for the conv1d stack.
    let convs: [(u64, u64, u64, u64); 7] = [
        (3199, 1, 10, 5),
        (1599, 512, 3, 2),
        (799, 512, 3, 2),
        (399, 512, 3, 2),
        (199, 512, 3, 2),
        (99, 512, 2, 2),
        (49, 512, 2, 2),
    ];
    for (i, &(out_len, ic, k, s)) in convs.iter().enumerate() {
        layers.push(Layer::new(
            format!("feat{i}"),
            OpKind::Conv,
            LoopNest {
                batch: 1,
                oc: 512,
                oh: out_len,
                ow: 1,
                ic,
                kh: k,
                kw: 1,
                stride: s,
                groups: 1,
                bytes_per_elem: 1,
            },
        ));
    }
    let seq = 49u64;
    let d = 768u64;
    layers.push(lin("feat_proj".into(), seq, 512, d));
    for i in 0..12 {
        encoder_block(&mut layers, &format!("l{i}"), seq, d, 12, 4 * d);
    }
    layers.push(lin("lm_head".into(), seq, d, 32));
    Model {
        name: "Wav2Vec2-base".into(),
        abbr: "WV".into(),
        domain: Domain::Audio,
        family: Family::Transformer,
        qos_ms: 16.7,
        layers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::OpKind;

    #[test]
    fn vit_parameter_count() {
        let m = vit_base16();
        let w = m.total_weight_bytes() as f64;
        // ~86 M params for ViT-B/16.
        assert!((w - 86e6).abs() / 86e6 < 0.10, "ViT weights {w:.2e} B");
    }

    #[test]
    fn bert_parameter_count() {
        let m = bert_base();
        let w = m.total_weight_bytes() as f64;
        // Encoder-only (no embeddings): ~85 M params.
        assert!((w - 85e6).abs() / 85e6 < 0.10, "BERT weights {w:.2e} B");
    }

    #[test]
    fn transformers_have_fused_attention() {
        for m in [vit_base16(), bert_base(), wav2vec2_base()] {
            let n_attn = m
                .layers
                .iter()
                .filter(|l| l.op == OpKind::Attention)
                .count();
            assert_eq!(n_attn, 12, "{}: one fused attention per layer", m.name);
        }
    }

    #[test]
    fn attention_io_matches_qkv() {
        let m = bert_base();
        let attn = m.layers.iter().find(|l| l.op == OpKind::Attention).unwrap();
        assert_eq!(attn.input_bytes(), 3 * 128 * 768);
        assert_eq!(attn.output_bytes(), 128 * 768);
        assert_eq!(attn.static_weight_bytes(), 0);
        // MACs: QK^T + AV = 2 * seq^2 * d.
        assert_eq!(attn.nest.macs(), 2 * 128 * 128 * 768);
    }

    #[test]
    fn wav2vec2_feature_extractor_shrinks_sequence() {
        let m = wav2vec2_base();
        let first = &m.layers[0];
        let last_conv = &m.layers[6];
        assert_eq!(first.nest.oh, 3199);
        assert_eq!(last_conv.nest.oh, 49);
        // Downsampling factor 16000 -> 49 ~ 320x.
    }

    #[test]
    fn vit_macs_magnitude() {
        // ViT-B/16 is ~17.5 GMACs at 224x224.
        let g = vit_base16().total_macs() as f64 / 1e9;
        assert!((g - 17.5).abs() / 17.5 < 0.15, "ViT {g:.2} GMACs");
    }
}
