//! GNMT: the LSTM benchmark model.

use crate::layer::{Layer, OpKind};
use crate::model::{Domain, Family, Model};
use crate::nest::LoopNest;

/// Sequence length of the scaled GNMT stack.
pub const GNMT_SEQ: u64 = 16;
/// Hidden size of the scaled GNMT stack.
pub const GNMT_HIDDEN: u64 = 512;
/// Sub-word vocabulary of the scaled GNMT stack.
pub const GNMT_VOCAB: u64 = 4096;

/// GNMT \[32\] (Table I: NLP / LSTM, QoS 6.7 ms).
///
/// A scaled GNMT-style translation stack (hidden 512, sequence 16,
/// 4 encoder + 4 decoder layers, 4 Ki sub-word vocabulary). Each LSTM
/// layer follows the cuDNN decomposition: the *input* gate GEMM
/// (`X·W_x`) is computed for the whole sequence at once (weights
/// stationary), while the *recurrent* gate GEMM (`h_{t−1}·W_h`) carries
/// a sequential dependence — the 1 MiB recurrent matrix is re-swept once
/// per timestep. That per-step re-sweep is the long-distance weight
/// reuse Fig. 3 reports for GNMT, and what a model-exclusive cache
/// region eliminates.
pub fn gnmt() -> Model {
    let seq = GNMT_SEQ;
    let hidden = GNMT_HIDDEN;
    let mut layers = Vec::new();
    let stack = |layers: &mut Vec<Layer>, prefix: &str| {
        for i in 0..4 {
            layers.push(Layer::new(
                format!("{prefix}_x{i}"),
                OpKind::Linear,
                LoopNest::matmul(seq, hidden, 4 * hidden),
            ));
            layers.push(Layer::new(
                format!("{prefix}_h{i}"),
                OpKind::Lstm,
                LoopNest::matmul(seq, hidden, 4 * hidden),
            ));
        }
    };
    stack(&mut layers, "enc");
    stack(&mut layers, "dec");
    // Decoder attention over the encoder states (fused kernel reading
    // the decoder state and the encoder memory: 2·seq·hidden in).
    layers.push(Layer::attention("attn", seq, hidden, 1, 2));
    // Output projection to the (scaled) vocabulary.
    layers.push(Layer::new(
        "vocab_proj",
        OpKind::Linear,
        LoopNest::matmul(seq, hidden, GNMT_VOCAB),
    ));
    Model {
        name: "GNMT".into(),
        abbr: "GN".into(),
        domain: Domain::Nlp,
        family: Family::Lstm,
        qos_ms: 6.7,
        layers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gnmt_structure() {
        let m = gnmt();
        assert_eq!(m.layers.len(), 18);
        assert_eq!(m.family, Family::Lstm);
        // 16 gate GEMMs x 1 MiB + 2 MiB vocab projection ~= 19 MB.
        let w = m.total_weight_bytes() as f64;
        assert!((w - 19e6).abs() / 19e6 < 0.15, "GNMT weights {w:.2e} B");
    }

    #[test]
    fn gnmt_is_weight_dominated() {
        let m = gnmt();
        assert!(
            m.intermediate_ratio() < 0.15,
            "LSTM traffic is weight-bound"
        );
    }

    #[test]
    fn recurrent_layers_are_lstm_kind() {
        let m = gnmt();
        let n_rec = m.layers.iter().filter(|l| l.op == OpKind::Lstm).count();
        assert_eq!(n_rec, 8);
    }
}
