//! The multi-tenant benchmark of Table I: eight models spanning four
//! domains (CV, NLP, audio, point cloud) and four model types (Conv,
//! DwConv, Transformer, LSTM).
//!
//! | Domain | Model | Abbr. | Type | QoS (ms) |
//! |---|---|---|---|---|
//! | CV | ResNet50 | RS | Conv | 6.7 |
//! | CV | MobileNet-v2 | MB | DwConv | 2.8 |
//! | CV | EfficientNet-b0 | EF | DwConv | 2.8 |
//! | CV | ViT-base-16 | VT | Trans | 40.0 |
//! | NLP | BERT-base | BE | Trans | 40.0 |
//! | NLP | GNMT | GN | LSTM | 6.7 |
//! | Audio | Wav2Vec2-base | WV | Trans | 16.7 |
//! | Point cloud | PointPillars | PP | Conv | 100.0 |

mod cnn;
mod rnn;
mod transformer;

pub use cnn::{efficientnet_b0, mobilenet_v2, pointpillars, resnet50};
pub use rnn::gnmt;
pub use transformer::{bert_base, vit_base16, wav2vec2_base};

use crate::model::Model;

/// All eight benchmark models in Table I order.
///
/// # Example
///
/// ```
/// let zoo = camdn_models::zoo::all();
/// assert_eq!(zoo.len(), 8);
/// assert_eq!(zoo[0].abbr, "RS");
/// assert_eq!(zoo[7].abbr, "PP");
/// ```
pub fn all() -> Vec<Model> {
    vec![
        resnet50(),
        mobilenet_v2(),
        efficientnet_b0(),
        vit_base16(),
        bert_base(),
        gnmt(),
        wav2vec2_base(),
        pointpillars(),
    ]
}

/// Looks a model up by its Table I abbreviation (`"RS"`, `"MB"`, …).
pub fn by_abbr(abbr: &str) -> Option<Model> {
    all().into_iter().find(|m| m.abbr == abbr)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_roster() {
        let zoo = all();
        let abbrs: Vec<&str> = zoo.iter().map(|m| m.abbr.as_str()).collect();
        assert_eq!(abbrs, ["RS", "MB", "EF", "VT", "BE", "GN", "WV", "PP"]);
        let qos: Vec<f64> = zoo.iter().map(|m| m.qos_ms).collect();
        assert_eq!(qos, [6.7, 2.8, 2.8, 40.0, 40.0, 6.7, 16.7, 100.0]);
    }

    #[test]
    fn lookup_by_abbr() {
        assert_eq!(by_abbr("VT").unwrap().name, "ViT-base-16");
        assert!(by_abbr("XX").is_none());
    }

    #[test]
    fn every_model_is_nontrivial() {
        for m in all() {
            assert!(m.num_layers() >= 10 || m.abbr == "GN", "{}", m.name);
            assert!(m.total_macs() > 100_000_000, "{} too small", m.name);
            assert!(m.total_weight_bytes() > 1_000_000, "{}", m.name);
        }
    }

    #[test]
    fn model_names_and_layer_names_unique() {
        let zoo = all();
        for m in &zoo {
            let mut names: Vec<&str> = m.layers.iter().map(|l| l.name.as_str()).collect();
            let before = names.len();
            names.sort_unstable();
            names.dedup();
            assert_eq!(before, names.len(), "{} has duplicate layer names", m.name);
        }
    }
}
