fn main() {
    for m in camdn_models::zoo::all() {
        println!("{:14} {:3} layers  {:7.2} GMACs  weights {:7.2} MB  interm {:7.2} MB (max {:5.2} MB)  ratio {:.2}",
            m.name, m.num_layers(), m.total_macs() as f64/1e9,
            m.total_weight_bytes() as f64/1e6,
            m.total_intermediate_bytes() as f64/1e6,
            m.max_intermediate_bytes() as f64/1e6,
            m.intermediate_ratio());
    }
}
