//! Cache geometry and physical cache address (`pcaddr`) packing.
//!
//! Figure 5(b) of the paper divides a `pcaddr` into four bit fields, from
//! low to high: **byte offset | slice index | set index | way index**.
//! In this layout consecutive data lines are distributed among all slices
//! for higher cache bandwidth utilization, and a 32 KiB cache page is a
//! contiguous `pcaddr` range that occupies one way across a block of sets
//! in every slice.

use camdn_common::config::CacheConfig;
use serde::{Deserialize, Serialize};

/// A decoded physical cache address: which line of which slice/set/way,
/// plus the byte offset within the line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Pcaddr {
    /// Slice index.
    pub slice: u32,
    /// Set index within the slice.
    pub set: u32,
    /// Way index within the set.
    pub way: u32,
    /// Byte offset within the cache line.
    pub offset: u32,
}

/// Derived power-of-two cache geometry with `pcaddr`/page helpers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheGeometry {
    /// Cache line size in bytes.
    pub line_bytes: u64,
    /// Number of slices.
    pub slices: u32,
    /// Sets per slice.
    pub sets_per_slice: u32,
    /// Total ways.
    pub ways: u32,
    /// Cache page size in bytes.
    pub page_bytes: u64,
    offset_bits: u32,
    slice_bits: u32,
    set_bits: u32,
}

impl CacheGeometry {
    /// Builds the geometry from a [`CacheConfig`].
    ///
    /// # Panics
    ///
    /// Panics if the line size, slice count, set count or way count is not
    /// a power of two, or if a cache page does not cover a whole number of
    /// sets per slice (both hold for every configuration in the paper).
    pub fn new(cfg: &CacheConfig) -> Self {
        let sets_per_slice = cfg.sets_per_slice();
        assert!(cfg.line_bytes.is_power_of_two(), "line size must be 2^n");
        assert!(cfg.slices.is_power_of_two(), "slice count must be 2^n");
        assert!(sets_per_slice.is_power_of_two(), "sets/slice must be 2^n");
        assert!(cfg.ways.is_power_of_two(), "way count must be 2^n");
        let lines_per_page = cfg.page_bytes / cfg.line_bytes;
        assert!(
            lines_per_page.is_multiple_of(u64::from(cfg.slices)),
            "a page must span all slices evenly"
        );
        let sets_per_page = lines_per_page / u64::from(cfg.slices);
        assert!(
            sets_per_slice.is_multiple_of(sets_per_page),
            "sets per slice must be a multiple of sets per page"
        );
        CacheGeometry {
            line_bytes: cfg.line_bytes,
            slices: cfg.slices,
            sets_per_slice: sets_per_slice as u32,
            ways: cfg.ways,
            page_bytes: cfg.page_bytes,
            offset_bits: cfg.line_bytes.trailing_zeros(),
            slice_bits: cfg.slices.trailing_zeros(),
            set_bits: (sets_per_slice as u32).trailing_zeros(),
        }
    }

    /// Packs a decoded address into its `u64` bit representation.
    pub fn pack(&self, p: Pcaddr) -> u64 {
        debug_assert!(p.slice < self.slices);
        debug_assert!(p.set < self.sets_per_slice);
        debug_assert!(p.way < self.ways);
        debug_assert!(u64::from(p.offset) < self.line_bytes);
        (u64::from(p.way) << (self.offset_bits + self.slice_bits + self.set_bits))
            | (u64::from(p.set) << (self.offset_bits + self.slice_bits))
            | (u64::from(p.slice) << self.offset_bits)
            | u64::from(p.offset)
    }

    /// Decodes a packed `pcaddr`.
    pub fn unpack(&self, packed: u64) -> Pcaddr {
        let offset = (packed & (self.line_bytes - 1)) as u32;
        let slice = ((packed >> self.offset_bits) & u64::from(self.slices - 1)) as u32;
        let set = ((packed >> (self.offset_bits + self.slice_bits))
            & u64::from(self.sets_per_slice - 1)) as u32;
        let way = (packed >> (self.offset_bits + self.slice_bits + self.set_bits)) as u32;
        Pcaddr {
            slice,
            set,
            way,
            offset,
        }
    }

    /// Lines per cache page.
    pub fn lines_per_page(&self) -> u64 {
        self.page_bytes / self.line_bytes
    }

    /// Sets (per slice) covered by one cache page.
    pub fn sets_per_page(&self) -> u32 {
        (self.lines_per_page() / u64::from(self.slices)) as u32
    }

    /// Cache pages per way (across all slices).
    pub fn pages_per_way(&self) -> u32 {
        self.sets_per_slice / self.sets_per_page()
    }

    /// Total pages in the whole cache (all ways).
    pub fn total_pages(&self) -> u32 {
        self.pages_per_way() * self.ways
    }

    /// The `(way, first_set)` block a physical cache page occupies.
    pub fn page_location(&self, pcpn: u32) -> (u32, u32) {
        let way = pcpn / self.pages_per_way();
        let set_block = pcpn % self.pages_per_way();
        (way, set_block * self.sets_per_page())
    }

    /// Physical cache page number for a way/set pair (inverse of
    /// [`CacheGeometry::page_location`]).
    pub fn pcpn_of(&self, way: u32, set: u32) -> u32 {
        way * self.pages_per_way() + set / self.sets_per_page()
    }

    /// `pcaddr` of the `i`-th line inside page `pcpn` (offset 0).
    ///
    /// Consecutive lines walk the slices first (line-interleaved), then
    /// the sets, matching the Fig. 5(b) layout.
    pub fn line_in_page(&self, pcpn: u32, line_idx: u64) -> Pcaddr {
        debug_assert!(line_idx < self.lines_per_page());
        let (way, set_base) = self.page_location(pcpn);
        let slice = (line_idx % u64::from(self.slices)) as u32;
        let set = set_base + (line_idx / u64::from(self.slices)) as u32;
        Pcaddr {
            slice,
            set,
            way,
            offset: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use camdn_common::config::CacheConfig;
    use camdn_common::types::MIB;

    fn geom() -> CacheGeometry {
        CacheGeometry::new(&CacheConfig::paper_default())
    }

    #[test]
    fn paper_geometry() {
        let g = geom();
        assert_eq!(g.sets_per_slice, 2048);
        assert_eq!(g.lines_per_page(), 512);
        assert_eq!(g.sets_per_page(), 64);
        assert_eq!(g.pages_per_way(), 32);
        assert_eq!(g.total_pages(), 512); // 16 MiB / 32 KiB
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let g = geom();
        for &(slice, set, way, offset) in &[
            (0u32, 0u32, 0u32, 0u32),
            (7, 2047, 15, 63),
            (3, 1024, 12, 32),
            (5, 17, 4, 1),
        ] {
            let p = Pcaddr {
                slice,
                set,
                way,
                offset,
            };
            assert_eq!(g.unpack(g.pack(p)), p);
        }
    }

    #[test]
    fn packed_addresses_are_unique_lines() {
        let g = geom();
        // Distinct (slice,set,way) triples give distinct packed values.
        let a = g.pack(Pcaddr {
            slice: 1,
            set: 5,
            way: 2,
            offset: 0,
        });
        let b = g.pack(Pcaddr {
            slice: 2,
            set: 5,
            way: 2,
            offset: 0,
        });
        let c = g.pack(Pcaddr {
            slice: 1,
            set: 6,
            way: 2,
            offset: 0,
        });
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn page_location_roundtrip() {
        let g = geom();
        for pcpn in 0..g.total_pages() {
            let (way, set) = g.page_location(pcpn);
            assert_eq!(g.pcpn_of(way, set), pcpn);
        }
    }

    #[test]
    fn page_lines_interleave_slices() {
        let g = geom();
        let p0 = g.line_in_page(0, 0);
        let p1 = g.line_in_page(0, 1);
        let p8 = g.line_in_page(0, 8);
        assert_eq!(p0.slice, 0);
        assert_eq!(p1.slice, 1);
        assert_eq!(p8.slice, 0);
        assert_eq!(p8.set, p0.set + 1);
        assert_eq!(p0.way, p1.way);
    }

    #[test]
    fn scaling_geometries_are_valid() {
        for mb in [4u64, 8, 32, 64] {
            let cfg = CacheConfig::paper_default().with_total_bytes(mb * MIB);
            let g = CacheGeometry::new(&cfg);
            assert_eq!(
                u64::from(g.total_pages()) * g.page_bytes,
                mb * MIB,
                "page count must cover the full cache at {mb} MiB"
            );
        }
    }

    #[test]
    fn page_lines_stay_inside_one_way() {
        let g = geom();
        let pcpn = 37;
        let (way, _) = g.page_location(pcpn);
        for i in 0..g.lines_per_page() {
            assert_eq!(g.line_in_page(pcpn, i).way, way);
        }
    }
}
