//! Cache geometry, physical cache address (`pcaddr`) packing, and the
//! shared way-mask / tag-lane primitives.
//!
//! Figure 5(b) of the paper divides a `pcaddr` into four bit fields, from
//! low to high: **byte offset | slice index | set index | way index**.
//! In this layout consecutive data lines are distributed among all slices
//! for higher cache bandwidth utilization, and a 32 KiB cache page is a
//! contiguous `pcaddr` range that occupies one way across a block of sets
//! in every slice.
//!
//! # Way masks
//!
//! Both the transparent path ([`SharedCache`](crate::SharedCache)) and
//! the NPU-controlled subspace ([`Nec`](crate::Nec)) split the ways the
//! same way: the **highest** `npu_ways` ways belong to the NPU subspace,
//! the rest stay general-purpose. [`CacheGeometry::full_way_mask`],
//! [`CacheGeometry::npu_way_mask`] and [`CacheGeometry::first_npu_way`]
//! are the single definition of that split — there is deliberately no
//! second `1 << w` loop anywhere else in the crate.
//!
//! # Tag lanes
//!
//! The transparent cache stores per-way state as SoA planes (see
//! `transparent.rs`); the primitives over those planes live here as
//! unsafe-free lane helpers. Tag compares are [`eq_mask`] /
//! [`eq_mask_n`]; the `_n` variant is monomorphized per ways count (a
//! fixed trip count is what lets LLVM lower the compare to
//! `pcmpeqd`-class vector code on the baseline x86-64 target), and the
//! slice variant dispatches to it for every power-of-two ways count,
//! falling back to a scalar loop otherwise.
//!
//! # LRU order words
//!
//! Recency is kept as one packed `u64` per set instead of a per-way
//! stamp lane: nibble `r` holds the way index at recency rank `r`
//! (rank 0 = least recently used, rank `ways − 1` = most recently
//! used), nibbles at and above `ways` stay zero, and the low `ways`
//! nibbles always form a permutation of `0..ways`. Exact LRU in
//! 8 bytes per set: a touch rotates one nibble to the top
//! ([`lru_touch`]), the victim scan reads nibbles from the bottom
//! ([`lru_victim`]), and the rank lookup is a branch-free SWAR
//! zero-nibble find ([`lru_rank_of`]). Replacing the 32-bit stamp
//! plane with this word is what cut the tag pass's per-touch memory
//! traffic — the stamp scheme also needed a periodic rank-compaction
//! pass, which the order word makes structurally unnecessary.

use camdn_common::config::CacheConfig;
use serde::{Deserialize, Serialize};

/// Maximum ways count the lane helpers accept (and the widest fixed
/// specialization): way masks are `u16`, and the LRU order word packs
/// one 4-bit way index per recency rank.
pub const TAG_LANE_WIDTH: usize = 16;

/// Fixed-width core of [`eq_mask`]: bit `w` of the result is set iff
/// `tags[w] == probe`. `N` is at most [`TAG_LANE_WIDTH`]. Generic over
/// the lane word (the transparent cache stores `u16` tags; tests also
/// exercise `u32` lanes) — a fixed `N` and a sized element is all LLVM
/// needs to emit the packed compare.
#[inline]
#[must_use]
pub fn eq_mask_n<T: PartialEq + Copy, const N: usize>(tags: &[T; N], probe: T) -> u32 {
    const {
        assert!(N <= TAG_LANE_WIDTH, "way mask wider than 16 bits");
    }
    let mut m = 0u32;
    let mut w = 0;
    while w < N {
        m |= u32::from(tags[w] == probe) << w;
        w += 1;
    }
    m
}

/// Bitmask of ways whose stored tag equals `probe`.
///
/// `tags` is one set's way-tag lane (way 0 first, at most
/// [`TAG_LANE_WIDTH`] ways); bit `w` of the result is set iff
/// `tags[w] == probe`. Callers mask the result with the set's occupancy
/// bitset and the lookup's way mask — lanes of invalid ways hold stale
/// values and may spuriously match here.
///
/// Dispatches to the monomorphized [`eq_mask_n`] for every power-of-two
/// ways count; other (legal but unused) counts take the scalar loop.
#[inline]
#[must_use]
pub fn eq_mask<T: PartialEq + Copy>(tags: &[T], probe: T) -> u32 {
    debug_assert!(tags.len() <= TAG_LANE_WIDTH);
    match tags.len() {
        16 => {
            if let Some(t) = tags.first_chunk::<16>() {
                return eq_mask_n(t, probe);
            }
        }
        8 => {
            if let Some(t) = tags.first_chunk::<8>() {
                return eq_mask_n(t, probe);
            }
        }
        4 => {
            if let Some(t) = tags.first_chunk::<4>() {
                return eq_mask_n(t, probe);
            }
        }
        2 => {
            if let Some(t) = tags.first_chunk::<2>() {
                return eq_mask_n(t, probe);
            }
        }
        _ => {}
    }
    let mut m = 0u32;
    for (w, &t) in tags.iter().enumerate() {
        m |= u32::from(t == probe) << w;
    }
    m
}

/// Mask of the `n` lowest ways (`n ≤ 16`).
#[inline]
fn low_way_mask(n: u32) -> u16 {
    debug_assert!(n <= 16);
    if n >= 16 {
        u16::MAX
    } else {
        (1u16 << n) - 1
    }
}

/// Low `4 * ways` bits set — the nibbles an LRU order word may use.
#[inline]
#[must_use]
fn lru_nibble_mask(ways: u32) -> u64 {
    debug_assert!(0 < ways && ways as usize <= TAG_LANE_WIDTH);
    if ways >= 16 {
        u64::MAX
    } else {
        (1u64 << (4 * ways)) - 1
    }
}

/// The identity LRU order word for a `ways`-way set: way `r` at rank
/// `r`, so way 0 is the LRU and way `ways − 1` the MRU. The state a
/// set's recency order starts from when it materializes.
#[inline]
#[must_use]
pub fn lru_identity(ways: u32) -> u64 {
    0xFEDC_BA98_7654_3210 & lru_nibble_mask(ways)
}

/// Recency rank of `way` in `order` — the index of the nibble holding
/// `way`, found with a branch-free SWAR zero-nibble scan.
///
/// `way` must be present in `order`'s permutation (every way of the set
/// is, by the order-word invariant). The XOR against a broadcast of
/// `way` zeroes exactly that nibble; the classic `(y − 0x11…1) & !y &
/// 0x88…8` detector can raise spurious flags only *above* the lowest
/// genuine zero (borrows propagate upward), so the lowest set flag is
/// exact.
#[inline]
#[must_use]
pub fn lru_rank_of(order: u64, way: u32) -> u32 {
    let y = order ^ u64::from(way).wrapping_mul(0x1111_1111_1111_1111);
    let zeros = y.wrapping_sub(0x1111_1111_1111_1111) & !y & 0x8888_8888_8888_8888;
    zeros.trailing_zeros() >> 2
}

/// Rotates the way at `rank` out of `order` and reinserts it at the
/// MRU rank (`ways − 1`): nibbles below `rank` keep their place,
/// nibbles above slide down one rank, `way` lands on top.
///
/// `way` must be the value stored at `rank` (callers that just scanned
/// or looked it up already know both).
#[inline]
#[must_use]
pub fn lru_promote(order: u64, rank: u32, way: u32, ways: u32) -> u64 {
    debug_assert!(rank < ways && ways as usize <= TAG_LANE_WIDTH);
    debug_assert_eq!((order >> (4 * rank)) & 0xF, u64::from(way));
    let below = (1u64 << (4 * rank)) - 1;
    // Nibbles at and above `ways` are zero, so the slide cannot pull
    // garbage into the top rank.
    ((order & below) | ((order >> 4) & !below)) | (u64::from(way) << (4 * (ways - 1)))
}

/// Marks `way` most recently used: [`lru_rank_of`] + [`lru_promote`].
#[inline]
#[must_use]
pub fn lru_touch(order: u64, way: u32, ways: u32) -> u64 {
    lru_promote(order, lru_rank_of(order, way), way, ways)
}

/// The least recently used way among the ways in `allowed`, with its
/// rank — the nibble scan from the LRU end, stopping at the first
/// allowed way.
///
/// `allowed` must intersect the set's ways; with the common full mask
/// the scan exits on the first nibble. An `allowed` that covers no way
/// (callers guarantee non-empty masks) returns `(0, 0)` — documented
/// total behavior, like the rest of the lane helpers.
#[inline]
#[must_use]
pub fn lru_victim(order: u64, allowed: u32) -> (u32, u32) {
    let mut o = order;
    for rank in 0..TAG_LANE_WIDTH as u32 {
        let way = (o & 0xF) as u32;
        if (allowed >> way) & 1 != 0 {
            return (way, rank);
        }
        o >>= 4;
    }
    (0, 0)
}

/// A decoded physical cache address: which line of which slice/set/way,
/// plus the byte offset within the line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Pcaddr {
    /// Slice index.
    pub slice: u32,
    /// Set index within the slice.
    pub set: u32,
    /// Way index within the set.
    pub way: u32,
    /// Byte offset within the cache line.
    pub offset: u32,
}

/// Derived power-of-two cache geometry with `pcaddr`/page helpers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheGeometry {
    /// Cache line size in bytes.
    pub line_bytes: u64,
    /// Number of slices.
    pub slices: u32,
    /// Sets per slice.
    pub sets_per_slice: u32,
    /// Total ways.
    pub ways: u32,
    /// Cache page size in bytes.
    pub page_bytes: u64,
    offset_bits: u32,
    slice_bits: u32,
    set_bits: u32,
}

impl CacheGeometry {
    /// Builds the geometry from a [`CacheConfig`].
    ///
    /// # Panics
    ///
    /// Panics if the line size, slice count, set count or way count is not
    /// a power of two, or if a cache page does not cover a whole number of
    /// sets per slice (both hold for every configuration in the paper).
    pub fn new(cfg: &CacheConfig) -> Self {
        let sets_per_slice = cfg.sets_per_slice();
        assert!(cfg.line_bytes.is_power_of_two(), "line size must be 2^n");
        assert!(cfg.slices.is_power_of_two(), "slice count must be 2^n");
        assert!(sets_per_slice.is_power_of_two(), "sets/slice must be 2^n");
        assert!(cfg.ways.is_power_of_two(), "way count must be 2^n");
        let lines_per_page = cfg.page_bytes / cfg.line_bytes;
        assert!(
            lines_per_page.is_multiple_of(u64::from(cfg.slices)),
            "a page must span all slices evenly"
        );
        let sets_per_page = lines_per_page / u64::from(cfg.slices);
        assert!(
            sets_per_slice.is_multiple_of(sets_per_page),
            "sets per slice must be a multiple of sets per page"
        );
        CacheGeometry {
            line_bytes: cfg.line_bytes,
            slices: cfg.slices,
            sets_per_slice: sets_per_slice as u32,
            ways: cfg.ways,
            page_bytes: cfg.page_bytes,
            offset_bits: cfg.line_bytes.trailing_zeros(),
            slice_bits: cfg.slices.trailing_zeros(),
            set_bits: (sets_per_slice as u32).trailing_zeros(),
        }
    }

    /// Packs a decoded address into its `u64` bit representation.
    pub fn pack(&self, p: Pcaddr) -> u64 {
        debug_assert!(p.slice < self.slices);
        debug_assert!(p.set < self.sets_per_slice);
        debug_assert!(p.way < self.ways);
        debug_assert!(u64::from(p.offset) < self.line_bytes);
        (u64::from(p.way) << (self.offset_bits + self.slice_bits + self.set_bits))
            | (u64::from(p.set) << (self.offset_bits + self.slice_bits))
            | (u64::from(p.slice) << self.offset_bits)
            | u64::from(p.offset)
    }

    /// Decodes a packed `pcaddr`.
    pub fn unpack(&self, packed: u64) -> Pcaddr {
        let offset = (packed & (self.line_bytes - 1)) as u32;
        let slice = ((packed >> self.offset_bits) & u64::from(self.slices - 1)) as u32;
        let set = ((packed >> (self.offset_bits + self.slice_bits))
            & u64::from(self.sets_per_slice - 1)) as u32;
        let way = (packed >> (self.offset_bits + self.slice_bits + self.set_bits)) as u32;
        Pcaddr {
            slice,
            set,
            way,
            offset,
        }
    }

    /// Bit mask over all ways.
    #[inline]
    pub fn full_way_mask(&self) -> u16 {
        debug_assert!(self.ways <= 16, "way masks are u16");
        if self.ways == 16 {
            u16::MAX
        } else {
            (1u16 << self.ways) - 1
        }
    }

    /// First way of the NPU subspace when the **highest** `npu_ways`
    /// ways are reserved for it — the single definition of the
    /// general/NPU way split shared by the transparent path and the NEC.
    #[inline]
    pub fn first_npu_way(&self, npu_ways: u32) -> u32 {
        debug_assert!(npu_ways <= self.ways);
        self.ways - npu_ways
    }

    /// Mask of the ways reserved for the NPU subspace (the highest
    /// `npu_ways` ways; `0` when nothing is reserved).
    #[inline]
    pub fn npu_way_mask(&self, npu_ways: u32) -> u16 {
        self.full_way_mask() & !low_way_mask(self.first_npu_way(npu_ways))
    }

    /// Lines per cache page.
    pub fn lines_per_page(&self) -> u64 {
        self.page_bytes / self.line_bytes
    }

    /// Sets (per slice) covered by one cache page.
    pub fn sets_per_page(&self) -> u32 {
        (self.lines_per_page() / u64::from(self.slices)) as u32
    }

    /// Cache pages per way (across all slices).
    pub fn pages_per_way(&self) -> u32 {
        self.sets_per_slice / self.sets_per_page()
    }

    /// Total pages in the whole cache (all ways).
    pub fn total_pages(&self) -> u32 {
        self.pages_per_way() * self.ways
    }

    /// The `(way, first_set)` block a physical cache page occupies.
    pub fn page_location(&self, pcpn: u32) -> (u32, u32) {
        let way = pcpn / self.pages_per_way();
        let set_block = pcpn % self.pages_per_way();
        (way, set_block * self.sets_per_page())
    }

    /// Physical cache page number for a way/set pair (inverse of
    /// [`CacheGeometry::page_location`]).
    pub fn pcpn_of(&self, way: u32, set: u32) -> u32 {
        way * self.pages_per_way() + set / self.sets_per_page()
    }

    /// `pcaddr` of the `i`-th line inside page `pcpn` (offset 0).
    ///
    /// Consecutive lines walk the slices first (line-interleaved), then
    /// the sets, matching the Fig. 5(b) layout.
    pub fn line_in_page(&self, pcpn: u32, line_idx: u64) -> Pcaddr {
        debug_assert!(line_idx < self.lines_per_page());
        let (way, set_base) = self.page_location(pcpn);
        let slice = (line_idx % u64::from(self.slices)) as u32;
        let set = set_base + (line_idx / u64::from(self.slices)) as u32;
        Pcaddr {
            slice,
            set,
            way,
            offset: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use camdn_common::config::CacheConfig;
    use camdn_common::types::MIB;

    fn geom() -> CacheGeometry {
        CacheGeometry::new(&CacheConfig::paper_default())
    }

    #[test]
    fn paper_geometry() {
        let g = geom();
        assert_eq!(g.sets_per_slice, 2048);
        assert_eq!(g.lines_per_page(), 512);
        assert_eq!(g.sets_per_page(), 64);
        assert_eq!(g.pages_per_way(), 32);
        assert_eq!(g.total_pages(), 512); // 16 MiB / 32 KiB
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let g = geom();
        for &(slice, set, way, offset) in &[
            (0u32, 0u32, 0u32, 0u32),
            (7, 2047, 15, 63),
            (3, 1024, 12, 32),
            (5, 17, 4, 1),
        ] {
            let p = Pcaddr {
                slice,
                set,
                way,
                offset,
            };
            assert_eq!(g.unpack(g.pack(p)), p);
        }
    }

    #[test]
    fn packed_addresses_are_unique_lines() {
        let g = geom();
        // Distinct (slice,set,way) triples give distinct packed values.
        let a = g.pack(Pcaddr {
            slice: 1,
            set: 5,
            way: 2,
            offset: 0,
        });
        let b = g.pack(Pcaddr {
            slice: 2,
            set: 5,
            way: 2,
            offset: 0,
        });
        let c = g.pack(Pcaddr {
            slice: 1,
            set: 6,
            way: 2,
            offset: 0,
        });
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn page_location_roundtrip() {
        let g = geom();
        for pcpn in 0..g.total_pages() {
            let (way, set) = g.page_location(pcpn);
            assert_eq!(g.pcpn_of(way, set), pcpn);
        }
    }

    #[test]
    fn page_lines_interleave_slices() {
        let g = geom();
        let p0 = g.line_in_page(0, 0);
        let p1 = g.line_in_page(0, 1);
        let p8 = g.line_in_page(0, 8);
        assert_eq!(p0.slice, 0);
        assert_eq!(p1.slice, 1);
        assert_eq!(p8.slice, 0);
        assert_eq!(p8.set, p0.set + 1);
        assert_eq!(p0.way, p1.way);
    }

    #[test]
    fn scaling_geometries_are_valid() {
        for mb in [4u64, 8, 32, 64] {
            let cfg = CacheConfig::paper_default().with_total_bytes(mb * MIB);
            let g = CacheGeometry::new(&cfg);
            assert_eq!(
                u64::from(g.total_pages()) * g.page_bytes,
                mb * MIB,
                "page count must cover the full cache at {mb} MiB"
            );
        }
    }

    #[test]
    fn way_mask_helpers_agree_across_way_counts() {
        for ways in [1u32, 2, 4, 8, 16] {
            let cfg = CacheConfig {
                ways,
                npu_ways: 0,
                ..CacheConfig::paper_default()
            };
            let g = CacheGeometry::new(&cfg);
            assert_eq!(g.full_way_mask().count_ones(), ways);
            for npu in 0..=ways {
                let m = g.npu_way_mask(npu);
                assert_eq!(m.count_ones(), npu, "ways={ways} npu={npu}");
                // The reserved ways are exactly the highest ones.
                for w in 0..ways {
                    let reserved = w >= g.first_npu_way(npu);
                    assert_eq!(m & (1 << w) != 0, reserved, "ways={ways} npu={npu} w={w}");
                }
                assert_eq!(m & g.full_way_mask(), m, "mask stays inside real ways");
            }
        }
    }

    // --- tag-lane helpers (vector compare + LRU order words) ---------

    /// Scalar oracle for `eq_mask`.
    fn eq_mask_scalar(tags: &[u32], probe: u32) -> u32 {
        tags.iter()
            .enumerate()
            .map(|(w, &t)| u32::from(t == probe) << w)
            .fold(0, |m, b| m | b)
    }

    #[test]
    fn eq_mask_matches_scalar_on_lane_edges() {
        // Every lane position of every supported ways count, including
        // the scalar tail lane of a direct-mapped (ways = 1) set and
        // matches straddling chunk boundaries.
        for ways in [1usize, 2, 3, 4, 5, 8, 15, 16] {
            let mut tags: Vec<u32> = (0..ways as u32).map(|w| 0x40_0000 + w * 7).collect();
            for probe_way in 0..ways {
                let probe = tags[probe_way];
                assert_eq!(
                    eq_mask(&tags, probe),
                    eq_mask_scalar(&tags, probe),
                    "ways={ways} probe_way={probe_way}"
                );
                assert_eq!(eq_mask(&tags, probe), 1 << probe_way);
            }
            // No match at all, and a probe differing only in the lane
            // sign bit (the SWAR carry path's edge).
            assert_eq!(eq_mask(&tags, 0xDEAD_BEEF), 0);
            tags[0] = 0x8000_0000;
            assert_eq!(eq_mask(&tags, 0x8000_0000), 1);
            assert_eq!(eq_mask(&tags, 0), 0, "sign-bit lane must not alias zero");
        }
    }

    #[test]
    fn eq_mask_reports_duplicate_and_extreme_lanes() {
        // Duplicate tags (the same line cached in two ways under
        // disjoint way masks) must all report; callers pick the first.
        let tags = [5u32, 9, 5, 5, u32::MAX, 0, u32::MAX, 5];
        assert_eq!(eq_mask(&tags, 5), 0b1000_1101);
        assert_eq!(eq_mask(&tags, u32::MAX), 0b0101_0000);
        assert_eq!(eq_mask(&tags, 0), 0b0010_0000);
        assert_eq!(eq_mask::<u32>(&[], 7), 0, "empty lane set matches nothing");
        // The u16 instantiation (the transparent cache's tag width),
        // including both u16 extremes in one chunk.
        let narrow = [5u16, u16::MAX, 0, 5, 5, 9, u16::MAX, 5];
        assert_eq!(eq_mask(&narrow, 5), 0b1001_1001);
        assert_eq!(eq_mask(&narrow, u16::MAX), 0b0100_0010);
        assert_eq!(eq_mask(&narrow, 0), 0b0000_0100);
    }

    /// Reads an order word back into a rank-ordered way list.
    fn order_to_vec(order: u64, ways: u32) -> Vec<u32> {
        (0..ways)
            .map(|r| ((order >> (4 * r)) & 0xF) as u32)
            .collect()
    }

    #[test]
    fn lru_identity_is_the_identity_permutation() {
        for ways in [1u32, 2, 3, 4, 5, 8, 15, 16] {
            let id = lru_identity(ways);
            assert_eq!(order_to_vec(id, ways), (0..ways).collect::<Vec<_>>());
            // Nibbles at and above `ways` stay zero.
            if ways < 16 {
                assert_eq!(id >> (4 * ways), 0, "ways={ways}");
            }
        }
    }

    #[test]
    fn lru_touch_rotates_one_way_to_the_mru_rank() {
        // 4 ways, order LRU→MRU = [2, 0, 3, 1].
        let order = 0x1302u64;
        assert_eq!(lru_rank_of(order, 2), 0);
        assert_eq!(lru_rank_of(order, 0), 1);
        assert_eq!(lru_rank_of(order, 1), 3);
        // Touch the LRU way: everything slides down one rank.
        assert_eq!(order_to_vec(lru_touch(order, 2, 4), 4), vec![0, 3, 1, 2]);
        // Touch a middle way.
        assert_eq!(order_to_vec(lru_touch(order, 3, 4), 4), vec![2, 0, 1, 3]);
        // Touch the MRU way: a fixed point.
        assert_eq!(lru_touch(order, 1, 4), order);
        // Way 15 at the top lane of a full-width word (the SWAR scan's
        // all-ones edge).
        let full = lru_identity(16);
        assert_eq!(lru_rank_of(full, 15), 15);
        assert_eq!(lru_touch(full, 15, 16), full);
        assert_eq!(lru_rank_of(lru_touch(full, 0, 16), 0), 15);
    }

    #[test]
    fn lru_victim_scans_from_the_lru_end() {
        // 8 ways, order LRU→MRU = [5, 2, 7, 0, 1, 3, 4, 6].
        let order = 0x6431_0725u64;
        assert_eq!(lru_victim(order, 0xFF), (5, 0));
        // Disallowing the LRU way moves to the next rank.
        assert_eq!(lru_victim(order, 0xFF & !(1 << 5)), (2, 1));
        // A single allowed way is found at its own rank.
        assert_eq!(lru_victim(order, 1 << 6), (6, 7));
        // Degenerate empty mask: documented total behavior.
        assert_eq!(lru_victim(order, 0), (0, 0));
    }

    #[test]
    fn lru_order_words_match_a_list_oracle() {
        // Deterministic pseudo-random touch/evict traffic per ways
        // count, mirrored against a Vec-based recency list.
        let mut x = 0x9E37_79B9u32;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 17;
            x ^= x << 5;
            x
        };
        for ways in [1u32, 2, 3, 4, 5, 8, 11, 16] {
            let mut order = lru_identity(ways);
            let mut oracle: Vec<u32> = (0..ways).collect();
            for trial in 0..400 {
                let way = next() % ways;
                if next() & 1 == 0 {
                    // Touch: move `way` to the back (MRU) of the list.
                    assert_eq!(
                        lru_rank_of(order, way),
                        oracle.iter().position(|&w| w == way).unwrap() as u32,
                        "ways={ways} trial={trial}"
                    );
                    order = lru_touch(order, way, ways);
                    oracle.retain(|&w| w != way);
                    oracle.push(way);
                } else {
                    // Evict under a random non-empty mask, then promote
                    // the victim (what a fill does).
                    let allowed = {
                        let m = next() & (u32::from(u16::MAX) >> (16 - ways));
                        if m == 0 {
                            1
                        } else {
                            m
                        }
                    };
                    let (vw, vr) = lru_victim(order, allowed);
                    let want = oracle
                        .iter()
                        .position(|&w| (allowed >> w) & 1 != 0)
                        .unwrap();
                    assert_eq!(
                        (vw, vr),
                        (oracle[want], want as u32),
                        "ways={ways} trial={trial} allowed={allowed:#b}"
                    );
                    order = lru_promote(order, vr, vw, ways);
                    oracle.retain(|&w| w != vw);
                    oracle.push(vw);
                }
                assert_eq!(
                    order_to_vec(order, ways),
                    oracle,
                    "ways={ways} trial={trial}"
                );
                if ways < 16 {
                    assert_eq!(order >> (4 * ways), 0, "ways={ways} trial={trial}");
                }
            }
        }
    }

    #[test]
    fn page_lines_stay_inside_one_way() {
        let g = geom();
        let pcpn = 37;
        let (way, _) = g.page_location(pcpn);
        for i in 0..g.lines_per_page() {
            assert_eq!(g.line_in_page(pcpn, i).way, way);
        }
    }
}
