//! The NPU-Exclusive Controller (NEC), Section III-B2 of the paper.
//!
//! One NEC per cache slice takes control of the NPU subspace and serves
//! NPU-specific requests through a dual interface. We model the NECs of
//! all slices as one logical [`Nec`] because a cache page spans every
//! slice (Fig. 5b) and NPU requests are line-interleaved across slices.
//!
//! The NEC replaces hardware-managed replacement with explicit,
//! program-controlled data movement at cache-line granularity:
//!
//! * **basic semantics** — `fill` (memory → cache), `writeback`
//!   (cache → memory), `read`/`write` (cache ↔ NPU);
//! * **bypass semantics** — `bypass_read` / `bypass_write` move
//!   non-reusable data directly between memory and the NPU, reserving
//!   cache space for reusable data;
//! * **multicast semantics** — `multicast_read` /
//!   `multicast_bypass_read` combine identical requests from a group of
//!   NPUs running the same model, reducing NoC and memory pressure.
//!
//! The NEC also enforces *model exclusivity*: every operation names the
//! task that issued it, and the controller verifies the task owns the
//! pages it touches. Ownership is page-granular, maintained by the cache
//! page allocator in `camdn-core`.
//!
//! # Timing
//!
//! All NEC routes are **bulk DMA**: a transfer of `n` lines is one
//! operation, not `n` tag probes. Cache-side service time is closed
//! form (`hit_latency + n / (slices × lines_per_cycle)`), and the
//! DRAM-touching routes (`fill`, `writeback`, `bypass_*`, multicast
//! bypass) issue a single [`DramModel::access_burst`], whose
//! per-(row, channel) segment walk prices the whole burst in
//! O(rows × channels) — this is the structural reason the CaMDN
//! configurations simulate an order of magnitude faster than the
//! transparent baseline at equal fidelity. Multicast routes serve a
//! whole NPU group with one walk plus an analytic `group − 1` savings
//! term rather than one walk per replica.

use crate::geometry::CacheGeometry;
use camdn_common::config::CacheConfig;
use camdn_common::stats::Counter;
use camdn_common::types::{Cycle, PhysAddr};
use camdn_dram::DramModel;
use serde::{Deserialize, Serialize};

/// Identifier of a co-located task (tenant) as seen by the hardware.
pub type TaskId = u32;

/// Errors raised by the NEC when exclusivity is violated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NecError {
    /// The page is not owned by the requesting task.
    NotOwner {
        /// Physical cache page that was accessed.
        pcpn: u32,
        /// Task that issued the request.
        task: TaskId,
        /// Current owner, if any.
        owner: Option<TaskId>,
    },
    /// The page number is outside the NPU subspace.
    BadPage {
        /// Offending page number.
        pcpn: u32,
    },
    /// Attempt to claim a page that is already owned.
    AlreadyOwned {
        /// Offending page number.
        pcpn: u32,
        /// Current owner.
        owner: TaskId,
    },
}

impl std::fmt::Display for NecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NecError::NotOwner { pcpn, task, owner } => write!(
                f,
                "task {task} accessed cache page {pcpn} owned by {owner:?}"
            ),
            NecError::BadPage { pcpn } => {
                write!(f, "cache page {pcpn} is outside the NPU subspace")
            }
            NecError::AlreadyOwned { pcpn, owner } => {
                write!(f, "cache page {pcpn} is already owned by task {owner}")
            }
        }
    }
}

impl std::error::Error for NecError {}

/// Statistics of the NEC (NPU-controlled) path.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct NecStats {
    /// Lines served from the NPU subspace to NPUs (controlled hits).
    pub reads: Counter,
    /// Lines written by NPUs into the subspace.
    pub writes: Counter,
    /// Lines filled memory → cache.
    pub fills: Counter,
    /// Lines written back cache → memory.
    pub writebacks: Counter,
    /// Lines moved memory → NPU without caching.
    pub bypass_reads: Counter,
    /// Lines moved NPU → memory without caching.
    pub bypass_writes: Counter,
    /// Multicast read operations served.
    pub multicast_ops: Counter,
    /// Line transfers *saved* by multicast combining (group−1 per line).
    pub multicast_saved_lines: Counter,
}

impl NecStats {
    /// Lines that were served from cache rather than DRAM
    /// (reads + writes into the subspace).
    pub fn controlled_hits(&self) -> u64 {
        self.reads.get() + self.writes.get()
    }
}

/// The logical NPU-exclusive controller over the NPU subspace.
#[derive(Debug, Clone)]
pub struct Nec {
    geom: CacheGeometry,
    hit_latency: Cycle,
    lines_per_cycle: f64,
    npu_pages: u32,
    /// `page_owner[pcpn - first_pcpn]`: owner task, if claimed.
    page_owner: Vec<Option<TaskId>>,
    first_pcpn: u32,
    stats: NecStats,
}

impl Nec {
    /// Creates the controller for the NPU subspace defined by `cfg`
    /// (`cfg.npu_ways` of the highest ways).
    pub fn new(cfg: &CacheConfig) -> Self {
        let geom = CacheGeometry::new(cfg);
        let pages_per_way = geom.pages_per_way();
        let npu_pages = pages_per_way * cfg.npu_ways;
        // NPU subspace occupies the highest ways (the same ways
        // `CacheGeometry::npu_way_mask` reserves on the transparent
        // side); its first page number is the first page of the first
        // NPU way.
        let first_pcpn = pages_per_way * geom.first_npu_way(cfg.npu_ways);
        Nec {
            geom,
            hit_latency: cfg.hit_latency,
            lines_per_cycle: cfg.lines_per_cycle,
            npu_pages,
            page_owner: vec![None; npu_pages as usize],
            first_pcpn,
            stats: NecStats::default(),
        }
    }

    /// Number of pages in the NPU subspace.
    pub fn npu_pages(&self) -> u32 {
        self.npu_pages
    }

    /// First physical cache page number of the NPU subspace.
    pub fn first_pcpn(&self) -> u32 {
        self.first_pcpn
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &NecStats {
        &self.stats
    }

    /// Resets statistics (ownership survives).
    pub fn reset_stats(&mut self) {
        self.stats = NecStats::default();
    }

    fn page_slot(&self, pcpn: u32) -> Result<usize, NecError> {
        if pcpn < self.first_pcpn || pcpn >= self.first_pcpn + self.npu_pages {
            return Err(NecError::BadPage { pcpn });
        }
        Ok((pcpn - self.first_pcpn) as usize)
    }

    /// Records that `task` now owns page `pcpn` (called by the page
    /// allocator when a CPT mapping is installed).
    ///
    /// # Errors
    ///
    /// [`NecError::AlreadyOwned`] if the page is taken,
    /// [`NecError::BadPage`] if outside the subspace.
    pub fn claim_page(&mut self, task: TaskId, pcpn: u32) -> Result<(), NecError> {
        let slot = self.page_slot(pcpn)?;
        if let Some(owner) = self.page_owner[slot] {
            return Err(NecError::AlreadyOwned { pcpn, owner });
        }
        self.page_owner[slot] = Some(task);
        Ok(())
    }

    /// Releases a page owned by `task`.
    ///
    /// # Errors
    ///
    /// [`NecError::NotOwner`] if the page is not currently owned by `task`.
    pub fn release_page(&mut self, task: TaskId, pcpn: u32) -> Result<(), NecError> {
        let slot = self.page_slot(pcpn)?;
        if self.page_owner[slot] != Some(task) {
            return Err(NecError::NotOwner {
                pcpn,
                task,
                owner: self.page_owner[slot],
            });
        }
        self.page_owner[slot] = None;
        Ok(())
    }

    /// Owner of a page, if any.
    pub fn owner_of(&self, pcpn: u32) -> Option<TaskId> {
        self.page_slot(pcpn).ok().and_then(|s| self.page_owner[s])
    }

    /// Number of currently claimed pages.
    pub fn claimed_pages(&self) -> u32 {
        self.page_owner.iter().filter(|o| o.is_some()).count() as u32
    }

    fn check_owned(&self, task: TaskId, pcpns: &[u32]) -> Result<(), NecError> {
        for &p in pcpns {
            let slot = self.page_slot(p)?;
            if self.page_owner[slot] != Some(task) {
                return Err(NecError::NotOwner {
                    pcpn: p,
                    task,
                    owner: self.page_owner[slot],
                });
            }
        }
        Ok(())
    }

    /// Cache-side service time for `lines` line transfers (closed form:
    /// the slices collectively move `slices × lines_per_cycle` lines per
    /// cycle, so bulk DMA never loops per line).
    #[inline]
    fn serve_cycles(&self, lines: u64) -> Cycle {
        self.hit_latency
            + (lines as f64 / (f64::from(self.geom.slices) * self.lines_per_cycle)).ceil() as Cycle
    }

    /// **Basic semantics**: read `lines` lines of `task`'s region into the
    /// NPU (cache → NPU).
    ///
    /// # Errors
    ///
    /// Fails if any of `pcpns` is not owned by `task`.
    pub fn read(
        &mut self,
        now: Cycle,
        task: TaskId,
        pcpns: &[u32],
        lines: u64,
    ) -> Result<Cycle, NecError> {
        self.check_owned(task, pcpns)?;
        self.stats.reads.add(lines);
        Ok(now + self.serve_cycles(lines))
    }

    /// **Basic semantics**: write `lines` lines from the NPU into `task`'s
    /// region (NPU → cache).
    ///
    /// # Errors
    ///
    /// Fails if any of `pcpns` is not owned by `task`.
    pub fn write(
        &mut self,
        now: Cycle,
        task: TaskId,
        pcpns: &[u32],
        lines: u64,
    ) -> Result<Cycle, NecError> {
        self.check_owned(task, pcpns)?;
        self.stats.writes.add(lines);
        Ok(now + self.serve_cycles(lines))
    }

    /// **Basic semantics**: fill `lines` lines from DRAM (`src`) into
    /// `task`'s region (memory → cache).
    ///
    /// # Errors
    ///
    /// Fails if any of `pcpns` is not owned by `task`.
    #[allow(clippy::too_many_arguments)]
    pub fn fill(
        &mut self,
        now: Cycle,
        task: TaskId,
        pcpns: &[u32],
        src: PhysAddr,
        lines: u64,
        dram: &mut DramModel,
        bw_delay: Cycle,
    ) -> Result<Cycle, NecError> {
        self.check_owned(task, pcpns)?;
        self.stats.fills.add(lines);
        let dram_done = dram.access_burst(now, src, lines, false, bw_delay);
        Ok(dram_done.max(now + self.serve_cycles(lines)))
    }

    /// **Basic semantics**: write back `lines` lines of `task`'s region to
    /// DRAM at `dst` (cache → memory).
    ///
    /// # Errors
    ///
    /// Fails if any of `pcpns` is not owned by `task`.
    #[allow(clippy::too_many_arguments)]
    pub fn writeback(
        &mut self,
        now: Cycle,
        task: TaskId,
        pcpns: &[u32],
        dst: PhysAddr,
        lines: u64,
        dram: &mut DramModel,
        bw_delay: Cycle,
    ) -> Result<Cycle, NecError> {
        self.check_owned(task, pcpns)?;
        self.stats.writebacks.add(lines);
        let dram_done = dram.access_burst(now, dst, lines, true, bw_delay);
        Ok(dram_done.max(now + self.serve_cycles(lines)))
    }

    /// **Bypass semantics (1)**: bypass-read `lines` lines from memory to
    /// the NPU, without occupying any cache space.
    pub fn bypass_read(
        &mut self,
        now: Cycle,
        src: PhysAddr,
        lines: u64,
        dram: &mut DramModel,
        bw_delay: Cycle,
    ) -> Cycle {
        self.stats.bypass_reads.add(lines);
        dram.access_burst(now, src, lines, false, bw_delay)
    }

    /// **Bypass semantics (2)**: bypass-write `lines` lines from the NPU
    /// to memory, without occupying any cache space.
    pub fn bypass_write(
        &mut self,
        now: Cycle,
        dst: PhysAddr,
        lines: u64,
        dram: &mut DramModel,
        bw_delay: Cycle,
    ) -> Cycle {
        self.stats.bypass_writes.add(lines);
        dram.access_burst(now, dst, lines, true, bw_delay)
    }

    /// **Multicast semantics (3)**: multicast-read `lines` lines from the
    /// cache to a group of `group` NPUs running the same model. The cache
    /// is read once; `group − 1` duplicate transfers are saved.
    ///
    /// # Errors
    ///
    /// Fails if any of `pcpns` is not owned by `task`.
    pub fn multicast_read(
        &mut self,
        now: Cycle,
        task: TaskId,
        pcpns: &[u32],
        lines: u64,
        group: u32,
    ) -> Result<Cycle, NecError> {
        assert!(group >= 1, "multicast group must be at least 1");
        self.check_owned(task, pcpns)?;
        self.stats.reads.add(lines);
        self.stats.multicast_ops.incr();
        self.stats
            .multicast_saved_lines
            .add(lines * u64::from(group - 1));
        Ok(now + self.serve_cycles(lines))
    }

    /// **Multicast semantics (4)**: multicast-bypass-read `lines` lines
    /// from memory to a group of `group` NPUs: one DRAM fetch serves the
    /// whole group.
    pub fn multicast_bypass_read(
        &mut self,
        now: Cycle,
        src: PhysAddr,
        lines: u64,
        group: u32,
        dram: &mut DramModel,
        bw_delay: Cycle,
    ) -> Cycle {
        assert!(group >= 1, "multicast group must be at least 1");
        self.stats.bypass_reads.add(lines);
        self.stats.multicast_ops.incr();
        self.stats
            .multicast_saved_lines
            .add(lines * u64::from(group - 1));
        dram.access_burst(now, src, lines, false, bw_delay)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use camdn_common::config::DramConfig;

    fn setup() -> (Nec, DramModel) {
        let cfg = CacheConfig::paper_default();
        (
            Nec::new(&cfg),
            DramModel::new(DramConfig::paper_default(), cfg.line_bytes),
        )
    }

    #[test]
    fn subspace_size_matches_table2() {
        let (nec, _) = setup();
        assert_eq!(nec.npu_pages(), 384); // 12 MiB / 32 KiB
        assert_eq!(nec.first_pcpn(), 128); // 4 general ways * 32 pages/way
    }

    #[test]
    fn claim_release_cycle() {
        let (mut nec, _) = setup();
        let p = nec.first_pcpn();
        nec.claim_page(1, p).unwrap();
        assert_eq!(nec.owner_of(p), Some(1));
        assert_eq!(nec.claimed_pages(), 1);
        assert_eq!(
            nec.claim_page(2, p),
            Err(NecError::AlreadyOwned { pcpn: p, owner: 1 })
        );
        nec.release_page(1, p).unwrap();
        assert_eq!(nec.owner_of(p), None);
    }

    #[test]
    fn exclusivity_is_enforced() {
        let (mut nec, _) = setup();
        let p = nec.first_pcpn() + 3;
        nec.claim_page(7, p).unwrap();
        let err = nec.read(0, 8, &[p], 10).unwrap_err();
        assert!(matches!(err, NecError::NotOwner { task: 8, .. }));
        // The rightful owner succeeds.
        assert!(nec.read(0, 7, &[p], 10).is_ok());
    }

    #[test]
    fn pages_outside_subspace_rejected() {
        let (mut nec, _) = setup();
        // Page 0 belongs to the general-purpose ways.
        assert_eq!(nec.claim_page(1, 0), Err(NecError::BadPage { pcpn: 0 }));
        let beyond = nec.first_pcpn() + nec.npu_pages();
        assert!(matches!(
            nec.claim_page(1, beyond),
            Err(NecError::BadPage { .. })
        ));
    }

    #[test]
    fn bypass_generates_dram_traffic_only() {
        let (mut nec, mut dram) = setup();
        nec.bypass_read(0, PhysAddr(0), 16, &mut dram, 0);
        nec.bypass_write(0, PhysAddr(4096), 8, &mut dram, 0);
        assert_eq!(dram.stats().read_bytes.get(), 16 * 64);
        assert_eq!(dram.stats().write_bytes.get(), 8 * 64);
        assert_eq!(nec.stats().bypass_reads.get(), 16);
        assert_eq!(nec.stats().bypass_writes.get(), 8);
    }

    #[test]
    fn controlled_reads_do_not_touch_dram() {
        let (mut nec, dram) = setup();
        let p = nec.first_pcpn();
        nec.claim_page(1, p).unwrap();
        let done = nec.read(0, 1, &[p], 100).unwrap();
        assert!(done > 0);
        assert_eq!(dram.stats().total_bytes(), 0);
    }

    #[test]
    fn fill_reads_dram_once() {
        let (mut nec, mut dram) = setup();
        let p = nec.first_pcpn();
        nec.claim_page(1, p).unwrap();
        nec.fill(0, 1, &[p], PhysAddr(0), 512, &mut dram, 0)
            .unwrap();
        assert_eq!(dram.stats().read_bytes.get(), 512 * 64);
        assert_eq!(nec.stats().fills.get(), 512);
    }

    #[test]
    fn multicast_saves_duplicate_lines() {
        let (mut nec, mut dram) = setup();
        let p = nec.first_pcpn();
        nec.claim_page(1, p).unwrap();
        nec.multicast_read(0, 1, &[p], 100, 4).unwrap();
        assert_eq!(nec.stats().multicast_saved_lines.get(), 300);
        // Bypass multicast: one DRAM fetch for the group.
        nec.multicast_bypass_read(0, PhysAddr(0), 10, 4, &mut dram, 0);
        assert_eq!(dram.stats().read_bytes.get(), 10 * 64);
        assert_eq!(nec.stats().multicast_saved_lines.get(), 300 + 30);
    }

    #[test]
    fn bulk_dma_timing_matches_reference_model() {
        // NEC routes lean on `access_burst` for DRAM timing; the
        // closed-form segment walk must price them exactly like the
        // per-line reference across fills, writebacks and bypasses.
        let cfg = CacheConfig::paper_default();
        let mk = |reference| {
            let mut d = DramModel::new(DramConfig::paper_default(), cfg.line_bytes);
            d.set_reference_model(reference);
            (Nec::new(&cfg), d)
        };
        let (mut nf, mut df) = mk(false);
        let (mut nr, mut dr) = mk(true);
        let p = nf.first_pcpn();
        nf.claim_page(1, p).unwrap();
        nr.claim_page(1, p).unwrap();
        let script: [(u8, u64, u64); 6] = [
            (0, 0, 4096),       // fill 4096 lines
            (1, 1 << 20, 2048), // writeback 2048
            (2, 2 << 20, 513),  // bypass read (unaligned count)
            (3, 3 << 20, 1000), // bypass write
            (4, 4 << 20, 777),  // multicast bypass read
            (0, 5 << 20, 31),   // small fill
        ];
        let mut now = 0;
        for (op, addr, lines) in script {
            let a = PhysAddr(addr);
            let (tf, tr) = match op {
                0 => (
                    nf.fill(now, 1, &[p], a, lines, &mut df, 7).unwrap(),
                    nr.fill(now, 1, &[p], a, lines, &mut dr, 7).unwrap(),
                ),
                1 => (
                    nf.writeback(now, 1, &[p], a, lines, &mut df, 0).unwrap(),
                    nr.writeback(now, 1, &[p], a, lines, &mut dr, 0).unwrap(),
                ),
                2 => (
                    nf.bypass_read(now, a, lines, &mut df, 0),
                    nr.bypass_read(now, a, lines, &mut dr, 0),
                ),
                3 => (
                    nf.bypass_write(now, a, lines, &mut df, 0),
                    nr.bypass_write(now, a, lines, &mut dr, 0),
                ),
                _ => (
                    nf.multicast_bypass_read(now, a, lines, 4, &mut df, 0),
                    nr.multicast_bypass_read(now, a, lines, 4, &mut dr, 0),
                ),
            };
            assert_eq!(tf, tr, "finish diverged on op {op}");
            now = tf;
        }
        assert_eq!(df.state_fingerprint(), dr.state_fingerprint());
        assert_eq!(df.stats().total_bytes(), dr.stats().total_bytes());
        assert_eq!(df.stats().row_hits.get(), dr.stats().row_hits.get());
        assert_eq!(df.stats().row_misses.get(), dr.stats().row_misses.get());
    }

    #[test]
    fn larger_transfers_take_longer() {
        let (mut nec, _) = setup();
        let p = nec.first_pcpn();
        nec.claim_page(1, p).unwrap();
        let t_small = nec.read(0, 1, &[p], 8).unwrap();
        let t_big = nec.read(0, 1, &[p], 8000).unwrap();
        assert!(t_big > t_small);
    }
}
