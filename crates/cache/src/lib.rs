//! Sliced shared cache with way partitioning and the NPU-exclusive
//! controller (NEC) of the CaMDN architecture (Section III-B of the
//! paper).
//!
//! The crate models both faces of the shared cache:
//!
//! * the **transparent path** ([`SharedCache`]) — conventional
//!   hardware-managed set-associative lookup used by CPU traffic and by
//!   the baseline systems (MoCA, AuRORA, plain shared cache), where
//!   multi-tenant contention arises;
//! * the **NPU-controlled path** ([`Nec`]) — model-exclusive,
//!   software-scheduled regions with bypass and multicast semantics, the
//!   architectural contribution of CaMDN.
//!
//! Both faces share the same physical geometry ([`CacheGeometry`]); way
//! partitioning splits the ways between them.
//!
//! # Example
//!
//! ```
//! use camdn_cache::{Nec, SharedCache};
//! use camdn_common::config::{CacheConfig, DramConfig};
//! use camdn_dram::DramModel;
//!
//! let cfg = CacheConfig::paper_default();
//! let mut cache = SharedCache::new(&cfg);
//! let mut dram = DramModel::new(DramConfig::paper_default(), cfg.line_bytes);
//!
//! // Reserve 12 of 16 ways for the NPU subspace (Table II).
//! let npu_mask = cache.partition_ways(cfg.npu_ways, 0, &mut dram);
//! assert_eq!(npu_mask.count_ones(), 12);
//!
//! // The NEC controls the reserved subspace.
//! let nec = Nec::new(&cfg);
//! assert_eq!(nec.npu_pages(), 384);
//! ```

#![warn(missing_docs)]
#![deny(deprecated)]

pub mod geometry;
pub mod nec;
pub mod transparent;

pub use geometry::{CacheGeometry, Pcaddr, TAG_LANE_WIDTH};
pub use nec::{Nec, NecError, NecStats, TaskId};
pub use transparent::{CacheScratchPool, CacheStats, RangeOutcome, SharedCache};
