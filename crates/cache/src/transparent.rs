//! The transparent (hardware-managed) cache path.
//!
//! This is the conventional set-associative lookup used (a) by CPU
//! traffic, (b) by all NPU traffic in the *baseline* systems the paper
//! compares against, where the shared cache is not NPU-controlled. Cache
//! contention between co-located DNNs — the motivation experiment of
//! Fig. 2 — emerges from this path: tasks evict each other's lines.
//!
//! Way partitioning (Section III-B1) is modelled with a per-cache way
//! mask: a lookup is only allowed to hit/allocate in the ways enabled in
//! its mask, exactly like the way-mask register CaMDN adds to each slice.
//!
//! # Batched range accesses
//!
//! [`SharedCache::access_range`] simulates a whole transfer in two
//! passes instead of one fused per-line loop:
//!
//! 1. a **tag pass** walks the tag array once, applying LRU updates and
//!    collecting the transfer's outcome as a compact event tape — runs
//!    of consecutive missing lines plus interleaved dirty-victim
//!    writebacks (a cold multi-MB tensor is a *single* run);
//! 2. a **memory pass** replays that tape through
//!    [`DramModel::line_batch`], which reproduces the MSHR-gated
//!    per-miss DRAM sequence in closed form wherever the gates provably
//!    cannot bind.
//!
//! The original fused per-line walk is retained as a reference model
//! ([`SharedCache::set_reference_model`]); differential tests here and
//! in `camdn` assert the two paths are bit-identical.

use crate::geometry::CacheGeometry;
use camdn_common::config::CacheConfig;
use camdn_common::stats::Counter;
use camdn_common::types::{Cycle, PhysAddr};
use camdn_dram::DramModel;
use serde::{Deserialize, Serialize};

/// Statistics of the transparent path.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookups that hit.
    pub hits: Counter,
    /// Lookups that missed.
    pub misses: Counter,
    /// Dirty victim lines written back to DRAM.
    pub writebacks: Counter,
    /// Lines filled from DRAM.
    pub fills: Counter,
}

impl CacheStats {
    /// Hit rate over all lookups.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits.get() + self.misses.get();
        if total == 0 {
            0.0
        } else {
            self.hits.get() as f64 / total as f64
        }
    }
}

/// Result of a range access on the transparent path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RangeOutcome {
    /// Cycle at which the whole range is available / written.
    pub finish: Cycle,
    /// Lines that hit in the cache.
    pub hits: u64,
    /// Lines that missed and were filled from DRAM.
    pub misses: u64,
    /// Dirty victims written back.
    pub writebacks: u64,
}

/// Sentinel tag of an invalid way (no real line index reaches 2^64−1).
const INVALID_TAG: u64 = u64::MAX;

/// Outcome of one tag-array touch.
enum Touch {
    Hit,
    /// Miss; carries the dirty victim's tag (= line index) if one must
    /// be written back.
    Miss(Option<u64>),
}

/// Tag lookup and update for one line within one set — `tags` holds the
/// set's way tags (`INVALID_TAG` when empty), `meta` the packed
/// `stamp << 2 | dirty << 1 | valid` words. Misses allocate immediately;
/// dirty victims are reported for the caller to write back. This is the
/// single source of truth for hit/replacement semantics — both the
/// batched and the reference paths run it.
///
/// Victim selection is `argmin(meta)` over the allowed ways, which is
/// exactly the LRU rule: an invalid way packs to 0 and beats every valid
/// way (valid bit set, stamps start at 1), ties cannot occur between
/// valid ways (stamps are unique), and the first minimum in way order
/// wins — the same way the original scan broke ties.
#[inline]
#[allow(clippy::needless_range_loop)] // explicit indices keep the paired tag/meta scans tight
fn touch_set(
    tags: &mut [u64],
    meta: &mut [u64],
    way_mask: u16,
    tag: u64,
    stamp: u64,
    is_write: bool,
) -> Touch {
    debug_assert!(way_mask != 0, "empty way mask");
    let wr = (is_write as u64) << 1;
    let n = tags.len();
    // First match in way order wins (invalid ways hold INVALID_TAG and
    // can never match a real line index).
    for w in 0..n {
        if tags[w] == tag && way_mask & (1 << w) != 0 {
            meta[w] = (stamp << 2) | (meta[w] & 2) | wr | 1;
            return Touch::Hit;
        }
    }
    // Argmin over the allowed ways; strict less keeps the first minimum,
    // matching the original scan's tie-break.
    let mut vw = 0usize;
    let mut vm = u64::MAX;
    for w in 0..n {
        if way_mask & (1 << w) != 0 && meta[w] < vm {
            vm = meta[w];
            vw = w;
        }
    }
    debug_assert!(vm != u64::MAX, "way mask guarantees at least one candidate");
    // Valid && dirty victim → write back its line.
    let wb = if vm & 3 == 3 { Some(tags[vw]) } else { None };
    tags[vw] = tag;
    meta[vw] = (stamp << 2) | wr | 1;
    Touch::Miss(wb)
}

/// One entry of the tag pass's event tape.
#[derive(Debug, Clone, Copy)]
enum RangeEvent {
    /// `len` consecutive missing lines starting at line index `start`.
    Run { start: u64, len: u64 },
    /// Posted writeback of the dirty victim line `victim`.
    Writeback { victim: u64 },
}

/// A sliced, set-associative, write-back/write-allocate shared cache.
#[derive(Debug, Clone)]
pub struct SharedCache {
    geom: CacheGeometry,
    hit_latency: Cycle,
    lines_per_cycle: f64,
    /// Way tags, set-major: `tags[(line % (sets·slices)) * ways + way]`.
    /// Consecutive lines walk this array sequentially (slices are the
    /// low-order index), which is what keeps the tag pass streaming.
    tags: Vec<u64>,
    /// Packed `stamp << 2 | dirty << 1 | valid` per way, same indexing.
    meta: Vec<u64>,
    /// `ways` (stride from one set group to the next).
    set_stride: usize,
    /// `sets_per_slice * slices − 1`: line → set-group index mask.
    group_mask: u64,
    lru_clock: u64,
    npu_way_mask: u16,
    stats: CacheStats,
    /// Reused tag-pass event tape (no per-call allocation).
    scratch: Vec<RangeEvent>,
    reference: bool,
}

impl SharedCache {
    /// Builds a cache from its configuration. Initially no ways are
    /// reserved for the NPU subspace (fully transparent baseline).
    pub fn new(cfg: &CacheConfig) -> Self {
        let geom = CacheGeometry::new(cfg);
        let ways = geom.ways as usize;
        let sets = geom.sets_per_slice as usize;
        let groups = geom.slices as usize * sets;
        SharedCache {
            geom,
            hit_latency: cfg.hit_latency,
            lines_per_cycle: cfg.lines_per_cycle,
            tags: vec![INVALID_TAG; groups * ways],
            meta: vec![0; groups * ways],
            set_stride: ways,
            group_mask: groups as u64 - 1,
            lru_clock: 0,
            npu_way_mask: 0,
            stats: CacheStats::default(),
            scratch: Vec::new(),
            reference: false,
        }
    }

    /// The cache geometry.
    pub fn geometry(&self) -> &CacheGeometry {
        &self.geom
    }

    /// Accumulated statistics of the transparent path.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Resets statistics (cache contents survive).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Selects the fused per-line reference walk (`true`) or the batched
    /// two-pass walk (`false`, default) for range accesses. Both are
    /// bit-identical; the reference path exists for differential
    /// verification and as the throughput harness's baseline.
    pub fn set_reference_model(&mut self, reference: bool) {
        self.reference = reference;
    }

    /// True when the reference walk is selected.
    pub fn reference_model(&self) -> bool {
        self.reference
    }

    /// Bit mask over all ways.
    pub fn full_way_mask(&self) -> u16 {
        if self.geom.ways == 16 {
            u16::MAX
        } else {
            (1u16 << self.geom.ways) - 1
        }
    }

    /// Mask of ways reserved for the NPU subspace.
    pub fn npu_way_mask(&self) -> u16 {
        self.npu_way_mask
    }

    /// Mask of general-purpose (CPU-visible) ways.
    pub fn general_way_mask(&self) -> u16 {
        self.full_way_mask() & !self.npu_way_mask
    }

    /// Reserves `npu_ways` ways (the highest-numbered ones) for the NPU
    /// subspace, invalidating any lines they held. Dirty victims are
    /// written back through `dram` at time `now`.
    ///
    /// Returns the mask of reserved ways.
    pub fn partition_ways(&mut self, npu_ways: u32, now: Cycle, dram: &mut DramModel) -> u16 {
        assert!(
            npu_ways <= self.geom.ways,
            "cannot reserve more ways than exist"
        );
        let lo = self.geom.ways - npu_ways;
        let mut mask = 0u16;
        for w in lo..self.geom.ways {
            mask |= 1 << w;
        }
        self.npu_way_mask = mask;
        // Flush the reserved ways: the NEC takes raw ownership of them.
        let groups = self.group_mask as usize + 1;
        for g in 0..groups {
            let base = g * self.set_stride;
            for way in lo as usize..self.geom.ways as usize {
                let idx = base + way;
                if self.meta[idx] & 3 == 3 {
                    self.stats.writebacks.incr();
                    // Reconstruct an address in the right channel set;
                    // exact identity is irrelevant for timing.
                    let addr = PhysAddr(self.tags[idx] * self.geom.line_bytes);
                    dram.access_burst(now, addr, 1, true, 0);
                }
                self.tags[idx] = INVALID_TAG;
                self.meta[idx] = 0;
            }
        }
        mask
    }

    /// Base index of a line's way group in the flat tag/meta arrays.
    /// Set groups are line-ordered: `line % (sets·slices)` names the
    /// group, so streaming ranges touch the arrays sequentially.
    #[inline]
    fn group_base(&self, line: u64) -> usize {
        (line & self.group_mask) as usize * self.set_stride
    }

    /// Tag lookup and update for one line: returns `(hit, writeback)`,
    /// updating statistics (the reference path's per-line primitive).
    fn touch_line(
        &mut self,
        addr: PhysAddr,
        is_write: bool,
        way_mask: u16,
    ) -> (bool, Option<PhysAddr>) {
        let tag = addr.line_index(self.geom.line_bytes);
        self.lru_clock += 1;
        let base = self.group_base(tag);
        let end = base + self.set_stride;
        match touch_set(
            &mut self.tags[base..end],
            &mut self.meta[base..end],
            way_mask,
            tag,
            self.lru_clock,
            is_write,
        ) {
            Touch::Hit => {
                self.stats.hits.incr();
                (true, None)
            }
            Touch::Miss(victim) => {
                self.stats.misses.incr();
                // Conventional write-allocate: write misses fetch the
                // line first (read-for-ownership). Avoiding that fetch is
                // exactly what the NEC's explicit cache-write /
                // bypass-write semantics provide.
                self.stats.fills.incr();
                let wb = victim.map(|tag| {
                    self.stats.writebacks.incr();
                    PhysAddr(tag * self.geom.line_bytes)
                });
                (false, wb)
            }
        }
    }

    /// Looks up a single line; fills on miss (write misses fetch the
    /// line first) and writes back dirty victims. Returns the completion
    /// cycle and whether it hit.
    pub fn access_line(
        &mut self,
        now: Cycle,
        addr: PhysAddr,
        is_write: bool,
        way_mask: u16,
        dram: &mut DramModel,
    ) -> (Cycle, bool) {
        let (hit, wb) = self.touch_line(addr, is_write, way_mask);
        if hit {
            return (now + self.hit_latency, true);
        }
        if let Some(victim_addr) = wb {
            dram.access_burst(now, victim_addr, 1, true, 0);
        }
        let fill_done = dram.access_burst(now, addr.line_base(self.geom.line_bytes), 1, false, 0);
        (fill_done + self.hit_latency, false)
    }

    /// Outstanding demand-miss window of the transparent path (total
    /// MSHRs across slices). Explicitly-managed NEC transfers are bulk
    /// DMA and do not pass through this window — one of the structural
    /// advantages of NPU-controlled regions.
    pub const MSHR_WINDOW: usize = 144;

    /// Cache port service time for `lines` line transfers: the slices
    /// collectively serve `slices * lines_per_cycle` lines per cycle.
    #[inline]
    fn port_cycles(&self, lines: u64) -> Cycle {
        (lines as f64 / (f64::from(self.geom.slices) * self.lines_per_cycle)).ceil() as Cycle
    }

    /// Accesses a contiguous byte range through the transparent path.
    ///
    /// Demand misses are limited to [`SharedCache::MSHR_WINDOW`]
    /// outstanding fills: miss `k` cannot issue before miss
    /// `k − WINDOW` completes. By Little's law the achievable miss
    /// bandwidth is `WINDOW · line / latency`, so DRAM queueing delays
    /// under multi-tenant contention directly throttle fill throughput —
    /// the latency-bandwidth spiral that makes transparent caches
    /// inefficient for co-located DNNs.
    pub fn access_range(
        &mut self,
        now: Cycle,
        base: PhysAddr,
        bytes: u64,
        is_write: bool,
        way_mask: u16,
        dram: &mut DramModel,
    ) -> RangeOutcome {
        if self.reference {
            self.access_range_reference(now, base, bytes, is_write, way_mask, dram)
        } else {
            self.access_range_batched(now, base, bytes, is_write, way_mask, dram)
        }
    }

    /// Batched implementation of [`SharedCache::access_range`]: one tag
    /// pass builds the miss-run/writeback event tape, one memory pass
    /// replays it through [`DramModel::line_batch`].
    fn access_range_batched(
        &mut self,
        now: Cycle,
        base: PhysAddr,
        bytes: u64,
        is_write: bool,
        way_mask: u16,
        dram: &mut DramModel,
    ) -> RangeOutcome {
        if bytes == 0 {
            return RangeOutcome {
                finish: now,
                ..RangeOutcome::default()
            };
        }
        let lb = self.geom.line_bytes;
        let first = base.line_index(lb);
        let last = base.offset(bytes - 1).line_index(lb);
        let lines = last - first + 1;

        // --- tag pass -------------------------------------------------
        let mut events = std::mem::take(&mut self.scratch);
        events.clear();
        let (mut hits, mut misses, mut wbs) = (0u64, 0u64, 0u64);
        let mut run_start: Option<u64> = None;
        let set_stride = self.set_stride;
        for line in first..=last {
            let idx = (line & self.group_mask) as usize * set_stride;
            self.lru_clock += 1;
            let end = idx + set_stride;
            match touch_set(
                &mut self.tags[idx..end],
                &mut self.meta[idx..end],
                way_mask,
                line,
                self.lru_clock,
                is_write,
            ) {
                Touch::Hit => {
                    hits += 1;
                    if let Some(s) = run_start.take() {
                        events.push(RangeEvent::Run {
                            start: s,
                            len: line - s,
                        });
                    }
                }
                Touch::Miss(victim) => {
                    misses += 1;
                    if let Some(victim) = victim {
                        // The posted write goes out before this line's
                        // fill, so it splits the run.
                        wbs += 1;
                        if let Some(s) = run_start.take() {
                            events.push(RangeEvent::Run {
                                start: s,
                                len: line - s,
                            });
                        }
                        events.push(RangeEvent::Writeback { victim });
                    }
                    if run_start.is_none() {
                        run_start = Some(line);
                    }
                }
            }
        }
        if let Some(s) = run_start {
            events.push(RangeEvent::Run {
                start: s,
                len: last + 1 - s,
            });
        }
        self.stats.hits.add(hits);
        self.stats.misses.add(misses);
        self.stats.fills.add(misses);
        self.stats.writebacks.add(wbs);

        // --- memory pass ---------------------------------------------
        let mut batch = dram.line_batch(now, Self::MSHR_WINDOW, misses);
        for ev in &events {
            match *ev {
                RangeEvent::Run { start, len } => batch.fill_run(PhysAddr(start * lb), len),
                RangeEvent::Writeback { victim } => batch.writeback(PhysAddr(victim * lb)),
            }
        }
        let mut finish = batch.finish();
        self.scratch = events;

        finish = finish.max(now + self.hit_latency + self.port_cycles(lines));
        RangeOutcome {
            finish,
            hits,
            misses,
            writebacks: wbs,
        }
    }

    /// Reference implementation of [`SharedCache::access_range`]: the
    /// original fused per-line walk, one tag probe and one DRAM burst
    /// call per line. Kept as the differential baseline.
    pub fn access_range_reference(
        &mut self,
        now: Cycle,
        base: PhysAddr,
        bytes: u64,
        is_write: bool,
        way_mask: u16,
        dram: &mut DramModel,
    ) -> RangeOutcome {
        if bytes == 0 {
            return RangeOutcome {
                finish: now,
                ..RangeOutcome::default()
            };
        }
        let lb = self.geom.line_bytes;
        let first = base.line_index(lb);
        let last = base.offset(bytes - 1).line_index(lb);
        let mut out = RangeOutcome {
            finish: now,
            ..RangeOutcome::default()
        };
        let mut ring = [0 as Cycle; Self::MSHR_WINDOW];
        let mut miss_no = 0usize;
        for line in first..=last {
            let addr = PhysAddr(line * lb);
            let (hit, wb) = self.touch_line(addr, is_write, way_mask);
            if hit {
                out.hits += 1;
                continue;
            }
            out.misses += 1;
            if let Some(victim_addr) = wb {
                // Posted write: occupies a channel but no MSHR.
                out.writebacks += 1;
                dram.access_burst(now, victim_addr, 1, true, 0);
            }
            // Read misses and write misses (read-for-ownership) both
            // occupy an MSHR for the fill.
            let slot = miss_no % Self::MSHR_WINDOW;
            let gate = if miss_no >= Self::MSHR_WINDOW {
                ring[slot].max(now)
            } else {
                now
            };
            let done = dram.access_burst(gate, addr, 1, false, 0);
            ring[slot] = done;
            miss_no += 1;
            out.finish = out.finish.max(done);
        }
        let lines = last - first + 1;
        out.finish = out
            .finish
            .max(now + self.hit_latency + self.port_cycles(lines));
        out
    }

    /// Accesses a range on behalf of a multicast group of `reps` NPUs
    /// running the same model: the range is walked **once**, and the
    /// `reps − 1` replica fetches are charged in closed form. Replicas
    /// hit the lines the first walk brought in — each replica costs one
    /// more pass over the cache port, no tag churn. When the range
    /// exceeds the allowed ways' capacity the first walk self-evicts its
    /// head, so the non-resident head lines are charged to each replica
    /// as straight DRAM re-fetches (they would only self-evict again if
    /// allocated).
    ///
    /// This replaces the thundering-herd model where every replica
    /// re-walked the whole range through the tag array.
    #[allow(clippy::too_many_arguments)]
    pub fn access_range_multicast(
        &mut self,
        now: Cycle,
        base: PhysAddr,
        bytes: u64,
        is_write: bool,
        way_mask: u16,
        dram: &mut DramModel,
        reps: u32,
    ) -> RangeOutcome {
        let out = self.access_range(now, base, bytes, is_write, way_mask, dram);
        if reps <= 1 || bytes == 0 {
            return out;
        }
        let lb = self.geom.line_bytes;
        let lines = base.offset(bytes - 1).line_index(lb) - base.line_index(lb) + 1;
        // At most this many lines of the range survive the first walk:
        // one line per allowed way per set group.
        let allowed_ways = u64::from((way_mask & self.full_way_mask()).count_ones());
        let capacity = (self.group_mask + 1) * allowed_ways;
        let resident = lines.min(capacity);
        let evicted = lines - resident;
        let replicas = u64::from(reps - 1);
        self.stats.hits.add(resident * replicas);
        let mut finish = out
            .finish
            .max(now + self.hit_latency + u64::from(reps) * self.port_cycles(lines));
        if evicted > 0 {
            // Each replica re-fetches the self-evicted head from DRAM
            // (one bulk burst per replica, still no tag walk).
            self.stats.misses.add(evicted * replicas);
            for _ in 1..reps {
                finish = finish.max(dram.access_burst(now, base, evicted, false, 0));
            }
        }
        RangeOutcome {
            finish,
            hits: out.hits + resident * replicas,
            misses: out.misses + evicted * replicas,
            ..out
        }
    }

    /// True if the line holding `addr` is present (test/diagnostic aid).
    pub fn probe(&self, addr: PhysAddr, way_mask: u16) -> bool {
        let tag = addr.line_index(self.geom.line_bytes);
        let base = self.group_base(tag);
        (0..self.geom.ways as usize)
            .filter(|w| way_mask & (1 << w) != 0)
            .any(|w| self.tags[base + w] == tag)
    }

    /// Invalidates the whole cache without writebacks (test aid).
    pub fn invalidate_all(&mut self) {
        self.tags.fill(INVALID_TAG);
        self.meta.fill(0);
    }

    /// Order- and content-sensitive digest of the full tag state (tags,
    /// validity, dirtiness, LRU stamps). Lets differential tests assert
    /// two caches evolved identically.
    #[doc(hidden)]
    pub fn state_fingerprint(&self) -> u64 {
        let mut h = 0xcbf29ce484222325u64;
        let mut mix = |v: u64| {
            h ^= v;
            h = h.wrapping_mul(0x100000001b3);
        };
        mix(self.lru_clock);
        for (&t, &m) in self.tags.iter().zip(&self.meta) {
            mix(t);
            mix(m);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use camdn_common::config::DramConfig;
    use camdn_common::SimRng;

    fn setup() -> (SharedCache, DramModel) {
        let cfg = CacheConfig::paper_default();
        (
            SharedCache::new(&cfg),
            DramModel::new(DramConfig::paper_default(), cfg.line_bytes),
        )
    }

    #[test]
    fn miss_then_hit() {
        let (mut c, mut d) = setup();
        let a = PhysAddr(0x1000);
        let (_, hit1) = c.access_line(0, a, false, c.full_way_mask(), &mut d);
        let (_, hit2) = c.access_line(100, a, false, c.full_way_mask(), &mut d);
        assert!(!hit1);
        assert!(hit2);
        assert_eq!(c.stats().hits.get(), 1);
        assert_eq!(c.stats().misses.get(), 1);
    }

    #[test]
    fn hits_are_faster_than_misses() {
        let (mut c, mut d) = setup();
        let a = PhysAddr(0x2000);
        let (t_miss, _) = c.access_line(0, a, false, c.full_way_mask(), &mut d);
        let base = 1_000_000;
        let (t_hit, _) = c.access_line(base, a, false, c.full_way_mask(), &mut d);
        assert!(t_hit - base < t_miss, "{} !< {}", t_hit - base, t_miss);
    }

    #[test]
    fn lru_evicts_oldest() {
        let (mut c, mut d) = setup();
        let mask = c.full_way_mask();
        let geom = *c.geometry();
        // 17 lines mapping to the same (slice,set): stride = slices * sets * line.
        let stride = u64::from(geom.slices) * u64::from(geom.sets_per_slice) * geom.line_bytes;
        for i in 0..17u64 {
            c.access_line(i, PhysAddr(i * stride), false, mask, &mut d);
        }
        // Line 0 (oldest) must be gone; line 1..16 still present.
        assert!(!c.probe(PhysAddr(0), mask));
        assert!(c.probe(PhysAddr(stride), mask));
        assert!(c.probe(PhysAddr(16 * stride), mask));
    }

    #[test]
    fn way_mask_restricts_visibility() {
        let (mut c, mut d) = setup();
        let a = PhysAddr(0x40);
        let low_mask = 0x000F; // ways 0-3
        let high_mask = 0xFFF0; // ways 4-15
        c.access_line(0, a, false, low_mask, &mut d);
        assert!(c.probe(a, low_mask));
        assert!(
            !c.probe(a, high_mask),
            "line must not be visible in other ways"
        );
    }

    #[test]
    fn dirty_eviction_writes_back() {
        let (mut c, mut d) = setup();
        let geom = *c.geometry();
        let mask = 0x0001; // single way -> immediate conflict
        let stride = u64::from(geom.slices) * u64::from(geom.sets_per_slice) * geom.line_bytes;
        c.access_line(0, PhysAddr(0), true, mask, &mut d); // dirty
        let wr_before = d.stats().write_bytes.get();
        c.access_line(10, PhysAddr(stride), false, mask, &mut d); // evicts
        assert_eq!(c.stats().writebacks.get(), 1);
        assert!(d.stats().write_bytes.get() > wr_before);
    }

    #[test]
    fn range_access_counts_lines() {
        let (mut c, mut d) = setup();
        let out = c.access_range(0, PhysAddr(0), 64 * 10, false, c.full_way_mask(), &mut d);
        assert_eq!(out.hits + out.misses, 10);
        assert_eq!(out.misses, 10);
        let out2 = c.access_range(
            out.finish,
            PhysAddr(0),
            64 * 10,
            false,
            c.full_way_mask(),
            &mut d,
        );
        assert_eq!(out2.hits, 10);
        assert!(
            out2.finish - out.finish < out.finish,
            "reuse must be faster"
        );
    }

    #[test]
    fn unaligned_range_touches_both_boundary_lines() {
        let (mut c, mut d) = setup();
        // 2 bytes straddling a line boundary -> 2 lines.
        let out = c.access_range(0, PhysAddr(63), 2, false, c.full_way_mask(), &mut d);
        assert_eq!(out.hits + out.misses, 2);
    }

    #[test]
    fn partition_flushes_npu_ways() {
        let (mut c, mut d) = setup();
        let a = PhysAddr(0x40);
        // Fill with full mask; line lands in some way.
        c.access_line(0, a, true, c.full_way_mask(), &mut d);
        let mask = c.partition_ways(12, 100, &mut d);
        assert_eq!(mask.count_ones(), 12);
        assert_eq!(c.general_way_mask().count_ones(), 4);
        // The line may or may not survive depending on its way, but it must
        // never be visible through the NPU mask after the flush.
        assert!(!c.probe(a, mask));
    }

    #[test]
    fn zero_byte_range_is_noop() {
        let (mut c, mut d) = setup();
        let out = c.access_range(5, PhysAddr(0), 0, false, c.full_way_mask(), &mut d);
        assert_eq!(out.finish, 5);
        assert_eq!(out.hits + out.misses, 0);
    }

    // --- batched vs reference differential ---------------------------

    fn assert_twin_state(
        fast: &(SharedCache, DramModel),
        refm: &(SharedCache, DramModel),
        ctx: &str,
    ) {
        assert_eq!(
            fast.0.state_fingerprint(),
            refm.0.state_fingerprint(),
            "tag state diverged: {ctx}"
        );
        assert_eq!(
            fast.1.state_fingerprint(),
            refm.1.state_fingerprint(),
            "dram state diverged: {ctx}"
        );
        let (fs, rs) = (fast.0.stats(), refm.0.stats());
        assert_eq!(fs.hits.get(), rs.hits.get(), "{ctx}");
        assert_eq!(fs.misses.get(), rs.misses.get(), "{ctx}");
        assert_eq!(fs.writebacks.get(), rs.writebacks.get(), "{ctx}");
        assert_eq!(fs.fills.get(), rs.fills.get(), "{ctx}");
        let (fd, rd) = (fast.1.stats(), refm.1.stats());
        assert_eq!(fd.total_bytes(), rd.total_bytes(), "{ctx}");
        assert_eq!(fd.requests.get(), rd.requests.get(), "{ctx}");
        assert_eq!(fd.row_hits.get(), rd.row_hits.get(), "{ctx}");
        assert_eq!(fd.row_misses.get(), rd.row_misses.get(), "{ctx}");
    }

    /// Valid cache geometries of very different shapes, plus matching
    /// DRAM configs, for the property sweep.
    fn sweep_configs() -> Vec<(CacheConfig, DramConfig)> {
        let paper = CacheConfig::paper_default();
        vec![
            (paper, DramConfig::paper_default()),
            (
                CacheConfig {
                    total_bytes: 256 * 1024,
                    ways: 4,
                    npu_ways: 0,
                    slices: 2,
                    line_bytes: 64,
                    page_bytes: 8 * 1024,
                    ..paper
                },
                DramConfig {
                    channels: 2,
                    banks_per_channel: 4,
                    row_bytes: 512,
                    bytes_per_cycle: 32.0,
                    row_miss_penalty: 25,
                    cas_latency: 11,
                },
            ),
            (
                CacheConfig {
                    total_bytes: 1024 * 1024,
                    ways: 8,
                    npu_ways: 0,
                    slices: 4,
                    line_bytes: 32,
                    page_bytes: 16 * 1024,
                    ..paper
                },
                DramConfig {
                    channels: 1,
                    banks_per_channel: 2,
                    row_bytes: 256,
                    bytes_per_cycle: 7.3,
                    row_miss_penalty: 3,
                    cas_latency: 160, // gates really bind at this CAS
                },
            ),
        ]
    }

    #[test]
    fn property_sweep_batched_equals_reference() {
        // Property-style sweep: random (geometry, range, way-mask)
        // triples; the batched path must match the per-line reference on
        // outcome, statistics, tag state and DRAM state after every op.
        for (gi, (ccfg, dcfg)) in sweep_configs().into_iter().enumerate() {
            let mut rng = SimRng::new(0x5EED ^ gi as u64);
            let mut fast = (
                SharedCache::new(&ccfg),
                DramModel::new(dcfg, ccfg.line_bytes),
            );
            let mut refm = (
                SharedCache::new(&ccfg),
                DramModel::new(dcfg, ccfg.line_bytes),
            );
            refm.0.set_reference_model(true);
            refm.1.set_reference_model(true);
            let ways = ccfg.ways;
            // Footprint chosen to alias heavily (a few times the cache).
            let footprint = ccfg.total_bytes * 3;
            let mut now = 0;
            for op in 0..150 {
                let mask = loop {
                    let m = rng.next_below(1 << ways) as u16;
                    if m != 0 {
                        break m;
                    }
                };
                let base = PhysAddr(rng.next_below(footprint));
                // Mostly modest transfers, occasionally far beyond the
                // MSHR window to exercise the gated regime.
                let bytes = if rng.next_below(5) == 0 {
                    (200 + rng.next_below(400)) * ccfg.line_bytes
                } else {
                    rng.next_below(64 * ccfg.line_bytes)
                };
                let is_write = rng.next_below(3) == 0;
                now += rng.next_below(1000);
                let a = fast
                    .0
                    .access_range(now, base, bytes, is_write, mask, &mut fast.1);
                let b = refm
                    .0
                    .access_range(now, base, bytes, is_write, mask, &mut refm.1);
                assert_eq!(a, b, "outcome diverged: geom {gi}, op {op}");
                assert_twin_state(&fast, &refm, &format!("geom {gi}, op {op}"));
            }
        }
    }

    #[test]
    fn streaming_cold_tensor_matches_reference() {
        // The motivating case: a cold multi-MB tensor streamed through
        // the paper cache — one giant miss run, far over the MSHR window.
        let (mut cf, mut df) = setup();
        let (mut cr, mut dr) = setup();
        cr.set_reference_model(true);
        dr.set_reference_model(true);
        let bytes = 3_500_000; // ~3.5 MB, > 54k lines
        let a = cf.access_range(7, PhysAddr(0), bytes, false, cf.full_way_mask(), &mut df);
        let b = cr.access_range(7, PhysAddr(0), bytes, false, cr.full_way_mask(), &mut dr);
        assert_eq!(a, b);
        assert_eq!(a.misses, bytes.div_ceil(64));
        assert_twin_state(&(cf, df), &(cr, dr), "cold stream");
    }

    #[test]
    fn multicast_range_charges_replicas_without_tag_churn() {
        let (mut c, mut d) = setup();
        let mask = c.full_way_mask();
        let bytes = 64 * 256; // 256 lines
        let solo = {
            let (mut c2, mut d2) = setup();
            c2.access_range_multicast(0, PhysAddr(0), bytes, false, mask, &mut d2, 1)
        };
        let grouped = c.access_range_multicast(0, PhysAddr(0), bytes, false, mask, &mut d, 4);
        // Replicas hit: 3 × 256 extra hits, no extra misses or traffic.
        assert_eq!(grouped.misses, solo.misses);
        assert_eq!(grouped.hits, solo.hits + 3 * 256);
        assert_eq!(c.stats().hits.get(), 3 * 256);
        assert_eq!(d.stats().total_bytes(), 256 * 64);
        // Replicas serialize on the cache port but never re-walk DRAM:
        // the group finish is the solo finish or the port-limited bound.
        let port = (256f64 / 8.0).ceil() as Cycle;
        assert_eq!(grouped.finish, solo.finish.max(30 + 4 * port));
        assert!(grouped.finish >= solo.finish);
    }

    #[test]
    fn multicast_over_capacity_charges_replica_refetches() {
        // A grouped fetch larger than the allowed ways' capacity
        // self-evicts its head: replicas only hit the resident tail and
        // re-fetch the evicted head from DRAM (not free hits).
        let (mut c, mut d) = setup();
        let mask = 0x0001u16; // one way: 16384-line capacity (1 MiB)
        let lines = 32768u64; // 2 MiB range, twice the capacity
        let out = c.access_range_multicast(0, PhysAddr(0), lines * 64, false, mask, &mut d, 2);
        assert_eq!(out.misses, lines + 16384, "evicted head re-misses once");
        assert_eq!(out.hits, 16384, "only the resident tail multicast-hits");
        assert_eq!(c.stats().hits.get(), 16384);
        assert_eq!(
            d.stats().read_bytes.get(),
            (lines + 16384) * 64,
            "replica re-fetch traffic must reach DRAM"
        );
    }

    #[test]
    fn multicast_group_fetch_cycles_are_pinned() {
        // Regression pin for the thundering-herd fix: exact cycle count
        // of a 4-NPU group fetch of a cold 16 KiB weight tile on the
        // paper SoC. One walk fills 256 lines; 3 replicas are charged
        // 32 port cycles each on top of the 30-cycle hit latency.
        let (mut c, mut d) = setup();
        let mask = c.full_way_mask();
        let out = c.access_range_multicast(0, PhysAddr(0), 64 * 256, false, mask, &mut d, 4);
        let solo_finish = {
            let (mut c2, mut d2) = setup();
            c2.access_range(0, PhysAddr(0), 64 * 256, false, mask, &mut d2)
                .finish
        };
        assert_eq!(out.finish, solo_finish.max(30 + 4 * 32));
        assert_eq!(out.finish, 220, "pinned group-fetch finish changed");
    }
}
