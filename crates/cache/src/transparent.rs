//! The transparent (hardware-managed) cache path.
//!
//! This is the conventional set-associative lookup used (a) by CPU
//! traffic, (b) by all NPU traffic in the *baseline* systems the paper
//! compares against, where the shared cache is not NPU-controlled. Cache
//! contention between co-located DNNs — the motivation experiment of
//! Fig. 2 — emerges from this path: tasks evict each other's lines.
//!
//! Way partitioning (Section III-B1) is modelled with a per-cache way
//! mask: a lookup is only allowed to hit/allocate in the ways enabled in
//! its mask, exactly like the way-mask register CaMDN adds to each slice.

use crate::geometry::CacheGeometry;
use camdn_common::config::CacheConfig;
use camdn_common::stats::Counter;
use camdn_common::types::{Cycle, PhysAddr};
use camdn_dram::DramModel;
use serde::{Deserialize, Serialize};

/// Statistics of the transparent path.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookups that hit.
    pub hits: Counter,
    /// Lookups that missed.
    pub misses: Counter,
    /// Dirty victim lines written back to DRAM.
    pub writebacks: Counter,
    /// Lines filled from DRAM.
    pub fills: Counter,
}

impl CacheStats {
    /// Hit rate over all lookups.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits.get() + self.misses.get();
        if total == 0 {
            0.0
        } else {
            self.hits.get() as f64 / total as f64
        }
    }
}

/// Result of a range access on the transparent path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RangeOutcome {
    /// Cycle at which the whole range is available / written.
    pub finish: Cycle,
    /// Lines that hit in the cache.
    pub hits: u64,
    /// Lines that missed and were filled from DRAM.
    pub misses: u64,
    /// Dirty victims written back.
    pub writebacks: u64,
}

#[derive(Debug, Clone, Copy, Default)]
struct LineTag {
    tag: u64,
    valid: bool,
    dirty: bool,
    stamp: u64,
}

/// A sliced, set-associative, write-back/write-allocate shared cache.
#[derive(Debug, Clone)]
pub struct SharedCache {
    geom: CacheGeometry,
    hit_latency: Cycle,
    lines_per_cycle: f64,
    /// `tags[slice][set * ways + way]`.
    tags: Vec<Vec<LineTag>>,
    lru_clock: u64,
    npu_way_mask: u16,
    stats: CacheStats,
}

impl SharedCache {
    /// Builds a cache from its configuration. Initially no ways are
    /// reserved for the NPU subspace (fully transparent baseline).
    pub fn new(cfg: &CacheConfig) -> Self {
        let geom = CacheGeometry::new(cfg);
        let per_slice = geom.sets_per_slice as usize * geom.ways as usize;
        SharedCache {
            geom,
            hit_latency: cfg.hit_latency,
            lines_per_cycle: cfg.lines_per_cycle,
            tags: (0..geom.slices)
                .map(|_| vec![LineTag::default(); per_slice])
                .collect(),
            lru_clock: 0,
            npu_way_mask: 0,
            stats: CacheStats::default(),
        }
    }

    /// The cache geometry.
    pub fn geometry(&self) -> &CacheGeometry {
        &self.geom
    }

    /// Accumulated statistics of the transparent path.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Resets statistics (cache contents survive).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Bit mask over all ways.
    pub fn full_way_mask(&self) -> u16 {
        if self.geom.ways == 16 {
            u16::MAX
        } else {
            (1u16 << self.geom.ways) - 1
        }
    }

    /// Mask of ways reserved for the NPU subspace.
    pub fn npu_way_mask(&self) -> u16 {
        self.npu_way_mask
    }

    /// Mask of general-purpose (CPU-visible) ways.
    pub fn general_way_mask(&self) -> u16 {
        self.full_way_mask() & !self.npu_way_mask
    }

    /// Reserves `npu_ways` ways (the highest-numbered ones) for the NPU
    /// subspace, invalidating any lines they held. Dirty victims are
    /// written back through `dram` at time `now`.
    ///
    /// Returns the mask of reserved ways.
    pub fn partition_ways(&mut self, npu_ways: u32, now: Cycle, dram: &mut DramModel) -> u16 {
        assert!(
            npu_ways <= self.geom.ways,
            "cannot reserve more ways than exist"
        );
        let lo = self.geom.ways - npu_ways;
        let mut mask = 0u16;
        for w in lo..self.geom.ways {
            mask |= 1 << w;
        }
        self.npu_way_mask = mask;
        // Flush the reserved ways: the NEC takes raw ownership of them.
        for slice in 0..self.geom.slices as usize {
            for set in 0..self.geom.sets_per_slice as usize {
                for way in lo..self.geom.ways {
                    let idx = set * self.geom.ways as usize + way as usize;
                    let line = &mut self.tags[slice][idx];
                    if line.valid && line.dirty {
                        self.stats.writebacks.incr();
                        // Reconstruct an address in the right channel set;
                        // exact identity is irrelevant for timing.
                        let addr = PhysAddr(line.tag * self.geom.line_bytes);
                        dram.access_burst(now, addr, 1, true, 0);
                    }
                    *line = LineTag::default();
                }
            }
        }
        mask
    }

    #[inline]
    fn slice_set_of(&self, addr: PhysAddr) -> (usize, usize, u64) {
        let line = addr.line_index(self.geom.line_bytes);
        let slice = (line % u64::from(self.geom.slices)) as usize;
        let set =
            ((line / u64::from(self.geom.slices)) % u64::from(self.geom.sets_per_slice)) as usize;
        // Tag = full line index; simplest unique identity.
        (slice, set, line)
    }

    /// Tag lookup and update for one line: returns `(hit, writeback)`.
    /// Misses allocate immediately (victim selected by LRU within the
    /// mask); dirty victims are reported for the caller to write back.
    fn touch_line(
        &mut self,
        addr: PhysAddr,
        is_write: bool,
        way_mask: u16,
    ) -> (bool, Option<PhysAddr>) {
        debug_assert!(way_mask != 0, "empty way mask");
        let (slice, set, tag) = self.slice_set_of(addr);
        self.lru_clock += 1;
        let stamp = self.lru_clock;
        let base = set * self.geom.ways as usize;
        let ways = self.geom.ways as usize;

        // Hit check across allowed ways.
        let mut victim: Option<usize> = None;
        let mut victim_stamp = u64::MAX;
        for w in 0..ways {
            if way_mask & (1 << w) == 0 {
                continue;
            }
            let line = &mut self.tags[slice][base + w];
            if line.valid && line.tag == tag {
                line.stamp = stamp;
                line.dirty |= is_write;
                self.stats.hits.incr();
                return (true, None);
            }
            if !line.valid {
                if victim_stamp != 0 {
                    victim = Some(w);
                    victim_stamp = 0;
                }
            } else if line.stamp < victim_stamp {
                victim = Some(w);
                victim_stamp = line.stamp;
            }
        }

        // Miss path.
        self.stats.misses.incr();
        let w = victim.expect("way mask guarantees at least one candidate");
        let line = &mut self.tags[slice][base + w];
        let wb = if line.valid && line.dirty {
            self.stats.writebacks.incr();
            Some(PhysAddr(line.tag * self.geom.line_bytes))
        } else {
            None
        };
        line.tag = tag;
        line.valid = true;
        line.dirty = is_write;
        line.stamp = stamp;
        // Conventional write-allocate: write misses fetch the line first
        // (read-for-ownership). Avoiding that fetch is exactly what the
        // NEC's explicit cache-write / bypass-write semantics provide.
        self.stats.fills.incr();
        (false, wb)
    }

    /// Looks up a single line; fills on miss (write misses fetch the
    /// line first) and writes back dirty victims. Returns the completion
    /// cycle and whether it hit.
    pub fn access_line(
        &mut self,
        now: Cycle,
        addr: PhysAddr,
        is_write: bool,
        way_mask: u16,
        dram: &mut DramModel,
    ) -> (Cycle, bool) {
        let (hit, wb) = self.touch_line(addr, is_write, way_mask);
        if hit {
            return (now + self.hit_latency, true);
        }
        if let Some(victim_addr) = wb {
            dram.access_burst(now, victim_addr, 1, true, 0);
        }
        let fill_done = dram.access_burst(now, addr.line_base(self.geom.line_bytes), 1, false, 0);
        (fill_done + self.hit_latency, false)
    }

    /// Outstanding demand-miss window of the transparent path (total
    /// MSHRs across slices). Explicitly-managed NEC transfers are bulk
    /// DMA and do not pass through this window — one of the structural
    /// advantages of NPU-controlled regions.
    pub const MSHR_WINDOW: usize = 144;

    /// Accesses a contiguous byte range through the transparent path.
    ///
    /// Demand misses are limited to [`SharedCache::MSHR_WINDOW`]
    /// outstanding fills: miss `k` cannot issue before miss
    /// `k − WINDOW` completes. By Little's law the achievable miss
    /// bandwidth is `WINDOW · line / latency`, so DRAM queueing delays
    /// under multi-tenant contention directly throttle fill throughput —
    /// the latency-bandwidth spiral that makes transparent caches
    /// inefficient for co-located DNNs.
    pub fn access_range(
        &mut self,
        now: Cycle,
        base: PhysAddr,
        bytes: u64,
        is_write: bool,
        way_mask: u16,
        dram: &mut DramModel,
    ) -> RangeOutcome {
        if bytes == 0 {
            return RangeOutcome {
                finish: now,
                ..RangeOutcome::default()
            };
        }
        let lb = self.geom.line_bytes;
        let first = base.line_index(lb);
        let last = base.offset(bytes - 1).line_index(lb);
        let mut out = RangeOutcome {
            finish: now,
            ..RangeOutcome::default()
        };
        let mut ring = [0 as Cycle; Self::MSHR_WINDOW];
        let mut miss_no = 0usize;
        for line in first..=last {
            let addr = PhysAddr(line * lb);
            let (hit, wb) = self.touch_line(addr, is_write, way_mask);
            if hit {
                out.hits += 1;
                continue;
            }
            out.misses += 1;
            if let Some(victim_addr) = wb {
                // Posted write: occupies a channel but no MSHR.
                out.writebacks += 1;
                dram.access_burst(now, victim_addr, 1, true, 0);
            }
            // Read misses and write misses (read-for-ownership) both
            // occupy an MSHR for the fill.
            let slot = miss_no % Self::MSHR_WINDOW;
            let gate = if miss_no >= Self::MSHR_WINDOW {
                ring[slot].max(now)
            } else {
                now
            };
            let done = dram.access_burst(gate, addr, 1, false, 0);
            ring[slot] = done;
            miss_no += 1;
            out.finish = out.finish.max(done);
        }
        // Cache port/bandwidth: the slices collectively serve
        // `slices * lines_per_cycle` lines per cycle.
        let lines = last - first + 1;
        let serve =
            (lines as f64 / (f64::from(self.geom.slices) * self.lines_per_cycle)).ceil() as Cycle;
        out.finish = out.finish.max(now + self.hit_latency + serve);
        out
    }

    /// True if the line holding `addr` is present (test/diagnostic aid).
    pub fn probe(&self, addr: PhysAddr, way_mask: u16) -> bool {
        let (slice, set, tag) = self.slice_set_of(addr);
        let base = set * self.geom.ways as usize;
        (0..self.geom.ways as usize)
            .filter(|w| way_mask & (1 << w) != 0)
            .any(|w| {
                let l = &self.tags[slice][base + w];
                l.valid && l.tag == tag
            })
    }

    /// Invalidates the whole cache without writebacks (test aid).
    pub fn invalidate_all(&mut self) {
        for slice in &mut self.tags {
            for line in slice.iter_mut() {
                *line = LineTag::default();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use camdn_common::config::DramConfig;

    fn setup() -> (SharedCache, DramModel) {
        let cfg = CacheConfig::paper_default();
        (
            SharedCache::new(&cfg),
            DramModel::new(DramConfig::paper_default(), cfg.line_bytes),
        )
    }

    #[test]
    fn miss_then_hit() {
        let (mut c, mut d) = setup();
        let a = PhysAddr(0x1000);
        let (_, hit1) = c.access_line(0, a, false, c.full_way_mask(), &mut d);
        let (_, hit2) = c.access_line(100, a, false, c.full_way_mask(), &mut d);
        assert!(!hit1);
        assert!(hit2);
        assert_eq!(c.stats().hits.get(), 1);
        assert_eq!(c.stats().misses.get(), 1);
    }

    #[test]
    fn hits_are_faster_than_misses() {
        let (mut c, mut d) = setup();
        let a = PhysAddr(0x2000);
        let (t_miss, _) = c.access_line(0, a, false, c.full_way_mask(), &mut d);
        let base = 1_000_000;
        let (t_hit, _) = c.access_line(base, a, false, c.full_way_mask(), &mut d);
        assert!(t_hit - base < t_miss, "{} !< {}", t_hit - base, t_miss);
    }

    #[test]
    fn lru_evicts_oldest() {
        let (mut c, mut d) = setup();
        let mask = c.full_way_mask();
        let geom = *c.geometry();
        // 17 lines mapping to the same (slice,set): stride = slices * sets * line.
        let stride = u64::from(geom.slices) * u64::from(geom.sets_per_slice) * geom.line_bytes;
        for i in 0..17u64 {
            c.access_line(i, PhysAddr(i * stride), false, mask, &mut d);
        }
        // Line 0 (oldest) must be gone; line 1..16 still present.
        assert!(!c.probe(PhysAddr(0), mask));
        assert!(c.probe(PhysAddr(stride), mask));
        assert!(c.probe(PhysAddr(16 * stride), mask));
    }

    #[test]
    fn way_mask_restricts_visibility() {
        let (mut c, mut d) = setup();
        let a = PhysAddr(0x40);
        let low_mask = 0x000F; // ways 0-3
        let high_mask = 0xFFF0; // ways 4-15
        c.access_line(0, a, false, low_mask, &mut d);
        assert!(c.probe(a, low_mask));
        assert!(
            !c.probe(a, high_mask),
            "line must not be visible in other ways"
        );
    }

    #[test]
    fn dirty_eviction_writes_back() {
        let (mut c, mut d) = setup();
        let geom = *c.geometry();
        let mask = 0x0001; // single way -> immediate conflict
        let stride = u64::from(geom.slices) * u64::from(geom.sets_per_slice) * geom.line_bytes;
        c.access_line(0, PhysAddr(0), true, mask, &mut d); // dirty
        let wr_before = d.stats().write_bytes.get();
        c.access_line(10, PhysAddr(stride), false, mask, &mut d); // evicts
        assert_eq!(c.stats().writebacks.get(), 1);
        assert!(d.stats().write_bytes.get() > wr_before);
    }

    #[test]
    fn range_access_counts_lines() {
        let (mut c, mut d) = setup();
        let out = c.access_range(0, PhysAddr(0), 64 * 10, false, c.full_way_mask(), &mut d);
        assert_eq!(out.hits + out.misses, 10);
        assert_eq!(out.misses, 10);
        let out2 = c.access_range(
            out.finish,
            PhysAddr(0),
            64 * 10,
            false,
            c.full_way_mask(),
            &mut d,
        );
        assert_eq!(out2.hits, 10);
        assert!(
            out2.finish - out.finish < out.finish,
            "reuse must be faster"
        );
    }

    #[test]
    fn unaligned_range_touches_both_boundary_lines() {
        let (mut c, mut d) = setup();
        // 2 bytes straddling a line boundary -> 2 lines.
        let out = c.access_range(0, PhysAddr(63), 2, false, c.full_way_mask(), &mut d);
        assert_eq!(out.hits + out.misses, 2);
    }

    #[test]
    fn partition_flushes_npu_ways() {
        let (mut c, mut d) = setup();
        let a = PhysAddr(0x40);
        // Fill with full mask; line lands in some way.
        c.access_line(0, a, true, c.full_way_mask(), &mut d);
        let mask = c.partition_ways(12, 100, &mut d);
        assert_eq!(mask.count_ones(), 12);
        assert_eq!(c.general_way_mask().count_ones(), 4);
        // The line may or may not survive depending on its way, but it must
        // never be visible through the NPU mask after the flush.
        assert!(!c.probe(a, mask));
    }

    #[test]
    fn zero_byte_range_is_noop() {
        let (mut c, mut d) = setup();
        let out = c.access_range(5, PhysAddr(0), 0, false, c.full_way_mask(), &mut d);
        assert_eq!(out.finish, 5);
        assert_eq!(out.hits + out.misses, 0);
    }
}
