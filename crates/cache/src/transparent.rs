//! The transparent (hardware-managed) cache path.
//!
//! This is the conventional set-associative lookup used (a) by CPU
//! traffic, (b) by all NPU traffic in the *baseline* systems the paper
//! compares against, where the shared cache is not NPU-controlled. Cache
//! contention between co-located DNNs — the motivation experiment of
//! Fig. 2 — emerges from this path: tasks evict each other's lines.
//!
//! Way partitioning (Section III-B1) is modelled with a per-cache way
//! mask: a lookup is only allowed to hit/allocate in the ways enabled in
//! its mask, exactly like the way-mask register CaMDN adds to each slice.
//!
//! # SoA tag planes
//!
//! Per-way state is stored structure-of-arrays, not as packed per-way
//! words:
//!
//! * `tags` — one `u16` lane per way (`tags[group * ways + way]`),
//!   holding the line's tag, `line >> log2(groups)`; the set-group index
//!   `line & (groups − 1)` is implicit in the position. A range access
//!   asserts its last line's tag fits 16 bits — 512 GiB of address
//!   space at the paper geometry (task layouts are 1 GiB slabs indexed
//!   by task id, so even the 256-tenant scaling study sits well under
//!   the bound). Halving the lane width halves the tag pass's largest
//!   plane and its per-touch memory traffic.
//! * `lru` — one packed `u64` **order word** per set: nibble `r` holds
//!   the way index at recency rank `r` (rank 0 = LRU). Exact LRU in
//!   8 bytes per set — an order of magnitude less plane traffic than
//!   the per-way stamp lane it replaced, and with no stamp clock there
//!   is no overflow and no periodic rank-compaction pass. The victim
//!   is the lowest-ranked allowed way; ranks of *occupied* ways always
//!   equal their last-touch order, so the choice is identical to a
//!   min-stamp scan.
//! * `meta` — one packed `u64` per **set**: the occupancy bitset (bit
//!   `w` = way `w` valid) in the low 16 bits, the dirty bitset above it,
//!   and the set's generation tag in the high 32 bits. One load serves
//!   the validity test, the dirtiness test and the staleness check, and
//!   the tag compare masks spurious matches from invalid ways with the
//!   occupancy bits instead of a sentinel tag value.
//!
//! Tag lanes of invalid ways hold stale garbage by design: `occ` is the
//! source of truth (invalid ways do keep a slot in the order word — the
//! permutation covers all ways — but their rank is never consulted).
//! The lane primitives ([`eq_mask`], [`lru_touch`], [`lru_victim`])
//! live in [`geometry`](crate::geometry) and are shared, unsafe-free
//! SWAR over `u64` words.
//!
//! # Generation counters
//!
//! Each set's meta word carries a generation tag; a set is **live**
//! iff that tag equals `cur_gen`, otherwise it is *stale* — logically
//! empty, its tag/order/occupancy lanes all garbage. Invariants:
//!
//! * `cur_gen` only moves forward; every flush (`invalidate_all`,
//!   cache construction, plane reuse from a [`CacheScratchPool`]) bumps
//!   it, making every set stale in O(1) without touching the planes.
//! * A stale set is materialized lazily on first touch (occ/dirty reset,
//!   generation stamped), and the tag pass takes a no-scan fast path for
//!   it: a known-empty set allocates its first allowed way directly, so
//!   set-major walks after a flush never re-scan cold tags.
//! * Set-major maintenance walks ([`SharedCache::partition_ways`],
//!   [`SharedCache::state_fingerprint`]) skip stale sets outright.
//! * On the (never observed in practice) `u32` wrap of `cur_gen`, the
//!   generation plane is hard-reset so staleness stays unambiguous.
//!
//! # Batched range accesses
//!
//! [`SharedCache::access_range`] simulates a whole transfer in two
//! passes instead of one fused per-line loop:
//!
//! 1. a **tag pass** walks the tag planes once, applying LRU updates and
//!    collecting the transfer's outcome as a compact event tape — runs
//!    of consecutive missing lines plus interleaved dirty-victim
//!    writebacks (a cold multi-MB tensor is a *single* run);
//! 2. a **memory pass** replays that tape through
//!    [`DramModel::line_batch`], which reproduces the MSHR-gated
//!    per-miss DRAM sequence in closed form wherever the gates provably
//!    cannot bind.
//!
//! The original fused per-line walk is retained as a reference model
//! ([`SharedCache::set_reference_model`]); differential tests here and
//! in `camdn` assert the two paths are bit-identical.

use crate::geometry::{
    eq_mask, eq_mask_n, lru_identity, lru_promote, lru_rank_of, lru_touch, lru_victim,
    CacheGeometry,
};
use camdn_common::config::CacheConfig;
use camdn_common::stats::Counter;
use camdn_common::types::{Cycle, PhysAddr};
use camdn_dram::DramModel;
use serde::{Deserialize, Serialize};
use std::sync::{Arc, Mutex};

/// Statistics of the transparent path.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookups that hit.
    pub hits: Counter,
    /// Lookups that missed.
    pub misses: Counter,
    /// Dirty victim lines written back to DRAM.
    pub writebacks: Counter,
    /// Lines filled from DRAM.
    pub fills: Counter,
}

impl CacheStats {
    /// Hit rate over all lookups.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits.get() + self.misses.get();
        if total == 0 {
            0.0
        } else {
            self.hits.get() as f64 / total as f64
        }
    }
}

/// Result of a range access on the transparent path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RangeOutcome {
    /// Cycle at which the whole range is available / written.
    pub finish: Cycle,
    /// Lines that hit in the cache.
    pub hits: u64,
    /// Lines that missed and were filled from DRAM.
    pub misses: u64,
    /// Dirty victims written back.
    pub writebacks: u64,
}

/// Outcome of one tag-plane touch.
enum Touch {
    Hit,
    /// Miss; carries the dirty victim's line index if one must be
    /// written back.
    Miss(Option<u64>),
}

/// One entry of the tag pass's event tape.
#[derive(Debug, Clone, Copy)]
enum RangeEvent {
    /// `len` consecutive missing lines starting at line index `start`.
    Run { start: u64, len: u64 },
    /// Posted writeback of the dirty victim line `victim`.
    Writeback { victim: u64 },
}

/// One parked set of SoA planes plus the event tape, ready for reuse.
#[derive(Debug, Default)]
struct Planes {
    tags: Vec<u16>,
    lru: Vec<u64>,
    meta: Vec<u64>,
    /// Highest generation the meta plane has been stamped with; a
    /// cache reusing these planes starts at `gen + 1`, so every set is
    /// stale without a single write.
    gen: u32,
    tape: Vec<RangeEvent>,
}

/// A pool of reusable [`SharedCache`] plane allocations.
///
/// A cache built with [`SharedCache::with_scratch`] draws its SoA
/// planes and event tape from the pool and parks them back on drop, so
/// a worker running many simulations in sequence (a sweep cell worker,
/// a serving loop) allocates the multi-MB tag planes once instead of
/// once per cell. The generation-counter invariant makes reuse
/// *memset-free*: the reused `set_gen` plane keeps its old stamps and
/// the new cache simply starts one generation later, so every set is
/// stale — simulated results are bit-for-bit identical to a fresh
/// allocation (asserted by tests).
///
/// Pools are cheap (`Mutex<Vec<..>>`); intended use is one pool per
/// worker thread, shared only between the consecutive caches that
/// worker builds.
#[derive(Debug, Default)]
pub struct CacheScratchPool {
    planes: Mutex<Vec<Planes>>,
}

impl CacheScratchPool {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of parked plane sets (diagnostic aid).
    pub fn idle(&self) -> usize {
        self.planes.lock().map(|g| g.len()).unwrap_or(0)
    }

    /// Pops a parked plane set, or a fresh default if the pool is empty
    /// (or its lock was poisoned — reuse is an optimization, never a
    /// correctness dependency).
    fn acquire(&self) -> Planes {
        self.planes
            .lock()
            .ok()
            .and_then(|mut g| g.pop())
            .unwrap_or_default()
    }

    fn release(&self, p: Planes) {
        if let Ok(mut g) = self.planes.lock() {
            g.push(p);
        }
    }
}

/// Packs one set's metadata word: occupancy bitset in the low 16
/// bits, dirty bitset in the next 16, generation tag in the high 32.
/// One plane word carries all three, so a touch reads and writes a
/// single 8-byte lane for everything but tags and recency.
#[inline]
fn meta_pack(occ: u32, dirty: u32, gen: u32) -> u64 {
    debug_assert!(occ <= 0xFFFF && dirty <= 0xFFFF);
    u64::from(occ) | u64::from(dirty) << 16 | u64::from(gen) << 32
}

/// Occupancy bitset of a packed meta word.
#[inline]
fn meta_occ(m: u64) -> u32 {
    (m & 0xFFFF) as u32
}

/// Dirty bitset of a packed meta word.
#[inline]
fn meta_dirty(m: u64) -> u32 {
    (m >> 16) as u32 & 0xFFFF
}

/// Generation tag of a packed meta word.
#[inline]
fn meta_gen(m: u64) -> u32 {
    (m >> 32) as u32
}

/// Tag-pass accumulator: hit/miss/writeback counters plus the
/// run/writeback event tape under construction. Shared by the
/// vectorized segment pass and the scalar fallback so the two paths
/// cannot drift in how they fold touches into events.
struct TagAcc {
    hits: u64,
    misses: u64,
    wbs: u64,
    run_start: Option<u64>,
    events: Vec<RangeEvent>,
}

impl TagAcc {
    #[inline]
    fn close_run(&mut self, line: u64) {
        if let Some(s) = self.run_start.take() {
            self.events.push(RangeEvent::Run {
                start: s,
                len: line - s,
            });
        }
    }

    #[inline]
    fn hit(&mut self, line: u64) {
        self.hits += 1;
        self.close_run(line);
    }

    #[inline]
    fn miss(&mut self, line: u64, victim: Option<u64>) {
        self.misses += 1;
        if let Some(victim) = victim {
            // The posted write goes out before this line's fill, so it
            // splits the run.
            self.wbs += 1;
            self.close_run(line);
            self.events.push(RangeEvent::Writeback { victim });
        }
        if self.run_start.is_none() {
            self.run_start = Some(line);
        }
    }
}

/// A sliced, set-associative, write-back/write-allocate shared cache.
///
/// See the module docs for the SoA plane layout and the
/// generation-counter invariants.
#[derive(Debug, Clone)]
pub struct SharedCache {
    geom: CacheGeometry,
    hit_latency: Cycle,
    lines_per_cycle: f64,
    /// Way-tag lanes, set-major: `tags[(line % groups) * ways + way]`.
    /// Consecutive lines walk this array sequentially (slices are the
    /// low-order index), which is what keeps the tag pass streaming.
    /// `u16` halves the hot pass's dominant plane traffic; every range
    /// access asserts its tags fit (see `assert_tag_fits`).
    tags: Vec<u16>,
    /// Per-set packed LRU order words (nibble `r` = way at recency
    /// rank `r`; see the geometry module's order-word docs).
    lru: Vec<u64>,
    /// Per-set packed meta words (`occ | dirty << 16 | gen << 32`,
    /// see [`meta_pack`]); the set is live iff its generation field
    /// equals `cur_gen`, and `dirty` is always a subset of `occ`.
    meta: Vec<u64>,
    cur_gen: u32,
    /// `ways` (stride from one set group to the next).
    set_stride: usize,
    /// `sets_per_slice * slices − 1`: line → set-group index mask.
    group_mask: u64,
    /// `log2(groups)`: line → tag shift.
    group_bits: u32,
    npu_way_mask: u16,
    stats: CacheStats,
    /// Reused tag-pass event tape (no per-call allocation).
    scratch: Vec<RangeEvent>,
    reference: bool,
    /// Skip the memory pass on range accesses (diagnostic; see
    /// [`SharedCache::set_tag_pass_only`]).
    tag_pass_only: bool,
    /// Planes return here on drop.
    pool: Option<Arc<CacheScratchPool>>,
}

impl SharedCache {
    /// Builds a cache from its configuration. Initially no ways are
    /// reserved for the NPU subspace (fully transparent baseline).
    pub fn new(cfg: &CacheConfig) -> Self {
        Self::build(cfg, None)
    }

    /// Like [`SharedCache::new`], but drawing the plane allocations
    /// from (and returning them to) `pool`. Simulated behavior is
    /// bit-for-bit identical to a fresh cache.
    pub fn with_scratch(cfg: &CacheConfig, pool: Arc<CacheScratchPool>) -> Self {
        Self::build(cfg, Some(pool))
    }

    fn build(cfg: &CacheConfig, pool: Option<Arc<CacheScratchPool>>) -> Self {
        let geom = CacheGeometry::new(cfg);
        let ways = geom.ways as usize;
        let sets = geom.sets_per_slice as usize;
        let groups = geom.slices as usize * sets;
        let mut planes = match &pool {
            Some(p) => p.acquire(),
            None => Planes::default(),
        };
        // One generation past anything the reused plane was stamped
        // with → every set stale, no memset. On the (effectively
        // unreachable) u32 wrap, hard-reset the plane instead.
        let cur_gen = match planes.gen.checked_add(1) {
            Some(g) => g,
            None => {
                planes.meta.clear();
                1
            }
        };
        planes.tags.resize(groups * ways, 0);
        // Order words are rebuilt from the identity permutation when a
        // stale set materializes, so reused contents are fine.
        planes.lru.resize(groups, 0);
        planes.meta.resize(groups, 0);
        SharedCache {
            geom,
            hit_latency: cfg.hit_latency,
            lines_per_cycle: cfg.lines_per_cycle,
            tags: planes.tags,
            lru: planes.lru,
            meta: planes.meta,
            cur_gen,
            set_stride: ways,
            group_mask: groups as u64 - 1,
            group_bits: (groups as u64).trailing_zeros(),
            npu_way_mask: 0,
            stats: CacheStats::default(),
            scratch: planes.tape,
            reference: false,
            tag_pass_only: false,
            pool,
        }
    }

    /// The cache geometry.
    pub fn geometry(&self) -> &CacheGeometry {
        &self.geom
    }

    /// Accumulated statistics of the transparent path.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Resets statistics (cache contents survive).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Selects the fused per-line reference walk (`true`) or the batched
    /// two-pass walk (`false`, default) for range accesses. Both are
    /// bit-identical; the reference path exists for differential
    /// verification and as the throughput harness's baseline.
    pub fn set_reference_model(&mut self, reference: bool) {
        self.reference = reference;
    }

    /// True when the reference walk is selected.
    pub fn reference_model(&self) -> bool {
        self.reference
    }

    /// Diagnostic mode for wall-time attribution (default off): range
    /// accesses run the tag pass — with all its state transitions — but
    /// skip the DRAM memory pass, charging only the hit latency and the
    /// port floor. Simulated timings are NOT meaningful in this mode;
    /// the throughput harness uses it to estimate what fraction of a
    /// scenario's wall clock the tag pass accounts for.
    pub fn set_tag_pass_only(&mut self, enabled: bool) {
        self.tag_pass_only = enabled;
    }

    /// Bit mask over all ways.
    pub fn full_way_mask(&self) -> u16 {
        self.geom.full_way_mask()
    }

    /// Mask of ways reserved for the NPU subspace.
    pub fn npu_way_mask(&self) -> u16 {
        self.npu_way_mask
    }

    /// Mask of general-purpose (CPU-visible) ways.
    pub fn general_way_mask(&self) -> u16 {
        self.full_way_mask() & !self.npu_way_mask
    }

    /// Reserves `npu_ways` ways (the highest-numbered ones) for the NPU
    /// subspace, invalidating any lines they held. Dirty victims are
    /// written back through `dram` at time `now`.
    ///
    /// The flush walk is set-major and generation-skipped: sets
    /// untouched since the last flush are known-empty and not scanned.
    ///
    /// Returns the mask of reserved ways.
    pub fn partition_ways(&mut self, npu_ways: u32, now: Cycle, dram: &mut DramModel) -> u16 {
        assert!(
            npu_ways <= self.geom.ways,
            "cannot reserve more ways than exist"
        );
        let mask = self.geom.npu_way_mask(npu_ways);
        self.npu_way_mask = mask;
        if mask == 0 {
            return 0;
        }
        let clear = u32::from(mask);
        let groups = self.group_mask as usize + 1;
        for g in 0..groups {
            let m = self.meta[g];
            if meta_gen(m) != self.cur_gen {
                continue; // stale: nothing cached, nothing to flush
            }
            let base = g * self.set_stride;
            // Flush the reserved ways: the NEC takes raw ownership of
            // them. Writebacks go out in way order, as they always have.
            let mut flush = meta_occ(m) & meta_dirty(m) & clear;
            while flush != 0 {
                let w = flush.trailing_zeros();
                flush &= flush - 1;
                self.stats.writebacks.incr();
                // Reconstruct an address in the right channel set;
                // exact identity is irrelevant for timing.
                let line = (u64::from(self.tags[base + w as usize]) << self.group_bits) | g as u64;
                dram.access_burst(now, PhysAddr(line * self.geom.line_bytes), 1, true, 0);
            }
            self.meta[g] = meta_pack(meta_occ(m) & !clear, meta_dirty(m) & !clear, self.cur_gen);
        }
        mask
    }

    /// Every range access asserts its tags fit the `u16` lanes — true
    /// below 512 GiB of address space at the paper geometry (the bound
    /// scales with the set count for other geometries).
    #[inline]
    fn assert_tag_fits(&self, last_line: u64) {
        assert!(
            last_line >> self.group_bits <= u64::from(u16::MAX),
            "address range exceeds the 16-bit tag lanes of this geometry"
        );
    }

    /// Plane-invariant housekeeping hook, called by the engine at
    /// scheduling epochs. Never changes simulated results. The packed
    /// LRU order words need no periodic maintenance (unlike the stamp
    /// plane they replaced, which had to be rank-compacted here before
    /// its 32-bit offset overflowed), so in release builds this is
    /// free; debug builds take the opportunity to sweep the live sets'
    /// structural invariants.
    pub fn on_epoch(&mut self) {
        #[cfg(debug_assertions)]
        self.debug_check_planes();
    }

    /// Sweeps every live set's plane invariants: `dirty ⊆ occ`, both
    /// within the real ways, and the LRU order word a permutation of
    /// `0..ways` with zero upper nibbles.
    #[cfg(debug_assertions)]
    fn debug_check_planes(&self) {
        let ways = self.set_stride as u32;
        let full = u32::from(self.full_way_mask());
        for g in 0..=self.group_mask as usize {
            let m = self.meta[g];
            if meta_gen(m) != self.cur_gen {
                continue;
            }
            debug_assert_eq!(meta_occ(m) & !full, 0, "occ outside real ways: set {g}");
            debug_assert_eq!(meta_dirty(m) & !meta_occ(m), 0, "dirty ⊄ occ: set {g}");
            let mut seen = 0u32;
            let mut o = self.lru[g];
            for _ in 0..ways {
                seen |= 1 << (o & 0xF);
                o >>= 4;
            }
            debug_assert_eq!(o, 0, "upper order nibbles not zero: set {g}");
            debug_assert_eq!(seen, full, "order word not a permutation: set {g}");
        }
    }

    /// Tag lookup and update for one line within its set — the single
    /// source of truth for hit/replacement semantics; both the batched
    /// and the reference paths run it.
    ///
    /// Hit rule: first way in way order with `tag match ∧ occupied ∧
    /// allowed` wins (a matching way outside the mask is skipped).
    /// Victim rule: the first invalid allowed way in way order, else
    /// the lowest-ranked allowed way of the set's LRU order word —
    /// occupied ways rank in last-touch order, so this is exactly the
    /// min-stamp LRU rule. Every touched way is promoted to the MRU
    /// rank.
    #[inline]
    fn touch(&mut self, line: u64, is_write: bool, mask: u32) -> Touch {
        debug_assert!(mask != 0, "empty way mask");
        let ways = self.set_stride as u32;
        let g = (line & self.group_mask) as usize;
        let tag = (line >> self.group_bits) as u16;
        let base = g * self.set_stride;
        let wr = u32::from(is_write);
        let m = self.meta[g];
        if meta_gen(m) != self.cur_gen {
            // Stale since the last flush: known-empty, no tag scan —
            // materialize and allocate the first allowed way directly.
            let w = mask.trailing_zeros();
            self.tags[base + w as usize] = tag;
            self.lru[g] = lru_touch(lru_identity(ways), w, ways);
            self.meta[g] = meta_pack(1 << w, wr << w, self.cur_gen);
            return Touch::Miss(None);
        }
        let occ = meta_occ(m);
        let dirty = meta_dirty(m);
        let lanes = &self.tags[base..base + self.set_stride];
        let hits = eq_mask(lanes, tag) & occ & mask;
        if hits != 0 {
            let w = hits.trailing_zeros();
            self.lru[g] = lru_touch(self.lru[g], w, ways);
            self.meta[g] = m | u64::from(wr << w) << 16;
            return Touch::Hit;
        }
        let invalid = !occ & mask;
        let (w, rank) = if invalid != 0 {
            let w = invalid.trailing_zeros();
            (w, lru_rank_of(self.lru[g], w))
        } else {
            lru_victim(self.lru[g], mask)
        };
        let wi = base + w as usize;
        let wb = if invalid == 0 && (dirty >> w) & 1 != 0 {
            Some((u64::from(self.tags[wi]) << self.group_bits) | g as u64)
        } else {
            None
        };
        self.tags[wi] = tag;
        self.lru[g] = lru_promote(self.lru[g], rank, w, ways);
        self.meta[g] = meta_pack(occ | 1 << w, (dirty & !(1 << w)) | wr << w, self.cur_gen);
        Touch::Miss(wb)
    }

    /// Scalar tag pass: per-line [`SharedCache::touch`] calls folded
    /// into `acc`. The fallback for ways counts with no monomorphized
    /// lane width.
    fn tag_pass_scalar(
        &mut self,
        first: u64,
        last: u64,
        is_write: bool,
        mask: u32,
        acc: &mut TagAcc,
    ) {
        for line in first..=last {
            match self.touch(line, is_write, mask) {
                Touch::Hit => acc.hit(line),
                Touch::Miss(victim) => acc.miss(line, victim),
            }
        }
    }

    /// Monomorphized segment tag pass — the vectorized hot path.
    ///
    /// Consecutive lines map to consecutive set groups (the group index
    /// is the line's low bits), so the range is walked as contiguous
    /// group segments split only at the group-index wrap. Within a
    /// segment the pass zips linear iterators over the SoA planes —
    /// `as_chunks_mut::<N>` exposes each set's tag lane as a fixed
    /// `[u32; N]`, which is what lets the compare ([`eq_mask_n`]) lower
    /// to vector code and drops all per-line index arithmetic and
    /// bounds checks. The stored tag (`line >> group_bits`) is constant
    /// across a segment and hoisted, as is the order word a stale set
    /// materializes with (the mask's first way promoted over the
    /// identity permutation).
    ///
    /// Precondition (checked by the caller): `N == set_stride`.
    /// Behavior is line-for-line identical to [`SharedCache::touch`] —
    /// the differential property tests hold the two paths together.
    fn tag_pass_n<const N: usize>(
        &mut self,
        first: u64,
        last: u64,
        is_write: bool,
        mask: u32,
        acc: &mut TagAcc,
    ) {
        debug_assert_eq!(self.set_stride, N);
        debug_assert!(mask != 0, "empty way mask");
        let groups = self.group_mask as usize + 1;
        let cur_gen = self.cur_gen;
        let wr = u32::from(is_write);
        let gb = self.group_bits;
        let ways = N as u32;
        let first_way = mask.trailing_zeros();
        let stale_order = lru_touch(lru_identity(ways), first_way, ways);
        let stale_meta = meta_pack(1 << first_way, wr << first_way, cur_gen);
        let mut line = first;
        while line <= last {
            let g0 = (line & self.group_mask) as usize;
            let seg = (groups - g0).min((last - line + 1) as usize);
            let tag = (line >> gb) as u16;
            let (tag_sets, _) = self.tags[g0 * N..(g0 + seg) * N].as_chunks_mut::<N>();
            let planes = tag_sets
                .iter_mut()
                .zip(self.lru[g0..g0 + seg].iter_mut())
                .zip(self.meta[g0..g0 + seg].iter_mut());
            for (i, ((ts, order), meta)) in planes.enumerate() {
                let ln = line + i as u64;
                let m = *meta;
                if meta_gen(m) != cur_gen {
                    // Stale since the last flush: known-empty, no tag
                    // scan — allocate the first allowed way directly.
                    ts[first_way as usize] = tag;
                    *order = stale_order;
                    *meta = stale_meta;
                    acc.miss(ln, None);
                    continue;
                }
                let occ = meta_occ(m);
                let hits = eq_mask_n(ts, tag) & occ & mask;
                if hits != 0 {
                    let w = hits.trailing_zeros();
                    *order = lru_touch(*order, w, ways);
                    *meta = m | u64::from(wr << w) << 16;
                    acc.hit(ln);
                    continue;
                }
                let dirty = meta_dirty(m);
                let invalid = !occ & mask;
                let (w, rank) = if invalid != 0 {
                    let w = invalid.trailing_zeros();
                    (w, lru_rank_of(*order, w))
                } else {
                    lru_victim(*order, mask)
                };
                let victim = if invalid == 0 && (dirty >> w) & 1 != 0 {
                    Some((u64::from(ts[w as usize]) << gb) | (g0 + i) as u64)
                } else {
                    None
                };
                ts[w as usize] = tag;
                *order = lru_promote(*order, rank, w, ways);
                *meta = meta_pack(occ | 1 << w, (dirty & !(1 << w)) | wr << w, cur_gen);
                acc.miss(ln, victim);
            }
            line += seg as u64;
        }
    }

    /// Tag lookup and update for one line: returns `(hit, writeback)`,
    /// updating statistics (the reference path's per-line primitive).
    fn touch_line(
        &mut self,
        addr: PhysAddr,
        is_write: bool,
        way_mask: u16,
    ) -> (bool, Option<PhysAddr>) {
        let line = addr.line_index(self.geom.line_bytes);
        self.assert_tag_fits(line);
        match self.touch(line, is_write, u32::from(way_mask)) {
            Touch::Hit => {
                self.stats.hits.incr();
                (true, None)
            }
            Touch::Miss(victim) => {
                self.stats.misses.incr();
                // Conventional write-allocate: write misses fetch the
                // line first (read-for-ownership). Avoiding that fetch is
                // exactly what the NEC's explicit cache-write /
                // bypass-write semantics provide.
                self.stats.fills.incr();
                let wb = victim.map(|line| {
                    self.stats.writebacks.incr();
                    PhysAddr(line * self.geom.line_bytes)
                });
                (false, wb)
            }
        }
    }

    /// Looks up a single line; fills on miss (write misses fetch the
    /// line first) and writes back dirty victims. Returns the completion
    /// cycle and whether it hit.
    pub fn access_line(
        &mut self,
        now: Cycle,
        addr: PhysAddr,
        is_write: bool,
        way_mask: u16,
        dram: &mut DramModel,
    ) -> (Cycle, bool) {
        let (hit, wb) = self.touch_line(addr, is_write, way_mask);
        if hit {
            return (now + self.hit_latency, true);
        }
        if let Some(victim_addr) = wb {
            dram.access_burst(now, victim_addr, 1, true, 0);
        }
        let fill_done = dram.access_burst(now, addr.line_base(self.geom.line_bytes), 1, false, 0);
        (fill_done + self.hit_latency, false)
    }

    /// Outstanding demand-miss window of the transparent path (total
    /// MSHRs across slices). Explicitly-managed NEC transfers are bulk
    /// DMA and do not pass through this window — one of the structural
    /// advantages of NPU-controlled regions.
    pub const MSHR_WINDOW: usize = 144;

    /// Cache port service time for `lines` line transfers: the slices
    /// collectively serve `slices * lines_per_cycle` lines per cycle.
    #[inline]
    fn port_cycles(&self, lines: u64) -> Cycle {
        (lines as f64 / (f64::from(self.geom.slices) * self.lines_per_cycle)).ceil() as Cycle
    }

    /// Accesses a contiguous byte range through the transparent path.
    ///
    /// Demand misses are limited to [`SharedCache::MSHR_WINDOW`]
    /// outstanding fills: miss `k` cannot issue before miss
    /// `k − WINDOW` completes. By Little's law the achievable miss
    /// bandwidth is `WINDOW · line / latency`, so DRAM queueing delays
    /// under multi-tenant contention directly throttle fill throughput —
    /// the latency-bandwidth spiral that makes transparent caches
    /// inefficient for co-located DNNs.
    pub fn access_range(
        &mut self,
        now: Cycle,
        base: PhysAddr,
        bytes: u64,
        is_write: bool,
        way_mask: u16,
        dram: &mut DramModel,
    ) -> RangeOutcome {
        if self.reference {
            self.access_range_reference(now, base, bytes, is_write, way_mask, dram)
        } else {
            self.access_range_batched(now, base, bytes, is_write, way_mask, dram)
        }
    }

    /// Batched implementation of [`SharedCache::access_range`]: one tag
    /// pass builds the miss-run/writeback event tape, one memory pass
    /// replays it through [`DramModel::line_batch`].
    fn access_range_batched(
        &mut self,
        now: Cycle,
        base: PhysAddr,
        bytes: u64,
        is_write: bool,
        way_mask: u16,
        dram: &mut DramModel,
    ) -> RangeOutcome {
        if bytes == 0 {
            return RangeOutcome {
                finish: now,
                ..RangeOutcome::default()
            };
        }
        let lb = self.geom.line_bytes;
        let first = base.line_index(lb);
        let last = base.offset(bytes - 1).line_index(lb);
        self.assert_tag_fits(last);
        let lines = last - first + 1;
        let mask = u32::from(way_mask);

        // --- tag pass -------------------------------------------------
        let mut events = std::mem::take(&mut self.scratch);
        events.clear();
        let mut acc = TagAcc {
            hits: 0,
            misses: 0,
            wbs: 0,
            run_start: None,
            events,
        };
        match self.set_stride {
            16 => self.tag_pass_n::<16>(first, last, is_write, mask, &mut acc),
            8 => self.tag_pass_n::<8>(first, last, is_write, mask, &mut acc),
            4 => self.tag_pass_n::<4>(first, last, is_write, mask, &mut acc),
            2 => self.tag_pass_n::<2>(first, last, is_write, mask, &mut acc),
            1 => self.tag_pass_n::<1>(first, last, is_write, mask, &mut acc),
            _ => self.tag_pass_scalar(first, last, is_write, mask, &mut acc),
        }
        acc.close_run(last + 1);
        let TagAcc {
            hits,
            misses,
            wbs,
            events,
            ..
        } = acc;
        self.stats.hits.add(hits);
        self.stats.misses.add(misses);
        self.stats.fills.add(misses);
        self.stats.writebacks.add(wbs);

        // --- memory pass ---------------------------------------------
        if self.tag_pass_only {
            // Diagnostic mode: the state transitions above all happened,
            // but no DRAM traffic is issued and the port floor is the
            // whole timing model. Wall time spent in this configuration
            // approximates pure tag-pass cost.
            self.scratch = events;
            return RangeOutcome {
                finish: now + self.hit_latency + self.port_cycles(lines),
                hits,
                misses,
                writebacks: wbs,
            };
        }
        let mut batch = dram.line_batch(now, Self::MSHR_WINDOW, misses);
        for ev in &events {
            match *ev {
                RangeEvent::Run { start, len } => batch.fill_run(PhysAddr(start * lb), len),
                RangeEvent::Writeback { victim } => batch.writeback(PhysAddr(victim * lb)),
            }
        }
        let mut finish = batch.finish();
        self.scratch = events;

        finish = finish.max(now + self.hit_latency + self.port_cycles(lines));
        RangeOutcome {
            finish,
            hits,
            misses,
            writebacks: wbs,
        }
    }

    /// Reference implementation of [`SharedCache::access_range`]: the
    /// original fused per-line walk, one tag probe and one DRAM burst
    /// call per line. Kept as the differential baseline.
    pub fn access_range_reference(
        &mut self,
        now: Cycle,
        base: PhysAddr,
        bytes: u64,
        is_write: bool,
        way_mask: u16,
        dram: &mut DramModel,
    ) -> RangeOutcome {
        if bytes == 0 {
            return RangeOutcome {
                finish: now,
                ..RangeOutcome::default()
            };
        }
        let lb = self.geom.line_bytes;
        let first = base.line_index(lb);
        let last = base.offset(bytes - 1).line_index(lb);
        let mut out = RangeOutcome {
            finish: now,
            ..RangeOutcome::default()
        };
        let mut ring = [0 as Cycle; Self::MSHR_WINDOW];
        let mut miss_no = 0usize;
        for line in first..=last {
            let addr = PhysAddr(line * lb);
            let (hit, wb) = self.touch_line(addr, is_write, way_mask);
            if hit {
                out.hits += 1;
                continue;
            }
            out.misses += 1;
            if let Some(victim_addr) = wb {
                // Posted write: occupies a channel but no MSHR.
                out.writebacks += 1;
                dram.access_burst(now, victim_addr, 1, true, 0);
            }
            // Read misses and write misses (read-for-ownership) both
            // occupy an MSHR for the fill.
            let slot = miss_no % Self::MSHR_WINDOW;
            let gate = if miss_no >= Self::MSHR_WINDOW {
                ring[slot].max(now)
            } else {
                now
            };
            let done = dram.access_burst(gate, addr, 1, false, 0);
            ring[slot] = done;
            miss_no += 1;
            out.finish = out.finish.max(done);
        }
        let lines = last - first + 1;
        out.finish = out
            .finish
            .max(now + self.hit_latency + self.port_cycles(lines));
        out
    }

    /// Accesses a range on behalf of a multicast group of `reps` NPUs
    /// running the same model: the range is walked **once**, and the
    /// `reps − 1` replica fetches are charged in closed form. Replicas
    /// hit the lines the first walk brought in — each replica costs one
    /// more pass over the cache port, no tag churn. When the range
    /// exceeds the allowed ways' capacity the first walk self-evicts its
    /// head, so the non-resident head lines are charged to each replica
    /// as straight DRAM re-fetches (they would only self-evict again if
    /// allocated).
    ///
    /// This replaces the thundering-herd model where every replica
    /// re-walked the whole range through the tag array.
    #[allow(clippy::too_many_arguments)]
    pub fn access_range_multicast(
        &mut self,
        now: Cycle,
        base: PhysAddr,
        bytes: u64,
        is_write: bool,
        way_mask: u16,
        dram: &mut DramModel,
        reps: u32,
    ) -> RangeOutcome {
        let out = self.access_range(now, base, bytes, is_write, way_mask, dram);
        if reps <= 1 || bytes == 0 {
            return out;
        }
        let lb = self.geom.line_bytes;
        let lines = base.offset(bytes - 1).line_index(lb) - base.line_index(lb) + 1;
        // At most this many lines of the range survive the first walk:
        // one line per allowed way per set group.
        let allowed_ways = u64::from((way_mask & self.full_way_mask()).count_ones());
        let capacity = (self.group_mask + 1) * allowed_ways;
        let resident = lines.min(capacity);
        let evicted = lines - resident;
        let replicas = u64::from(reps - 1);
        self.stats.hits.add(resident * replicas);
        let mut finish = out
            .finish
            .max(now + self.hit_latency + u64::from(reps) * self.port_cycles(lines));
        if evicted > 0 {
            // Each replica re-fetches the self-evicted head from DRAM
            // (one bulk burst per replica, still no tag walk).
            self.stats.misses.add(evicted * replicas);
            for _ in 1..reps {
                finish = finish.max(dram.access_burst(now, base, evicted, false, 0));
            }
        }
        RangeOutcome {
            finish,
            hits: out.hits + resident * replicas,
            misses: out.misses + evicted * replicas,
            ..out
        }
    }

    /// True if the line holding `addr` is present (test/diagnostic aid).
    pub fn probe(&self, addr: PhysAddr, way_mask: u16) -> bool {
        let line = addr.line_index(self.geom.line_bytes);
        let g = (line & self.group_mask) as usize;
        let m = self.meta[g];
        if meta_gen(m) != self.cur_gen {
            return false; // stale set: logically empty
        }
        let wide = line >> self.group_bits;
        if wide > u64::from(u16::MAX) {
            return false; // unrepresentable tags can never be cached
        }
        let base = g * self.set_stride;
        let lanes = &self.tags[base..base + self.set_stride];
        eq_mask(lanes, wide as u16) & meta_occ(m) & u32::from(way_mask) != 0
    }

    /// Invalidates the whole cache without writebacks (test aid). O(1):
    /// bumping the generation makes every set stale.
    pub fn invalidate_all(&mut self) {
        match self.cur_gen.checked_add(1) {
            Some(g) => self.cur_gen = g,
            None => {
                self.meta.fill(0);
                self.cur_gen = 1;
            }
        }
    }

    /// Order- and content-sensitive digest of the full *logical* tag
    /// state (tags, validity, dirtiness, LRU recency order). Canonical
    /// over the physical encoding: stale sets and invalid ways
    /// contribute fixed values regardless of the garbage their lanes
    /// hold — the recency walk visits only occupied ways, in rank
    /// order, so where the invalid ways sit in the order word cannot
    /// influence the digest. Lets differential tests assert two caches
    /// evolved identically.
    #[doc(hidden)]
    pub fn state_fingerprint(&self) -> u64 {
        let mut h = 0xcbf29ce484222325u64;
        let mut mix = |v: u64| {
            h ^= v;
            h = h.wrapping_mul(0x100000001b3);
        };
        let groups = self.group_mask as usize + 1;
        for g in 0..groups {
            let m = self.meta[g];
            if meta_gen(m) != self.cur_gen {
                mix(0); // canonical empty set
                continue;
            }
            let occ = meta_occ(m);
            mix(u64::from(occ));
            mix(u64::from(meta_dirty(m)));
            let base = g * self.set_stride;
            // Occupied ways LRU→MRU: the logical recency order.
            let mut order = self.lru[g];
            for _ in 0..self.set_stride {
                let w = (order & 0xF) as usize;
                order >>= 4;
                if (occ >> w) & 1 != 0 {
                    mix(w as u64);
                    mix(u64::from(self.tags[base + w]));
                }
            }
        }
        h
    }
}

impl Drop for SharedCache {
    fn drop(&mut self) {
        if let Some(pool) = self.pool.take() {
            pool.release(Planes {
                tags: std::mem::take(&mut self.tags),
                lru: std::mem::take(&mut self.lru),
                meta: std::mem::take(&mut self.meta),
                gen: self.cur_gen,
                tape: std::mem::take(&mut self.scratch),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use camdn_common::config::DramConfig;
    use camdn_common::SimRng;

    fn setup() -> (SharedCache, DramModel) {
        let cfg = CacheConfig::paper_default();
        (
            SharedCache::new(&cfg),
            DramModel::new(DramConfig::paper_default(), cfg.line_bytes),
        )
    }

    #[test]
    fn miss_then_hit() {
        let (mut c, mut d) = setup();
        let a = PhysAddr(0x1000);
        let (_, hit1) = c.access_line(0, a, false, c.full_way_mask(), &mut d);
        let (_, hit2) = c.access_line(100, a, false, c.full_way_mask(), &mut d);
        assert!(!hit1);
        assert!(hit2);
        assert_eq!(c.stats().hits.get(), 1);
        assert_eq!(c.stats().misses.get(), 1);
    }

    #[test]
    fn hits_are_faster_than_misses() {
        let (mut c, mut d) = setup();
        let a = PhysAddr(0x2000);
        let (t_miss, _) = c.access_line(0, a, false, c.full_way_mask(), &mut d);
        let base = 1_000_000;
        let (t_hit, _) = c.access_line(base, a, false, c.full_way_mask(), &mut d);
        assert!(t_hit - base < t_miss, "{} !< {}", t_hit - base, t_miss);
    }

    #[test]
    fn lru_evicts_oldest() {
        let (mut c, mut d) = setup();
        let mask = c.full_way_mask();
        let geom = *c.geometry();
        // 17 lines mapping to the same (slice,set): stride = slices * sets * line.
        let stride = u64::from(geom.slices) * u64::from(geom.sets_per_slice) * geom.line_bytes;
        for i in 0..17u64 {
            c.access_line(i, PhysAddr(i * stride), false, mask, &mut d);
        }
        // Line 0 (oldest) must be gone; line 1..16 still present.
        assert!(!c.probe(PhysAddr(0), mask));
        assert!(c.probe(PhysAddr(stride), mask));
        assert!(c.probe(PhysAddr(16 * stride), mask));
    }

    #[test]
    fn way_mask_restricts_visibility() {
        let (mut c, mut d) = setup();
        let a = PhysAddr(0x40);
        let low_mask = 0x000F; // ways 0-3
        let high_mask = 0xFFF0; // ways 4-15
        c.access_line(0, a, false, low_mask, &mut d);
        assert!(c.probe(a, low_mask));
        assert!(
            !c.probe(a, high_mask),
            "line must not be visible in other ways"
        );
    }

    #[test]
    fn dirty_eviction_writes_back() {
        let (mut c, mut d) = setup();
        let geom = *c.geometry();
        let mask = 0x0001; // single way -> immediate conflict
        let stride = u64::from(geom.slices) * u64::from(geom.sets_per_slice) * geom.line_bytes;
        c.access_line(0, PhysAddr(0), true, mask, &mut d); // dirty
        let wr_before = d.stats().write_bytes.get();
        c.access_line(10, PhysAddr(stride), false, mask, &mut d); // evicts
        assert_eq!(c.stats().writebacks.get(), 1);
        assert!(d.stats().write_bytes.get() > wr_before);
    }

    #[test]
    fn range_access_counts_lines() {
        let (mut c, mut d) = setup();
        let out = c.access_range(0, PhysAddr(0), 64 * 10, false, c.full_way_mask(), &mut d);
        assert_eq!(out.hits + out.misses, 10);
        assert_eq!(out.misses, 10);
        let out2 = c.access_range(
            out.finish,
            PhysAddr(0),
            64 * 10,
            false,
            c.full_way_mask(),
            &mut d,
        );
        assert_eq!(out2.hits, 10);
        assert!(
            out2.finish - out.finish < out.finish,
            "reuse must be faster"
        );
    }

    #[test]
    fn unaligned_range_touches_both_boundary_lines() {
        let (mut c, mut d) = setup();
        // 2 bytes straddling a line boundary -> 2 lines.
        let out = c.access_range(0, PhysAddr(63), 2, false, c.full_way_mask(), &mut d);
        assert_eq!(out.hits + out.misses, 2);
    }

    #[test]
    fn partition_flushes_npu_ways() {
        let (mut c, mut d) = setup();
        let a = PhysAddr(0x40);
        // Fill with full mask; line lands in some way.
        c.access_line(0, a, true, c.full_way_mask(), &mut d);
        let mask = c.partition_ways(12, 100, &mut d);
        assert_eq!(mask.count_ones(), 12);
        assert_eq!(c.general_way_mask().count_ones(), 4);
        // The line may or may not survive depending on its way, but it must
        // never be visible through the NPU mask after the flush.
        assert!(!c.probe(a, mask));
    }

    #[test]
    fn zero_byte_range_is_noop() {
        let (mut c, mut d) = setup();
        let out = c.access_range(5, PhysAddr(0), 0, false, c.full_way_mask(), &mut d);
        assert_eq!(out.finish, 5);
        assert_eq!(out.hits + out.misses, 0);
    }

    #[test]
    fn invalidate_all_is_a_generation_bump() {
        let (mut c, mut d) = setup();
        let mask = c.full_way_mask();
        let fresh_print = SharedCache::new(&CacheConfig::paper_default()).state_fingerprint();
        for i in 0..64u64 {
            c.access_line(i, PhysAddr(i * 64), i % 2 == 0, mask, &mut d);
        }
        assert!(c.probe(PhysAddr(0), mask));
        let gen_before = c.cur_gen;
        c.invalidate_all();
        assert_eq!(c.cur_gen, gen_before + 1, "O(1) generation bump");
        for i in 0..64u64 {
            assert!(!c.probe(PhysAddr(i * 64), mask), "line {i} must be gone");
        }
        // Logically empty — the canonical fingerprint ignores the stale
        // lanes, so the flushed cache digests like a truly fresh one.
        assert_eq!(fresh_print, c.state_fingerprint());
        // Re-access: everything misses again, with no phantom writebacks
        // from the discarded dirty lines.
        let wb_before = c.stats().writebacks.get();
        let out = c.access_range(0, PhysAddr(0), 64 * 64, false, mask, &mut d);
        assert_eq!(out.misses, 64);
        assert_eq!(c.stats().writebacks.get(), wb_before);
    }

    // --- batched vs reference differential ---------------------------

    fn assert_twin_state(
        fast: &(SharedCache, DramModel),
        refm: &(SharedCache, DramModel),
        ctx: &str,
    ) {
        assert_eq!(
            fast.0.state_fingerprint(),
            refm.0.state_fingerprint(),
            "tag state diverged: {ctx}"
        );
        assert_eq!(
            fast.1.state_fingerprint(),
            refm.1.state_fingerprint(),
            "dram state diverged: {ctx}"
        );
        let (fs, rs) = (fast.0.stats(), refm.0.stats());
        assert_eq!(fs.hits.get(), rs.hits.get(), "{ctx}");
        assert_eq!(fs.misses.get(), rs.misses.get(), "{ctx}");
        assert_eq!(fs.writebacks.get(), rs.writebacks.get(), "{ctx}");
        assert_eq!(fs.fills.get(), rs.fills.get(), "{ctx}");
        let (fd, rd) = (fast.1.stats(), refm.1.stats());
        assert_eq!(fd.total_bytes(), rd.total_bytes(), "{ctx}");
        assert_eq!(fd.requests.get(), rd.requests.get(), "{ctx}");
        assert_eq!(fd.row_hits.get(), rd.row_hits.get(), "{ctx}");
        assert_eq!(fd.row_misses.get(), rd.row_misses.get(), "{ctx}");
    }

    /// Valid cache geometries of very different shapes, plus matching
    /// DRAM configs, for the property sweep.
    fn sweep_configs() -> Vec<(CacheConfig, DramConfig)> {
        let paper = CacheConfig::paper_default();
        vec![
            (paper, DramConfig::paper_default()),
            (
                CacheConfig {
                    total_bytes: 256 * 1024,
                    ways: 4,
                    npu_ways: 0,
                    slices: 2,
                    line_bytes: 64,
                    page_bytes: 8 * 1024,
                    ..paper
                },
                DramConfig {
                    channels: 2,
                    banks_per_channel: 4,
                    row_bytes: 512,
                    bytes_per_cycle: 32.0,
                    row_miss_penalty: 25,
                    cas_latency: 11,
                },
            ),
            (
                CacheConfig {
                    total_bytes: 1024 * 1024,
                    ways: 8,
                    npu_ways: 0,
                    slices: 4,
                    line_bytes: 32,
                    page_bytes: 16 * 1024,
                    ..paper
                },
                DramConfig {
                    channels: 1,
                    banks_per_channel: 2,
                    row_bytes: 256,
                    bytes_per_cycle: 7.3,
                    row_miss_penalty: 3,
                    cas_latency: 160, // gates really bind at this CAS
                },
            ),
        ]
    }

    #[test]
    fn property_sweep_batched_equals_reference() {
        // Property-style sweep: random (geometry, range, way-mask)
        // triples; the batched path must match the per-line reference on
        // outcome, statistics, tag state and DRAM state after every op.
        for (gi, (ccfg, dcfg)) in sweep_configs().into_iter().enumerate() {
            let mut rng = SimRng::new(0x5EED ^ gi as u64);
            let mut fast = (
                SharedCache::new(&ccfg),
                DramModel::new(dcfg, ccfg.line_bytes),
            );
            let mut refm = (
                SharedCache::new(&ccfg),
                DramModel::new(dcfg, ccfg.line_bytes),
            );
            refm.0.set_reference_model(true);
            refm.1.set_reference_model(true);
            let ways = ccfg.ways;
            // Footprint chosen to alias heavily (a few times the cache).
            let footprint = ccfg.total_bytes * 3;
            let mut now = 0;
            for op in 0..150 {
                let mask = loop {
                    let m = rng.next_below(1 << ways) as u16;
                    if m != 0 {
                        break m;
                    }
                };
                let base = PhysAddr(rng.next_below(footprint));
                // Mostly modest transfers, occasionally far beyond the
                // MSHR window to exercise the gated regime.
                let bytes = if rng.next_below(5) == 0 {
                    (200 + rng.next_below(400)) * ccfg.line_bytes
                } else {
                    rng.next_below(64 * ccfg.line_bytes)
                };
                let is_write = rng.next_below(3) == 0;
                now += rng.next_below(1000);
                let a = fast
                    .0
                    .access_range(now, base, bytes, is_write, mask, &mut fast.1);
                let b = refm
                    .0
                    .access_range(now, base, bytes, is_write, mask, &mut refm.1);
                assert_eq!(a, b, "outcome diverged: geom {gi}, op {op}");
                assert_twin_state(&fast, &refm, &format!("geom {gi}, op {op}"));
            }
        }
    }

    #[test]
    fn streaming_cold_tensor_matches_reference() {
        // The motivating case: a cold multi-MB tensor streamed through
        // the paper cache — one giant miss run, far over the MSHR window.
        let (mut cf, mut df) = setup();
        let (mut cr, mut dr) = setup();
        cr.set_reference_model(true);
        dr.set_reference_model(true);
        let bytes = 3_500_000; // ~3.5 MB, > 54k lines
        let a = cf.access_range(7, PhysAddr(0), bytes, false, cf.full_way_mask(), &mut df);
        let b = cr.access_range(7, PhysAddr(0), bytes, false, cr.full_way_mask(), &mut dr);
        assert_eq!(a, b);
        assert_eq!(a.misses, bytes.div_ceil(64));
        assert_twin_state(&(cf, df), &(cr, dr), "cold stream");
    }

    // --- SoA lanes vs scalar packed-meta oracle ----------------------

    /// The pre-SoA scalar model, verbatim: per-way `u64` tags with an
    /// `u64::MAX` invalid sentinel and packed
    /// `stamp << 2 | dirty << 1 | valid` meta words, scanned way by
    /// way. Used as an independent oracle for the lane-parallel path.
    struct ScalarOracle {
        tags: Vec<u64>,
        meta: Vec<u64>,
        stride: usize,
        group_mask: u64,
        clock: u64,
    }

    impl ScalarOracle {
        fn new(cfg: &CacheConfig) -> Self {
            let geom = CacheGeometry::new(cfg);
            let groups = geom.slices as usize * geom.sets_per_slice as usize;
            let ways = geom.ways as usize;
            ScalarOracle {
                tags: vec![u64::MAX; groups * ways],
                meta: vec![0; groups * ways],
                stride: ways,
                group_mask: groups as u64 - 1,
                clock: 0,
            }
        }

        /// `(hit, dirty_victim_line)` for one line touch.
        fn touch(&mut self, line: u64, is_write: bool, way_mask: u16) -> (bool, Option<u64>) {
            self.clock += 1;
            let base = (line & self.group_mask) as usize * self.stride;
            let wr = (is_write as u64) << 1;
            for w in 0..self.stride {
                if self.tags[base + w] == line && way_mask & (1 << w) != 0 {
                    self.meta[base + w] = (self.clock << 2) | (self.meta[base + w] & 2) | wr | 1;
                    return (true, None);
                }
            }
            let mut vw = 0usize;
            let mut vm = u64::MAX;
            for w in 0..self.stride {
                if way_mask & (1 << w) != 0 && self.meta[base + w] < vm {
                    vm = self.meta[base + w];
                    vw = w;
                }
            }
            let wb = if vm & 3 == 3 {
                Some(self.tags[base + vw])
            } else {
                None
            };
            self.tags[base + vw] = line;
            self.meta[base + vw] = (self.clock << 2) | wr | 1;
            (false, wb)
        }
    }

    #[test]
    fn property_soa_lanes_match_scalar_oracle() {
        // Differential property test over random (geometry, range,
        // way-mask) triples: the vectorized tag pass must match the
        // scalar packed-meta walk event for event — hits, victim
        // choices, writebacks, and the full LRU age ordering. Ways
        // counts include 1 (the lane tail) and 2 (a single chunk);
        // masks include the full mask, single ways, and random subsets.
        let paper = CacheConfig::paper_default();
        let configs = [
            paper, // 16 ways: full-width lanes
            CacheConfig {
                total_bytes: 128 * 1024,
                ways: 2,
                npu_ways: 0,
                slices: 2,
                line_bytes: 64,
                page_bytes: 8 * 1024,
                ..paper
            },
            CacheConfig {
                total_bytes: 64 * 1024,
                ways: 1, // direct-mapped: scalar tail lane, mask = 1 only
                npu_ways: 0,
                slices: 1,
                line_bytes: 64,
                page_bytes: 8 * 1024,
                ..paper
            },
        ];
        for (gi, ccfg) in configs.into_iter().enumerate() {
            let mut rng = SimRng::new(0xACE5 ^ gi as u64);
            let mut soa = SharedCache::new(&ccfg);
            let mut oracle = ScalarOracle::new(&ccfg);
            let full = soa.full_way_mask();
            let footprint_lines = (ccfg.total_bytes / ccfg.line_bytes) * 3;
            for op in 0..40 {
                let mask = match op % 4 {
                    0 => full,
                    1 => 1 << rng.next_below(u64::from(ccfg.ways)),
                    _ => loop {
                        let m = rng.next_below(1 << ccfg.ways) as u16;
                        if m != 0 {
                            break m;
                        }
                    },
                };
                let start = rng.next_below(footprint_lines);
                let len = 1 + rng.next_below(300);
                let is_write = rng.next_below(3) == 0;
                for line in start..start + len {
                    let (oh, owb) = oracle.touch(line, is_write, mask);
                    let (sh, swb) = match soa.touch(line, is_write, u32::from(mask)) {
                        Touch::Hit => (true, None),
                        Touch::Miss(wb) => (false, wb),
                    };
                    assert_eq!(oh, sh, "hit diverged: geom {gi} op {op} line {line}");
                    assert_eq!(owb, swb, "victim diverged: geom {gi} op {op} line {line}");
                }
                // Full LRU state sweep: every (way → tag, valid, dirty)
                // must agree, and the order word's ranking of the
                // occupied ways must equal the oracle's stamp order.
                for g in 0..=soa.group_mask as usize {
                    let sm = soa.meta[g];
                    let live = meta_gen(sm) == soa.cur_gen;
                    for w in 0..soa.set_stride {
                        let idx = g * soa.set_stride + w;
                        let valid = live && meta_occ(sm) & (1 << w) != 0;
                        assert_eq!(valid, oracle.meta[idx] & 1 == 1, "geom {gi} g={g} w={w}");
                        if !valid {
                            continue;
                        }
                        let line = (u64::from(soa.tags[idx]) << soa.group_bits) | g as u64;
                        assert_eq!(line, oracle.tags[idx], "tag: geom {gi} g={g} w={w}");
                        let dirty = meta_dirty(sm) & (1 << w) != 0;
                        assert_eq!(dirty, oracle.meta[idx] & 2 != 0, "geom {gi} g={g} w={w}");
                    }
                    if !live {
                        continue;
                    }
                    let base = g * soa.set_stride;
                    let by_rank: Vec<usize> = {
                        let mut o = soa.lru[g];
                        (0..soa.set_stride)
                            .map(|_| {
                                let w = (o & 0xF) as usize;
                                o >>= 4;
                                w
                            })
                            .filter(|&w| meta_occ(sm) & (1 << w) != 0)
                            .collect()
                    };
                    let by_stamp: Vec<usize> = {
                        let mut v: Vec<usize> = (0..soa.set_stride)
                            .filter(|&w| oracle.meta[base + w] & 1 == 1)
                            .collect();
                        v.sort_by_key(|&w| oracle.meta[base + w] >> 2);
                        v
                    };
                    assert_eq!(by_rank, by_stamp, "recency order: geom {gi} g={g}");
                }
            }
        }
    }

    #[test]
    fn epoch_hook_is_behavior_neutral() {
        // The epoch hook must never change simulated state — and its
        // debug-build invariant sweep must accept a cache in any phase
        // of mixed traffic (partial sets, partitioned masks, flushes).
        let cfg = CacheConfig {
            total_bytes: 256 * 1024,
            ways: 4,
            npu_ways: 0,
            slices: 2,
            line_bytes: 64,
            page_bytes: 8 * 1024,
            ..CacheConfig::paper_default()
        };
        let mut hooked = SharedCache::new(&cfg);
        let mut plain = SharedCache::new(&cfg);
        let mut dh = DramModel::new(DramConfig::paper_default(), cfg.line_bytes);
        let mut dp = DramModel::new(DramConfig::paper_default(), cfg.line_bytes);
        let mut rng = SimRng::new(42);
        let footprint = cfg.total_bytes * 2;
        let drive = |c: &mut SharedCache, d: &mut DramModel, rng: &mut SimRng| {
            let base = PhysAddr(rng.next_below(footprint));
            let bytes = 1 + rng.next_below(96 * 64);
            let wr = rng.next_below(4) == 0;
            c.access_range(0, base, bytes, wr, 0x0F, d)
        };
        for op in 0..60 {
            let a = drive(&mut hooked, &mut dh, &mut rng.clone());
            let b = drive(&mut plain, &mut dp, &mut rng);
            assert_eq!(a, b);
            hooked.on_epoch();
            if op == 30 {
                hooked.invalidate_all();
                plain.invalidate_all();
                hooked.on_epoch();
            }
            assert_eq!(
                hooked.state_fingerprint(),
                plain.state_fingerprint(),
                "epoch hook changed state: op {op}"
            );
        }
        assert_eq!(hooked.stats().hits.get(), plain.stats().hits.get());
        assert_eq!(
            hooked.stats().writebacks.get(),
            plain.stats().writebacks.get()
        );
    }

    #[test]
    fn pooled_planes_reuse_is_invisible() {
        let cfg = CacheConfig::paper_default();
        let pool = Arc::new(CacheScratchPool::new());
        let mask;
        {
            let mut c = SharedCache::with_scratch(&cfg, Arc::clone(&pool));
            let mut d = DramModel::new(DramConfig::paper_default(), cfg.line_bytes);
            mask = c.full_way_mask();
            // Leave dirty lines and a used event tape behind.
            c.access_range(0, PhysAddr(0), 1 << 20, true, mask, &mut d);
            assert_eq!(pool.idle(), 0);
        }
        assert_eq!(pool.idle(), 1, "planes parked on drop");
        // A pooled rebuild must be indistinguishable from a fresh cache:
        // same fingerprint, and an identical op sequence evolves both
        // identically (including no phantom hits/writebacks from the
        // garbage the reused planes still hold).
        let mut pooled = SharedCache::with_scratch(&cfg, Arc::clone(&pool));
        assert_eq!(pool.idle(), 0, "planes drawn from the pool");
        let mut fresh = SharedCache::new(&cfg);
        assert_eq!(pooled.state_fingerprint(), fresh.state_fingerprint());
        let mut dp = DramModel::new(DramConfig::paper_default(), cfg.line_bytes);
        let mut df = DramModel::new(DramConfig::paper_default(), cfg.line_bytes);
        let mut rng = SimRng::new(7);
        for _ in 0..60 {
            let base = PhysAddr(rng.next_below(48 * 1024 * 1024));
            let bytes = rng.next_below(128 * 64);
            let wr = rng.next_below(3) == 0;
            let a = pooled.access_range(0, base, bytes, wr, mask, &mut dp);
            let b = fresh.access_range(0, base, bytes, wr, mask, &mut df);
            assert_eq!(a, b);
        }
        assert_eq!(pooled.state_fingerprint(), fresh.state_fingerprint());
        assert_eq!(pooled.stats().hits.get(), fresh.stats().hits.get());
        drop(pooled);
        assert_eq!(pool.idle(), 1);
    }

    #[test]
    fn multicast_range_charges_replicas_without_tag_churn() {
        let (mut c, mut d) = setup();
        let mask = c.full_way_mask();
        let bytes = 64 * 256; // 256 lines
        let solo = {
            let (mut c2, mut d2) = setup();
            c2.access_range_multicast(0, PhysAddr(0), bytes, false, mask, &mut d2, 1)
        };
        let grouped = c.access_range_multicast(0, PhysAddr(0), bytes, false, mask, &mut d, 4);
        // Replicas hit: 3 × 256 extra hits, no extra misses or traffic.
        assert_eq!(grouped.misses, solo.misses);
        assert_eq!(grouped.hits, solo.hits + 3 * 256);
        assert_eq!(c.stats().hits.get(), 3 * 256);
        assert_eq!(d.stats().total_bytes(), 256 * 64);
        // Replicas serialize on the cache port but never re-walk DRAM:
        // the group finish is the solo finish or the port-limited bound.
        let port = (256f64 / 8.0).ceil() as Cycle;
        assert_eq!(grouped.finish, solo.finish.max(30 + 4 * port));
        assert!(grouped.finish >= solo.finish);
    }

    #[test]
    fn multicast_over_capacity_charges_replica_refetches() {
        // A grouped fetch larger than the allowed ways' capacity
        // self-evicts its head: replicas only hit the resident tail and
        // re-fetch the evicted head from DRAM (not free hits).
        let (mut c, mut d) = setup();
        let mask = 0x0001u16; // one way: 16384-line capacity (1 MiB)
        let lines = 32768u64; // 2 MiB range, twice the capacity
        let out = c.access_range_multicast(0, PhysAddr(0), lines * 64, false, mask, &mut d, 2);
        assert_eq!(out.misses, lines + 16384, "evicted head re-misses once");
        assert_eq!(out.hits, 16384, "only the resident tail multicast-hits");
        assert_eq!(c.stats().hits.get(), 16384);
        assert_eq!(
            d.stats().read_bytes.get(),
            (lines + 16384) * 64,
            "replica re-fetch traffic must reach DRAM"
        );
    }

    #[test]
    fn multicast_group_fetch_cycles_are_pinned() {
        // Regression pin for the thundering-herd fix: exact cycle count
        // of a 4-NPU group fetch of a cold 16 KiB weight tile on the
        // paper SoC. One walk fills 256 lines; 3 replicas are charged
        // 32 port cycles each on top of the 30-cycle hit latency.
        let (mut c, mut d) = setup();
        let mask = c.full_way_mask();
        let out = c.access_range_multicast(0, PhysAddr(0), 64 * 256, false, mask, &mut d, 4);
        let solo_finish = {
            let (mut c2, mut d2) = setup();
            c2.access_range(0, PhysAddr(0), 64 * 256, false, mask, &mut d2)
                .finish
        };
        assert_eq!(out.finish, solo_finish.max(30 + 4 * 32));
        assert_eq!(out.finish, 220, "pinned group-fetch finish changed");
    }
}
