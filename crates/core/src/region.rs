//! Installing a mapping candidate's cache regions: page acquisition,
//! NEC ownership and CPT programming, done at layer (or block-head)
//! boundaries — the "modify CPT" step of Fig. 6.

use crate::alloc::{AllocError, PageAllocator};
use camdn_cache::{Nec, NecError, TaskId};
use camdn_mapper::MappingCandidate;
use camdn_npu::cpt::CptError;
use camdn_npu::NpuCore;

/// Errors when installing or tearing down a region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegionError {
    /// The page allocator could not supply pages.
    Alloc(AllocError),
    /// NEC ownership violation.
    Nec(NecError),
    /// CPT programming fault.
    Cpt(CptError),
}

impl std::fmt::Display for RegionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegionError::Alloc(e) => write!(f, "page allocation: {e}"),
            RegionError::Nec(e) => write!(f, "nec: {e}"),
            RegionError::Cpt(e) => write!(f, "cpt: {e}"),
        }
    }
}

impl std::error::Error for RegionError {}

impl From<AllocError> for RegionError {
    fn from(e: AllocError) -> Self {
        RegionError::Alloc(e)
    }
}
impl From<NecError> for RegionError {
    fn from(e: NecError) -> Self {
        RegionError::Nec(e)
    }
}
impl From<CptError> for RegionError {
    fn from(e: CptError) -> Self {
        RegionError::Cpt(e)
    }
}

/// A live model-exclusive region: the pages granted to one task for one
/// candidate, with the CPT mappings installed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionGrant {
    /// The owning task.
    pub task: TaskId,
    /// Physical cache pages granted, in vcpn order.
    pub pages: Vec<u32>,
    /// Virtual page numbers the pages were mapped at.
    pub vcpns: Vec<u32>,
}

impl RegionGrant {
    /// Pages held by this grant.
    pub fn page_count(&self) -> u32 {
        self.pages.len() as u32
    }
}

/// Acquires `candidate.pneed` pages for `task`, claims them in the NEC
/// and programs the NPU's CPT so the candidate's cache map becomes
/// addressable.
///
/// Virtual page numbers are assigned densely from 0 in cache-map order,
/// matching the vcaddr regions the mapper laid out.
///
/// # Errors
///
/// Fails atomically: on any error all acquired pages are returned.
pub fn install_region(
    task: TaskId,
    candidate: &MappingCandidate,
    alloc: &mut PageAllocator,
    nec: &mut Nec,
    npu: &mut NpuCore,
) -> Result<RegionGrant, RegionError> {
    let page_bytes = npu.cpt().page_bytes();
    let n = candidate.pneed;
    let pages = alloc.acquire(task, n)?;

    // Determine the vcpns the cache map occupies. An LBM block-head
    // grant reserves the whole block's peak demand, which exceeds the
    // head layer's own regions: pad with the consecutive vcpns the later
    // intermediates of the block will occupy.
    let mut vcpns: Vec<u32> = Vec::with_capacity(n as usize);
    for entry in &candidate.cache_map {
        if entry.cached_bytes == 0 {
            continue;
        }
        let first = entry.vcaddr.vcpn(page_bytes) as u32;
        let count = entry.cached_bytes.div_ceil(page_bytes) as u32;
        vcpns.extend(first..first + count);
    }
    vcpns.sort_unstable();
    vcpns.dedup();
    let mut next = vcpns.last().map(|v| v + 1).unwrap_or(0);
    while (vcpns.len() as u32) < n {
        vcpns.push(next);
        next += 1;
    }
    debug_assert_eq!(vcpns.len(), n as usize, "cache map pages must equal pneed");

    // Claim + map; roll back on failure.
    let mut installed = 0usize;
    let result: Result<(), RegionError> = (|| {
        for (i, (&pcpn, &vcpn)) in pages.iter().zip(vcpns.iter()).enumerate() {
            nec.claim_page(task, pcpn)?;
            npu.cpt_mut().map(vcpn, pcpn)?;
            installed = i + 1;
        }
        Ok(())
    })();

    match result {
        Ok(()) => Ok(RegionGrant { task, pages, vcpns }),
        Err(e) => {
            for (&pcpn, &vcpn) in pages.iter().zip(vcpns.iter()).take(installed) {
                let _ = npu.cpt_mut().unmap(vcpn);
                let _ = nec.release_page(task, pcpn);
            }
            alloc
                .release(task, &pages)
                // camdn-lint: allow(panic-in-lib, reason = "rollback of pages this function just reserved; a failure means allocator bookkeeping is already corrupt")
                .expect("rollback release must succeed");
            Err(e)
        }
    }
}

/// Tears a region down: unmaps the CPT entries, releases NEC ownership
/// and returns the pages to the allocator.
///
/// # Errors
///
/// Propagates the first NEC/CPT/allocator inconsistency (which indicates
/// a runtime invariant violation).
pub fn teardown_region(
    grant: &RegionGrant,
    alloc: &mut PageAllocator,
    nec: &mut Nec,
    npu: &mut NpuCore,
) -> Result<(), RegionError> {
    for (&pcpn, &vcpn) in grant.pages.iter().zip(grant.vcpns.iter()) {
        npu.cpt_mut().unmap(vcpn)?;
        nec.release_page(grant.task, pcpn)?;
    }
    alloc.release(grant.task, &grant.pages)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use camdn_common::config::{CacheConfig, NpuConfig};
    use camdn_mapper::{map_layer_lwm, MapperConfig};
    use camdn_models::{Layer, LoopNest, OpKind};

    fn setup() -> (PageAllocator, Nec, NpuCore, MappingCandidate) {
        let cache = CacheConfig::paper_default();
        let nec = Nec::new(&cache);
        let alloc = PageAllocator::new(nec.first_pcpn(), nec.npu_pages());
        let npu = NpuCore::new(0, NpuConfig::paper_default(), 512, cache.page_bytes);
        // A candidate that caches something.
        let layer = Layer::new("fc", OpKind::Linear, LoopNest::matmul(4096, 1024, 1024));
        let cand = map_layer_lwm(&layer, &MapperConfig::paper_default(), 1 << 20);
        (alloc, nec, npu, cand)
    }

    #[test]
    fn install_then_teardown_restores_everything() {
        let (mut alloc, mut nec, mut npu, cand) = setup();
        assert!(cand.pneed > 0, "test needs a caching candidate");
        let before = alloc.idle_pages();
        let grant = install_region(7, &cand, &mut alloc, &mut nec, &mut npu).unwrap();
        assert_eq!(grant.page_count(), cand.pneed);
        assert_eq!(alloc.idle_pages(), before - cand.pneed);
        assert_eq!(nec.claimed_pages(), cand.pneed);
        assert_eq!(npu.cpt().mapped_count(), cand.pneed);
        teardown_region(&grant, &mut alloc, &mut nec, &mut npu).unwrap();
        assert_eq!(alloc.idle_pages(), before);
        assert_eq!(nec.claimed_pages(), 0);
        assert_eq!(npu.cpt().mapped_count(), 0);
    }

    #[test]
    fn translation_reaches_granted_pages() {
        let (mut alloc, mut nec, mut npu, cand) = setup();
        let grant = install_region(3, &cand, &mut alloc, &mut nec, &mut npu).unwrap();
        // Every cached cache-map entry must translate to a granted page.
        for e in cand.cache_map.iter().filter(|e| e.cached_bytes > 0) {
            let (pcpn, _) = npu.cpt().translate(e.vcaddr).unwrap();
            assert!(grant.pages.contains(&pcpn));
            assert_eq!(nec.owner_of(pcpn), Some(3));
        }
        teardown_region(&grant, &mut alloc, &mut nec, &mut npu).unwrap();
    }

    #[test]
    fn out_of_pages_is_clean() {
        let (_, mut nec, mut npu, cand) = setup();
        // Allocator with too few pages.
        let mut tiny = PageAllocator::new(nec.first_pcpn(), 1);
        let before_claims = nec.claimed_pages();
        let err = install_region(1, &cand, &mut tiny, &mut nec, &mut npu).unwrap_err();
        assert!(matches!(err, RegionError::Alloc(_)));
        assert_eq!(tiny.idle_pages(), 1);
        assert_eq!(nec.claimed_pages(), before_claims);
        assert_eq!(npu.cpt().mapped_count(), 0);
    }

    #[test]
    fn two_tasks_get_disjoint_regions() {
        let (mut alloc, mut nec, mut npu, cand) = setup();
        let mut npu2 = NpuCore::new(1, NpuConfig::paper_default(), 512, 32 * 1024);
        let g1 = install_region(0, &cand, &mut alloc, &mut nec, &mut npu).unwrap();
        let g2 = install_region(1, &cand, &mut alloc, &mut nec, &mut npu2).unwrap();
        for p in &g1.pages {
            assert!(!g2.pages.contains(p), "page {p} double-granted");
        }
        teardown_region(&g1, &mut alloc, &mut nec, &mut npu).unwrap();
        teardown_region(&g2, &mut alloc, &mut nec, &mut npu2).unwrap();
    }
}
