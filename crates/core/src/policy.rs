//! Static cache policy for the CaMDN(HW-only) configuration.
//!
//! The paper's ablation point "CaMDN(HW-only) equally allocates cache
//! capacity among NPUs without dynamic cache scheduling": every task gets
//! a fixed page quota (subspace / tasks) and each layer simply uses the
//! best LWM candidate that fits the quota. Layer-block mapping is part
//! of the *scheduling* method (enabled by Algorithm 1's prediction), so
//! HW-only runs without it — which is exactly why CaMDN(Full) pulls
//! ahead on intermediate-heavy models (Fig. 7, Section IV-B1).

use crate::dynalloc::{CandidateRef, Decision};
use camdn_mapper::Mct;
use serde::{Deserialize, Serialize};

/// Equal static partitioning of the NPU subspace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StaticPolicy {
    /// Fixed page quota per task.
    pub quota: u32,
    /// Whether the static policy may enable LBM when a whole block's
    /// peak fits the quota (off for the paper's HW-only configuration).
    pub allow_lbm: bool,
}

impl StaticPolicy {
    /// Splits `total_pages` equally among `num_tasks`.
    pub fn equal_split(total_pages: u32, num_tasks: u32) -> Self {
        StaticPolicy {
            quota: total_pages / num_tasks.max(1),
            allow_lbm: false,
        }
    }

    /// Selects the candidate for a layer under the static quota.
    ///
    /// The decision's `pneed` is the *additional* pages needed (0 for
    /// layers inside an already-granted block).
    pub fn select(&self, mct: &Mct, lbm_active: bool) -> Decision {
        if let Some(lbm) = &mct.lbm {
            if lbm_active {
                return Decision {
                    candidate: CandidateRef::Lbm,
                    pneed: if mct.block.is_head { lbm.pneed } else { 0 },
                    timeout: None,
                };
            }
            if self.allow_lbm && mct.block.is_head && mct.block.peak_pages <= self.quota {
                return Decision {
                    candidate: CandidateRef::Lbm,
                    pneed: lbm.pneed,
                    timeout: None,
                };
            }
        }
        let mut best = 0usize;
        for (i, c) in mct.lwm.iter().enumerate() {
            if c.pneed > mct.lwm[best].pneed && c.pneed <= self.quota {
                best = i;
            }
        }
        Decision {
            candidate: CandidateRef::Lwm(best),
            pneed: mct.lwm[best].pneed,
            timeout: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use camdn_mapper::{map_model, MapperConfig};
    use camdn_models::zoo;

    #[test]
    fn equal_split_math() {
        let p = StaticPolicy::equal_split(384, 16);
        assert_eq!(p.quota, 24);
        assert_eq!(StaticPolicy::equal_split(384, 0).quota, 384);
    }

    #[test]
    fn quota_bounds_selection() {
        let mapping = map_model(&zoo::resnet50(), &MapperConfig::paper_default());
        let p = StaticPolicy::equal_split(384, 16);
        for mct in &mapping.mcts {
            let dec = p.select(mct, false);
            assert!(dec.pneed <= p.quota.max(mct.block.peak_pages));
            if let CandidateRef::Lwm(i) = dec.candidate {
                assert!(mct.lwm[i].pneed <= p.quota);
            }
        }
    }

    #[test]
    fn bigger_quota_never_picks_smaller_candidate() {
        let mapping = map_model(&zoo::vit_base16(), &MapperConfig::paper_default());
        let small = StaticPolicy {
            quota: 8,
            allow_lbm: false,
        };
        let big = StaticPolicy {
            quota: 384,
            allow_lbm: false,
        };
        for mct in &mapping.mcts {
            let a = small.select(mct, false);
            let b = big.select(mct, false);
            if let (CandidateRef::Lwm(i), CandidateRef::Lwm(j)) = (a.candidate, b.candidate) {
                assert!(mct.lwm[j].pneed >= mct.lwm[i].pneed);
            }
        }
    }

    #[test]
    fn lbm_static_enable_requires_flag_and_peak_fit() {
        let mapping = map_model(&zoo::mobilenet_v2(), &MapperConfig::paper_default());
        let no_lbm = StaticPolicy {
            quota: 384,
            allow_lbm: false,
        };
        let tight = StaticPolicy {
            quota: 2,
            allow_lbm: true,
        };
        let roomy = StaticPolicy {
            quota: 384,
            allow_lbm: true,
        };
        let mut lbm_seen = false;
        for mct in &mapping.mcts {
            assert_ne!(no_lbm.select(mct, false).candidate, CandidateRef::Lbm);
            if mct.block.is_head && mct.block.peak_pages > 2 {
                assert_ne!(tight.select(mct, false).candidate, CandidateRef::Lbm);
            }
            if mct.block.is_head && mct.lbm.is_some() {
                lbm_seen |= roomy.select(mct, false).candidate == CandidateRef::Lbm;
            }
        }
        assert!(lbm_seen, "roomy quota should enable LBM somewhere");
    }
}
