//! Algorithm 1: predict near-future shared cache usage and select a
//! mapping candidate for each layer.
//!
//! The allocator keeps three per-task state arrays — `Tnext` (predicted
//! next reallocation time), `Pnext` (pages the task is predicted to need
//! then) and `Palloc` (pages currently held) — updated at layer
//! boundaries. At the start of every layer it:
//!
//! 1. returns the LBM candidate immediately when LBM is already active
//!    for the current block (its pages were reserved at the head layer);
//! 2. at a block head, predicts the pages available within 20 % of the
//!    block's estimated runtime and enables LBM when its peak demand
//!    fits;
//! 3. otherwise selects the largest LWM candidate that fits the pages
//!    predicted available within 20 % of the layer's estimated runtime.
//!
//! The returned timeout bounds how long the task may wait for its pages;
//! on expiry the runtime degrades to the next-cheaper candidate
//! ([`DynamicAllocator::degrade`]).

use camdn_cache::TaskId;
use camdn_common::types::Cycle;
use camdn_mapper::{MappingCandidate, Mct};
use serde::{Deserialize, Serialize};

/// Which candidate of an MCT a decision refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CandidateRef {
    /// The LBM candidate.
    Lbm,
    /// The LWM candidate at this index of `mct.lwm`.
    Lwm(usize),
}

/// Outcome of Algorithm 1 for one layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Decision {
    /// Selected candidate.
    pub candidate: CandidateRef,
    /// Pages that must be newly acquired before the layer can start.
    pub pneed: u32,
    /// Absolute deadline for acquiring them (`None` = no wait needed /
    /// infinite, Algorithm 1 line 9).
    pub timeout: Option<Cycle>,
}

/// Per-task allocation state (`Tnext`, `Pnext`, `Palloc` plus LBM
/// activation).
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
struct TaskState {
    t_next: Cycle,
    p_next: u32,
    p_alloc: u32,
    /// Block id for which LBM is currently enabled, if any.
    lbm_block: Option<u32>,
    active: bool,
}

/// The dynamic cache allocation algorithm (Algorithm 1).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DynamicAllocator {
    tasks: Vec<TaskState>,
    /// Look-ahead fraction of the estimated runtime (0.2 in the paper).
    pub lookahead: f64,
}

impl DynamicAllocator {
    /// Creates the allocator for up to `num_tasks` co-located tasks.
    pub fn new(num_tasks: usize) -> Self {
        DynamicAllocator {
            tasks: vec![TaskState::default(); num_tasks],
            lookahead: 0.2,
        }
    }

    fn state(&mut self, task: TaskId) -> &mut TaskState {
        let idx = task as usize;
        if self.tasks.len() <= idx {
            self.tasks.resize_with(idx + 1, TaskState::default);
        }
        &mut self.tasks[idx]
    }

    /// `predAvailPages` (Algorithm 1 lines 1-6): idle pages plus the
    /// pages co-runners are predicted to return before `t_ahead`.
    pub fn pred_avail_pages(&self, t_ahead: Cycle, tcur: TaskId, idle_pages: u32) -> u32 {
        let mut ahead = i64::from(idle_pages);
        for (i, ti) in self.tasks.iter().enumerate() {
            if i as TaskId == tcur || !ti.active {
                continue;
            }
            if ti.t_next < t_ahead {
                ahead += i64::from(ti.p_alloc) - i64::from(ti.p_next);
            }
        }
        ahead.max(0) as u32
    }

    /// The block id `task` currently has LBM enabled for, if any.
    pub fn lbm_block(&self, task: TaskId) -> Option<u32> {
        self.tasks.get(task as usize).and_then(|t| t.lbm_block)
    }

    /// Number of task slots the allocator currently tracks.
    pub fn num_tasks(&self) -> usize {
        self.tasks.len()
    }

    /// True if LBM is currently enabled for `task` on block `block_id`.
    pub fn lbm_enabled(&self, task: TaskId, block_id: u32) -> bool {
        self.tasks
            .get(task as usize)
            .map(|t| t.lbm_block == Some(block_id))
            .unwrap_or(false)
    }

    /// Algorithm 1: select the mapping candidate for the current layer of
    /// `task`.
    pub fn select(&mut self, now: Cycle, task: TaskId, mct: &Mct, idle_pages: u32) -> Decision {
        self.state(task).active = true;
        // Lines 7-9: LBM already enabled for this block.
        if let Some(lbm) = &mct.lbm {
            if self.lbm_enabled(task, mct.block.id) {
                return Decision {
                    candidate: CandidateRef::Lbm,
                    pneed: if mct.block.is_head { lbm.pneed } else { 0 },
                    timeout: None,
                };
            }
            // Lines 10-15: head layer may enable LBM if the block's peak
            // fits the predicted availability.
            if mct.block.is_head {
                let t_ahead = now + (mct.block.block_est_cycles as f64 * self.lookahead) as Cycle;
                let p_ahead = self.pred_avail_pages(t_ahead, task, idle_pages);
                if lbm.pneed < p_ahead {
                    return Decision {
                        candidate: CandidateRef::Lbm,
                        pneed: lbm.pneed,
                        timeout: Some(t_ahead),
                    };
                }
            }
        }
        // Lines 16-22: best-fitting LWM candidate.
        let layer_est = mct.lwm[0].est_cycles;
        let t_ahead = now + (layer_est as f64 * self.lookahead) as Cycle;
        let p_ahead = self.pred_avail_pages(t_ahead, task, idle_pages);
        let mut best = 0usize;
        for (i, c) in mct.lwm.iter().enumerate() {
            if c.pneed > mct.lwm[best].pneed && c.pneed <= p_ahead {
                best = i;
            }
        }
        Decision {
            candidate: CandidateRef::Lwm(best),
            pneed: mct.lwm[best].pneed,
            timeout: Some(t_ahead),
        }
    }

    /// Timeout handling: "every time a timeout occurs, it updates the
    /// candidate to the one that requires fewer pages". Returns the
    /// next-cheaper decision (LBM degrades to the best LWM below its
    /// demand; the zero-page candidate always terminates the chain).
    pub fn degrade(&self, mct: &Mct, current_pneed: u32) -> Decision {
        degrade_decision(mct, current_pneed)
    }

    /// Marks LBM active for `task` on `block_id` (pages were granted).
    pub fn enable_lbm(&mut self, task: TaskId, block_id: u32) {
        self.state(task).lbm_block = Some(block_id);
    }

    /// Clears LBM state (block finished or abandoned).
    pub fn disable_lbm(&mut self, task: TaskId) {
        self.state(task).lbm_block = None;
    }

    /// Book-keeping at layer start/end: records the pages the task now
    /// holds, when it will next reallocate, and how many pages it is
    /// predicted to need then.
    pub fn note_alloc(&mut self, task: TaskId, p_alloc: u32, t_next: Cycle, p_next: u32) {
        let s = self.state(task);
        s.p_alloc = p_alloc;
        s.t_next = t_next;
        s.p_next = p_next;
        s.active = true;
    }

    /// Marks a task as finished (its pages no longer count as pending
    /// returns).
    pub fn note_done(&mut self, task: TaskId) {
        let s = self.state(task);
        s.active = false;
        s.p_alloc = 0;
        s.lbm_block = None;
    }

    /// Resolves a decision against an MCT.
    ///
    /// # Panics
    ///
    /// Panics if the decision does not match the MCT; prefer the
    /// fallible [`resolve_candidate`].
    pub fn resolve<'m>(&self, mct: &'m Mct, dec: &Decision) -> &'m MappingCandidate {
        // camdn-lint: allow(panic-in-lib, reason = "documented panicking convenience; resolve_candidate is the fallible variant")
        resolve_candidate(mct, dec).expect("decision does not match the MCT")
    }
}

/// Resolves a decision against an MCT, or `None` when the decision
/// refers to a candidate the MCT does not carry (an LBM decision on a
/// block without an LBM candidate, or an out-of-range LWM index).
///
/// Stateless companion of [`DynamicAllocator::resolve`], usable by any
/// scheduling policy without holding an allocator.
pub fn resolve_candidate<'m>(mct: &'m Mct, dec: &Decision) -> Option<&'m MappingCandidate> {
    match dec.candidate {
        CandidateRef::Lbm => mct.lbm.as_ref(),
        CandidateRef::Lwm(i) => mct.lwm.get(i),
    }
}

/// Returns the next-cheaper decision below `current_pneed` (LBM degrades
/// to the best LWM below its demand; the zero-page candidate always
/// terminates the chain).
///
/// Stateless companion of [`DynamicAllocator::degrade`], usable by any
/// scheduling policy without holding an allocator.
pub fn degrade_decision(mct: &Mct, current_pneed: u32) -> Decision {
    let mut best = 0usize;
    for (i, c) in mct.lwm.iter().enumerate() {
        if c.pneed < current_pneed && c.pneed > mct.lwm[best].pneed {
            best = i;
        }
    }
    // Ensure strict decrease even if lwm[0] is the only option.
    let pneed = mct.lwm[best].pneed.min(current_pneed.saturating_sub(1));
    Decision {
        candidate: CandidateRef::Lwm(best),
        pneed,
        timeout: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use camdn_mapper::{map_model, MapperConfig};
    use camdn_models::zoo;

    fn mapping() -> camdn_mapper::ModelMapping {
        map_model(&zoo::mobilenet_v2(), &MapperConfig::paper_default())
    }

    /// ViT has large matmul layers whose MCTs carry several LWM levels;
    /// MobileNet's small layers often collapse to the zero-page
    /// candidate (their wins come from LBM instead).
    fn rich_mapping() -> camdn_mapper::ModelMapping {
        map_model(&zoo::vit_base16(), &MapperConfig::paper_default())
    }

    #[test]
    fn pred_avail_counts_returning_pages() {
        let mut d = DynamicAllocator::new(3);
        // Task 1 holds 50 pages, returns at t=1000 needing 10.
        d.note_alloc(1, 50, 1000, 10);
        // Task 2 holds 30 pages, returns far in the future.
        d.note_alloc(2, 30, 1_000_000, 30);
        // Looking ahead past task 1's return: idle + (50 - 10).
        assert_eq!(d.pred_avail_pages(2000, 0, 5), 45);
        // Not far enough ahead: only idle pages.
        assert_eq!(d.pred_avail_pages(500, 0, 5), 5);
        // The task itself is excluded.
        assert_eq!(d.pred_avail_pages(2000, 1, 5), 5);
    }

    #[test]
    fn select_zero_idle_gives_zero_page_candidate() {
        let m = rich_mapping();
        let mut d = DynamicAllocator::new(1);
        // A layer with multiple candidates:
        let mct = m.mcts.iter().find(|m| m.lwm.len() > 1).unwrap();
        let dec = d.select(0, 0, mct, 0);
        assert_eq!(dec.pneed, 0);
    }

    #[test]
    fn select_prefers_larger_candidate_when_pages_available() {
        let m = rich_mapping();
        let mut d = DynamicAllocator::new(1);
        // A non-head layer falls through to LWM selection even when its
        // block has an (un-enabled) LBM candidate.
        let mct = m
            .mcts
            .iter()
            .find(|m| m.lwm.len() > 1 && !m.block.is_head)
            .unwrap();
        let rich = d.select(0, 0, mct, 384);
        let poor = d.select(0, 0, mct, 0);
        assert!(rich.pneed > poor.pneed);
    }

    #[test]
    fn head_layer_enables_lbm_when_it_fits() {
        let m = mapping();
        let mut d = DynamicAllocator::new(1);
        let mct = m
            .mcts
            .iter()
            .find(|m| m.block.is_head && m.lbm.is_some() && m.block.peak_pages > 0)
            .unwrap();
        let dec = d.select(0, 0, mct, 384);
        assert_eq!(dec.candidate, CandidateRef::Lbm);
        assert_eq!(dec.pneed, mct.lbm.as_ref().unwrap().pneed);
        assert!(dec.timeout.is_some());
    }

    #[test]
    fn enabled_lbm_returns_infinite_timeout() {
        let m = mapping();
        let mut d = DynamicAllocator::new(1);
        let mct = m
            .mcts
            .iter()
            .find(|m| !m.block.is_head && m.lbm.is_some())
            .unwrap();
        d.enable_lbm(0, mct.block.id);
        let dec = d.select(0, 0, mct, 0);
        assert_eq!(dec.candidate, CandidateRef::Lbm);
        assert_eq!(dec.pneed, 0, "interior pages were reserved at the head");
        assert_eq!(dec.timeout, None);
    }

    #[test]
    fn degrade_strictly_decreases() {
        let m = mapping();
        let mct = m.mcts.iter().max_by_key(|m| m.lwm.len()).unwrap();
        let mut pneed = mct.lwm.last().unwrap().pneed;
        let d = DynamicAllocator::new(1);
        let mut steps = 0;
        while pneed > 0 {
            let dec = d.degrade(mct, pneed);
            assert!(dec.pneed < pneed, "degrade must strictly decrease");
            pneed = dec.pneed;
            steps += 1;
            assert!(steps < 100, "degrade chain must terminate");
        }
    }

    #[test]
    fn done_tasks_stop_contributing_predictions() {
        let mut d = DynamicAllocator::new(2);
        d.note_alloc(1, 100, 10, 0);
        assert_eq!(d.pred_avail_pages(1000, 0, 0), 100);
        d.note_done(1);
        assert_eq!(d.pred_avail_pages(1000, 0, 0), 0);
    }
}
