//! Cache page allocator for the NPU subspace.
//!
//! The NPU subspace is a pool of fixed-size cache pages (32 KiB each,
//! Section III-B3). Tasks acquire pages at layer start and release them
//! when a layer (or layer block) retires. The allocator is the single
//! source of truth for occupancy; the NEC's per-page ownership is kept
//! in sync by the runtime.

use camdn_cache::TaskId;
use serde::{Deserialize, Serialize};

/// Errors from the page allocator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocError {
    /// Not enough free pages to satisfy the request.
    OutOfPages {
        /// Pages requested.
        requested: u32,
        /// Pages currently free.
        free: u32,
    },
    /// Release of a page the task does not hold.
    NotHeld {
        /// The page in question.
        pcpn: u32,
        /// The releasing task.
        task: TaskId,
    },
}

impl std::fmt::Display for AllocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AllocError::OutOfPages { requested, free } => {
                write!(f, "requested {requested} pages, only {free} free")
            }
            AllocError::NotHeld { pcpn, task } => {
                write!(f, "task {task} does not hold page {pcpn}")
            }
        }
    }
}

impl std::error::Error for AllocError {}

/// A free-list allocator over the physical cache pages of the NPU
/// subspace.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PageAllocator {
    free: Vec<u32>,
    total: u32,
    /// Pages held per task id (sparse; indexed by task id).
    held: Vec<Vec<u32>>,
}

impl PageAllocator {
    /// Creates an allocator over pages `[first_pcpn, first_pcpn + count)`.
    pub fn new(first_pcpn: u32, count: u32) -> Self {
        // Pop order: ascending pcpn (stack holds descending).
        let free: Vec<u32> = (first_pcpn..first_pcpn + count).rev().collect();
        PageAllocator {
            free,
            total: count,
            held: Vec::new(),
        }
    }

    /// Total pages managed.
    pub fn total_pages(&self) -> u32 {
        self.total
    }

    /// Currently idle pages (`idlePages()` in Algorithm 1).
    pub fn idle_pages(&self) -> u32 {
        self.free.len() as u32
    }

    /// Pages currently held by `task`.
    pub fn held_by(&self, task: TaskId) -> u32 {
        self.held
            .get(task as usize)
            .map(|v| v.len() as u32)
            .unwrap_or(0)
    }

    /// Occupancy in `[0, 1]`.
    pub fn occupancy(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            1.0 - self.free.len() as f64 / f64::from(self.total)
        }
    }

    fn slot(&mut self, task: TaskId) -> &mut Vec<u32> {
        let idx = task as usize;
        if self.held.len() <= idx {
            self.held.resize_with(idx + 1, Vec::new);
        }
        &mut self.held[idx]
    }

    /// Acquires `n` pages for `task`, returning their page numbers.
    ///
    /// # Errors
    ///
    /// [`AllocError::OutOfPages`] when fewer than `n` pages are free (no
    /// partial allocation happens).
    pub fn acquire(&mut self, task: TaskId, n: u32) -> Result<Vec<u32>, AllocError> {
        if (self.free.len() as u32) < n {
            return Err(AllocError::OutOfPages {
                requested: n,
                free: self.free.len() as u32,
            });
        }
        let at = self.free.len() - n as usize;
        let pages: Vec<u32> = self.free.split_off(at);
        self.slot(task).extend_from_slice(&pages);
        Ok(pages)
    }

    /// Releases specific pages held by `task`.
    ///
    /// # Errors
    ///
    /// [`AllocError::NotHeld`] if any page is not held by `task`; pages
    /// preceding the offending one are still released.
    pub fn release(&mut self, task: TaskId, pages: &[u32]) -> Result<(), AllocError> {
        for &p in pages {
            let held = self.slot(task);
            match held.iter().position(|&h| h == p) {
                Some(i) => {
                    held.swap_remove(i);
                    self.free.push(p);
                }
                None => return Err(AllocError::NotHeld { pcpn: p, task }),
            }
        }
        Ok(())
    }

    /// Releases everything `task` holds, returning the page numbers.
    pub fn release_all(&mut self, task: TaskId) -> Vec<u32> {
        let pages = std::mem::take(self.slot(task));
        self.free.extend_from_slice(&pages);
        pages
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_release_roundtrip() {
        let mut a = PageAllocator::new(128, 384);
        assert_eq!(a.idle_pages(), 384);
        let pages = a.acquire(0, 10).unwrap();
        assert_eq!(pages.len(), 10);
        assert_eq!(a.idle_pages(), 374);
        assert_eq!(a.held_by(0), 10);
        a.release(0, &pages).unwrap();
        assert_eq!(a.idle_pages(), 384);
        assert_eq!(a.held_by(0), 0);
    }

    #[test]
    fn no_partial_allocation() {
        let mut a = PageAllocator::new(0, 4);
        a.acquire(0, 3).unwrap();
        let err = a.acquire(1, 2).unwrap_err();
        assert_eq!(
            err,
            AllocError::OutOfPages {
                requested: 2,
                free: 1
            }
        );
        assert_eq!(a.idle_pages(), 1, "failed acquire must not leak pages");
    }

    #[test]
    fn pages_are_unique() {
        let mut a = PageAllocator::new(100, 50);
        let p1 = a.acquire(0, 25).unwrap();
        let p2 = a.acquire(1, 25).unwrap();
        let mut all: Vec<u32> = p1.iter().chain(p2.iter()).copied().collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 50);
        assert!(all.iter().all(|&p| (100..150).contains(&p)));
    }

    #[test]
    fn release_foreign_page_rejected() {
        let mut a = PageAllocator::new(0, 8);
        let mine = a.acquire(0, 2).unwrap();
        assert_eq!(
            a.release(1, &mine[..1]),
            Err(AllocError::NotHeld {
                pcpn: mine[0],
                task: 1
            })
        );
    }

    #[test]
    fn release_all_drains_task() {
        let mut a = PageAllocator::new(0, 16);
        a.acquire(3, 5).unwrap();
        a.acquire(3, 2).unwrap();
        let freed = a.release_all(3);
        assert_eq!(freed.len(), 7);
        assert_eq!(a.idle_pages(), 16);
    }

    #[test]
    fn occupancy_tracks_usage() {
        let mut a = PageAllocator::new(0, 10);
        assert_eq!(a.occupancy(), 0.0);
        a.acquire(0, 5).unwrap();
        assert!((a.occupancy() - 0.5).abs() < 1e-12);
    }
}
