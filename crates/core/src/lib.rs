//! The CaMDN co-design core (Section III of the paper).
//!
//! This crate ties the architecture to the scheduling method:
//!
//! * [`alloc`] — the cache page allocator over the NPU subspace;
//! * [`dynalloc`] — **Algorithm 1**, the dynamic cache allocation
//!   algorithm that predicts near-future cache usage and selects mapping
//!   candidates;
//! * [`policy`] — the static equal-split policy of the CaMDN(HW-only)
//!   ablation;
//! * [`region`] — installing a selected candidate: acquiring pages,
//!   claiming NEC ownership and programming the NPU's CPT.
//!
//! # Example
//!
//! ```
//! use camdn_core::dynalloc::DynamicAllocator;
//!
//! let mut alg = DynamicAllocator::new(4);
//! // Task 1 holds 50 pages and is predicted to return 40 at t=1000.
//! alg.note_alloc(1, 50, 1000, 10);
//! assert_eq!(alg.pred_avail_pages(2000, 0, 5), 45);
//! ```

#![warn(missing_docs)]
#![deny(deprecated)]

pub mod alloc;
pub mod dynalloc;
pub mod policy;
pub mod region;

pub use alloc::{AllocError, PageAllocator};
pub use dynalloc::{degrade_decision, resolve_candidate, CandidateRef, Decision, DynamicAllocator};
pub use policy::StaticPolicy;
pub use region::{install_region, teardown_region, RegionError, RegionGrant};
