//! The hardware cache page table (CPT), Section III-B3 of the paper.
//!
//! Each NPU carries a CPT that translates *virtual cache addresses*
//! (`vcaddr`) into *physical cache addresses* (`pcaddr`). The NPU
//! subspace is divided into pages of identical size (32 KiB for a 16 MiB
//! cache); the CPT maps the virtual cache page number (`vcpn`) of an
//! address to a physical cache page number (`pcpn`). With 512 entries of
//! at most 3 bytes each, the CPT costs 1.5 KiB of SRAM — the "negligible
//! overhead" quantified in Table III.

use camdn_common::types::VirtCacheAddr;
use serde::{Deserialize, Serialize};

/// Errors raised by CPT translation and mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CptError {
    /// The virtual page has no valid mapping.
    Unmapped {
        /// Virtual cache page number that faulted.
        vcpn: u32,
    },
    /// The virtual page number exceeds the table size.
    OutOfRange {
        /// Offending virtual cache page number.
        vcpn: u32,
        /// Number of entries in the table.
        entries: u32,
    },
    /// Attempt to map over an existing valid entry.
    AlreadyMapped {
        /// Offending virtual cache page number.
        vcpn: u32,
        /// The physical page it currently maps to.
        pcpn: u32,
    },
}

impl std::fmt::Display for CptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CptError::Unmapped { vcpn } => write!(f, "vcpn {vcpn} is not mapped"),
            CptError::OutOfRange { vcpn, entries } => {
                write!(f, "vcpn {vcpn} out of range (CPT has {entries} entries)")
            }
            CptError::AlreadyMapped { vcpn, pcpn } => {
                write!(f, "vcpn {vcpn} already mapped to pcpn {pcpn}")
            }
        }
    }
}

impl std::error::Error for CptError {}

/// A per-NPU hardware page table for the NPU subspace of the shared cache.
///
/// # Example
///
/// ```
/// use camdn_npu::cpt::CachePageTable;
/// use camdn_common::types::VirtCacheAddr;
///
/// let mut cpt = CachePageTable::new(512, 32 * 1024);
/// cpt.map(0, 130)?;
/// let (pcpn, off) = cpt.translate(VirtCacheAddr(100))?;
/// assert_eq!((pcpn, off), (130, 100));
/// # Ok::<(), camdn_npu::cpt::CptError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CachePageTable {
    entries: Vec<Option<u32>>,
    page_bytes: u64,
}

impl CachePageTable {
    /// Creates an empty table with `entries` slots for pages of
    /// `page_bytes` bytes.
    pub fn new(entries: u32, page_bytes: u64) -> Self {
        assert!(page_bytes.is_power_of_two(), "page size must be 2^n");
        CachePageTable {
            entries: vec![None; entries as usize],
            page_bytes,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> u32 {
        self.entries.len() as u32
    }

    /// True if the table has no entries at all (never the case in
    /// practice, but required for API completeness).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Page size in bytes.
    pub fn page_bytes(&self) -> u64 {
        self.page_bytes
    }

    /// Installs a mapping `vcpn → pcpn`.
    ///
    /// # Errors
    ///
    /// [`CptError::OutOfRange`] or [`CptError::AlreadyMapped`].
    pub fn map(&mut self, vcpn: u32, pcpn: u32) -> Result<(), CptError> {
        let entries = self.entries.len() as u32;
        let slot = self
            .entries
            .get_mut(vcpn as usize)
            .ok_or(CptError::OutOfRange { vcpn, entries })?;
        if let Some(existing) = *slot {
            return Err(CptError::AlreadyMapped {
                vcpn,
                pcpn: existing,
            });
        }
        *slot = Some(pcpn);
        Ok(())
    }

    /// Removes the mapping for `vcpn`, returning the physical page it held.
    ///
    /// # Errors
    ///
    /// [`CptError::OutOfRange`] or [`CptError::Unmapped`].
    pub fn unmap(&mut self, vcpn: u32) -> Result<u32, CptError> {
        let entries = self.entries.len() as u32;
        let slot = self
            .entries
            .get_mut(vcpn as usize)
            .ok_or(CptError::OutOfRange { vcpn, entries })?;
        slot.take().ok_or(CptError::Unmapped { vcpn })
    }

    /// Removes every mapping, returning the physical pages that were held.
    pub fn unmap_all(&mut self) -> Vec<u32> {
        self.entries.iter_mut().filter_map(|e| e.take()).collect()
    }

    /// Translates a virtual cache address to `(pcpn, page_offset)`.
    ///
    /// # Errors
    ///
    /// [`CptError::OutOfRange`] or [`CptError::Unmapped`].
    pub fn translate(&self, vcaddr: VirtCacheAddr) -> Result<(u32, u64), CptError> {
        let vcpn = vcaddr.vcpn(self.page_bytes) as u32;
        let slot = self
            .entries
            .get(vcpn as usize)
            .ok_or(CptError::OutOfRange {
                vcpn,
                entries: self.entries.len() as u32,
            })?;
        slot.map(|pcpn| (pcpn, vcaddr.page_offset(self.page_bytes)))
            .ok_or(CptError::Unmapped { vcpn })
    }

    /// Physical pages backing the byte range `[vcaddr, vcaddr + bytes)`,
    /// one entry per virtual page touched, in order.
    ///
    /// # Errors
    ///
    /// Fails on the first unmapped or out-of-range page.
    pub fn translate_range(&self, vcaddr: VirtCacheAddr, bytes: u64) -> Result<Vec<u32>, CptError> {
        if bytes == 0 {
            return Ok(Vec::new());
        }
        let first = vcaddr.vcpn(self.page_bytes);
        let last = VirtCacheAddr(vcaddr.0 + bytes - 1).vcpn(self.page_bytes);
        (first..=last)
            .map(|v| {
                self.translate(VirtCacheAddr(v * self.page_bytes))
                    .map(|(p, _)| p)
            })
            .collect()
    }

    /// Number of valid mappings.
    pub fn mapped_count(&self) -> u32 {
        self.entries.iter().filter(|e| e.is_some()).count() as u32
    }

    /// SRAM cost of this table in bytes: 3 bytes per entry (pcpn + valid
    /// bit), per Section III-B3.
    pub fn sram_bytes(&self) -> u64 {
        self.entries.len() as u64 * 3
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use camdn_common::types::KIB;

    fn cpt() -> CachePageTable {
        CachePageTable::new(512, 32 * KIB)
    }

    #[test]
    fn paper_sram_overhead() {
        // "a hardware-based CPT has at most 512 entries, each of which
        // needs at most 3 bytes ... resulting in a total 1.5KB SRAM".
        assert_eq!(cpt().sram_bytes(), 1536);
    }

    #[test]
    fn map_translate_roundtrip() {
        let mut t = cpt();
        t.map(3, 200).unwrap();
        let (pcpn, off) = t.translate(VirtCacheAddr(3 * 32 * KIB + 77)).unwrap();
        assert_eq!(pcpn, 200);
        assert_eq!(off, 77);
    }

    #[test]
    fn unmapped_translation_faults() {
        let t = cpt();
        assert_eq!(
            t.translate(VirtCacheAddr(0)),
            Err(CptError::Unmapped { vcpn: 0 })
        );
    }

    #[test]
    fn out_of_range_vcpn_faults() {
        let t = cpt();
        let too_far = VirtCacheAddr(512 * 32 * KIB);
        assert!(matches!(
            t.translate(too_far),
            Err(CptError::OutOfRange { vcpn: 512, .. })
        ));
    }

    #[test]
    fn double_map_rejected() {
        let mut t = cpt();
        t.map(1, 130).unwrap();
        assert_eq!(
            t.map(1, 131),
            Err(CptError::AlreadyMapped { vcpn: 1, pcpn: 130 })
        );
    }

    #[test]
    fn unmap_returns_page() {
        let mut t = cpt();
        t.map(9, 300).unwrap();
        assert_eq!(t.unmap(9), Ok(300));
        assert_eq!(t.unmap(9), Err(CptError::Unmapped { vcpn: 9 }));
    }

    #[test]
    fn translate_range_lists_pages_in_order() {
        let mut t = cpt();
        t.map(0, 140).unwrap();
        t.map(1, 141).unwrap();
        t.map(2, 139).unwrap();
        let pages = t.translate_range(VirtCacheAddr(10), 2 * 32 * KIB).unwrap();
        assert_eq!(pages, vec![140, 141, 142 - 3]);
    }

    #[test]
    fn translate_range_empty() {
        let t = cpt();
        assert_eq!(t.translate_range(VirtCacheAddr(0), 0).unwrap(), vec![]);
    }

    #[test]
    fn translate_range_fails_on_hole() {
        let mut t = cpt();
        t.map(0, 140).unwrap();
        // Page 1 missing.
        assert!(t.translate_range(VirtCacheAddr(0), 33 * KIB).is_err());
    }

    #[test]
    fn unmap_all_drains() {
        let mut t = cpt();
        t.map(0, 140).unwrap();
        t.map(5, 150).unwrap();
        let mut pages = t.unmap_all();
        pages.sort_unstable();
        assert_eq!(pages, vec![140, 150]);
        assert_eq!(t.mapped_count(), 0);
    }
}
