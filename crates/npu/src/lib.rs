//! NPU core model for the CaMDN simulator.
//!
//! Provides the per-core architectural state and timing models the rest
//! of the system builds on:
//!
//! * [`cpt`] — the hardware cache page table CaMDN installs in each NPU
//!   (vcaddr → pcaddr translation, 1.5 KiB SRAM);
//! * [`compute`] — systolic PE-array timing with a utilization model
//!   (dense vs depth-wise vs transformer layers);
//! * [`core`] — the [`NpuCore`] aggregate.
//!
//! # Example
//!
//! ```
//! use camdn_common::config::NpuConfig;
//! use camdn_npu::compute::ComputeSpec;
//!
//! // One ResNet-style conv: 3x3x256 reduction, 256 output channels.
//! let spec = ComputeSpec {
//!     macs: 1 << 28,
//!     reduction: 3 * 3 * 256,
//!     out_channels: 256,
//!     spatial: 14 * 14,
//! };
//! let cfg = NpuConfig::paper_default();
//! assert!(spec.utilization(&cfg) > 0.99); // dense conv fills the array
//! ```

#![warn(missing_docs)]
#![deny(deprecated)]

pub mod compute;
pub mod core;
pub mod cpt;

pub use compute::ComputeSpec;
pub use core::{NpuCore, NpuId};
pub use cpt::{CachePageTable, CptError};
