//! PE-array compute-timing model for a Gemmini-like systolic NPU.
//!
//! The evaluated NPU (Table II) is a 32×32 weight-stationary systolic
//! array. A layer lowered to matrix multiplication maps its *reduction*
//! dimension (`IC·KH·KW` for convolutions, `K` for matmuls) onto the PE
//! rows and its *output-channel* dimension onto the PE columns. The model
//! charges:
//!
//! * `macs / (peak · utilization)` active cycles, where utilization is
//!   the product of row and column occupancy (small reduction dims — e.g.
//!   depth-wise convolutions with `KH·KW = 9` — waste most rows, which is
//!   why DW-conv models gain the most from memory-side optimizations);
//! * a pipeline fill/drain overhead per tile invocation.

use camdn_common::config::NpuConfig;
use camdn_common::types::Cycle;
use serde::{Deserialize, Serialize};

/// The compute shape of one layer, as seen by the PE array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ComputeSpec {
    /// Total multiply-accumulates in the layer.
    pub macs: u64,
    /// Reduction dimension mapped to PE rows (`IC·KH·KW` or `K`).
    pub reduction: u64,
    /// Output-channel dimension mapped to PE columns (`OC` or `N`).
    pub out_channels: u64,
    /// Output spatial size (`OH·OW·B` or `M`): the number of output
    /// vectors streamed through the array.
    pub spatial: u64,
}

impl ComputeSpec {
    /// Fraction of the PE array doing useful work for this shape.
    ///
    /// Rows are occupied `reduction / ceil_to(rows)`, columns
    /// `out_channels / ceil_to(cols)`; both saturate at 1 for large dims.
    pub fn utilization(&self, cfg: &NpuConfig) -> f64 {
        fn occupancy(dim: u64, lanes: u64) -> f64 {
            if dim == 0 {
                return 0.0;
            }
            let folds = dim.div_ceil(lanes);
            dim as f64 / (folds * lanes) as f64
        }
        occupancy(self.reduction, u64::from(cfg.pe_rows))
            * occupancy(self.out_channels, u64::from(cfg.pe_cols))
    }

    /// Cycles to execute `macs_in_tile` MACs of this layer in one tile
    /// invocation, including pipeline fill/drain.
    pub fn tile_cycles(&self, macs_in_tile: u64, cfg: &NpuConfig) -> Cycle {
        let util = self.utilization(cfg).max(1e-3);
        let active = (macs_in_tile as f64 / (cfg.macs_per_cycle as f64 * util)).ceil() as Cycle;
        let drain = Cycle::from(cfg.pe_rows + cfg.pe_cols);
        active + drain
    }

    /// Cycles for the whole layer executed as `tiles` equal invocations.
    pub fn layer_cycles(&self, tiles: u64, cfg: &NpuConfig) -> Cycle {
        let tiles = tiles.max(1);
        let per_tile = self.macs.div_ceil(tiles);
        self.tile_cycles(per_tile, cfg) * tiles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> NpuConfig {
        NpuConfig::paper_default()
    }

    #[test]
    fn full_array_reaches_peak() {
        let s = ComputeSpec {
            macs: 1 << 20,
            reduction: 256,
            out_channels: 256,
            spatial: 16,
        };
        assert!((s.utilization(&cfg()) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn depthwise_wastes_rows() {
        // Depth-wise 3x3: reduction = 9 of 32 rows occupied.
        let s = ComputeSpec {
            macs: 1 << 20,
            reduction: 9,
            out_channels: 128,
            spatial: 196,
        };
        let u = s.utilization(&cfg());
        assert!((u - 9.0 / 32.0).abs() < 1e-12, "got {u}");
    }

    #[test]
    fn folding_penalty_for_non_multiples() {
        // 33 output channels need two column folds: 33/64 occupancy.
        let s = ComputeSpec {
            macs: 1,
            reduction: 32,
            out_channels: 33,
            spatial: 1,
        };
        assert!((s.utilization(&cfg()) - 33.0 / 64.0).abs() < 1e-12);
    }

    #[test]
    fn lower_utilization_means_more_cycles() {
        let dense = ComputeSpec {
            macs: 1 << 24,
            reduction: 512,
            out_channels: 512,
            spatial: 64,
        };
        let dw = ComputeSpec {
            macs: 1 << 24,
            reduction: 9,
            out_channels: 512,
            spatial: 64,
        };
        assert!(dw.layer_cycles(8, &cfg()) > dense.layer_cycles(8, &cfg()));
    }

    #[test]
    fn more_tiles_cost_more_drain() {
        let s = ComputeSpec {
            macs: 1 << 22,
            reduction: 256,
            out_channels: 256,
            spatial: 64,
        };
        let few = s.layer_cycles(2, &cfg());
        let many = s.layer_cycles(64, &cfg());
        assert!(many > few);
    }

    #[test]
    fn zero_spec_is_safe() {
        let s = ComputeSpec {
            macs: 0,
            reduction: 0,
            out_channels: 0,
            spatial: 0,
        };
        // Must not panic or divide by zero.
        let c = s.layer_cycles(1, &cfg());
        assert!(c >= 64); // drain only
    }
}
