//! The NPU core: identity, private scratchpad accounting and the CPT.
//!
//! The heavy lifting of layer execution (issuing memory operations,
//! advancing time) is orchestrated by `camdn-runtime`; the core holds the
//! per-NPU architectural state that the paper adds or relies on.

use crate::cpt::{CachePageTable, CptError};
use camdn_common::config::NpuConfig;
use camdn_common::types::{Cycle, VirtCacheAddr};

/// Identifier of an NPU core on the SoC.
pub type NpuId = u32;

/// One NPU core with its private scratchpad and hardware CPT.
#[derive(Debug, Clone)]
pub struct NpuCore {
    id: NpuId,
    cfg: NpuConfig,
    cpt: CachePageTable,
    /// The cycle until which the core is executing its current phase.
    pub busy_until: Cycle,
}

impl NpuCore {
    /// Creates core `id` with a CPT of `cpt_entries` pages of
    /// `page_bytes` each.
    pub fn new(id: NpuId, cfg: NpuConfig, cpt_entries: u32, page_bytes: u64) -> Self {
        NpuCore {
            id,
            cfg,
            cpt: CachePageTable::new(cpt_entries, page_bytes),
            busy_until: 0,
        }
    }

    /// This core's identifier.
    pub fn id(&self) -> NpuId {
        self.id
    }

    /// The core's configuration.
    pub fn config(&self) -> &NpuConfig {
        &self.cfg
    }

    /// Immutable view of the CPT.
    pub fn cpt(&self) -> &CachePageTable {
        &self.cpt
    }

    /// Mutable CPT access (used by the cache scheduler to install and
    /// remove page mappings at layer boundaries).
    pub fn cpt_mut(&mut self) -> &mut CachePageTable {
        &mut self.cpt
    }

    /// Scratchpad capacity available for double-buffered tiles: half of
    /// the physical scratchpad, the standard Gemmini discipline.
    pub fn tile_budget_bytes(&self) -> u64 {
        self.cfg.scratchpad_bytes / 2
    }

    /// Convenience: physical pages backing a virtual cache range.
    ///
    /// # Errors
    ///
    /// Propagates CPT faults ([`CptError`]).
    pub fn translate_range(&self, vcaddr: VirtCacheAddr, bytes: u64) -> Result<Vec<u32>, CptError> {
        self.cpt.translate_range(vcaddr, bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use camdn_common::types::KIB;

    #[test]
    fn core_construction() {
        let core = NpuCore::new(3, NpuConfig::paper_default(), 512, 32 * KIB);
        assert_eq!(core.id(), 3);
        assert_eq!(core.tile_budget_bytes(), 128 * KIB);
        assert_eq!(core.cpt().len(), 512);
    }

    #[test]
    fn cpt_round_trip_through_core() {
        let mut core = NpuCore::new(0, NpuConfig::paper_default(), 512, 32 * KIB);
        core.cpt_mut().map(0, 200).unwrap();
        core.cpt_mut().map(1, 201).unwrap();
        let pages = core.translate_range(VirtCacheAddr(0), 64 * KIB).unwrap();
        assert_eq!(pages, vec![200, 201]);
    }
}
