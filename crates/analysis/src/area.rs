//! Analytical 45 nm area model reproducing Table III.
//!
//! The paper synthesizes the CaMDN architecture with Synopsys Design
//! Compiler in a 45 nm process and generates SRAM macros with OpenRAM.
//! We cannot run a commercial synthesis flow, so this module provides a
//! parametric area model with two SRAM flavours (fast multi-ported
//! scratchpad SRAM vs dense cache-array SRAM) and a logic-area term,
//! calibrated once against the component ratios Table III reports. The
//! claim the table supports — that the CPT adds ~0.9 % to an NPU and the
//! NEC ~0.3 % to a cache slice — is then reproducible for any
//! configuration.

use camdn_common::config::{CacheConfig, NpuConfig};
use serde::{Deserialize, Serialize};

/// Area model constants (µm² at 45 nm).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AreaModel {
    /// µm² per byte of fast (scratchpad/CPT) SRAM.
    pub sram_fast_um2_per_byte: f64,
    /// µm² per byte of dense (cache data array) SRAM.
    pub sram_dense_um2_per_byte: f64,
    /// µm² per processing element (8-bit MAC + pipeline registers).
    pub pe_um2: f64,
    /// µm² of control logic per NEC instance.
    pub nec_logic_um2: f64,
    /// µm² of miscellaneous NPU logic (decoder, DMA, instruction buffer).
    pub npu_misc_um2: f64,
    /// µm² of miscellaneous slice logic (conventional cache controller).
    pub slice_misc_um2: f64,
    /// Tag SRAM overhead relative to data for the tag array.
    pub tag_fraction: f64,
}

impl AreaModel {
    /// Constants calibrated to reproduce Table III for the Table II
    /// configuration.
    pub fn calibrated_45nm() -> Self {
        AreaModel {
            sram_fast_um2_per_byte: 24.04,  // 256 KiB scratchpad -> 6302 kµm²
            sram_dense_um2_per_byte: 10.43, // 2 MiB slice data -> 21878 kµm²
            pe_um2: 1271.5,                 // 1024 PEs -> 1302 kµm²
            nec_logic_um2: 66_000.0,
            npu_misc_um2: 228_000.0,
            slice_misc_um2: 334_000.0,
            tag_fraction: 0.1096, // tag array 2398 kµm² vs 21878 kµm² data
        }
    }
}

impl Default for AreaModel {
    fn default() -> Self {
        Self::calibrated_45nm()
    }
}

/// One row of the area breakdown.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AreaRow {
    /// Component name.
    pub component: String,
    /// Area in µm².
    pub area_um2: f64,
    /// Share of its parent total, in percent.
    pub percent: f64,
}

/// Area breakdown of one NPU and one cache slice (Table III).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AreaBreakdown {
    /// NPU-side rows: total, scratchpad, PE array, CPT, others.
    pub npu: Vec<AreaRow>,
    /// Slice-side rows: total, data array, tag array, NEC, others.
    pub slice: Vec<AreaRow>,
}

impl AreaBreakdown {
    /// Share of the NPU taken by the CPT, in percent.
    pub fn cpt_percent(&self) -> f64 {
        self.npu
            .iter()
            .find(|r| r.component == "CPT")
            .map(|r| r.percent)
            .unwrap_or(0.0)
    }

    /// Share of the slice taken by the NEC, in percent.
    pub fn nec_percent(&self) -> f64 {
        self.slice
            .iter()
            .find(|r| r.component == "NEC")
            .map(|r| r.percent)
            .unwrap_or(0.0)
    }
}

/// Computes the Table III breakdown for a configuration.
pub fn area_breakdown(npu: &NpuConfig, cache: &CacheConfig, model: &AreaModel) -> AreaBreakdown {
    // --- NPU side ---
    let scratchpad = npu.scratchpad_bytes as f64 * model.sram_fast_um2_per_byte;
    let pes = f64::from(npu.pe_rows * npu.pe_cols) * model.pe_um2;
    // CPT: one entry per page of the whole cache, 3 bytes each
    // (Section III-B3), in fast SRAM plus a fixed lookup-logic share.
    let cpt_entries = cache.total_bytes / cache.page_bytes;
    let cpt_sram = (cpt_entries * 3) as f64 * model.sram_fast_um2_per_byte;
    let cpt = cpt_sram + 36_000.0; // comparator/port logic
    let npu_total = scratchpad + pes + cpt + model.npu_misc_um2;

    // --- Cache slice side ---
    let slice_bytes = (cache.total_bytes / u64::from(cache.slices)) as f64;
    let data = slice_bytes * model.sram_dense_um2_per_byte;
    let tag = data * model.tag_fraction;
    let nec = model.nec_logic_um2;
    let slice_total = data + tag + nec + model.slice_misc_um2;

    let rows = |items: Vec<(&str, f64)>, total: f64| {
        let mut v = vec![AreaRow {
            component: "total".into(),
            area_um2: total,
            percent: 100.0,
        }];
        v.extend(items.into_iter().map(|(n, a)| AreaRow {
            component: n.into(),
            area_um2: a,
            percent: 100.0 * a / total,
        }));
        v
    };

    AreaBreakdown {
        npu: rows(
            vec![
                ("Scratchpad", scratchpad),
                ("PE Array", pes),
                ("CPT", cpt),
                ("others", model.npu_misc_um2),
            ],
            npu_total,
        ),
        slice: rows(
            vec![
                ("Data Array", data),
                ("Tag Array", tag),
                ("NEC", nec),
                ("others", model.slice_misc_um2),
            ],
            slice_total,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breakdown() -> AreaBreakdown {
        area_breakdown(
            &NpuConfig::paper_default(),
            &CacheConfig::paper_default(),
            &AreaModel::calibrated_45nm(),
        )
    }

    #[test]
    fn table3_npu_total_within_tolerance() {
        let b = breakdown();
        let total = b.npu[0].area_um2 / 1000.0; // kµm²
        assert!(
            (total - 7905.0).abs() / 7905.0 < 0.02,
            "NPU total {total:.0} kµm² vs Table III 7905"
        );
    }

    #[test]
    fn table3_slice_total_within_tolerance() {
        let b = breakdown();
        let total = b.slice[0].area_um2 / 1000.0;
        assert!(
            (total - 24676.0).abs() / 24676.0 < 0.02,
            "slice total {total:.0} kµm² vs Table III 24676"
        );
    }

    #[test]
    fn cpt_overhead_is_negligible() {
        // Table III: CPT = 0.9% of the NPU.
        let b = breakdown();
        let p = b.cpt_percent();
        assert!((p - 0.9).abs() < 0.2, "CPT {p:.2}% vs paper 0.9%");
    }

    #[test]
    fn nec_overhead_is_negligible() {
        // Table III: NEC = 0.3% of a cache slice.
        let b = breakdown();
        let p = b.nec_percent();
        assert!((p - 0.3).abs() < 0.1, "NEC {p:.2}% vs paper 0.3%");
    }

    #[test]
    fn component_percents_sum_to_hundred() {
        let b = breakdown();
        for rows in [&b.npu, &b.slice] {
            let s: f64 = rows.iter().skip(1).map(|r| r.percent).sum();
            assert!((s - 100.0).abs() < 1e-6);
        }
    }

    #[test]
    fn bigger_cache_means_bigger_slice_but_same_nec() {
        use camdn_common::types::MIB;
        let m = AreaModel::calibrated_45nm();
        let npu = NpuConfig::paper_default();
        let small = area_breakdown(&npu, &CacheConfig::paper_default(), &m);
        let big_cfg = CacheConfig::paper_default().with_total_bytes(64 * MIB);
        let big = area_breakdown(&npu, &big_cfg, &m);
        assert!(big.slice[0].area_um2 > small.slice[0].area_um2);
        // NEC logic is size-independent, so its share shrinks.
        assert!(big.nec_percent() < small.nec_percent());
    }
}
