//! Workload analytics and hardware-cost models for the CaMDN
//! reproduction.
//!
//! * [`reuse`] — the reuse-count / reuse-distance statistics of Fig. 3,
//!   which motivate bypassing (most data is single-use) and
//!   NPU-controlled retention (intermediates return far away);
//! * [`area`] — the analytical 45 nm area model behind Table III,
//!   substituting for the paper's Synopsys DC + OpenRAM flow.
//!
//! # Example
//!
//! ```
//! use camdn_analysis::area::{area_breakdown, AreaModel};
//! use camdn_common::config::{CacheConfig, NpuConfig};
//!
//! let b = area_breakdown(
//!     &NpuConfig::paper_default(),
//!     &CacheConfig::paper_default(),
//!     &AreaModel::calibrated_45nm(),
//! );
//! assert!(b.cpt_percent() < 1.5); // the CPT is a negligible add-on
//! ```

#![warn(missing_docs)]
#![deny(deprecated)]

pub mod area;
pub mod reuse;

pub use area::{area_breakdown, AreaBreakdown, AreaModel, AreaRow};
pub use reuse::{profile_zoo, reuse_profile, ReuseProfile};
