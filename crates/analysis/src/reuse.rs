//! Reuse-count and reuse-distance statistics (Fig. 3 of the paper).
//!
//! The paper motivates CaMDN with two statistical analyses over the
//! benchmark models, performed on the cache-visible access stream of the
//! cache-unaware baseline mapping:
//!
//! * **Reuse count** (Fig. 3a): for every byte entering the shared
//!   cache, how many times is it accessed in total? Data accessed once is
//!   pure pollution — it occupies cache space without any chance of a
//!   hit. The paper reports 68.0 % of data with no future reuse on
//!   average.
//! * **Reuse distance** (Fig. 3b): for inter-layer intermediate tensors,
//!   how many bytes of other data are accessed between the write (by
//!   layer `i`) and the read (by layer `i+1`)? The paper reports 61.8 %
//!   of intermediates with distances above 1 MiB and 47.9 % above 2 MiB
//!   — too far for a contended transparent cache to hold.

use camdn_common::stats::Histogram;
use camdn_common::types::MIB;
use camdn_mapper::{LoopOrder, MapperConfig, ModelMapping, TensorSizes};
use camdn_models::{Model, WeightClass};
use serde::{Deserialize, Serialize};

/// Reuse-count buckets of Fig. 3a: {1, 2–4, 5–8, ≥9} accesses.
pub const REUSE_COUNT_EDGES: [u64; 3] = [2, 5, 9];

/// Reuse-distance buckets of Fig. 3b: {≤1 MiB, 1–2 MiB, 2–4 MiB, >4 MiB}.
pub const REUSE_DIST_EDGES: [u64; 3] = [MIB, 2 * MIB, 4 * MIB];

/// Fig. 3 statistics of one model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReuseProfile {
    /// Model abbreviation.
    pub abbr: String,
    /// Fraction of bytes per reuse-count bucket `{1, 2-4, 5-8, >=9}`.
    pub count_fractions: Vec<f64>,
    /// Fraction of intermediate bytes per reuse-distance bucket
    /// `{<=1MiB, 1-2MiB, 2-4MiB, >4MiB}`.
    pub distance_fractions: Vec<f64>,
    /// Fraction of bytes with no future reuse (reuse count == 1).
    pub no_reuse_fraction: f64,
    /// Fraction of intermediate bytes with reuse distance > 1 MiB.
    pub far_fraction: f64,
}

/// Computes the Fig. 3 statistics for one model under the baseline
/// (cache-unaware) mapping.
pub fn reuse_profile(model: &Model, mapping: &ModelMapping) -> ReuseProfile {
    let mut counts = Histogram::new(&REUSE_COUNT_EDGES);
    let mut dists = Histogram::new(&REUSE_DIST_EDGES);

    // Traffic between the write of layer i's output and its read by
    // layer i+1 equals everything layer i+1 moves before/while consuming
    // it. Under the baseline mapping the consumer streams its weights
    // and re-sweeps one tensor; the intermediate is read at distance ~
    // (weights + the co-runners' traffic). Even alone, the distance is
    // at least the consumer's weight stream; we report the single-tenant
    // lower bound, as the paper's analysis does.
    for (i, layer) in model.layers.iter().enumerate() {
        let sizes = TensorSizes::of(layer);
        let cand = &mapping.baseline[i];
        let resweeps = match cand.order {
            LoopOrder::OcOuter => cand.tiling.n_oc,
            LoopOrder::SpatialOuter => cand.tiling.n_sp,
        };

        // Reuse counts of the bytes this layer pushes through the cache.
        match cand.order {
            LoopOrder::OcOuter => {
                // Weights pass once; the input is touched `n_oc` times.
                counts.record_n(1, sizes.weight + sizes.bias);
                counts.record_n(resweeps, sizes.input);
            }
            LoopOrder::SpatialOuter => {
                counts.record_n(resweeps, sizes.weight);
                counts.record_n(1, sizes.input + sizes.bias);
            }
        }
        // The output is written once here; if a consumer exists it is
        // read again (count 2), otherwise it leaves the chip (count 1).
        let has_consumer = i + 1 < model.layers.len();
        counts.record_n(if has_consumer { 2 } else { 1 }, sizes.output);

        // Reuse distance of the intermediate produced by this layer: the
        // consumer's own traffic before the final sweep of its input.
        if has_consumer {
            let next = &model.layers[i + 1];
            let nsizes = TensorSizes::of(next);
            let consumer_stream = nsizes.weight + nsizes.bias + nsizes.output / 2;
            // The intermediate's own size contributes: a byte written at
            // the start of the tensor waits for the rest of the tensor.
            let dist = consumer_stream + sizes.output / 2;
            dists.record_n(dist, sizes.output);
        }
    }

    let cf = counts.fractions();
    let df = dists.fractions();
    ReuseProfile {
        abbr: model.abbr.clone(),
        no_reuse_fraction: cf[0],
        far_fraction: df[1] + df[2] + df[3],
        count_fractions: cf,
        distance_fractions: df,
    }
}

/// Profiles the whole zoo plus the average row (the "Avg." column of
/// Fig. 3).
pub fn profile_zoo(cfg: &MapperConfig) -> Vec<ReuseProfile> {
    let zoo = camdn_models::zoo::all();
    let mut rows: Vec<ReuseProfile> = zoo
        .iter()
        .map(|m| {
            let mapping = camdn_mapper::map_model(m, cfg);
            reuse_profile(m, &mapping)
        })
        .collect();
    let n = rows.len() as f64;
    let avg = ReuseProfile {
        abbr: "Avg".into(),
        count_fractions: (0..4)
            .map(|i| rows.iter().map(|r| r.count_fractions[i]).sum::<f64>() / n)
            .collect(),
        distance_fractions: (0..4)
            .map(|i| rows.iter().map(|r| r.distance_fractions[i]).sum::<f64>() / n)
            .collect(),
        no_reuse_fraction: rows.iter().map(|r| r.no_reuse_fraction).sum::<f64>() / n,
        far_fraction: rows.iter().map(|r| r.far_fraction).sum::<f64>() / n,
    };
    rows.push(avg);
    rows
}

/// True when the weight operand of any layer reaches a reuse count above
/// one (sanity helper used by tests and docs).
pub fn has_weight_resweeps(model: &Model, mapping: &ModelMapping) -> bool {
    model.layers.iter().enumerate().any(|(i, l)| {
        l.weight_class == WeightClass::Static
            && mapping.baseline[i].order == LoopOrder::SpatialOuter
            && mapping.baseline[i].tiling.n_sp > 1
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use camdn_mapper::map_model;
    use camdn_models::zoo;

    fn profile(m: &Model) -> ReuseProfile {
        let mapping = map_model(m, &MapperConfig::paper_default());
        reuse_profile(m, &mapping)
    }

    #[test]
    fn fractions_sum_to_one() {
        for m in zoo::all() {
            let p = profile(&m);
            let cs: f64 = p.count_fractions.iter().sum();
            assert!((cs - 1.0).abs() < 1e-9, "{}: counts sum {cs}", m.name);
            if m.total_intermediate_bytes() > 0 {
                let ds: f64 = p.distance_fractions.iter().sum();
                assert!((ds - 1.0).abs() < 1e-9, "{}: dists sum {ds}", m.name);
            }
        }
    }

    #[test]
    fn large_no_reuse_fraction_on_average() {
        // Paper: 68.0% of data have no future reuse on average. Our
        // reproduction should land in the same regime (> 40%).
        let rows = profile_zoo(&MapperConfig::paper_default());
        let avg = rows.last().unwrap();
        assert!(
            avg.no_reuse_fraction > 0.4,
            "avg no-reuse fraction {:.2} too small",
            avg.no_reuse_fraction
        );
    }

    #[test]
    fn most_intermediates_reused_far_away() {
        // Paper: 61.8% of intermediates above 1 MiB reuse distance.
        let rows = profile_zoo(&MapperConfig::paper_default());
        let avg = rows.last().unwrap();
        assert!(
            avg.far_fraction > 0.4,
            "avg far fraction {:.2} too small",
            avg.far_fraction
        );
    }

    #[test]
    fn gnmt_weights_land_in_the_high_reuse_bucket() {
        // Fig. 3a shows GNMT with a large >=9 reuse-count share: the
        // recurrence re-reads the gate matrices once per timestep.
        // The recurrent half of the gate weights is re-swept once per
        // timestep; the input half streams once (cuDNN decomposition).
        let p = profile(&zoo::gnmt());
        assert!(
            p.count_fractions[3] > 0.3,
            "GNMT >=9 bucket {:.2} too small",
            p.count_fractions[3]
        );
    }

    #[test]
    fn zoo_profile_has_nine_rows() {
        let rows = profile_zoo(&MapperConfig::paper_default());
        assert_eq!(rows.len(), 9);
        assert_eq!(rows[8].abbr, "Avg");
    }
}
