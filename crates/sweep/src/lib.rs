//! Parallel multi-engine sweeps for the CaMDN simulator.
//!
//! The paper's figures — and any scaling study worth running — are
//! cross-products of scenarios: policies × SoCs × cache sizes ×
//! workloads × seeds. Each cell is one deterministic, single-threaded
//! engine run, so the grid parallelizes perfectly; what used to be
//! missing was a subsystem that expands the product, shares the
//! redundant offline-mapping work, survives broken cells, and hands
//! back a structured result. [`Sweep::grid`] is that subsystem:
//!
//! * **axes** — policies (built-in kinds or registry names), labelled
//!   SoCs (optionally with their own [`MapperConfig`]), cache
//!   capacities, DRAM channel counts, labelled [`Workload`]s (see
//!   [`bursty_ramp`] for ramped burst intensities), QoS deadline
//!   scales, Algorithm 1 look-ahead factors, labelled
//!   [`FaultPlan`]s (chaos studies sweep fault intensity like any
//!   other axis), and seeds. Unset axes collapse to a singleton
//!   default, so a one-axis sweep stays one line of code.
//! * **execution** — a work-queue thread pool ([`run_cells`]) where a
//!   panic or error in one cell becomes that cell's
//!   `Err(`[`EngineError`]`)` without disturbing neighbors.
//! * **shared mapping-plan cache** — one [`PlanCache`] injected into
//!   every cell's builder, so the O(models × cells) mapper re-solves
//!   are done once per distinct `(model, MapperConfig)` key. Results
//!   are bit-identical with and without it (tested); only wall time
//!   changes.
//! * **streaming collection** — finished cells are pushed into a
//!   [`CellSink`] the moment they complete. The in-memory sink backs
//!   [`SweepBuilder::run`] (summary-only cells by default, with an
//!   optional per-grid [`memory_budget_bytes`] on retained detail);
//!   [`SweepBuilder::run_streamed`] additionally writes a
//!   `camdn-sweep-cells/3` JSONL log (summary scalars *and* the
//!   compact latency-tail histogram), one flushed line per cell, which
//!   [`SweepBuilder::resume`] uses to skip already-recorded
//!   coordinates after a kill (logs written by the older
//!   `camdn-sweep-cells/1` and `/2` schemas are still accepted —
//!   their cells resume with zeroed missing fields); [`SeedAggregate`]
//!   folds the seeds
//!   axis into mean / stddev / 95% confidence intervals and pools the
//!   per-seed latency tails by histogram merge, so per-coordinate
//!   percentiles come from the pooled samples. Custom sinks plug in
//!   through [`SweepBuilder::run_with_sink`] for grids too large to
//!   buffer at all.
//! * **structured results** — a [`SweepResult`] with axis labels,
//!   per-cell `Result<RunOutput, EngineError>` + wall time, cache
//!   statistics, and a serde-style JSON export
//!   ([`SweepResult::to_json`], schema `camdn-bench-sweep/1`, the
//!   format of `BENCH_sweep.json`).
//!
//! ```
//! use camdn_sweep::Sweep;
//! use camdn_runtime::{PolicyKind, Workload};
//! use camdn_common::types::MIB;
//!
//! let models = vec![camdn_models::zoo::mobilenet_v2()];
//! let grid = Sweep::grid()
//!     .policies([PolicyKind::SharedBaseline, PolicyKind::CamdnFull])
//!     .cache_bytes([8 * MIB, 16 * MIB])
//!     .workload("mb", Workload::closed(models, 2))
//!     .run()
//!     .expect("a workload axis is set");
//! assert_eq!(grid.cells.len(), 4); // 2 policies x 2 cache sizes
//! assert!(grid.cells.iter().all(|c| c.outcome.is_ok()));
//! ```
//!
//! Cells are ordered row-major with policies outermost and seeds
//! innermost (see [`SweepResult::index_of`]); the order is identical to
//! the serial double-loop you would have written by hand, and each
//! cell's [`RunOutput`] is bit-for-bit the result of running that
//! configuration alone through [`Simulation::builder`] at the grid's
//! [`DetailLevel`] (default [`DetailLevel::Summary`] — request
//! [`DetailLevel::Tasks`] via [`SweepBuilder::detail`] when a study
//! needs per-task tables).
//!
//! [`Simulation::builder`]: camdn_runtime::Simulation::builder
//! [`memory_budget_bytes`]: SweepBuilder::memory_budget_bytes

#![warn(missing_docs)]
#![deny(deprecated)]

mod exec;
pub mod jsonl;
mod report;
mod sink;

pub use exec::{run_cells, run_cells_into, CellRun};
pub use sink::{
    CellOutcome, CellSink, JsonlSink, MemorySink, MetricStats, SeedAggregate, SeedStats,
    CELLS_SCHEMA, CELLS_SCHEMA_V1, CELLS_SCHEMA_V2,
};

use camdn_common::config::SocConfig;
use camdn_common::types::{Cycle, MIB};
use camdn_mapper::{MapperConfig, PlanCache, PlanCacheStats};
use camdn_runtime::{
    DetailLevel, EngineError, FaultPlan, PolicyKind, RunOutput, Simulation, SimulationBuilder,
    Workload,
};
use std::collections::BTreeSet;
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

/// Default seed of the engine builder, repeated here so an unset seed
/// axis matches plain `Simulation::builder()` runs.
const DEFAULT_SEED: u64 = 0xCA3D41;

/// One entry of the policy axis.
enum PolicyAxisEntry {
    Kind(PolicyKind),
    Named(String),
}

impl PolicyAxisEntry {
    fn label(&self) -> String {
        match self {
            PolicyAxisEntry::Kind(k) => k.label().to_string(),
            PolicyAxisEntry::Named(n) => n.clone(),
        }
    }
}

/// One entry of the SoC axis: a labelled configuration, optionally
/// paired with its own mapper settings (page-size studies change both).
struct SocAxisEntry {
    label: String,
    soc: SocConfig,
    mapper: Option<MapperConfig>,
}

/// Entry point of the sweep subsystem.
pub struct Sweep;

impl Sweep {
    /// Starts assembling a grid sweep. Every axis left unset collapses
    /// to a singleton default (baseline policy, Table II SoC, the
    /// SoC's own cache size and DRAM channel count, no QoS, default
    /// look-ahead, builder seed); at least one workload is required.
    pub fn grid() -> SweepBuilder {
        SweepBuilder {
            policies: Vec::new(),
            socs: Vec::new(),
            cache_bytes: Vec::new(),
            channel_counts: Vec::new(),
            workloads: Vec::new(),
            qos_scales: Vec::new(),
            lookaheads: Vec::new(),
            fault_plans: Vec::new(),
            seeds: Vec::new(),
            warmup_rounds: None,
            epoch_cycles: None,
            mapper: None,
            reference_model: false,
            threads: None,
            shared_plan_cache: true,
            detail: DetailLevel::Summary,
            memory_budget: None,
        }
    }
}

/// Fluent builder for a grid sweep (see [`Sweep::grid`]).
pub struct SweepBuilder {
    policies: Vec<PolicyAxisEntry>,
    socs: Vec<SocAxisEntry>,
    cache_bytes: Vec<u64>,
    channel_counts: Vec<u32>,
    workloads: Vec<(String, Workload)>,
    qos_scales: Vec<f64>,
    lookaheads: Vec<f64>,
    fault_plans: Vec<(String, Option<FaultPlan>)>,
    seeds: Vec<u64>,
    warmup_rounds: Option<u32>,
    epoch_cycles: Option<Cycle>,
    mapper: Option<MapperConfig>,
    reference_model: bool,
    threads: Option<usize>,
    shared_plan_cache: bool,
    detail: DetailLevel,
    memory_budget: Option<u64>,
}

impl SweepBuilder {
    /// Appends one built-in policy to the policy axis.
    pub fn policy(mut self, kind: PolicyKind) -> Self {
        self.policies.push(PolicyAxisEntry::Kind(kind));
        self
    }

    /// Appends built-in policies to the policy axis.
    pub fn policies(mut self, kinds: impl IntoIterator<Item = PolicyKind>) -> Self {
        self.policies
            .extend(kinds.into_iter().map(PolicyAxisEntry::Kind));
        self
    }

    /// Appends a registry-named policy to the policy axis (resolved at
    /// cell build time, like
    /// [`SimulationBuilder::policy_named`](camdn_runtime::SimulationBuilder::policy_named)).
    pub fn policy_named(mut self, name: impl Into<String>) -> Self {
        self.policies.push(PolicyAxisEntry::Named(name.into()));
        self
    }

    /// Appends a labelled SoC configuration to the SoC axis.
    pub fn soc(mut self, label: impl Into<String>, soc: SocConfig) -> Self {
        self.socs.push(SocAxisEntry {
            label: label.into(),
            soc,
            mapper: None,
        });
        self
    }

    /// Appends a labelled SoC paired with its own mapper configuration
    /// (e.g. a page-size study must change `page_bytes` in both).
    pub fn soc_with_mapper(
        mut self,
        label: impl Into<String>,
        soc: SocConfig,
        mapper: MapperConfig,
    ) -> Self {
        self.socs.push(SocAxisEntry {
            label: label.into(),
            soc,
            mapper: Some(mapper),
        });
        self
    }

    /// Sets the cache-capacity axis: each entry runs every SoC of the
    /// SoC axis with its total cache size overridden
    /// (see [`SocConfig::with_cache_bytes`]).
    pub fn cache_bytes(mut self, sizes: impl IntoIterator<Item = u64>) -> Self {
        self.cache_bytes.extend(sizes);
        self
    }

    /// Sets the DRAM channel-count axis: each entry runs every SoC of
    /// the SoC axis with its channel count overridden, holding
    /// *per-channel* bandwidth constant so the aggregate bandwidth
    /// scales with the channel count
    /// (see [`SocConfig::with_dram_channels`]).
    pub fn channel_counts(mut self, channels: impl IntoIterator<Item = u32>) -> Self {
        self.channel_counts.extend(channels);
        self
    }

    /// Appends a labelled workload to the workload axis (required —
    /// at least one).
    pub fn workload(mut self, label: impl Into<String>, workload: Workload) -> Self {
        self.workloads.push((label.into(), workload));
        self
    }

    /// Appends labelled workloads to the workload axis.
    pub fn workloads(mut self, entries: impl IntoIterator<Item = (String, Workload)>) -> Self {
        self.workloads.extend(entries);
        self
    }

    /// Sets the QoS deadline-scale axis (0.8 = QoS-H, 1.0 = QoS-M,
    /// 1.2 = QoS-L). Unset = closed-loop speedup mode, no deadlines.
    pub fn qos_scales(mut self, scales: impl IntoIterator<Item = f64>) -> Self {
        self.qos_scales.extend(scales);
        self
    }

    /// Sets the Algorithm 1 look-ahead-factor axis (paper default 0.2).
    pub fn lookaheads(mut self, factors: impl IntoIterator<Item = f64>) -> Self {
        self.lookaheads.extend(factors);
        self
    }

    /// Appends one labelled entry to the fault-plan axis. `None` is
    /// the fault-free baseline; `Some(plan)` injects that schedule
    /// into every run of the entry (see
    /// [`FaultPlan`]). Unset = the singleton
    /// fault-free default, which leaves every cell bit-for-bit
    /// identical to a plain builder run.
    pub fn fault_plan(mut self, label: impl Into<String>, plan: Option<FaultPlan>) -> Self {
        self.fault_plans.push((label.into(), plan));
        self
    }

    /// Appends labelled entries to the fault-plan axis (chaos studies
    /// ramp fault intensity the way [`bursty_ramp`] ramps load).
    pub fn fault_plans(
        mut self,
        entries: impl IntoIterator<Item = (String, Option<FaultPlan>)>,
    ) -> Self {
        self.fault_plans.extend(entries);
        self
    }

    /// Sets the seed axis (default: the builder's standard seed).
    pub fn seeds(mut self, seeds: impl IntoIterator<Item = u64>) -> Self {
        self.seeds.extend(seeds);
        self
    }

    /// Warm-up rounds for every cell (builder default when unset).
    pub fn warmup_rounds(mut self, rounds: u32) -> Self {
        self.warmup_rounds = Some(rounds);
        self
    }

    /// Scheduling-epoch length for every cell (builder default when
    /// unset).
    pub fn epoch_cycles(mut self, cycles: Cycle) -> Self {
        self.epoch_cycles = Some(cycles);
        self
    }

    /// Default mapper configuration for SoC-axis entries that do not
    /// carry their own.
    pub fn mapper(mut self, mapper: MapperConfig) -> Self {
        self.mapper = Some(mapper);
        self
    }

    /// Routes every cell through the per-line reference memory model
    /// (differential testing / benchmarking).
    pub fn reference_model(mut self, reference: bool) -> Self {
        self.reference_model = reference;
        self
    }

    /// Worker-thread count, clamped to `1..=available_parallelism`
    /// (default: available parallelism, capped at the number of
    /// cells).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Enables/disables the shared mapping-plan cache (default
    /// enabled). Cell results are bit-identical either way; disabling
    /// is for benchmarking the cache itself.
    pub fn shared_plan_cache(mut self, shared: bool) -> Self {
        self.shared_plan_cache = shared;
        self
    }

    /// Sets every cell's [`DetailLevel`] (default
    /// [`DetailLevel::Summary`]: cells carry only the compact
    /// [`RunSummary`](camdn_runtime::RunSummary), so a grid's memory is
    /// independent of the tenant count). Studies that read per-task
    /// tables ask for [`DetailLevel::Tasks`].
    pub fn detail(mut self, level: DetailLevel) -> Self {
        self.detail = level;
        self
    }

    /// Caps the bytes the in-memory result spends on per-cell
    /// [`RunDetail`](camdn_runtime::RunDetail) blocks. Cells finishing
    /// after the budget is exhausted are downgraded to their summary
    /// ([`SweepResult::detail_dropped`] counts them); summaries are
    /// never dropped. Which cells keep detail depends on completion
    /// order — aggregates over summaries stay deterministic.
    pub fn memory_budget_bytes(mut self, bytes: u64) -> Self {
        self.memory_budget = Some(bytes);
        self
    }

    /// Expands the cross-product and executes every cell into the
    /// in-memory sink.
    ///
    /// Cell order is row-major with the axes nested
    /// policies → SoCs → cache sizes → channel counts → workloads →
    /// QoS scales → look-aheads → fault plans → seeds (seeds
    /// innermost). Returns an error only
    /// when the grid itself is malformed (no workload axis); per-cell
    /// failures land in their cell's [`SweepCell::outcome`].
    pub fn run(self) -> Result<SweepResult, EngineError> {
        let budget = self.memory_budget;
        let prepared = self.prepare()?;
        let mut memory = MemorySink::new(prepared.axes.clone(), budget);
        let info = prepared.execute(&mut memory, &BTreeSet::new())?;
        Ok(assemble(info, memory))
    }

    /// Like [`SweepBuilder::run`], additionally streaming every cell to
    /// a `camdn-sweep-cells/3` JSONL log at `path` (truncated first).
    ///
    /// Each line is written and flushed the moment its cell completes,
    /// so a killed grid leaves every finished cell on disk and
    /// [`SweepBuilder::resume`] can pick up where it stopped. The
    /// returned [`SweepResult`] is identical cell-for-cell to what
    /// [`SweepBuilder::run`] returns.
    pub fn run_streamed(self, path: impl AsRef<Path>) -> Result<SweepResult, EngineError> {
        let budget = self.memory_budget;
        let prepared = self.prepare()?;
        let jsonl = JsonlSink::create(path, &prepared.axes).map_err(|e| EngineError::Io {
            detail: e.to_string(),
        })?;
        let mut memory = MemorySink::new(prepared.axes.clone(), budget);
        let mut tee = Tee {
            jsonl,
            inner: &mut memory,
        };
        let info = prepared.execute(&mut tee, &BTreeSet::new())?;
        tee.jsonl.finish()?;
        Ok(assemble(info, memory))
    }

    /// Resumes a streamed grid from its JSONL cell log: coordinates
    /// recorded as successful in `path` are *not* re-run (their
    /// summaries are parsed back, bit-for-bit); everything else —
    /// missing cells, error cells, a torn final line — runs now and is
    /// appended to the same log. If the log does not exist yet this is
    /// exactly [`SweepBuilder::run_streamed`].
    ///
    /// The log's axis header must match this grid; a log from a
    /// different grid is a structured error, not a silent merge.
    pub fn resume(self, path: impl AsRef<Path>) -> Result<SweepResult, EngineError> {
        let path = path.as_ref();
        if !path.exists() {
            return self.run_streamed(path);
        }
        let budget = self.memory_budget;
        let prepared = self.prepare()?;
        let recorded = sink::read_recorded(path, &prepared.axes)?;
        let mut memory = MemorySink::new(prepared.axes.clone(), budget);
        // Rewrite the log before continuing: header + the valid
        // recorded lines. This compacts away error cells (about to
        // re-run) and a torn final line a kill may have left behind —
        // appending after a torn line would corrupt the next cell. The
        // rewrite goes to a scratch file that atomically renames over
        // the original, so a kill *during resume* can never lose cells
        // that already survived the first kill; fresh cells then append
        // to the renamed log.
        let mut skip = BTreeSet::new();
        let mut replay = Vec::new();
        for (coord, run, wall_s) in recorded {
            if skip.insert(coord) {
                replay.push((
                    coord,
                    CellRun {
                        outcome: Ok(run),
                        wall_s,
                    },
                ));
            }
        }
        let jsonl =
            JsonlSink::rewrite(path, &prepared.axes, &replay).map_err(|e| EngineError::Io {
                detail: e.to_string(),
            })?;
        for (coord, cell) in replay {
            memory.on_cell(coord, cell);
        }
        let mut tee = Tee {
            jsonl,
            inner: &mut memory,
        };
        let info = prepared.execute(&mut tee, &skip)?;
        tee.jsonl.finish()?;
        Ok(assemble(info, memory))
    }

    /// Expands the cross-product and drives every cell into a caller
    /// sink as cells finish, buffering nothing — the path for grids too
    /// large (or too long-lived) for an in-memory [`SweepResult`].
    ///
    /// Returns the grid-level information (axes, thread count, wall
    /// time, plan-cache statistics); everything per-cell went through
    /// the sink.
    pub fn run_with_sink(self, cell_sink: &mut dyn CellSink) -> Result<SweepInfo, EngineError> {
        self.prepare()?.execute(cell_sink, &BTreeSet::new())
    }

    /// Validates the grid and expands the cross-product into cell
    /// builders + coordinates.
    fn prepare(self) -> Result<PreparedGrid, EngineError> {
        if self.workloads.is_empty() {
            return Err(EngineError::InvalidConfig(
                "a sweep needs at least one workload — call .workload(label, ...)".into(),
            ));
        }
        let policies = if self.policies.is_empty() {
            vec![PolicyAxisEntry::Kind(PolicyKind::SharedBaseline)]
        } else {
            self.policies
        };
        let socs = if self.socs.is_empty() {
            vec![SocAxisEntry {
                label: "paper".into(),
                soc: SocConfig::paper_default(),
                mapper: None,
            }]
        } else {
            self.socs
        };
        // Option axes: an empty axis is the singleton "leave the knob
        // at its builder default".
        let caches: Vec<Option<u64>> = if self.cache_bytes.is_empty() {
            vec![None]
        } else {
            self.cache_bytes.into_iter().map(Some).collect()
        };
        let channels: Vec<Option<u32>> = if self.channel_counts.is_empty() {
            vec![None]
        } else {
            self.channel_counts.into_iter().map(Some).collect()
        };
        let qos: Vec<Option<f64>> = if self.qos_scales.is_empty() {
            vec![None]
        } else {
            self.qos_scales.into_iter().map(Some).collect()
        };
        let lookaheads: Vec<Option<f64>> = if self.lookaheads.is_empty() {
            vec![None]
        } else {
            self.lookaheads.into_iter().map(Some).collect()
        };
        let faults: Vec<(String, Option<FaultPlan>)> = if self.fault_plans.is_empty() {
            vec![("none".into(), None)]
        } else {
            self.fault_plans
        };
        let seeds = if self.seeds.is_empty() {
            vec![DEFAULT_SEED]
        } else {
            self.seeds
        };
        let workloads = self.workloads;

        let axes = SweepAxes {
            policies: policies.iter().map(PolicyAxisEntry::label).collect(),
            socs: socs.iter().map(|s| s.label.clone()).collect(),
            caches: caches.iter().map(|c| cache_label(*c)).collect(),
            channels: channels.iter().map(|c| channel_label(*c)).collect(),
            workloads: workloads.iter().map(|(l, _)| l.clone()).collect(),
            qos: qos
                .iter()
                .map(|q| q.map_or_else(|| "closed".into(), |s| format!("{s:.2}x")))
                .collect(),
            lookaheads: lookaheads
                .iter()
                .map(|l| l.map_or_else(|| "default".into(), |f| format!("{f}")))
                .collect(),
            faults: faults.iter().map(|(l, _)| l.clone()).collect(),
            seeds: seeds.clone(),
        };

        let plan_cache = self.shared_plan_cache.then(|| Arc::new(PlanCache::new()));
        let mut builders = Vec::new();
        let mut coords = Vec::new();
        for (pi, policy) in policies.iter().enumerate() {
            for (si, soc) in socs.iter().enumerate() {
                for (ci, cache) in caches.iter().enumerate() {
                    for (hi, channel) in channels.iter().enumerate() {
                        for (wi, (_, workload)) in workloads.iter().enumerate() {
                            for (qi, q) in qos.iter().enumerate() {
                                for (li, lookahead) in lookaheads.iter().enumerate() {
                                    for (fi, (_, plan)) in faults.iter().enumerate() {
                                        for (ei, &seed) in seeds.iter().enumerate() {
                                            let mut b = Simulation::builder()
                                                .workload(workload.clone())
                                                .seed(seed)
                                                .detail(self.detail);
                                            b = match policy {
                                                PolicyAxisEntry::Kind(k) => b.policy(*k),
                                                PolicyAxisEntry::Named(n) => {
                                                    b.policy_named(n.clone())
                                                }
                                            };
                                            let mut cell_soc = match cache {
                                                Some(bytes) => soc.soc.with_cache_bytes(*bytes),
                                                None => soc.soc,
                                            };
                                            if let Some(n) = channel {
                                                cell_soc = cell_soc.with_dram_channels(*n);
                                            }
                                            b = b.soc(cell_soc);
                                            if let Some(m) =
                                                soc.mapper.as_ref().or(self.mapper.as_ref())
                                            {
                                                b = b.mapper(m.clone());
                                            }
                                            if let Some(scale) = q {
                                                b = b.qos_scale(*scale);
                                            }
                                            if let Some(factor) = lookahead {
                                                b = b.lookahead(*factor);
                                            }
                                            if let Some(plan) = plan {
                                                b = b.fault_plan(plan.clone());
                                            }
                                            if let Some(rounds) = self.warmup_rounds {
                                                b = b.warmup_rounds(rounds);
                                            }
                                            if let Some(cycles) = self.epoch_cycles {
                                                b = b.epoch_cycles(cycles);
                                            }
                                            if self.reference_model {
                                                b = b.reference_model(true);
                                            }
                                            if let Some(cache) = &plan_cache {
                                                b = b.plan_cache(Arc::clone(cache));
                                            }
                                            builders.push(b);
                                            coords.push(CellCoord {
                                                policy: pi,
                                                soc: si,
                                                cache: ci,
                                                channel: hi,
                                                workload: wi,
                                                qos: qi,
                                                lookahead: li,
                                                fault: fi,
                                                seed: ei,
                                            });
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }

        Ok(PreparedGrid {
            axes,
            builders,
            coords,
            threads: self.threads,
            plan_cache,
        })
    }
}

/// A validated, expanded grid ready to execute.
struct PreparedGrid {
    axes: SweepAxes,
    builders: Vec<SimulationBuilder>,
    coords: Vec<CellCoord>,
    threads: Option<usize>,
    plan_cache: Option<Arc<PlanCache>>,
}

impl PreparedGrid {
    /// Runs every cell not in `skip`, delivering each to `sink` as it
    /// finishes.
    fn execute(
        self,
        cell_sink: &mut dyn CellSink,
        skip: &BTreeSet<CellCoord>,
    ) -> Result<SweepInfo, EngineError> {
        let mut run_coords = Vec::with_capacity(self.builders.len());
        let mut run_builders = Vec::with_capacity(self.builders.len());
        for (builder, coord) in self.builders.into_iter().zip(&self.coords) {
            if !skip.contains(coord) {
                run_builders.push(builder);
                run_coords.push(*coord);
            }
        }
        let threads = exec::resolve_threads(self.threads, run_builders.len());
        let cells_run = run_builders.len();
        // camdn-lint: allow(wall-clock-in-sim, reason = "reported wall_s bookkeeping only; simulated results never read it and bit-for-bit comparisons exclude it")
        let t0 = Instant::now();
        run_cells_into(run_builders, Some(threads), &mut |i, run| {
            cell_sink.on_cell(run_coords[i], run);
        });
        let wall_s = t0.elapsed().as_secs_f64();
        Ok(SweepInfo {
            axes: self.axes,
            threads,
            wall_s,
            plan_cache: self.plan_cache.map(|c| c.stats()),
            cells_total: self.coords.len(),
            cells_run,
        })
    }
}

/// Streams each cell to the JSONL log, then hands it to the inner sink.
struct Tee<'a> {
    jsonl: JsonlSink,
    inner: &'a mut MemorySink,
}

impl CellSink for Tee<'_> {
    fn on_cell(&mut self, coord: CellCoord, outcome: CellOutcome) {
        self.jsonl.write_cell(coord, &outcome);
        self.inner.on_cell(coord, outcome);
    }
}

/// Grid-level information of a sink-driven sweep (what
/// [`SweepBuilder::run_with_sink`] returns in place of the buffered
/// [`SweepResult`]).
#[derive(Debug)]
pub struct SweepInfo {
    /// Axis labels (cell coordinates index into these).
    pub axes: SweepAxes,
    /// Worker threads the executor actually used.
    pub threads: usize,
    /// Wall-clock seconds for the executed cells.
    pub wall_s: f64,
    /// Hit/miss statistics of the shared mapping-plan cache (`None`
    /// when it was disabled).
    pub plan_cache: Option<PlanCacheStats>,
    /// Total cells of the cross-product.
    pub cells_total: usize,
    /// Cells actually executed (fewer than `cells_total` on resume).
    pub cells_run: usize,
}

fn assemble(info: SweepInfo, memory: MemorySink) -> SweepResult {
    let (cells, detail_dropped) = memory.into_cells();
    SweepResult {
        axes: info.axes,
        cells,
        threads: info.threads,
        wall_s: info.wall_s,
        plan_cache: info.plan_cache,
        detail_dropped,
        cells_resumed: info.cells_total - info.cells_run,
    }
}

fn cache_label(bytes: Option<u64>) -> String {
    match bytes {
        None => "default".into(),
        Some(b) if b.is_multiple_of(MIB) => format!("{}MiB", b / MIB),
        Some(b) => format!("{b}B"),
    }
}

fn channel_label(channels: Option<u32>) -> String {
    match channels {
        None => "default".into(),
        Some(n) => format!("{n}ch"),
    }
}

/// Labelled bursty workloads of rising burst intensity — the bursty
/// analogue of a Poisson rate ramp, for the sweep's workload axis.
///
/// Each entry keeps the burst count and start-to-start gap fixed and
/// ramps the *burst length* (requests per burst), so higher entries
/// deliver the same arrival pattern at higher instantaneous load —
/// the worst case for cache contention, and where p99 knees live.
/// Labels are `"burst@{len}"`.
///
/// ```
/// use camdn_sweep::{bursty_ramp, Sweep};
///
/// let models = vec![camdn_models::zoo::mobilenet_v2()];
/// let grid = Sweep::grid()
///     .workloads(bursty_ramp(&models, [1, 2, 4], 2, 20.0))
///     .run()
///     .expect("ramp grid");
/// assert_eq!(grid.axes.workloads, ["burst@1", "burst@2", "burst@4"]);
/// ```
pub fn bursty_ramp(
    models: &[camdn_models::Model],
    burst_lens: impl IntoIterator<Item = u32>,
    bursts: u32,
    gap_ms: f64,
) -> Vec<(String, Workload)> {
    burst_lens
        .into_iter()
        .map(|len| {
            (
                format!("burst@{len}"),
                Workload::bursty(models.to_vec(), bursts, len, gap_ms),
            )
        })
        .collect()
}

/// Position of a cell on every axis (indices into [`SweepAxes`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CellCoord {
    /// Index into [`SweepAxes::policies`].
    pub policy: usize,
    /// Index into [`SweepAxes::socs`].
    pub soc: usize,
    /// Index into [`SweepAxes::caches`].
    pub cache: usize,
    /// Index into [`SweepAxes::channels`].
    pub channel: usize,
    /// Index into [`SweepAxes::workloads`].
    pub workload: usize,
    /// Index into [`SweepAxes::qos`].
    pub qos: usize,
    /// Index into [`SweepAxes::lookaheads`].
    pub lookahead: usize,
    /// Index into [`SweepAxes::faults`].
    pub fault: usize,
    /// Index into [`SweepAxes::seeds`].
    pub seed: usize,
}

/// One executed grid cell.
#[derive(Debug)]
pub struct SweepCell {
    /// Where the cell sits in the grid.
    pub coord: CellCoord,
    /// The run's output, or the structured error that stopped it.
    pub outcome: Result<RunOutput, EngineError>,
    /// Wall-clock seconds spent building + running this cell.
    pub wall_s: f64,
}

/// Labels of every axis, in cell-coordinate order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepAxes {
    /// Policy labels (display labels for kinds, names for registry
    /// entries).
    pub policies: Vec<String>,
    /// SoC labels as given to the builder.
    pub socs: Vec<String>,
    /// Cache-capacity labels (`"16MiB"`, or `"default"` when the axis
    /// was unset).
    pub caches: Vec<String>,
    /// DRAM channel-count labels (`"8ch"`, or `"default"` when the
    /// axis was unset).
    pub channels: Vec<String>,
    /// Workload labels as given to the builder.
    pub workloads: Vec<String>,
    /// QoS labels (`"0.80x"`, or `"closed"` when the axis was unset).
    pub qos: Vec<String>,
    /// Look-ahead labels (`"0.2"`, or `"default"` when unset).
    pub lookaheads: Vec<String>,
    /// Fault-plan labels (`"none"` when the axis was unset).
    pub faults: Vec<String>,
    /// The seed axis values themselves.
    pub seeds: Vec<u64>,
}

impl SweepAxes {
    /// Number of cells in the cross-product.
    pub fn cell_count(&self) -> usize {
        self.policies.len()
            * self.socs.len()
            * self.caches.len()
            * self.channels.len()
            * self.workloads.len()
            * self.qos.len()
            * self.lookaheads.len()
            * self.faults.len()
            * self.seeds.len()
    }

    /// Row-major index of a coordinate (policies outermost, seeds
    /// innermost).
    pub fn index_of(&self, c: &CellCoord) -> usize {
        (((((((c.policy * self.socs.len() + c.soc) * self.caches.len() + c.cache)
            * self.channels.len()
            + c.channel)
            * self.workloads.len()
            + c.workload)
            * self.qos.len()
            + c.qos)
            * self.lookaheads.len()
            + c.lookahead)
            * self.faults.len()
            + c.fault)
            * self.seeds.len()
            + c.seed
    }

    /// The coordinate at a row-major index (inverse of
    /// [`SweepAxes::index_of`]).
    pub fn coord_of(&self, mut idx: usize) -> CellCoord {
        let seed = idx % self.seeds.len();
        idx /= self.seeds.len();
        let fault = idx % self.faults.len();
        idx /= self.faults.len();
        let lookahead = idx % self.lookaheads.len();
        idx /= self.lookaheads.len();
        let qos = idx % self.qos.len();
        idx /= self.qos.len();
        let workload = idx % self.workloads.len();
        idx /= self.workloads.len();
        let channel = idx % self.channels.len();
        idx /= self.channels.len();
        let cache = idx % self.caches.len();
        idx /= self.caches.len();
        let soc = idx % self.socs.len();
        idx /= self.socs.len();
        CellCoord {
            policy: idx,
            soc,
            cache,
            channel,
            workload,
            qos,
            lookahead,
            fault,
            seed,
        }
    }

    /// True when every component of the coordinate is inside its axis.
    pub fn contains(&self, c: &CellCoord) -> bool {
        c.policy < self.policies.len()
            && c.soc < self.socs.len()
            && c.cache < self.caches.len()
            && c.channel < self.channels.len()
            && c.workload < self.workloads.len()
            && c.qos < self.qos.len()
            && c.lookahead < self.lookaheads.len()
            && c.fault < self.faults.len()
            && c.seed < self.seeds.len()
    }
}

/// Structured result of a grid sweep.
#[derive(Debug)]
pub struct SweepResult {
    /// Axis labels (cell coordinates index into these).
    pub axes: SweepAxes,
    /// Every cell in row-major order (policies outermost, seeds
    /// innermost).
    pub cells: Vec<SweepCell>,
    /// Worker threads the executor actually used.
    pub threads: usize,
    /// Wall-clock seconds for the whole grid (executed cells only —
    /// resumed cells cost nothing).
    pub wall_s: f64,
    /// Hit/miss statistics of the shared mapping-plan cache (`None`
    /// when it was disabled).
    pub plan_cache: Option<PlanCacheStats>,
    /// Cells whose [`RunDetail`](camdn_runtime::RunDetail) was dropped
    /// to honor [`SweepBuilder::memory_budget_bytes`].
    pub detail_dropped: usize,
    /// Cells served from a resumed JSONL log instead of re-running.
    pub cells_resumed: usize,
}

impl SweepResult {
    /// Row-major index of a coordinate (the position of that cell in
    /// [`SweepResult::cells`]).
    pub fn index_of(&self, c: &CellCoord) -> usize {
        self.axes.index_of(c)
    }

    /// The cell at a coordinate, or `None` when any component is past
    /// its axis end (row-major index arithmetic would otherwise alias a
    /// different configuration's cell).
    pub fn cell(&self, coord: CellCoord) -> Option<&SweepCell> {
        if !self.axes.contains(&coord) {
            return None;
        }
        self.cells.get(self.index_of(&coord))
    }

    /// Cells whose runs failed.
    pub fn errors(&self) -> impl Iterator<Item = &SweepCell> {
        self.cells.iter().filter(|c| c.outcome.is_err())
    }

    /// Number of cells that completed successfully.
    pub fn ok_count(&self) -> usize {
        self.cells.iter().filter(|c| c.outcome.is_ok()).count()
    }

    /// Multi-seed statistics: folds the seeds axis into mean / sample
    /// stddev / 95% CI per non-seed coordinate, in row-major order
    /// (see [`SeedAggregate`]).
    pub fn seed_stats(&self) -> Vec<SeedStats> {
        SeedAggregate::of(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use camdn_models::zoo;

    fn one_model() -> Workload {
        Workload::closed(vec![zoo::mobilenet_v2()], 2)
    }

    #[test]
    fn missing_workload_axis_is_an_error() {
        match Sweep::grid().policy(PolicyKind::SharedBaseline).run().err() {
            Some(EngineError::InvalidConfig(msg)) => {
                assert!(msg.contains("workload"), "{msg}")
            }
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
    }

    #[test]
    fn unset_axes_collapse_to_singletons() {
        let r = Sweep::grid().workload("w", one_model()).run().unwrap();
        assert_eq!(r.cells.len(), 1);
        assert_eq!(r.axes.policies, vec!["Baseline".to_string()]);
        assert_eq!(r.axes.caches, vec!["default".to_string()]);
        assert_eq!(r.axes.qos, vec!["closed".to_string()]);
        assert_eq!(r.axes.seeds, vec![DEFAULT_SEED]);
        assert!(r.cells[0].outcome.is_ok());
        // Default cells are summary-only...
        let cell = r.cells[0].outcome.as_ref().unwrap();
        assert!(cell.detail.is_none(), "sweep default is summary-only");
        // ...and the summary matches a plain builder run bit-for-bit.
        let serial = Simulation::builder().workload(one_model()).run().unwrap();
        assert_eq!(cell.summary, serial.summary);
        assert_eq!(cell.policy, serial.policy);
    }

    #[test]
    fn detailed_grid_matches_builder_runs_exactly() {
        let r = Sweep::grid()
            .workload("w", one_model())
            .detail(DetailLevel::Tasks)
            .run()
            .unwrap();
        let serial = Simulation::builder().workload(one_model()).run().unwrap();
        assert_eq!(*r.cells[0].outcome.as_ref().unwrap(), serial);
    }

    #[test]
    fn cross_product_order_is_row_major() {
        let r = Sweep::grid()
            .policies([PolicyKind::SharedBaseline, PolicyKind::CamdnFull])
            .cache_bytes([8 * MIB, 16 * MIB])
            .workload("w", one_model())
            .seeds([1, 2, 3])
            .run()
            .unwrap();
        assert_eq!(r.cells.len(), 2 * 2 * 3);
        for (i, cell) in r.cells.iter().enumerate() {
            assert_eq!(r.index_of(&cell.coord), i, "cell {i} out of order");
            assert_eq!(r.axes.coord_of(i), cell.coord, "coord_of must invert");
        }
        // Seeds innermost, policies outermost.
        assert_eq!(
            r.cells[0].coord,
            CellCoord {
                policy: 0,
                soc: 0,
                cache: 0,
                channel: 0,
                workload: 0,
                qos: 0,
                lookahead: 0,
                fault: 0,
                seed: 0
            }
        );
        assert_eq!(r.cells[1].coord.seed, 1);
        assert_eq!(r.cells[3].coord.cache, 1);
        assert_eq!(r.cells[6].coord.policy, 1);
        // cell() agrees with the cells order, and an out-of-range
        // coordinate is None, not an aliased neighbor.
        assert_eq!(r.cell(r.cells[6].coord).unwrap().coord, r.cells[6].coord);
        let past_seed_axis = CellCoord {
            seed: 3,
            ..r.cells[0].coord
        };
        assert!(r.cell(past_seed_axis).is_none());
    }

    #[test]
    fn named_policies_join_the_axis() {
        let r = Sweep::grid()
            .policy_named("camdn-full")
            .workload("w", one_model())
            .detail(DetailLevel::Tasks)
            .run()
            .unwrap();
        assert_eq!(r.axes.policies, vec!["camdn-full".to_string()]);
        let by_name = r.cells[0].outcome.as_ref().unwrap();
        let by_kind = Simulation::builder()
            .policy(PolicyKind::CamdnFull)
            .workload(one_model())
            .run()
            .unwrap();
        assert_eq!(*by_name, by_kind);
    }

    #[test]
    fn unknown_named_policy_is_a_cell_error_not_a_grid_error() {
        let r = Sweep::grid()
            .policy(PolicyKind::SharedBaseline)
            .policy_named("no-such-policy")
            .workload("w", one_model())
            .run()
            .unwrap();
        assert!(r.cells[0].outcome.is_ok());
        assert_eq!(
            r.cells[1].outcome.as_ref().err(),
            Some(&EngineError::UnknownPolicy("no-such-policy".into()))
        );
    }

    #[test]
    fn memory_budget_zero_drops_every_detail_block() {
        let r = Sweep::grid()
            .workload("w", one_model())
            .seeds([1, 2, 3])
            .detail(DetailLevel::Tasks)
            .memory_budget_bytes(0)
            .run()
            .unwrap();
        assert_eq!(r.detail_dropped, 3);
        assert!(r
            .cells
            .iter()
            .all(|c| c.outcome.as_ref().unwrap().detail.is_none()));
        // Summaries survive the downgrade untouched.
        let serial = Simulation::builder()
            .workload(one_model())
            .seed(1)
            .run()
            .unwrap();
        assert_eq!(r.cells[0].outcome.as_ref().unwrap().summary, serial.summary);
    }

    #[test]
    fn generous_memory_budget_keeps_all_detail() {
        let r = Sweep::grid()
            .workload("w", one_model())
            .seeds([1, 2])
            .detail(DetailLevel::Tasks)
            .memory_budget_bytes(1 << 20)
            .run()
            .unwrap();
        assert_eq!(r.detail_dropped, 0);
        assert!(r
            .cells
            .iter()
            .all(|c| c.outcome.as_ref().unwrap().detail.is_some()));
    }

    #[test]
    fn cache_labels_are_readable() {
        assert_eq!(cache_label(Some(16 * MIB)), "16MiB");
        assert_eq!(cache_label(Some(1000)), "1000B");
        assert_eq!(cache_label(None), "default");
        assert_eq!(channel_label(Some(8)), "8ch");
        assert_eq!(channel_label(None), "default");
    }

    #[test]
    fn channel_axis_cells_match_builder_runs_exactly() {
        let r = Sweep::grid()
            .workload("w", one_model())
            .channel_counts([2, 8])
            .detail(DetailLevel::Tasks)
            .run()
            .unwrap();
        assert_eq!(r.axes.channels, vec!["2ch".to_string(), "8ch".to_string()]);
        assert_eq!(r.cells.len(), 2);
        for (i, &n) in [2u32, 8].iter().enumerate() {
            let cell = r.cells[i].outcome.as_ref().unwrap();
            let serial = Simulation::builder()
                .soc(SocConfig::paper_default().with_dram_channels(n))
                .workload(one_model())
                .run()
                .unwrap();
            assert_eq!(*cell, serial, "channel cell {n}ch");
        }
        // More channels = more aggregate bandwidth: the 8-channel run
        // must not be slower than the 2-channel run.
        let lat = |i: usize| r.cells[i].outcome.as_ref().unwrap().summary.avg_latency_ms;
        assert!(
            lat(1) <= lat(0),
            "8ch ({:.3} ms) should not be slower than 2ch ({:.3} ms)",
            lat(1),
            lat(0)
        );
    }

    #[test]
    fn fault_axis_cells_match_builder_runs_exactly() {
        use camdn_runtime::{FaultEvent, FaultKind};
        let plan = FaultPlan::new(vec![
            FaultEvent {
                at: 200_000,
                kind: FaultKind::NpuDown(0),
            },
            FaultEvent {
                at: 2_000_000,
                kind: FaultKind::NpuUp(0),
            },
        ])
        .expect("valid plan");
        let r = Sweep::grid()
            .workload("w", one_model())
            .fault_plan("none", None)
            .fault_plan("outage", Some(plan.clone()))
            .detail(DetailLevel::Tasks)
            .run()
            .unwrap();
        assert_eq!(
            r.axes.faults,
            vec!["none".to_string(), "outage".to_string()]
        );
        assert_eq!(r.cells.len(), 2);
        assert_eq!(r.cells[1].coord.fault, 1);
        // The fault-free cell is bit-for-bit a plain builder run...
        let clean = Simulation::builder().workload(one_model()).run().unwrap();
        assert_eq!(*r.cells[0].outcome.as_ref().unwrap(), clean);
        // ...and the faulted cell matches a builder run with the plan.
        let faulted = Simulation::builder()
            .workload(one_model())
            .fault_plan(plan)
            .run()
            .unwrap();
        assert_eq!(*r.cells[1].outcome.as_ref().unwrap(), faulted);
    }

    #[test]
    fn bursty_ramp_generates_rising_intensity_workloads() {
        let models = vec![zoo::mobilenet_v2()];
        let ramp = bursty_ramp(&models, [1, 2, 4], 3, 25.0);
        assert_eq!(ramp.len(), 3);
        for ((label, w), expect_len) in ramp.iter().zip([1u32, 2, 4]) {
            assert_eq!(label, &format!("burst@{expect_len}"));
            match w.arrival() {
                camdn_runtime::ArrivalProcess::Bursty {
                    bursts,
                    burst_len,
                    gap_ms,
                } => {
                    assert_eq!(bursts, 3);
                    assert_eq!(burst_len, expect_len);
                    assert_eq!(gap_ms, 25.0);
                }
                other => panic!("expected bursty arrivals, got {other:?}"),
            }
        }
    }
}
