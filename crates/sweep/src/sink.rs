//! Cell sinks: streaming collection of sweep results.
//!
//! The original sweep buffered every cell until the whole grid
//! finished, which made very large grids (hundreds of tenants × many
//! seeds) memory-unbounded and non-resumable. A [`CellSink`] receives
//! each cell *as it finishes* instead; the executor drives it from the
//! worker threads (serialized — a sink never sees two cells at once).
//!
//! Three sinks ship with the crate:
//!
//! * [`MemorySink`] — today's in-memory [`SweepResult`], now
//!   summary-only by default and bounded by an optional per-grid
//!   detail-memory budget;
//! * [`JsonlSink`] — a streamed `camdn-sweep-cells/3` writer: one JSON
//!   line per cell (summary scalars + the compact latency tail),
//!   written the moment the cell completes, so a killed grid leaves a
//!   valid log behind and
//!   [`SweepBuilder::resume`](crate::SweepBuilder::resume) can skip the
//!   already-recorded coordinates;
//! * [`SeedAggregate`] — folds the seeds axis into mean / sample
//!   stddev / 95% Student-t confidence intervals per non-seed cell,
//!   pooling the per-seed latency tails by histogram merge so
//!   percentiles come from the pooled samples — the multi-seed
//!   statistics the scaling studies report.

use crate::jsonl::{esc, jnum, parse_flat_object, JsonVal};
use crate::{CellCoord, SweepAxes, SweepCell};
use camdn_common::stats::Welford;
use camdn_runtime::{
    EngineError, LatencyTail, RunOutput, RunSummary, LATENCY_HIST_BUCKETS, LATENCY_HIST_EDGES,
};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io::Write as _;
use std::path::{Path, PathBuf};

pub use crate::exec::CellRun;

/// Outcome of one finished cell, as delivered to a [`CellSink`]
/// (the executor's [`CellRun`] under the name the sink API uses).
pub type CellOutcome = CellRun;

/// A consumer of finished sweep cells.
///
/// The executor calls [`CellSink::on_cell`] once per cell, in
/// *completion* order (non-deterministic under more than one worker
/// thread); the coordinate identifies the cell. Calls are serialized —
/// implementations need no locking of their own, but must be `Send`
/// because the call comes from a worker thread.
pub trait CellSink: Send {
    /// Receives one finished cell.
    fn on_cell(&mut self, coord: CellCoord, outcome: CellOutcome);
}

// ------------------------------------------------------------------
// In-memory sink
// ------------------------------------------------------------------

/// Collects cells into row-major order for a [`SweepResult`], bounding
/// the memory spent on per-cell [`RunDetail`](camdn_runtime::RunDetail)
/// blocks.
///
/// When a `memory_budget_bytes` is set and a cell's detail would push
/// the running total past it, that cell is downgraded to its summary
/// (the detail block is dropped; the summary is never touched). Which
/// cells are downgraded depends on completion order; summaries — and
/// therefore every aggregate a study reads — are deterministic
/// regardless.
///
/// [`SweepResult`]: crate::SweepResult
#[derive(Debug)]
pub struct MemorySink {
    axes: SweepAxes,
    cells: Vec<Option<SweepCell>>,
    budget: Option<u64>,
    detail_bytes: u64,
    detail_dropped: usize,
}

impl MemorySink {
    /// Creates a sink for a grid with the given axes (one slot per
    /// coordinate of the cross-product) and optional detail budget.
    pub fn new(axes: SweepAxes, memory_budget_bytes: Option<u64>) -> Self {
        let slots = axes.cell_count();
        MemorySink {
            axes,
            cells: (0..slots).map(|_| None).collect(),
            budget: memory_budget_bytes,
            detail_bytes: 0,
            detail_dropped: 0,
        }
    }

    /// Detail bytes currently retained.
    pub fn detail_bytes(&self) -> u64 {
        self.detail_bytes
    }

    /// Cells whose detail was dropped to honor the budget.
    pub fn detail_dropped(&self) -> usize {
        self.detail_dropped
    }

    /// Consumes the sink: the cells in row-major order (missing slots —
    /// a cell the executor never delivered — become structured errors)
    /// plus the number of detail blocks dropped for the budget.
    pub fn into_cells(self) -> (Vec<SweepCell>, usize) {
        let dropped = self.detail_dropped;
        let axes = self.axes;
        let cells = self
            .cells
            .into_iter()
            .enumerate()
            .map(|(i, slot)| {
                slot.unwrap_or_else(|| SweepCell {
                    coord: axes.coord_of(i),
                    outcome: Err(EngineError::Panicked {
                        detail: "worker thread lost this cell".into(),
                    }),
                    wall_s: 0.0,
                })
            })
            .collect();
        (cells, dropped)
    }
}

impl CellSink for MemorySink {
    fn on_cell(&mut self, coord: CellCoord, mut outcome: CellOutcome) {
        if let Ok(run) = &mut outcome.outcome {
            if let (Some(budget), Some(detail)) = (self.budget, run.detail.as_ref()) {
                let bytes = detail.approx_bytes();
                if self.detail_bytes + bytes > budget {
                    run.detail = None;
                    self.detail_dropped += 1;
                } else {
                    self.detail_bytes += bytes;
                }
            }
        }
        let idx = self.axes.index_of(&coord);
        self.cells[idx] = Some(SweepCell {
            coord,
            outcome: outcome.outcome,
            wall_s: outcome.wall_s,
        });
    }
}

// ------------------------------------------------------------------
// JSONL streaming sink
// ------------------------------------------------------------------

/// Streamed cell log: schema `camdn-sweep-cells/3`.
///
/// The first line is a header naming the schema, every axis, and the
/// latency-histogram bucket edges; each subsequent line is one cell —
/// its coordinate, wall time, and either the policy label +
/// [`RunSummary`] scalars (including the fault counters
/// `shed_requests` / `retried_inferences` / `dropped_inferences`)
/// plus the compact latency tail (`"ok": true`) or the error text.
/// Lines are written unbuffered the moment the cell completes, so a
/// killed grid leaves every finished cell on disk; a torn final line
/// (kill mid-write) is ignored by the reader and the cell simply
/// re-runs on resume.
///
/// Summary floats are serialized with Rust's shortest-roundtrip
/// `Display`, so a parsed line reproduces the in-memory summary —
/// including its [`LatencyTail`] (integer bucket counts + min/max
/// cycles) — bit-for-bit.
///
/// Logs written by the previous schemas are still accepted by
/// [`SweepBuilder::resume`](crate::SweepBuilder::resume) when the
/// axes they could not express are the unset defaults:
/// `camdn-sweep-cells/2` (no fault axis, no fault counters) when the
/// fault axis is the `"none"` singleton — its cells resume with
/// zeroed counters — and `camdn-sweep-cells/1` (additionally no
/// channel axis, no latency tail) when the channel axis is also the
/// unset default — its cells resume with an *empty* tail
/// (percentiles read 0.0). Either way the rewritten log is upgraded
/// to `/3`.
#[derive(Debug)]
pub struct JsonlSink {
    file: std::fs::File,
    path: PathBuf,
    error: Option<String>,
}

/// Schema identifier of the cell-log header line.
pub const CELLS_SCHEMA: &str = "camdn-sweep-cells/3";

/// Previous cell-log schema (no fault axis or fault counters); still
/// accepted on resume.
pub const CELLS_SCHEMA_V2: &str = "camdn-sweep-cells/2";

/// Oldest cell-log schema (summary scalars only, no channel axis);
/// still accepted on resume.
pub const CELLS_SCHEMA_V1: &str = "camdn-sweep-cells/1";

/// Which writer produced a cell log being resumed (detected from its
/// header line).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LogVersion {
    /// `camdn-sweep-cells/1`: no channel coordinate, no latency tail,
    /// no fault coordinate or counters.
    V1,
    /// `camdn-sweep-cells/2`: channel + tail, but no fault coordinate
    /// or counters.
    V2,
    /// The current schema.
    V3,
}

impl JsonlSink {
    /// Creates (truncates) the log at `path` and writes the header line
    /// for `axes`.
    pub fn create(path: impl AsRef<Path>, axes: &SweepAxes) -> std::io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let mut file = std::fs::File::create(&path)?;
        file.write_all(header_line(axes).as_bytes())?;
        file.write_all(b"\n")?;
        Ok(JsonlSink {
            file,
            path,
            error: None,
        })
    }

    /// Rewrites the log at `path` as header + the given cells, then
    /// opens it for appending. The rewrite goes through a scratch file
    /// that is atomically renamed over the original, so the previously
    /// persisted cells can never be lost to a kill mid-rewrite.
    pub(crate) fn rewrite(
        path: impl AsRef<Path>,
        axes: &SweepAxes,
        cells: &[(CellCoord, CellOutcome)],
    ) -> std::io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let mut tmp = path.clone().into_os_string();
        tmp.push(".rewrite");
        let tmp = PathBuf::from(tmp);
        {
            let mut sink = JsonlSink::create(&tmp, axes)?;
            for (coord, cell) in cells {
                sink.write_cell(*coord, cell);
            }
            if let Some(detail) = sink.error {
                return Err(std::io::Error::other(detail));
            }
            sink.file.sync_all()?;
        }
        std::fs::rename(&tmp, &path)?;
        let file = std::fs::OpenOptions::new().append(true).open(&path)?;
        Ok(JsonlSink {
            file,
            path,
            error: None,
        })
    }

    /// Writes one cell line. I/O failures are recorded and re-surfaced
    /// by [`JsonlSink::finish`] (a sink callback has nowhere to return
    /// an error mid-grid).
    pub fn write_cell(&mut self, coord: CellCoord, outcome: &CellOutcome) {
        if self.error.is_some() {
            return;
        }
        let mut line = cell_line(coord, outcome);
        line.push('\n');
        if let Err(e) = self.file.write_all(line.as_bytes()) {
            self.error = Some(format!("writing {}: {e}", self.path.display()));
        }
    }

    /// Flushes and closes the log, surfacing any write error deferred
    /// during the grid.
    pub fn finish(mut self) -> Result<(), EngineError> {
        if self.error.is_none() {
            if let Err(e) = self.file.flush() {
                self.error = Some(format!("flushing {}: {e}", self.path.display()));
            }
        }
        match self.error {
            None => Ok(()),
            Some(detail) => Err(EngineError::Io { detail }),
        }
    }
}

impl CellSink for JsonlSink {
    fn on_cell(&mut self, coord: CellCoord, outcome: CellOutcome) {
        self.write_cell(coord, &outcome);
    }
}

/// The header line of a cell log for `axes`.
pub(crate) fn header_line(axes: &SweepAxes) -> String {
    let seeds: Vec<String> = axes.seeds.iter().map(u64::to_string).collect();
    let edges: Vec<String> = LATENCY_HIST_EDGES.iter().map(u64::to_string).collect();
    format!(
        "{{\"schema\": \"{}\", \"policies\": {}, \"socs\": {}, \"caches\": {}, \
         \"channels\": {}, \"workloads\": {}, \"qos\": {}, \"lookaheads\": {}, \
         \"faults\": {}, \"seeds\": [{}], \"hist_edges\": [{}]}}",
        CELLS_SCHEMA,
        crate::report::str_array(&axes.policies),
        crate::report::str_array(&axes.socs),
        crate::report::str_array(&axes.caches),
        crate::report::str_array(&axes.channels),
        crate::report::str_array(&axes.workloads),
        crate::report::str_array(&axes.qos),
        crate::report::str_array(&axes.lookaheads),
        crate::report::str_array(&axes.faults),
        seeds.join(", "),
        edges.join(", "),
    )
}

/// The header line the retired `camdn-sweep-cells/2` schema wrote for
/// these axes (no fault axis) — used to accept old logs on resume.
/// Only meaningful when the grid's fault axis is the unset singleton,
/// since a v2 grid could not express one.
pub(crate) fn header_line_v2(axes: &SweepAxes) -> String {
    let seeds: Vec<String> = axes.seeds.iter().map(u64::to_string).collect();
    let edges: Vec<String> = LATENCY_HIST_EDGES.iter().map(u64::to_string).collect();
    format!(
        "{{\"schema\": \"{}\", \"policies\": {}, \"socs\": {}, \"caches\": {}, \
         \"channels\": {}, \"workloads\": {}, \"qos\": {}, \"lookaheads\": {}, \
         \"seeds\": [{}], \"hist_edges\": [{}]}}",
        CELLS_SCHEMA_V2,
        crate::report::str_array(&axes.policies),
        crate::report::str_array(&axes.socs),
        crate::report::str_array(&axes.caches),
        crate::report::str_array(&axes.channels),
        crate::report::str_array(&axes.workloads),
        crate::report::str_array(&axes.qos),
        crate::report::str_array(&axes.lookaheads),
        seeds.join(", "),
        edges.join(", "),
    )
}

/// The header line the retired `camdn-sweep-cells/1` schema wrote for
/// these axes (no channel axis, no histogram edges) — used to accept
/// old logs on resume. Only meaningful when the grid's channel axis is
/// the unset singleton, since a v1 grid could not express one.
pub(crate) fn header_line_v1(axes: &SweepAxes) -> String {
    let seeds: Vec<String> = axes.seeds.iter().map(u64::to_string).collect();
    format!(
        "{{\"schema\": \"{}\", \"policies\": {}, \"socs\": {}, \"caches\": {}, \
         \"workloads\": {}, \"qos\": {}, \"lookaheads\": {}, \"seeds\": [{}]}}",
        CELLS_SCHEMA_V1,
        crate::report::str_array(&axes.policies),
        crate::report::str_array(&axes.socs),
        crate::report::str_array(&axes.caches),
        crate::report::str_array(&axes.workloads),
        crate::report::str_array(&axes.qos),
        crate::report::str_array(&axes.lookaheads),
        seeds.join(", "),
    )
}

/// One cell as a JSONL line (no trailing newline).
pub(crate) fn cell_line(coord: CellCoord, outcome: &CellOutcome) -> String {
    let mut s = String::with_capacity(384);
    let _ = write!(
        s,
        "{{\"policy\": {}, \"soc\": {}, \"cache\": {}, \"channel\": {}, \"workload\": {}, \
         \"qos\": {}, \"lookahead\": {}, \"fault\": {}, \"seed\": {}, \"wall_s\": {}, ",
        coord.policy,
        coord.soc,
        coord.cache,
        coord.channel,
        coord.workload,
        coord.qos,
        coord.lookahead,
        coord.fault,
        coord.seed,
        jnum(outcome.wall_s),
    );
    match &outcome.outcome {
        Ok(run) => {
            let m = &run.summary;
            let tail = &m.latency_tail;
            let counts: Vec<String> = tail.counts().iter().map(u64::to_string).collect();
            let _ = write!(
                s,
                "\"ok\": true, \"label\": \"{}\", \"tasks\": {}, \"inferences\": {}, \
                 \"cache_hit_rate\": {}, \"avg_latency_ms\": {}, \"mem_mb_per_model\": {}, \
                 \"makespan_ms\": {}, \"sla_rate\": {}, \"multicast_saved_mb\": {}, \
                 \"shed_requests\": {}, \"retried_inferences\": {}, \
                 \"dropped_inferences\": {}, \
                 \"p50_ms\": {}, \"p90_ms\": {}, \"p95_ms\": {}, \"p99_ms\": {}, \
                 \"p999_ms\": {}, \"lat_counts\": [{}], \"lat_min_cycles\": {}, \
                 \"lat_max_cycles\": {}}}",
                esc(&run.policy),
                m.tasks,
                m.inferences,
                jnum(m.cache_hit_rate),
                jnum(m.avg_latency_ms),
                jnum(m.mem_mb_per_model),
                jnum(m.makespan_ms),
                jnum(m.sla_rate),
                jnum(m.multicast_saved_mb),
                m.shed_requests,
                m.retried_inferences,
                m.dropped_inferences,
                jnum(tail.p50_ms()),
                jnum(tail.p90_ms()),
                jnum(tail.p95_ms()),
                jnum(tail.p99_ms()),
                jnum(tail.p999_ms()),
                counts.join(", "),
                tail.min_cycles().unwrap_or(0),
                tail.max_cycles().unwrap_or(0),
            );
        }
        Err(e) => {
            let _ = write!(s, "\"ok\": false, \"error\": \"{}\"}}", esc(&e.to_string()));
        }
    }
    s
}

/// Reads the successfully recorded cells of a log, validating that its
/// header matches `axes` (a log from a different grid must not be
/// silently merged). Error cells and torn trailing lines are skipped —
/// resume re-runs them.
///
/// A header in a retired format is accepted when the axes it could
/// not express are the unset defaults: `/2` needs the fault axis to
/// be the `"none"` singleton, `/1` additionally needs the channel
/// axis to be the unset singleton. Their cells parse with zeroed
/// fault counters (and, for `/1`, an empty latency tail).
pub(crate) fn read_recorded(
    path: impl AsRef<Path>,
    axes: &SweepAxes,
) -> Result<Vec<(CellCoord, RunOutput, f64)>, EngineError> {
    let path = path.as_ref();
    let text = std::fs::read_to_string(path).map_err(|e| EngineError::Io {
        detail: format!("reading {}: {e}", path.display()),
    })?;
    let mut lines = text.lines();
    let header = lines.next().unwrap_or("").trim();
    let no_fault_axis = axes.faults == ["none"];
    let version = if header == header_line(axes) {
        LogVersion::V3
    } else if header == header_line_v2(axes) && no_fault_axis {
        LogVersion::V2
    } else if header == header_line_v1(axes) && no_fault_axis && axes.channels == ["default"] {
        LogVersion::V1
    } else {
        return Err(EngineError::InvalidConfig(format!(
            "{} belongs to a different grid (axes header mismatch); \
             delete it or point the sweep elsewhere",
            path.display()
        )));
    };
    let mut out = Vec::new();
    for line in lines {
        // A torn final line (killed mid-write) parses as None: skip it
        // and let the cell re-run.
        if let Some(cell) = parse_cell_line(line, axes, version) {
            out.push(cell);
        }
    }
    Ok(out)
}

/// Parses one cell line back into its coordinate + summary-only
/// [`RunOutput`] + recorded wall seconds. `None` for error cells,
/// malformed (torn) lines, or out-of-range coordinates. Pre-`/3`
/// lines have no fault coordinate (it reads 0) and no fault counters
/// (they read 0); `/1` lines additionally have no channel coordinate
/// and no latency tail (it reads empty).
fn parse_cell_line(
    line: &str,
    axes: &SweepAxes,
    version: LogVersion,
) -> Option<(CellCoord, RunOutput, f64)> {
    let fields = parse_flat_object(line)?;
    let num = |key: &str| fields.iter().find(|(k, _)| k.as_str() == key)?.1.as_f64();
    let coord = CellCoord {
        policy: num("policy")? as usize,
        soc: num("soc")? as usize,
        cache: num("cache")? as usize,
        channel: if version == LogVersion::V1 {
            0
        } else {
            num("channel")? as usize
        },
        workload: num("workload")? as usize,
        qos: num("qos")? as usize,
        lookahead: num("lookahead")? as usize,
        fault: if version == LogVersion::V3 {
            num("fault")? as usize
        } else {
            0
        },
        seed: num("seed")? as usize,
    };
    if !axes.contains(&coord) {
        return None;
    }
    let ok = fields
        .iter()
        .find(|(k, _)| k.as_str() == "ok")
        .and_then(|(_, v)| v.as_bool())?;
    if !ok {
        return None;
    }
    let label = match &fields.iter().find(|(k, _)| k.as_str() == "label")?.1 {
        JsonVal::Str(s) => s.clone(),
        _ => return None,
    };
    // Exact u64 parse (cycle counts must roundtrip bit-for-bit; the
    // f64 path would round above 2^53).
    let int = |key: &str| match &fields.iter().find(|(k, _)| k.as_str() == key)?.1 {
        JsonVal::Num(s) => s.parse::<u64>().ok(),
        _ => None,
    };
    let latency_tail = if version == LogVersion::V1 {
        LatencyTail::new()
    } else {
        let counts_field = &fields.iter().find(|(k, _)| k.as_str() == "lat_counts")?.1;
        let raw = match counts_field {
            JsonVal::Arr(items) => items,
            _ => return None,
        };
        if raw.len() != LATENCY_HIST_BUCKETS {
            return None;
        }
        let mut counts = [0u64; LATENCY_HIST_BUCKETS];
        for (slot, item) in counts.iter_mut().zip(raw) {
            *slot = item.parse().ok()?;
        }
        LatencyTail::from_parts(counts, int("lat_min_cycles")?, int("lat_max_cycles")?)
    };
    // Fault counters: required in /3 lines, absent (zero) before.
    let counter = |key: &str| match version {
        LogVersion::V3 => int(key),
        LogVersion::V1 | LogVersion::V2 => Some(0),
    };
    let summary = RunSummary {
        tasks: num("tasks")? as usize,
        inferences: num("inferences")? as usize,
        cache_hit_rate: num("cache_hit_rate")?,
        avg_latency_ms: num("avg_latency_ms")?,
        mem_mb_per_model: num("mem_mb_per_model")?,
        makespan_ms: num("makespan_ms")?,
        sla_rate: num("sla_rate")?,
        multicast_saved_mb: num("multicast_saved_mb")?,
        shed_requests: counter("shed_requests")?,
        retried_inferences: counter("retried_inferences")?,
        dropped_inferences: counter("dropped_inferences")?,
        latency_tail,
    };
    Some((
        coord,
        RunOutput {
            policy: label,
            summary,
            detail: None,
        },
        num("wall_s")?,
    ))
}

// ------------------------------------------------------------------
// Multi-seed statistics sink
// ------------------------------------------------------------------

/// Mean / sample stddev / 95% CI half-width of one metric over the
/// seeds of a cell group.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricStats {
    /// Arithmetic mean over seeds.
    pub mean: f64,
    /// Sample standard deviation (0.0 with fewer than two seeds).
    pub stddev: f64,
    /// Half-width of the two-sided 95% Student-t confidence interval
    /// of the mean (0.0 with fewer than two seeds).
    pub ci95: f64,
}

impl From<&Welford> for MetricStats {
    fn from(w: &Welford) -> Self {
        MetricStats {
            mean: w.mean(),
            stddev: w.stddev(),
            ci95: w.ci95(),
        }
    }
}

/// Multi-seed statistics of one non-seed coordinate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeedStats {
    /// The group's coordinate with `seed` normalized to 0.
    pub coord: CellCoord,
    /// Successful runs folded into the statistics.
    pub n: u64,
    /// Failed cells in the group (excluded from the statistics).
    pub errors: u64,
    /// Stats over [`RunSummary::avg_latency_ms`].
    pub avg_latency_ms: MetricStats,
    /// Stats over [`RunSummary::mem_mb_per_model`].
    pub mem_mb_per_model: MetricStats,
    /// Stats over [`RunSummary::cache_hit_rate`].
    pub cache_hit_rate: MetricStats,
    /// Stats over [`RunSummary::makespan_ms`].
    pub makespan_ms: MetricStats,
    /// Stats over [`RunSummary::sla_rate`].
    pub sla_rate: MetricStats,
    /// The group's per-seed [`RunSummary::latency_tail`]s pooled by
    /// histogram merge: `latency_tail.p99_ms()` is the p99 of *all*
    /// inferences across the seeds, not an average of per-seed p99s
    /// (percentiles do not average — a seed with a long tail would be
    /// washed out).
    pub latency_tail: LatencyTail,
}

#[derive(Debug, Default)]
struct SeedGroup {
    errors: u64,
    lat: Welford,
    mem: Welford,
    hit: Welford,
    makespan: Welford,
    sla: Welford,
    tail: LatencyTail,
}

/// Folds the seeds axis into per-group mean / stddev / 95% CI as cells
/// arrive: two cells belong to the same group when every coordinate
/// but `seed` matches.
///
/// Aggregation is order-insensitive up to floating-point associativity
/// of Welford updates over the (deterministic) per-seed summaries; for
/// exact reproducibility fold a finished [`SweepResult`] with
/// [`SeedAggregate::of`], which visits cells in row-major order.
///
/// [`SweepResult`]: crate::SweepResult
#[derive(Debug, Default)]
pub struct SeedAggregate {
    groups: BTreeMap<CellCoord, SeedGroup>,
}

impl SeedAggregate {
    /// Creates an empty aggregate.
    pub fn new() -> Self {
        SeedAggregate::default()
    }

    /// Folds a whole in-memory sweep (cells visited in row-major
    /// order) and returns the statistics.
    pub fn of(result: &crate::SweepResult) -> Vec<SeedStats> {
        let mut agg = SeedAggregate::new();
        for cell in &result.cells {
            match &cell.outcome {
                Ok(run) => agg.fold(cell.coord, &run.summary),
                Err(_) => agg.fold_error(cell.coord),
            }
        }
        agg.stats()
    }

    /// Folds one successful cell's summary into its group (scalar
    /// Welford updates, plus a histogram merge of the latency tail).
    pub fn fold(&mut self, coord: CellCoord, summary: &RunSummary) {
        let g = self.groups.entry(group_key(coord)).or_default();
        g.lat.record(summary.avg_latency_ms);
        g.mem.record(summary.mem_mb_per_model);
        g.hit.record(summary.cache_hit_rate);
        g.makespan.record(summary.makespan_ms);
        g.sla.record(summary.sla_rate);
        g.tail.merge(&summary.latency_tail);
    }

    /// Counts one failed cell against its group.
    pub fn fold_error(&mut self, coord: CellCoord) {
        self.groups.entry(group_key(coord)).or_default().errors += 1;
    }

    /// The per-group statistics, sorted in row-major coordinate order.
    pub fn stats(&self) -> Vec<SeedStats> {
        let mut out: Vec<SeedStats> = self
            .groups
            .iter()
            .map(|(coord, g)| SeedStats {
                coord: *coord,
                n: g.lat.count(),
                errors: g.errors,
                avg_latency_ms: (&g.lat).into(),
                mem_mb_per_model: (&g.mem).into(),
                cache_hit_rate: (&g.hit).into(),
                makespan_ms: (&g.makespan).into(),
                sla_rate: (&g.sla).into(),
                latency_tail: g.tail,
            })
            .collect();
        out.sort_by_key(|s| {
            let c = s.coord;
            (
                c.policy,
                c.soc,
                c.cache,
                c.channel,
                c.workload,
                c.qos,
                c.lookahead,
                c.fault,
            )
        });
        out
    }
}

impl CellSink for SeedAggregate {
    fn on_cell(&mut self, coord: CellCoord, outcome: CellOutcome) {
        match &outcome.outcome {
            Ok(run) => self.fold(coord, &run.summary),
            Err(_) => self.fold_error(coord),
        }
    }
}

fn group_key(mut coord: CellCoord) -> CellCoord {
    coord.seed = 0;
    coord
}

#[cfg(test)]
mod tests {
    use super::*;

    fn coord(seed: usize) -> CellCoord {
        CellCoord {
            policy: 1,
            soc: 0,
            cache: 2,
            channel: 0,
            workload: 0,
            qos: 0,
            lookahead: 0,
            fault: 0,
            seed,
        }
    }

    fn summary(lat: f64) -> RunSummary {
        let mut latency_tail = LatencyTail::new();
        latency_tail.record(camdn_common::types::ms_to_cycles(lat));
        RunSummary {
            tasks: 2,
            inferences: 4,
            cache_hit_rate: lat / 100.0,
            avg_latency_ms: lat,
            mem_mb_per_model: 2.0 * lat,
            makespan_ms: 10.0 * lat,
            sla_rate: 1.0,
            multicast_saved_mb: 0.0,
            shed_requests: 0,
            retried_inferences: 0,
            dropped_inferences: 0,
            latency_tail,
        }
    }

    #[test]
    fn seed_aggregate_matches_hand_computed_fixture() {
        // Latencies {10, 12, 14} over three seeds: mean 12, sample
        // stddev 2, CI95 half-width t(0.975, 2) * 2 / sqrt(3).
        let mut agg = SeedAggregate::new();
        for (seed, lat) in [(0, 10.0), (1, 12.0), (2, 14.0)] {
            agg.fold(coord(seed), &summary(lat));
        }
        let stats = agg.stats();
        assert_eq!(stats.len(), 1, "one non-seed group");
        let s = &stats[0];
        assert_eq!(s.coord.seed, 0);
        assert_eq!((s.coord.policy, s.coord.cache), (1, 2));
        assert_eq!(s.n, 3);
        assert_eq!(s.errors, 0);
        assert!((s.avg_latency_ms.mean - 12.0).abs() < 1e-12);
        assert!((s.avg_latency_ms.stddev - 2.0).abs() < 1e-12);
        let expect_ci = 4.303 * 2.0 / 3.0_f64.sqrt();
        assert!(
            (s.avg_latency_ms.ci95 - expect_ci).abs() < 1e-9,
            "ci {} != {expect_ci}",
            s.avg_latency_ms.ci95
        );
        // The dependent metrics scale with the fixture.
        assert!((s.mem_mb_per_model.mean - 24.0).abs() < 1e-12);
        assert!((s.makespan_ms.stddev - 20.0).abs() < 1e-12);
        assert!((s.sla_rate.stddev - 0.0).abs() < 1e-12);
    }

    #[test]
    fn error_cells_are_counted_not_folded() {
        let mut agg = SeedAggregate::new();
        agg.fold(coord(0), &summary(10.0));
        agg.fold_error(coord(1));
        let stats = agg.stats();
        assert_eq!(stats[0].n, 1);
        assert_eq!(stats[0].errors, 1);
        assert_eq!(stats[0].avg_latency_ms.mean, 10.0);
        assert_eq!(stats[0].avg_latency_ms.ci95, 0.0, "one sample, no CI");
    }

    fn roundtrip_axes() -> SweepAxes {
        SweepAxes {
            policies: vec!["Baseline".into(), "needs \"escaping\"".into()],
            socs: vec!["paper".into()],
            caches: vec!["default".into(), "16MiB".into(), "32MiB".into()],
            channels: vec!["default".into()],
            workloads: vec!["w".into()],
            qos: vec!["closed".into()],
            lookaheads: vec!["default".into()],
            faults: vec!["none".into()],
            seeds: vec![1, 2],
        }
    }

    #[test]
    fn cell_lines_roundtrip_bit_for_bit() {
        let axes = roundtrip_axes();
        let c = CellCoord {
            policy: 1,
            soc: 0,
            cache: 2,
            channel: 0,
            workload: 0,
            qos: 0,
            lookahead: 0,
            fault: 0,
            seed: 1,
        };
        // A tail with samples in three buckets plus awkward extremes:
        // the integer counts/min/max must come back exactly — the max
        // is deliberately above 2^53, where an f64 path would round.
        let mut latency_tail = LatencyTail::new();
        latency_tail.record(123);
        latency_tail.record((1 << 20) + 1);
        latency_tail.record((1 << 53) + 1);
        let run = RunOutput {
            policy: "needs \"escaping\"".into(),
            summary: RunSummary {
                tasks: 3,
                inferences: 7,
                // Awkward doubles: shortest-roundtrip Display must
                // reproduce them exactly.
                cache_hit_rate: 1.0 / 3.0,
                avg_latency_ms: 0.1 + 0.2,
                mem_mb_per_model: f64::MIN_POSITIVE,
                makespan_ms: 12345.678901234567,
                sla_rate: 1.0,
                multicast_saved_mb: 0.0,
                // Non-zero fault counters: they must roundtrip exactly.
                shed_requests: 5,
                retried_inferences: 2,
                dropped_inferences: 1,
                latency_tail,
            },
            detail: None,
        };
        let line = cell_line(
            c,
            &CellRun {
                outcome: Ok(run.clone()),
                wall_s: 0.015625,
            },
        );
        let (pc, prun, wall) = parse_cell_line(&line, &axes, LogVersion::V3).expect("line parses");
        assert_eq!(pc, c);
        assert_eq!(prun, run, "summary must roundtrip bit-for-bit");
        assert_eq!(
            prun.summary.latency_tail, run.summary.latency_tail,
            "tail counts/min/max must roundtrip exactly"
        );
        assert_eq!(wall, 0.015625);
        // The line carries derived percentiles for plain consumers.
        assert!(line.contains("\"p99_ms\": "));
        // Error lines are skipped (they re-run on resume).
        let err_line = cell_line(
            c,
            &CellRun {
                outcome: Err(EngineError::EmptyWorkload),
                wall_s: 0.0,
            },
        );
        assert!(parse_cell_line(&err_line, &axes, LogVersion::V3).is_none());
        // Torn lines (killed mid-write) are skipped, not fatal.
        assert!(parse_cell_line(&line[..line.len() / 2], &axes, LogVersion::V3).is_none());
        // Out-of-range coordinates (a log from a bigger grid) too.
        let small = SweepAxes {
            caches: vec!["default".into()],
            ..axes.clone()
        };
        assert!(parse_cell_line(&line, &small, LogVersion::V3).is_none());
        // Non-finite values serialize as JSON null (never `NaN`/`inf`),
        // which the reader skips — the cell re-runs instead of
        // poisoning the log.
        let mut weird = run;
        weird.summary.avg_latency_ms = f64::NAN;
        let weird_line = cell_line(
            c,
            &CellRun {
                outcome: Ok(weird),
                wall_s: f64::INFINITY,
            },
        );
        assert!(weird_line.contains("\"avg_latency_ms\": null"));
        assert!(weird_line.contains("\"wall_s\": null"));
        assert!(!weird_line.contains(": NaN") && !weird_line.contains(": inf"));
        assert!(parse_cell_line(&weird_line, &axes, LogVersion::V3).is_none());
    }

    #[test]
    fn v1_cell_lines_parse_with_an_empty_tail() {
        // A line in the exact format the camdn-sweep-cells/1 writer
        // produced: no channel coordinate, no latency-tail fields.
        let axes = roundtrip_axes();
        let line = "{\"policy\": 1, \"soc\": 0, \"cache\": 2, \"workload\": 0, \"qos\": 0, \
                    \"lookahead\": 0, \"seed\": 1, \"wall_s\": 0.25, \"ok\": true, \
                    \"label\": \"Baseline\", \"tasks\": 2, \"inferences\": 4, \
                    \"cache_hit_rate\": 0.5, \"avg_latency_ms\": 3.5, \
                    \"mem_mb_per_model\": 1.25, \"makespan_ms\": 10.5, \"sla_rate\": 1, \
                    \"multicast_saved_mb\": 0}";
        // In v3 mode the line is rejected (no channel/tail fields)...
        assert!(parse_cell_line(line, &axes, LogVersion::V3).is_none());
        // ...in v1 mode it parses: channel reads 0, the tail is empty,
        // the fault counters read 0.
        let (c, run, wall) = parse_cell_line(line, &axes, LogVersion::V1).expect("v1 line parses");
        assert_eq!(c, coord(1));
        assert_eq!(wall, 0.25);
        assert_eq!(run.summary.avg_latency_ms, 3.5);
        assert_eq!(run.summary.shed_requests, 0);
        assert_eq!(run.summary.latency_tail, LatencyTail::new());
        assert_eq!(run.summary.latency_tail.p99_ms(), 0.0);
    }

    #[test]
    fn v2_cell_lines_parse_with_zeroed_fault_counters() {
        // A line in the exact format the camdn-sweep-cells/2 writer
        // produced: channel + latency tail, but no fault coordinate
        // and no fault counters.
        let axes = roundtrip_axes();
        let counts = vec!["0"; LATENCY_HIST_BUCKETS].join(", ");
        let line = format!(
            "{{\"policy\": 1, \"soc\": 0, \"cache\": 2, \"channel\": 0, \"workload\": 0, \
             \"qos\": 0, \"lookahead\": 0, \"seed\": 1, \"wall_s\": 0.25, \"ok\": true, \
             \"label\": \"Baseline\", \"tasks\": 2, \"inferences\": 4, \
             \"cache_hit_rate\": 0.5, \"avg_latency_ms\": 3.5, \
             \"mem_mb_per_model\": 1.25, \"makespan_ms\": 10.5, \"sla_rate\": 1, \
             \"multicast_saved_mb\": 0, \"p50_ms\": 0, \"p90_ms\": 0, \"p95_ms\": 0, \
             \"p99_ms\": 0, \"p999_ms\": 0, \"lat_counts\": [{counts}], \
             \"lat_min_cycles\": 0, \"lat_max_cycles\": 0}}"
        );
        // In v3 mode the line is rejected (no fault coordinate)...
        assert!(parse_cell_line(&line, &axes, LogVersion::V3).is_none());
        // ...in v2 mode it parses with fault 0 and zeroed counters.
        let (c, run, wall) = parse_cell_line(&line, &axes, LogVersion::V2).expect("v2 line parses");
        assert_eq!(c, coord(1));
        assert_eq!(wall, 0.25);
        assert_eq!(run.summary.avg_latency_ms, 3.5);
        assert_eq!(run.summary.shed_requests, 0);
        assert_eq!(run.summary.retried_inferences, 0);
        assert_eq!(run.summary.dropped_inferences, 0);
    }

    #[test]
    fn seed_aggregate_pools_tails_instead_of_averaging_percentiles() {
        // Seed 0: 99 fast inferences. Seed 1: 99 fast + 99 slow. The
        // pooled p99 must see the slow samples (pooled tail ranks over
        // all 297 samples); an average of per-seed p99s would sit half
        // way and a fast-only pool would miss them entirely.
        let fast = 1_000_000u64; // ~1 ms
        let slow = 500_000_000u64; // ~500 ms
        let mk = |n_fast: u64, n_slow: u64| {
            let mut s = summary(1.0);
            let mut t = LatencyTail::new();
            for _ in 0..n_fast {
                t.record(fast);
            }
            for _ in 0..n_slow {
                t.record(slow);
            }
            s.latency_tail = t;
            s
        };
        let mut agg = SeedAggregate::new();
        agg.fold(coord(0), &mk(99, 0));
        agg.fold(coord(1), &mk(99, 99));
        let stats = agg.stats();
        assert_eq!(stats.len(), 1);
        let pooled = stats[0].latency_tail;
        assert_eq!(pooled.total(), 297);
        // A third of the pooled samples are slow: p90 and above land in
        // the slow straggler's bucket (clamped to the recorded max).
        assert_eq!(pooled.quantile_cycles(0.90), Some(slow));
        assert_eq!(pooled.max_cycles(), Some(slow));
        // The median stays fast.
        let p50 = pooled.quantile_cycles(0.50).unwrap();
        assert!(p50 < 2 * fast, "median {p50} must stay in the fast bucket");
    }
}
