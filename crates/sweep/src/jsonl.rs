//! Minimal flat-JSON building blocks shared by every JSONL log in the
//! workspace.
//!
//! The sweep cell log, the trace replay log and the serving bench all
//! write the same dialect: one self-contained JSON object per line,
//! holding only strings, numbers, booleans and flat arrays of number
//! tokens. Writers produce it with [`esc`] (string escaping) and
//! [`jnum`] (shortest-roundtrip floats, `null` for non-finite);
//! readers take lines apart with [`parse_flat_object`]. Nothing here
//! is a general JSON parser — it only accepts what the writers emit,
//! which is exactly the property the kill/resume paths rely on: a torn
//! line parses as `None` and the producer simply re-runs that unit of
//! work.

/// One parsed value of a flat JSONL object.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonVal {
    /// An unparsed number token (callers choose `f64` or exact `u64`).
    Num(String),
    /// `true` / `false`.
    Bool(bool),
    /// A string, unescaped.
    Str(String),
    /// A flat array of number tokens or strings (e.g.
    /// latency-histogram counts, tenant ids). String items are stored
    /// unescaped; callers know which kind a key holds.
    Arr(Vec<String>),
}

impl JsonVal {
    /// The value as an `f64`, when it is a number token.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonVal::Num(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// The value as an exact `u64` (no float rounding above 2^53),
    /// when it is a number token.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonVal::Num(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// The value as a boolean, when it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonVal::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a string slice, when it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonVal::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Escapes a string for inclusion in a JSON document.
pub fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// A float as a JSON token: shortest-roundtrip `Display` for finite
/// values, `null` otherwise — `NaN`/`inf` are not JSON, and a `null`ed
/// record simply re-runs on resume instead of corrupting the log.
pub fn jnum(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".into()
    }
}

/// Looks a key up in a parsed line.
pub fn field<'a>(fields: &'a [(String, JsonVal)], key: &str) -> Option<&'a JsonVal> {
    fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Parses a one-level JSON object of string/number/boolean values and
/// flat arrays of numbers. `None` for anything else — including a torn
/// line from a kill mid-write.
pub fn parse_flat_object(line: &str) -> Option<Vec<(String, JsonVal)>> {
    let s = line.trim();
    let mut chars = s.char_indices().peekable();
    if !s.starts_with('{') || !s.ends_with('}') {
        return None;
    }
    chars.next(); // consume '{'
    let mut fields = Vec::new();
    loop {
        // Skip whitespace and separators up to the next key or the end.
        while matches!(chars.peek(), Some((_, c)) if c.is_whitespace() || *c == ',') {
            chars.next();
        }
        match chars.peek() {
            Some((_, '}')) | None => break,
            Some((_, '"')) => {}
            _ => return None,
        }
        let key = parse_string(&mut chars)?;
        while matches!(chars.peek(), Some((_, c)) if c.is_whitespace()) {
            chars.next();
        }
        if !matches!(chars.next(), Some((_, ':'))) {
            return None;
        }
        while matches!(chars.peek(), Some((_, c)) if c.is_whitespace()) {
            chars.next();
        }
        let val = match chars.peek()? {
            (_, '"') => JsonVal::Str(parse_string(&mut chars)?),
            (_, '[') => {
                chars.next(); // consume '['
                let mut items = Vec::new();
                loop {
                    while matches!(chars.peek(), Some((_, c)) if c.is_whitespace() || *c == ',') {
                        chars.next();
                    }
                    if matches!(chars.peek(), Some((_, ']'))) {
                        chars.next();
                        break;
                    }
                    if matches!(chars.peek(), Some((_, '"'))) {
                        items.push(parse_string(&mut chars)?);
                        continue;
                    }
                    let num: String = std::iter::from_fn(|| {
                        matches!(chars.peek(), Some((_, c))
                            if !c.is_whitespace() && *c != ',' && *c != ']')
                        .then(|| chars.next().map(|(_, c)| c))
                        .flatten()
                    })
                    .collect();
                    if num.is_empty() {
                        return None;
                    }
                    items.push(num);
                }
                JsonVal::Arr(items)
            }
            (_, 't' | 'f') => {
                let word: String = std::iter::from_fn(|| {
                    matches!(chars.peek(), Some((_, c)) if c.is_ascii_alphabetic())
                        .then(|| chars.next().map(|(_, c)| c))
                        .flatten()
                })
                .collect();
                match word.as_str() {
                    "true" => JsonVal::Bool(true),
                    "false" => JsonVal::Bool(false),
                    _ => return None,
                }
            }
            _ => {
                let num: String = std::iter::from_fn(|| {
                    matches!(chars.peek(), Some((_, c)) if !c.is_whitespace() && *c != ',' && *c != '}')
                        .then(|| chars.next().map(|(_, c)| c))
                        .flatten()
                })
                .collect();
                if num.is_empty() {
                    return None;
                }
                JsonVal::Num(num)
            }
        };
        fields.push((key, val));
    }
    Some(fields)
}

/// Parses a double-quoted JSON string (cursor on the opening quote),
/// un-escaping what [`esc`] produced.
pub fn parse_string(chars: &mut std::iter::Peekable<std::str::CharIndices<'_>>) -> Option<String> {
    if !matches!(chars.next(), Some((_, '"'))) {
        return None;
    }
    let mut out = String::new();
    loop {
        match chars.next()? {
            (_, '"') => return Some(out),
            (_, '\\') => match chars.next()?.1 {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                't' => out.push('\t'),
                'u' => {
                    let mut code = 0u32;
                    for _ in 0..4 {
                        code = code * 16 + chars.next()?.1.to_digit(16)?;
                    }
                    out.push(char::from_u32(code)?);
                }
                _ => return None,
            },
            (_, c) => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_escaped_strings() {
        let nasty = "a\"b\\c\nd\te\u{1}";
        let line = format!("{{\"k\": \"{}\"}}", esc(nasty));
        let fields = parse_flat_object(&line).unwrap();
        assert_eq!(field(&fields, "k").unwrap().as_str(), Some(nasty));
    }

    #[test]
    fn torn_lines_parse_as_none() {
        assert!(parse_flat_object("{\"k\": 1").is_none());
        assert!(parse_flat_object("{\"k\": }").is_none());
        assert!(parse_flat_object("not json").is_none());
        assert!(parse_flat_object("{\"k\": tr").is_none());
    }

    #[test]
    fn numbers_booleans_and_arrays() {
        let fields =
            parse_flat_object("{\"a\": 18446744073709551615, \"b\": true, \"c\": [1, 2, 3]}")
                .unwrap();
        assert_eq!(field(&fields, "a").unwrap().as_u64(), Some(u64::MAX));
        assert_eq!(field(&fields, "b").unwrap().as_bool(), Some(true));
        assert_eq!(
            field(&fields, "c"),
            Some(&JsonVal::Arr(vec!["1".into(), "2".into(), "3".into()]))
        );
    }

    #[test]
    fn string_array_items_are_unescaped() {
        let fields = parse_flat_object("{\"t\": [\"a\\\"x\", \"b\", 3]}").unwrap();
        assert_eq!(
            field(&fields, "t"),
            Some(&JsonVal::Arr(vec!["a\"x".into(), "b".into(), "3".into()]))
        );
    }

    #[test]
    fn jnum_guards_non_finite() {
        assert_eq!(jnum(1.5), "1.5");
        assert_eq!(jnum(f64::NAN), "null");
        assert_eq!(jnum(f64::INFINITY), "null");
    }
}
