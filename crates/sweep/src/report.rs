//! JSON export of sweep results (`BENCH_sweep.json`).
//!
//! The workspace builds offline against a marker-trait serde stand-in
//! (see `vendor/README.md`), so the export is hand-rolled — the same
//! approach the throughput harness uses for `BENCH_engine.json`. The
//! document schema is `camdn-bench-sweep/1`.

use crate::jsonl::esc;
use crate::SweepResult;

pub(crate) fn str_array(items: &[String]) -> String {
    let quoted: Vec<String> = items.iter().map(|s| format!("\"{}\"", esc(s))).collect();
    format!("[{}]", quoted.join(", "))
}

impl SweepResult {
    /// The result as a self-contained `camdn-bench-sweep/1` JSON
    /// document (the format of `BENCH_sweep.json`).
    pub fn to_json(&self, name: &str) -> String {
        format!(
            "{{\n  \"schema\": \"camdn-bench-sweep/1\",\n  \"name\": \"{}\",\n{}\n}}\n",
            esc(name),
            self.json_body(2)
        )
    }

    /// The result's fields as JSON object members (no surrounding
    /// braces), indented by `indent` spaces — for embedding in a larger
    /// report document.
    pub fn json_body(&self, indent: usize) -> String {
        let pad = " ".repeat(indent);
        let a = &self.axes;
        let plan_cache = match &self.plan_cache {
            None => "null".to_string(),
            Some(s) => format!(
                "{{\"model_hits\": {}, \"model_misses\": {}, \"layer_hits\": {}, \"layer_misses\": {}}}",
                s.model_hits, s.model_misses, s.layer_hits, s.layer_misses
            ),
        };
        let seeds: Vec<String> = a.seeds.iter().map(u64::to_string).collect();
        let mut cells = Vec::with_capacity(self.cells.len());
        for cell in &self.cells {
            let c = &cell.coord;
            let head = format!(
                "{pad}  {{\"policy\": \"{}\", \"soc\": \"{}\", \"cache\": \"{}\", \
                 \"channel\": \"{}\", \"workload\": \"{}\", \
                 \"qos\": \"{}\", \"lookahead\": \"{}\", \"fault\": \"{}\", \"seed\": {}, \
                 \"wall_s\": {:.6}, ",
                esc(&a.policies[c.policy]),
                esc(&a.socs[c.soc]),
                esc(&a.caches[c.cache]),
                esc(&a.channels[c.channel]),
                esc(&a.workloads[c.workload]),
                esc(&a.qos[c.qos]),
                esc(&a.lookaheads[c.lookahead]),
                esc(&a.faults[c.fault]),
                a.seeds[c.seed],
                cell.wall_s,
            );
            let tail = match &cell.outcome {
                Ok(r) => format!(
                    "\"ok\": true, \"tasks\": {}, \"avg_latency_ms\": {:.6}, \
                     \"mem_mb_per_model\": {:.6}, \"cache_hit_rate\": {:.6}, \
                     \"makespan_ms\": {:.6}, \"sla_rate\": {:.6}, \
                     \"p50_ms\": {:.6}, \"p95_ms\": {:.6}, \"p99_ms\": {:.6}, \
                     \"p999_ms\": {:.6}, \"error\": null}}",
                    r.summary.tasks,
                    r.summary.avg_latency_ms,
                    r.summary.mem_mb_per_model,
                    r.summary.cache_hit_rate,
                    r.summary.makespan_ms,
                    r.summary.sla_rate,
                    r.summary.latency_tail.p50_ms(),
                    r.summary.latency_tail.p95_ms(),
                    r.summary.latency_tail.p99_ms(),
                    r.summary.latency_tail.p999_ms(),
                ),
                Err(e) => format!("\"ok\": false, \"error\": \"{}\"}}", esc(&e.to_string())),
            };
            cells.push(format!("{head}{tail}"));
        }
        format!(
            "{pad}\"threads\": {},\n\
             {pad}\"wall_s\": {:.6},\n\
             {pad}\"ok_cells\": {},\n\
             {pad}\"error_cells\": {},\n\
             {pad}\"plan_cache\": {},\n\
             {pad}\"axes\": {{\"policies\": {}, \"socs\": {}, \"caches\": {}, \"channels\": {}, \
             \"workloads\": {}, \
             \"qos\": {}, \"lookaheads\": {}, \"faults\": {}, \"seeds\": [{}]}},\n\
             {pad}\"cells\": [\n{}\n{pad}]",
            self.threads,
            self.wall_s,
            self.ok_count(),
            self.cells.len() - self.ok_count(),
            plan_cache,
            str_array(&a.policies),
            str_array(&a.socs),
            str_array(&a.caches),
            str_array(&a.channels),
            str_array(&a.workloads),
            str_array(&a.qos),
            str_array(&a.lookaheads),
            str_array(&a.faults),
            seeds.join(", "),
            cells.join(",\n"),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Sweep;
    use camdn_runtime::Workload;

    #[test]
    fn escaping_covers_the_specials() {
        assert_eq!(esc("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(esc("\u{1}"), "\\u0001");
    }

    #[test]
    fn json_export_has_schema_and_cells() {
        let models = vec![camdn_models::zoo::mobilenet_v2()];
        let r = Sweep::grid()
            .workload("tiny \"quoted\"", Workload::closed(models, 2))
            .run()
            .unwrap();
        let json = r.to_json("unit");
        assert!(json.contains("\"schema\": \"camdn-bench-sweep/1\""));
        assert!(json.contains("\"name\": \"unit\""));
        assert!(json.contains("\"tiny \\\"quoted\\\"\""));
        assert!(json.contains("\"ok\": true"));
        assert!(json.contains("\"plan_cache\": {\"model_hits\""));
        // Crude balance check on the hand-rolled document.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces:\n{json}"
        );
    }
}
