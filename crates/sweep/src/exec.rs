//! The parallel cell executor.
//!
//! Engines are deterministic and single-threaded, so a sweep's cells
//! are embarrassingly parallel: [`run_cells`] fans a batch of
//! [`SimulationBuilder`]s out over a pool of worker threads pulling
//! from a shared atomic work queue (finished workers steal whatever
//! cell is next, so an uneven grid keeps every core busy).
//!
//! Failure is *per cell*: a build error, run error or even a panic in
//! one simulation becomes that cell's `Err` — it cannot poison a lock,
//! lose neighbors' results, or abort the grid. This replaces the old
//! `camdn_bench::parallel_sims` behavior, where the first failing run
//! panicked inside a scoped worker and took the whole sweep down with
//! it.
//!
//! Completed cells are *streamed*: [`run_cells_into`] hands each
//! `(index, CellRun)` to a delivery callback the moment its worker
//! finishes, which is what drives the sweep layer's
//! [`CellSink`](crate::CellSink)s — a JSONL line hits disk while
//! neighboring cells are still running, instead of after the whole
//! grid. [`run_cells`] is the buffered convenience wrapper.

use camdn_runtime::{CacheScratchPool, EngineError, RunOutput, SimulationBuilder};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Outcome of one executed cell.
#[derive(Debug)]
pub struct CellRun {
    /// The simulation's result, or the structured error that stopped it
    /// (including [`EngineError::Panicked`] for caught panics).
    pub outcome: Result<RunOutput, EngineError>,
    /// Wall-clock seconds this cell spent building + running.
    pub wall_s: f64,
}

/// Worker count for `jobs` cells: the explicit request, else available
/// parallelism — clamped in both cases to
/// `1..=available_parallelism` and never more workers than cells.
///
/// An explicit request outside that range (`threads(0)`, or an absurd
/// oversubscription like `threads(10_000)`) used to spawn exactly what
/// was asked; it is now clamped with a note on stderr, since zero
/// workers deadlock and thousands of engine threads only thrash.
pub(crate) fn resolve_threads(requested: Option<usize>, jobs: usize) -> usize {
    let available = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4);
    let cap = available.min(jobs.max(1)).max(1);
    match requested {
        None => cap,
        Some(t) => {
            let clamped = t.clamp(1, cap);
            if t == 0 || t > available {
                eprintln!(
                    "camdn-sweep: clamping requested thread count {t} to {clamped} \
                     (available parallelism {available}, {jobs} cells)"
                );
            }
            clamped
        }
    }
}

/// Runs every builder to completion over a worker pool, delivering each
/// finished cell to `deliver(index, run)` as soon as its worker
/// completes it.
///
/// Delivery order is completion order (non-deterministic under more
/// than one worker); the index identifies the cell. `deliver` is called
/// from worker threads, one call at a time (an internal lock
/// serializes it), so sinks need no interior synchronization of their
/// own.
pub fn run_cells_into(
    builders: Vec<SimulationBuilder>,
    threads: Option<usize>,
    deliver: &mut (dyn FnMut(usize, CellRun) + Send),
) {
    let n = builders.len();
    if n == 0 {
        return;
    }
    let threads = resolve_threads(threads, n);
    // Each job is taken exactly once; a Mutex<Option<..>> per slot keeps
    // the builders `Sync` without cloning them.
    let jobs: Vec<Mutex<Option<SimulationBuilder>>> =
        builders.into_iter().map(|b| Mutex::new(Some(b))).collect();
    let next = AtomicUsize::new(0);
    // The delivery callback is shared by all workers behind one lock.
    let sink = Mutex::new(deliver);
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| {
                // One scratch pool per worker: the worker's consecutive
                // cells reuse the shared cache's multi-MB tag planes
                // instead of re-allocating them per cell. Reuse is
                // bit-for-bit invisible (generation counters); cells
                // that set an explicit pool keep theirs.
                let scratch = Arc::new(CacheScratchPool::new());
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let builder = match jobs[i].lock() {
                        Ok(mut guard) => guard.take(),
                        // Cannot happen (cells catch their own
                        // panics), but un-poison rather than die.
                        Err(poisoned) => poisoned.into_inner().take(),
                    };
                    // camdn-lint: allow(wall-clock-in-sim, reason = "reported wall_s bookkeeping only; simulated results never read it and bit-for-bit comparisons exclude it")
                    let t0 = Instant::now();
                    let outcome = match builder {
                        Some(b) => run_one(b.cache_scratch_default(&scratch)),
                        None => Err(EngineError::Panicked {
                            detail: "sweep job vanished before it ran".into(),
                        }),
                    };
                    let run = CellRun {
                        outcome,
                        wall_s: t0.elapsed().as_secs_f64(),
                    };
                    let mut guard = match sink.lock() {
                        Ok(guard) => guard,
                        // A sink panicked on an earlier cell; keep
                        // draining the queue so the scope can join.
                        Err(poisoned) => poisoned.into_inner(),
                    };
                    (*guard)(i, run);
                }
            });
        }
    });
}

/// Runs every builder to completion over a worker pool, preserving
/// input order in the returned vector.
///
/// `threads` is the worker count (`None` = available parallelism); it
/// is capped at the number of jobs. Each cell's failure — including a
/// panic inside the engine or a custom policy — surfaces as its own
/// `Err` entry without disturbing any other cell.
///
/// Caught panics still pass through the process's panic hook before
/// unwinding, so each one prints its usual `thread panicked at ...`
/// message to stderr (useful diagnostics, and the hook is process
/// state this library deliberately does not touch). Callers that want
/// silence can install their own quiet hook around the call.
pub fn run_cells(builders: Vec<SimulationBuilder>, threads: Option<usize>) -> Vec<CellRun> {
    let n = builders.len();
    let mut out: Vec<Option<CellRun>> = (0..n).map(|_| None).collect();
    run_cells_into(builders, threads, &mut |i, run| out[i] = Some(run));
    out.into_iter()
        .map(|slot| {
            slot.unwrap_or_else(|| CellRun {
                outcome: Err(EngineError::Panicked {
                    detail: "worker thread lost this cell".into(),
                }),
                wall_s: 0.0,
            })
        })
        .collect()
}

/// Builds and runs one cell, converting a panic into a structured
/// error.
fn run_one(builder: SimulationBuilder) -> Result<RunOutput, EngineError> {
    match catch_unwind(AssertUnwindSafe(move || builder.run())) {
        Ok(result) => result,
        Err(payload) => Err(EngineError::Panicked {
            detail: panic_detail(payload.as_ref()),
        }),
    }
}

fn panic_detail(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_batch_is_empty() {
        assert!(run_cells(Vec::new(), None).is_empty());
    }

    #[test]
    fn thread_resolution_caps_at_jobs_and_parallelism() {
        let available = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(4);
        // Explicit requests are clamped to [1, min(available, jobs)].
        assert_eq!(resolve_threads(Some(8), 3), available.min(3));
        assert_eq!(resolve_threads(Some(2), 100), 2.min(available));
        assert_eq!(resolve_threads(Some(0), 5), 1, "zero workers deadlock");
        assert_eq!(
            resolve_threads(Some(1_000_000), 1_000_000),
            available,
            "absurd oversubscription is clamped to available parallelism"
        );
        // The default never exceeds parallelism or the job count.
        let d = resolve_threads(None, 100);
        assert!(d >= 1 && d <= available);
        assert_eq!(resolve_threads(None, 1), 1);
        assert_eq!(resolve_threads(None, 0), 1);
    }

    #[test]
    fn streaming_delivery_covers_every_index_exactly_once() {
        let models = vec![camdn_models::zoo::mobilenet_v2()];
        let builders: Vec<_> = (0..6)
            .map(|seed| {
                camdn_runtime::Simulation::builder()
                    .seed(seed)
                    .warmup_rounds(0)
                    .workload(camdn_runtime::Workload::closed(models.clone(), 1))
            })
            .collect();
        let mut seen = vec![0u32; 6];
        run_cells_into(builders, Some(3), &mut |i, run| {
            assert!(run.outcome.is_ok());
            seen[i] += 1;
        });
        assert!(seen.iter().all(|&c| c == 1), "{seen:?}");
    }
}
