//! The parallel cell executor.
//!
//! Engines are deterministic and single-threaded, so a sweep's cells
//! are embarrassingly parallel: [`run_cells`] fans a batch of
//! [`SimulationBuilder`]s out over a pool of worker threads pulling
//! from a shared atomic work queue (finished workers steal whatever
//! cell is next, so an uneven grid keeps every core busy).
//!
//! Failure is *per cell*: a build error, run error or even a panic in
//! one simulation becomes that cell's `Err` — it cannot poison a lock,
//! lose neighbors' results, or abort the grid. This replaces the old
//! `camdn_bench::parallel_sims` behavior, where the first failing run
//! panicked inside a scoped worker and took the whole sweep down with
//! it.

use camdn_runtime::{EngineError, RunResult, SimulationBuilder};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Outcome of one executed cell.
#[derive(Debug)]
pub struct CellRun {
    /// The simulation's result, or the structured error that stopped it
    /// (including [`EngineError::Panicked`] for caught panics).
    pub outcome: Result<RunResult, EngineError>,
    /// Wall-clock seconds this cell spent building + running.
    pub wall_s: f64,
}

/// Worker count for `jobs` cells: the explicit request, else available
/// parallelism, never more workers than cells.
pub(crate) fn resolve_threads(requested: Option<usize>, jobs: usize) -> usize {
    requested
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(4)
        })
        .clamp(1, jobs.max(1))
}

/// Runs every builder to completion over a worker pool, preserving
/// input order in the returned vector.
///
/// `threads` is the worker count (`None` = available parallelism); it
/// is capped at the number of jobs. Each cell's failure — including a
/// panic inside the engine or a custom policy — surfaces as its own
/// `Err` entry without disturbing any other cell.
///
/// Caught panics still pass through the process's panic hook before
/// unwinding, so each one prints its usual `thread panicked at ...`
/// message to stderr (useful diagnostics, and the hook is process
/// state this library deliberately does not touch). Callers that want
/// silence can install their own quiet hook around the call.
pub fn run_cells(builders: Vec<SimulationBuilder>, threads: Option<usize>) -> Vec<CellRun> {
    let n = builders.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = resolve_threads(threads, n);
    // Each job is taken exactly once; a Mutex<Option<..>> per slot keeps
    // the builders `Sync` without cloning them.
    let jobs: Vec<Mutex<Option<SimulationBuilder>>> =
        builders.into_iter().map(|b| Mutex::new(Some(b))).collect();
    let next = AtomicUsize::new(0);
    let mut out: Vec<Option<CellRun>> = (0..n).map(|_| None).collect();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(|| {
                    let mut mine: Vec<(usize, CellRun)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let builder = match jobs[i].lock() {
                            Ok(mut guard) => guard.take(),
                            // Cannot happen (cells catch their own
                            // panics), but un-poison rather than die.
                            Err(poisoned) => poisoned.into_inner().take(),
                        };
                        let t0 = Instant::now();
                        let outcome = match builder {
                            Some(b) => run_one(b),
                            None => Err(EngineError::Panicked {
                                detail: "sweep job vanished before it ran".into(),
                            }),
                        };
                        mine.push((
                            i,
                            CellRun {
                                outcome,
                                wall_s: t0.elapsed().as_secs_f64(),
                            },
                        ));
                    }
                    mine
                })
            })
            .collect();
        for h in handles {
            if let Ok(cells) = h.join() {
                for (i, r) in cells {
                    out[i] = Some(r);
                }
            }
        }
    });
    out.into_iter()
        .map(|slot| {
            slot.unwrap_or_else(|| CellRun {
                outcome: Err(EngineError::Panicked {
                    detail: "worker thread lost this cell".into(),
                }),
                wall_s: 0.0,
            })
        })
        .collect()
}

/// Builds and runs one cell, converting a panic into a structured
/// error.
fn run_one(builder: SimulationBuilder) -> Result<RunResult, EngineError> {
    match catch_unwind(AssertUnwindSafe(move || builder.run())) {
        Ok(result) => result,
        Err(payload) => Err(EngineError::Panicked {
            detail: panic_detail(payload.as_ref()),
        }),
    }
}

fn panic_detail(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_batch_is_empty() {
        assert!(run_cells(Vec::new(), None).is_empty());
    }

    #[test]
    fn thread_resolution_caps_at_jobs() {
        assert_eq!(resolve_threads(Some(8), 3), 3);
        assert_eq!(resolve_threads(Some(2), 100), 2);
        assert_eq!(resolve_threads(Some(0), 5), 1);
        assert!(resolve_threads(None, 100) >= 1);
    }
}
