//! The discrete-event component-clock scheduler core.
//!
//! This module is the engine's time-advance substrate, split out of the
//! old monolithic run loop. It has two layers:
//!
//! * [`Scheduler`] — a deterministic min-heap of timestamped events
//!   with FIFO tie-breaking and a tracked current time. This is what
//!   the engine's run loop pops; every wake the task state machine,
//!   the fault plan or a timeout schedules goes through it.
//! * [`Component`] + [`ComponentSet`] — a generic component framework
//!   on top of the heap: each component advances on its own clock,
//!   expressed as an integer divider against the master clock
//!   ([`ComponentClock`]), and may retune any component's divider
//!   mid-run (DVFS). This is the substrate for heterogeneous-SoC
//!   scenarios (DMA engines, host CPUs, multiple NPU clock domains)
//!   and is property-tested standalone; see `docs/ENGINE.md`.
//!
//! # Determinism
//!
//! Every ordering decision is written down and seeded:
//!
//! * Events at distinct master cycles fire in cycle order.
//! * Events at the **same** master cycle fire in the order they were
//!   scheduled (FIFO by a monotone sequence number).
//! * At startup, components are primed in **registration order**, so a
//!   cold same-cycle tie resolves to registration order.
//! * A divider change re-maps the target's pending tick to its new
//!   edge, clamped to the current time (time never runs backwards),
//!   and supersedes the previously scheduled entry — the stale entry
//!   is discarded by the driver and never delivered.
//!
//! # Example
//!
//! ```
//! use camdn_runtime::sched::{Component, ComponentSet, TickCtx};
//!
//! /// Counts its own ticks for ten local cycles.
//! struct Counter {
//!     fired: Vec<u64>,
//! }
//! impl Component for Counter {
//!     fn next_tick(&mut self, from: u64) -> Option<u64> {
//!         (from < 10).then_some(from)
//!     }
//!     fn tick(&mut self, now: u64, _local: u64, _ctx: &mut TickCtx) {
//!         self.fired.push(now);
//!     }
//! }
//!
//! let mut set = ComponentSet::new();
//! // A full-rate component and one on a divide-by-4 clock.
//! let fast = set.add("fast", 1, Box::new(Counter { fired: vec![] })).unwrap();
//! let slow = set.add("slow", 4, Box::new(Counter { fired: vec![] })).unwrap();
//! let done = set.run(1_000).unwrap();
//! assert_eq!(done.ticks, 20);
//! assert_eq!(done.now, 36); // slow's 10th local tick: 9 * 4
//! # let _ = (fast, slow);
//! ```

use camdn_common::types::Cycle;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::error::Error;
use std::fmt;

/// A deterministic time-ordered event heap with FIFO tie-breaking and
/// a tracked current time.
///
/// This is the engine-facing layer of the scheduler: payloads are
/// opaque, and the ordering contract is exactly the one the legacy
/// advance loop relied on — `(time, insertion sequence)` — so a run
/// driven through [`Scheduler`] pops events in the same order the old
/// `EventQueue` did.
///
/// ```
/// use camdn_runtime::sched::Scheduler;
///
/// let mut s = Scheduler::new();
/// s.push(10, "b");
/// s.push(5, "a");
/// s.push(10, "c");
/// assert_eq!(s.pop(), Some((5, "a")));
/// assert_eq!(s.pop(), Some((10, "b"))); // FIFO among ties
/// assert_eq!(s.now(), 10);
/// ```
#[derive(Debug, Clone)]
pub struct Scheduler<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    seq: u64,
    now: Cycle,
}

#[derive(Debug, Clone)]
struct Entry<E> {
    time: Cycle,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time.cmp(&other.time).then(self.seq.cmp(&other.seq))
    }
}

impl<E> Scheduler<E> {
    /// Creates an empty scheduler at master cycle 0.
    pub fn new() -> Self {
        Scheduler {
            heap: BinaryHeap::new(),
            seq: 0,
            now: 0,
        }
    }

    /// Schedules `payload` at absolute master cycle `time`.
    pub fn push(&mut self, time: Cycle, payload: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Entry { time, seq, payload }));
    }

    /// Removes and returns the earliest event, advancing the tracked
    /// current time. The heap never travels backwards: the tracked
    /// time is the max of all popped timestamps.
    pub fn pop(&mut self) -> Option<(Cycle, E)> {
        self.heap.pop().map(|Reverse(e)| {
            self.now = self.now.max(e.time);
            (e.time, e.payload)
        })
    }

    /// Master cycle of the latest popped event (0 before the first pop).
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<Cycle> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> Default for Scheduler<E> {
    fn default() -> Self {
        Self::new()
    }
}

/// A per-component clock: an integer divider against the master clock.
///
/// Local tick `L` of a component with divider `d` falls on master
/// cycle `L * d`. Dividers can change mid-run (DVFS); the driver
/// re-maps pending ticks to the new edge, clamped to the current time.
///
/// ```
/// use camdn_runtime::sched::ComponentClock;
///
/// let c = ComponentClock::new(4).unwrap();
/// assert_eq!(c.to_master(3), 12);
/// assert_eq!(c.local_at(13), 3);  // last edge at or before 13
/// assert_eq!(c.next_edge(13), 16);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ComponentClock {
    divider: Cycle,
}

impl ComponentClock {
    /// Creates a clock at `master / divider`. A zero divider is
    /// rejected — it would schedule every local tick at cycle 0
    /// forever.
    pub fn new(divider: Cycle) -> Result<Self, SchedError> {
        if divider == 0 {
            return Err(SchedError::ZeroDivider { comp: usize::MAX });
        }
        Ok(ComponentClock { divider })
    }

    /// The current divider.
    pub fn divider(&self) -> Cycle {
        self.divider
    }

    /// Retunes the divider (DVFS). Zero is rejected.
    pub fn set_divider(&mut self, divider: Cycle) -> Result<(), SchedError> {
        if divider == 0 {
            return Err(SchedError::ZeroDivider { comp: usize::MAX });
        }
        self.divider = divider;
        Ok(())
    }

    /// Master cycle of local tick `local` (saturating).
    pub fn to_master(&self, local: Cycle) -> Cycle {
        local.saturating_mul(self.divider)
    }

    /// Local tick index of the last edge at or before master cycle
    /// `master`.
    pub fn local_at(&self, master: Cycle) -> Cycle {
        master / self.divider
    }

    /// First master cycle strictly greater than `master` that falls on
    /// a local clock edge.
    pub fn next_edge(&self, master: Cycle) -> Cycle {
        (master / self.divider + 1).saturating_mul(self.divider)
    }
}

/// Identifier of a component within a [`ComponentSet`] (its
/// registration index).
pub type CompId = usize;

/// A simulated hardware block advancing on its own clock.
///
/// The driver polls [`next_tick`](Component::next_tick) after every
/// delivered tick (and once at startup, with `from = 0`); the returned
/// *local* tick is mapped to master cycles through the component's
/// [`ComponentClock`] and scheduled on the shared heap. Returning
/// `None` idles the component; a set whose components all idle
/// terminates — this is the no-deadlock guarantee the property suite
/// exercises.
pub trait Component {
    /// First local tick at or after `from` this component wants to
    /// execute, or `None` to go idle. A value below `from` is clamped
    /// to `from` by the driver (time never runs backwards).
    fn next_tick(&mut self, from: Cycle) -> Option<Cycle>;

    /// Executes the tick scheduled for local cycle `local`, delivered
    /// at master cycle `now`. Divider retunes requested through `ctx`
    /// are applied after this call returns, in request order.
    fn tick(&mut self, now: Cycle, local: Cycle, ctx: &mut TickCtx);
}

/// Side-effect channel handed to [`Component::tick`]: lets a component
/// retune any component's clock divider (DVFS) without aliasing the
/// driver's state. Requests are applied after the tick returns, in
/// request order.
#[derive(Debug)]
pub struct TickCtx {
    now: Cycle,
    changes: Vec<(CompId, Cycle)>,
}

impl TickCtx {
    /// Current master cycle.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Requests the divider of `comp` (possibly the caller itself) be
    /// set to `divider` once this tick returns. A zero divider or an
    /// unknown component id surfaces as a typed [`SchedError`] from
    /// [`ComponentSet::run`].
    pub fn set_divider(&mut self, comp: CompId, divider: Cycle) {
        self.changes.push((comp, divider));
    }
}

/// One delivered tick, as recorded by the optional schedule log
/// ([`ComponentSet::record_schedule`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FiredTick {
    /// Master cycle the tick was delivered at.
    pub at: Cycle,
    /// Component that ticked.
    pub comp: CompId,
    /// The component's local cycle for this tick.
    pub local: Cycle,
}

impl fmt::Display for FiredTick {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{} comp{} (local {})", self.at, self.comp, self.local)
    }
}

/// Summary of a completed [`ComponentSet::run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedSummary {
    /// Total ticks delivered.
    pub ticks: u64,
    /// Master cycle of the last delivered tick.
    pub now: Cycle,
    /// Stale heap entries discarded (superseded by divider changes) —
    /// never delivered to a component.
    pub stale_skipped: u64,
}

/// Errors of the component-set driver.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SchedError {
    /// A clock divider of zero was supplied (at registration or via
    /// [`TickCtx::set_divider`]). `comp` is `usize::MAX` when the
    /// clock was constructed standalone.
    ZeroDivider {
        /// Component the divider was aimed at.
        comp: CompId,
    },
    /// A divider change named a component id that was never registered.
    UnknownComponent {
        /// The out-of-range id.
        comp: CompId,
    },
    /// The tick budget ran out — the set was still active after
    /// `ticks` deliveries. This is the runaway guard for generative
    /// tests; a well-formed finite workload never trips it.
    TickBudget {
        /// Ticks delivered before giving up.
        ticks: u64,
        /// Master cycle of the last delivered tick.
        at: Cycle,
    },
    /// [`ComponentSet::run`] was called twice, or a component was
    /// added after the run started.
    AlreadyRan,
}

impl fmt::Display for SchedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedError::ZeroDivider { comp } if *comp == usize::MAX => {
                write!(f, "clock divider must be at least 1")
            }
            SchedError::ZeroDivider { comp } => {
                write!(f, "component {comp}: clock divider must be at least 1")
            }
            SchedError::UnknownComponent { comp } => {
                write!(f, "divider change aimed at unregistered component {comp}")
            }
            SchedError::TickBudget { ticks, at } => {
                write!(f, "tick budget exhausted after {ticks} ticks at cycle {at}")
            }
            SchedError::AlreadyRan => {
                write!(f, "component set already ran; build a fresh one")
            }
        }
    }
}

impl Error for SchedError {}

struct SetEntry {
    name: String,
    comp: Box<dyn Component>,
    clock: ComponentClock,
    /// Bumped whenever the pending heap entry is superseded (a tick
    /// delivery or a divider change); a popped entry with a stale
    /// generation is discarded, never delivered.
    gen: u64,
    /// The local tick currently scheduled on the heap, if any.
    pending: Option<Cycle>,
}

impl fmt::Debug for SetEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SetEntry")
            .field("name", &self.name)
            .field("clock", &self.clock)
            .field("gen", &self.gen)
            .field("pending", &self.pending)
            .finish_non_exhaustive()
    }
}

/// A set of [`Component`]s driven to completion over one shared
/// [`Scheduler`], each on its own [`ComponentClock`].
///
/// See the [module docs](self) for the determinism contract and an
/// example, and `docs/ENGINE.md` for how the engine maps onto this
/// model.
#[derive(Debug, Default)]
pub struct ComponentSet {
    entries: Vec<SetEntry>,
    sched: Scheduler<(CompId, u64, Cycle)>,
    log: Option<Vec<FiredTick>>,
    started: bool,
}

impl ComponentSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        ComponentSet {
            entries: Vec::new(),
            sched: Scheduler::new(),
            log: None,
            started: false,
        }
    }

    /// Records every delivered tick into a schedule log readable via
    /// [`schedule_log`](ComponentSet::schedule_log) — the property
    /// suite prints it on failure. Off by default (unbounded memory on
    /// long runs).
    pub fn record_schedule(&mut self, on: bool) {
        self.log = if on { Some(Vec::new()) } else { None };
    }

    /// Registers a component on a `divider`-divided clock, returning
    /// its id. Registration order is the cold-start tie-break order.
    pub fn add(
        &mut self,
        name: impl Into<String>,
        divider: Cycle,
        comp: Box<dyn Component>,
    ) -> Result<CompId, SchedError> {
        if self.started {
            return Err(SchedError::AlreadyRan);
        }
        let id = self.entries.len();
        let clock =
            ComponentClock::new(divider).map_err(|_| SchedError::ZeroDivider { comp: id })?;
        self.entries.push(SetEntry {
            name: name.into(),
            comp,
            clock,
            gen: 0,
            pending: None,
        });
        Ok(id)
    }

    /// Registered name of `comp` (diagnostics).
    pub fn name(&self, comp: CompId) -> Option<&str> {
        self.entries.get(comp).map(|e| e.name.as_str())
    }

    /// Current clock divider of `comp`.
    pub fn divider(&self, comp: CompId) -> Option<Cycle> {
        self.entries.get(comp).map(|e| e.clock.divider())
    }

    /// The delivered-tick log (empty unless
    /// [`record_schedule`](ComponentSet::record_schedule) is on).
    pub fn schedule_log(&self) -> &[FiredTick] {
        self.log.as_deref().unwrap_or(&[])
    }

    /// Polls `idx` for its next tick at or after local cycle `from`
    /// and schedules it, clamped so it never lands before `now`.
    fn poll(&mut self, idx: CompId, from: Cycle, now: Cycle) {
        let e = &mut self.entries[idx];
        match e.comp.next_tick(from) {
            Some(l) => {
                let local = l.max(from);
                let at = e.clock.to_master(local).max(now);
                e.pending = Some(local);
                self.sched.push(at, (idx, e.gen, local));
            }
            None => e.pending = None,
        }
    }

    /// Drives every component to completion (all idle), delivering at
    /// most `max_ticks` ticks. Time is strictly monotone per pop, and
    /// stale heap entries (superseded by divider changes) are counted
    /// and discarded, never delivered.
    pub fn run(&mut self, max_ticks: u64) -> Result<SchedSummary, SchedError> {
        if self.started {
            return Err(SchedError::AlreadyRan);
        }
        self.started = true;
        // Prime in registration order: the cold-start tie-break.
        for idx in 0..self.entries.len() {
            self.poll(idx, 0, 0);
        }
        let mut ticks = 0u64;
        let mut stale_skipped = 0u64;
        let mut last = 0;
        let mut changes: Vec<(CompId, Cycle)> = Vec::new();
        while let Some((at, (idx, gen, local))) = self.sched.pop() {
            if self.entries[idx].gen != gen {
                stale_skipped += 1;
                continue;
            }
            debug_assert!(at >= last, "scheduler time ran backwards");
            last = at;
            if ticks >= max_ticks {
                return Err(SchedError::TickBudget { ticks, at });
            }
            ticks += 1;
            if let Some(log) = &mut self.log {
                log.push(FiredTick {
                    at,
                    comp: idx,
                    local,
                });
            }
            let e = &mut self.entries[idx];
            e.gen += 1;
            e.pending = None;
            let mut ctx = TickCtx {
                now: at,
                changes: std::mem::take(&mut changes),
            };
            e.comp.tick(at, local, &mut ctx);
            changes = ctx.changes;
            for (cid, d) in changes.drain(..) {
                let target = self
                    .entries
                    .get_mut(cid)
                    .ok_or(SchedError::UnknownComponent { comp: cid })?;
                target
                    .clock
                    .set_divider(d)
                    .map_err(|_| SchedError::ZeroDivider { comp: cid })?;
                // Supersede the pending entry: re-map its local tick to
                // the new edge, clamped to now.
                target.gen += 1;
                if let Some(l) = target.pending {
                    let nat = target.clock.to_master(l).max(at);
                    self.sched.push(nat, (cid, target.gen, l));
                }
            }
            self.poll(idx, local.saturating_add(1), at);
        }
        Ok(SchedSummary {
            ticks,
            now: last,
            stale_skipped,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    type Seen = Rc<RefCell<Vec<(Cycle, Cycle)>>>;

    /// Ticks at fixed local cycles, recording `(master, local)` pairs
    /// into shared test state (the set owns the boxed component).
    struct Fixed {
        at: Vec<Cycle>,
        seen: Seen,
    }
    impl Component for Fixed {
        fn next_tick(&mut self, from: Cycle) -> Option<Cycle> {
            self.at.iter().copied().find(|&t| t >= from)
        }
        fn tick(&mut self, now: Cycle, local: Cycle, _ctx: &mut TickCtx) {
            self.seen.borrow_mut().push((now, local));
        }
    }

    #[test]
    fn scheduler_orders_by_time_then_fifo() {
        let mut s = Scheduler::new();
        s.push(30, 3);
        s.push(10, 1);
        s.push(10, 2);
        assert_eq!(s.pop(), Some((10, 1)));
        assert_eq!(s.pop(), Some((10, 2)));
        assert_eq!(s.now(), 10);
        assert_eq!(s.pop(), Some((30, 3)));
        assert_eq!(s.now(), 30);
        assert_eq!(s.pop(), None);
    }

    #[test]
    fn clock_maps_edges() {
        let c = ComponentClock::new(8).unwrap();
        assert_eq!(c.to_master(0), 0);
        assert_eq!(c.to_master(3), 24);
        assert_eq!(c.local_at(24), 3);
        assert_eq!(c.local_at(31), 3);
        assert_eq!(c.next_edge(0), 8);
        assert_eq!(c.next_edge(24), 32);
        assert!(ComponentClock::new(0).is_err());
    }

    #[test]
    fn divided_component_fires_on_its_edges() {
        let seen: Seen = Rc::default();
        let mut set = ComponentSet::new();
        set.add(
            "div4",
            4,
            Box::new(Fixed {
                at: vec![0, 1, 5],
                seen: Rc::clone(&seen),
            }),
        )
        .unwrap();
        set.run(100).unwrap();
        assert_eq!(*seen.borrow(), vec![(0, 0), (4, 1), (20, 5)]);
    }

    #[test]
    fn same_cycle_ties_fire_in_registration_order() {
        let mk = || {
            Box::new(Fixed {
                at: vec![0, 2, 4],
                seen: Rc::default(),
            })
        };
        let mut set = ComponentSet::new();
        set.record_schedule(true);
        let a = set.add("a", 2, mk()).unwrap();
        let b = set.add("b", 1, mk()).unwrap();
        set.run(100).unwrap();
        // Master cycle 4: a's local 2 and b's local 4 collide. a was
        // scheduled first (both re-armed at cycle 2 in firing order,
        // which traces back to registration order at cycle 0).
        let at4: Vec<CompId> = set
            .schedule_log()
            .iter()
            .filter(|t| t.at == 4)
            .map(|t| t.comp)
            .collect();
        assert_eq!(at4, vec![a, b]);
    }

    /// Slows itself down mid-run via the DVFS path.
    struct SelfThrottle {
        me: CompId,
        seen: Rc<RefCell<Vec<Cycle>>>,
    }
    impl Component for SelfThrottle {
        fn next_tick(&mut self, from: Cycle) -> Option<Cycle> {
            (from < 4).then_some(from)
        }
        fn tick(&mut self, now: Cycle, _local: Cycle, ctx: &mut TickCtx) {
            self.seen.borrow_mut().push(now);
            if self.seen.borrow().len() == 2 {
                ctx.set_divider(self.me, 10);
            }
        }
    }

    #[test]
    fn dvfs_divider_change_takes_effect_at_next_tick() {
        let seen: Rc<RefCell<Vec<Cycle>>> = Rc::default();
        let mut set = ComponentSet::new();
        set.add(
            "throttle",
            1,
            Box::new(SelfThrottle {
                me: 0,
                seen: Rc::clone(&seen),
            }),
        )
        .unwrap();
        let done = set.run(100).unwrap();
        // Locals 0,1 on the full-rate clock; locals 2,3 on the 10x
        // divided clock.
        assert_eq!(*seen.borrow(), vec![0, 1, 20, 30]);
        assert_eq!(done.ticks, 4);
    }

    /// Retunes a *peer* component's clock, stranding its pending tick.
    struct Retuner {
        target: CompId,
        done: bool,
    }
    impl Component for Retuner {
        fn next_tick(&mut self, from: Cycle) -> Option<Cycle> {
            (!self.done).then(|| from.max(1))
        }
        fn tick(&mut self, _now: Cycle, _local: Cycle, ctx: &mut TickCtx) {
            self.done = true;
            ctx.set_divider(self.target, 100);
        }
    }

    #[test]
    fn peer_retune_supersedes_pending_tick_without_stale_delivery() {
        let mut set = ComponentSet::new();
        set.record_schedule(true);
        let slow = set
            .add(
                "victim",
                5,
                Box::new(Fixed {
                    at: vec![0, 2],
                    seen: Rc::default(),
                }),
            )
            .unwrap();
        set.add(
            "retuner",
            1,
            Box::new(Retuner {
                target: slow,
                done: false,
            }),
        )
        .unwrap();
        let done = set.run(100).unwrap();
        // The victim's local tick 2 was pending at master 10 under /5;
        // the retune at master 1 re-maps it to 200 under /100. The old
        // heap entry is discarded, never delivered.
        assert_eq!(done.stale_skipped, 1);
        let victim_ticks: Vec<Cycle> = set
            .schedule_log()
            .iter()
            .filter(|t| t.comp == slow)
            .map(|t| t.at)
            .collect();
        assert_eq!(victim_ticks, vec![0, 200]);
    }

    #[test]
    fn empty_and_idle_sets_terminate() {
        let mut set = ComponentSet::new();
        assert_eq!(
            set.run(10).unwrap(),
            SchedSummary {
                ticks: 0,
                now: 0,
                stale_skipped: 0
            }
        );
        let mut set = ComponentSet::new();
        set.add(
            "idle",
            1,
            Box::new(Fixed {
                at: vec![],
                seen: Rc::default(),
            }),
        )
        .unwrap();
        assert_eq!(set.run(10).unwrap().ticks, 0);
    }

    /// Never idles: trips the runaway guard.
    struct Forever;
    impl Component for Forever {
        fn next_tick(&mut self, from: Cycle) -> Option<Cycle> {
            Some(from)
        }
        fn tick(&mut self, _now: Cycle, _local: Cycle, _ctx: &mut TickCtx) {}
    }

    #[test]
    fn tick_budget_is_a_typed_error() {
        let mut set = ComponentSet::new();
        set.add("forever", 3, Box::new(Forever)).unwrap();
        match set.run(7) {
            Err(SchedError::TickBudget { ticks: 7, at }) => assert_eq!(at, 21),
            other => panic!("expected TickBudget, got {other:?}"),
        }
    }

    #[test]
    fn zero_divider_and_unknown_component_are_typed_errors() {
        let mut set = ComponentSet::new();
        assert_eq!(
            set.add("bad", 0, Box::new(Forever)).err(),
            Some(SchedError::ZeroDivider { comp: 0 })
        );

        struct BadRetune;
        impl Component for BadRetune {
            fn next_tick(&mut self, from: Cycle) -> Option<Cycle> {
                (from == 0).then_some(0)
            }
            fn tick(&mut self, _now: Cycle, _local: Cycle, ctx: &mut TickCtx) {
                ctx.set_divider(99, 2);
            }
        }
        let mut set = ComponentSet::new();
        set.add("bad-retune", 1, Box::new(BadRetune)).unwrap();
        assert_eq!(
            set.run(10).err(),
            Some(SchedError::UnknownComponent { comp: 99 })
        );
    }

    #[test]
    fn run_is_single_shot() {
        let mut set = ComponentSet::new();
        set.run(1).unwrap();
        assert_eq!(set.run(1).err(), Some(SchedError::AlreadyRan));
        assert_eq!(
            set.add("late", 1, Box::new(Forever)).err(),
            Some(SchedError::AlreadyRan)
        );
    }
}
