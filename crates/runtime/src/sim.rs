//! The fluent simulation API: [`Simulation::builder`] assembles an SoC,
//! a scheduling policy and a workload scenario into a runnable
//! [`Simulation`].
//!
//! ```
//! use camdn_runtime::{PolicyKind, Simulation, Workload};
//! use camdn_models::zoo;
//!
//! let result = Simulation::builder()
//!     .policy(PolicyKind::CamdnFull)
//!     .workload(Workload::closed(vec![zoo::mobilenet_v2(), zoo::resnet50()], 2))
//!     .seed(7)
//!     .run()
//!     .expect("valid configuration");
//! assert_eq!(result.summary.tasks, 2);
//! assert_eq!(result.tasks().len(), 2); // per-task detail (default level)
//! ```

use crate::engine::{Engine, PolicyKind, SimParams};
use crate::error::EngineError;
use crate::fault::FaultPlan;
use crate::policies::{builtin_policy, create_policy, Policy};
use crate::result::{DetailLevel, RunOutput};
use crate::scenario::Workload;
use camdn_cache::CacheScratchPool;
use camdn_common::config::SocConfig;
use camdn_common::types::Cycle;
use camdn_mapper::{MapperConfig, PlanCache};
use std::sync::Arc;
use std::time::Duration;

/// Which policy the builder should instantiate at build time.
enum PolicyChoice {
    Kind(PolicyKind),
    Named(String),
    Instance(Box<dyn Policy>),
}

/// A fully-assembled simulation, ready to run once.
pub struct Simulation {
    engine: Engine,
}

impl Simulation {
    /// Starts assembling a simulation. Defaults: Table II SoC, the
    /// shared baseline policy, seed `0xCA3D41`, one warm-up round, a
    /// 200k-cycle scheduling epoch and [`DetailLevel::Tasks`] output.
    /// A workload must be supplied.
    pub fn builder() -> SimulationBuilder {
        SimulationBuilder {
            soc: SocConfig::paper_default(),
            policy: PolicyChoice::Kind(PolicyKind::SharedBaseline),
            workload: None,
            seed: 0xCA3D41,
            warmup_rounds: 1,
            qos_scale: None,
            epoch_cycles: 200_000,
            mapper: MapperConfig::paper_default(),
            lookahead: None,
            reference_model: false,
            plan_cache: None,
            cache_scratch: None,
            detail: DetailLevel::Tasks,
            queue_sample_cycles: None,
            fault_plan: None,
            max_sim_cycles: None,
            max_wall: None,
            admission_control: false,
            tag_pass_only: false,
            legacy_scheduler: false,
        }
    }

    /// Runs the simulation to completion.
    pub fn run(mut self) -> Result<RunOutput, EngineError> {
        self.engine.run()
    }
}

/// Fluent builder for a [`Simulation`].
pub struct SimulationBuilder {
    soc: SocConfig,
    policy: PolicyChoice,
    workload: Option<Workload>,
    seed: u64,
    warmup_rounds: u32,
    qos_scale: Option<f64>,
    epoch_cycles: Cycle,
    mapper: MapperConfig,
    lookahead: Option<f64>,
    reference_model: bool,
    plan_cache: Option<Arc<PlanCache>>,
    cache_scratch: Option<Arc<CacheScratchPool>>,
    detail: DetailLevel,
    queue_sample_cycles: Option<Cycle>,
    fault_plan: Option<FaultPlan>,
    max_sim_cycles: Option<Cycle>,
    max_wall: Option<Duration>,
    admission_control: bool,
    tag_pass_only: bool,
    legacy_scheduler: bool,
}

impl SimulationBuilder {
    /// Sets the SoC parameters (default: Table II).
    pub fn soc(mut self, soc: SocConfig) -> Self {
        self.soc = soc;
        self
    }

    /// Selects a built-in policy.
    pub fn policy(mut self, kind: PolicyKind) -> Self {
        self.policy = PolicyChoice::Kind(kind);
        self
    }

    /// Selects a policy by registry name (resolved at [`build`]
    /// time against the process-global registry; see
    /// [`register_policy`](crate::register_policy)).
    ///
    /// [`build`]: SimulationBuilder::build
    pub fn policy_named(mut self, name: impl Into<String>) -> Self {
        self.policy = PolicyChoice::Named(name.into());
        self
    }

    /// Supplies a policy instance directly (custom systems that are not
    /// registered).
    pub fn policy_instance(mut self, policy: Box<dyn Policy>) -> Self {
        self.policy = PolicyChoice::Instance(policy);
        self
    }

    /// Sets the workload scenario (required).
    pub fn workload(mut self, workload: Workload) -> Self {
        self.workload = Some(workload);
        self
    }

    /// Sets the RNG seed (dispatch jitter, NPU choice, arrivals).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Leading inferences per task excluded from statistics (cache
    /// warm-up; default 1). Applies to closed-loop workloads only —
    /// open-loop (Poisson/bursty) runs measure every arrival, since
    /// their per-task request counts vary.
    pub fn warmup_rounds(mut self, rounds: u32) -> Self {
        self.warmup_rounds = rounds;
        self
    }

    /// Enables QoS mode at a deadline scale over the Table I targets
    /// (0.8 = QoS-H, 1.0 = QoS-M, 1.2 = QoS-L).
    pub fn qos_scale(mut self, scale: f64) -> Self {
        self.qos_scale = Some(scale);
        self
    }

    /// Bandwidth/NPU reallocation epoch in cycles (default 200_000).
    pub fn epoch_cycles(mut self, cycles: Cycle) -> Self {
        self.epoch_cycles = cycles;
        self
    }

    /// Sets the offline mapper configuration.
    pub fn mapper(mut self, mapper: MapperConfig) -> Self {
        self.mapper = mapper;
        self
    }

    /// Overrides Algorithm 1's look-ahead fraction on policies that
    /// carry the knob (paper default 0.2).
    pub fn lookahead(mut self, factor: f64) -> Self {
        self.lookahead = Some(factor);
        self
    }

    /// Serves model mappings from a shared [`PlanCache`] instead of
    /// re-running the offline mapper at build time.
    ///
    /// Mapping is a pure function of `(model, MapperConfig)`, so the
    /// result is bit-identical with or without the cache; what changes
    /// is that a cache shared across many builders (a sweep grid, a
    /// service assembling engines per request) solves each distinct
    /// key once instead of once per simulation.
    pub fn plan_cache(mut self, cache: Arc<PlanCache>) -> Self {
        self.plan_cache = Some(cache);
        self
    }

    /// Draws the shared cache's tag planes from (and parks them back
    /// into) a [`CacheScratchPool`] instead of allocating them fresh.
    ///
    /// The pool's generation-counter handshake makes reuse invisible:
    /// results are bit-identical with or without it. What changes is
    /// that a worker running many simulations back to back (a sweep
    /// cell worker, a serving loop) allocates the multi-MB planes once
    /// instead of once per run. Intended to be shared between the
    /// *consecutive* builds of one worker, not across threads.
    pub fn cache_scratch(mut self, pool: Arc<CacheScratchPool>) -> Self {
        self.cache_scratch = Some(pool);
        self
    }

    /// Like [`cache_scratch`](SimulationBuilder::cache_scratch), but
    /// only installs `pool` if no pool was set yet — executors use this
    /// to offer their per-worker pool without overriding an explicit
    /// caller choice.
    pub fn cache_scratch_default(mut self, pool: &Arc<CacheScratchPool>) -> Self {
        self.cache_scratch.get_or_insert_with(|| Arc::clone(pool));
        self
    }

    /// Selects how much output the run retains (default
    /// [`DetailLevel::Tasks`]): [`DetailLevel::Summary`] keeps only the
    /// compact scalar [`RunSummary`](crate::RunSummary) — the right
    /// level for big sweeps — while [`DetailLevel::Full`] adds the
    /// run-level latency histogram to the per-task table. The summary
    /// is computed identically at every level.
    pub fn detail(mut self, level: DetailLevel) -> Self {
        self.detail = level;
        self
    }

    /// Samples the outstanding-request depth (arrived but not yet
    /// retired, across all tasks) every `cycles` into
    /// [`RunDetail::queue_depth`](crate::RunDetail). Off by default:
    /// an unsampled run records nothing and is bit-identical to one
    /// built before this knob existed. Requires a detail level of at
    /// least [`DetailLevel::Tasks`] for the samples to be returned.
    pub fn sample_queue_depth(mut self, cycles: Cycle) -> Self {
        self.queue_sample_cycles = Some(cycles);
        self
    }

    /// Injects a [`FaultPlan`]: a validated, time-ordered schedule of
    /// NPU failures, DRAM channel degradations and DVFS throttles the
    /// engine applies at their event timestamps. Off by default — a
    /// run without a plan is bit-for-bit identical to one built before
    /// this knob existed. The plan is checked against the SoC (NPU and
    /// channel indices in range) at [`build`](SimulationBuilder::build)
    /// time.
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Caps the run at a simulated-cycle budget: the first event past
    /// `cycles` stops the run with a typed
    /// [`EngineError::BudgetExceeded`] carrying the partial results.
    /// Deterministic — the same configuration always stops at the same
    /// event.
    pub fn max_sim_cycles(mut self, cycles: Cycle) -> Self {
        self.max_sim_cycles = Some(cycles);
        self
    }

    /// Caps the run at a wall-clock budget, polled every few thousand
    /// events. Where the run stops depends on host speed — prefer
    /// [`max_sim_cycles`](SimulationBuilder::max_sim_cycles) when the
    /// partial result must be reproducible.
    pub fn max_wall(mut self, budget: Duration) -> Self {
        self.max_wall = Some(budget);
        self
    }

    /// Enables deadline-aware admission control (default off): an
    /// open-loop QoS arrival whose queue-predicted completion already
    /// misses its deadline is shed instead of dispatched, counted in
    /// [`RunSummary::shed_requests`](crate::RunSummary) and per task in
    /// [`TaskSummary::shed`](crate::TaskSummary). No effect on
    /// closed-loop workloads or without [`qos_scale`]
    /// (there is no deadline to miss).
    ///
    /// [`qos_scale`]: SimulationBuilder::qos_scale
    pub fn admission_control(mut self, enabled: bool) -> Self {
        self.admission_control = enabled;
        self
    }

    /// Diagnostic mode for wall-time attribution (default `false`):
    /// the shared cache runs its tag pass — with every state
    /// transition — but skips the DRAM memory pass, charging only the
    /// hit latency and port floor. Simulated timings are **not**
    /// meaningful in this mode; the throughput harness uses it to
    /// estimate the tag pass's share of a scenario's wall clock.
    pub fn tag_pass_only(mut self, enabled: bool) -> Self {
        self.tag_pass_only = enabled;
        self
    }

    /// Routes all memory-system timing through the per-line *reference
    /// model* instead of the batched fast paths (default `false`).
    ///
    /// Both models are bit-identical by construction — this switch
    /// exists so differential tests can prove it on full runs and so
    /// the throughput harness can measure the speedup against it.
    pub fn reference_model(mut self, reference: bool) -> Self {
        self.reference_model = reference;
        self
    }

    /// Drives the run with the retained legacy monolithic advance loop
    /// instead of the component-structured scheduler (default `false`).
    ///
    /// The two loops are bit-for-bit equivalent by construction — this
    /// switch exists so the cross-engine differential suite
    /// (`crates/camdn/tests/sched_equivalence.rs`) can prove it on full
    /// runs and so the throughput harness can report the scheduler's
    /// overhead. It composes with
    /// [`reference_model`](SimulationBuilder::reference_model): the
    /// scheduler choice and the memory-model choice are independent
    /// axes.
    pub fn legacy_scheduler(mut self, legacy: bool) -> Self {
        self.legacy_scheduler = legacy;
        self
    }

    /// Validates the configuration and assembles the engine.
    pub fn build(self) -> Result<Simulation, EngineError> {
        let workload = self.workload.ok_or_else(|| {
            EngineError::InvalidConfig("a workload is required — call .workload(...)".into())
        })?;
        if let Some(scale) = self.qos_scale {
            let ok = scale.is_finite() && scale > 0.0;
            if !ok {
                return Err(EngineError::InvalidConfig(
                    "qos scale must be positive and finite".into(),
                ));
            }
        }
        if self.epoch_cycles == 0 {
            return Err(EngineError::InvalidConfig(
                "epoch_cycles must be positive".into(),
            ));
        }
        if self.queue_sample_cycles == Some(0) {
            return Err(EngineError::InvalidConfig(
                "queue sampling interval must be positive".into(),
            ));
        }
        if self.max_sim_cycles == Some(0) {
            return Err(EngineError::InvalidConfig(
                "the simulated-cycle budget must be positive".into(),
            ));
        }
        if self.max_wall == Some(Duration::ZERO) {
            return Err(EngineError::InvalidConfig(
                "the wall-clock budget must be positive".into(),
            ));
        }
        let mut policy = match self.policy {
            PolicyChoice::Kind(kind) => builtin_policy(kind),
            PolicyChoice::Named(name) => create_policy(&name)?,
            PolicyChoice::Instance(p) => p,
        };
        if let Some(f) = self.lookahead {
            policy.set_lookahead(f);
        }
        let params = SimParams {
            soc: self.soc,
            seed: self.seed,
            warmup_rounds: self.warmup_rounds,
            qos_scale: self.qos_scale,
            epoch_cycles: self.epoch_cycles,
            mapper: self.mapper,
            reference_model: self.reference_model,
            detail: self.detail,
            queue_sample_cycles: self.queue_sample_cycles,
            fault_plan: self.fault_plan,
            max_sim_cycles: self.max_sim_cycles,
            max_wall: self.max_wall,
            admission_control: self.admission_control,
            legacy_scheduler: self.legacy_scheduler,
        };
        let mut engine = Engine::with_policy(
            params,
            policy,
            &workload,
            self.plan_cache.as_deref(),
            self.cache_scratch,
        )?;
        engine.set_tag_pass_only(self.tag_pass_only);
        Ok(Simulation { engine })
    }

    /// [`build`](SimulationBuilder::build) + [`Simulation::run`] in one
    /// call.
    pub fn run(self) -> Result<RunOutput, EngineError> {
        self.build()?.run()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use camdn_models::zoo;

    #[test]
    fn missing_or_empty_workload_is_an_error() {
        // Never calling .workload(...) names the real mistake...
        match Simulation::builder().build().err() {
            Some(EngineError::InvalidConfig(msg)) => {
                assert!(msg.contains("workload is required"), "{msg}")
            }
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
        // ...while an explicitly empty model list is EmptyWorkload.
        assert_eq!(
            Simulation::builder()
                .workload(Workload::closed(vec![], 2))
                .build()
                .err(),
            Some(EngineError::EmptyWorkload)
        );
    }

    #[test]
    fn invalid_knobs_are_rejected() {
        let w = Workload::closed(vec![zoo::mobilenet_v2()], 1);
        assert!(matches!(
            Simulation::builder()
                .workload(w.clone())
                .qos_scale(0.0)
                .build(),
            Err(EngineError::InvalidConfig(_))
        ));
        assert!(matches!(
            Simulation::builder()
                .workload(w.clone())
                .epoch_cycles(0)
                .build(),
            Err(EngineError::InvalidConfig(_))
        ));
        let mut soc = SocConfig::paper_default();
        soc.npu.cores = 0;
        assert!(matches!(
            Simulation::builder().workload(w.clone()).soc(soc).build(),
            Err(EngineError::InvalidConfig(_))
        ));
        // A zero-channel DRAM is a typed error, not a deep panic.
        let mut soc = SocConfig::paper_default();
        soc.dram.channels = 0;
        assert!(matches!(
            Simulation::builder().workload(w).soc(soc).build(),
            Err(EngineError::InvalidConfig(_))
        ));
    }

    #[test]
    fn degenerate_configs_are_typed_errors() {
        // Warm-up that swallows every measured round.
        let starved = Workload::closed(vec![zoo::mobilenet_v2()], 1);
        match Simulation::builder().workload(starved).build().err() {
            Some(EngineError::InvalidConfig(msg)) => {
                assert!(msg.contains("warmup"), "{msg}")
            }
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
        // Cache geometry the model would otherwise assert on.
        let mut soc = SocConfig::paper_default();
        soc.cache.ways = 12; // not a power of two
        let w = Workload::closed(vec![zoo::mobilenet_v2()], 2);
        match Simulation::builder().workload(w).soc(soc).build().err() {
            Some(EngineError::InvalidConfig(msg)) => {
                assert!(msg.contains("power of two"), "{msg}")
            }
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
    }

    #[test]
    fn unknown_policy_name_is_reported() {
        let w = Workload::closed(vec![zoo::mobilenet_v2()], 1);
        assert_eq!(
            Simulation::builder()
                .workload(w)
                .policy_named("no-such-policy")
                .build()
                .err(),
            Some(EngineError::UnknownPolicy("no-such-policy".into()))
        );
    }

    #[test]
    fn plan_cache_is_bit_identical_and_shared() {
        let cache = Arc::new(PlanCache::new());
        let models = vec![zoo::mobilenet_v2(), zoo::resnet50()];
        let mk = || {
            Simulation::builder()
                .policy(PolicyKind::CamdnFull)
                .workload(Workload::closed(models.clone(), 2))
        };
        let plain = mk().run().unwrap();
        let cached_cold = mk().plan_cache(Arc::clone(&cache)).run().unwrap();
        let cached_warm = mk().plan_cache(Arc::clone(&cache)).run().unwrap();
        assert_eq!(plain, cached_cold);
        assert_eq!(plain, cached_warm);
        let s = cache.stats();
        assert_eq!(s.model_misses, 2, "two distinct models mapped once");
        assert_eq!(s.model_hits, 2, "second run served entirely from cache");
    }

    #[test]
    fn queue_depth_sampling_is_opt_in_and_deterministic() {
        let mk = || {
            Simulation::builder()
                .policy(PolicyKind::CamdnFull)
                .workload(Workload::poisson(
                    vec![zoo::mobilenet_v2(), zoo::resnet50()],
                    2.0,
                    4.0,
                ))
                .seed(11)
        };
        // Off by default: detail carries no samples and the run is
        // unchanged by a sampled run existing elsewhere.
        let plain = mk().run().unwrap();
        assert!(plain.detail.as_ref().unwrap().queue_depth.is_empty());
        let sampled = mk().sample_queue_depth(100_000).run().unwrap();
        let sampled2 = mk().sample_queue_depth(100_000).run().unwrap();
        assert_eq!(plain.summary, sampled.summary, "sampling must not perturb");
        assert_eq!(sampled, sampled2, "sampling is deterministic");
        let depth = &sampled.detail.as_ref().unwrap().queue_depth;
        assert!(!depth.is_empty(), "a 4 ms run spans many 100k boundaries");
        for (i, s) in depth.iter().enumerate() {
            assert_eq!(s.cycle, (i as Cycle + 1) * 100_000);
        }
        assert!(depth.iter().any(|s| s.outstanding > 0));
        // A zero interval is a typed error, not a hang.
        let w = Workload::closed(vec![zoo::mobilenet_v2()], 2);
        assert!(matches!(
            Simulation::builder()
                .workload(w)
                .sample_queue_depth(0)
                .build(),
            Err(EngineError::InvalidConfig(_))
        ));
    }

    #[test]
    fn named_and_kind_paths_agree() {
        let models = vec![zoo::mobilenet_v2(), zoo::efficientnet_b0()];
        let by_kind = Simulation::builder()
            .policy(PolicyKind::CamdnFull)
            .workload(Workload::closed(models.clone(), 2))
            .run()
            .unwrap();
        let by_name = Simulation::builder()
            .policy_named("camdn-full")
            .workload(Workload::closed(models, 2))
            .run()
            .unwrap();
        assert_eq!(by_kind, by_name);
    }
}
