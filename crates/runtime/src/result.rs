//! The result pipeline: compact run summaries, opt-in per-task detail,
//! and the deprecated [`RunResult`] shim.
//!
//! A simulation's observable output is split in two:
//!
//! * [`RunSummary`] — a `Copy` struct of scalar aggregates (hit rate,
//!   latency, DRAM traffic, makespan, SLA rate) plus a compact
//!   [`LatencyTail`] (fixed-size bucket counts; p50/p90/p95/p99/p99.9
//!   queries). This is what scaling studies keep per grid cell: its
//!   size is independent of the tenant count, so a 256-tenant ×
//!   1000-cell sweep stays memory-bounded — and tail percentiles are
//!   available even when no detail is retained.
//! * [`RunDetail`] — the per-task [`TaskSummary`] table and, at
//!   [`DetailLevel::Full`], a latency histogram. Opt-in via
//!   [`SimulationBuilder::detail`](crate::SimulationBuilder::detail),
//!   because its size grows with the number of co-located tasks.
//!
//! Every run returns a [`RunOutput`] carrying the summary, the policy
//! label and (depending on the configured [`DetailLevel`]) the detail.
//! The summary is computed identically at every detail level, so a
//! summary-only run is bit-for-bit the `summary` of a detailed run
//! (tested in `crates/camdn/tests/results_pipeline.rs`).
//!
//! The pre-split [`RunResult`] survives as a deprecated shim that
//! [`RunOutput::legacy_result`] assembles bit-for-bit from the pair.

use camdn_common::stats::{bucket_quantile, Histogram};
use camdn_common::types::{cycles_to_ms, Cycle};
use serde::{Deserialize, Serialize};

/// How much per-run output the engine should retain.
///
/// Ordered: each level includes everything below it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum DetailLevel {
    /// Scalar aggregates only ([`RunSummary`]); `RunOutput::detail` is
    /// `None`. The right level for large sweeps.
    Summary,
    /// Summary plus the per-task [`TaskSummary`] table.
    Tasks,
    /// Summary, per-task table and the run-level latency histogram.
    Full,
}

/// Latency-histogram bucket edges, in cycles (1 GHz clock): powers of
/// two from ~65 µs (`2^16`) to ~1.07 s (`2^30`).
pub const LATENCY_HIST_EDGES: [u64; 15] = [
    1 << 16,
    1 << 17,
    1 << 18,
    1 << 19,
    1 << 20,
    1 << 21,
    1 << 22,
    1 << 23,
    1 << 24,
    1 << 25,
    1 << 26,
    1 << 27,
    1 << 28,
    1 << 29,
    1 << 30,
];

/// Number of buckets of the fixed latency ladder
/// ([`LATENCY_HIST_EDGES`] plus the open-ended overflow bucket).
pub const LATENCY_HIST_BUCKETS: usize = LATENCY_HIST_EDGES.len() + 1;

/// Compact tail-latency statistics of one run: a fixed-size bucket
/// ladder over [`LATENCY_HIST_EDGES`], queryable for p50/p90/p95/p99/
/// p99.9, and carried *inside* [`RunSummary`] — so percentiles are
/// available even at [`DetailLevel::Summary`], where no [`RunDetail`]
/// (and no heap-allocated [`Histogram`]) is retained.
///
/// `Copy` and exactly `O(bins)` in size (16 bucket counts + min/max),
/// independent of the inference count, so sweep cells stay
/// memory-flat. Tails over the same ladder are mergeable
/// ([`LatencyTail::merge`]): merged counts pool the underlying
/// samples, which is how [`SeedAggregate`] derives per-coordinate
/// percentiles from *pooled* seeds rather than averaging per-seed
/// percentiles (percentiles do not average).
///
/// Quantile estimates inherit the [`bucket_quantile`] guarantees:
/// never below the exact sorted-sample quantile, and
/// within the matching bucket's width of it (a `< 2×` relative error
/// on this power-of-two ladder).
///
/// [`SeedAggregate`]: https://docs.rs/camdn-sweep
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyTail {
    /// Per-bucket sample counts over [`LATENCY_HIST_EDGES`].
    counts: [u64; LATENCY_HIST_BUCKETS],
    /// Total recorded samples (the sum of `counts`).
    total: u64,
    /// Smallest recorded latency in cycles (`u64::MAX` when empty).
    min_cycles: u64,
    /// Largest recorded latency in cycles (`0` when empty).
    max_cycles: u64,
}

impl Default for LatencyTail {
    fn default() -> Self {
        LatencyTail::new()
    }
}

impl LatencyTail {
    /// An empty tail (no samples; every percentile reads 0.0 ms).
    pub fn new() -> Self {
        LatencyTail {
            counts: [0; LATENCY_HIST_BUCKETS],
            total: 0,
            min_cycles: u64::MAX,
            max_cycles: 0,
        }
    }

    /// Reassembles a tail from its serialized parts (the JSONL cell
    /// log stores counts + min + max; the total is the counts' sum).
    pub fn from_parts(
        counts: [u64; LATENCY_HIST_BUCKETS],
        min_cycles: u64,
        max_cycles: u64,
    ) -> Self {
        let total = counts.iter().sum();
        LatencyTail {
            counts,
            total,
            min_cycles: if total == 0 { u64::MAX } else { min_cycles },
            max_cycles: if total == 0 { 0 } else { max_cycles },
        }
    }

    /// Records one inference latency in cycles.
    pub fn record(&mut self, latency_cycles: Cycle) {
        let idx = LATENCY_HIST_EDGES.partition_point(|&e| e <= latency_cycles);
        self.counts[idx] += 1;
        self.total += 1;
        self.min_cycles = self.min_cycles.min(latency_cycles);
        self.max_cycles = self.max_cycles.max(latency_cycles);
    }

    /// Folds another tail into this one (bucket counts add, min/max
    /// pool) — quantiles of the merged tail are quantiles of the
    /// pooled samples.
    pub fn merge(&mut self, other: &LatencyTail) {
        for (c, o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
        self.total += other.total;
        self.min_cycles = self.min_cycles.min(other.min_cycles);
        self.max_cycles = self.max_cycles.max(other.max_cycles);
    }

    /// Recorded sample count.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Per-bucket counts ([`LATENCY_HIST_BUCKETS`] entries over
    /// [`LATENCY_HIST_EDGES`]).
    pub fn counts(&self) -> &[u64; LATENCY_HIST_BUCKETS] {
        &self.counts
    }

    /// Smallest recorded latency in cycles (`None` when empty).
    pub fn min_cycles(&self) -> Option<u64> {
        (self.total > 0).then_some(self.min_cycles)
    }

    /// Largest recorded latency in cycles (`None` when empty).
    pub fn max_cycles(&self) -> Option<u64> {
        (self.total > 0).then_some(self.max_cycles)
    }

    /// Upper-bound estimate of the `q`-quantile latency in cycles
    /// (`None` when empty); see [`bucket_quantile`] for the
    /// documented error bound.
    pub fn quantile_cycles(&self, q: f64) -> Option<u64> {
        bucket_quantile(&LATENCY_HIST_EDGES, &self.counts, self.max_cycles, q)
    }

    /// Upper-bound estimate of the `q`-quantile latency in
    /// milliseconds (0.0 when empty).
    pub fn quantile_ms(&self, q: f64) -> f64 {
        self.quantile_cycles(q).map_or(0.0, cycles_to_ms)
    }

    /// Median latency estimate, ms.
    pub fn p50_ms(&self) -> f64 {
        self.quantile_ms(0.50)
    }

    /// 90th-percentile latency estimate, ms.
    pub fn p90_ms(&self) -> f64 {
        self.quantile_ms(0.90)
    }

    /// 95th-percentile latency estimate, ms.
    pub fn p95_ms(&self) -> f64 {
        self.quantile_ms(0.95)
    }

    /// 99th-percentile latency estimate, ms.
    pub fn p99_ms(&self) -> f64 {
        self.quantile_ms(0.99)
    }

    /// 99.9th-percentile latency estimate, ms.
    pub fn p999_ms(&self) -> f64 {
        self.quantile_ms(0.999)
    }
}

/// Per-task summary of a run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskSummary {
    /// Model abbreviation (Table I).
    pub abbr: String,
    /// QoS target in ms.
    pub qos_ms: f64,
    /// Measured inferences (after warm-up).
    pub inferences: usize,
    /// Mean end-to-end latency, ms.
    pub mean_latency_ms: f64,
    /// Mean DRAM traffic per inference, MB.
    pub mean_dram_mb: f64,
    /// SLA satisfaction rate (QoS mode).
    pub sla_rate: f64,
    /// Arrivals shed by deadline-aware admission control (0 unless
    /// admission control is on and the task missed its deadline
    /// prediction).
    #[serde(default)]
    pub shed: u64,
}

/// Compact scalar aggregates of one run. `Copy`: its size does not
/// depend on the workload, so grid sweeps can keep one per cell.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RunSummary {
    /// Number of tasks in the workload.
    pub tasks: usize,
    /// Total measured inferences across all tasks (after warm-up).
    pub inferences: usize,
    /// Shared-cache hit rate (transparent path for baselines;
    /// controlled hits over all NPU line movements for CaMDN).
    pub cache_hit_rate: f64,
    /// Mean of per-task mean latencies, ms.
    pub avg_latency_ms: f64,
    /// Mean DRAM traffic per model inference, MB.
    pub mem_mb_per_model: f64,
    /// Wall-clock span of the simulation, ms.
    pub makespan_ms: f64,
    /// Inference-weighted SLA satisfaction rate over all tasks
    /// (1.0 when nothing was measured, or without QoS deadlines).
    pub sla_rate: f64,
    /// Line transfers saved by multicast, MB.
    pub multicast_saved_mb: f64,
    /// Tail-latency statistics over every measured inference:
    /// p50/p90/p95/p99/p99.9 queries at O(bins) memory, populated at
    /// *every* [`DetailLevel`] (mean latency hides the SLA-violating
    /// p99 spikes multi-tenant cache contention produces).
    pub latency_tail: LatencyTail,
    /// Arrivals shed by deadline-aware admission control across all
    /// tasks (always 0 unless
    /// [`SimulationBuilder::admission_control`](crate::SimulationBuilder::admission_control)
    /// is on).
    #[serde(default)]
    pub shed_requests: u64,
    /// Inferences killed by an NPU failure and re-queued (always 0
    /// without a [`FaultPlan`](crate::FaultPlan)).
    #[serde(default)]
    pub retried_inferences: u64,
    /// Inferences dropped after exhausting the fault-retry budget
    /// (always 0 without a [`FaultPlan`](crate::FaultPlan)).
    #[serde(default)]
    pub dropped_inferences: u64,
}

/// One point of an opt-in queue-depth timeline: how many requests had
/// arrived but not yet finished at a fixed sampling boundary.
///
/// Produced only when
/// [`SimulationBuilder::sample_queue_depth`](crate::SimulationBuilder::sample_queue_depth)
/// sets a sampling interval; the default engine run records none.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueueSample {
    /// Sample time in engine cycles (a multiple of the interval).
    pub cycle: Cycle,
    /// Requests arrived but not yet retired across all tasks
    /// (executing requests count: depth 0 means a fully idle system).
    pub outstanding: u32,
}

/// Opt-in per-task (and, at [`DetailLevel::Full`], per-latency) detail
/// of one run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunDetail {
    /// Per-task summaries in task order.
    pub tasks: Vec<TaskSummary>,
    /// Histogram of measured inference latencies in cycles over
    /// [`LATENCY_HIST_EDGES`] (`None` below [`DetailLevel::Full`]).
    pub latency_hist: Option<Histogram>,
    /// Queue-depth timeline at the configured sampling interval
    /// (empty unless queue sampling was requested).
    pub queue_depth: Vec<QueueSample>,
}

impl RunDetail {
    /// Rough heap footprint of this detail block, used by the sweep
    /// layer's per-grid memory budget.
    pub fn approx_bytes(&self) -> u64 {
        let tasks: u64 = self
            .tasks
            .iter()
            .map(|t| (std::mem::size_of::<TaskSummary>() + t.abbr.len()) as u64)
            .sum();
        let hist = self
            .latency_hist
            .as_ref()
            .map(|h| 8 * (h.edges().len() + h.counts().len()) as u64)
            .unwrap_or(0);
        let queue = (self.queue_depth.len() * std::mem::size_of::<QueueSample>()) as u64;
        std::mem::size_of::<RunDetail>() as u64 + tasks + hist + queue
    }
}

/// Everything one engine run produces: the policy label, the compact
/// [`RunSummary`], and — when the builder asked for it — a
/// [`RunDetail`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunOutput {
    /// Label of the policy that produced this result.
    pub policy: String,
    /// Scalar aggregates (always present).
    pub summary: RunSummary,
    /// Per-task detail (`None` when the run was summary-only).
    pub detail: Option<RunDetail>,
}

impl RunOutput {
    /// The per-task summaries.
    ///
    /// # Panics
    ///
    /// Panics when the run was summary-only — request detail with
    /// [`SimulationBuilder::detail`](crate::SimulationBuilder::detail)
    /// (or the sweep builder's `detail`) first. Use
    /// [`RunOutput::try_tasks`] for a non-panicking variant.
    pub fn tasks(&self) -> &[TaskSummary] {
        self.try_tasks()
            // camdn-lint: allow(panic-in-lib, reason = "documented panicking accessor; try_tasks is the fallible variant")
            .expect("run was summary-only; request DetailLevel::Tasks or ::Full")
    }

    /// The per-task summaries, or `None` for a summary-only run.
    pub fn try_tasks(&self) -> Option<&[TaskSummary]> {
        self.detail.as_ref().map(|d| d.tasks.as_slice())
    }

    /// Assembles the pre-split [`RunResult`] from the pair — bit-for-bit
    /// the value the old aggregate returned. `None` when the run was
    /// summary-only (the shim needs the per-task table).
    #[deprecated(
        since = "0.4.0",
        note = "read `RunOutput::summary` / `RunOutput::detail` directly"
    )]
    #[allow(deprecated)]
    pub fn legacy_result(&self) -> Option<RunResult> {
        self.detail.as_ref().map(|d| RunResult {
            policy: self.policy.clone(),
            tasks: d.tasks.clone(),
            cache_hit_rate: self.summary.cache_hit_rate,
            avg_latency_ms: self.summary.avg_latency_ms,
            mem_mb_per_model: self.summary.mem_mb_per_model,
            makespan_ms: self.summary.makespan_ms,
            multicast_saved_mb: self.summary.multicast_saved_mb,
        })
    }
}

/// Aggregate result of one engine run, as a single struct (the
/// pre-split API).
#[deprecated(
    since = "0.4.0",
    note = "runs now return `RunOutput` (a `RunSummary` + optional `RunDetail`); \
            assemble this shim with `RunOutput::legacy_result` if needed"
)]
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunResult {
    /// Label of the policy that produced this result.
    pub policy: String,
    /// Per-task summaries in task order.
    pub tasks: Vec<TaskSummary>,
    /// Shared-cache hit rate (transparent path for baselines; controlled
    /// hits over all NPU line movements for CaMDN).
    pub cache_hit_rate: f64,
    /// Mean of per-task mean latencies, ms.
    pub avg_latency_ms: f64,
    /// Mean DRAM traffic per model inference, MB.
    pub mem_mb_per_model: f64,
    /// Wall-clock span of the simulation, ms.
    pub makespan_ms: f64,
    /// Line transfers saved by multicast, MB.
    pub multicast_saved_mb: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn output(detail: Option<RunDetail>) -> RunOutput {
        RunOutput {
            policy: "Baseline".into(),
            summary: RunSummary {
                tasks: 1,
                inferences: 2,
                cache_hit_rate: 0.5,
                avg_latency_ms: 1.25,
                mem_mb_per_model: 3.5,
                makespan_ms: 10.0,
                sla_rate: 1.0,
                multicast_saved_mb: 0.0,
                latency_tail: LatencyTail::new(),
                shed_requests: 0,
                retried_inferences: 0,
                dropped_inferences: 0,
            },
            detail,
        }
    }

    fn one_task_detail() -> RunDetail {
        RunDetail {
            tasks: vec![TaskSummary {
                abbr: "MB".into(),
                qos_ms: 10.0,
                inferences: 2,
                mean_latency_ms: 1.25,
                mean_dram_mb: 3.5,
                sla_rate: 1.0,
                shed: 0,
            }],
            latency_hist: None,
            queue_depth: Vec::new(),
        }
    }

    #[test]
    fn detail_levels_are_ordered() {
        assert!(DetailLevel::Summary < DetailLevel::Tasks);
        assert!(DetailLevel::Tasks < DetailLevel::Full);
    }

    #[test]
    #[allow(deprecated)]
    fn legacy_shim_is_assembled_from_the_pair() {
        let out = output(Some(one_task_detail()));
        let legacy = out.legacy_result().expect("detail present");
        assert_eq!(legacy.policy, out.policy);
        assert_eq!(legacy.tasks, out.detail.as_ref().unwrap().tasks);
        assert_eq!(legacy.avg_latency_ms, out.summary.avg_latency_ms);
        assert_eq!(legacy.makespan_ms, out.summary.makespan_ms);
        // A summary-only run cannot back the shim.
        assert!(output(None).legacy_result().is_none());
    }

    #[test]
    #[should_panic(expected = "summary-only")]
    fn tasks_accessor_names_the_fix() {
        let _ = output(None).tasks();
    }

    #[test]
    fn latency_tail_quantiles_track_recorded_samples() {
        let mut t = LatencyTail::new();
        assert_eq!(t.total(), 0);
        assert_eq!(t.quantile_cycles(0.99), None);
        assert_eq!(t.p99_ms(), 0.0, "empty tail is NaN-free");
        assert_eq!(t.min_cycles(), None);
        // 99 fast inferences in [2^20, 2^21), one slow one in
        // [2^24, 2^25): the p50 stays in the fast bucket, the p99.9
        // lands on the straggler's bucket (clamped to the recorded
        // max).
        for _ in 0..99 {
            t.record(1_500_000);
        }
        t.record(20_000_000);
        assert_eq!(t.total(), 100);
        assert_eq!(t.min_cycles(), Some(1_500_000));
        assert_eq!(t.max_cycles(), Some(20_000_000));
        let p50 = t.quantile_cycles(0.50).unwrap();
        assert!((1_500_000..1 << 21).contains(&p50), "p50 {p50}");
        assert_eq!(t.quantile_cycles(0.999), Some(20_000_000));
        assert_eq!(t.quantile_cycles(1.0), Some(20_000_000));
        // ms accessors are cycles_to_ms of the cycle estimates.
        assert!((t.p999_ms() - cycles_to_ms(20_000_000)).abs() < 1e-12);
    }

    #[test]
    fn latency_tail_merge_pools_samples() {
        let mut a = LatencyTail::new();
        let mut b = LatencyTail::new();
        let mut all = LatencyTail::new();
        for (i, v) in [(0u64, 100_000u64), (1, 2_000_000), (2, 40_000_000)]
            .iter()
            .flat_map(|&(k, v)| std::iter::repeat_n((k, v), 5))
        {
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a, all, "merge must pool exactly");
        // An empty merge is the identity (min/max untouched).
        let before = a;
        a.merge(&LatencyTail::new());
        assert_eq!(a, before);
    }

    #[test]
    fn latency_tail_roundtrips_through_parts() {
        let mut t = LatencyTail::new();
        t.record(1 << 18);
        t.record((1 << 26) + 123);
        let rebuilt = LatencyTail::from_parts(
            *t.counts(),
            t.min_cycles().unwrap(),
            t.max_cycles().unwrap(),
        );
        assert_eq!(rebuilt, t);
        // Empty parts normalize to the canonical empty tail.
        let empty = LatencyTail::from_parts([0; LATENCY_HIST_BUCKETS], 7, 9);
        assert_eq!(empty, LatencyTail::new());
    }

    #[test]
    fn approx_bytes_tracks_task_count() {
        let one = one_task_detail().approx_bytes();
        let mut two = one_task_detail();
        two.tasks.push(two.tasks[0].clone());
        assert!(two.approx_bytes() > one);
        let mut full = one_task_detail();
        full.latency_hist = Some(Histogram::new(&LATENCY_HIST_EDGES));
        assert!(full.approx_bytes() > one);
    }
}
