//! QoS metrics of Section IV-A4: SLA satisfaction rate, system
//! throughput (STP) and fairness, following the definitions of the
//! AuRORA paper the evaluation adopts.
//!
//! * **SLA satisfaction rate** — fraction of inferences finishing within
//!   their deadline;
//! * **STP** — the sum of per-task *normalized progress*
//!   `NP_i = T_isolated(i) / T_shared(i)` (a system running `n` tasks at
//!   full isolated speed each would score `n`);
//! * **Fairness** — `min_i NP_i / max_i NP_i`.

use crate::error::EngineError;
use crate::result::TaskSummary;
use serde::{Deserialize, Serialize};

/// Aggregated QoS metrics of one run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QosMetrics {
    /// SLA satisfaction rate over all measured inferences.
    pub sla_rate: f64,
    /// System throughput (sum of normalized progress).
    pub stp: f64,
    /// Min/max fairness over normalized progress.
    pub fairness: f64,
}

/// Computes QoS metrics from a shared run's per-task summaries (see
/// [`RunOutput::tasks`](crate::RunOutput::tasks)) and the matching
/// isolated per-model latencies (`isolated_ms[i]` for task `i`).
///
/// # Errors
///
/// Returns [`EngineError::InvalidConfig`] when `isolated_ms` does not
/// carry exactly one latency per task — an empty or short calibration
/// vector used to be zipped silently, dropping the tail tasks from STP
/// and fairness. Empty `tasks` with empty `isolated_ms` is valid and
/// yields the NaN-free identity metrics (SLA 1.0, STP 0.0,
/// fairness 1.0).
pub fn qos_metrics(tasks: &[TaskSummary], isolated_ms: &[f64]) -> Result<QosMetrics, EngineError> {
    if tasks.len() != isolated_ms.len() {
        return Err(EngineError::InvalidConfig(format!(
            "need one isolated latency per task: {} tasks, {} isolated latencies",
            tasks.len(),
            isolated_ms.len()
        )));
    }
    let mut progress = Vec::with_capacity(tasks.len());
    let mut sla_num = 0.0;
    let mut sla_den = 0.0;
    for (t, &iso) in tasks.iter().zip(isolated_ms) {
        let np = if t.mean_latency_ms > 0.0 {
            (iso / t.mean_latency_ms).min(1.0)
        } else {
            1.0
        };
        progress.push(np);
        sla_num += t.sla_rate * t.inferences as f64;
        sla_den += t.inferences as f64;
    }
    Ok(QosMetrics {
        sla_rate: if sla_den > 0.0 {
            sla_num / sla_den
        } else {
            1.0
        },
        stp: progress.iter().sum(),
        fairness: camdn_common::stats::fairness(&progress),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tasks(lat: &[f64], sla: &[f64]) -> Vec<TaskSummary> {
        lat.iter()
            .zip(sla)
            .enumerate()
            .map(|(i, (&l, &s))| TaskSummary {
                abbr: format!("T{i}"),
                qos_ms: 10.0,
                inferences: 10,
                mean_latency_ms: l,
                mean_dram_mb: 1.0,
                sla_rate: s,
                shed: 0,
            })
            .collect()
    }

    #[test]
    fn perfect_isolation_scores_n() {
        let t = tasks(&[5.0, 5.0], &[1.0, 1.0]);
        let m = qos_metrics(&t, &[5.0, 5.0]).unwrap();
        assert!((m.stp - 2.0).abs() < 1e-12);
        assert!((m.fairness - 1.0).abs() < 1e-12);
        assert!((m.sla_rate - 1.0).abs() < 1e-12);
    }

    #[test]
    fn slowdown_reduces_stp() {
        // Task 0 runs at half speed, task 1 at full speed.
        let t = tasks(&[10.0, 5.0], &[0.5, 1.0]);
        let m = qos_metrics(&t, &[5.0, 5.0]).unwrap();
        assert!((m.stp - 1.5).abs() < 1e-12);
        assert!((m.fairness - 0.5).abs() < 1e-12);
        assert!((m.sla_rate - 0.75).abs() < 1e-12);
    }

    #[test]
    fn progress_is_capped_at_one() {
        // Shared faster than isolated (measurement noise) must not
        // inflate STP beyond the task count.
        let t = tasks(&[2.0], &[1.0]);
        let m = qos_metrics(&t, &[5.0]).unwrap();
        assert!(m.stp <= 1.0 + 1e-12);
    }

    #[test]
    fn empty_isolated_latencies_are_an_error_not_a_truncation() {
        let t = tasks(&[1.0, 2.0], &[1.0, 1.0]);
        match qos_metrics(&t, &[]) {
            Err(EngineError::InvalidConfig(msg)) => {
                assert!(msg.contains("2 tasks, 0 isolated"), "{msg}")
            }
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
    }

    #[test]
    fn short_isolated_latencies_are_an_error_not_a_truncation() {
        // The old zip silently dropped task 1 from STP/fairness.
        let t = tasks(&[1.0, 2.0], &[1.0, 1.0]);
        assert!(matches!(
            qos_metrics(&t, &[1.0]),
            Err(EngineError::InvalidConfig(_))
        ));
        // Too many calibration entries is just as mis-matched.
        assert!(qos_metrics(&t, &[1.0, 2.0, 3.0]).is_err());
    }

    #[test]
    fn empty_run_yields_nan_free_identity_metrics() {
        let m = qos_metrics(&[], &[]).unwrap();
        assert_eq!(m.sla_rate, 1.0);
        assert_eq!(m.stp, 0.0);
        assert_eq!(m.fairness, 1.0);
        assert!(m.sla_rate.is_finite() && m.stp.is_finite() && m.fairness.is_finite());
    }

    #[test]
    fn zero_latency_tasks_do_not_divide_by_zero() {
        // A task that measured nothing reports 0.0 mean latency; its
        // normalized progress defaults to 1.0 instead of inf/NaN.
        let mut t = tasks(&[0.0], &[1.0]);
        t[0].inferences = 0;
        let m = qos_metrics(&t, &[5.0]).unwrap();
        assert_eq!(m.stp, 1.0);
        assert_eq!(m.sla_rate, 1.0);
    }
}
