//! QoS metrics of Section IV-A4: SLA satisfaction rate, system
//! throughput (STP) and fairness, following the definitions of the
//! AuRORA paper the evaluation adopts.
//!
//! * **SLA satisfaction rate** — fraction of inferences finishing within
//!   their deadline;
//! * **STP** — the sum of per-task *normalized progress*
//!   `NP_i = T_isolated(i) / T_shared(i)` (a system running `n` tasks at
//!   full isolated speed each would score `n`);
//! * **Fairness** — `min_i NP_i / max_i NP_i`.

use crate::engine::RunResult;
use serde::{Deserialize, Serialize};

/// Aggregated QoS metrics of one run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QosMetrics {
    /// SLA satisfaction rate over all measured inferences.
    pub sla_rate: f64,
    /// System throughput (sum of normalized progress).
    pub stp: f64,
    /// Min/max fairness over normalized progress.
    pub fairness: f64,
}

/// Computes QoS metrics from a shared run and the matching isolated
/// per-model latencies (`isolated_ms[i]` for task `i`).
///
/// # Panics
///
/// Panics if `isolated_ms.len()` differs from the number of tasks.
pub fn qos_metrics(shared: &RunResult, isolated_ms: &[f64]) -> QosMetrics {
    assert_eq!(
        shared.tasks.len(),
        isolated_ms.len(),
        "need one isolated latency per task"
    );
    let mut progress = Vec::with_capacity(shared.tasks.len());
    let mut sla_num = 0.0;
    let mut sla_den = 0.0;
    for (t, &iso) in shared.tasks.iter().zip(isolated_ms) {
        let np = if t.mean_latency_ms > 0.0 {
            (iso / t.mean_latency_ms).min(1.0)
        } else {
            1.0
        };
        progress.push(np);
        sla_num += t.sla_rate * t.inferences as f64;
        sla_den += t.inferences as f64;
    }
    QosMetrics {
        sla_rate: if sla_den > 0.0 {
            sla_num / sla_den
        } else {
            1.0
        },
        stp: progress.iter().sum(),
        fairness: camdn_common::stats::fairness(&progress),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::TaskSummary;

    fn result(lat: &[f64], sla: &[f64]) -> RunResult {
        RunResult {
            policy: "Baseline".into(),
            tasks: lat
                .iter()
                .zip(sla)
                .enumerate()
                .map(|(i, (&l, &s))| TaskSummary {
                    abbr: format!("T{i}"),
                    qos_ms: 10.0,
                    inferences: 10,
                    mean_latency_ms: l,
                    mean_dram_mb: 1.0,
                    sla_rate: s,
                })
                .collect(),
            cache_hit_rate: 0.5,
            avg_latency_ms: 0.0,
            mem_mb_per_model: 0.0,
            makespan_ms: 0.0,
            multicast_saved_mb: 0.0,
        }
    }

    #[test]
    fn perfect_isolation_scores_n() {
        let r = result(&[5.0, 5.0], &[1.0, 1.0]);
        let m = qos_metrics(&r, &[5.0, 5.0]);
        assert!((m.stp - 2.0).abs() < 1e-12);
        assert!((m.fairness - 1.0).abs() < 1e-12);
        assert!((m.sla_rate - 1.0).abs() < 1e-12);
    }

    #[test]
    fn slowdown_reduces_stp() {
        // Task 0 runs at half speed, task 1 at full speed.
        let r = result(&[10.0, 5.0], &[0.5, 1.0]);
        let m = qos_metrics(&r, &[5.0, 5.0]);
        assert!((m.stp - 1.5).abs() < 1e-12);
        assert!((m.fairness - 0.5).abs() < 1e-12);
        assert!((m.sla_rate - 0.75).abs() < 1e-12);
    }

    #[test]
    fn progress_is_capped_at_one() {
        // Shared faster than isolated (measurement noise) must not
        // inflate STP beyond the task count.
        let r = result(&[2.0], &[1.0]);
        let m = qos_metrics(&r, &[5.0]);
        assert!(m.stp <= 1.0 + 1e-12);
    }

    #[test]
    #[should_panic(expected = "isolated latency")]
    fn mismatched_lengths_panic() {
        let r = result(&[1.0], &[1.0]);
        let _ = qos_metrics(&r, &[1.0, 2.0]);
    }
}
